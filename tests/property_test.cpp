//===- tests/property_test.cpp - randomized invariants --------*- C++ -*-===//
//
// Property-based tests of the whole pipeline: random patch subsets, dense
// patching (limitation L3), determinism, structural invariants of the
// rewritten image, mixed patched/unpatched images, and ELF reader
// robustness against mutated inputs.
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Runtime.h"
#include "frontend/Select.h"
#include "vm/Hooks.h"
#include "x86/Assembler.h"
#include "lowfat/LowFat.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "vm/Loader.h"
#include "workload/Gen.h"
#include "workload/Run.h"
#include "x86/Decoder.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

namespace {

WorkloadConfig cfg(uint64_t Seed, bool Pie = false) {
  WorkloadConfig C;
  C.Name = "prop";
  C.Seed = Seed;
  C.Pie = Pie;
  C.NumFuncs = 8;
  C.MainIters = 2;
  return C;
}

RewriteOptions baseOpts() {
  RewriteOptions O;
  O.Patch.Spec.Kind = core::TrampolineKind::Empty;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  return O;
}

} // namespace

// Random subsets of all instructions, patched with the Empty spec: every
// successfully patched program must behave identically to the original.
class RandomSubsetPatch : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSubsetPatch, SemanticsPreserved) {
  Workload W = generateWorkload(cfg(GetParam()));
  RunOutcome Ref = runImage(W.Image);
  ASSERT_TRUE(Ref.ok()) << Ref.Result.Error;

  DisasmResult D = linearDisassemble(W.Image);
  Rng R(GetParam() * 7919 + 13);
  std::vector<uint64_t> Locs;
  for (const x86::Insn &I : D.Insns)
    if (R.chance(25))
      Locs.push_back(I.Address);
  ASSERT_GT(Locs.size(), 20u);

  auto Out = rewrite(W.Image, Locs, baseOpts());
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  RunOutcome Got = runImage(Out->Rewritten);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSubsetPatch,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

// Dense patching (limitation L3): patch *every* instruction. Tactic
// interference caps coverage below 100%, but whatever got patched must
// not change behaviour, and the engine must not corrupt anything.
class DensePatch : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DensePatch, EverythingAtOnce) {
  Workload W = generateWorkload(cfg(GetParam()));
  RunOutcome Ref = runImage(W.Image);
  ASSERT_TRUE(Ref.ok()) << Ref.Result.Error;

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectAll(D.Insns);
  RewriteOptions O = baseOpts();
  O.Patch.B0Fallback = true; // B0 fills the jump-tactic gaps
  auto Out = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();

  // L3 in action: jump tactics alone cannot cover everything.
  size_t JumpPatched = Out->Stats.succeeded();
  EXPECT_LT(JumpPatched, Locs.size());
  // But with the B0 fallback the total reaches 100%.
  EXPECT_EQ(Out->Stats.count(core::Tactic::Failed), 0u);

  RunOutcome Got = runImage(Out->Rewritten);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensePatch, ::testing::Values(31, 32, 33));

// Rewriting is deterministic: byte-identical output for identical input.
TEST(Determinism, RewriteTwiceIsIdentical) {
  Workload W = generateWorkload(cfg(41));
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  auto A = rewrite(W.Image, Locs, baseOpts());
  auto B = rewrite(W.Image, Locs, baseOpts());
  ASSERT_TRUE(A.isOk());
  ASSERT_TRUE(B.isOk());
  EXPECT_EQ(elf::write(A->Rewritten), elf::write(B->Rewritten));
}

// Structural invariants of the rewritten image.
TEST(Invariants, RewrittenImageIsWellFormed) {
  Workload W = generateWorkload(cfg(42));
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  auto Out = rewrite(W.Image, Locs, baseOpts());
  ASSERT_TRUE(Out.isOk());

  const elf::Image &Img = Out->Rewritten;
  IntervalSet Mapped;
  for (const elf::Segment &S : Img.Segments) {
    EXPECT_FALSE(Mapped.overlaps(S.VAddr, S.endAddr()));
    Mapped.insert(S.VAddr, S.endAddr());
  }
  for (const elf::Mapping &M : Img.Mappings) {
    // Mappings never collide with segments or each other.
    EXPECT_FALSE(Mapped.overlaps(M.VAddr, M.VAddr + M.Size))
        << hex(M.VAddr);
    Mapped.insert(M.VAddr, M.VAddr + M.Size);
    EXPECT_LT(M.BlockIndex, Img.Blocks.size());
    EXPECT_LE(M.Offset + M.Size, Img.Blocks[M.BlockIndex].Bytes.size());
  }

  // Every successfully patched site decodes as a jump over the original
  // instruction footprint.
  const elf::Segment *Text = Img.textSegment();
  for (const core::PatchSiteResult &S : Out->Sites) {
    if (S.Used == core::Tactic::Failed || S.Used == core::Tactic::B0)
      continue;
    const uint8_t *P = Text->Bytes.data() + (S.Addr - Text->VAddr);
    x86::Insn I;
    ASSERT_EQ(x86::decode(P, Text->Bytes.size() - (S.Addr - Text->VAddr),
                          S.Addr, I),
              x86::DecodeStatus::Ok);
    EXPECT_TRUE(I.isJmpRel32() || I.isJmpRel8()) << hex(S.Addr);
    if (S.Used != core::Tactic::T3) {
      // Direct tactics: the jump targets the site's trampoline.
      EXPECT_EQ(I.branchTarget(), S.TrampolineAddr) << hex(S.Addr);
    }
  }
}

// §5.1 mixing patched and non-patched code: an *unpatched* main
// executable calls into a *rewritten* shared library through a function
// pointer (the callback problem that breaks relocating rewriters).
TEST(MixedImages, UnpatchedMainCallsPatchedLibrary) {
  WorkloadConfig LibCfg = cfg(51);
  LibCfg.BaseOverride = 0x7f1234561000ULL; // high "shared library" base
  Workload Lib = generateWorkload(LibCfg);

  // Rewrite only the library (A1, empty instrumentation).
  DisasmResult D = linearDisassemble(Lib.Image);
  auto Locs = selectJumps(D.Insns);
  RewriteOptions O = baseOpts();
  // The dynamic-linker neighbourhood below the base is unavailable.
  O.ExtraReserved.push_back(
      Interval{LibCfg.BaseOverride - (1ull << 31), LibCfg.BaseOverride});
  auto Out = rewrite(Lib.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  ASSERT_EQ(Out->Stats.succPct(), 100.0);

  // Unpatched main: call the library entry point via a register (a raw
  // code pointer into patched code), then hlt.
  x86::Assembler A(0x401000);
  A.callAbsViaRax(Lib.Image.Entry);
  A.raw({0xf4}); // hlt = clean exit
  ASSERT_TRUE(A.resolveAll());
  elf::Image Main;
  Main.Entry = 0x401000;
  elf::Segment Text;
  Text.VAddr = 0x401000;
  Text.Bytes = A.take();
  Text.MemSize = Text.Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Main.Segments.push_back(std::move(Text));

  auto RunMixed = [&](const elf::Image &LibImage) -> uint64_t {
    vm::Vm V;
    lowfat::PlainHeap Heap;
    lowfat::installPlainHeap(V, Heap);
    auto L1 = vm::load(V, Main);
    EXPECT_TRUE(L1.isOk()) << L1.reason();
    vm::LoadOptions Secondary;
    Secondary.SetupStack = false;
    auto L2 = vm::load(V, LibImage, Secondary);
    EXPECT_TRUE(L2.isOk()) << L2.reason();
    auto R = V.run(10'000'000);
    EXPECT_EQ(R.Kind, vm::RunResult::Exit::Finished) << R.Error;
    return V.Core.Gpr[0];
  };

  uint64_t Ref = RunMixed(Lib.Image);
  uint64_t Got = RunMixed(Out->Rewritten);
  EXPECT_EQ(Ref, Got);
}

// ELF reader robustness: random mutations must never crash; they either
// parse into some image or fail gracefully.
class ElfFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ElfFuzz, MutatedFilesDontCrash) {
  Workload W = generateWorkload(cfg(61));
  DisasmResult D = linearDisassemble(W.Image);
  auto Out = rewrite(W.Image, selectJumps(D.Insns), baseOpts());
  ASSERT_TRUE(Out.isOk());
  std::vector<uint8_t> Good = elf::write(Out->Rewritten);

  Rng R(GetParam());
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::vector<uint8_t> Bytes = Good;
    switch (R.below(3)) {
    case 0: // flip random bytes
      for (int K = 0; K != 8; ++K)
        Bytes[R.below(Bytes.size())] = static_cast<uint8_t>(R.next());
      break;
    case 1: // truncate
      Bytes.resize(R.below(Bytes.size()));
      break;
    default: // corrupt the header region specifically
      for (int K = 0; K != 4; ++K)
        Bytes[R.below(std::min<size_t>(Bytes.size(), 120))] =
            static_cast<uint8_t>(R.next());
      break;
    }
    auto Parsed = elf::read(Bytes); // must not crash/UB
    if (Parsed.isOk()) {
      // If it parsed, loading may still fail, but must not crash either.
      vm::Vm V;
      (void)vm::load(V, *Parsed);
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElfFuzz, ::testing::Values(71, 72, 73));

// Rewriting a rewritten binary's *original* is stable across trampoline
// kinds: all instrumentation kinds preserve behaviour on the same input.
class AllTrampolineKinds
    : public ::testing::TestWithParam<core::TrampolineKind> {};

TEST_P(AllTrampolineKinds, PreserveBehaviour) {
  Workload W = generateWorkload(cfg(81));
  uint64_t CounterAddr = 0;
  if (GetParam() == core::TrampolineKind::Counter)
    CounterAddr = addCounterSegment(W.Image);
  RunOutcome Ref = runImage(W.Image);
  ASSERT_TRUE(Ref.ok()) << Ref.Result.Error;

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = GetParam() == core::TrampolineKind::LowFatCheck
                  ? selectHeapWrites(D.Insns)
                  : selectJumps(D.Insns);
  RewriteOptions O = baseOpts();
  O.Patch.Spec.Kind = GetParam();
  O.Patch.Spec.CounterAddr = CounterAddr;
  O.Patch.Spec.HookAddr = vm::HookLowFatCheck;
  auto Out = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();

  RunConfig RC;
  // LowFatCheck needs its own heap; HookCall reuses the check hook as a
  // generic callback, so it also needs the LowFat runtime registered.
  RC.UseLowFat = GetParam() == core::TrampolineKind::LowFatCheck ||
                 GetParam() == core::TrampolineKind::HookCall;
  RunConfig RefRC = RC;
  RunOutcome Ref2 = runImage(W.Image, RefRC);
  RunOutcome Got = runImage(Out->Rewritten, RC);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref2.Rax);
  // Counter instrumentation writes into its own (writable, checksummed)
  // segment by design; program-visible memory is covered by Rax plus the
  // other kinds' checksum equality.
  if (GetParam() != core::TrampolineKind::Counter) {
    EXPECT_EQ(Got.DataChecksum, Ref2.DataChecksum);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllTrampolineKinds,
                         ::testing::Values(core::TrampolineKind::Empty,
                                           core::TrampolineKind::Counter,
                                           core::TrampolineKind::HookCall,
                                           core::TrampolineKind::LowFatCheck));
