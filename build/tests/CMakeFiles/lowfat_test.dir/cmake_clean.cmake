file(REMOVE_RECURSE
  "CMakeFiles/lowfat_test.dir/lowfat_test.cpp.o"
  "CMakeFiles/lowfat_test.dir/lowfat_test.cpp.o.d"
  "lowfat_test"
  "lowfat_test.pdb"
  "lowfat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowfat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
