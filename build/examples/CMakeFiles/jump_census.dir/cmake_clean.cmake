file(REMOVE_RECURSE
  "CMakeFiles/jump_census.dir/jump_census.cpp.o"
  "CMakeFiles/jump_census.dir/jump_census.cpp.o.d"
  "jump_census"
  "jump_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jump_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
