//===- examples/quickstart.cpp - 60-second tour -----------------*- C++ -*-===//
//
// Builds a tiny x86_64 program, statically rewrites one instruction with a
// counting trampoline (no control flow recovery involved), and runs both
// the original and the rewritten binary in the bundled VM to show that
// behaviour is preserved while the instrumentation fires.
//
// Run: ./quickstart
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Runtime.h"
#include "support/Format.h"
#include "vm/Loader.h"
#include "x86/Assembler.h"

#include <cstdio>

using namespace e9;
using namespace e9::x86;

namespace {

/// A small program: sum the integers 1..10 into rax, doubling via a store/
/// load round trip through memory, then return.
elf::Image buildProgram() {
  constexpr uint64_t TextBase = 0x401000;
  constexpr uint64_t DataBase = 0x601000;

  Assembler A(TextBase);
  A.movRegImm32(Reg::RAX, 0);
  A.movRegImm32(Reg::RCX, 10);
  auto Loop = A.createLabel();
  A.bind(Loop);
  A.aluRegReg(OpSize::B64, Alu::Add, Reg::RAX, Reg::RCX); // <- patch me
  A.aluRegImm(OpSize::B64, Alu::Sub, Reg::RCX, 1);
  A.jccLabel(Cond::NE, Loop);
  A.movRegImm64(Reg::RBX, DataBase);
  A.movMemReg(OpSize::B64, Mem::base(Reg::RBX), Reg::RAX);
  A.movRegMem(OpSize::B64, Reg::RAX, Mem::base(Reg::RBX));
  A.ret();
  bool Ok = A.resolveAll();
  (void)Ok;

  elf::Image Img;
  Img.Entry = TextBase;
  elf::Segment Text;
  Text.VAddr = TextBase;
  Text.Bytes = A.take();
  Text.MemSize = Text.Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Text.Name = "text";
  Img.Segments.push_back(std::move(Text));
  elf::Segment Data;
  Data.VAddr = DataBase;
  Data.MemSize = 0x1000;
  Data.Flags = elf::PF_R | elf::PF_W;
  Data.Name = "data";
  Img.Segments.push_back(std::move(Data));
  return Img;
}

uint64_t runAndReport(const char *Label, const elf::Image &Img,
                      uint64_t CounterAddr) {
  vm::Vm V;
  auto L = vm::load(V, Img);
  if (!L.isOk()) {
    std::printf("  load failed: %s\n", L.reason().c_str());
    return 0;
  }
  auto R = V.run(100000);
  uint64_t Counter = 0;
  if (CounterAddr)
    (void)V.Mem.read64(CounterAddr, Counter);
  std::printf("  %-9s result rax = %llu, executed %llu instructions",
              Label, (unsigned long long)V.Core.Gpr[0],
              (unsigned long long)R.InsnCount);
  if (CounterAddr)
    std::printf(", counter = %llu", (unsigned long long)Counter);
  std::printf("  [%s]\n", R.ok() ? "finished" : R.Error.c_str());
  return V.Core.Gpr[0];
}

} // namespace

int main() {
  std::printf("quickstart: patch one instruction without control flow "
              "recovery\n\n");

  elf::Image Img = buildProgram();

  // The patch location: the `add rax, rcx` inside the loop (3 bytes, so a
  // 5-byte jump cannot replace it directly — punning or friends must act).
  frontend::DisasmResult Dis = frontend::linearDisassemble(Img);
  uint64_t PatchLoc = 0;
  for (const Insn &I : Dis.Insns)
    if (I.Map == OpMap::OneByte && I.Opcode == 0x01) { // add r/m, r
      PatchLoc = I.Address;
      break;
    }
  std::printf("patching the 3-byte `add rax, rcx` at %s\n",
              hex(PatchLoc).c_str());

  // Instrument it with a flag-safe counter bump.
  uint64_t CounterAddr = frontend::addCounterSegment(Img);
  frontend::RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::Counter;
  Opts.Patch.Spec.CounterAddr = CounterAddr;
  auto Out = frontend::rewrite(Img, {PatchLoc}, Opts);
  if (!Out.isOk()) {
    std::printf("rewrite failed: %s\n", Out.reason().c_str());
    return 1;
  }
  std::printf("tactic used: %s, trampoline at %s, file %llu -> %llu "
              "bytes\n\n",
              core::tacticName(Out->Sites[0].Used),
              hex(Out->Sites[0].TrampolineAddr).c_str(),
              (unsigned long long)Out->OrigFileSize,
              (unsigned long long)Out->NewFileSize);

  uint64_t Ref = runAndReport("original:", Img, 0);
  uint64_t Got = runAndReport("patched: ", Out->Rewritten, CounterAddr);

  std::printf("\n%s\n", Ref == Got && Ref == 55
                            ? "OK: same result, and the counter proves the "
                              "trampoline ran 10 times."
                            : "MISMATCH: rewriting broke the program!");
  return Ref == Got ? 0 : 1;
}
