file(REMOVE_RECURSE
  "libe9_elf.a"
)
