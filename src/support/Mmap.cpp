//===- support/Mmap.cpp - RAII memory-mapped file I/O ---------------------===//

#include "support/Mmap.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define E9_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace e9;
using namespace e9::support;

MappedFile &MappedFile::operator=(MappedFile &&O) noexcept {
  if (this != &O) {
#if E9_HAVE_MMAP
    if (Addr)
      ::munmap(Addr, Len);
#endif
    Addr = std::exchange(O.Addr, nullptr);
    Len = std::exchange(O.Len, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
#if E9_HAVE_MMAP
  if (Addr)
    ::munmap(Addr, Len);
#endif
}

MappedFile MappedFile::openRead(const std::string &Path) {
  MappedFile M;
#if E9_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return M;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode) || St.st_size <= 0) {
    ::close(Fd);
    return M;
  }
  void *P = ::mmap(nullptr, static_cast<size_t>(St.st_size), PROT_READ,
                   MAP_PRIVATE, Fd, 0);
  ::close(Fd); // The mapping keeps the file alive.
  if (P == MAP_FAILED)
    return M;
  M.Addr = P;
  M.Len = static_cast<size_t>(St.st_size);
#else
  (void)Path;
#endif
  return M;
}

MappedOutputFile &MappedOutputFile::operator=(MappedOutputFile &&O) noexcept {
  if (this != &O) {
#if E9_HAVE_MMAP
    if (Addr)
      ::munmap(Addr, Len);
    if (Fd >= 0)
      ::close(Fd);
#endif
    Addr = std::exchange(O.Addr, nullptr);
    Len = std::exchange(O.Len, 0);
    Fd = std::exchange(O.Fd, -1);
    Path = std::exchange(O.Path, {});
    Committed = std::exchange(O.Committed, false);
  }
  return *this;
}

MappedOutputFile::~MappedOutputFile() {
#if E9_HAVE_MMAP
  if (Addr)
    ::munmap(Addr, Len);
  if (Fd >= 0)
    ::close(Fd);
  if (!Committed && !Path.empty())
    ::unlink(Path.c_str()); // Never leave a truncated binary behind.
#endif
}

MappedOutputFile MappedOutputFile::create(const std::string &Path,
                                          size_t Size) {
  MappedOutputFile M;
#if E9_HAVE_MMAP
  if (Size == 0)
    return M; // Zero-length mmap is invalid; use the fallback writer.
  int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0755);
  if (Fd < 0)
    return M;
  if (::ftruncate(Fd, static_cast<off_t>(Size)) != 0) {
    ::close(Fd);
    return M;
  }
  void *P = ::mmap(nullptr, Size, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  if (P == MAP_FAILED) {
    ::close(Fd);
    return M;
  }
  M.Addr = P;
  M.Len = Size;
  M.Fd = Fd;
  M.Path = Path;
#else
  (void)Path;
  (void)Size;
#endif
  return M;
}

bool MappedOutputFile::commit() {
#if E9_HAVE_MMAP
  if (!Addr)
    return false;
  bool Ok = ::msync(Addr, Len, MS_SYNC) == 0;
  Ok &= ::munmap(Addr, Len) == 0;
  Addr = nullptr;
  Ok &= ::close(Fd) == 0;
  Fd = -1;
  Committed = Ok;
  return Ok;
#else
  return false;
#endif
}
