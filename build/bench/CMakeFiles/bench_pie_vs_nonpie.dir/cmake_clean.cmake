file(REMOVE_RECURSE
  "CMakeFiles/bench_pie_vs_nonpie.dir/bench_pie_vs_nonpie.cpp.o"
  "CMakeFiles/bench_pie_vs_nonpie.dir/bench_pie_vs_nonpie.cpp.o.d"
  "bench_pie_vs_nonpie"
  "bench_pie_vs_nonpie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pie_vs_nonpie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
