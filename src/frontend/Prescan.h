//===- frontend/Prescan.h - Candidate-window disassembly -------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast front half of the pipeline: a SIMD byte-signature pre-scan
/// (x86/Scan) marks candidate bytes, then a single linear walk length-
/// decodes every instruction boundary but runs the full table-driven
/// decoder — and the selector predicate — only where the candidate bitmap
/// says a match is possible. x86 linear disassembly cannot skip bytes
/// (boundaries depend on every previous byte), so the walk itself is
/// unavoidable; what the pre-scan removes is the full field decode, the
/// `Insn` record store, and the separate select pass for the (typically
/// large) majority of instructions that cannot match.
///
/// `prescanSelect` returns exactly the sites that
/// `selectX(linearDisassemble(Img).Insns)` would return — guaranteed by
/// the scanner's no-false-negative contract (Scan.h) and pinned by
/// property tests over adversarial byte soups.
///
/// `disassembleWindows` is the back half: once the site list is known,
/// only instructions within a guard window of some site are ever
/// consulted by the patcher (the shard-independence argument in Shard.h
/// bounds every tactic to [site, site + 148)), so full `Insn` records are
/// kept only for starts inside those windows. Boundaries stay globally
/// exact because every instruction is still length-walked.
///
//===----------------------------------------------------------------------===//

#ifndef E9_FRONTEND_PRESCAN_H
#define E9_FRONTEND_PRESCAN_H

#include "frontend/Disasm.h"
#include "x86/Scan.h"

#include <cstdint>
#include <vector>

namespace e9 {
namespace frontend {

/// Which selector a pre-scan run feeds (mirrors Select.h).
enum class SelectorKind : uint8_t {
  Jumps,      ///< A1: selectJumps.
  HeapWrites, ///< A2: selectHeapWrites.
  All,        ///< Stress: selectAll (pre-scan degenerates to full decode).
};

/// Observability counters for one pre-scan run.
struct PrescanStats {
  size_t NumInsns = 0;         ///< Instructions walked (all of them).
  size_t UndecodableBytes = 0; ///< Bytes skipped as data islands.
  size_t FullDecodes = 0;      ///< Instructions that got the full decoder.
  size_t CandidateBytes = 0;   ///< Bits set in the candidate map.
  x86::ScanBackend Backend = x86::ScanBackend::Scalar;
};

/// Fused pre-scan + select: returns the same site list as running the
/// matching selector over a full linear disassembly, without materializing
/// the instruction vector.
std::vector<uint64_t> prescanSelect(const elf::Image &Img, SelectorKind K,
                                    PrescanStats *Stats = nullptr);

/// Linear disassembly that materializes full `Insn` records only for
/// instructions starting inside [S, S + Guard) for some site S in
/// \p Sites (need not be sorted or unique). Instruction *boundaries* are
/// identical to `linearDisassemble`; records outside every window are
/// dropped, which is safe for the patcher because no tactic consults
/// instructions beyond the guard distance of its site (see Shard.h).
DisasmResult disassembleWindows(const elf::Image &Img,
                                const std::vector<uint64_t> &Sites,
                                uint64_t Guard);

} // namespace frontend
} // namespace e9

#endif // E9_FRONTEND_PRESCAN_H
