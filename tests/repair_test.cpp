//===- tests/repair_test.cpp - self-verifying rewrite tests ----*- C++ -*-===//
//
// Drives the repair loop end to end: clean rewrites must verify in one
// round, chaos-injected trampoline faults must be isolated by ddmin and
// demoted down the tactic lattice until the repaired binary's VM end
// state equals the original's, and budget exhaustion must fail closed
// with the last observed divergence.
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "repair/Repair.h"
#include "workload/Gen.h"
#include "workload/Run.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace e9;

namespace {

workload::Workload genWorkload(uint64_t Seed, unsigned Funcs = 12) {
  workload::WorkloadConfig C;
  C.Name = "repair";
  C.Seed = Seed;
  C.NumFuncs = Funcs;
  C.MainIters = 3;
  return workload::generateWorkload(C);
}

std::vector<uint64_t> jumpSites(const workload::Workload &W) {
  frontend::DisasmResult D = frontend::linearDisassemble(W.Image);
  return frontend::selectJumps(D.Insns);
}

frontend::RewriteOptions baseOpts() {
  frontend::RewriteOptions O;
  O.Patch.Spec.Kind = core::TrampolineKind::Empty;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  O.Repair.Enabled = true;
  return O;
}

/// Reference + repaired end states must agree on the observable outputs.
void expectSameEndState(const elf::Image &Orig, const elf::Image &Repaired) {
  workload::RunOutcome A = workload::runImage(Orig);
  workload::RunOutcome B = workload::runImage(Repaired);
  ASSERT_TRUE(A.ok()) << A.Result.Error;
  ASSERT_TRUE(B.ok()) << B.Result.Error;
  EXPECT_EQ(A.Rax, B.Rax);
  EXPECT_EQ(A.DataChecksum, B.DataChecksum);
}

} // namespace

TEST(Repair, CleanRewriteConvergesInOneRound) {
  workload::Workload W = genWorkload(11);
  auto Locs = jumpSites(W);
  auto R = repair::selfVerifyingRewrite(W.Image, Locs, baseOpts());
  ASSERT_TRUE(R.isOk()) << R.reason();
  EXPECT_TRUE(R->Report.Converged);
  EXPECT_EQ(R->Report.Rounds, 1u);
  EXPECT_TRUE(R->Report.Sites.empty());
  EXPECT_EQ(R->Report.ColdLoads, 1u);
  EXPECT_GE(R->Report.SnapshotRestores, 2u); // reference + one candidate
  expectSameEndState(W.Image, R->Rewrite.Rewritten);
  EXPECT_NE(R->Metrics.toJson().find("\"repair.converged\":1"),
            std::string::npos);
}

TEST(Repair, ChaosSitesAllRepairedAndEndStateMatches) {
  // The acceptance harness: sabotage 11 *executed* sites with trampolines
  // that write into unmapped memory. Repair must catch every one (only a
  // B0 demotion or a revocation removes the sabotaged trampoline) and the
  // repaired binary must match the original's end state.
  workload::Workload W = genWorkload(7, 16);
  auto Locs = jumpSites(W);
  auto Chaos = repair::executedSites(W.Image, Locs, 11);
  ASSERT_TRUE(Chaos.isOk()) << Chaos.reason();
  ASSERT_GE(Chaos->size(), 8u) << "workload too small for the harness";

  std::set<uint64_t> ChaosSet(Chaos->begin(), Chaos->end());
  frontend::RewriteOptions O = repair::sabotage(baseOpts(), ChaosSet);
  auto R = repair::selfVerifyingRewrite(W.Image, Locs, O);
  ASSERT_TRUE(R.isOk()) << R.reason();
  EXPECT_TRUE(R->Report.Converged)
      << repair::divergenceKindName(R->Report.Final.Kind) << ": "
      << R->Report.Final.Detail;

  // Every chaos site was repaired (demoted or revoked), and nothing else.
  std::set<uint64_t> RepairedSites;
  for (const repair::SiteRepair &S : R->Report.Sites)
    RepairedSites.insert(S.Addr);
  EXPECT_EQ(RepairedSites, ChaosSet);

  expectSameEndState(W.Image, R->Rewrite.Rewritten);
}

TEST(Repair, RepairedOutputByteIdenticalAcrossJobs) {
  workload::Workload W = genWorkload(7, 16);
  auto Locs = jumpSites(W);
  auto Chaos = repair::executedSites(W.Image, Locs, 5);
  ASSERT_TRUE(Chaos.isOk()) << Chaos.reason();
  std::set<uint64_t> ChaosSet(Chaos->begin(), Chaos->end());

  frontend::RewriteOptions O1 = repair::sabotage(baseOpts(), ChaosSet);
  O1.withJobs(1);
  frontend::RewriteOptions O4 = repair::sabotage(baseOpts(), ChaosSet);
  O4.withJobs(4);
  auto R1 = repair::selfVerifyingRewrite(W.Image, Locs, O1);
  auto R4 = repair::selfVerifyingRewrite(W.Image, Locs, O4);
  ASSERT_TRUE(R1.isOk()) << R1.reason();
  ASSERT_TRUE(R4.isOk()) << R4.reason();
  EXPECT_TRUE(R1->Report.Converged);
  EXPECT_TRUE(R4->Report.Converged);
  EXPECT_EQ(elf::write(R1->Rewrite.Rewritten),
            elf::write(R4->Rewrite.Rewritten));
}

TEST(Repair, HangDivergenceIsDetectedAndRepaired) {
  // A sabotaged trampoline that spins (jmp $) instead of faulting: the
  // step-budget oracle must classify it as a hang, and the repair loop
  // must still converge by demoting the site out of trampoline execution.
  workload::Workload W = genWorkload(3, 10);
  auto Locs = jumpSites(W);
  auto Chaos = repair::executedSites(W.Image, Locs, 1);
  ASSERT_TRUE(Chaos.isOk()) << Chaos.reason();
  ASSERT_EQ(Chaos->size(), 1u);
  uint64_t Site = (*Chaos)[0];

  frontend::RewriteOptions O = baseOpts();
  O.Trace.Enabled = true;
  O.SpecFor = [Site](uint64_t Addr) {
    core::TrampolineSpec S;
    S.Kind = core::TrampolineKind::Empty;
    if (Addr != Site)
      return S;
    core::TrampolineSpec Spin;
    Spin.Kind = core::TrampolineKind::Composed;
    Spin.Ops.push_back(core::TemplateOp::raw({0xeb, 0xfe})); // jmp $
    return Spin;
  };
  auto R = repair::selfVerifyingRewrite(W.Image, Locs, O);
  ASSERT_TRUE(R.isOk()) << R.reason();
  EXPECT_TRUE(R->Report.Converged);
  ASSERT_FALSE(R->Report.Sites.empty());
  for (const repair::SiteRepair &S : R->Report.Sites)
    EXPECT_EQ(S.Addr, Site);

  // The repair events ride along in the final trace: the divergence was
  // classified as a hang, and the loop reported a summary.
  bool SawHang = false, SawSummary = false;
  for (const std::string &L : R->Rewrite.Trace) {
    if (L.find("\"ev\":\"repair_divergence\"") != std::string::npos &&
        L.find("\"kind\":\"hang\"") != std::string::npos)
      SawHang = true;
    if (L.find("\"ev\":\"repair_summary\"") != std::string::npos &&
        L.find("\"converged\":true") != std::string::npos)
      SawSummary = true;
  }
  EXPECT_TRUE(SawHang);
  EXPECT_TRUE(SawSummary);
  expectSameEndState(W.Image, R->Rewrite.Rewritten);
}

TEST(Repair, BudgetExhaustionFailsClosed) {
  workload::Workload W = genWorkload(7, 16);
  auto Locs = jumpSites(W);
  auto Chaos = repair::executedSites(W.Image, Locs, 8);
  ASSERT_TRUE(Chaos.isOk()) << Chaos.reason();
  frontend::RewriteOptions O = repair::sabotage(
      baseOpts(), std::set<uint64_t>(Chaos->begin(), Chaos->end()));
  O.Repair.MaxCandidateRuns = 3; // far too few to isolate 8 culprits
  auto R = repair::selfVerifyingRewrite(W.Image, Locs, O);
  ASSERT_TRUE(R.isOk()) << R.reason();
  EXPECT_FALSE(R->Report.Converged);
  EXPECT_TRUE(R->Report.Final.diverged());
  EXPECT_LE(R->Report.CandidateRuns, 4u);
}

TEST(Repair, ExecutedSitesAreASubsetOfPatchLocs) {
  workload::Workload W = genWorkload(5);
  auto Locs = jumpSites(W);
  std::set<uint64_t> All(Locs.begin(), Locs.end());
  auto Few = repair::executedSites(W.Image, Locs, 4);
  ASSERT_TRUE(Few.isOk()) << Few.reason();
  EXPECT_LE(Few->size(), 4u);
  EXPECT_FALSE(Few->empty());
  for (uint64_t A : *Few)
    EXPECT_TRUE(All.count(A)) << A;
  // Asking for more sites than ever execute returns the executed subset.
  auto Many = repair::executedSites(W.Image, Locs, SIZE_MAX);
  ASSERT_TRUE(Many.isOk());
  EXPECT_LT(Many->size(), All.size());
  EXPECT_TRUE(std::is_sorted(Many->begin(), Many->end()));
}
