# Empty dependencies file for e9_vm.
# This may be replaced when dependencies are built.
