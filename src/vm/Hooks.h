//===- vm/Hooks.h - Canonical host-hook addresses --------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Well-known addresses for VM host hooks. Guest code reaches the host
/// runtime (the malloc/free substitute for libc, the LowFat redzone check,
/// instrumentation callbacks) by calling these addresses; the VM intercepts
/// rip and runs the host function. The whole region is reserved so the
/// rewriter never places trampolines there.
///
//===----------------------------------------------------------------------===//

#ifndef E9_VM_HOOKS_H
#define E9_VM_HOOKS_H

#include <cstdint>

namespace e9 {
namespace vm {

/// Reserved hook/exit region: [HookRegionStart, HookRegionEnd).
inline constexpr uint64_t HookRegionStart = 0x7e9e00000000ULL;
inline constexpr uint64_t HookRegionEnd = 0x7ea000000000ULL;

/// Guest calling convention: System V (args rdi/rsi/rdx, result rax).
inline constexpr uint64_t HookMalloc = 0x7e9f00000000ULL;
inline constexpr uint64_t HookFree = 0x7e9f00000100ULL;
inline constexpr uint64_t HookCalloc = 0x7e9f00000200ULL;
/// LowFat redzone check: rdi = written-to pointer (§6.3).
inline constexpr uint64_t HookLowFatCheck = 0x7e9f00000300ULL;
/// Generic instrumentation callback: rdi = patch location address.
inline constexpr uint64_t HookInstrument = 0x7e9f00000400ULL;

} // namespace vm
} // namespace e9

#endif // E9_VM_HOOKS_H
