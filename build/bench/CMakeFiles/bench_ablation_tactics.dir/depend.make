# Empty dependencies file for bench_ablation_tactics.
# This may be replaced when dependencies are built.
