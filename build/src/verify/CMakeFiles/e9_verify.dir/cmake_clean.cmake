file(REMOVE_RECURSE
  "CMakeFiles/e9_verify.dir/Verifier.cpp.o"
  "CMakeFiles/e9_verify.dir/Verifier.cpp.o.d"
  "libe9_verify.a"
  "libe9_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
