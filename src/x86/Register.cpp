//===- x86/Register.cpp ---------------------------------------*- C++ -*-===//

#include "x86/Register.h"

using namespace e9;
using namespace e9::x86;

const char *x86::regName(Reg R) {
  static const char *const Names[] = {
      "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
      "rip", "<none>"};
  return Names[static_cast<uint8_t>(R)];
}

const char *x86::condName(Cond C) {
  static const char *const Names[] = {"o",  "no", "b",  "ae", "e",  "ne",
                                      "be", "a",  "s",  "ns", "p",  "np",
                                      "l",  "ge", "le", "g"};
  return Names[static_cast<uint8_t>(C)];
}
