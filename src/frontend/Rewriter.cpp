//===- frontend/Rewriter.cpp ----------------------------------*- C++ -*-===//

#include "frontend/Rewriter.h"

#include "frontend/Disasm.h"
#include "support/FaultInjector.h"
#include "support/Format.h"

#include <algorithm>

using namespace e9;
using namespace e9::frontend;

namespace {

/// Simulated silent-corruption faults, enabled only under fault injection.
/// Each one damages the output the way a patcher/grouping bug would; the
/// verifier (and only the verifier) must catch them — this is how the
/// fault-injection tests prove StrictMode fails closed rather than
/// emitting a wrong binary.
void injectOutputCorruption(RewriteOutput &Out) {
  if (!FaultInjectionArmed)
    return;
  if (E9_FAULT_POINT("core.patch.corrupt-site") && !Out.Jumps.empty()) {
    const core::JumpRecord &J = Out.Jumps.front();
    uint8_t B = 0;
    if (Out.Rewritten.readBytes(J.Addr, &B, 1)) {
      B ^= 0x20;
      (void)Out.Rewritten.writeBytes(J.Addr, &B, 1);
    }
  }
  if (E9_FAULT_POINT("core.group.corrupt-block")) {
    for (elf::PhysBlock &B : Out.Rewritten.Blocks) {
      auto It = std::find_if(B.Bytes.begin(), B.Bytes.end(),
                             [](uint8_t V) { return V != 0; });
      if (It != B.Bytes.end()) {
        *It ^= 0xff;
        break;
      }
    }
  }
  if (E9_FAULT_POINT("core.group.corrupt-mapping") &&
      !Out.Rewritten.Mappings.empty())
    Out.Rewritten.Mappings.front().VAddr += 0x1000;
}

} // namespace

Result<RewriteOutput> frontend::rewrite(const elf::Image &In,
                                        const std::vector<uint64_t> &PatchLocs,
                                        const RewriteOptions &Opts) {
  if (!In.textSegment())
    return Result<RewriteOutput>::error("input image has no code segment");

  RewriteOutput Out;
  Out.OrigFileSize = elf::write(In).size();
  Out.Rewritten = In;
  Out.Rewritten.Blocks.clear();
  Out.Rewritten.Mappings.clear();

  DisasmResult Dis = linearDisassemble(Out.Rewritten);
  if (E9_FAULT_POINT("frontend.disasm.decode"))
    return Result<RewriteOutput>::error(
        "injected fault: frontend.disasm.decode (disassembly failed)");

  core::Patcher P(Out.Rewritten, std::move(Dis.Insns), Opts.Patch);
  for (const Interval &R : Opts.ExtraReserved)
    P.allocator().reserve(R.Lo, R.Hi);
  if (Opts.SpecFor) {
    // Per-site specs: drive the S1 reverse order here.
    std::vector<uint64_t> Sorted(PatchLocs);
    std::sort(Sorted.begin(), Sorted.end());
    Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
    for (auto It = Sorted.rbegin(); It != Sorted.rend(); ++It)
      P.patchOne(*It, Opts.SpecFor(*It));
  } else {
    P.patchAll(PatchLocs);
  }

  Out.Stats = P.stats();
  Out.B0Table = P.b0Table();
  Out.Rewritten.B0Sites = P.b0Table(); // self-contained rewritten binary
  Out.Sites = P.results();
  Out.Chunks = P.chunks();
  Out.Jumps = P.jumps();
  Out.ModifiedRanges = P.modifiedRanges();

  // Error budget: refuse to hand back a binary with more unpatched sites
  // than the caller tolerates. The message names the first few failures
  // with their reasons so the caller can see *why*, not just "failed".
  size_t NFailed = Out.Stats.count(core::Tactic::Failed);
  if (NFailed > Opts.MaxFailedSites) {
    std::string Msg =
        format("rewrite exceeded the failed-site budget: %zu sites failed "
               "(budget %zu)",
               NFailed, Opts.MaxFailedSites);
    size_t Listed = 0;
    for (const core::PatchSiteResult &S : Out.Sites) {
      if (S.Used != core::Tactic::Failed)
        continue;
      if (Listed == 8) {
        Msg += format("; ... and %zu more", NFailed - Listed);
        break;
      }
      Msg += format("%s %s (%s)", Listed ? "," : ":", hex(S.Addr).c_str(),
                    core::failureReasonName(S.Reason));
      ++Listed;
    }
    return Result<RewriteOutput>::error(Msg);
  }

  auto Grouped = core::groupPages(P.chunks(), Opts.Grouping);
  if (!Grouped)
    return Result<RewriteOutput>::error(
        format("grouping failed: %s", Grouped.reason().c_str()));
  Out.Grouping = Grouped.take();
  Out.Rewritten.Blocks = std::move(Out.Grouping.Blocks);
  Out.Rewritten.Mappings = Out.Grouping.Mappings;

  injectOutputCorruption(Out);

  Out.NewFileSize = elf::write(Out.Rewritten).size();

  if (Opts.Strict || Opts.Verify) {
    verify::VerifyInput VIn;
    VIn.Original = &In;
    VIn.Rewritten = &Out.Rewritten;
    VIn.Sites = &Out.Sites;
    VIn.Jumps = &Out.Jumps;
    VIn.Chunks = &Out.Chunks;
    VIn.ModifiedRanges = &Out.ModifiedRanges;
    Out.Verify = verify::verifyRewrite(VIn, Opts.VerifyOpts);
    if (Opts.Strict && !Out.Verify.ok())
      return Result<RewriteOutput>::error(Out.Verify.summary());
  }
  return Out;
}
