# Empty dependencies file for e9_frontend.
# This may be replaced when dependencies are built.
