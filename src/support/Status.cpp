//===- support/Status.cpp -------------------------------------*- C++ -*-===//

#include "support/Status.h"

#include <cstdio>
#include <cstdlib>

void e9::unreachableInternal(const char *Msg, const char *File,
                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
