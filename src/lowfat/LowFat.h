//===- lowfat/LowFat.h - Low-fat pointer heap runtime ----------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The liblowfat analog used by the §6.3 heap-write hardening application.
/// Low-fat pointers encode bounds in the pointer's bit representation:
/// each power-of-two size class owns a dedicated region, and base(p) is
/// computable from p alone by rounding down to the slot size of p's
/// region. malloc returns slotBase + RedzoneSize, so the redzone check
///   p - base(p) >= RedzoneSize
/// rejects writes into the first RedzoneSize bytes of any slot — which is
/// where an overflow from the previous object lands (and where an
/// underflow from this object lands).
///
/// A PlainHeap (bump allocator, no checks) backs the uninstrumented runs.
/// Both install as VM host hooks for malloc/calloc/free.
///
//===----------------------------------------------------------------------===//

#ifndef E9_LOWFAT_LOWFAT_H
#define E9_LOWFAT_LOWFAT_H

#include "support/IntervalSet.h"
#include "support/Status.h"
#include "vm/Vm.h"

#include <array>
#include <cstdint>

namespace e9 {
namespace lowfat {

/// Redzone size in bytes (paper §6.3 uses 16).
inline constexpr uint64_t RedzoneSize = 16;

/// Heap layout: size classes 2^MinClassLog .. 2^MaxClassLog, one region
/// per class starting at HeapRegionStart.
inline constexpr unsigned MinClassLog = 5;  ///< 32-byte slots.
inline constexpr unsigned MaxClassLog = 20; ///< 1 MiB slots.
inline constexpr unsigned NumClasses = MaxClassLog - MinClassLog + 1;
inline constexpr uint64_t RegionSize = 1ull << 34; ///< 16 GiB per class.
inline constexpr uint64_t HeapRegionStart = 0x100000000000ULL;
inline constexpr uint64_t HeapRegionEnd =
    HeapRegionStart + NumClasses * RegionSize;

/// The address range trampolines must avoid when the program will use the
/// heap runtime (pass as RewriteOptions::ExtraReserved).
inline Interval heapReservation() {
  return Interval{HeapRegionStart, HeapRegionEnd};
}

/// Simple bump allocator without any metadata or checks: the baseline
/// runtime for uninstrumented and empty-instrumentation runs.
class PlainHeap {
public:
  /// Allocates \p Size bytes of guest memory (mapping pages on demand).
  Result<uint64_t> alloc(vm::Vm &V, uint64_t Size);
  Status free(vm::Vm &V, uint64_t Ptr);

  uint64_t allocatedBytes() const { return Bump - HeapRegionStart; }

private:
  uint64_t Bump = HeapRegionStart;
};

/// The low-fat size-class heap with redzones.
class LowFatHeap {
public:
  /// When true (default) a redzone violation faults the program (the
  /// "abort" policy); when false it is only counted.
  bool AbortOnViolation = true;

  Result<uint64_t> alloc(vm::Vm &V, uint64_t Size);
  Status free(vm::Vm &V, uint64_t Ptr);

  /// base(p): the low-fat base operation. Non-heap pointers return p
  /// itself (no check applies to them).
  uint64_t base(uint64_t Ptr) const;
  /// True when p points into a low-fat region.
  bool isHeapPtr(uint64_t Ptr) const {
    return Ptr >= HeapRegionStart && Ptr < HeapRegionEnd;
  }

  /// The redzone check called per instrumented write.
  Status check(uint64_t Ptr);

  uint64_t violations() const { return Violations; }
  uint64_t allocations() const { return Allocations; }

private:
  std::array<uint64_t, NumClasses> BumpIndex{}; ///< Next free slot/class.
  uint64_t Violations = 0;
  uint64_t Allocations = 0;
};

/// Installs malloc/calloc/free hooks backed by \p Heap (kept alive by the
/// caller for the VM's lifetime).
void installPlainHeap(vm::Vm &V, PlainHeap &Heap);

/// Installs malloc/calloc/free plus the LowFat redzone-check hook.
void installLowFatHeap(vm::Vm &V, LowFatHeap &Heap);

} // namespace lowfat
} // namespace e9

#endif // E9_LOWFAT_LOWFAT_H
