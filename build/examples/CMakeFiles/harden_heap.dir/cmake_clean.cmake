file(REMOVE_RECURSE
  "CMakeFiles/harden_heap.dir/harden_heap.cpp.o"
  "CMakeFiles/harden_heap.dir/harden_heap.cpp.o.d"
  "harden_heap"
  "harden_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harden_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
