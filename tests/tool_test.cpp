//===- tests/tool_test.cpp - e9tool CLI end-to-end ------------*- C++ -*-===//
//
// Drives the e9tool binary through its full gen -> info -> disasm ->
// rewrite -> run pipeline on real files, exactly as a user would.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef E9TOOL_PATH
#define E9TOOL_PATH "e9tool"
#endif

std::string tmpPath(const char *Name) {
  // Pid-qualified: ctest runs each test case as its own process, so
  // fixed names race across cases when the suite runs under `ctest -j`.
  return ::testing::TempDir() + "/" +
         std::to_string(static_cast<long>(::getpid())) + "_" + Name;
}

/// Runs e9tool with \p Args, capturing stdout; returns the exit code.
int runTool(const std::string &Args, std::string &Output) {
  std::string OutFile = tmpPath("e9tool_out.txt");
  std::string Cmd =
      std::string(E9TOOL_PATH) + " " + Args + " > " + OutFile + " 2>&1";
  int Rc = std::system(Cmd.c_str());
  std::ifstream In(OutFile);
  Output.assign(std::istreambuf_iterator<char>(In),
                std::istreambuf_iterator<char>());
  return Rc;
}

} // namespace

TEST(Tool, FullPipeline) {
  std::string Bin = tmpPath("tool_demo.elf");
  std::string Patched = tmpPath("tool_demo.patched");
  std::string Out;

  ASSERT_EQ(runTool("gen " + Bin + " --seed=9 --funcs=8", Out), 0) << Out;
  EXPECT_NE(Out.find("wrote"), std::string::npos);

  ASSERT_EQ(runTool("info " + Bin, Out), 0) << Out;
  EXPECT_NE(Out.find("segment text"), std::string::npos);

  ASSERT_EQ(runTool("disasm " + Bin + " --limit=5", Out), 0) << Out;
  EXPECT_NE(Out.find("push %rbp"), std::string::npos);

  ASSERT_EQ(runTool("rewrite " + Bin + " " + Patched + " --select=jumps",
                    Out),
            0)
      << Out;
  EXPECT_NE(Out.find("100.00% success"), std::string::npos) << Out;

  ASSERT_EQ(runTool("info " + Patched, Out), 0) << Out;
  EXPECT_NE(Out.find("rewritten:"), std::string::npos);

  std::string RunOrig, RunPatched;
  ASSERT_EQ(runTool("run " + Bin, RunOrig), 0) << RunOrig;
  ASSERT_EQ(runTool("run " + Patched, RunPatched), 0) << RunPatched;
  // Same observable result line ("result rax = ...").
  auto ResultLine = [](const std::string &S) {
    size_t P = S.find("result rax = ");
    size_t E = S.find(',', P);
    return S.substr(P, E - P);
  };
  EXPECT_EQ(ResultLine(RunOrig), ResultLine(RunPatched));
}

TEST(Tool, ForceB0RoundTrip) {
  std::string Bin = tmpPath("tool_b0.elf");
  std::string Patched = tmpPath("tool_b0.patched");
  std::string Out;
  ASSERT_EQ(runTool("gen " + Bin + " --seed=10 --funcs=6", Out), 0);
  ASSERT_EQ(runTool("rewrite " + Bin + " " + Patched +
                        " --select=heapwrites --force-b0",
                    Out),
            0)
      << Out;
  EXPECT_NE(Out.find("B0"), std::string::npos);
  // The B0 side table travels inside the file; run must succeed.
  ASSERT_EQ(runTool("run " + Patched, Out), 0) << Out;
  EXPECT_NE(Out.find("finished"), std::string::npos);
}

TEST(Tool, LowFatHardeningCatchesBug) {
  std::string Bin = tmpPath("tool_bug.elf");
  std::string Patched = tmpPath("tool_bug.patched");
  std::string Out;
  ASSERT_EQ(runTool("gen " + Bin + " --seed=11 --funcs=6 --bug", Out), 0);
  // Unhardened: finishes despite the overflow.
  ASSERT_EQ(runTool("run " + Bin, Out), 0) << Out;
  // Hardened + lowfat heap: the overflow faults.
  ASSERT_EQ(runTool("rewrite " + Bin + " " + Patched +
                        " --select=heapwrites --tramp=lowfat",
                    Out),
            0)
      << Out;
  EXPECT_NE(runTool("run " + Patched + " --lowfat", Out), 0);
  EXPECT_NE(Out.find("redzone"), std::string::npos) << Out;
}

TEST(Tool, BadInputsFailGracefully) {
  std::string Out;
  EXPECT_NE(runTool("info /nonexistent.elf", Out), 0);
  EXPECT_NE(runTool("frobnicate", Out), 0);
  EXPECT_NE(runTool("rewrite", Out), 0);
  std::string NotElf = tmpPath("notelf.bin");
  {
    std::ofstream F(NotElf);
    F << "hello";
  }
  EXPECT_NE(runTool("disasm " + NotElf, Out), 0);
}

TEST(Tool, RejectsUnknownAndMalformedOptions) {
  std::string Bin = tmpPath("tool_opt.elf");
  std::string Out;
  ASSERT_EQ(runTool("gen " + Bin + " --seed=12 --funcs=4", Out), 0);

  // Unknown options are hard errors, not silent no-ops.
  EXPECT_NE(runTool("rewrite " + Bin + " /dev/null --sterict", Out), 0);
  EXPECT_NE(Out.find("unknown option"), std::string::npos) << Out;

  // Integer options reject non-numeric values instead of coercing to 0.
  EXPECT_NE(runTool("rewrite " + Bin + " /dev/null --jobs=many", Out), 0);
  EXPECT_NE(Out.find("expects an integer"), std::string::npos) << Out;

  // Boolean flags reject stray values.
  EXPECT_NE(runTool("rewrite " + Bin + " /dev/null --strict=1", Out), 0);
  EXPECT_NE(Out.find("takes no value"), std::string::npos) << Out;
}

TEST(Tool, TraceAndStatsFlow) {
  std::string Bin = tmpPath("tool_trace.elf");
  std::string P1 = tmpPath("tool_trace1.patched");
  std::string P4 = tmpPath("tool_trace4.patched");
  std::string Plain = tmpPath("tool_trace_plain.patched");
  std::string T1 = tmpPath("tool_trace1.jsonl");
  std::string T4 = tmpPath("tool_trace4.jsonl");
  std::string Metrics = tmpPath("tool_trace.metrics.json");
  std::string Out;

  ASSERT_EQ(runTool("gen " + Bin + " --seed=13 --funcs=24", Out), 0);
  ASSERT_EQ(runTool("rewrite " + Bin + " " + P1 +
                        " --strict --jobs=1 --trace=" + T1,
                    Out),
            0)
      << Out;
  ASSERT_EQ(runTool("rewrite " + Bin + " " + P4 + " --strict --jobs=4" +
                        " --trace=" + T4 + " --metrics=" + Metrics,
                    Out),
            0)
      << Out;
  ASSERT_EQ(runTool("rewrite " + Bin + " " + Plain + " --strict", Out), 0);

  auto Slurp = [](const std::string &Path) {
    std::ifstream In(Path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  };
  // Trace byte-identical across --jobs; binary untouched by tracing.
  EXPECT_EQ(Slurp(T1), Slurp(T4));
  EXPECT_EQ(Slurp(P1), Slurp(P4));
  EXPECT_EQ(Slurp(P1), Slurp(Plain));
  EXPECT_NE(Slurp(Metrics).find("tactic.b1"), std::string::npos);

  // stats validates the schema and prints the per-tactic table.
  ASSERT_EQ(runTool("stats " + T4, Out), 0) << Out;
  EXPECT_NE(Out.find("tactic"), std::string::npos);
  EXPECT_NE(Out.find("B1"), std::string::npos);

  // A corrupted trace is a validation error.
  std::string Bad = tmpPath("tool_trace_bad.jsonl");
  {
    std::ofstream F(Bad, std::ios::binary);
    F << Slurp(T4) << "{\"ev\":\"wormhole\"}\n";
  }
  EXPECT_NE(runTool("stats " + Bad, Out), 0);
  EXPECT_NE(Out.find("schema violation"), std::string::npos) << Out;
}
