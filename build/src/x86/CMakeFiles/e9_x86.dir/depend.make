# Empty dependencies file for e9_x86.
# This may be replaced when dependencies are built.
