# Empty compiler generated dependencies file for vm_semantics_test.
# This may be replaced when dependencies are built.
