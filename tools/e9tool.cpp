//===- tools/e9tool.cpp - command-line front end ----------------*- C++ -*-===//
//
// The e9tool analog: generate, inspect, disassemble, rewrite, run and
// analyze binaries from the command line. Every subcommand is described
// by a declarative option table (name, kind, help); parsing, validation
// and the usage text all derive from the same table, so an option cannot
// exist without being documented and an unknown or malformed option is a
// hard error rather than a silent no-op.
//
//   e9tool gen <out.elf> [--seed=N] [--funcs=N] [--pie] [--bug]
//   e9tool info <elf>
//   e9tool disasm <elf> [--limit=N]
//   e9tool rewrite <in> <out> [--select=...] [--strict] [--jobs=N]
//          [--trace=FILE] [--metrics=FILE] [--profile=FILE]
//          [--profile-chrome=FILE] [--profile-folded=FILE]
//          [--self-verify] ...
//   e9tool repair <in> <out>   (rewrite with --self-verify implied)
//   e9tool run <elf> [--lowfat] [--max-insns=N]
//   e9tool stats <trace.jsonl>          ("-" = stdin)
//   e9tool stats --compare <A> <B> [--threshold=PCT]
//   e9tool corpus <out.json> [--jobs=N]
//   e9tool apply <script.jsonl> [--jobs=N] [--responses=FILE]
//   e9tool serve --stdin | --unix=PATH | --tcp=PORT [--jobs=N]
//          [--max-jobs=N] [--max-requests=N] [--max-templates=N]
//          [--max-conns=N] [--drain-ms=N] [--metrics=FILE]
//
//===----------------------------------------------------------------------===//

#include "api/Driver.h"
#include "api/Serve.h"
#include "frontend/Disasm.h"
#include "frontend/Prescan.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "obs/JsonWriter.h"
#include "repair/Repair.h"
#include "obs/Profile.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Timing.h"
#include "vm/Hooks.h"
#include "workload/Gen.h"
#include "workload/Run.h"
#include "x86/Printer.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

using namespace e9;

namespace {

//===----------------------------------------------------------------------===//
// Declarative option tables
//===----------------------------------------------------------------------===//

enum class OptKind {
  Flag, ///< Boolean --name; a value is an error.
  Str,  ///< --name=value, free-form string.
  Int,  ///< --name=N, validated as a full integer (0x ok).
};

struct OptSpec {
  const char *Name;
  OptKind Kind;
  const char *ValueName; ///< Shown in usage for Str/Int options.
  const char *Help;
};

struct CommandSpec {
  const char *Name;
  const char *Operands; ///< e.g. "<in> <out>".
  size_t MinOperands;
  const char *Help;
  const OptSpec *Opts;
  size_t NumOpts;
};

constexpr OptSpec GenOpts[] = {
    {"name", OptKind::Str, "NAME", "workload name stamped into the binary"},
    {"seed", OptKind::Int, "N", "workload generator seed (default 1)"},
    {"funcs", OptKind::Int, "N", "number of functions (default 12)"},
    {"iters", OptKind::Int, "N", "main loop iterations (default 5)"},
    {"pie", OptKind::Flag, nullptr, "emit a position-independent binary"},
    {"bug", OptKind::Flag, nullptr, "plant a heap overflow"},
};

constexpr OptSpec DisasmOpts[] = {
    {"limit", OptKind::Int, "N", "print at most N instructions"},
};

constexpr OptSpec RewriteOpts[] = {
    {"select", OptKind::Str, "jumps|heapwrites|all",
     "patch site selector (default jumps)"},
    {"tramp", OptKind::Str, "empty|lowfat",
     "trampoline payload (default empty)"},
    {"no-t1", OptKind::Flag, nullptr, "disable tactic T1 (padded puns)"},
    {"no-t2", OptKind::Flag, nullptr, "disable tactic T2 (successor evict)"},
    {"no-t3", OptKind::Flag, nullptr, "disable tactic T3 (neighbour evict)"},
    {"b0-fallback", OptKind::Flag, nullptr, "int3 fallback for failed sites"},
    {"force-b0", OptKind::Flag, nullptr, "int3 at every site (B0 baseline)"},
    {"no-grouping", OptKind::Flag, nullptr, "disable physical page grouping"},
    {"granularity", OptKind::Int, "M", "grouping block size in pages"},
    {"strict", OptKind::Flag, nullptr, "fail closed on any verifier finding"},
    {"verify", OptKind::Flag, nullptr, "run the verifier (advisory)"},
    {"differential", OptKind::Flag, nullptr,
     "differential execution check (with --strict/--verify)"},
    {"max-failed", OptKind::Int, "N", "failed-site error budget"},
    {"fault-inject", OptKind::Str, "SITE", "arm one fault-injection site"},
    {"jobs", OptKind::Int, "N",
     "patcher worker threads (0 = all hardware threads)"},
    {"timings", OptKind::Flag, nullptr, "print per-phase wall times"},
    {"trace", OptKind::Str, "FILE", "write the JSONL tactic trace to FILE"},
    {"metrics", OptKind::Str, "FILE", "write the metrics snapshot to FILE"},
    {"profile", OptKind::Str, "FILE",
     "write the hierarchical span-tree profile JSON to FILE (\"-\" = stdout)"},
    {"profile-chrome", OptKind::Str, "FILE",
     "write a Chrome trace-event file (load in Perfetto / about:tracing)"},
    {"profile-folded", OptKind::Str, "FILE",
     "write collapsed stacks (pipe to flamegraph.pl)"},
    {"trace-timings", OptKind::Flag, nullptr,
     "include wall-clock span events in the trace (nondeterministic)"},
    {"self-verify", OptKind::Flag, nullptr,
     "verify by VM execution and repair divergent sites"},
    {"repair-rounds", OptKind::Int, "N",
     "self-verify: max repair rounds (default 64)"},
    {"repair-runs", OptKind::Int, "N",
     "self-verify: max candidate VM runs (default 4096)"},
    {"repair-floor", OptKind::Str, "full|no-t3|no-t2|no-t1|b0",
     "self-verify: lowest demotion ceiling before revoking (default b0)"},
    {"step-limit", OptKind::Int, "N",
     "self-verify: candidate step budget (0 = auto from reference run)"},
    {"chaos", OptKind::Int, "N",
     "inject faulty trampolines at N executed sites (tests --self-verify)"},
};

constexpr OptSpec StatsOpts[] = {
    {"compare", OptKind::Flag, nullptr,
     "diff two metrics/BENCH JSON records: stats --compare <A> <B>"},
    {"threshold", OptKind::Str, "PCT",
     "--compare: tolerated regression percent (default 0)"},
};

constexpr OptSpec CorpusOpts[] = {
    {"jobs", OptKind::Int, "N",
     "patcher worker threads for the corpus rewrites (default 1)"},
};

constexpr OptSpec RunOpts[] = {
    {"lowfat", OptKind::Flag, nullptr, "enable the lowfat heap checker"},
    {"max-insns", OptKind::Int, "N", "instruction budget"},
};

constexpr OptSpec ApplyOpts[] = {
    {"jobs", OptKind::Int, "N",
     "override the script's jobs option (0 = all hardware threads)"},
    {"responses", OptKind::Str, "FILE",
     "write JSONL responses to FILE (default \"-\" = stdout)"},
};

constexpr OptSpec ServeOpts[] = {
    {"stdin", OptKind::Flag, nullptr,
     "serve one session from stdin, responses to stdout"},
    {"unix", OptKind::Str, "PATH",
     "listen on a unix-domain socket at PATH"},
    {"tcp", OptKind::Int, "PORT",
     "listen on 127.0.0.1:PORT (0 = ephemeral, port printed to stderr)"},
    {"jobs", OptKind::Int, "N",
     "override the clients' jobs option (0 = all hardware threads)"},
    {"max-jobs", OptKind::Int, "N",
     "per-session quota: jobs a client may run (0 = unlimited)"},
    {"max-requests", OptKind::Int, "N",
     "per-session quota: patch-request messages (0 = unlimited)"},
    {"max-templates", OptKind::Int, "N",
     "per-session quota: template definitions (0 = unlimited)"},
    {"max-conns", OptKind::Int, "N",
     "concurrent sessions; further connects get a capacity error "
     "(default 64)"},
    {"drain-ms", OptKind::Int, "N",
     "graceful-shutdown grace period for sessions with an open job "
     "(default 10000)"},
    {"metrics", OptKind::Str, "FILE",
     "write server metrics JSON to FILE on shutdown (\"-\" = stdout)"},
};

constexpr CommandSpec Commands[] = {
    {"gen", "<out.elf>", 1, "generate a synthetic test binary", GenOpts,
     std::size(GenOpts)},
    {"info", "<elf>", 1, "print image segments and rewrite artifacts",
     nullptr, 0},
    {"disasm", "<elf>", 1, "linear disassembly listing", DisasmOpts,
     std::size(DisasmOpts)},
    {"rewrite", "<in> <out>", 2, "rewrite a binary", RewriteOpts,
     std::size(RewriteOpts)},
    {"repair", "<in> <out>", 2,
     "rewrite with self-verification (--self-verify implied)", RewriteOpts,
     std::size(RewriteOpts)},
    {"run", "<elf>", 1, "execute under the VM", RunOpts, std::size(RunOpts)},
    {"stats", "<trace.jsonl>", 1,
     "validate a trace and print a Table-1-style summary; --compare diffs "
     "two metric records",
     StatsOpts, std::size(StatsOpts)},
    {"corpus", "<out.json>", 1,
     "run the adversarial robustness corpus, write a BENCH record",
     CorpusOpts, std::size(CorpusOpts)},
    {"apply", "<script.jsonl>", 1,
     "run a batch of patch-request jobs from a script", ApplyOpts,
     std::size(ApplyOpts)},
    {"serve", "", 0,
     "serve patch-request sessions over stdin or a unix/tcp socket",
     ServeOpts, std::size(ServeOpts)},
};

void printCommandUsage(FILE *To, const CommandSpec &C) {
  std::fprintf(To, "usage: e9tool %s %s\n", C.Name, C.Operands);
  for (size_t I = 0; I != C.NumOpts; ++I) {
    const OptSpec &O = C.Opts[I];
    std::string Left = std::string("--") + O.Name;
    if (O.Kind != OptKind::Flag)
      Left += std::string("=") + O.ValueName;
    std::fprintf(To, "  %-28s %s\n", Left.c_str(), O.Help);
  }
}

int usage() {
  std::fprintf(stderr, "usage: e9tool <command> ...\n");
  for (const CommandSpec &C : Commands)
    std::fprintf(stderr, "  %-10s %-18s %s\n", C.Name, C.Operands, C.Help);
  std::fprintf(stderr, "run `e9tool <command>` with no operands for that "
                       "command's options\n");
  return 2;
}

/// Parsed, table-validated arguments for one subcommand. Unknown options,
/// missing/extra values and non-numeric integers are all parse errors —
/// the two historical silent failure modes (ignored unknown flags,
/// `strtoull` coercing garbage to 0) are gone by construction.
class Args {
public:
  Args(const CommandSpec &Cmd, int Argc, char **Argv, int Start) : Cmd(Cmd) {
    for (int I = Start; I < Argc; ++I) {
      std::string A = Argv[I];
      if (A.rfind("--", 0) != 0) {
        Positional.push_back(std::move(A));
        continue;
      }
      size_t Eq = A.find('=');
      std::string Name =
          Eq == std::string::npos ? A.substr(2) : A.substr(2, Eq - 2);
      const OptSpec *O = find(Name);
      if (!O) {
        fail("unknown option --" + Name);
        return;
      }
      if (O->Kind == OptKind::Flag) {
        if (Eq != std::string::npos) {
          fail("option --" + Name + " takes no value");
          return;
        }
        Values[Name] = "";
        continue;
      }
      if (Eq == std::string::npos) {
        fail("option --" + Name + " requires =" +
             std::string(O->ValueName));
        return;
      }
      std::string V = A.substr(Eq + 1);
      if (O->Kind == OptKind::Int && !isInteger(V)) {
        fail("option --" + Name + " expects an integer, got \"" + V + "\"");
        return;
      }
      Values[Name] = std::move(V);
    }
    if (Positional.size() < Cmd.MinOperands)
      fail(std::string("missing operand(s): expected ") + Cmd.Operands);
  }

  bool ok() const { return Ok; }
  const std::vector<std::string> &positional() const { return Positional; }

  bool has(const char *Key) const {
    assertKnown(Key);
    return Values.count(Key) != 0;
  }
  std::string get(const char *Key, const char *Default = "") const {
    assertKnown(Key);
    auto It = Values.find(Key);
    return It == Values.end() ? Default : It->second;
  }
  uint64_t getInt(const char *Key, uint64_t Default) const {
    auto It = Values.find(Key);
    if (It == Values.end())
      return Default;
    return std::strtoull(It->second.c_str(), nullptr, 0); // Pre-validated.
  }

private:
  const OptSpec *find(const std::string &Name) const {
    for (size_t I = 0; I != Cmd.NumOpts; ++I)
      if (Name == Cmd.Opts[I].Name)
        return &Cmd.Opts[I];
    return nullptr;
  }
  /// Catches table/code drift: a typo'd key in a has()/get() call is a
  /// programming error, not a user error.
  void assertKnown(const char *Key) const {
    (void)Key;
    assert(find(Key) != nullptr && "option not in this command's table");
  }
  static bool isInteger(const std::string &V) {
    if (V.empty())
      return false;
    errno = 0;
    char *End = nullptr;
    (void)std::strtoull(V.c_str(), &End, 0);
    return errno == 0 && End == V.c_str() + V.size();
  }
  void fail(std::string Msg) {
    Ok = false;
    std::fprintf(stderr, "error: %s\n", Msg.c_str());
    printCommandUsage(stderr, Cmd);
  }

  const CommandSpec &Cmd;
  std::vector<std::string> Positional;
  std::map<std::string, std::string> Values;
  bool Ok = true;
};

Result<elf::Image> loadInput(const std::string &Path) {
  return elf::readFile(Path);
}

//===----------------------------------------------------------------------===//
// Subcommands
//===----------------------------------------------------------------------===//

int cmdGen(const Args &A) {
  workload::WorkloadConfig C;
  C.Name = A.get("name", "generated");
  C.Seed = A.getInt("seed", 1);
  C.NumFuncs = static_cast<unsigned>(A.getInt("funcs", 12));
  C.Pie = A.has("pie");
  C.HeapBug = A.has("bug");
  C.MainIters = static_cast<unsigned>(A.getInt("iters", 5));
  workload::Workload W = workload::generateWorkload(C);
  if (Status S = elf::writeFile(W.Image, A.positional()[0]); !S) {
    std::fprintf(stderr, "error: %s\n", S.reason().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu code bytes, entry %s%s\n",
              A.positional()[0].c_str(), W.Image.textSegment()->Bytes.size(),
              hex(W.Image.Entry).c_str(),
              C.HeapBug ? " (heap overflow planted)" : "");
  return 0;
}

int cmdInfo(const Args &A) {
  auto Img = loadInput(A.positional()[0]);
  if (!Img.isOk()) {
    std::fprintf(stderr, "error: %s\n", Img.reason().c_str());
    return 1;
  }
  std::printf("%s: %s, entry %s\n", A.positional()[0].c_str(),
              Img->Pie ? "PIE/shared" : "executable",
              hex(Img->Entry).c_str());
  for (const elf::Segment &S : Img->Segments)
    std::printf("  segment %-8s vaddr %s, file %llu, mem %llu, %c%c%c\n",
                S.Name.c_str(), hex(S.VAddr).c_str(),
                (unsigned long long)S.fileSize(),
                (unsigned long long)S.MemSize,
                (S.Flags & elf::PF_R) ? 'r' : '-',
                (S.Flags & elf::PF_W) ? 'w' : '-',
                (S.Flags & elf::PF_X) ? 'x' : '-');
  if (!Img->Blocks.empty()) {
    uint64_t Phys = 0;
    for (const elf::PhysBlock &B : Img->Blocks)
      Phys += B.Bytes.size();
    std::printf("  rewritten: %zu phys blocks (%llu bytes), %zu mappings, "
                "%zu B0 sites\n",
                Img->Blocks.size(), (unsigned long long)Phys,
                Img->Mappings.size(), Img->B0Sites.size());
  }
  return 0;
}

int cmdDisasm(const Args &A) {
  auto Img = loadInput(A.positional()[0]);
  if (!Img.isOk()) {
    std::fprintf(stderr, "error: %s\n", Img.reason().c_str());
    return 1;
  }
  frontend::DisasmResult D = frontend::linearDisassemble(*Img);
  uint64_t Limit = A.getInt("limit", D.Insns.size());
  const elf::Segment *Text = Img->textSegment();
  for (size_t I = 0; I != D.Insns.size() && I < Limit; ++I) {
    const x86::Insn &In = D.Insns[I];
    const uint8_t *Bytes = Text->Bytes.data() + (In.Address - Text->VAddr);
    std::printf("%12llx:  %-30s %s\n", (unsigned long long)In.Address,
                hexBytes(Bytes, In.Length).c_str(),
                x86::formatInsn(In, Bytes).c_str());
  }
  if (D.UndecodableBytes)
    std::printf("(%zu undecodable bytes skipped)\n", D.UndecodableBytes);
  return 0;
}

/// Writes \p Lines to \p Path ("-" = stdout), one per line.
bool writeLines(const std::string &Path,
                const std::vector<std::string> &Lines) {
  if (Path == "-") {
    for (const std::string &L : Lines)
      std::printf("%s\n", L.c_str());
    return true;
  }
  std::ofstream F(Path, std::ios::binary | std::ios::trunc);
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  for (const std::string &L : Lines)
    F << L << '\n';
  return static_cast<bool>(F);
}

/// Writes \p Text verbatim to \p Path ("-" = stdout).
bool writeText(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return true;
  }
  std::ofstream F(Path, std::ios::binary | std::ios::trunc);
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  F << Text;
  return static_cast<bool>(F);
}

bool parseCeilingOpt(const std::string &V, core::TacticCeiling &Out) {
  if (V == "full")
    Out = core::TacticCeiling::Full;
  else if (V == "no-t3")
    Out = core::TacticCeiling::NoT3;
  else if (V == "no-t2")
    Out = core::TacticCeiling::NoT2;
  else if (V == "no-t1")
    Out = core::TacticCeiling::NoT1;
  else if (V == "b0" || V == "b0-only")
    Out = core::TacticCeiling::B0Only;
  else
    return false;
  return true;
}

int cmdRewrite(const Args &A, bool ForceRepair) {
  auto Img = loadInput(A.positional()[0]);
  if (!Img.isOk()) {
    std::fprintf(stderr, "error: %s\n", Img.reason().c_str());
    return 1;
  }

  std::string Select = A.get("select", "jumps");
  std::vector<uint64_t> Locs;
  Stopwatch SelectSW;
  if (Select == "jumps")
    Locs = frontend::prescanSelect(*Img, frontend::SelectorKind::Jumps);
  else if (Select == "heapwrites")
    Locs = frontend::prescanSelect(*Img, frontend::SelectorKind::HeapWrites);
  else if (Select == "all")
    Locs = frontend::prescanSelect(*Img, frontend::SelectorKind::All);
  else {
    std::fprintf(stderr, "error: unknown --select=%s\n", Select.c_str());
    return 2;
  }
  double SelectMs = SelectSW.elapsedMs();

  frontend::RewriteOptions Opts;
  std::string Tramp = A.get("tramp", "empty");
  if (Tramp == "lowfat") {
    Opts.Patch.Spec.Kind = core::TrampolineKind::LowFatCheck;
    Opts.Patch.Spec.HookAddr = vm::HookLowFatCheck;
  } else if (Tramp == "empty") {
    Opts.Patch.Spec.Kind = core::TrampolineKind::Empty;
  } else {
    std::fprintf(stderr, "error: unknown --tramp=%s\n", Tramp.c_str());
    return 2;
  }
  Opts.Patch.EnableT1 = !A.has("no-t1");
  Opts.Patch.EnableT2 = !A.has("no-t2");
  Opts.Patch.EnableT3 = !A.has("no-t3");
  Opts.Patch.B0Fallback = A.has("b0-fallback");
  Opts.Patch.ForceB0 = A.has("force-b0");
  Opts.Grouping.Enabled = !A.has("no-grouping");
  Opts.Grouping.M = static_cast<unsigned>(A.getInt("granularity", 1));
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.withStrict(A.has("strict"))
      .withVerify(A.has("verify"))
      .withMaxFailedSites(A.getInt("max-failed", SIZE_MAX))
      .withJobs(static_cast<unsigned>(A.getInt("jobs", 1)));
  Opts.Verify.Opts.Differential = A.has("differential");
  Opts.Verify.Opts.UseLowFatHeap = Tramp == "lowfat";

  std::string TracePath = A.get("trace");
  std::string MetricsPath = A.get("metrics");
  std::string ProfilePath = A.get("profile");
  std::string ChromePath = A.get("profile-chrome");
  std::string FoldedPath = A.get("profile-folded");
  bool WantProfile =
      !ProfilePath.empty() || !ChromePath.empty() || !FoldedPath.empty();
  Opts.withTrace(!TracePath.empty())
      .withTraceTimings(A.has("trace-timings"))
      .withProfile(WantProfile);
  if (Opts.Trace.Timings && TracePath.empty()) {
    std::fprintf(stderr, "error: --trace-timings requires --trace=FILE\n");
    return 2;
  }

  std::string FaultSite = A.get("fault-inject");
  if (!FaultSite.empty()) {
    if (!FaultInjector::isKnownSite(FaultSite)) {
      std::fprintf(stderr, "error: unknown fault site %s; known sites:\n",
                   FaultSite.c_str());
      for (const std::string &S : FaultInjector::sites())
        std::fprintf(stderr, "  %s\n", S.c_str());
      return 2;
    }
    FaultInjector::instance().arm(FaultSite);
  }

  bool Repair = ForceRepair || A.has("self-verify");
  Opts.Repair.Enabled = Repair;
  Opts.Repair.MaxRounds = A.getInt("repair-rounds", 64);
  Opts.Repair.MaxCandidateRuns = A.getInt("repair-runs", 4096);
  Opts.Repair.StepLimit = A.getInt("step-limit", 0);
  std::string Floor = A.get("repair-floor", "b0");
  if (!parseCeilingOpt(Floor, Opts.Repair.DemotionFloor)) {
    std::fprintf(stderr, "error: unknown --repair-floor=%s\n", Floor.c_str());
    return 2;
  }

  uint64_t Chaos = A.getInt("chaos", 0);
  if (Chaos > 0) {
    auto Sites = repair::executedSites(*Img, Locs, Chaos);
    if (!Sites.isOk()) {
      std::fprintf(stderr, "error: %s\n", Sites.reason().c_str());
      return 1;
    }
    Opts = repair::sabotage(
        std::move(Opts), std::set<uint64_t>(Sites->begin(), Sites->end()));
    std::printf("chaos: sabotaged %zu executed site(s)\n", Sites->size());
  }

  frontend::RewriteOutput Rewritten;
  repair::RepairReport Rep;
  obs::MetricsSnapshot RepairMetrics;
  if (Repair) {
    auto R = repair::selfVerifyingRewrite(*Img, Locs, Opts);
    if (!R.isOk()) {
      std::fprintf(stderr, "error: %s\n", R.reason().c_str());
      return 1;
    }
    Rep = R->Report;
    RepairMetrics = R->Metrics;
    if (!Rep.Converged) {
      // Fail closed: never emit a binary whose VM end state is known to
      // differ from the original's.
      std::fprintf(stderr,
                   "error: self-verification did not converge after %llu "
                   "round(s): %s%s%s\n",
                   (unsigned long long)Rep.Rounds,
                   repair::divergenceKindName(Rep.Final.Kind),
                   Rep.Final.Detail.empty() ? "" : ": ",
                   Rep.Final.Detail.c_str());
      return 1;
    }
    Rewritten = std::move(R->Rewrite);
  } else {
    auto R = frontend::rewrite(*Img, Locs, Opts);
    if (!R.isOk()) {
      std::fprintf(stderr, "error: %s\n", R.reason().c_str());
      return 1;
    }
    Rewritten = R.take();
  }
  if (WantProfile) {
    // prescanSelect runs before rewrite() creates its collector, so the
    // tool grafts the selection pass as the tree's first child. Position
    // and shape are deterministic; only the ms values are wall-clock.
    obs::ProfileNode Sel;
    Sel.Name = "select";
    Sel.Count = 1;
    Sel.TotalMs = Sel.SelfMs = SelectMs;
    Rewritten.Profile.Tree.Children.insert(
        Rewritten.Profile.Tree.Children.begin(), std::move(Sel));
    obs::SpanEvent SE;
    SE.Name = "select";
    SE.DurUs = SelectMs * 1000.0;
    Rewritten.Profile.Events.insert(Rewritten.Profile.Events.begin(),
                                    std::move(SE));
  }
  const frontend::RewriteOutput *Out = &Rewritten;
  if (Status S = elf::writeFile(Out->Rewritten, A.positional()[1]); !S) {
    std::fprintf(stderr, "error: %s\n", S.reason().c_str());
    return 1;
  }
  if (!TracePath.empty() && !writeLines(TracePath, Out->Trace))
    return 1;
  if (!ProfilePath.empty() &&
      !writeText(ProfilePath, obs::profileToJson(Out->Profile.Tree) + "\n"))
    return 1;
  if (!ChromePath.empty() &&
      !writeText(ChromePath,
                 obs::profileToChromeTrace(Out->Profile.Events) + "\n"))
    return 1;
  if (!FoldedPath.empty() &&
      !writeText(FoldedPath, obs::profileToCollapsed(Out->Profile.Tree)))
    return 1;
  if (!MetricsPath.empty()) {
    std::vector<std::string> MetricLines = {Out->Metrics.toJson()};
    if (Repair)
      MetricLines.push_back(RepairMetrics.toJson());
    if (!writeLines(MetricsPath, MetricLines))
      return 1;
  }

  const core::PatchStats &St = Out->Stats;
  std::printf("%s -> %s\n", A.positional()[0].c_str(),
              A.positional()[1].c_str());
  std::printf("  locations %zu: B1 %zu, B2 %zu, T1 %zu, T2 %zu, T3 %zu, "
              "B0 %zu, failed %zu (%.2f%% success)\n",
              St.NLoc, St.count(core::Tactic::B1),
              St.count(core::Tactic::B2), St.count(core::Tactic::T1),
              St.count(core::Tactic::T2), St.count(core::Tactic::T3),
              St.count(core::Tactic::B0), St.count(core::Tactic::Failed),
              St.succPct());
  std::printf("  file %llu -> %llu bytes (%.2f%%), %zu mappings, "
              "%llu phys bytes\n",
              (unsigned long long)Out->OrigFileSize,
              (unsigned long long)Out->NewFileSize, Out->sizePct(),
              Out->Grouping.MappingCount,
              (unsigned long long)Out->Grouping.PhysBytes);
  if (Opts.Verify.Strict || Opts.Verify.Enabled)
    std::printf("  %s\n", Out->Verify.summary().c_str());
  if (Repair) {
    size_t Demoted = 0, Revoked = 0;
    for (const repair::SiteRepair &S : Rep.Sites)
      (S.Revoked ? Revoked : Demoted)++;
    std::printf("  self-verify: converged after %llu round(s), %llu "
                "candidate run(s), %llu rewrite(s)\n",
                (unsigned long long)Rep.Rounds,
                (unsigned long long)Rep.CandidateRuns,
                (unsigned long long)Rep.Rewrites);
    std::printf("  repairs: %zu demoted, %zu revoked; %llu snapshot "
                "restore(s), %llu cold load(s)\n",
                Demoted, Revoked, (unsigned long long)Rep.SnapshotRestores,
                (unsigned long long)Rep.ColdLoads);
    for (const repair::SiteRepair &S : Rep.Sites)
      std::printf("    site %s: %s (was %s, round %llu)\n",
                  hex(S.Addr).c_str(),
                  S.Revoked ? "revoked"
                            : core::tacticCeilingName(S.Ceiling),
                  core::tacticName(S.From), (unsigned long long)S.Round);
  }
  if (A.has("timings") || Opts.Parallel.Jobs != 1) {
    const obs::PhaseProfile &P = Out->Profile;
    std::printf("  shards %zu (%zu redone), %u job(s)\n", Out->ShardCount,
                Out->ShardsRedone, Out->JobsUsed);
    std::printf("  phases: disasm %.2fms, patch %.2fms, merge %.2fms, "
                "group %.2fms, write %.2fms, verify %.2fms, total %.2fms\n",
                P.ms("disasm"), P.ms("patch"), P.ms("merge"), P.ms("group"),
                P.ms("write"), P.ms("verify"), P.TotalMs);
  }
  return 0;
}

int cmdRun(const Args &A) {
  auto Img = loadInput(A.positional()[0]);
  if (!Img.isOk()) {
    std::fprintf(stderr, "error: %s\n", Img.reason().c_str());
    return 1;
  }
  workload::RunConfig RC;
  RC.UseLowFat = A.has("lowfat");
  RC.MaxInsns = A.getInt("max-insns", 100'000'000);
  workload::RunOutcome R = workload::runImage(*Img, RC);
  std::printf("%s: %s\n", A.positional()[0].c_str(),
              R.ok() ? "finished" : R.Result.Error.c_str());
  std::printf("  result rax = 0x%llx, %llu instructions, cost %llu\n",
              (unsigned long long)R.Rax,
              (unsigned long long)R.Result.InsnCount,
              (unsigned long long)R.Result.Cost);
  if (RC.UseLowFat)
    std::printf("  lowfat violations: %llu\n",
                (unsigned long long)R.LowFatViolations);
  return R.ok() ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// stats: trace validation + Table-1-style aggregation
//===----------------------------------------------------------------------===//

/// Field requirement kinds for the trace schema.
enum class FieldKind { Num, Str, Bool, Hex };

struct FieldSpec {
  const char *Name;
  FieldKind Kind;
  bool Required;
};

struct EventSpec {
  const char *Ev;
  const FieldSpec *Fields;
  size_t NumFields;
};

constexpr FieldSpec MetaFields[] = {
    {"version", FieldKind::Num, true}, {"sites", FieldKind::Num, true}};
constexpr FieldSpec AttemptFields[] = {
    {"site", FieldKind::Hex, true},    {"tactic", FieldKind::Str, true},
    {"ok", FieldKind::Bool, true},     {"reason", FieldKind::Str, false},
    {"tramp", FieldKind::Hex, false},  {"pads", FieldKind::Num, false},
    {"pun_bytes", FieldKind::Num, false}, {"victim", FieldKind::Hex, false},
    {"rescue", FieldKind::Bool, false}};
constexpr FieldSpec SiteFields[] = {
    {"addr", FieldKind::Hex, true},
    {"tactic", FieldKind::Str, true},
    {"tramp", FieldKind::Hex, false},
    {"reason", FieldKind::Str, false}};
constexpr FieldSpec RescueFields[] = {{"victim", FieldKind::Hex, true},
                                      {"via", FieldKind::Str, true},
                                      {"tramp", FieldKind::Hex, true}};
constexpr FieldSpec ShardFields[] = {
    {"id", FieldKind::Num, true},     {"sites", FieldKind::Num, true},
    {"lo", FieldKind::Hex, true},     {"hi", FieldKind::Hex, true},
    {"window", FieldKind::Hex, true}, {"redo", FieldKind::Bool, true}};
constexpr FieldSpec GroupFields[] = {
    {"virtual_blocks", FieldKind::Num, true},
    {"phys_blocks", FieldKind::Num, true},
    {"phys_bytes", FieldKind::Num, true},
    {"mappings", FieldKind::Num, true}};
constexpr FieldSpec VerifyFields[] = {{"kind", FieldKind::Str, true},
                                      {"addr", FieldKind::Hex, true},
                                      {"msg", FieldKind::Str, true}};
constexpr FieldSpec SpanFields[] = {{"name", FieldKind::Str, true},
                                    {"shard", FieldKind::Num, false},
                                    {"ms", FieldKind::Num, true}};
constexpr FieldSpec DegradedFields[] = {{"failed", FieldKind::Num, true},
                                        {"budget", FieldKind::Num, false}};
constexpr FieldSpec RepairDivergenceFields[] = {
    {"round", FieldKind::Num, true},
    {"kind", FieldKind::Str, true},
    {"detail", FieldKind::Str, false}};
constexpr FieldSpec RepairSiteFields[] = {
    {"site", FieldKind::Hex, true},   {"action", FieldKind::Str, true},
    {"from", FieldKind::Str, false},  {"ceiling", FieldKind::Str, false},
    {"round", FieldKind::Num, true}};
constexpr FieldSpec RepairSummaryFields[] = {
    {"converged", FieldKind::Bool, true},
    {"rounds", FieldKind::Num, true},
    {"candidate_runs", FieldKind::Num, true},
    {"rewrites", FieldKind::Num, true},
    {"demoted", FieldKind::Num, true},
    {"revoked", FieldKind::Num, true},
    {"snapshot_restores", FieldKind::Num, true},
    {"cold_loads", FieldKind::Num, true}};
constexpr FieldSpec SummaryFields[] = {
    {"sites", FieldKind::Num, true},      {"b1", FieldKind::Num, true},
    {"b2", FieldKind::Num, true},         {"t1", FieldKind::Num, true},
    {"t2", FieldKind::Num, true},         {"t3", FieldKind::Num, true},
    {"b0", FieldKind::Num, true},         {"failed", FieldKind::Num, true},
    {"evictions", FieldKind::Num, true},  {"rescued", FieldKind::Num, true},
    {"tramp_bytes", FieldKind::Num, true},
    {"succ_pct", FieldKind::Num, true}};

constexpr EventSpec Events[] = {
    {"meta", MetaFields, std::size(MetaFields)},
    {"attempt", AttemptFields, std::size(AttemptFields)},
    {"site", SiteFields, std::size(SiteFields)},
    {"rescue", RescueFields, std::size(RescueFields)},
    {"shard", ShardFields, std::size(ShardFields)},
    {"group", GroupFields, std::size(GroupFields)},
    {"verify", VerifyFields, std::size(VerifyFields)},
    {"span", SpanFields, std::size(SpanFields)},
    {"degraded", DegradedFields, std::size(DegradedFields)},
    {"repair_divergence", RepairDivergenceFields,
     std::size(RepairDivergenceFields)},
    {"repair_site", RepairSiteFields, std::size(RepairSiteFields)},
    {"repair_summary", RepairSummaryFields, std::size(RepairSummaryFields)},
    {"summary", SummaryFields, std::size(SummaryFields)},
};

bool isHexString(const obs::JsonValue &V) {
  if (!V.isString() || V.Str.size() < 3 || V.Str.rfind("0x", 0) != 0)
    return false;
  for (size_t I = 2; I != V.Str.size(); ++I)
    if (!std::isxdigit(static_cast<unsigned char>(V.Str[I])))
      return false;
  return true;
}

/// Validates one parsed event object against the schema table; returns an
/// empty string on success, else the violation.
std::string validateEvent(const std::map<std::string, obs::JsonValue> &Obj) {
  auto EvIt = Obj.find("ev");
  if (EvIt == Obj.end() || !EvIt->second.isString())
    return "missing/non-string \"ev\" field";
  const EventSpec *Spec = nullptr;
  for (const EventSpec &E : Events)
    if (EvIt->second.Str == E.Ev) {
      Spec = &E;
      break;
    }
  if (!Spec)
    return "unknown event type \"" + EvIt->second.Str + "\"";
  for (size_t I = 0; I != Spec->NumFields; ++I) {
    const FieldSpec &F = Spec->Fields[I];
    auto It = Obj.find(F.Name);
    if (It == Obj.end()) {
      if (F.Required)
        return std::string(Spec->Ev) + ": missing field \"" + F.Name + "\"";
      continue;
    }
    const obs::JsonValue &V = It->second;
    bool TypeOk = false;
    switch (F.Kind) {
    case FieldKind::Num:
      TypeOk = V.isNumber();
      break;
    case FieldKind::Str:
      TypeOk = V.isString();
      break;
    case FieldKind::Bool:
      TypeOk = V.isBool();
      break;
    case FieldKind::Hex:
      TypeOk = isHexString(V);
      break;
    }
    if (!TypeOk)
      return std::string(Spec->Ev) + ": field \"" + F.Name +
             "\" has the wrong type";
  }
  for (const auto &[K, V] : Obj) {
    if (K == "ev")
      continue;
    bool Known = false;
    for (size_t I = 0; I != Spec->NumFields; ++I)
      if (K == Spec->Fields[I].Name)
        Known = true;
    if (!Known)
      return std::string(Spec->Ev) + ": unknown field \"" + K + "\"";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// stats --compare: the cross-PR regression scoreboard
//===----------------------------------------------------------------------===//

/// Flattens every numeric leaf of arbitrary JSON text into dotted paths
/// ({"a":{"b":[1,2]}} -> a.b.0, a.b.1), booleans as 0/1. Multiple
/// top-level values (JSONL metric files) get "#N." prefixes past the
/// first. Strings and nulls are skipped: the scoreboard compares numbers.
class JsonFlattener {
public:
  /// \p Text must outlive the call and be NUL-terminated (std::string).
  bool run(const std::string &Text, std::map<std::string, double> &Values) {
    P = Text.c_str();
    End = P + Text.size();
    Out = &Values;
    size_t N = 0;
    skipWs();
    while (P != End) {
      if (!value(N == 0 ? "" : format("#%zu", N)))
        return false;
      ++N;
      skipWs();
    }
    return N > 0;
  }

private:
  void skipWs() {
    while (P != End &&
           (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  static std::string join(const std::string &A, const std::string &B) {
    return A.empty() ? B : A + "." + B;
  }
  bool lit(const char *Word, size_t Len) {
    if (static_cast<size_t>(End - P) < Len ||
        std::strncmp(P, Word, Len) != 0)
      return false;
    P += Len;
    return true;
  }
  bool value(const std::string &Path) {
    skipWs();
    if (P == End)
      return false;
    switch (*P) {
    case '{':
      return object(Path);
    case '[':
      return array(Path);
    case '"': {
      std::string Skip;
      return quoted(Skip);
    }
    case 't':
      if (!lit("true", 4))
        return false;
      (*Out)[Path] = 1;
      return true;
    case 'f':
      if (!lit("false", 5))
        return false;
      (*Out)[Path] = 0;
      return true;
    case 'n':
      return lit("null", 4);
    default: {
      char *NumEnd = nullptr;
      double V = std::strtod(P, &NumEnd);
      if (NumEnd == P || NumEnd > End)
        return false;
      P = NumEnd;
      (*Out)[Path] = V;
      return true;
    }
    }
  }
  bool object(const std::string &Path) {
    ++P; // '{'
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (P == End || *P != '"' || !quoted(Key))
        return false;
      skipWs();
      if (P == End || *P != ':')
        return false;
      ++P;
      if (!value(join(Path, Key)))
        return false;
      skipWs();
      if (P == End)
        return false;
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }
  bool array(const std::string &Path) {
    ++P; // '['
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    for (size_t I = 0;; ++I) {
      if (!value(join(Path, format("%zu", I))))
        return false;
      skipWs();
      if (P == End)
        return false;
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }
  /// Consumes a quoted string; escape contents are irrelevant here, so
  /// backslash just shields the next byte from the closing-quote check.
  bool quoted(std::string &S) {
    ++P; // '"'
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return false;
      }
      S.push_back(*P);
      ++P;
    }
    if (P == End)
      return false;
    ++P;
    return true;
  }

  const char *P = nullptr;
  const char *End = nullptr;
  std::map<std::string, double> *Out = nullptr;
};

/// Which way "better" points for one metric, keyed off the leaf name.
/// Neutral metrics are reported but never count as regressions (a changed
/// site count is information, not a verdict).
enum class MetricDir { HigherBetter, LowerBetter, Neutral };

MetricDir metricDirFor(const std::string &Path) {
  size_t Dot = Path.rfind('.');
  std::string Leaf = Dot == std::string::npos ? Path : Path.substr(Dot + 1);
  auto Has = [&](const char *S) {
    return Leaf.find(S) != std::string::npos;
  };
  // Lower-better first: "revoked" contains "ok" and must not be
  // misclassified as higher-better.
  if (Has("ms") || Has("_ns") || Has("_us") || Has("time") || Has("bytes") ||
      Has("fail") || Has("revoked") || Has("violation") || Has("finding"))
    return MetricDir::LowerBetter;
  if (Has("pct") || Has("rate") || Has("pass") || Has("ok") ||
      Has("succ") || Has("converged"))
    return MetricDir::HigherBetter;
  return MetricDir::Neutral;
}

bool readAllText(const std::string &Path, std::string &Out) {
  std::ostringstream SS;
  if (Path == "-") {
    SS << std::cin.rdbuf();
  } else {
    std::ifstream F(Path, std::ios::binary);
    if (!F) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
      return false;
    }
    SS << F.rdbuf();
  }
  Out = SS.str();
  return true;
}

int cmdStatsCompare(const Args &A) {
  if (A.positional().size() < 2) {
    std::fprintf(stderr,
                 "error: --compare needs two records: e9tool stats "
                 "--compare <A.json> <B.json>\n");
    return 2;
  }
  std::string TStr = A.get("threshold", "0");
  char *TEnd = nullptr;
  double Threshold = std::strtod(TStr.c_str(), &TEnd);
  if (TEnd != TStr.c_str() + TStr.size() || Threshold < 0) {
    std::fprintf(stderr, "error: --threshold expects a non-negative "
                         "percent, got \"%s\"\n",
                 TStr.c_str());
    return 2;
  }

  const std::string &PathA = A.positional()[0];
  const std::string &PathB = A.positional()[1];
  std::map<std::string, double> Base, New;
  const std::pair<const std::string *, std::map<std::string, double> *>
      Sides[] = {{&PathA, &Base}, {&PathB, &New}};
  for (auto [Path, Into] : Sides) {
    std::string Text;
    if (!readAllText(*Path, Text))
      return 1;
    if (!JsonFlattener().run(Text, *Into)) {
      std::fprintf(stderr, "error: %s: not parseable as JSON record(s)\n",
                   Path->c_str());
      return 1;
    }
  }

  std::printf("comparing %s (baseline) -> %s, threshold %.2f%%\n",
              PathA.c_str(), PathB.c_str(), Threshold);
  size_t Regressions = 0, Improvements = 0, Changed = 0, OnlyB = 0;
  std::vector<std::string> OnlyA;
  for (const auto &[K, VA] : Base) {
    auto It = New.find(K);
    if (It == New.end()) {
      OnlyA.push_back(K);
      continue;
    }
    double VB = It->second;
    if (VA == VB)
      continue;
    ++Changed;
    double Pct = VA != 0 ? (VB - VA) / std::fabs(VA) * 100.0
                         : (VB > VA ? 100.0 : -100.0);
    MetricDir D = metricDirFor(K);
    bool Worse = (D == MetricDir::HigherBetter && Pct < -Threshold) ||
                 (D == MetricDir::LowerBetter && Pct > Threshold);
    bool Better = (D == MetricDir::HigherBetter && Pct > Threshold) ||
                  (D == MetricDir::LowerBetter && Pct < -Threshold);
    Regressions += Worse;
    Improvements += Better;
    std::printf("  %-44s %12.6g -> %12.6g  %+9.2f%%  %s\n", K.c_str(), VA,
                VB, Pct,
                Worse ? "REGRESSION" : Better ? "improved" : "changed");
  }
  for (const auto &KV : New)
    OnlyB += Base.count(KV.first) == 0;
  for (const std::string &K : OnlyA)
    std::printf("  %-44s (missing from %s)\n", K.c_str(), PathB.c_str());
  std::printf("%zu metric(s) changed (%zu improved, %zu regressed), "
              "%zu dropped, %zu new\n",
              Changed, Improvements, Regressions, OnlyA.size(), OnlyB);
  return Regressions ? 3 : 0;
}

int cmdStats(const Args &A) {
  if (A.has("compare"))
    return cmdStatsCompare(A);
  const std::string &Path = A.positional()[0];
  const char *Name = Path == "-" ? "<stdin>" : Path.c_str();
  std::ifstream FS;
  if (Path != "-") {
    FS.open(Path, std::ios::binary);
    if (!FS) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
      return 1;
    }
  }
  std::istream &F = Path == "-" ? static_cast<std::istream &>(std::cin)
                                : static_cast<std::istream &>(FS);

  // Final tactic per site, assembled from "site" events with "rescue"
  // events applied on top (a rescued victim's failure is superseded by the
  // eviction jump that reused its pending patch trampoline).
  std::map<std::string, uint64_t> SiteTactic; // tactic name -> count
  std::map<std::string, uint64_t> FailReasons;
  std::map<std::string, uint64_t> AttemptsOk, AttemptsFailed;
  uint64_t Lines = 0, Sites = 0, MetaSites = 0, Shards = 0, Redone = 0;
  uint64_t Rescues = 0, VerifyFindings = 0;
  bool SawSummary = false, SawMeta = false;

  std::string Line;
  size_t LineNo = 0;
  while (std::getline(F, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    auto Obj = obs::parseFlatObject(Line);
    if (!Obj.has_value()) {
      std::fprintf(stderr, "error: %s:%zu: malformed JSONL line\n", Name,
                   LineNo);
      return 1;
    }
    std::string Violation = validateEvent(*Obj);
    if (!Violation.empty()) {
      std::fprintf(stderr, "error: %s:%zu: schema violation: %s\n", Name,
                   LineNo, Violation.c_str());
      return 1;
    }
    ++Lines;
    const std::string &Ev = (*Obj)["ev"].Str;
    if (Ev == "meta") {
      SawMeta = true;
      MetaSites = (*Obj)["sites"].asU64();
    } else if (Ev == "attempt") {
      auto &Bucket = (*Obj)["ok"].B ? AttemptsOk : AttemptsFailed;
      ++Bucket[(*Obj)["tactic"].Str];
    } else if (Ev == "site") {
      ++Sites;
      ++SiteTactic[(*Obj)["tactic"].Str];
      auto It = Obj->find("reason");
      if (It != Obj->end())
        ++FailReasons[It->second.Str];
    } else if (Ev == "rescue") {
      ++Rescues;
      // The victim's own "site" event said "failed"; the rescue flips it.
      if (SiteTactic["failed"] == 0) {
        std::fprintf(stderr,
                     "error: %s:%zu: rescue event without a failed site\n",
                     Name, LineNo);
        return 1;
      }
      --SiteTactic["failed"];
      ++SiteTactic[(*Obj)["via"].Str];
    } else if (Ev == "shard") {
      ++Shards;
      if ((*Obj)["redo"].B)
        ++Redone;
    } else if (Ev == "verify") {
      ++VerifyFindings;
    } else if (Ev == "summary") {
      SawSummary = true;
      // Cross-check: the summary's per-tactic counts must agree with the
      // site events before it (with rescues applied on top).
      static const struct {
        const char *SummaryKey;
        const char *SiteTacticName;
      } Keys[] = {{"b1", "B1"}, {"b2", "B2"}, {"t1", "T1"},     {"t2", "T2"},
                  {"t3", "T3"}, {"b0", "B0"}, {"failed", "failed"}};
      for (const auto &K : Keys) {
        uint64_t Expect = (*Obj)[K.SummaryKey].asU64();
        auto It = SiteTactic.find(K.SiteTacticName);
        uint64_t Got = It == SiteTactic.end() ? 0 : It->second;
        if (Expect != Got) {
          std::fprintf(stderr,
                       "error: summary reports %s=%llu but the site/rescue "
                       "events add up to %llu\n",
                       K.SummaryKey, (unsigned long long)Expect,
                       (unsigned long long)Got);
          return 1;
        }
      }
      if ((*Obj)["sites"].asU64() != Sites) {
        std::fprintf(stderr,
                     "error: summary reports %llu sites but the trace "
                     "carries %llu site events\n",
                     (unsigned long long)(*Obj)["sites"].asU64(),
                     (unsigned long long)Sites);
        return 1;
      }
    }
  }

  if (!SawMeta || MetaSites != Sites) {
    std::fprintf(stderr,
                 "error: meta/site mismatch: meta says %llu, trace carries "
                 "%llu site events\n",
                 (unsigned long long)MetaSites, (unsigned long long)Sites);
    return 1;
  }

  auto Pct = [&](uint64_t N) {
    return Sites == 0 ? 0.0 : 100.0 * static_cast<double>(N) / Sites;
  };
  auto Count = [&](const char *K) -> uint64_t {
    auto It = SiteTactic.find(K);
    return It == SiteTactic.end() ? 0 : It->second;
  };

  std::printf("%s: %llu events, %llu sites, %llu shards (%llu redone)\n",
              Name, (unsigned long long)Lines, (unsigned long long)Sites,
              (unsigned long long)Shards, (unsigned long long)Redone);
  std::printf("%8s %10s %8s\n", "tactic", "sites", "%");
  for (const char *T : {"B1", "B2", "T1", "T2", "T3", "B0", "failed"})
    std::printf("%8s %10llu %7.2f%%\n", T, (unsigned long long)Count(T),
                Pct(Count(T)));
  uint64_t Succeeded = Sites - Count("failed") - Count("B0");
  std::printf("%8s %10llu %7.2f%%  (base %.2f%%, rescued %llu)\n", "ok",
              (unsigned long long)Succeeded, Pct(Succeeded),
              Pct(Count("B1") + Count("B2")), (unsigned long long)Rescues);
  if (!AttemptsFailed.empty() || !AttemptsOk.empty()) {
    std::printf("attempts:");
    for (const auto &[T, N] : AttemptsOk)
      std::printf(" %s ok=%llu", T.c_str(), (unsigned long long)N);
    for (const auto &[T, N] : AttemptsFailed)
      std::printf(" %s fail=%llu", T.c_str(), (unsigned long long)N);
    std::printf("\n");
  }
  if (!FailReasons.empty()) {
    std::printf("failure reasons:");
    for (const auto &[R, N] : FailReasons)
      std::printf(" %s=%llu", R.c_str(), (unsigned long long)N);
    std::printf("\n");
  }
  if (VerifyFindings)
    std::printf("verifier findings: %llu\n",
                (unsigned long long)VerifyFindings);
  if (!SawSummary)
    std::printf("(no trailing summary event)\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// corpus: adversarial robustness sweep
//===----------------------------------------------------------------------===//

struct CorpusEntry {
  const char *Name;
  workload::WorkloadConfig Config;
};

/// The adversarial generator configs the robustness record covers. All
/// deterministic (fixed seeds), so the emitted BENCH record is committable
/// and `stats --compare` against it is a meaningful gate.
std::vector<CorpusEntry> corpusConfigs() {
  workload::WorkloadConfig Base;
  Base.Name = "corpus";
  Base.Seed = 11;
  Base.NumFuncs = 8;
  Base.BlocksPerFunc = 4;
  Base.MainIters = 3;
  std::vector<CorpusEntry> Out;
  Out.push_back({"baseline", Base});
  {
    auto C = Base;
    C.ShortInsnPct = 45; // dense 1-2 byte instructions: T3/B0 pressure
    Out.push_back({"dense-short", C});
  }
  {
    auto C = Base;
    C.DataIslands = 6; // data-in-text: pre-scan bait + boundary desync
    Out.push_back({"data-in-text", C});
  }
  {
    auto C = Base;
    C.OverlapJunkPct = 12; // overlapping-instruction hazard
    Out.push_back({"overlap-junk", C});
  }
  {
    auto C = Base;
    C.ShortInsnPct = 30;
    C.DataIslands = 5;
    C.OverlapJunkPct = 8;
    Out.push_back({"combined", C});
  }
  return Out;
}

int cmdCorpus(const Args &A) {
  unsigned Jobs = static_cast<unsigned>(A.getInt("jobs", 1));
  std::vector<std::string> Rows;
  size_t Passes = 0;
  std::printf("%-14s %6s %9s %7s %8s %7s %8s %5s\n", "config", "sites",
              "succ_pct", "verify", "run", "rounds", "revoked", "pass");
  for (const CorpusEntry &E : corpusConfigs()) {
    workload::Workload W = workload::generateWorkload(E.Config);
    workload::RunOutcome Orig = workload::runImage(W.Image);
    if (!Orig.ok()) {
      std::fprintf(stderr, "error: corpus %s: original does not run: %s\n",
                   E.Name, Orig.Result.Error.c_str());
      return 1;
    }
    std::vector<uint64_t> Locs =
        frontend::prescanSelect(W.Image, frontend::SelectorKind::Jumps);

    frontend::RewriteOptions Opts;
    Opts.Patch.Spec.Kind = core::TrampolineKind::Empty;
    Opts.Patch.B0Fallback = true;
    Opts.ExtraReserved.push_back(lowfat::heapReservation());
    Opts.withVerify(true).withMaxFailedSites(SIZE_MAX).withJobs(Jobs);

    // Plain rewrite first: does the adversarial input survive without the
    // repair loop? A diverging run here is the expected signal for the
    // overlap/data-in-text configs, not an error.
    double SuccPct = 0;
    uint64_t VerifyFindings = 0;
    bool RunOk = false;
    auto R = frontend::rewrite(W.Image, Locs, Opts);
    if (R.isOk()) {
      SuccPct = R->Stats.succPct();
      VerifyFindings = R->Verify.Failures.size();
      workload::RunConfig RC;
      RC.B0Table = R->B0Table;
      workload::RunOutcome Re = workload::runImage(R->Rewritten, RC);
      RunOk = Re.ok() && Re.Rax == Orig.Rax &&
              Re.DataChecksum == Orig.DataChecksum;
    }

    // Then the self-verifying rewrite: the repair loop must always get
    // back to a converged binary — that is the pass criterion.
    frontend::RewriteOptions ROpts = Opts;
    ROpts.Repair.Enabled = true;
    bool Converged = false;
    uint64_t Rounds = 0;
    size_t Demoted = 0, Revoked = 0;
    auto Rep = repair::selfVerifyingRewrite(W.Image, Locs, ROpts);
    if (Rep.isOk()) {
      Converged = Rep->Report.Converged;
      Rounds = Rep->Report.Rounds;
      for (const repair::SiteRepair &S : Rep->Report.Sites)
        ++(S.Revoked ? Revoked : Demoted);
    }
    bool Pass = Converged;
    Passes += Pass;

    obs::JsonWriter C;
    C.field("name", E.Name);
    C.field("sites", static_cast<uint64_t>(Locs.size()));
    C.fixed("succ_pct", SuccPct, 2);
    C.field("verify_findings", VerifyFindings);
    C.field("run_ok", RunOk);
    C.field("repair_converged", Converged);
    C.field("repair_rounds", Rounds);
    C.field("repair_demoted", static_cast<uint64_t>(Demoted));
    C.field("repair_revoked", static_cast<uint64_t>(Revoked));
    C.field("pass", Pass);
    Rows.push_back(C.take());
    std::printf("%-14s %6zu %8.2f%% %7llu %8s %7llu %8zu %5s\n", E.Name,
                Locs.size(), SuccPct, (unsigned long long)VerifyFindings,
                RunOk ? "ok" : "diverge", (unsigned long long)Rounds,
                Revoked, Pass ? "yes" : "NO");
  }

  std::string Arr = "[";
  for (size_t I = 0; I != Rows.size(); ++I)
    Arr += (I ? "," : "") + Rows[I];
  Arr += "]";
  obs::JsonWriter W;
  W.field("bench", "robustness");
  W.field("configs_total", static_cast<uint64_t>(Rows.size()));
  W.field("configs_pass", static_cast<uint64_t>(Passes));
  W.fixed("pass_rate",
          Rows.empty() ? 0.0
                       : 100.0 * static_cast<double>(Passes) / Rows.size(),
          2);
  W.raw("configs", Arr);
  const std::string &OutPath = A.positional()[0];
  if (!writeText(OutPath, W.take() + "\n"))
    return 1;
  if (OutPath != "-")
    std::printf("wrote %s: %zu/%zu configs pass\n", OutPath.c_str(), Passes,
                Rows.size());
  return 0;
}

//===----------------------------------------------------------------------===//
// apply / serve: the patch-request protocol frontends
//===----------------------------------------------------------------------===//

int cmdApply(const Args &A) {
  std::ifstream Script(A.positional()[0], std::ios::binary);
  if (!Script) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 A.positional()[0].c_str());
    return 1;
  }
  api::DriverOptions Opts;
  Opts.JobsOverride = static_cast<unsigned>(A.getInt("jobs", 0));

  std::string RespPath = A.get("responses", "-");
  std::ofstream RespFile;
  if (RespPath != "-") {
    RespFile.open(RespPath, std::ios::binary | std::ios::trunc);
    if (!RespFile) {
      std::fprintf(stderr, "error: cannot write %s\n", RespPath.c_str());
      return 1;
    }
  }
  std::ostream &Resp = RespPath == "-" ? std::cout : RespFile;

  api::DriverResult R = api::runScript(Script, Resp, Opts);
  Resp.flush();
  std::fprintf(stderr, "apply: %zu job(s) ok, %zu failed%s\n", R.JobsOk,
               R.JobsFailed,
               R.ProtocolError ? ", stopped on a protocol error" : "");
  return R.exitCode();
}

int cmdServe(const Args &A) {
  int Transports = (A.has("stdin") ? 1 : 0) + (A.has("unix") ? 1 : 0) +
                   (A.has("tcp") ? 1 : 0);
  if (Transports != 1) {
    std::fprintf(stderr, "error: serve requires exactly one transport: "
                         "--stdin, --unix=PATH or --tcp=PORT\n");
    return 2;
  }

  api::SessionOptions SOpts;
  SOpts.JobsOverride = static_cast<unsigned>(A.getInt("jobs", 0));
  SOpts.Limits.MaxJobs = static_cast<uint64_t>(A.getInt("max-jobs", 0));
  SOpts.Limits.MaxPatchRequests =
      static_cast<uint64_t>(A.getInt("max-requests", 0));
  SOpts.Limits.MaxTemplates =
      static_cast<uint64_t>(A.getInt("max-templates", 0));

  if (A.has("stdin")) {
    api::DriverResult R = api::runScript(std::cin, std::cout, SOpts);
    std::cout.flush();
    return R.exitCode();
  }

  auto L = A.has("unix")
               ? api::Listener::unixSocket(A.get("unix", ""))
               : api::Listener::tcpLoopback(
                     static_cast<uint16_t>(A.getInt("tcp", 0)));
  if (!L.isOk()) {
    std::fprintf(stderr, "error: %s\n", L.reason().c_str());
    return 1;
  }

  api::ServeOptions Opts;
  Opts.Session = SOpts;
  Opts.MaxConnections = static_cast<size_t>(A.getInt("max-conns", 64));
  Opts.DrainTimeoutMs = static_cast<int>(A.getInt("drain-ms", 10000));

  api::Server Server(L.take(), Opts);
  if (Status S = api::installShutdownSignals(&Server); !S) {
    std::fprintf(stderr, "error: %s\n", S.reason().c_str());
    return 1;
  }
  if (A.has("unix"))
    std::fprintf(stderr, "serve: listening on %s\n", Server.path().c_str());
  else
    std::fprintf(stderr, "serve: listening on 127.0.0.1:%u\n",
                 (unsigned)Server.port());
  Server.run(); // returns after SIGTERM/SIGINT has drained the sessions
  (void)api::installShutdownSignals(nullptr);

  obs::MetricsSnapshot M = Server.metrics();
  std::fprintf(stderr,
               "serve: shut down; %llu session(s) served, %llu failed\n",
               (unsigned long long)M.counter("serve.sessions_ok"),
               (unsigned long long)M.counter("serve.sessions_failed"));
  std::string MetricsPath = A.get("metrics", "");
  if (!MetricsPath.empty() && !writeText(MetricsPath, M.toJson() + "\n"))
    return 1;
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  for (const CommandSpec &C : Commands) {
    if (Cmd != C.Name)
      continue;
    Args A(C, Argc, Argv, 2);
    if (!A.ok())
      return 2;
    if (Cmd == "gen")
      return cmdGen(A);
    if (Cmd == "info")
      return cmdInfo(A);
    if (Cmd == "disasm")
      return cmdDisasm(A);
    if (Cmd == "rewrite")
      return cmdRewrite(A, /*ForceRepair=*/false);
    if (Cmd == "repair")
      return cmdRewrite(A, /*ForceRepair=*/true);
    if (Cmd == "run")
      return cmdRun(A);
    if (Cmd == "stats")
      return cmdStats(A);
    if (Cmd == "corpus")
      return cmdCorpus(A);
    if (Cmd == "apply")
      return cmdApply(A);
    if (Cmd == "serve")
      return cmdServe(A);
  }
  std::fprintf(stderr, "error: unknown command \"%s\"\n", Cmd.c_str());
  return usage();
}
