
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/binary_patch.cpp" "examples/CMakeFiles/binary_patch.dir/binary_patch.cpp.o" "gcc" "examples/CMakeFiles/binary_patch.dir/binary_patch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/e9_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/e9_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lowfat/CMakeFiles/e9_lowfat.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/e9_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/e9_core.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/e9_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/e9_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/e9_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/e9_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/e9_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
