//===- support/Arena.h - Monotonic bump allocator --------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic, alignment-aware bump arena for short-lived per-shard
/// transients (patch transaction undo logs, lock/alloc journals). Freeing
/// is a no-op; `reset()` rewinds the bump pointer so teardown of a whole
/// generation of objects costs one pointer store. Under AddressSanitizer
/// the slack between live allocations (and everything reclaimed by
/// reset()) is poisoned, so stale pointers into a reset arena and
/// run-past-the-end bugs still trap exactly as they would with malloc.
///
/// Ownership rule (see DESIGN.md §13): objects placed in an arena must not
/// outlive the arena's next reset(). Anything that escapes a shard — site
/// results, trampoline chunks, jump records, the B0 side table — must live
/// in ordinary heap containers.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_ARENA_H
#define E9_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#include <sanitizer/asan_interface.h>
#define E9_ARENA_POISON(Ptr, Size) __asan_poison_memory_region(Ptr, Size)
#define E9_ARENA_UNPOISON(Ptr, Size) __asan_unpoison_memory_region(Ptr, Size)
/// Redzone kept between consecutive arena allocations so ASan can catch
/// overruns from one object into the next.
#define E9_ARENA_REDZONE 8
#else
#define E9_ARENA_POISON(Ptr, Size) ((void)0)
#define E9_ARENA_UNPOISON(Ptr, Size) ((void)0)
#define E9_ARENA_REDZONE 0
#endif

namespace e9 {
namespace support {

/// Monotonic bump arena. Not thread-safe: one arena per shard/owner.
class Arena {
public:
  explicit Arena(size_t BlockSize = 64 * 1024) : BlockSize(BlockSize) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena() {
    for (Block &B : Blocks)
      E9_ARENA_UNPOISON(B.Mem.get(), B.Size);
  }

  /// Bump-allocates \p Size bytes aligned to \p Align (a power of two).
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 && "bad alignment");
    if (Size == 0)
      Size = 1;
    if (Cur != Blocks.size()) {
      Block &B = Blocks[Cur];
      size_t Aligned = (Off + Align - 1) & ~(Align - 1);
      if (Aligned + Size <= B.Size) {
        Off = Aligned + Size + E9_ARENA_REDZONE;
        uint8_t *P = B.Mem.get() + Aligned;
        E9_ARENA_UNPOISON(P, Size);
        TotalAllocated += Size;
        return P;
      }
      // Current block exhausted; move to (or create) the next one.
      ++Cur;
    }
    return allocateSlow(Size, Align);
  }

  /// Rewinds the arena: every object handed out so far is dead. Block
  /// memory is retained (and re-poisoned) for reuse.
  void reset() {
    for (Block &B : Blocks)
      E9_ARENA_POISON(B.Mem.get(), B.Size);
    Cur = 0;
    Off = 0;
    TotalAllocated = 0;
  }

  /// Bytes handed out since construction/reset (excludes redzones/slack).
  size_t bytesAllocated() const { return TotalAllocated; }
  /// Number of backing blocks currently owned.
  size_t blockCount() const { return Blocks.size(); }

private:
  struct Block {
    std::unique_ptr<uint8_t[]> Mem;
    size_t Size = 0;
  };

  void *allocateSlow(size_t Size, size_t Align) {
    // Find (or create) a block that can hold the request from offset 0;
    // oversize requests get a dedicated block.
    while (Cur != Blocks.size()) {
      if (Size + E9_ARENA_REDZONE <= Blocks[Cur].Size) {
        Off = 0;
        return allocate(Size, Align); // Re-enter the fast path.
      }
      ++Cur;
    }
    size_t NewSize = BlockSize;
    if (Size + Align + E9_ARENA_REDZONE > NewSize)
      NewSize = Size + Align + E9_ARENA_REDZONE;
    Block B;
    B.Mem = std::make_unique<uint8_t[]>(NewSize);
    B.Size = NewSize;
    E9_ARENA_POISON(B.Mem.get(), B.Size);
    Blocks.push_back(std::move(B));
    Cur = Blocks.size() - 1;
    Off = 0;
    return allocate(Size, Align);
  }

  size_t BlockSize;
  std::vector<Block> Blocks;
  size_t Cur = 0; ///< Index of the block being bumped (== size() when full).
  size_t Off = 0; ///< Bump offset within Blocks[Cur].
  size_t TotalAllocated = 0;
};

/// Minimal std-allocator adapter over Arena for container transients.
/// deallocate() is a no-op: memory comes back only via Arena::reset().
template <typename T> class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(Arena &A) : A(&A) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &O) : A(O.arena()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(A->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *, size_t) {}

  Arena *arena() const { return A; }

  template <typename U> bool operator==(const ArenaAllocator<U> &O) const {
    return A == O.arena();
  }
  template <typename U> bool operator!=(const ArenaAllocator<U> &O) const {
    return A != O.arena();
  }

private:
  Arena *A;
};

} // namespace support
} // namespace e9

#endif // E9_SUPPORT_ARENA_H
