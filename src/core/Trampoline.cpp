//===- core/Trampoline.cpp ------------------------------------*- C++ -*-===//

#include "core/Trampoline.h"

#include "support/Format.h"
#include "x86/Assembler.h"
#include "x86/Reloc.h"

using namespace e9;
using namespace e9::core;
using namespace e9::x86;

namespace {

/// Stack displacement used to skip the red zone and any live stack slots
/// before the instrumentation prologue touches memory.
constexpr int32_t StackSkip = 0x4000;

/// Encoded sizes of the fixed building blocks.
constexpr unsigned LeaRspSize = 8;      // 48 8d a4 24 disp32
constexpr unsigned PushfqSize = 1;
constexpr unsigned IncAbsSize = 8;      // 48 ff 04 25 disp32
constexpr unsigned PushRegSize = 1;     // push rax/rdi
constexpr unsigned MovImm64Size = 10;   // mov r64, imm64
constexpr unsigned CallRaxSize = 2;     // ff d0
constexpr unsigned JmpBackSize = 5;     // e9 rel32

void emitStackSkip(Assembler &A, bool Down) {
  A.leaRegMem(Reg::RSP, Mem::base(Reg::RSP, Down ? -StackSkip : StackSkip));
}

/// Emits `jmp rel32` to \p Target with an explicit range check (the
/// assembler asserts; tactics need a recoverable error instead).
Status emitJumpBack(Assembler &A, uint64_t Target) {
  int64_t Rel = static_cast<int64_t>(Target) -
                static_cast<int64_t>(A.currentAddr() + JmpBackSize);
  if (Rel < INT32_MIN || Rel > INT32_MAX)
    return Status::error(
        format("trampoline return to %s out of rel32 range",
               hex(Target).c_str()));
  A.jmpAddr(Target);
  return Status::ok();
}

/// Emits the flag-safe counter bump used by Counter/Composed kinds.
void emitCounterInc(Assembler &A, uint64_t CounterAddr) {
  assert(CounterAddr < (1ull << 31) &&
         "counter must live in abs32-addressable memory");
  emitStackSkip(A, /*Down=*/true);
  A.pushfq();
  A.incMem(OpSize::B64, Mem::abs(static_cast<int32_t>(CounterAddr)));
  A.popfq();
  emitStackSkip(A, /*Down=*/false);
}
constexpr unsigned CounterIncSize =
    LeaRspSize + PushfqSize + IncAbsSize + PushfqSize + LeaRspSize;

/// Emits the register-preserving host-hook call (rdi = site address).
void emitHookCall(Assembler &A, uint64_t HookAddr, uint64_t SiteAddr) {
  emitStackSkip(A, /*Down=*/true);
  A.pushReg(Reg::RAX);
  A.pushReg(Reg::RDI);
  A.movRegImm64(Reg::RDI, SiteAddr);
  A.movRegImm64(Reg::RAX, HookAddr);
  A.callReg(Reg::RAX); // host hooks preserve flags and registers
  A.popReg(Reg::RDI);
  A.popReg(Reg::RAX);
  emitStackSkip(A, /*Down=*/false);
}
constexpr unsigned HookCallSize = LeaRspSize + 2 * PushRegSize +
                                  2 * MovImm64Size + CallRaxSize +
                                  2 * PushRegSize + LeaRspSize;

/// True when a Composed op ends the trampoline's control flow.
bool isTerminalOp(const core::TemplateOp &Op) {
  using K = core::TemplateOp::Kind;
  return Op.K == K::JumpBack || Op.K == K::JumpTo;
}

/// Size of one Composed op (Reloc = relocatedSize of the patched insn).
unsigned templateOpSize(const core::TemplateOp &Op, unsigned Reloc) {
  using K = core::TemplateOp::Kind;
  switch (Op.K) {
  case K::Raw:
    return static_cast<unsigned>(Op.Raw.size());
  case K::Displaced:
    return Reloc;
  case K::CounterInc:
    return CounterIncSize;
  case K::HookCall:
    return HookCallSize;
  case K::JumpBack:
  case K::JumpTo:
    return JmpBackSize;
  }
  return 0;
}

/// True when a TemplateProgram op ends the trampoline's control flow.
bool isTerminalOp(const core::TemplateProgram::Op &Op) {
  using K = core::TemplateProgram::Op::Kind;
  return Op.K == K::JumpBack || Op.K == K::JumpTo;
}

/// Size of one TemplateProgram op (Reloc = relocatedSize of the patched
/// insn). Address-independent, like everything trampolineSize adds up.
unsigned programOpSize(const core::TemplateProgram::Op &Op, unsigned Reloc) {
  using K = core::TemplateProgram::Op::Kind;
  switch (Op.K) {
  case K::Raw:
    return static_cast<unsigned>(Op.Raw.size());
  case K::Displaced:
    return Reloc;
  case K::CounterInc:
    return CounterIncSize;
  case K::HookCall:
    return HookCallSize;
  case K::MovRegImm:
    return MovImm64Size;
  case K::JumpBack:
  case K::JumpTo:
    return JmpBackSize;
  }
  return 0;
}

/// Resolves a template op's operand for the site being instantiated.
uint64_t bindOperand(const core::TemplateProgram::Op &Op,
                     const core::TrampolineSpec &Spec, const Insn &I) {
  switch (Op.B) {
  case core::TemplateProgram::Op::Bind::Imm:
    return Op.Imm;
  case core::TemplateProgram::Op::Bind::Site:
    return I.Address;
  case core::TemplateProgram::Op::Bind::Arg:
    return Spec.TemplateArg;
  }
  return 0;
}

} // namespace

unsigned core::trampolineSize(const TrampolineSpec &Spec, const Insn &I) {
  unsigned Reloc = relocatedSize(I);
  if (Reloc == 0 && Spec.Kind != TrampolineKind::PatchBytes)
    return 0; // Cannot displace this instruction.

  switch (Spec.Kind) {
  case TrampolineKind::Empty:
  case TrampolineKind::Evictee:
    return Reloc + JmpBackSize;
  case TrampolineKind::Counter:
    return LeaRspSize + PushfqSize + IncAbsSize + PushfqSize + LeaRspSize +
           Reloc + JmpBackSize;
  case TrampolineKind::HookCall:
    return LeaRspSize + 2 * PushRegSize + 2 * MovImm64Size + CallRaxSize +
           2 * PushRegSize + LeaRspSize + Reloc + JmpBackSize;
  case TrampolineKind::LowFatCheck: {
    unsigned Lea = leaOfMemOperandSize(I);
    if (Lea == 0)
      return 0; // No checkable memory operand.
    return LeaRspSize + 2 * PushRegSize + Lea + MovImm64Size + CallRaxSize +
           2 * PushRegSize + LeaRspSize + Reloc + JmpBackSize;
  }
  case TrampolineKind::PatchBytes:
    return static_cast<unsigned>(Spec.Raw.size()) + JmpBackSize;
  case TrampolineKind::Composed: {
    unsigned Total = 0;
    bool Terminated = false;
    for (const TemplateOp &Op : Spec.Ops) {
      if (Op.K == TemplateOp::Kind::Displaced && Reloc == 0)
        return 0;
      Total += templateOpSize(Op, Reloc);
      Terminated = isTerminalOp(Op);
    }
    if (!Terminated)
      Total += JmpBackSize; // implicit jump back
    return Total;
  }
  case TrampolineKind::Template: {
    if (!Spec.Program)
      return 0; // No compiled program attached.
    unsigned Total = 0;
    bool Terminated = false;
    for (const TemplateProgram::Op &Op : Spec.Program->Ops) {
      if (Op.K == TemplateProgram::Op::Kind::Displaced && Reloc == 0)
        return 0;
      Total += programOpSize(Op, Reloc);
      Terminated = isTerminalOp(Op);
    }
    if (!Terminated)
      Total += JmpBackSize; // implicit $continue
    return Total;
  }
  }
  return 0;
}

Result<std::vector<uint8_t>> core::buildTrampoline(const TrampolineSpec &Spec,
                                                   const Insn &I,
                                                   const uint8_t *OrigBytes,
                                                   uint64_t Addr) {
  using RV = Result<std::vector<uint8_t>>;
  unsigned ExpectedSize = trampolineSize(Spec, I);
  if (ExpectedSize == 0)
    return RV::error("trampoline spec does not apply to this instruction");

  Assembler A(Addr);
  A.reserve(ExpectedSize);
  uint64_t Resume = I.Address + I.Length;

  auto emitDisplaced = [&]() -> Status {
    ByteBuffer Buf;
    Buf.reserve(MaxInsnLength);
    if (Status S = relocateInsn(I, OrigBytes, A.currentAddr(), Buf); !S)
      return S;
    A.raw(Buf.bytes());
    return Status::ok();
  };

  switch (Spec.Kind) {
  case TrampolineKind::Empty:
  case TrampolineKind::Evictee:
    if (Status S = emitDisplaced(); !S)
      return RV(S);
    if (Status S = emitJumpBack(A, Resume); !S)
      return RV(S);
    break;

  case TrampolineKind::Counter:
    emitCounterInc(A, Spec.CounterAddr);
    if (Status S = emitDisplaced(); !S)
      return RV(S);
    if (Status S = emitJumpBack(A, Resume); !S)
      return RV(S);
    break;

  case TrampolineKind::HookCall:
    emitHookCall(A, Spec.HookAddr, I.Address);
    if (Status S = emitDisplaced(); !S)
      return RV(S);
    if (Status S = emitJumpBack(A, Resume); !S)
      return RV(S);
    break;

  case TrampolineKind::LowFatCheck: {
    emitStackSkip(A, /*Down=*/true);
    A.pushReg(Reg::RAX);
    A.pushReg(Reg::RDI);
    // The operand registers are still live (only rsp moved, and rsp-based
    // writes are excluded from the A2 selection).
    ByteBuffer Lea;
    if (Status S =
            encodeLeaOfMemOperand(I, Reg::RDI, A.currentAddr(), Lea);
        !S)
      return RV(S);
    A.raw(Lea.bytes());
    A.movRegImm64(Reg::RAX, Spec.HookAddr);
    A.callReg(Reg::RAX);
    A.popReg(Reg::RDI);
    A.popReg(Reg::RAX);
    emitStackSkip(A, /*Down=*/false);
    if (Status S = emitDisplaced(); !S)
      return RV(S);
    if (Status S = emitJumpBack(A, Resume); !S)
      return RV(S);
    break;
  }

  case TrampolineKind::PatchBytes: {
    A.raw(Spec.Raw);
    uint64_t Target = Spec.JumpBackTarget ? Spec.JumpBackTarget : Resume;
    if (Status S = emitJumpBack(A, Target); !S)
      return RV(S);
    break;
  }

  case TrampolineKind::Composed: {
    bool Terminated = false;
    for (const TemplateOp &Op : Spec.Ops) {
      switch (Op.K) {
      case TemplateOp::Kind::Raw:
        A.raw(Op.Raw);
        break;
      case TemplateOp::Kind::Displaced:
        if (Status S = emitDisplaced(); !S)
          return RV(S);
        break;
      case TemplateOp::Kind::CounterInc:
        emitCounterInc(A, Op.Addr);
        break;
      case TemplateOp::Kind::HookCall:
        emitHookCall(A, Op.Addr, I.Address);
        break;
      case TemplateOp::Kind::JumpBack:
        if (Status S = emitJumpBack(A, Resume); !S)
          return RV(S);
        break;
      case TemplateOp::Kind::JumpTo:
        if (Status S = emitJumpBack(A, Op.Addr); !S)
          return RV(S);
        break;
      }
      Terminated = isTerminalOp(Op);
    }
    if (!Terminated)
      if (Status S = emitJumpBack(A, Resume); !S)
        return RV(S);
    break;
  }

  case TrampolineKind::Template: {
    // Program contents come from external patch requests, so every
    // operand check must be a recoverable error (tactic rollback), never
    // an assert.
    bool Terminated = false;
    for (const TemplateProgram::Op &Op : Spec.Program->Ops) {
      uint64_t V = bindOperand(Op, Spec, I);
      switch (Op.K) {
      case TemplateProgram::Op::Kind::Raw:
        A.raw(Op.Raw);
        break;
      case TemplateProgram::Op::Kind::Displaced:
        if (Status S = emitDisplaced(); !S)
          return RV(S);
        break;
      case TemplateProgram::Op::Kind::CounterInc:
        if (V >= (1ull << 31))
          return RV::error(format(
              "template %s: counter operand %s is not abs32-addressable",
              Spec.Program->Name.c_str(), hex(V).c_str()));
        emitCounterInc(A, V);
        break;
      case TemplateProgram::Op::Kind::HookCall:
        emitHookCall(A, V, I.Address);
        break;
      case TemplateProgram::Op::Kind::MovRegImm:
        A.movRegImm64(Op.R, V);
        break;
      case TemplateProgram::Op::Kind::JumpBack:
        if (Status S = emitJumpBack(A, Resume); !S)
          return RV(S);
        break;
      case TemplateProgram::Op::Kind::JumpTo:
        if (Status S = emitJumpBack(A, V); !S)
          return RV(S);
        break;
      }
      Terminated = isTerminalOp(Op);
    }
    if (!Terminated)
      if (Status S = emitJumpBack(A, Resume); !S)
        return RV(S);
    break;
  }
  }

  std::vector<uint8_t> Bytes = A.take();
  assert(Bytes.size() == ExpectedSize &&
         "trampoline size model out of sync with emission");
  return Bytes;
}
