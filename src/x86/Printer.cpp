//===- x86/Printer.cpp ----------------------------------------*- C++ -*-===//

#include "x86/Printer.h"

#include "support/Format.h"

using namespace e9;
using namespace e9::x86;

std::string x86::regNameSized(unsigned Enc, unsigned Size, bool HasRex) {
  static const char *const R64[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                    "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                    "r12", "r13", "r14", "r15"};
  static const char *const R32[] = {"eax",  "ecx",  "edx",  "ebx",
                                    "esp",  "ebp",  "esi",  "edi",
                                    "r8d",  "r9d",  "r10d", "r11d",
                                    "r12d", "r13d", "r14d", "r15d"};
  static const char *const R16[] = {"ax",   "cx",   "dx",   "bx",
                                    "sp",   "bp",   "si",   "di",
                                    "r8w",  "r9w",  "r10w", "r11w",
                                    "r12w", "r13w", "r14w", "r15w"};
  static const char *const R8Rex[] = {"al",   "cl",   "dl",   "bl",
                                      "spl",  "bpl",  "sil",  "dil",
                                      "r8b",  "r9b",  "r10b", "r11b",
                                      "r12b", "r13b", "r14b", "r15b"};
  static const char *const R8Legacy[] = {"al", "cl", "dl", "bl",
                                         "ah", "ch", "dh", "bh"};
  Enc &= 15;
  switch (Size) {
  case 8:
    return R64[Enc];
  case 4:
    return R32[Enc];
  case 2:
    return R16[Enc];
  default:
    if (!HasRex && Enc >= 4 && Enc < 8)
      return R8Legacy[Enc];
    return R8Rex[Enc];
  }
}

namespace {

bool isByteOpcode(const Insn &I) {
  if (I.Map == OpMap::OneByte) {
    uint8_t Op = I.Opcode;
    if (Op <= 0x3d)
      return (Op & 7) == 0 || (Op & 7) == 2 || (Op & 7) == 4;
    switch (Op) {
    case 0x80: case 0x84: case 0x86: case 0x88: case 0x8a: case 0xa8:
    case 0xc0: case 0xc6: case 0xd0: case 0xd2: case 0xf6: case 0xfe:
      return true;
    default:
      return Op >= 0xb0 && Op <= 0xb7;
    }
  }
  return I.Map == OpMap::Map0F &&
         ((I.Opcode >= 0x90 && I.Opcode <= 0x9f) || I.Opcode == 0xb6 ||
          I.Opcode == 0xbe || I.Opcode == 0xc0);
}

unsigned operandSize(const Insn &I) {
  if (isByteOpcode(I))
    return 1;
  if (I.Rex & 0x8)
    return 8;
  return I.OpSizeOverride ? 2 : 4;
}

std::string memOperand(const Insn &I) {
  if (I.isRipRelative())
    return format("0x%llx(%%rip)", (unsigned long long)I.ripTarget());
  std::string Out;
  if (I.Disp != 0 || (I.memBase() == Reg::None && I.memIndex() == Reg::None))
    Out += I.Disp < 0 ? format("-0x%x", -I.Disp) : format("0x%x", I.Disp);
  Reg Base = I.memBase();
  Reg Index = I.memIndex();
  if (Base == Reg::None && Index == Reg::None)
    return Out;
  Out += "(";
  if (Base != Reg::None)
    Out += "%" + regNameSized(regEncoding(Base), 8, true);
  if (Index != Reg::None) {
    Out += ",%" + regNameSized(regEncoding(Index), 8, true);
    Out += format(",%u", I.memScale());
  }
  Out += ")";
  return Out;
}

std::string rmOperand(const Insn &I, unsigned Size) {
  if (I.mod() == 3)
    return "%" + regNameSized(I.rm(), Size, I.HasRex);
  return memOperand(I);
}

std::string regOperand(const Insn &I, unsigned Size) {
  return "%" + regNameSized(I.reg(), Size, I.HasRex);
}

std::string immOperand(const Insn &I) {
  if (I.Imm < 0)
    return format("$-0x%llx", (unsigned long long)(-I.Imm));
  return format("$0x%llx", (unsigned long long)I.Imm);
}

std::string target(const Insn &I) {
  return format("0x%llx", (unsigned long long)I.branchTarget());
}

const char *aluName(unsigned Op) {
  static const char *const Names[] = {"add", "or",  "adc", "sbb",
                                      "and", "sub", "xor", "cmp"};
  return Names[Op & 7];
}

const char *shiftName(unsigned Op) {
  static const char *const Names[] = {"rol", "ror", "rcl", "rcr",
                                      "shl", "shr", "sal", "sar"};
  return Names[Op & 7];
}

std::string sizeSuffix(unsigned Size) {
  switch (Size) {
  case 1:
    return "b";
  case 2:
    return "w";
  case 4:
    return "l";
  default:
    return "q";
  }
}

std::string fallback(const Insn &I, const uint8_t *Bytes) {
  return format(".byte %s", hexBytes(Bytes, I.Length).c_str());
}

std::string formatOneByte(const Insn &I, const uint8_t *Bytes) {
  uint8_t Op = I.Opcode;
  unsigned Size = operandSize(I);
  std::string Pfx = I.LockPrefix ? "lock " : "";

  // ALU rows.
  if (Op <= 0x3d) {
    std::string Name = Pfx + aluName((Op >> 3) & 7);
    switch (Op & 7) {
    case 0:
    case 1:
      return Name + " " + regOperand(I, Size) + "," + rmOperand(I, Size);
    case 2:
    case 3:
      return Name + " " + rmOperand(I, Size) + "," + regOperand(I, Size);
    default:
      return Name + " " + immOperand(I) + ",%" +
             regNameSized(0, Size, I.HasRex);
    }
  }

  switch (Op) {
  case 0x63:
    return "movslq " + rmOperand(I, 4) + "," + regOperand(I, 8);
  case 0x68:
  case 0x6a:
    return "push " + immOperand(I);
  case 0x69:
  case 0x6b:
    return "imul " + immOperand(I) + "," + rmOperand(I, Size) + "," +
           regOperand(I, Size);
  case 0x80: case 0x81: case 0x83:
    return std::string(Pfx) + aluName(I.regOpcode()) +
           sizeSuffix(Size) + " " + immOperand(I) + "," + rmOperand(I, Size);
  case 0x84:
  case 0x85:
    return "test " + regOperand(I, Size) + "," + rmOperand(I, Size);
  case 0x86:
  case 0x87:
    return "xchg " + regOperand(I, Size) + "," + rmOperand(I, Size);
  case 0x88:
  case 0x89:
    return "mov " + regOperand(I, Size) + "," + rmOperand(I, Size);
  case 0x8a:
  case 0x8b:
    return "mov " + rmOperand(I, Size) + "," + regOperand(I, Size);
  case 0x8d:
    return "lea " + memOperand(I) + "," + regOperand(I, Size);
  case 0x8f:
    return "pop " + rmOperand(I, 8);
  case 0x90:
    if (!(I.Rex & 1))
      return "nop";
    [[fallthrough]];
  case 0x91: case 0x92: case 0x93: case 0x94: case 0x95: case 0x96:
  case 0x97:
    return "xchg %" +
           regNameSized((Op & 7) | ((I.Rex & 1) << 3), Size, I.HasRex) +
           ",%" + regNameSized(0, Size, I.HasRex);
  case 0x98:
    return Size == 8 ? "cltq" : Size == 4 ? "cwtl" : "cbtw";
  case 0x99:
    return Size == 8 ? "cqto" : Size == 4 ? "cltd" : "cwtd";
  case 0x9c:
    return "pushfq";
  case 0x9d:
    return "popfq";
  case 0xa8:
  case 0xa9:
    return "test " + immOperand(I) + ",%" + regNameSized(0, Size, I.HasRex);
  case 0xc2:
    return "ret " + immOperand(I);
  case 0xc3:
    return "ret";
  case 0xc6:
  case 0xc7:
    return "mov" + sizeSuffix(Size) + " " + immOperand(I) + "," +
           rmOperand(I, Size);
  case 0xc9:
    return "leave";
  case 0xcc:
    return "int3";
  case 0xcd:
    return "int " + immOperand(I);
  case 0xc0: case 0xc1:
    return std::string(shiftName(I.regOpcode())) + sizeSuffix(Size) + " " +
           immOperand(I) + "," + rmOperand(I, Size);
  case 0xd0: case 0xd1:
    return std::string(shiftName(I.regOpcode())) + sizeSuffix(Size) +
           " $1," + rmOperand(I, Size);
  case 0xd2: case 0xd3:
    return std::string(shiftName(I.regOpcode())) + sizeSuffix(Size) +
           " %cl," + rmOperand(I, Size);
  case 0xe8:
    return "callq " + target(I);
  case 0xe9:
    return "jmpq " + target(I) +
           (I.PrefixLength ? " (padded)" : "");
  case 0xeb:
    return "jmp " + target(I);
  case 0xf4:
    return "hlt";
  case 0xf5:
    return "cmc";
  case 0xf8:
    return "clc";
  case 0xf9:
    return "stc";
  case 0xf6:
  case 0xf7:
    switch (I.regOpcode()) {
    case 0:
    case 1:
      return "test" + sizeSuffix(Size) + " " + immOperand(I) + "," +
             rmOperand(I, Size);
    case 2:
      return "not" + sizeSuffix(Size) + " " + rmOperand(I, Size);
    case 3:
      return "neg" + sizeSuffix(Size) + " " + rmOperand(I, Size);
    case 4:
      return "mul" + sizeSuffix(Size) + " " + rmOperand(I, Size);
    case 5:
      return "imul" + sizeSuffix(Size) + " " + rmOperand(I, Size);
    case 6:
      return "div" + sizeSuffix(Size) + " " + rmOperand(I, Size);
    default:
      return "idiv" + sizeSuffix(Size) + " " + rmOperand(I, Size);
    }
  case 0xfe:
  case 0xff:
    switch (I.regOpcode()) {
    case 0:
      return Pfx + "inc" + sizeSuffix(Size) + " " + rmOperand(I, Size);
    case 1:
      return Pfx + "dec" + sizeSuffix(Size) + " " + rmOperand(I, Size);
    case 2:
      return "callq *" + rmOperand(I, 8);
    case 4:
      return "jmpq *" + rmOperand(I, 8);
    case 6:
      return "push " + rmOperand(I, 8);
    default:
      return fallback(I, Bytes);
    }
  default:
    break;
  }

  // push/pop r64, jcc rel8, mov r, imm.
  if (Op >= 0x50 && Op <= 0x57)
    return "push %" + regNameSized((Op & 7) | ((I.Rex & 1) << 3), 8, true);
  if (Op >= 0x58 && Op <= 0x5f)
    return "pop %" + regNameSized((Op & 7) | ((I.Rex & 1) << 3), 8, true);
  if (Op >= 0x70 && Op <= 0x7f)
    return std::string("j") + condName(I.cond()) + " " + target(I);
  if (Op >= 0xb0 && Op <= 0xb7)
    return "mov " + immOperand(I) + ",%" +
           regNameSized((Op & 7) | ((I.Rex & 1) << 3), 1, I.HasRex);
  if (Op >= 0xb8 && Op <= 0xbf)
    return (Size == 8 ? "movabs " : "mov ") + immOperand(I) + ",%" +
           regNameSized((Op & 7) | ((I.Rex & 1) << 3), Size, I.HasRex);
  if (Op >= 0xe0 && Op <= 0xe3) {
    static const char *const Names[] = {"loopne", "loope", "loop", "jrcxz"};
    return std::string(Names[Op - 0xe0]) + " " + target(I);
  }
  return fallback(I, Bytes);
}

std::string formatTwoByte(const Insn &I, const uint8_t *Bytes) {
  uint8_t Op = I.Opcode;
  unsigned Size = operandSize(I);
  if (Op >= 0x80 && Op <= 0x8f)
    return std::string("j") + condName(I.cond()) + " " + target(I);
  if (Op >= 0x90 && Op <= 0x9f)
    return std::string("set") + condName(I.cond()) + " " + rmOperand(I, 1);
  if (Op >= 0x40 && Op <= 0x4f)
    return std::string("cmov") + condName(I.cond()) + " " +
           rmOperand(I, Size) + "," + regOperand(I, Size);
  switch (Op) {
  case 0x05:
    return "syscall";
  case 0x0b:
    return "ud2";
  case 0x1f:
    return "nopw " + rmOperand(I, Size);
  case 0xa2:
    return "cpuid";
  case 0xaf:
    return "imul " + rmOperand(I, Size) + "," + regOperand(I, Size);
  case 0xb6:
  case 0xb7:
  case 0xbe:
  case 0xbf: { // byte/word source, full-size destination
    unsigned DstSize = (I.Rex & 0x8) ? 8 : I.OpSizeOverride ? 2 : 4;
    unsigned SrcSize = (Op == 0xb6 || Op == 0xbe) ? 1 : 2;
    std::string Name = std::string(Op >= 0xbe ? "movs" : "movz") +
                       (SrcSize == 1 ? "b" : "w") +
                       (DstSize == 8 ? "q" : DstSize == 2 ? "w" : "l");
    return Name + " " + rmOperand(I, SrcSize) + "," +
           regOperand(I, DstSize);
  }
  case 0xb0:
  case 0xb1:
    return "cmpxchg " + regOperand(I, Size) + "," + rmOperand(I, Size);
  case 0xc0:
  case 0xc1:
    return "xadd " + regOperand(I, Size) + "," + rmOperand(I, Size);
  default:
    if (Op >= 0xc8 && Op <= 0xcf)
      return "bswap %" +
             regNameSized((Op & 7) | ((I.Rex & 1) << 3), Size, I.HasRex);
    return fallback(I, Bytes);
  }
}

} // namespace

std::string x86::formatInsn(const Insn &I, const uint8_t *Bytes) {
  switch (I.Map) {
  case OpMap::OneByte:
    return formatOneByte(I, Bytes);
  case OpMap::Map0F:
    return formatTwoByte(I, Bytes);
  default:
    return fallback(I, Bytes);
  }
}
