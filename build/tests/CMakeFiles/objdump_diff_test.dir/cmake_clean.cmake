file(REMOVE_RECURSE
  "CMakeFiles/objdump_diff_test.dir/objdump_diff_test.cpp.o"
  "CMakeFiles/objdump_diff_test.dir/objdump_diff_test.cpp.o.d"
  "objdump_diff_test"
  "objdump_diff_test.pdb"
  "objdump_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objdump_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
