//===- tests/support_test.cpp - support library unit tests ----*- C++ -*-===//

#include "support/Arena.h"
#include "support/ByteBuffer.h"
#include "support/Format.h"
#include "support/Mmap.h"
#include "support/IntervalSet.h"
#include "support/Rng.h"
#include "support/Status.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>

using namespace e9;

// --- Status / Result ---------------------------------------------------------

TEST(Status, OkAndError) {
  Status Ok = Status::ok();
  EXPECT_TRUE(Ok.isOk());
  EXPECT_TRUE(static_cast<bool>(Ok));
  Status Err = Status::error("boom");
  EXPECT_FALSE(Err.isOk());
  EXPECT_EQ(Err.reason(), "boom");
}

TEST(Result, ValueAndError) {
  Result<int> V(42);
  ASSERT_TRUE(V.isOk());
  EXPECT_EQ(*V, 42);
  Result<int> E = Result<int>::error("nope");
  ASSERT_FALSE(E.isOk());
  EXPECT_EQ(E.reason(), "nope");
}

// --- ByteBuffer -----------------------------------------------------------------

TEST(ByteBuffer, LittleEndianPush) {
  ByteBuffer B;
  B.push32(0x11223344);
  ASSERT_EQ(B.size(), 4u);
  EXPECT_EQ(B[0], 0x44);
  EXPECT_EQ(B[1], 0x33);
  EXPECT_EQ(B[2], 0x22);
  EXPECT_EQ(B[3], 0x11);
}

TEST(ByteBuffer, Push64RoundTrip) {
  ByteBuffer B;
  B.push64(0xdeadbeefcafef00dULL);
  EXPECT_EQ(B.read(0, 8), 0xdeadbeefcafef00dULL);
}

TEST(ByteBuffer, Patch32) {
  ByteBuffer B;
  B.push64(0);
  B.patch32(2, 0xaabbccdd);
  EXPECT_EQ(B.read(2, 4), 0xaabbccddu);
  EXPECT_EQ(B[0], 0u);
  EXPECT_EQ(B[6], 0u);
}

TEST(ByteBuffer, AlignTo) {
  ByteBuffer B;
  B.push8(1);
  B.alignTo(8, 0xcc);
  EXPECT_EQ(B.size(), 8u);
  EXPECT_EQ(B[7], 0xcc);
  B.alignTo(8);
  EXPECT_EQ(B.size(), 8u);
}

// --- IntervalSet ------------------------------------------------------------------

TEST(IntervalSet, InsertCoalesces) {
  IntervalSet S;
  S.insert(10, 20);
  S.insert(20, 30); // adjacent: must merge
  EXPECT_EQ(S.intervalCount(), 1u);
  EXPECT_EQ(S.totalSize(), 20u);
  S.insert(5, 12); // overlapping: must merge
  EXPECT_EQ(S.intervalCount(), 1u);
  EXPECT_EQ(S.totalSize(), 25u);
}

TEST(IntervalSet, InsertBridgesGaps) {
  IntervalSet S;
  S.insert(0, 10);
  S.insert(20, 30);
  S.insert(40, 50);
  EXPECT_EQ(S.intervalCount(), 3u);
  S.insert(5, 45);
  EXPECT_EQ(S.intervalCount(), 1u);
  EXPECT_EQ(S.totalSize(), 50u);
}

TEST(IntervalSet, ContainsAndOverlaps) {
  IntervalSet S;
  S.insert(100, 200);
  EXPECT_TRUE(S.contains(100));
  EXPECT_TRUE(S.contains(199));
  EXPECT_FALSE(S.contains(200));
  EXPECT_FALSE(S.contains(99));
  EXPECT_TRUE(S.overlaps(150, 160));
  EXPECT_TRUE(S.overlaps(50, 101));
  EXPECT_TRUE(S.overlaps(199, 300));
  EXPECT_FALSE(S.overlaps(200, 300));
  EXPECT_FALSE(S.overlaps(0, 100));
}

TEST(IntervalSet, EraseSplits) {
  IntervalSet S;
  S.insert(0, 100);
  S.erase(40, 60);
  EXPECT_EQ(S.intervalCount(), 2u);
  EXPECT_TRUE(S.contains(39));
  EXPECT_FALSE(S.contains(40));
  EXPECT_FALSE(S.contains(59));
  EXPECT_TRUE(S.contains(60));
  EXPECT_EQ(S.totalSize(), 80u);
}

TEST(IntervalSet, EraseAcrossMultiple) {
  IntervalSet S;
  S.insert(0, 10);
  S.insert(20, 30);
  S.insert(40, 50);
  S.erase(5, 45);
  EXPECT_EQ(S.totalSize(), 10u);
  EXPECT_TRUE(S.contains(4));
  EXPECT_FALSE(S.contains(5));
  EXPECT_FALSE(S.contains(25));
  EXPECT_FALSE(S.contains(44));
  EXPECT_TRUE(S.contains(45));
}

TEST(IntervalSet, EraseExact) {
  IntervalSet S;
  S.insert(10, 20);
  S.erase(10, 20);
  EXPECT_EQ(S.intervalCount(), 0u);
}

TEST(IntervalSet, FindFreeGapBasic) {
  IntervalSet S;
  auto Gap = S.findFreeGap(Interval{100, 200}, 10);
  ASSERT_TRUE(Gap.has_value());
  EXPECT_EQ(*Gap, 100u);
}

TEST(IntervalSet, FindFreeGapSkipsUsed) {
  IntervalSet S;
  S.insert(100, 150);
  auto Gap = S.findFreeGap(Interval{100, 200}, 10);
  ASSERT_TRUE(Gap.has_value());
  EXPECT_EQ(*Gap, 150u);
}

TEST(IntervalSet, FindFreeGapBetween) {
  IntervalSet S;
  S.insert(0, 100);
  S.insert(120, 200);
  auto Gap = S.findFreeGap(Interval{0, 200}, 20);
  ASSERT_TRUE(Gap.has_value());
  EXPECT_EQ(*Gap, 100u);
  EXPECT_FALSE(S.findFreeGap(Interval{0, 200}, 21).has_value());
}

TEST(IntervalSet, FindFreeGapRespectsBound) {
  IntervalSet S;
  S.insert(100, 190);
  EXPECT_FALSE(S.findFreeGap(Interval{100, 200}, 11).has_value());
  auto Gap = S.findFreeGap(Interval{100, 201}, 11);
  ASSERT_TRUE(Gap.has_value());
  EXPECT_EQ(*Gap, 190u);
}

TEST(IntervalSet, FindFreeGapCursorInsideInterval) {
  IntervalSet S;
  S.insert(0, 150);
  auto Gap = S.findFreeGap(Interval{100, 300}, 50);
  ASSERT_TRUE(Gap.has_value());
  EXPECT_EQ(*Gap, 150u);
}

TEST(IntervalSet, FindFreeGapZeroSize) {
  IntervalSet S;
  EXPECT_FALSE(S.findFreeGap(Interval{0, 100}, 0).has_value());
}

// Property: after random inserts and erases, contains() agrees with a
// reference std::set of addresses.
TEST(IntervalSet, RandomizedAgainstReference) {
  Rng R(1234);
  IntervalSet S;
  std::set<uint32_t> Ref;
  constexpr uint32_t Universe = 2000;
  for (int Op = 0; Op != 300; ++Op) {
    uint32_t Lo = static_cast<uint32_t>(R.below(Universe));
    uint32_t Hi = Lo + static_cast<uint32_t>(R.below(50));
    if (R.chance(70)) {
      S.insert(Lo, Hi);
      for (uint32_t A = Lo; A < Hi; ++A)
        Ref.insert(A);
    } else {
      S.erase(Lo, Hi);
      for (uint32_t A = Lo; A < Hi; ++A)
        Ref.erase(A);
    }
  }
  for (uint32_t A = 0; A != Universe + 60; ++A)
    ASSERT_EQ(S.contains(A), Ref.count(A) != 0) << "address " << A;
  EXPECT_EQ(S.totalSize(), Ref.size());
}

// Property: findFreeGap never returns a gap overlapping the set and always
// respects the bound.
TEST(IntervalSet, RandomizedFreeGapInvariants) {
  Rng R(99);
  for (int Trial = 0; Trial != 50; ++Trial) {
    IntervalSet S;
    for (int I = 0; I != 20; ++I) {
      uint64_t Lo = R.below(10000);
      S.insert(Lo, Lo + R.below(200) + 1);
    }
    Interval Bound{R.below(5000), 5000 + R.below(5000)};
    uint64_t Size = R.below(300) + 1;
    auto Gap = S.findFreeGap(Bound, Size);
    if (!Gap.has_value())
      continue;
    EXPECT_GE(*Gap, Bound.Lo);
    EXPECT_LE(*Gap + Size, Bound.Hi);
    EXPECT_FALSE(S.overlaps(*Gap, *Gap + Size));
  }
}

// --- Rng / Format -------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng A(7), B(7), C(8);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(Rng, RangeBounds) {
  Rng R(42);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Format, Basic) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(hex(0xdeadULL), "0xdead");
  std::vector<uint8_t> Bytes = {0xe9, 0x00, 0xff};
  EXPECT_EQ(hexBytes(Bytes), "e9 00 ff");
}

// --- Result ergonomics --------------------------------------------------------------

namespace {

Result<int> parsePositive(int V) {
  if (V <= 0)
    return Result<int>::error(format("not positive: %d", V));
  return V;
}

// E9_TRY propagates a failed Result as a Status error, which converts to
// any Result<U> — double the value on success.
Result<std::string> describeDouble(int V) {
  E9_TRY(N, parsePositive(V));
  return format("doubled: %d", N * 2);
}

Status checkAll(std::initializer_list<int> Vs) {
  for (int V : Vs)
    E9_TRY_STATUS(parsePositive(V).status());
  return Status::ok();
}

} // namespace

TEST(ResultT, TakeLeavesObservableConsumedState) {
  Result<std::string> R("hello");
  ASSERT_TRUE(R.isOk());
  std::string V = R.take();
  EXPECT_EQ(V, "hello");
  // No silent moved-from limbo: the Result now reports itself consumed.
  EXPECT_FALSE(R.isOk());
  EXPECT_NE(R.reason().find("already taken"), std::string::npos);
  EXPECT_FALSE(R.status().isOk());
}

TEST(ResultT, TakeErrorMovesTheFailureOut) {
  Result<int> R = Result<int>::error("disk on fire");
  ASSERT_FALSE(R.isOk());
  Status S = R.takeError();
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.reason(), "disk on fire");
}

TEST(ResultT, StatusMirrorsBothStates) {
  EXPECT_TRUE(parsePositive(3).status().isOk());
  Status Bad = parsePositive(-1).status();
  EXPECT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.reason(), "not positive: -1");
  // reason() on a success value is the empty string, safe to forward.
  EXPECT_EQ(parsePositive(3).reason(), "");
}

TEST(ResultT, TryMacroBindsOnSuccess) {
  auto R = describeDouble(21);
  ASSERT_TRUE(R.isOk()) << R.reason();
  EXPECT_EQ(*R, "doubled: 42");
}

TEST(ResultT, TryMacroPropagatesFailureAcrossValueTypes) {
  // parsePositive fails with Result<int>; describeDouble returns
  // Result<std::string> — the error must cross the type boundary intact.
  auto R = describeDouble(-7);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.reason(), "not positive: -7");
}

TEST(ResultT, TryStatusMacroShortCircuits) {
  EXPECT_TRUE(checkAll({1, 2, 3}).isOk());
  Status S = checkAll({1, -2, 3});
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.reason(), "not positive: -2");
}

// --- Arena ---------------------------------------------------------------

TEST(Arena, AlignmentAndDistinctness) {
  support::Arena A;
  void *P1 = A.allocate(1, 1);
  void *P8 = A.allocate(8, 8);
  void *P64 = A.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P64) % 64, 0u);
  EXPECT_NE(P1, P8);
  EXPECT_NE(P8, P64);
  EXPECT_GE(A.bytesAllocated(), 73u);
}

TEST(Arena, ResetReusesBlocks) {
  support::Arena A(1024);
  for (int Round = 0; Round != 4; ++Round) {
    for (int I = 0; I != 20; ++I)
      std::memset(A.allocate(40), Round, 40);
    size_t Blocks = A.blockCount();
    A.reset();
    EXPECT_EQ(A.bytesAllocated(), 0u);
    // Subsequent rounds must not grow the footprint.
    if (Round > 0)
      EXPECT_LE(A.blockCount(), Blocks);
  }
}

TEST(Arena, OversizeAllocationGetsDedicatedBlock) {
  support::Arena A(256);
  void *Big = A.allocate(5000, 16);
  ASSERT_NE(Big, nullptr);
  std::memset(Big, 0xab, 5000); // Must be fully writable.
  void *Small = A.allocate(16);
  EXPECT_NE(Small, nullptr);
}

TEST(Arena, AllocatorAdapterWorksWithVectors) {
  support::Arena A;
  using Vec = std::vector<int, support::ArenaAllocator<int>>;
  Vec V{support::ArenaAllocator<int>(A)};
  for (int I = 0; I != 1000; ++I)
    V.push_back(I);
  for (int I = 0; I != 1000; ++I)
    ASSERT_EQ(V[I], I);
  // clear() keeps arena-backed capacity; reuse must still work.
  V.clear();
  for (int I = 0; I != 10; ++I)
    V.push_back(-I);
  EXPECT_EQ(V[9], -9);
}

// --- ByteBuffer::reserve -------------------------------------------------

TEST(ByteBufferTest, ReservePreservesContentAndGrowth) {
  ByteBuffer B;
  B.push32(0x11223344);
  B.reserve(4096);
  EXPECT_EQ(B.size(), 4u);
  EXPECT_EQ(B.read(0, 4), 0x11223344u);
  for (int I = 0; I != 1000; ++I)
    B.push32(static_cast<uint32_t>(I));
  EXPECT_EQ(B.size(), 4u + 4000u);
  EXPECT_EQ(B.read(4, 4), 0u);
}

// --- Mmap ----------------------------------------------------------------

TEST(Mmap, WriteThenReadRoundTrip) {
  std::string Path = ::testing::TempDir() + "/e9_mmap_rt.bin";
  {
    auto Out = support::MappedOutputFile::create(Path, 300);
    ASSERT_TRUE(Out.valid());
    for (size_t I = 0; I != 300; ++I)
      Out.data()[I] = static_cast<uint8_t>(I * 7);
    ASSERT_TRUE(Out.commit());
  }
  auto In = support::MappedFile::openRead(Path);
  ASSERT_TRUE(In.valid());
  ASSERT_EQ(In.size(), 300u);
  for (size_t I = 0; I != 300; ++I)
    ASSERT_EQ(In.data()[I], static_cast<uint8_t>(I * 7));
  ::remove(Path.c_str());
}

TEST(Mmap, UncommittedOutputIsUnlinked) {
  std::string Path = ::testing::TempDir() + "/e9_mmap_drop.bin";
  {
    auto Out = support::MappedOutputFile::create(Path, 64);
    ASSERT_TRUE(Out.valid());
    // Dropped without commit(): a failed emission must not leave a
    // truncated binary behind.
  }
  EXPECT_FALSE(support::MappedFile::openRead(Path).valid());
}

TEST(Mmap, OpenMissingFileIsInvalid) {
  EXPECT_FALSE(
      support::MappedFile::openRead("/nonexistent/e9/nope.bin").valid());
  EXPECT_FALSE(support::MappedOutputFile::create("/nonexistent/e9/nope.bin",
                                                 16)
                   .valid());
}
