//===- x86/Reloc.cpp ------------------------------------------*- C++ -*-===//

#include "x86/Reloc.h"

#include "support/Format.h"
#include "x86/Assembler.h"

using namespace e9;
using namespace e9::x86;

static bool fitsInt32(int64_t V) {
  return V >= INT32_MIN && V <= INT32_MAX;
}

unsigned x86::relocatedSize(const Insn &I) {
  if (I.isLoopOrJcxz()) {
    // No rel32 forms exist; these are emulated flag-preservingly.
    switch (I.Opcode) {
    case 0xe3: // jrcxz: jrcxz taken; jmp over; taken: jmp target
      return 2 + 2 + 5;
    case 0xe2: // loop: lea rcx,[rcx-1]; jrcxz skip; jmp target
      return 4 + 2 + 5;
    default:   // loope/loopne: + one short jcc on ZF
      return 4 + 2 + 2 + 5;
    }
  }
  if (I.isJccRel8() || I.isJccRel32())
    return 6;
  if (I.isJmpRel8() || I.isJmpRel32() || I.isCallRel32())
    return 5;
  return I.Length; // Verbatim copy (possibly with a disp fixup).
}

/// Emulates a displaced loop/loope/loopne/jrcxz at \p NewAddr: the rcx
/// decrement uses lea (flags preserved) and the branch is re-encoded as
/// jrcxz over a rel32 jump.
static Status relocateLoopFamily(const Insn &I, uint64_t NewAddr,
                                 ByteBuffer &Out) {
  uint64_t Target = I.branchTarget();
  unsigned Size = relocatedSize(I);
  int64_t Rel = static_cast<int64_t>(Target) -
                static_cast<int64_t>(NewAddr + Size);
  if (Rel < INT32_MIN || Rel > INT32_MAX)
    return Status::error("relocated loop target out of rel32 range");

  if (I.Opcode == 0xe3) {
    // jrcxz taken(+2); jmp over(+5); taken: jmp target
    Out.pushBytes({0xe3, 0x02, 0xeb, 0x05, 0xe9});
    Out.push32(static_cast<uint32_t>(Rel));
    return Status::ok();
  }

  Out.pushBytes({0x48, 0x8d, 0x49, 0xff}); // lea rcx, [rcx-1]
  if (I.Opcode == 0xe2) {
    Out.pushBytes({0xe3, 0x05, 0xe9}); // jrcxz skip(+5); jmp target
  } else if (I.Opcode == 0xe1) {
    // loope: taken iff rcx != 0 && ZF.
    Out.pushBytes({0xe3, 0x07, 0x75, 0x05, 0xe9}); // jrcxz/jne skip
  } else {
    // loopne: taken iff rcx != 0 && !ZF.
    Out.pushBytes({0xe3, 0x07, 0x74, 0x05, 0xe9}); // jrcxz/je skip
  }
  Out.push32(static_cast<uint32_t>(Rel));
  return Status::ok();
}

Status x86::relocateInsn(const Insn &I, const uint8_t *Bytes,
                         uint64_t NewAddr, ByteBuffer &Out) {
  if (I.isLoopOrJcxz()) {
    size_t Start = Out.size();
    Status S = relocateLoopFamily(I, NewAddr, Out);
    assert((!S.isOk() || Out.size() - Start == relocatedSize(I)) &&
           "loop emulation size model out of sync");
    (void)Start;
    return S;
  }

  // Relative branches: re-encode to rel32 against the original target.
  if (I.isRelativeBranch()) {
    uint64_t Target = I.branchTarget();
    unsigned NewLen = relocatedSize(I);
    int64_t Rel = static_cast<int64_t>(Target) -
                  static_cast<int64_t>(NewAddr + NewLen);
    if (!fitsInt32(Rel))
      return Status::error(
          format("relocated branch target %s out of rel32 range",
                 hex(Target).c_str()));
    if (I.isJccRel8() || I.isJccRel32()) {
      Out.push8(0x0f);
      Out.push8(static_cast<uint8_t>(0x80 |
                                     static_cast<uint8_t>(I.cond())));
    } else if (I.isCallRel32()) {
      Out.push8(0xe8);
    } else {
      Out.push8(0xe9);
    }
    Out.push32(static_cast<uint32_t>(Rel));
    return Status::ok();
  }

  // Everything else: verbatim copy, fixing up rip-relative displacements.
  size_t Start = Out.size();
  Out.pushBytes(Bytes, I.Length);
  if (I.isRipRelative()) {
    uint64_t Target = I.ripTarget();
    int64_t NewDisp = static_cast<int64_t>(Target) -
                      static_cast<int64_t>(NewAddr + I.Length);
    if (!fitsInt32(NewDisp))
      return Status::error(
          format("relocated rip-relative operand %s out of disp32 range",
                 hex(Target).c_str()));
    Out.patch32(Start + I.DispOffset, static_cast<uint32_t>(NewDisp));
  }
  return Status::ok();
}

/// Rebuilds the Mem operand of \p I for re-encoding. Only valid for
/// non-rip-relative memory operands.
static Mem memOperandOf(const Insn &I) {
  Mem M;
  M.Base = I.memBase();
  M.Index = I.memIndex();
  M.Scale = I.memScale();
  M.Disp = I.Disp;
  return M;
}

Status x86::encodeLeaOfMemOperand(const Insn &I, Reg Dst, uint64_t NewAddr,
                                  ByteBuffer &Out) {
  if (!I.hasMemOperand())
    return Status::error("instruction has no memory operand");
  if (I.AddrSizeOverride)
    return Status::error("address-size override unsupported");
  if (I.SegPrefix == 0x64 || I.SegPrefix == 0x65)
    return Status::error("fs/gs segment-based operand unsupported");

  Assembler A(NewAddr);
  if (I.isRipRelative()) {
    // The displacement must be recomputed after we know the lea length.
    // Length is fixed for a rip-relative lea: REX.W + 8D + ModRM + disp32.
    constexpr unsigned LeaLen = 7;
    int64_t NewDisp = static_cast<int64_t>(I.ripTarget()) -
                      static_cast<int64_t>(NewAddr + LeaLen);
    if (!fitsInt32(NewDisp))
      return Status::error("rip-relative lea target out of disp32 range");
    A.leaRegMem(Dst, Mem::ripRel(static_cast<int32_t>(NewDisp)));
    assert(A.size() == LeaLen && "unexpected rip-relative lea length");
  } else {
    A.leaRegMem(Dst, memOperandOf(I));
  }
  Out.pushBytes(A.buffer().bytes());
  return Status::ok();
}

unsigned x86::leaOfMemOperandSize(const Insn &I) {
  if (!I.hasMemOperand() || I.AddrSizeOverride || I.SegPrefix == 0x64 ||
      I.SegPrefix == 0x65)
    return 0;
  // The size does not depend on the execution address: rip-relative leas
  // always use disp32, and register-based operands reuse I.Disp.
  if (I.isRipRelative())
    return 7; // REX.W + 8D + ModRM + disp32.
  Assembler A(0);
  A.leaRegMem(Reg::RDI, memOperandOf(I));
  return static_cast<unsigned>(A.size());
}
