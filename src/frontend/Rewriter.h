//===- frontend/Rewriter.h - High-level rewriting API ----------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point (the "e9tool" analog): takes an input image and
/// a set of patch locations, runs the tactic engine in reverse address
/// order, applies physical page grouping, and produces the rewritten
/// binary plus all the statistics the paper's tables report.
///
/// Typical use:
/// \code
///   auto Dis = frontend::linearDisassemble(Img);
///   frontend::RewriteOptions Opts;
///   Opts.Patch.Spec.Kind = core::TrampolineKind::Empty;
///   auto Out = frontend::rewrite(Img, frontend::selectJumps(Dis.Insns),
///                                Opts);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef E9_FRONTEND_REWRITER_H
#define E9_FRONTEND_REWRITER_H

#include "core/Grouping.h"
#include "core/Patcher.h"
#include "elf/Image.h"
#include "frontend/Shard.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/IntervalSet.h"
#include "verify/Verifier.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace e9 {
namespace frontend {

/// How the sharded patcher parallelizes one rewrite.
struct ParallelPolicy {
  /// Worker threads for the sharded patcher; 0 = all hardware threads.
  /// The output bytes are identical for every value (see Shard.h).
  unsigned Jobs = 1;
  /// Shard decomposition policy (site partitioning + address windows).
  ShardPolicy Sharding;
};

/// Post-rewrite verification policy and the failed-site error budget.
struct VerifyPolicy {
  /// Fail closed: run the post-rewrite verifier and turn any verification
  /// failure into a rewrite error (the report rides in RewriteOutput when
  /// the call still succeeds, and in the error text when it does not).
  bool Strict = false;
  /// Run the verifier and attach its report without failing the rewrite
  /// (advisory mode; implied by Strict).
  bool Enabled = false;
  verify::VerifyOptions Opts;
  /// Error budget: when more patch locations than this end up Failed, the
  /// whole rewrite fails with a structured report instead of returning a
  /// partially-patched binary. SIZE_MAX = unlimited (report-only).
  size_t MaxFailedSites = SIZE_MAX;
};

/// Observability policy. Tracing never influences any rewriting decision:
/// output bytes are identical with it on or off, and the trace itself is
/// byte-identical for any ParallelPolicy::Jobs value (see Shard.h).
struct TracePolicy {
  /// Collect the JSONL event trace into RewriteOutput::Trace.
  bool Enabled = false;
  /// Also emit "span" wall-clock events. Off by default because span
  /// durations are the one nondeterministic event field; everything else
  /// in a trace is a pure function of (input, options).
  bool Timings = false;
  /// Collect the hierarchical span profile (obs/Profile.h) into
  /// RewriteOutput::Profile.Tree/.Events: per-phase, per-shard and
  /// per-tactic wall-clock attribution. Same zero-cost contract as the
  /// tracer — the disabled path is one branch per span site and the
  /// output bytes are identical either way; the tree's structure (names,
  /// shards, counts, child order) is byte-identical for any Jobs value.
  bool Profile = false;
};

/// Self-verifying rewrite policy (the src/repair loop). Only consulted by
/// repair::selfVerifyingRewrite and its CLI/protocol surfaces — a plain
/// rewrite() ignores it.
struct RepairPolicy {
  bool Enabled = false;
  /// Global repair rounds (each = one VM-verified rewrite candidate).
  size_t MaxRounds = 64;
  /// Total candidate VM executions across all ddmin probes and retries.
  uint64_t MaxCandidateRuns = 4096;
  /// Most conservative ceiling a demotion may reach; a site that still
  /// diverges there is revoked (left unpatched). B0Only allows the full
  /// lattice walk down to the int3 baseline.
  core::TacticCeiling DemotionFloor = core::TacticCeiling::B0Only;
  /// Per-run instruction budget for candidate executions; 0 = automatic
  /// (reference instruction count * 4 + 10000), the hang oracle.
  uint64_t StepLimit = 0;
};

struct RewriteOptions {
  core::PatchOptions Patch;
  core::GroupingOptions Grouping;
  /// Extra address ranges trampolines must avoid (e.g. the heap region the
  /// runtime will hand out at execution time).
  std::vector<Interval> ExtraReserved;
  /// Optional per-site trampoline spec (overrides Patch.Spec), e.g. a
  /// distinct counter slot per location or a one-off binary patch. May be
  /// called concurrently from worker threads when Jobs > 1, so it must be
  /// reentrant (a pure function of the address).
  std::function<core::TrampolineSpec(uint64_t Addr)> SpecFor;

  ParallelPolicy Parallel;
  VerifyPolicy Verify;
  TracePolicy Trace;
  RepairPolicy Repair;

  // Fluent setters for the common knobs, so call sites read as one
  // declaration: `RewriteOptions().withJobs(4).withStrict()`.
  RewriteOptions &withJobs(unsigned Jobs) {
    Parallel.Jobs = Jobs;
    return *this;
  }
  RewriteOptions &withSharding(const ShardPolicy &P) {
    Parallel.Sharding = P;
    return *this;
  }
  RewriteOptions &withStrict(bool On = true) {
    Verify.Strict = On;
    return *this;
  }
  RewriteOptions &withVerify(bool On = true) {
    Verify.Enabled = On;
    return *this;
  }
  RewriteOptions &withVerifyOpts(const verify::VerifyOptions &O) {
    Verify.Opts = O;
    return *this;
  }
  RewriteOptions &withMaxFailedSites(size_t N) {
    Verify.MaxFailedSites = N;
    return *this;
  }
  RewriteOptions &withTrace(bool On = true) {
    Trace.Enabled = On;
    return *this;
  }
  RewriteOptions &withTraceTimings(bool On = true) {
    Trace.Timings = On;
    return *this;
  }
  RewriteOptions &withProfile(bool On = true) {
    Trace.Profile = On;
    return *this;
  }
  RewriteOptions &withRepair(bool On = true) {
    Repair.Enabled = On;
    return *this;
  }
  RewriteOptions &withRepairPolicy(const RepairPolicy &P) {
    Repair = P;
    return *this;
  }
};

struct RewriteOutput {
  elf::Image Rewritten;
  core::PatchStats Stats;
  core::GroupingResult Grouping;
  uint64_t OrigFileSize = 0;
  uint64_t NewFileSize = 0;
  /// Wall-clock phase spans (disasm/patch/merge/group/write/verify, plus
  /// one "patch" span per shard). Always populated. With
  /// TracePolicy::Profile the hierarchical span tree and raw event log
  /// ride in Profile.Tree / Profile.Events (see obs/Profile.h).
  obs::PhaseProfile Profile;
  /// JSONL trace lines (empty unless TracePolicy::Enabled).
  std::vector<std::string> Trace;
  /// Frozen pipeline metrics (counters + histograms). Always populated.
  obs::MetricsSnapshot Metrics;
  size_t ShardCount = 0;
  size_t ShardsRedone = 0;
  unsigned JobsUsed = 1;
  /// Rewritten-over-original file size in percent (Table 1 "Size%").
  double sizePct() const {
    return OrigFileSize == 0 ? 0.0
                             : 100.0 * static_cast<double>(NewFileSize) /
                                   static_cast<double>(OrigFileSize);
  }
  /// B0 side table for the VM trap handler (original bytes per site).
  std::map<uint64_t, std::vector<uint8_t>> B0Table;
  std::vector<core::PatchSiteResult> Sites;

  // Patch artifacts, retained so callers (and the verifier) can re-check
  // the rewrite without trusting the patcher.
  std::vector<core::TrampolineChunk> Chunks;
  std::vector<core::JumpRecord> Jumps;
  std::vector<Interval> ModifiedRanges;
  /// Verifier report (empty/ok unless Strict or Verify was set).
  verify::VerifyReport Verify;
};

/// Rewrites \p In, patching every location in \p PatchLocs.
Result<RewriteOutput> rewrite(const elf::Image &In,
                              const std::vector<uint64_t> &PatchLocs,
                              const RewriteOptions &Opts);

} // namespace frontend
} // namespace e9

#endif // E9_FRONTEND_REWRITER_H
