//===- frontend/Rewriter.cpp ----------------------------------*- C++ -*-===//

#include "frontend/Rewriter.h"

#include "frontend/Disasm.h"

#include <algorithm>

using namespace e9;
using namespace e9::frontend;

Result<RewriteOutput> frontend::rewrite(const elf::Image &In,
                                        const std::vector<uint64_t> &PatchLocs,
                                        const RewriteOptions &Opts) {
  if (!In.textSegment())
    return Result<RewriteOutput>::error("input image has no code segment");

  RewriteOutput Out;
  Out.OrigFileSize = elf::write(In).size();
  Out.Rewritten = In;
  Out.Rewritten.Blocks.clear();
  Out.Rewritten.Mappings.clear();

  DisasmResult Dis = linearDisassemble(Out.Rewritten);

  core::Patcher P(Out.Rewritten, std::move(Dis.Insns), Opts.Patch);
  for (const Interval &R : Opts.ExtraReserved)
    P.allocator().reserve(R.Lo, R.Hi);
  if (Opts.SpecFor) {
    // Per-site specs: drive the S1 reverse order here.
    std::vector<uint64_t> Sorted(PatchLocs);
    std::sort(Sorted.begin(), Sorted.end());
    Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
    for (auto It = Sorted.rbegin(); It != Sorted.rend(); ++It)
      P.patchOne(*It, Opts.SpecFor(*It));
  } else {
    P.patchAll(PatchLocs);
  }

  Out.Stats = P.stats();
  Out.B0Table = P.b0Table();
  Out.Rewritten.B0Sites = P.b0Table(); // self-contained rewritten binary
  Out.Sites = P.results();

  Out.Grouping = core::groupPages(P.chunks(), Opts.Grouping);
  Out.Rewritten.Blocks = std::move(Out.Grouping.Blocks);
  Out.Rewritten.Mappings = Out.Grouping.Mappings;

  Out.NewFileSize = elf::write(Out.Rewritten).size();
  return Out;
}
