file(REMOVE_RECURSE
  "libe9_bench_common.a"
)
