//===- api/Session.cpp ----------------------------------------*- C++ -*-===//

#include "api/Session.h"

#include "api/Protocol.h"
#include "api/Template.h"
#include "frontend/Prescan.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "obs/JsonWriter.h"
#include "repair/Repair.h"
#include "support/Format.h"
#include "verify/Verifier.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

using namespace e9;
using namespace e9::api;

namespace {

//===----------------------------------------------------------------------===//
// Job options (the protocol mirror of the `e9tool rewrite` flags)
//===----------------------------------------------------------------------===//

/// Per-job rewrite knobs with the same defaults as the rewrite
/// subcommand — the determinism guarantee (served == direct rewrite)
/// depends on the two frontends building identical RewriteOptions.
struct JobOptions {
  unsigned Jobs = 1;
  bool Strict = false;
  bool Verify = false;
  bool Differential = false;
  uint64_t MaxFailed = SIZE_MAX;
  unsigned Granularity = 1;
  bool Grouping = true;
  bool T1 = true, T2 = true, T3 = true;
  bool B0Fallback = false;
  bool ForceB0 = false;
  bool Repair = false;
  uint64_t RepairRounds = 64;
  uint64_t RepairRuns = 4096;
  uint64_t StepLimit = 0;
  core::TacticCeiling RepairFloor = core::TacticCeiling::B0Only;
};

/// Parses a demotion-floor name ("full", "no-t3", "no-t2", "no-t1", "b0").
bool parseCeiling(const std::string &V, core::TacticCeiling &Out) {
  if (V == "full")
    Out = core::TacticCeiling::Full;
  else if (V == "no-t3")
    Out = core::TacticCeiling::NoT3;
  else if (V == "no-t2")
    Out = core::TacticCeiling::NoT2;
  else if (V == "no-t1")
    Out = core::TacticCeiling::NoT1;
  else if (V == "b0" || V == "b0-only")
    Out = core::TacticCeiling::B0Only;
  else
    return false;
  return true;
}

enum class OptionKind { UInt, Bool, Str };

struct OptionSpec {
  const char *Name;
  OptionKind Kind;
  void (*Apply)(JobOptions &, uint64_t U, bool B);
  /// Str options only: returns "" on success, else the violation.
  std::string (*ApplyStr)(JobOptions &, const std::string &) = nullptr;
};

constexpr OptionSpec OptionTable[] = {
    {"jobs", OptionKind::UInt,
     [](JobOptions &O, uint64_t U, bool) { O.Jobs = (unsigned)U; }},
    {"strict", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.Strict = B; }},
    {"verify", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.Verify = B; }},
    {"differential", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.Differential = B; }},
    {"max-failed", OptionKind::UInt,
     [](JobOptions &O, uint64_t U, bool) { O.MaxFailed = U; }},
    {"granularity", OptionKind::UInt,
     [](JobOptions &O, uint64_t U, bool) { O.Granularity = (unsigned)U; }},
    {"grouping", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.Grouping = B; }},
    {"t1", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.T1 = B; }},
    {"t2", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.T2 = B; }},
    {"t3", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.T3 = B; }},
    {"b0-fallback", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.B0Fallback = B; }},
    {"force-b0", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.ForceB0 = B; }},
    {"repair", OptionKind::Bool,
     [](JobOptions &O, uint64_t, bool B) { O.Repair = B; }},
    {"repair-rounds", OptionKind::UInt,
     [](JobOptions &O, uint64_t U, bool) { O.RepairRounds = U; }},
    {"repair-runs", OptionKind::UInt,
     [](JobOptions &O, uint64_t U, bool) { O.RepairRuns = U; }},
    {"step-limit", OptionKind::UInt,
     [](JobOptions &O, uint64_t U, bool) { O.StepLimit = U; }},
    {"repair-floor", OptionKind::Str, nullptr,
     [](JobOptions &O, const std::string &V) -> std::string {
       if (!parseCeiling(V, O.RepairFloor))
         return format("option \"repair-floor\" wants full, no-t3, no-t2, "
                       "no-t1 or b0, got \"%s\"",
                       V.c_str());
       return "";
     }},
};

/// Applies one option message; empty string on success, else the
/// violation (unknown name / malformed value — both protocol errors).
std::string applyOption(JobOptions &O, const std::string &Name,
                        const std::string &Value) {
  for (const OptionSpec &S : OptionTable) {
    if (Name != S.Name)
      continue;
    if (S.Kind == OptionKind::Str)
      return S.ApplyStr(O, Value);
    if (S.Kind == OptionKind::Bool) {
      if (Value != "true" && Value != "false")
        return format("option \"%s\" wants \"true\" or \"false\", got "
                      "\"%s\"",
                      Name.c_str(), Value.c_str());
      S.Apply(O, 0, Value == "true");
      return "";
    }
    obs::JsonValue V;
    V.K = obs::JsonValue::Kind::String;
    V.Str = Value;
    std::optional<uint64_t> U =
        Value.rfind("0x", 0) == 0 ? obs::jsonToU64(V) : std::nullopt;
    if (!U) {
      errno = 0;
      char *End = nullptr;
      uint64_t Parsed = std::strtoull(Value.c_str(), &End, 10);
      if (Value.empty() || errno != 0 || End != Value.c_str() + Value.size())
        return format("option \"%s\" wants an unsigned integer, got "
                      "\"%s\"",
                      Name.c_str(), Value.c_str());
      U = Parsed;
    }
    S.Apply(O, *U, false);
    return "";
  }
  return format("unknown option \"%s\"", Name.c_str());
}

/// One patch request, kept in arrival order (later requests for the same
/// address win, like repeated CLI flags).
struct PatchRequest {
  bool IsAddr = false;
  uint64_t Addr = 0;
  std::string Select;
  std::shared_ptr<const core::TemplateProgram> Program;
  uint64_t Arg = 0;
};

/// State for the currently-open job (binary .. emit span).
struct Job {
  size_t Index = 0;
  std::string InputPath;
  Result<elf::Image> Image = Result<elf::Image>::error("not loaded");
  std::vector<PatchRequest> Patches;
  JobOptions Options;
  /// Job opened past the session's job quota: its messages are accepted
  /// (the stream stays parseable) but nothing runs; the emit reports a
  /// failed job with the quota reason.
  bool QuotaRejected = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

struct Session::Impl {
  Impl(ResponseSink Sink, SessionOptions Opts)
      : Sink(std::move(Sink)), Opts(Opts) {}

  ResponseSink Sink;
  SessionOptions Opts;
  SessionStats Stats;
  TemplateCache Templates;
  std::optional<Job> Cur;
  size_t JobCount = 0;
  uint64_t PatchRequests = 0;
  uint64_t TemplatesDefined = 0;
  bool HelloSeen = false;
  /// Any non-hello message pins the stream open: a handshake can only
  /// lead, never retroactively re-version responses already sent.
  bool Started = false;
  bool Finished = false;

  /// Starts a response line; every response carries the negotiated
  /// major version once a handshake happened (pre-handshake streams
  /// keep the PR 5 wire format unchanged).
  obs::JsonWriter begin(const char *Type) {
    obs::JsonWriter W;
    W.field("type", Type);
    if (HelloSeen)
      W.field("v", (uint64_t)ProtocolMajor);
    return W;
  }

  void emit(obs::JsonWriter &W) { Sink(W.take()); }

  bool fatalError(const char *Kind, size_t LineNo, const std::string &Msg) {
    obs::JsonWriter W = begin("error");
    W.field("kind", Kind)
        .field("line", (uint64_t)LineNo)
        .field("msg", Msg);
    emit(W);
    Stats.ProtocolError = true;
    return false;
  }

  bool protocolError(size_t LineNo, const std::string &Msg) {
    return fatalError("protocol", LineNo, Msg);
  }

  /// Rejects one over-quota message; the stream continues (true).
  bool quotaError(size_t LineNo, const std::string &Msg) {
    obs::JsonWriter W = begin("error");
    W.field("kind", "quota")
        .field("line", (uint64_t)LineNo)
        .field("msg", Msg);
    emit(W);
    ++Stats.QuotaRejected;
    return true;
  }

  bool handle(size_t LineNo, std::string_view Line) {
    auto M = parseMessage(Line);
    if (!M.isOk())
      return protocolError(LineNo, M.reason());
    if (M->Type != MsgType::Hello)
      Started = true;
    switch (M->Type) {
    case MsgType::Hello:
      return onHello(LineNo, *M);
    case MsgType::Binary:
      return onBinary(LineNo, *M);
    case MsgType::Template:
      return onTemplate(LineNo, *M);
    case MsgType::Patch:
      return onPatch(LineNo, *M);
    case MsgType::Option:
      return onOption(LineNo, *M);
    case MsgType::Emit:
      return onEmit(LineNo, *M);
    }
    return protocolError(LineNo, "unreachable message type");
  }

  bool onHello(size_t LineNo, const Message &M) {
    if (HelloSeen)
      return protocolError(LineNo, "duplicate hello handshake");
    if (Started)
      return protocolError(
          LineNo, "hello must be the first message of the session");
    unsigned Major = 0, Minor = 0;
    const std::string V = M.str("version");
    if (!parseProtocolVersion(V, Major, Minor))
      return fatalError(
          "version", LineNo,
          format("malformed protocol version \"%s\" (want MAJOR.MINOR)",
                 V.c_str()));
    if (Major != ProtocolMajor)
      return fatalError(
          "version", LineNo,
          format("unsupported protocol major version %u (server speaks "
                 "%u.%u)",
                 Major, ProtocolMajor, ProtocolMinor));
    HelloSeen = true;
    unsigned NegotiatedMinor = Minor < ProtocolMinor ? Minor : ProtocolMinor;
    obs::JsonWriter W = begin("hello");
    W.field("version",
            format("%u.%u", ProtocolMajor, NegotiatedMinor))
        .field("capabilities", protocolCapabilities());
    emit(W);
    return true;
  }

  bool onBinary(size_t LineNo, const Message &M) {
    if (Cur)
      return protocolError(
          LineNo,
          format("binary message while job #%zu is still open (missing "
                 "emit)",
                 Cur->Index));
    const SessionLimits &L = Opts.Limits;
    bool Rejected = L.MaxJobs != 0 && JobCount >= L.MaxJobs;
    Cur.emplace();
    Cur->Index = ++JobCount;
    Cur->InputPath = M.str("path");
    Cur->QuotaRejected = Rejected;
    if (Rejected)
      return quotaError(
          LineNo,
          format("session job quota exceeded (max %llu jobs); job #%zu "
                 "will not run",
                 (unsigned long long)L.MaxJobs, Cur->Index));
    // An unreadable input is a *job* failure (reported at emit), not a
    // protocol one: the rest of the batch must still run.
    Cur->Image = elf::readFile(Cur->InputPath);
    return true;
  }

  bool onTemplate(size_t LineNo, const Message &M) {
    const SessionLimits &L = Opts.Limits;
    if (L.MaxTemplates != 0 && TemplatesDefined >= L.MaxTemplates)
      return quotaError(
          LineNo,
          format("session template quota exceeded (max %llu definitions); "
                 "template \"%s\" not defined",
                 (unsigned long long)L.MaxTemplates,
                 M.str("name").c_str()));
    if (Status S = Templates.define(M.str("name"), M.str("body")); !S)
      return protocolError(LineNo, S.reason());
    ++TemplatesDefined;
    return true;
  }

  bool onPatch(size_t LineNo, const Message &M) {
    if (!Cur)
      return protocolError(LineNo,
                           "patch message outside a job (missing binary)");
    const SessionLimits &L = Opts.Limits;
    if (L.MaxPatchRequests != 0 && PatchRequests >= L.MaxPatchRequests)
      return quotaError(
          LineNo, format("session patch-request quota exceeded (max %llu "
                         "requests); patch ignored",
                         (unsigned long long)L.MaxPatchRequests));
    ++PatchRequests;
    if (Cur->QuotaRejected)
      return true; // schema-checked, then dropped with its dead job
    PatchRequest R;
    R.Program = Templates.find(M.str("template"));
    if (!R.Program)
      return protocolError(LineNo, format("patch: unknown template \"%s\"",
                                          M.str("template").c_str()));
    if (M.has("addr")) {
      R.IsAddr = true;
      R.Addr = *M.u64("addr");
    } else {
      R.Select = M.str("select");
      if (R.Select != "jumps" && R.Select != "heapwrites" &&
          R.Select != "all")
        return protocolError(
            LineNo, format("patch: unknown selector \"%s\" (want jumps, "
                           "heapwrites or all)",
                           R.Select.c_str()));
    }
    if (auto Arg = M.u64("arg"))
      R.Arg = *Arg;
    Cur->Patches.push_back(std::move(R));
    return true;
  }

  bool onOption(size_t LineNo, const Message &M) {
    if (!Cur)
      return protocolError(LineNo,
                           "option message outside a job (missing binary)");
    if (Cur->QuotaRejected)
      return true;
    std::string Err =
        applyOption(Cur->Options, M.str("name"), M.str("value"));
    if (!Err.empty())
      return protocolError(LineNo, Err);
    return true;
  }

  bool onEmit(size_t LineNo, const Message &M) {
    if (!Cur)
      return protocolError(LineNo,
                           "emit message outside a job (missing binary)");
    if (Cur->QuotaRejected) {
      Job J = std::move(*Cur);
      Cur.reset();
      jobFailed(J, M.str("path"),
                "job rejected by the session job quota");
      return true;
    }
    if (Cur->Patches.empty())
      return protocolError(
          LineNo, format("emit for job #%zu without any patch requests",
                         Cur->Index));
    Job J = std::move(*Cur);
    Cur.reset();
    runJob(J, M.str("path"));
    return true;
  }

  void jobFailed(const Job &J, const std::string &OutPath,
                 const std::string &Error) {
    obs::JsonWriter W = begin("status");
    W.field("job", (uint64_t)J.Index)
        .field("ok", false)
        .field("path", OutPath)
        .field("error", Error);
    emit(W);
    ++Stats.JobsFailed;
  }

  void runJob(const Job &J, const std::string &OutPath) {
    if (!J.Image.isOk()) {
      jobFailed(J, OutPath,
                format("cannot load %s: %s", J.InputPath.c_str(),
                       J.Image.reason().c_str()));
      return;
    }
    const elf::Image &Img = *J.Image;

    // Resolve the requests into one spec per site, in arrival order so a
    // later request overrides an earlier one for the same address.
    struct SiteSpec {
      std::shared_ptr<const core::TemplateProgram> Program;
      uint64_t Arg = 0;
    };
    std::map<uint64_t, SiteSpec> Sites;
    for (const PatchRequest &R : J.Patches) {
      std::vector<uint64_t> Addrs;
      if (R.IsAddr)
        Addrs.push_back(R.Addr);
      else if (R.Select == "jumps")
        Addrs = frontend::prescanSelect(Img, frontend::SelectorKind::Jumps);
      else if (R.Select == "heapwrites")
        Addrs =
            frontend::prescanSelect(Img, frontend::SelectorKind::HeapWrites);
      else
        Addrs = frontend::prescanSelect(Img, frontend::SelectorKind::All);
      for (uint64_t A : Addrs)
        Sites[A] = SiteSpec{R.Program, R.Arg};
    }

    std::vector<uint64_t> Locs;
    Locs.reserve(Sites.size());
    for (const auto &[Addr, Spec] : Sites)
      Locs.push_back(Addr);

    const JobOptions &O = J.Options;
    frontend::RewriteOptions Ro;
    Ro.Patch.EnableT1 = O.T1;
    Ro.Patch.EnableT2 = O.T2;
    Ro.Patch.EnableT3 = O.T3;
    Ro.Patch.B0Fallback = O.B0Fallback;
    Ro.Patch.ForceB0 = O.ForceB0;
    Ro.Grouping.Enabled = O.Grouping;
    Ro.Grouping.M = O.Granularity;
    Ro.ExtraReserved.push_back(lowfat::heapReservation());
    Ro.withStrict(O.Strict)
        .withVerify(O.Verify)
        .withMaxFailedSites(O.MaxFailed)
        .withJobs(Opts.JobsOverride ? Opts.JobsOverride : O.Jobs);
    Ro.Verify.Opts.Differential = O.Differential;
    Ro.Repair.Enabled = O.Repair;
    Ro.Repair.MaxRounds = O.RepairRounds;
    Ro.Repair.MaxCandidateRuns = O.RepairRuns;
    Ro.Repair.StepLimit = O.StepLimit;
    Ro.Repair.DemotionFloor = O.RepairFloor;
    // SpecFor is called concurrently from patcher workers; it only reads
    // the (immutable from here on) Sites map.
    Ro.SpecFor = [&Sites](uint64_t Addr) {
      core::TrampolineSpec S;
      S.Kind = core::TrampolineKind::Template;
      auto It = Sites.find(Addr);
      if (It != Sites.end()) {
        S.Program = It->second.Program;
        S.TemplateArg = It->second.Arg;
      }
      return S;
    };

    frontend::RewriteOutput Rewritten;
    repair::RepairReport Rep;
    if (O.Repair) {
      // Self-verifying path: a repair loop that cannot converge is a job
      // failure (fail closed) — never hand back an unverified binary from
      // a request that asked for verification by execution.
      auto R = repair::selfVerifyingRewrite(Img, Locs, Ro);
      if (!R.isOk()) {
        jobFailed(J, OutPath, R.reason());
        return;
      }
      if (!R->Report.Converged) {
        const repair::Divergence &D = R->Report.Final;
        jobFailed(J, OutPath,
                  format("self-verification did not converge: %s%s%s",
                         repair::divergenceKindName(D.Kind),
                         D.Detail.empty() ? "" : ": ", D.Detail.c_str()));
        return;
      }
      Rep = R->Report;
      Rewritten = std::move(R->Rewrite);
    } else {
      auto R = frontend::rewrite(Img, Locs, Ro);
      if (!R.isOk()) {
        jobFailed(J, OutPath, R.reason());
        return;
      }
      Rewritten = R.take();
    }
    const frontend::RewriteOutput *Out = &Rewritten;
    if (Status S = elf::writeFile(Out->Rewritten, OutPath); !S) {
      jobFailed(J, OutPath, S.reason());
      return;
    }

    for (const verify::VerifyFailure &F : Out->Verify.Failures) {
      obs::JsonWriter W = begin("finding");
      W.field("job", (uint64_t)J.Index)
          .field("kind", verify::failureKindName(F.Kind))
          .hex("addr", F.Addr)
          .field("msg", F.Message);
      emit(W);
    }

    const core::PatchStats &St = Out->Stats;
    obs::JsonWriter W = begin("status");
    W.field("job", (uint64_t)J.Index)
        .field("ok", true)
        .field("path", OutPath)
        .field("sites", (uint64_t)St.NLoc)
        .field("b1", (uint64_t)St.count(core::Tactic::B1))
        .field("b2", (uint64_t)St.count(core::Tactic::B2))
        .field("t1", (uint64_t)St.count(core::Tactic::T1))
        .field("t2", (uint64_t)St.count(core::Tactic::T2))
        .field("t3", (uint64_t)St.count(core::Tactic::T3))
        .field("b0", (uint64_t)St.count(core::Tactic::B0))
        .field("failed", (uint64_t)St.count(core::Tactic::Failed))
        .field("degraded", St.count(core::Tactic::Failed) > 0)
        .fixed("succ_pct", St.succPct())
        .field("orig_bytes", Out->OrigFileSize)
        .field("new_bytes", Out->NewFileSize)
        .fixed("size_pct", Out->sizePct())
        .field("verify_findings", (uint64_t)Out->Verify.Failures.size());
    if (O.Repair) {
      uint64_t Demoted = 0, Revoked = 0;
      for (const repair::SiteRepair &S : Rep.Sites)
        (S.Revoked ? Revoked : Demoted)++;
      W.field("repair_converged", Rep.Converged)
          .field("repair_rounds", (uint64_t)Rep.Rounds)
          .field("repair_demoted", Demoted)
          .field("repair_revoked", Revoked);
    }
    W.raw("metrics", Out->Metrics.toJson());
    emit(W);
    ++Stats.JobsOk;
  }
};

Session::Session(ResponseSink Sink, SessionOptions Opts)
    : M(std::make_unique<Impl>(std::move(Sink), Opts)) {}

Session::~Session() = default;

bool Session::feed(size_t LineNo, std::string_view Line) {
  return M->handle(LineNo, Line);
}

bool Session::finish(size_t LineNo) {
  if (M->Finished)
    return !M->Stats.ProtocolError;
  M->Finished = true;
  if (M->Cur)
    return M->protocolError(
        LineNo, format("stream ended inside job #%zu (missing emit)",
                       M->Cur->Index));
  return true;
}

bool Session::jobOpen() const { return M->Cur.has_value(); }

bool Session::helloNegotiated() const { return M->HelloSeen; }

const SessionStats &Session::stats() const { return M->Stats; }
