//===- tests/core_test.cpp - pun/alloc/lock/grouping/trampoline -*- C++ -*-===//

#include "core/Alloc.h"
#include "core/Grouping.h"
#include "core/Lock.h"
#include "core/Pun.h"
#include "core/Trampoline.h"

#include "x86/Decoder.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::core;
using namespace e9::x86;

// --- punTargetRange ---------------------------------------------------------

// The paper's running example (Figure 1): mov %rax,(%rbx), followed by
// add $32,%rax (48 83 c0 20). B2 puns the last two rel32 bytes against
// 48 83 -> rel32 = 0x8348XXXX, which is *negative*. At a non-PIE load
// address the whole window underflows and the pun is invalid (exactly the
// paper's motivating failure); at a PIE-style high address it is valid.
TEST(Pun, PaperFigure1BaselineB2) {
  uint8_t Rel32[4] = {0x00, 0x00, 0x48, 0x83}; // free, free, 48, 83

  const uint64_t Low = 0x400000;
  EXPECT_FALSE(punTargetRange(Low, 0, Low + 3, Rel32).has_value());

  const uint64_t High = 0x555555555000ULL;
  auto R = punTargetRange(High, 0, High + 3, Rel32);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->FreeBytes, 2u);
  EXPECT_EQ(R->Fixed, 0x83480000u);
  EXPECT_EQ(R->Base, High + 5);
  EXPECT_EQ(R->Targets.Lo,
            High + 5 + static_cast<int32_t>(0x83480000u));
  EXPECT_EQ(R->Targets.size(), 0x10000u);
}

// Rel32 window entirely below address zero must be rejected.
TEST(Pun, NegativeWindowRejected) {
  const uint64_t A = 0x400000;
  // Fixed bytes 0x8348 with only 2 free bytes: window size 64KiB at
  // A + 5 + sext(0x83480000) == far below zero.
  uint8_t Rel32[4] = {0, 0, 0x48, 0x83};
  auto R = punTargetRange(A, 0, A + 3, Rel32);
  EXPECT_FALSE(R.has_value());
}

TEST(Pun, PositiveWindowAccepted) {
  const uint64_t A = 0x400000;
  // Fixed bytes 0x4800 -> rel32 = 0x0048XXXX (positive).
  uint8_t Rel32[4] = {0, 0, 0x48, 0x00};
  auto R = punTargetRange(A, 0, A + 3, Rel32);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Targets.Lo, A + 5 + 0x00480000u);
  EXPECT_EQ(R->Targets.size(), 0x10000u);
  EXPECT_EQ(R->relFor(R->Targets.Lo), 0x00480000);
}

TEST(Pun, PaddingShiftsFreeBytes) {
  const uint64_t A = 0x400000;
  // 3-byte instruction, 1 pad: rel32 field at A+2..A+6, only byte A+2
  // free; fixed bytes come from A+3.. (indices 1..3).
  uint8_t Rel32[4] = {0, 0x20, 0x30, 0x10};
  auto R = punTargetRange(A, 1, A + 3, Rel32);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->FreeBytes, 1u);
  EXPECT_EQ(R->Fixed, 0x10302000u);
  EXPECT_EQ(R->Targets.size(), 256u);
}

TEST(Pun, ExactSingleTarget) {
  const uint64_t A = 0x400000;
  // Pads consume the whole 3-byte instruction: zero free bytes, single
  // target.
  uint8_t Rel32[4] = {0x11, 0x22, 0x33, 0x44};
  auto R = punTargetRange(A, 2, A + 3, Rel32);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->FreeBytes, 0u);
  EXPECT_EQ(R->Targets.size(), 1u);
  EXPECT_EQ(R->Targets.Lo, A + 2 + 5 + 0x44332211u);
}

TEST(Pun, FullFreedomForLongInsn) {
  const uint64_t A = 0x100000000ULL; // high enough that Base-2GiB > 0
  uint8_t Rel32[4] = {0, 0, 0, 0};
  auto R = punTargetRange(A, 0, A + 7, Rel32);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->FreeBytes, 4u);
  EXPECT_EQ(R->Targets.Lo, A + 5 - (1ull << 31));
  EXPECT_EQ(R->Targets.Hi, A + 5 + (1ull << 31));
}

TEST(Pun, FullFreedomClampsAtZero) {
  const uint64_t A = 0x400000; // Base - 2GiB underflows
  uint8_t Rel32[4] = {0, 0, 0, 0};
  auto R = punTargetRange(A, 0, A + 5, Rel32);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Targets.Lo, 0u);
  EXPECT_EQ(R->Targets.Hi, A + 5 + (1ull << 31));
}

TEST(Pun, OpcodeOutsideWritableZoneRejected) {
  uint8_t Rel32[4] = {0, 0, 0, 0};
  // 1-byte instruction with 1 pad: the e9 byte would land on a successor.
  EXPECT_FALSE(punTargetRange(0x400000, 1, 0x400001, Rel32).has_value());
  // 0 pads on a 1-byte instruction is fine (rel32 fully punned).
  uint8_t Rel[4] = {0x10, 0x20, 0x30, 0x00};
  auto R = punTargetRange(0x400000, 0, 0x400001, Rel);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->FreeBytes, 0u);
}

// --- Allocator -------------------------------------------------------------

TEST(Alloc, AllocatesInsideBound) {
  Allocator A;
  auto P = A.allocate(64, Interval{0x1000000, 0x1010000});
  ASSERT_TRUE(P.has_value());
  EXPECT_GE(*P, 0x1000000u);
  EXPECT_LE(*P + 64, 0x1010000u);
}

TEST(Alloc, RespectsReservations) {
  Allocator A;
  A.reserve(0x1000000, 0x100ff00);
  auto P = A.allocate(64, Interval{0x1000000, 0x1010000});
  ASSERT_TRUE(P.has_value());
  EXPECT_GE(*P, 0x100ff00u);
  A.reserve(0x100ff00, 0x1010000);
  EXPECT_FALSE(A.allocate(64, Interval{0x1000000, 0x1010000}).has_value());
}

TEST(Alloc, PacksIntoOpenZones) {
  Allocator A;
  auto P1 = A.allocate(64, Interval{0x1000000, 0x2000000});
  auto P2 = A.allocate(64, Interval{0x1000000, 0x2000000});
  ASSERT_TRUE(P1.has_value());
  ASSERT_TRUE(P2.has_value());
  // Same page: virtual page sharing.
  EXPECT_EQ(*P1 / 4096, *P2 / 4096);
}

TEST(Alloc, FreeAllowsReuse) {
  Allocator A;
  Interval B{0x1000000, 0x1000000 + 4096};
  auto P1 = A.allocate(4096, B);
  ASSERT_TRUE(P1.has_value());
  EXPECT_FALSE(A.allocate(4096, B).has_value());
  A.free(*P1, 4096);
  auto P2 = A.allocate(4096, B);
  ASSERT_TRUE(P2.has_value());
  EXPECT_EQ(*P1, *P2);
}

TEST(Alloc, TracksAllocations) {
  Allocator A;
  A.allocate(100, Interval{0x1000000, 0x2000000});
  A.allocate(50, Interval{0x1000000, 0x2000000});
  EXPECT_EQ(A.allocations().size(), 2u);
  EXPECT_EQ(A.allocatedBytes(), 150u);
}

TEST(Alloc, SearchBaseBiasesFreshZones) {
  Allocator A;
  A.SearchBase = 0x1800000;
  auto P = A.allocate(64, Interval{0x1000000, 0x2000000});
  ASSERT_TRUE(P.has_value());
  EXPECT_GE(*P, 0x1800000u); // Window preferred over the bound's low end.
  // When the window is exhausted/reserved, fall back to the full bound.
  A.reserve(0x1800000, 0x2000000);
  auto Q = A.allocate(64, Interval{0x1000000, 0x2000000});
  ASSERT_TRUE(Q.has_value());
  EXPECT_LT(*Q, 0x1800000u);
}

TEST(Alloc, RetiresExhaustedZones) {
  // A zone too small for the request under scan is dropped from the zone
  // index, but its bytes stay allocatable through the fresh-zone pass, so
  // page packing is preserved while the index only shrinks.
  Allocator A;
  auto P1 = A.allocate(4096 - 64, Interval{0x1000000, 0x2000000});
  ASSERT_TRUE(P1.has_value());
  EXPECT_EQ(A.openZoneCount(), 1u); // 64-byte tail zone remains open.
  auto P2 = A.allocate(128, Interval{0x1000000, 0x2000000});
  ASSERT_TRUE(P2.has_value());
  // The 64-byte zone was retired (too small for 128), but the fresh-zone
  // pass still starts the allocation in the tail: only the start address
  // is bound, the extent may run onto the next page.
  EXPECT_EQ(*P2, *P1 + 4096 - 64);
  auto P3 = A.allocate(64, Interval{0x1000000, 0x2000000});
  ASSERT_TRUE(P3.has_value());
  EXPECT_EQ(*P3, *P2 + 128); // Packed into the zone P2 opened.
}

// --- LockState ---------------------------------------------------------------

TEST(Lock, BasicLocking) {
  LockState L;
  EXPECT_FALSE(L.isLocked(100));
  L.lock(100, 105);
  EXPECT_TRUE(L.isLocked(100));
  EXPECT_TRUE(L.isLocked(104));
  EXPECT_FALSE(L.isLocked(105));
  EXPECT_TRUE(L.anyLocked(104, 110));
  EXPECT_FALSE(L.anyLocked(105, 110));
}

TEST(Lock, RecordNewOnlyUnlocksNew) {
  LockState L;
  L.lock(100, 110);
  std::vector<Interval> Added;
  L.lockRecordNew(105, 120, Added);
  ASSERT_EQ(Added.size(), 1u);
  EXPECT_EQ(Added[0].Lo, 110u);
  EXPECT_EQ(Added[0].Hi, 120u);
  // Rolling back the recorded ranges must keep the original lock.
  for (const Interval &I : Added)
    L.unlock(I.Lo, I.Hi);
  EXPECT_TRUE(L.isLocked(109));
  EXPECT_FALSE(L.isLocked(110));
}

TEST(Lock, ModifiedSeparateFromLocked) {
  LockState L;
  L.lock(100, 105);
  EXPECT_FALSE(L.anyModified(100, 105));
  L.markModified(100, 102);
  EXPECT_TRUE(L.anyModified(100, 105));
  EXPECT_FALSE(L.anyModified(102, 105));
}

// --- Trampoline sizes/builds ---------------------------------------------------

namespace {

Insn decodeAt(std::vector<uint8_t> Bytes, uint64_t Addr) {
  Insn I;
  EXPECT_EQ(decode(Bytes.data(), Bytes.size(), Addr, I), DecodeStatus::Ok);
  return I;
}

} // namespace

TEST(Trampoline, EmptyKindShape) {
  std::vector<uint8_t> Mov = {0x48, 0x89, 0x03};
  Insn I = decodeAt(Mov, 0x401000);
  TrampolineSpec Spec;
  Spec.Kind = TrampolineKind::Empty;
  unsigned Size = trampolineSize(Spec, I);
  EXPECT_EQ(Size, 3u + 5u);
  auto B = buildTrampoline(Spec, I, Mov.data(), 0x10000000);
  ASSERT_TRUE(B.isOk()) << B.reason();
  EXPECT_EQ(B->size(), Size);
  // Displaced instruction verbatim, then jmp back to 0x401003.
  EXPECT_EQ((*B)[0], 0x48);
  EXPECT_EQ((*B)[3], 0xe9);
  Insn Jmp = decodeAt({(*B).begin() + 3, (*B).end()}, 0x10000003);
  EXPECT_EQ(Jmp.branchTarget(), 0x401003u);
}

TEST(Trampoline, DisplacedJccRetargets) {
  // je +0x10 at 0x401000 (target 0x401012) displaced to a trampoline.
  std::vector<uint8_t> Jcc = {0x74, 0x10};
  Insn I = decodeAt(Jcc, 0x401000);
  TrampolineSpec Spec;
  Spec.Kind = TrampolineKind::Empty;
  auto B = buildTrampoline(Spec, I, Jcc.data(), 0x10000000);
  ASSERT_TRUE(B.isOk());
  Insn J = decodeAt({(*B).begin(), (*B).begin() + 6}, 0x10000000);
  EXPECT_TRUE(J.isJccRel32());
  EXPECT_EQ(J.branchTarget(), 0x401012u);
  Insn Back = decodeAt({(*B).begin() + 6, (*B).end()}, 0x10000006);
  EXPECT_EQ(Back.branchTarget(), 0x401002u);
}

TEST(Trampoline, CounterKindIsFlagSafe) {
  std::vector<uint8_t> Mov = {0x48, 0x89, 0x03};
  Insn I = decodeAt(Mov, 0x401000);
  TrampolineSpec Spec;
  Spec.Kind = TrampolineKind::Counter;
  Spec.CounterAddr = 0x200000;
  auto B = buildTrampoline(Spec, I, Mov.data(), 0x10000000);
  ASSERT_TRUE(B.isOk()) << B.reason();
  // Must contain pushfq (9c) before and popfq (9d) after the inc.
  auto &Bytes = *B;
  size_t Pushfq = 0, Popfq = 0;
  for (size_t K = 0; K != Bytes.size(); ++K) {
    if (Bytes[K] == 0x9c && Pushfq == 0)
      Pushfq = K;
    if (Bytes[K] == 0x9d)
      Popfq = K;
  }
  EXPECT_NE(Pushfq, 0u);
  EXPECT_GT(Popfq, Pushfq);
}

TEST(Trampoline, LowFatNeedsMemOperand) {
  std::vector<uint8_t> AddRR = {0x48, 0x01, 0xd8}; // add rax, rbx
  Insn I = decodeAt(AddRR, 0x401000);
  TrampolineSpec Spec;
  Spec.Kind = TrampolineKind::LowFatCheck;
  Spec.HookAddr = 0x7e9f00000300ULL;
  EXPECT_EQ(trampolineSize(Spec, I), 0u);

  std::vector<uint8_t> Store = {0x48, 0x89, 0x03};
  Insn W = decodeAt(Store, 0x401000);
  EXPECT_GT(trampolineSize(Spec, W), 0u);
  auto B = buildTrampoline(Spec, W, Store.data(), 0x10000000);
  ASSERT_TRUE(B.isOk()) << B.reason();
  EXPECT_EQ(B->size(), trampolineSize(Spec, W));
}

TEST(Trampoline, LoopIsEmulatedWhenDisplaced) {
  std::vector<uint8_t> Loop = {0xe2, 0xfe}; // loop to self
  Insn I = decodeAt(Loop, 0x401000);
  TrampolineSpec Spec;
  Spec.Kind = TrampolineKind::Empty;
  // lea/jrcxz/jmp emulation (11 bytes) + jump back.
  EXPECT_EQ(trampolineSize(Spec, I), 11u + 5u);
  auto B = buildTrampoline(Spec, I, Loop.data(), 0x10000000);
  ASSERT_TRUE(B.isOk()) << B.reason();
  EXPECT_EQ((*B)[0], 0x48); // lea rcx,[rcx-1]
  EXPECT_EQ((*B)[4], 0xe3); // jrcxz
}

TEST(Trampoline, PatchBytesKind) {
  std::vector<uint8_t> Mov = {0x48, 0x89, 0x03};
  Insn I = decodeAt(Mov, 0x401000);
  TrampolineSpec Spec;
  Spec.Kind = TrampolineKind::PatchBytes;
  Spec.Raw = {0x90, 0x90};
  Spec.JumpBackTarget = 0x401010;
  auto B = buildTrampoline(Spec, I, Mov.data(), 0x10000000);
  ASSERT_TRUE(B.isOk());
  EXPECT_EQ(B->size(), 7u);
  Insn Jmp = decodeAt({(*B).begin() + 2, (*B).end()}, 0x10000002);
  EXPECT_EQ(Jmp.branchTarget(), 0x401010u);
}

// --- Grouping --------------------------------------------------------------------

namespace {

TrampolineChunk chunk(uint64_t Addr, size_t N, uint8_t Fill) {
  TrampolineChunk C;
  C.Addr = Addr;
  C.Bytes.assign(N, Fill);
  return C;
}

} // namespace

TEST(Grouping, PaperFigure3Scenario) {
  // Five trampolines over three pages with disjoint in-page offsets merge
  // into a single physical page (Figure 3).
  std::vector<TrampolineChunk> Chunks = {
      chunk(0x10000000 + 0x100, 32, 0xaa), // page 1, off 0x100
      chunk(0x10000000 + 0x800, 32, 0xbb), // page 1, off 0x800
      chunk(0x20000000 + 0x400, 32, 0xcc), // page 2, off 0x400
      chunk(0x30000000 + 0xc00, 32, 0xdd), // page 3, off 0xc00
      chunk(0x30000000 + 0xe00, 32, 0xee), // page 3, off 0xe00
  };
  GroupingOptions Opts;
  Opts.Enabled = true;
  Opts.M = 1;
  auto RG = groupPages(Chunks, Opts);
  ASSERT_TRUE(RG.isOk()) << RG.reason();
  GroupingResult R = RG.take();
  EXPECT_EQ(R.VirtualBlocks, 3u);
  ASSERT_EQ(R.Blocks.size(), 1u);
  EXPECT_EQ(R.PhysBytes, 4096u);
  EXPECT_EQ(R.Mappings.size(), 3u);
  // The merged page holds all five trampolines at their in-page offsets.
  EXPECT_EQ(R.Blocks[0].Bytes[0x100], 0xaa);
  EXPECT_EQ(R.Blocks[0].Bytes[0x800], 0xbb);
  EXPECT_EQ(R.Blocks[0].Bytes[0x400], 0xcc);
  EXPECT_EQ(R.Blocks[0].Bytes[0xc00], 0xdd);
  EXPECT_EQ(R.Blocks[0].Bytes[0xe00], 0xee);
}

TEST(Grouping, OverlappingOffsetsSplitGroups) {
  std::vector<TrampolineChunk> Chunks = {
      chunk(0x10000000 + 0x100, 32, 0xaa),
      chunk(0x20000000 + 0x100, 32, 0xbb), // same in-page offset: conflict
  };
  GroupingOptions Opts;
  auto RG = groupPages(Chunks, Opts);
  ASSERT_TRUE(RG.isOk()) << RG.reason();
  GroupingResult R = RG.take();
  EXPECT_EQ(R.Blocks.size(), 2u);
  EXPECT_EQ(R.PhysBytes, 2 * 4096u);
}

TEST(Grouping, DisabledIsOneToOne) {
  std::vector<TrampolineChunk> Chunks = {
      chunk(0x10000000 + 0x100, 32, 0xaa),
      chunk(0x20000000 + 0x800, 32, 0xbb),
  };
  GroupingOptions Opts;
  Opts.Enabled = false;
  auto RG = groupPages(Chunks, Opts);
  ASSERT_TRUE(RG.isOk()) << RG.reason();
  GroupingResult R = RG.take();
  EXPECT_EQ(R.PhysBytes, 2 * 4096u);
  EXPECT_EQ(R.Mappings.size(), 2u);
}

TEST(Grouping, NaiveCoalescesAdjacentPages) {
  // Two trampolines in adjacent virtual pages: naive backing is contiguous
  // in the file, so the mappings coalesce into one.
  std::vector<TrampolineChunk> Chunks = {
      chunk(0x10000000, 32, 0xaa),
      chunk(0x10001000, 32, 0xbb),
  };
  GroupingOptions Opts;
  Opts.Enabled = false;
  auto RG = groupPages(Chunks, Opts);
  ASSERT_TRUE(RG.isOk()) << RG.reason();
  GroupingResult R = RG.take();
  EXPECT_EQ(R.MappingCount, 1u);
  EXPECT_EQ(R.Mappings.size(), 1u);
  EXPECT_EQ(R.Mappings[0].Size, 2 * 4096u);
}

TEST(Grouping, SpanningTrampolineSplits) {
  // A trampoline crossing a page boundary becomes two mini-trampolines.
  std::vector<TrampolineChunk> Chunks = {
      chunk(0x10000000 + 0xff0, 64, 0xaa),
  };
  GroupingOptions Opts;
  auto RG = groupPages(Chunks, Opts);
  ASSERT_TRUE(RG.isOk()) << RG.reason();
  GroupingResult R = RG.take();
  EXPECT_EQ(R.VirtualBlocks, 2u);
  // Offsets 0xff0..0xfff in one page and 0x000..0x02f in the next are
  // disjoint, so one merged physical page suffices.
  EXPECT_EQ(R.Blocks.size(), 1u);
}

TEST(Grouping, CoarserGranularityFewerMappings) {
  std::vector<TrampolineChunk> Chunks;
  for (int I = 0; I != 16; ++I)
    Chunks.push_back(chunk(0x10000000 + I * 0x1000ull, 16, 0xaa));
  GroupingOptions M1;
  M1.M = 1;
  GroupingOptions M4;
  M4.M = 4;
  auto RG1 = groupPages(Chunks, M1);
  auto RG4 = groupPages(Chunks, M4);
  ASSERT_TRUE(RG1.isOk() && RG4.isOk());
  GroupingResult R1 = RG1.take(), R4 = RG4.take();
  EXPECT_GT(R1.MappingCount, R4.MappingCount);
  // All 16 pages hold a trampoline at the same in-page offset: no merging
  // possible at M=1, so phys bytes equal 16 pages either way, but M=4
  // still cuts the mapping count.
  EXPECT_EQ(R4.MappingCount, 4u);
}

// --- Error paths: every failure is a clean, attributable error --------------

TEST(ErrorPath, TrampolineRel32OutOfRangeIsAnError) {
  // A trampoline placed >2GiB from its resume address cannot encode the
  // jump back; the builder must fail with a rel32-range error, not emit a
  // truncated displacement.
  std::vector<uint8_t> Mov = {0x48, 0x89, 0x03};
  Insn I = decodeAt(Mov, 0x401000);
  TrampolineSpec Spec;
  Spec.Kind = TrampolineKind::PatchBytes;
  Spec.Raw = {0x90};
  Spec.JumpBackTarget = 0x401010;
  auto Far = buildTrampoline(Spec, I, Mov.data(), 0x7e0000000000ULL);
  ASSERT_FALSE(Far.isOk());
  EXPECT_NE(Far.reason().find("rel32"), std::string::npos) << Far.reason();
  // The same build close by succeeds.
  EXPECT_TRUE(buildTrampoline(Spec, I, Mov.data(), 0x10000000).isOk());
}

TEST(ErrorPath, AllocatorExhaustionReturnsEmpty) {
  Allocator A;
  // Reserve the entire bound: no space can exist.
  A.reserve(0x10000000, 0x20000000);
  EXPECT_FALSE(
      A.allocate(64, Interval{0x10000000, 0x20000000}).has_value());
  // Zero-size and empty-bound requests are refused, not asserted on.
  EXPECT_FALSE(A.allocate(0, Interval{0x10000000, 0x20000000}).has_value());
  EXPECT_FALSE(A.allocate(64, Interval{0x20000000, 0x10000000}).has_value());
  // A valid request right after still works (no corrupted state).
  EXPECT_TRUE(A.allocate(64, Interval{0x30000000, 0x40000000}).has_value());
}

TEST(ErrorPath, GroupingRefusesOverlappingChunks) {
  // Two chunks claiming the same byte is corrupted input: emitting a
  // block whose content depends on chunk order would silently corrupt
  // the binary, so groupPages must fail closed.
  std::vector<TrampolineChunk> Overlapping = {
      chunk(0x10000000, 32, 0xaa),
      chunk(0x10000010, 32, 0xbb), // overlaps the first by 16 bytes
  };
  GroupingOptions Opts;
  auto R = groupPages(Overlapping, Opts);
  ASSERT_FALSE(R.isOk());
  EXPECT_NE(R.reason().find("overlap"), std::string::npos) << R.reason();
  EXPECT_NE(R.reason().find("0x"), std::string::npos)
      << "error should name the conflicting address: " << R.reason();

  // Adjacent (non-overlapping) chunks still group fine.
  std::vector<TrampolineChunk> Adjacent = {
      chunk(0x10000000, 32, 0xaa),
      chunk(0x10000020, 32, 0xbb),
  };
  EXPECT_TRUE(groupPages(Adjacent, Opts).isOk());
}
