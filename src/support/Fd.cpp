//===- support/Fd.cpp -----------------------------------------*- C++ -*-===//

#include "support/Fd.h"

#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

using namespace e9;
using namespace e9::support;

void Fd::reset() {
  if (Raw >= 0)
    ::close(Raw);
  Raw = -1;
}

namespace {

PollResult pollOne(int RawFd, short Events, int TimeoutMs) {
  struct pollfd P;
  P.fd = RawFd;
  P.events = Events;
  P.revents = 0;
  for (;;) {
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return PollResult::Error;
    }
    if (N == 0)
      return PollResult::Timeout;
    // POLLHUP/POLLERR/POLLNVAL are "ready" in the sense that the next
    // read()/write() will not block — it returns EOF or the real errno,
    // which is where the caller diagnoses the condition.
    return PollResult::Ready;
  }
}

} // namespace

PollResult support::pollReadable(int RawFd, int TimeoutMs) {
  return pollOne(RawFd, POLLIN, TimeoutMs);
}

PollResult support::pollWritable(int RawFd, int TimeoutMs) {
  return pollOne(RawFd, POLLOUT, TimeoutMs);
}

Status support::setNonBlocking(int RawFd, bool NonBlocking) {
  int Flags = ::fcntl(RawFd, F_GETFL);
  if (Flags < 0)
    return Status::error("fcntl(F_GETFL) failed");
  if (NonBlocking)
    Flags |= O_NONBLOCK;
  else
    Flags &= ~O_NONBLOCK;
  if (::fcntl(RawFd, F_SETFL, Flags) < 0)
    return Status::error("fcntl(F_SETFL) failed");
  return Status::ok();
}

Status support::setCloseOnExec(int RawFd) {
  if (::fcntl(RawFd, F_SETFD, FD_CLOEXEC) < 0)
    return Status::error("fcntl(FD_CLOEXEC) failed");
  return Status::ok();
}
