#!/usr/bin/env python3
"""Compare a fresh bench_micro run against the committed baseline JSON.

Usage: perf_smoke.py BASELINE.json CURRENT.json [max_regression] [--emit-json FILE]

Both files are google-benchmark JSON (--benchmark_out_format=json). For
each benchmark name we take the *median* real_time across repetitions on
both sides -- run with --benchmark_repetitions=5 so the median has
something to bite on. Median-of-N is a better location estimate than
min-of-N on shared machines: the min chases the single luckiest run,
while the median is stable under a minority of perturbed repetitions in
either direction.

Machine-noise guard: before gating, we compute the median of the
per-benchmark current/baseline ratios. If the whole suite shifted by more
than MACHINE_SHIFT (15%) in the same direction, that is machine noise or a
toolchain change, not a single regression -- the gate normalizes every
ratio by the suite median (so only benchmarks that moved *relative to the
suite* can fail) and prints a warning telling you to regenerate the
baseline.

The gate fails if any benchmark's normalized median is more than
`max_regression` (default 25%) slower than its baseline. New benchmarks
absent from the baseline are reported but never fail the gate, so adding a
benchmark does not require regenerating the baseline in the same commit.

--emit-json FILE writes a flat record of the comparison (per-benchmark
medians, ratios, and the suite shift) consumable by `e9tool stats` and
`e9tool stats --compare`.
"""

import json
import sys

# Suite-wide median ratio beyond which we treat the shift as machine noise
# and normalize instead of failing every benchmark.
MACHINE_SHIFT = 0.15


def medians(path):
    with open(path) as f:
        data = json.load(f)
    runs = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev/cv); compare raw runs.
        if b.get("run_type") == "aggregate":
            continue
        runs.setdefault(b["name"], []).append(float(b["real_time"]))
    return {name: median(ts) for name, ts in runs.items()}


def median(xs):
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def main(argv):
    emit_path = None
    args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--emit-json":
            if i + 1 >= len(argv):
                print("perf-smoke: --emit-json needs a file", file=sys.stderr)
                return 2
            emit_path = argv[i + 1]
            i += 2
        else:
            args.append(argv[i])
            i += 1
    if len(args) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base = medians(args[0])
    cur = medians(args[1])
    limit = float(args[2]) if len(args) > 2 else 0.25

    shared = sorted(set(base) & set(cur))
    ratios = {n: cur[n] / base[n] for n in shared if base[n] > 0}
    suite_shift = median(list(ratios.values())) if ratios else 1.0
    norm = 1.0
    # The median of fewer than 3 ratios degenerates toward the mean, where a
    # single genuine regression could masquerade as a suite-wide shift.
    if len(ratios) >= 3 and abs(suite_shift - 1.0) > MACHINE_SHIFT:
        norm = suite_shift
        print("perf-smoke: WARNING suite-wide shift %+.1f%% looks like "
              "machine noise or a toolchain change; normalizing ratios by "
              "the suite median (consider regenerating the baseline)"
              % ((suite_shift - 1.0) * 100.0), file=sys.stderr)

    failed = []
    rows = []
    for name, t in sorted(cur.items()):
        if name not in base:
            print("perf-smoke: %-28s %12.0f ns  (new, no baseline)" % (name, t))
            rows.append({"name": name, "median_ns": t})
            continue
        ratio = ratios.get(name, 1.0) / norm
        mark = "FAIL" if ratio > 1.0 + limit else "ok"
        print("perf-smoke: %-28s %12.0f ns  vs %12.0f ns  %+6.1f%%  %s"
              % (name, t, base[name], (ratio - 1.0) * 100.0, mark))
        rows.append({"name": name, "median_ns": t,
                     "baseline_median_ns": base[name],
                     "norm_ratio": round(ratio, 4)})
        if ratio > 1.0 + limit:
            failed.append(name)

    if emit_path:
        record = {
            "bench": "perf_smoke",
            "suite_shift_ratio": round(suite_shift, 4),
            "normalized": 1 if norm != 1.0 else 0,
            "limit_pct": limit * 100.0,
            "fail_count": len(failed),
            "benchmarks": rows,
        }
        with open(emit_path, "w") as f:
            json.dump(record, f, separators=(",", ":"))
            f.write("\n")

    if failed:
        print("perf-smoke: regression >%d%% in: %s"
              % (int(limit * 100), ", ".join(failed)), file=sys.stderr)
        return 1
    print("perf-smoke: all benchmarks within %d%% of baseline"
          % int(limit * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
