//===- x86/Reloc.h - Displaced instruction relocation ----------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When a patch tactic displaces an instruction into a trampoline, the
/// displaced copy must behave as if it still executed at its original
/// address. Position-independent instructions are copied verbatim;
/// rip-relative operands and relative branches are re-encoded against
/// the new location. This mirrors E9Patch's trampoline instruction
/// emulation.
///
//===----------------------------------------------------------------------===//

#ifndef E9_X86_RELOC_H
#define E9_X86_RELOC_H

#include "support/ByteBuffer.h"
#include "support/Status.h"
#include "x86/Insn.h"

#include <cstdint>

namespace e9 {
namespace x86 {

/// Appends a semantically equivalent copy of \p I (whose original bytes are
/// \p Bytes, length I.Length, at original address I.Address) to \p Out,
/// assuming the copy will execute at address \p NewAddr.
///
/// Handles: verbatim copies, rip-relative displacement fixups, and
/// re-encoding of rel8/rel32 jmp/jcc/call to rel32 forms. loop/jcxz and
/// out-of-range rip fixups are rejected with an error (the caller then
/// fails the tactic for that patch location).
Status relocateInsn(const Insn &I, const uint8_t *Bytes, uint64_t NewAddr,
                    ByteBuffer &Out);

/// Returns the exact byte size relocateInsn would emit for \p I, without
/// validating displacement ranges (size is address-independent).
unsigned relocatedSize(const Insn &I);

/// Appends "lea <Dst>, [mem operand of I]" to \p Out, reusing I's ModRM/
/// SIB/displacement. Used by the LowFat redzone-check instrumentation to
/// materialize the written-to pointer. \p NewAddr is the address the lea
/// will execute at (needed for rip-relative operands).
/// Fails for instructions without a memory operand or with an address-size
/// override.
Status encodeLeaOfMemOperand(const Insn &I, Reg Dst, uint64_t NewAddr,
                             ByteBuffer &Out);

/// Returns the exact byte size encodeLeaOfMemOperand would emit.
unsigned leaOfMemOperandSize(const Insn &I);

} // namespace x86
} // namespace e9

#endif // E9_X86_RELOC_H
