//===- tests/integration_test.cpp - end-to-end rewriting -------*- C++ -*-===//
//
// Generates synthetic binaries, rewrites them through the full pipeline
// (disassemble -> patch -> group -> emit), executes original and rewritten
// images in the VM, and requires identical observable behaviour. This is
// the semantic-preservation property at the heart of the paper.
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Runtime.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "vm/Hooks.h"
#include "workload/Gen.h"
#include "workload/Run.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

namespace {

WorkloadConfig smallConfig(uint64_t Seed, bool Pie = false) {
  WorkloadConfig C;
  C.Name = "itest";
  C.Seed = Seed;
  C.Pie = Pie;
  C.NumFuncs = 8;
  C.MainIters = 3;
  return C;
}

RewriteOptions emptyA(core::TrampolineKind Kind) {
  RewriteOptions O;
  O.Patch.Spec.Kind = Kind;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  return O;
}

} // namespace

TEST(Workload, DeterministicPerSeed) {
  Workload A = generateWorkload(smallConfig(7));
  Workload B = generateWorkload(smallConfig(7));
  Workload C = generateWorkload(smallConfig(8));
  EXPECT_EQ(A.Image.textSegment()->Bytes, B.Image.textSegment()->Bytes);
  EXPECT_NE(A.Image.textSegment()->Bytes, C.Image.textSegment()->Bytes);
}

TEST(Workload, RunsToCompletionDeterministically) {
  Workload W = generateWorkload(smallConfig(42));
  RunOutcome R1 = runImage(W.Image);
  RunOutcome R2 = runImage(W.Image);
  ASSERT_TRUE(R1.ok()) << R1.Result.Error;
  EXPECT_EQ(R1.Rax, R2.Rax);
  EXPECT_EQ(R1.DataChecksum, R2.DataChecksum);
  EXPECT_GT(R1.Result.InsnCount, 1000u);
}

TEST(Workload, LinearDisassemblyIsClean) {
  // Generated code contains no data islands: linear disassembly must
  // decode every byte.
  Workload W = generateWorkload(smallConfig(42));
  DisasmResult D = linearDisassemble(W.Image);
  EXPECT_EQ(D.UndecodableBytes, 0u);
  EXPECT_GT(D.Insns.size(), 200u);
}

TEST(Workload, RoundTripsThroughElf) {
  Workload W = generateWorkload(smallConfig(42));
  auto Bytes = elf::write(W.Image);
  auto Back = elf::read(Bytes);
  ASSERT_TRUE(Back.isOk()) << Back.reason();
  RunOutcome R1 = runImage(W.Image);
  RunOutcome R2 = runImage(*Back);
  EXPECT_EQ(R1.Rax, R2.Rax);
  EXPECT_EQ(R1.DataChecksum, R2.DataChecksum);
}

// --- The central property: rewrite preserves behaviour ------------------------

class RewritePreserves : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewritePreserves, JumpInstrumentationA1) {
  Workload W = generateWorkload(smallConfig(GetParam()));
  RunOutcome Ref = runImage(W.Image);
  ASSERT_TRUE(Ref.ok()) << Ref.Result.Error;

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  ASSERT_GT(Locs.size(), 10u);
  auto Out = rewrite(W.Image, Locs, emptyA(core::TrampolineKind::Empty));
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  EXPECT_EQ(Out->Stats.NLoc, Locs.size());
  EXPECT_EQ(Out->Stats.count(core::Tactic::Failed), 0u)
      << "A1 coverage must be 100% on small binaries";

  RunOutcome Got = runImage(Out->Rewritten);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
  // Patched runs execute strictly more instructions (2+ jumps per visit).
  EXPECT_GT(Got.Result.Cost, Ref.Result.Cost);
}

TEST_P(RewritePreserves, HeapWriteInstrumentationA2) {
  Workload W = generateWorkload(smallConfig(GetParam()));
  RunOutcome Ref = runImage(W.Image);
  ASSERT_TRUE(Ref.ok()) << Ref.Result.Error;

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectHeapWrites(D.Insns);
  ASSERT_GT(Locs.size(), 10u);
  auto Out = rewrite(W.Image, Locs, emptyA(core::TrampolineKind::Empty));
  ASSERT_TRUE(Out.isOk()) << Out.reason();

  RunOutcome Got = runImage(Out->Rewritten);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
}

TEST_P(RewritePreserves, PieBinaries) {
  Workload W = generateWorkload(smallConfig(GetParam(), /*Pie=*/true));
  RunOutcome Ref = runImage(W.Image);
  ASSERT_TRUE(Ref.ok()) << Ref.Result.Error;

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  auto Out = rewrite(W.Image, Locs, emptyA(core::TrampolineKind::Empty));
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  EXPECT_EQ(Out->Stats.succPct(), 100.0);

  RunOutcome Got = runImage(Out->Rewritten);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
}

TEST_P(RewritePreserves, GroupingOffMatchesGroupingOn) {
  Workload W = generateWorkload(smallConfig(GetParam()));
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);

  RewriteOptions On = emptyA(core::TrampolineKind::Empty);
  RewriteOptions Off = On;
  Off.Grouping.Enabled = false;
  auto ROn = rewrite(W.Image, Locs, On);
  auto ROff = rewrite(W.Image, Locs, Off);
  ASSERT_TRUE(ROn.isOk());
  ASSERT_TRUE(ROff.isOk());

  RunOutcome GOn = runImage(ROn->Rewritten);
  RunOutcome GOff = runImage(ROff->Rewritten);
  ASSERT_TRUE(GOn.ok()) << GOn.Result.Error;
  ASSERT_TRUE(GOff.ok()) << GOff.Result.Error;
  EXPECT_EQ(GOn.Rax, GOff.Rax);
  EXPECT_EQ(GOn.DataChecksum, GOff.DataChecksum);

  // Grouping strictly saves physical bytes and file size here.
  EXPECT_LE(ROn->Grouping.PhysBytes, ROff->Grouping.PhysBytes);
  EXPECT_LE(ROn->NewFileSize, ROff->NewFileSize);
  // And the loaded RAM footprint shrinks accordingly.
  EXPECT_LE(GOn.UniquePhysPages, GOff.UniquePhysPages);
  EXPECT_EQ(GOn.MappedPages, GOff.MappedPages);
}

TEST_P(RewritePreserves, B0BaselinePreservesSemanticsAtHighCost) {
  Workload W = generateWorkload(smallConfig(GetParam()));
  RunOutcome Ref = runImage(W.Image);

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  RewriteOptions O = emptyA(core::TrampolineKind::Empty);
  O.Patch.ForceB0 = true;
  auto Out = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  EXPECT_EQ(Out->Stats.count(core::Tactic::B0), Locs.size());

  RunConfig RC;
  RC.B0Table = Out->B0Table;
  RunOutcome Got = runImage(Out->Rewritten, RC);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
  // Orders of magnitude slower than the original (the point of B1..T3).
  EXPECT_GT(Got.Result.Cost, Ref.Result.Cost * 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePreserves,
                         ::testing::Values(1, 2, 3, 5, 11, 17));

// --- Tactic ablation: coverage grows monotonically ---------------------------

TEST(Ablation, CoverageMonotone) {
  Workload W = generateWorkload(smallConfig(3));
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);

  double Prev = -1.0;
  for (int Level = 0; Level != 4; ++Level) {
    RewriteOptions O = emptyA(core::TrampolineKind::Empty);
    O.Patch.EnableT1 = Level >= 1;
    O.Patch.EnableT2 = Level >= 2;
    O.Patch.EnableT3 = Level >= 3;
    auto Out = rewrite(W.Image, Locs, O);
    ASSERT_TRUE(Out.isOk());
    EXPECT_GE(Out->Stats.succPct(), Prev);
    Prev = Out->Stats.succPct();

    // Whatever was patched must not break the program.
    RunOutcome Got = runImage(Out->Rewritten);
    EXPECT_TRUE(Got.ok()) << Got.Result.Error;
  }
  EXPECT_EQ(Prev, 100.0) << "full tactic suite should reach 100% here";
}

// --- LowFat hardening (§6.3) -------------------------------------------------

TEST(LowFatHardening, CleanProgramUnaffected) {
  Workload W = generateWorkload(smallConfig(9));
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectHeapWrites(D.Insns);

  RewriteOptions O = emptyA(core::TrampolineKind::LowFatCheck);
  O.Patch.Spec.HookAddr = vm::HookLowFatCheck;
  auto Out = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();

  RunConfig RC;
  RC.UseLowFat = true;
  RunOutcome Ref = runImage(W.Image, RC);
  RunOutcome Got = runImage(Out->Rewritten, RC);
  ASSERT_TRUE(Ref.ok()) << Ref.Result.Error;
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.LowFatViolations, 0u);
  EXPECT_GT(Got.Result.Cost, Ref.Result.Cost);
}

TEST(LowFatHardening, PlantedOverflowDetectedOnlyWhenHardened) {
  WorkloadConfig C = smallConfig(10);
  C.HeapBug = true;
  Workload W = generateWorkload(C);
  ASSERT_NE(W.BugSiteAddr, 0u);

  // Unhardened with the plain heap: silent corruption, finishes.
  RunOutcome Plain = runImage(W.Image);
  ASSERT_TRUE(Plain.ok()) << Plain.Result.Error;

  // Unhardened with the LowFat heap: still no checks, still finishes.
  RunConfig LF;
  LF.UseLowFat = true;
  RunOutcome Unhardened = runImage(W.Image, LF);
  ASSERT_TRUE(Unhardened.ok()) << Unhardened.Result.Error;
  EXPECT_EQ(Unhardened.LowFatViolations, 0u);

  // Hardened: the overflow hits the next slot's redzone and aborts.
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectHeapWrites(D.Insns);
  ASSERT_NE(std::find(Locs.begin(), Locs.end(), W.BugSiteAddr), Locs.end())
      << "the planted bug site must be an A2 patch location";
  RewriteOptions O = emptyA(core::TrampolineKind::LowFatCheck);
  O.Patch.Spec.HookAddr = vm::HookLowFatCheck;
  auto Out = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();

  RunOutcome Got = runImage(Out->Rewritten, LF);
  EXPECT_EQ(Got.Result.Kind, vm::RunResult::Exit::Fault);
  EXPECT_NE(Got.Result.Error.find("redzone"), std::string::npos)
      << Got.Result.Error;

  // Count-only policy: completes and reports the violation.
  RunConfig Count = LF;
  Count.AbortOnViolation = false;
  RunOutcome Counted = runImage(Out->Rewritten, Count);
  ASSERT_TRUE(Counted.ok()) << Counted.Result.Error;
  EXPECT_GE(Counted.LowFatViolations, 1u);
}

// --- Mixing patched and unpatched code (§5.1) --------------------------------

TEST(Rewriter, FileSizeAccounting) {
  Workload W = generateWorkload(smallConfig(4));
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  auto Out = rewrite(W.Image, Locs, emptyA(core::TrampolineKind::Empty));
  ASSERT_TRUE(Out.isOk());
  EXPECT_GT(Out->NewFileSize, Out->OrigFileSize);
  EXPECT_GT(Out->sizePct(), 100.0);
  // The written file re-reads to the same mapping table.
  auto Back = elf::read(elf::write(Out->Rewritten));
  ASSERT_TRUE(Back.isOk());
  EXPECT_EQ(Back->Mappings.size(), Out->Rewritten.Mappings.size());
  EXPECT_EQ(Back->Blocks.size(), Out->Rewritten.Blocks.size());
}

TEST(Rewriter, EmptyPatchSetIsIdentityPlusNoBlocks) {
  Workload W = generateWorkload(smallConfig(5));
  auto Out = rewrite(W.Image, {}, emptyA(core::TrampolineKind::Empty));
  ASSERT_TRUE(Out.isOk());
  EXPECT_EQ(Out->Stats.NLoc, 0u);
  EXPECT_TRUE(Out->Rewritten.Blocks.empty());
  RunOutcome Ref = runImage(W.Image);
  RunOutcome Got = runImage(Out->Rewritten);
  EXPECT_EQ(Ref.Rax, Got.Rax);
  EXPECT_EQ(Ref.DataChecksum, Got.DataChecksum);
}
