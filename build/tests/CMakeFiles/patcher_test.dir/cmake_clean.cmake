file(REMOVE_RECURSE
  "CMakeFiles/patcher_test.dir/patcher_test.cpp.o"
  "CMakeFiles/patcher_test.dir/patcher_test.cpp.o.d"
  "patcher_test"
  "patcher_test.pdb"
  "patcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
