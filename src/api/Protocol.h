//===- api/Protocol.h - JSONL patch-request protocol ------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The patch-request protocol that decouples instrumentation frontends
/// from the rewriting backend (the analog of E9Patch's e9tool->e9patch
/// JSONL stream). A script is a stream of single-line flat JSON objects,
/// one message per line; a `type` field selects the schema:
///
///   {"type":"hello","version":"1.0"}              protocol handshake
///   {"type":"binary","path":"in.elf"}             begin a job
///   {"type":"template","name":"N","body":"..."}   define a template
///   {"type":"patch","template":"N",
///    "select":"jumps" | "addr":"0x...",
///    "arg":"0x..."}                               request one patch set
///   {"type":"option","name":"jobs","value":"4"}   set a rewrite option
///   {"type":"emit","path":"out.elf"}              rewrite + write output
///
/// The handshake is optional (hand-written `apply` scripts predate it)
/// but when present it must be the first message: the server answers
/// with its own hello carrying the negotiated version and a capability
/// list, and every later response echoes the negotiated major version in
/// a "v" field. A client major version the server does not speak fails
/// closed with a structured error — a half-understood stream must never
/// reach the rewriting backend.
///
/// Parsing reuses the obs/JsonWriter flat-object parser; validation is
/// table-driven (per-message required/optional fields with kinds, same
/// fail-closed style as `e9tool stats`): unknown message types, unknown
/// fields, missing required fields and wrongly-typed values are all hard
/// errors — a request that cannot be proven well-formed is never acted on.
///
//===----------------------------------------------------------------------===//

#ifndef E9_API_PROTOCOL_H
#define E9_API_PROTOCOL_H

#include "obs/JsonWriter.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace e9 {
namespace api {

/// The six request message types.
enum class MsgType { Hello, Binary, Template, Patch, Option, Emit };
const char *msgTypeName(MsgType T);

/// The protocol version this build speaks. Major bumps are breaking
/// (message semantics changed); minor bumps are additive. Negotiation
/// picks the lower minor of the two sides within an equal major.
constexpr unsigned ProtocolMajor = 1;
constexpr unsigned ProtocolMinor = 0;

/// Comma-separated capability tokens advertised in the hello response.
const char *protocolCapabilities();

/// Parses a "MAJOR.MINOR" version string ("1" means "1.0"). False on
/// anything else — a version that cannot be proven well-formed is
/// treated like an unknown major (fail closed).
bool parseProtocolVersion(std::string_view V, unsigned &Major,
                          unsigned &Minor);

/// One schema-validated request message. Field accessors assume the
/// schema already passed, so they only see fields of the declared kind.
struct Message {
  MsgType Type = MsgType::Binary;
  std::map<std::string, obs::JsonValue> Fields;

  bool has(const char *Key) const { return Fields.count(Key) != 0; }
  /// The string value of \p Key ("" when absent).
  std::string str(const char *Key) const {
    auto It = Fields.find(Key);
    return It == Fields.end() ? std::string() : It->second.Str;
  }
  /// The u64 value of \p Key (validated by the schema; nullopt if absent).
  std::optional<uint64_t> u64(const char *Key) const {
    auto It = Fields.find(Key);
    if (It == Fields.end())
      return std::nullopt;
    return obs::jsonToU64(It->second);
  }
};

/// Parses and schema-validates one request line. Fail closed: any
/// malformed JSON, unknown type/field, missing required field or
/// wrongly-typed value is an error naming the violation.
Result<Message> parseMessage(std::string_view Line);

} // namespace api
} // namespace e9

#endif // E9_API_PROTOCOL_H
