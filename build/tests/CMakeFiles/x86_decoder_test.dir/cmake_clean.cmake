file(REMOVE_RECURSE
  "CMakeFiles/x86_decoder_test.dir/x86_decoder_test.cpp.o"
  "CMakeFiles/x86_decoder_test.dir/x86_decoder_test.cpp.o.d"
  "x86_decoder_test"
  "x86_decoder_test.pdb"
  "x86_decoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
