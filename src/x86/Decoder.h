//===- x86/Decoder.h - x86_64 length decoder ------------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A table-driven x86_64 instruction decoder. E9Patch itself only needs
/// instruction *locations and sizes* (supplied by a frontend), but the
/// frontend, the VM interpreter and the displaced-instruction relocator all
/// need exact field layout, so the decoder records prefix/opcode/ModRM/SIB/
/// displacement/immediate positions precisely.
///
/// Coverage: the full one-byte map, the 0F two-byte map, the 0F38/0F3A
/// three-byte maps and 2/3-byte VEX prefixes — sufficient for linear
/// disassembly of compiler-generated code and for every encoding the
/// rewriter itself can produce (including padded/punned jumps).
///
//===----------------------------------------------------------------------===//

#ifndef E9_X86_DECODER_H
#define E9_X86_DECODER_H

#include "x86/Insn.h"

#include <cstddef>
#include <cstdint>

namespace e9 {
namespace x86 {

/// Outcome of a decode attempt.
enum class DecodeStatus {
  Ok,        ///< Decoded successfully.
  Invalid,   ///< Byte sequence is not a valid instruction.
  Truncated, ///< Ran out of bytes before the instruction ended.
};

/// Decodes one instruction from \p Bytes (at most \p MaxLen bytes
/// available) assumed to live at virtual address \p Address.
/// On success fills \p Out completely.
DecodeStatus decode(const uint8_t *Bytes, size_t MaxLen, uint64_t Address,
                    Insn &Out);

/// Convenience wrapper: returns the instruction length, or 0 on failure.
unsigned decodeLength(const uint8_t *Bytes, size_t MaxLen);

} // namespace x86
} // namespace e9

#endif // E9_X86_DECODER_H
