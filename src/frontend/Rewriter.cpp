//===- frontend/Rewriter.cpp ----------------------------------*- C++ -*-===//

#include "frontend/Rewriter.h"

#include "frontend/Disasm.h"
#include "frontend/Shard.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Timing.h"

#include <algorithm>

using namespace e9;
using namespace e9::frontend;

namespace {

/// Simulated silent-corruption faults, enabled only under fault injection.
/// Each one damages the output the way a patcher/grouping bug would; the
/// verifier (and only the verifier) must catch them — this is how the
/// fault-injection tests prove StrictMode fails closed rather than
/// emitting a wrong binary.
void injectOutputCorruption(RewriteOutput &Out) {
  if (!FaultInjectionArmed)
    return;
  if (E9_FAULT_POINT("core.patch.corrupt-site") && !Out.Jumps.empty()) {
    const core::JumpRecord &J = Out.Jumps.front();
    uint8_t B = 0;
    if (Out.Rewritten.readBytes(J.Addr, &B, 1)) {
      B ^= 0x20;
      (void)Out.Rewritten.writeBytes(J.Addr, &B, 1);
    }
  }
  if (E9_FAULT_POINT("core.group.corrupt-block")) {
    for (elf::PhysBlock &B : Out.Rewritten.Blocks) {
      auto It = std::find_if(B.Bytes.begin(), B.Bytes.end(),
                             [](uint8_t V) { return V != 0; });
      if (It != B.Bytes.end()) {
        *It ^= 0xff;
        break;
      }
    }
  }
  if (E9_FAULT_POINT("core.group.corrupt-mapping") &&
      !Out.Rewritten.Mappings.empty())
    Out.Rewritten.Mappings.front().VAddr += 0x1000;
}

} // namespace

Result<RewriteOutput> frontend::rewrite(const elf::Image &In,
                                        const std::vector<uint64_t> &PatchLocs,
                                        const RewriteOptions &Opts) {
  if (!In.textSegment())
    return Result<RewriteOutput>::error("input image has no code segment");

  Stopwatch Total;
  Stopwatch Phase;
  RewriteOutput Out;
  Out.OrigFileSize = elf::writtenSize(In);
  Out.Rewritten = In;
  Out.Rewritten.Blocks.clear();
  Out.Rewritten.Mappings.clear();

  DisasmResult Dis = linearDisassemble(Out.Rewritten);
  if (E9_FAULT_POINT("frontend.disasm.decode"))
    return Result<RewriteOutput>::error(
        "injected fault: frontend.disasm.decode (disassembly failed)");
  Out.Timings.DisasmMs = Phase.lapMs();

  ShardedPatchOutput P = patchSharded(
      In, Out.Rewritten, std::move(Dis.Insns), PatchLocs, Opts.Patch,
      Opts.SpecFor, Opts.ExtraReserved, Opts.Sharding, Opts.Jobs);
  Phase.lapMs();
  Out.Timings.PatchMs = P.PatchMs;
  Out.Timings.MergeMs = P.MergeMs;
  Out.ShardCount = P.ShardCount;
  Out.ShardsRedone = P.ShardsRedone;
  Out.JobsUsed = P.JobsUsed;

  Out.Stats = P.Stats;
  Out.B0Table = P.B0Table;
  Out.Rewritten.B0Sites = P.B0Table; // self-contained rewritten binary
  Out.Sites = std::move(P.Sites);
  Out.Chunks = std::move(P.Chunks);
  Out.Jumps = std::move(P.Jumps);
  Out.ModifiedRanges = std::move(P.ModifiedRanges);

  // Error budget: refuse to hand back a binary with more unpatched sites
  // than the caller tolerates. The message names the first few failures
  // with their reasons so the caller can see *why*, not just "failed".
  size_t NFailed = Out.Stats.count(core::Tactic::Failed);
  if (NFailed > Opts.MaxFailedSites) {
    std::string Msg =
        format("rewrite exceeded the failed-site budget: %zu sites failed "
               "(budget %zu)",
               NFailed, Opts.MaxFailedSites);
    size_t Listed = 0;
    for (const core::PatchSiteResult &S : Out.Sites) {
      if (S.Used != core::Tactic::Failed)
        continue;
      if (Listed == 8) {
        Msg += format("; ... and %zu more", NFailed - Listed);
        break;
      }
      Msg += format("%s %s (%s)", Listed ? "," : ":", hex(S.Addr).c_str(),
                    core::failureReasonName(S.Reason));
      ++Listed;
    }
    return Result<RewriteOutput>::error(Msg);
  }

  Phase.lapMs();
  auto Grouped = core::groupPages(Out.Chunks, Opts.Grouping);
  if (!Grouped)
    return Result<RewriteOutput>::error(
        format("grouping failed: %s", Grouped.reason().c_str()));
  Out.Grouping = Grouped.take();
  Out.Rewritten.Blocks = std::move(Out.Grouping.Blocks);
  Out.Rewritten.Mappings = Out.Grouping.Mappings;
  Out.Timings.GroupMs = Phase.lapMs();

  injectOutputCorruption(Out);

  Out.NewFileSize = elf::writtenSize(Out.Rewritten);
  Out.Timings.WriteMs = Phase.lapMs();

  if (Opts.Strict || Opts.Verify) {
    verify::VerifyInput VIn;
    VIn.Original = &In;
    VIn.Rewritten = &Out.Rewritten;
    VIn.Sites = &Out.Sites;
    VIn.Jumps = &Out.Jumps;
    VIn.Chunks = &Out.Chunks;
    VIn.ModifiedRanges = &Out.ModifiedRanges;
    Out.Verify = verify::verifyRewrite(VIn, Opts.VerifyOpts);
    Out.Timings.VerifyMs = Phase.lapMs();
    if (Opts.Strict && !Out.Verify.ok())
      return Result<RewriteOutput>::error(Out.Verify.summary());
  }
  Out.Timings.TotalMs = Total.elapsedMs();
  return Out;
}
