file(REMOVE_RECURSE
  "CMakeFiles/e9_bench_common.dir/Common.cpp.o"
  "CMakeFiles/e9_bench_common.dir/Common.cpp.o.d"
  "libe9_bench_common.a"
  "libe9_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
