//===- obs/Metrics.cpp ----------------------------------------*- C++ -*-===//

#include "obs/Metrics.h"

#include "obs/JsonWriter.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace e9;
using namespace e9::obs;

void Histogram::observe(uint64_t V) {
  Buckets[std::bit_width(V)].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Total.fetch_add(V, std::memory_order_relaxed);
  uint64_t Cur = Lo.load(std::memory_order_relaxed);
  while (V < Cur &&
         !Lo.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
  Cur = Hi.load(std::memory_order_relaxed);
  while (V > Cur &&
         !Hi.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}

double HistogramStats::quantile(double Q) const {
  if (Count == 0)
    return 0.0;
  if (Q <= 0.0)
    return static_cast<double>(Min);
  if (Q >= 1.0)
    return static_cast<double>(Max);
  // 0-based rank of the target observation in the sorted value sequence.
  double Rank = Q * static_cast<double>(Count - 1);
  uint64_t Seen = 0;
  for (size_t I = 0; I != Buckets.size(); ++I) {
    uint64_t B = Buckets[I];
    if (B == 0)
      continue;
    if (Rank < static_cast<double>(Seen + B)) {
      // Bucket 0 holds exactly {0}; bucket i holds [2^(i-1), 2^i).
      double LoV = I == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(I) - 1);
      double HiV = I == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(I));
      double Frac =
          B == 1 ? 0.5 : (Rank - static_cast<double>(Seen)) /
                             static_cast<double>(B - 1);
      double V = LoV + Frac * (HiV - LoV);
      return std::min(std::max(V, static_cast<double>(Min)),
                      static_cast<double>(Max));
    }
    Seen += B;
  }
  return static_cast<double>(Max);
}

uint64_t MetricsSnapshot::counter(std::string_view Name) const {
  auto It = Counters.find(std::string(Name));
  return It == Counters.end() ? 0 : It->second;
}

std::string MetricsSnapshot::toJson() const {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\":" + std::to_string(V);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\":";
    JsonWriter W;
    W.field("count", H.Count)
        .field("sum", H.Sum)
        .field("min", H.Min)
        .field("max", H.Max);
    W.fixed("p50", H.p50(), 2).fixed("p95", H.p95(), 2).fixed("p99", H.p99(),
                                                              2);
    std::string Buckets = "[";
    for (size_t I = 0; I != H.Buckets.size(); ++I) {
      if (I)
        Buckets += ",";
      Buckets += std::to_string(H.Buckets[I]);
    }
    Buckets += "]";
    W.raw("buckets", Buckets);
    Out += W.take();
  }
  Out += "}}";
  return Out;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.try_emplace(std::string(Name)).first;
  return It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.try_emplace(std::string(Name)).first;
  return It->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> G(Mu);
  MetricsSnapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters.emplace(Name, C.value());
  for (const auto &[Name, H] : Histograms) {
    HistogramStats St;
    St.Count = H.count();
    St.Sum = H.sum();
    St.Min = St.Count == 0 ? 0 : H.min();
    St.Max = H.max();
    size_t Last = 0;
    for (size_t I = 0; I != Histogram::NumBuckets; ++I)
      if (H.bucket(I) != 0)
        Last = I + 1;
    St.Buckets.reserve(Last);
    for (size_t I = 0; I != Last; ++I)
      St.Buckets.push_back(H.bucket(I));
    S.Histograms.emplace(Name, std::move(St));
  }
  return S;
}
