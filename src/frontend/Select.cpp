//===- frontend/Select.cpp ------------------------------------*- C++ -*-===//

#include "frontend/Select.h"

using namespace e9;
using namespace e9::frontend;
using namespace e9::x86;

bool frontend::isJumpSite(const Insn &I) {
  return I.isJmpRel8() || I.isJmpRel32() || I.isJccRel8() || I.isJccRel32();
}

bool frontend::isHeapWriteSite(const Insn &I) {
  if (!I.writesMemOperand())
    return false;
  if (I.isRipRelative())
    return false;
  Reg Base = I.memBase();
  if (Base == Reg::RSP || Base == Reg::RIP)
    return false;
  if (I.SegPrefix == 0x64 || I.SegPrefix == 0x65)
    return false;
  return true;
}

std::vector<uint64_t>
frontend::selectJumps(const std::vector<Insn> &Insns) {
  std::vector<uint64_t> Locs;
  for (const Insn &I : Insns)
    if (isJumpSite(I))
      Locs.push_back(I.Address);
  return Locs;
}

std::vector<uint64_t>
frontend::selectHeapWrites(const std::vector<Insn> &Insns) {
  std::vector<uint64_t> Locs;
  for (const Insn &I : Insns)
    if (isHeapWriteSite(I))
      Locs.push_back(I.Address);
  return Locs;
}

std::vector<uint64_t> frontend::selectAll(const std::vector<Insn> &Insns) {
  std::vector<uint64_t> Locs;
  Locs.reserve(Insns.size());
  for (const Insn &I : Insns)
    Locs.push_back(I.Address);
  return Locs;
}
