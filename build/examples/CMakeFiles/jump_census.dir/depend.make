# Empty dependencies file for jump_census.
# This may be replaced when dependencies are built.
