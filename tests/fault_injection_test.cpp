//===- tests/fault_injection_test.cpp - fault-injection harness -*- C++ -*-===//
//
// Drives the full pipeline (read -> rewrite (strict) -> write -> read ->
// load -> run) with each registered fault site armed in turn, and asserts
// that every injected fault surfaces as a clean Status error — no crash,
// no assert, and never a silently-wrong output binary. The corruption
// sites prove the last part: they damage the output the way a bug would,
// and only the strict-mode verifier stands between them and a bad binary.
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "vm/Loader.h"
#include "workload/Gen.h"
#include "workload/Run.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <unistd.h>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

namespace {

/// RAII disarm so one failing test cannot poison the next.
struct Disarmed {
  ~Disarmed() { FaultInjector::instance().disarm(); }
};

elf::Image testImage() {
  WorkloadConfig C;
  C.Name = "ftest";
  C.Seed = 3;
  C.NumFuncs = 8;
  C.MainIters = 3;
  return generateWorkload(C).Image;
}

/// The full pipeline under test. Every stage that can fail reports a
/// Status; the first failure wins. A fault injected anywhere must come
/// back through this single seam.
Status runPipeline(const elf::Image &Input) {
  // Stage 1: serialize + re-read (hits elf.read.*).
  auto Img = elf::read(elf::write(Input));
  if (!Img.isOk())
    return Status::error(Img.reason());

  // Stage 2: strict rewrite with a zero failed-site budget (hits
  // frontend.disasm.decode, core.alloc.allocate, core.group.merge, and
  // the corrupt-* sites, which only the verifier can catch).
  DisasmResult D = linearDisassemble(*Img);
  auto Locs = selectJumps(D.Insns);
  RewriteOptions O;
  O.Patch.Spec.Kind = core::TrampolineKind::Empty;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  O.Verify.Strict = true;
  O.Verify.MaxFailedSites = 0;
  auto Out = rewrite(*Img, Locs, O);
  if (!Out.isOk())
    return Status::error(Out.reason());

  // Stage 3: write the result to disk (hits elf.write.file).
  std::string Path =
      format("%s/e9_fault_test_%d.elf", ::testing::TempDir().c_str(),
             static_cast<int>(::getpid()));
  if (Status S = elf::writeFile(Out->Rewritten, Path); !S)
    return S;
  auto Back = elf::readFile(Path);
  std::remove(Path.c_str());
  if (!Back.isOk())
    return Status::error(Back.reason());

  // Stage 4: load + run (hits vm.load.mapping).
  RunOutcome R = runImage(*Back);
  if (!R.ok())
    return Status::error(R.Result.Error);
  return Status::ok();
}

} // namespace

TEST(FaultInjection, DisarmedPipelineIsClean) {
  Disarmed D;
  FaultInjector::instance().disarm();
  Status S = runPipeline(testImage());
  EXPECT_TRUE(S.isOk()) << S.reason();
  EXPECT_FALSE(FaultInjectionArmed);
}

/// Arm every registered site in turn; the pipeline must fail cleanly and
/// the injector must confirm the site actually fired (a site that never
/// fires is dead registry weight or an unreached hook — both bugs).
class FaultSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(FaultSweep, EverySiteFailsCleanly) {
  Disarmed D;
  const std::string &Site = FaultInjector::sites()[GetParam()];
  elf::Image Input = testImage();

  FaultInjector::instance().arm(Site);
  Status S = runPipeline(Input);
  EXPECT_FALSE(S.isOk()) << "pipeline succeeded with " << Site << " armed";
  EXPECT_TRUE(FaultInjector::instance().fired())
      << Site << " was armed but the pipeline never consulted it";

  // Sticky semantics: a retry with the site still armed fails again.
  Status Retry = runPipeline(Input);
  EXPECT_FALSE(Retry.isOk());

  // And disarming fully restores the pipeline.
  FaultInjector::instance().disarm();
  Status Clean = runPipeline(Input);
  EXPECT_TRUE(Clean.isOk()) << Clean.reason();
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, FaultSweep,
    ::testing::Range<size_t>(0, FaultInjector::sites().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = FaultInjector::sites()[Info.param];
      for (char &C : Name)
        if (C == '.' || C == '-')
          C = '_';
      return Name;
    });

TEST(FaultInjection, CorruptionSitesAreCaughtOnlyByTheVerifier) {
  // The three corruption sites damage the output rather than failing a
  // stage: without strict mode the pipeline would hand back a wrong
  // binary. Prove the verifier is the safety net by checking the error
  // text comes from it.
  Disarmed D;
  elf::Image Input = testImage();
  DisasmResult Dis = linearDisassemble(Input);
  auto Locs = selectJumps(Dis.Insns);
  RewriteOptions O;
  O.Patch.Spec.Kind = core::TrampolineKind::Empty;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  O.Verify.Strict = true;

  for (const char *Site : {"core.patch.corrupt-site",
                           "core.group.corrupt-block",
                           "core.group.corrupt-mapping"}) {
    FaultInjector::instance().arm(Site);
    auto Out = rewrite(Input, Locs, O);
    ASSERT_FALSE(Out.isOk())
        << Site << ": strict rewrite accepted a corrupted output";
    EXPECT_NE(Out.reason().find("verification FAILED"), std::string::npos)
        << Site << ": expected a verifier report, got: " << Out.reason();
    FaultInjector::instance().disarm();

    // The same corruption without strict mode slips through the rewrite —
    // the verifier is genuinely the only line of defence.
    FaultInjector::instance().arm(Site);
    RewriteOptions Lax = O;
    Lax.Verify.Strict = false;
    auto LaxOut = rewrite(Input, Locs, Lax);
    EXPECT_TRUE(LaxOut.isOk()) << LaxOut.reason();
    FaultInjector::instance().disarm();
  }
}

TEST(FaultInjection, SkipHitsDelaysTheFault) {
  Disarmed D;
  elf::Image Input = testImage();
  // core.alloc.allocate is hit once per trampoline allocation; skipping
  // the first 10'000 hits means this pipeline never reaches the fault.
  FaultInjector::instance().arm("core.alloc.allocate", 10'000);
  Status S = runPipeline(Input);
  EXPECT_TRUE(S.isOk()) << S.reason();
  EXPECT_FALSE(FaultInjector::instance().fired());
  EXPECT_GT(FaultInjector::instance().hitCount(), 0u);

  // Skipping a handful still fails (later allocations hit the fault).
  FaultInjector::instance().arm("core.alloc.allocate", 3);
  Status S2 = runPipeline(Input);
  EXPECT_FALSE(S2.isOk());
  EXPECT_TRUE(FaultInjector::instance().fired());
}

TEST(FaultInjection, AllocExhaustionDegradesToB0WhenEnabled) {
  // Graceful degradation: with the B0 fallback enabled, total allocation
  // failure still yields 100% coverage (every site degraded to int3) and
  // a behaviourally identical binary.
  Disarmed D;
  elf::Image Input = testImage();
  RunOutcome Ref = runImage(Input);
  ASSERT_TRUE(Ref.ok());

  DisasmResult Dis = linearDisassemble(Input);
  auto Locs = selectJumps(Dis.Insns);
  RewriteOptions O;
  O.Patch.Spec.Kind = core::TrampolineKind::Empty;
  O.Patch.B0Fallback = true;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  O.Verify.MaxFailedSites = 0;

  FaultInjector::instance().arm("core.alloc.allocate");
  auto Out = rewrite(Input, Locs, O);
  FaultInjector::instance().disarm();
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  EXPECT_EQ(Out->Stats.count(core::Tactic::B0), Locs.size());
  EXPECT_EQ(Out->Stats.count(core::Tactic::Failed), 0u);
  // Every degraded site records why the jump tactics could not work.
  EXPECT_EQ(Out->Stats.reasonCount(core::FailureReason::AllocFailed), 0u)
      << "B0 sites are not failures and must not be counted as such";

  RunConfig RC;
  RC.B0Table = Out->B0Table;
  RunOutcome Got = runImage(Out->Rewritten, RC);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
}

TEST(FaultInjection, ChaosModeIsDeterministicAndCrashFree) {
  // Seeded random faults across all sites: any outcome is acceptable as
  // long as it is a clean Status and the same seed replays it exactly.
  Disarmed D;
  elf::Image Input = testImage();
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    FaultInjector::instance().armRandom(Seed, 30);
    Status A = runPipeline(Input);
    uint64_t FiredA = FaultInjector::instance().fireCount();

    FaultInjector::instance().armRandom(Seed, 30);
    Status B = runPipeline(Input);
    uint64_t FiredB = FaultInjector::instance().fireCount();

    EXPECT_EQ(A.isOk(), B.isOk()) << "seed " << Seed;
    if (!A.isOk()) {
      EXPECT_EQ(A.reason(), B.reason()) << "seed " << Seed;
    }
    EXPECT_EQ(FiredA, FiredB) << "seed " << Seed;
    FaultInjector::instance().disarm();
  }
}

TEST(FaultInjection, HundredPercentChaosAlwaysFails) {
  Disarmed D;
  FaultInjector::instance().armRandom(42, 100);
  Status S = runPipeline(testImage());
  EXPECT_FALSE(S.isOk());
  EXPECT_TRUE(FaultInjector::instance().fired());
}
