//===- obs/JsonWriter.h - Minimal JSON emit + flat-object parse -*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic single-line JSON rendering for the trace/metrics layer,
/// plus the inverse: a parser for *flat* JSON objects (scalar fields only),
/// which is all the JSONL trace schema allows. Field order is the emission
/// order, numbers render without locale influence, and doubles use a fixed
/// "%.2f"/"%.3f" format — two runs that emit the same values produce the
/// same bytes, which is what the trace determinism guarantee rests on.
///
//===----------------------------------------------------------------------===//

#ifndef E9_OBS_JSONWRITER_H
#define E9_OBS_JSONWRITER_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace e9 {
namespace obs {

/// Escapes \p S for inclusion inside a JSON string literal (quotes,
/// backslash, control characters).
std::string jsonEscape(std::string_view S);

/// Builds one flat JSON object as a single line. Keys must be emitted in
/// the order the schema defines; the writer never reorders.
class JsonWriter {
public:
  JsonWriter() : Out("{") {}

  JsonWriter &field(const char *Key, std::string_view V);
  JsonWriter &field(const char *Key, const char *V) {
    return field(Key, std::string_view(V));
  }
  JsonWriter &field(const char *Key, uint64_t V);
  JsonWriter &field(const char *Key, int64_t V);
  JsonWriter &field(const char *Key, int V) {
    return field(Key, static_cast<int64_t>(V));
  }
  JsonWriter &field(const char *Key, unsigned V) {
    return field(Key, static_cast<uint64_t>(V));
  }
  JsonWriter &field(const char *Key, bool V);
  /// Fixed-precision double ("%.*f"); used for milliseconds/percentages.
  JsonWriter &fixed(const char *Key, double V, int Precision = 2);
  /// Address field rendered as a "0x..." hex string.
  JsonWriter &hex(const char *Key, uint64_t Addr);
  /// Pre-rendered JSON (nested object/array) — caller guarantees validity.
  JsonWriter &raw(const char *Key, std::string_view Json);

  /// Closes the object and returns the line (writer is spent afterwards).
  std::string take() {
    Out.push_back('}');
    return std::move(Out);
  }

private:
  void key(const char *K);
  std::string Out;
};

/// One scalar value out of a parsed flat object.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;

  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  uint64_t asU64() const { return static_cast<uint64_t>(Num); }
};

/// Parses one JSONL line that must be a flat object of scalar fields (the
/// trace schema). Nested objects/arrays are rejected — a schema violation,
/// not a supported input. Returns nullopt on any malformed input.
std::optional<std::map<std::string, JsonValue>>
parseFlatObject(std::string_view Line);

/// Reads \p V as an unsigned 64-bit integer: either a non-negative
/// integral JSON number (exact below 2^53, the double mantissa) or a
/// "0x..." hex string (full 64-bit range — the form address fields use).
/// Returns nullopt for anything else; callers treat that as a schema
/// violation, fail-closed.
std::optional<uint64_t> jsonToU64(const JsonValue &V);

} // namespace obs
} // namespace e9

#endif // E9_OBS_JSONWRITER_H
