//===- tests/patcher_test.cpp - tactic engine unit tests -------*- C++ -*-===//
//
// Crafted-byte scenarios for the tactics, including the paper's Figure 1
// instruction sequence, plus direct VM execution of the resulting
// "spaghetti" to verify jump-target preservation.
//
//===----------------------------------------------------------------------===//

#include "core/Patcher.h"

#include "frontend/Disasm.h"
#include "frontend/Runtime.h"
#include "vm/Loader.h"
#include "vm/Vm.h"
#include "x86/Decoder.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::core;
using namespace e9::x86;

namespace {

constexpr uint64_t NonPieBase = 0x401000;
constexpr uint64_t PieBase = 0x555555555000ULL;

elf::Image makeImage(std::vector<uint8_t> Code, uint64_t Base,
                     bool Pie = false) {
  elf::Image Img;
  Img.Entry = Base;
  Img.Pie = Pie;
  elf::Segment Text;
  Text.VAddr = Base;
  Text.Bytes = std::move(Code);
  Text.MemSize = Text.Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Text.Name = "text";
  Img.Segments.push_back(std::move(Text));
  elf::Segment Data;
  Data.VAddr = Base + 0x100000;
  Data.Bytes.assign(0x1000, 0);
  Data.MemSize = 0x1000;
  Data.Flags = elf::PF_R | elf::PF_W;
  Data.Name = "data";
  Img.Segments.push_back(std::move(Data));
  return Img;
}

/// Runs the patch engine over one location with the Empty spec.
struct PatchRun {
  elf::Image Img;
  std::unique_ptr<Patcher> P;
  Tactic Used;

  PatchRun(std::vector<uint8_t> Code, uint64_t Base, uint64_t PatchOff,
           PatchOptions Opts = PatchOptions(), bool Pie = false)
      : Img(makeImage(std::move(Code), Base, Pie)) {
    auto Dis = frontend::linearDisassemble(Img);
    P = std::make_unique<Patcher>(Img, Dis.Insns, Opts);
    P->patchAll({Base + PatchOff});
    Used = P->stats().NLoc ? P->results()[0].Used : Tactic::Failed;
  }

  std::vector<uint8_t> textBytes() const {
    return Img.textSegment()->Bytes;
  }
};

// The paper's Figure 1 byte stream:
//   mov %rax,(%rbx); add $32,%rax; xor %rax,%rcx; cmpl $77,-4(%rbx)
std::vector<uint8_t> figure1() {
  return {0x48, 0x89, 0x03, 0x48, 0x83, 0xc0, 0x20,
          0x48, 0x31, 0xc1, 0x83, 0x7b, 0xfc, 0x4d, 0xc3};
}

// A pun-hostile stream (every direct fixed byte has the sign bit set):
//   mov %rax,(%rbx); xchg rcx,rax x3; cmpl $77,-4(%rbx);
//   add (%rax),%dh x2; ret
std::vector<uint8_t> hostileStream() {
  return {0x48, 0x89, 0x03, 0x91, 0x91, 0x91, 0x83, 0x7b,
          0xfc, 0x4d, 0x00, 0x30, 0x00, 0x30, 0xc3};
}

} // namespace

TEST(Patcher, LongInstructionUsesB1) {
  // mov rcx, imm32 is 7 bytes: plain jump, full rel32 freedom.
  std::vector<uint8_t> Code = {0x48, 0xc7, 0xc1, 0x11, 0x22,
                               0x33, 0x00, 0x90, 0xc3};
  PatchRun R(Code, NonPieBase, 0);
  EXPECT_EQ(R.Used, Tactic::B1);
  EXPECT_EQ(R.P->stats().succPct(), 100.0);
  // The patched bytes start with e9 and only the first 5 bytes changed.
  auto T = R.textBytes();
  EXPECT_EQ(T[0], 0xe9);
  EXPECT_EQ(T[5], 0x33); // bytes past the jump are untouched
  EXPECT_EQ(T[6], 0x00);
}

TEST(Patcher, Figure1PieUsesB2) {
  // At a PIE address the 0x8348XXXX window is valid: plain punning works.
  PatchRun R(figure1(), PieBase, 0, PatchOptions(), /*Pie=*/true);
  EXPECT_EQ(R.Used, Tactic::B2);
  auto T = R.textBytes();
  EXPECT_EQ(T[0], 0xe9);
  // Pun bytes: the successor's first two bytes are *unchanged*.
  EXPECT_EQ(T[3], 0x48);
  EXPECT_EQ(T[4], 0x83);
  // Decode the punned jump and verify it targets the trampoline.
  Insn J;
  ASSERT_EQ(decode(T.data(), T.size(), PieBase, J), DecodeStatus::Ok);
  EXPECT_TRUE(J.isJmpRel32());
  EXPECT_EQ(J.branchTarget(), R.P->results()[0].TrampolineAddr);
}

TEST(Patcher, Figure1NonPieUsesT1) {
  // At the low base the B2/T1(a) windows are negative; the two-pad T1(b)
  // encoding (exact target rel32 = 0x20c08348) is the first valid one.
  PatchRun R(figure1(), NonPieBase, 0);
  EXPECT_EQ(R.Used, Tactic::T1);
  auto T = R.textBytes();
  // Pads then e9, then the fully-punned rel32 = 48 83 c0 20 (unchanged).
  EXPECT_EQ(T[2], 0xe9);
  EXPECT_EQ(T[3], 0x48);
  EXPECT_EQ(T[4], 0x83);
  EXPECT_EQ(T[5], 0xc0);
  EXPECT_EQ(T[6], 0x20);
  EXPECT_EQ(R.P->results()[0].TrampolineAddr,
            NonPieBase + 2 + 5 + 0x20c08348u);
}

// A stream where the direct tactics fail but evicting the successor
// yields pun-friendly bytes (the eviction jump's free low rel32 byte is
// small/positive, exactly the paper's T2(b) "pun against e9" case):
//   mov %rax,(%rbx); mov %ebx,%eax; nop; nop; add (%rax),%dh; ret
std::vector<uint8_t> t2Stream() {
  return {0x48, 0x89, 0x03, 0x89, 0xd8, 0x90, 0x90, 0x00, 0x30, 0xc3};
}

TEST(Patcher, T2StreamUsesT2) {
  PatchRun R(t2Stream(), NonPieBase, 0);
  EXPECT_EQ(R.Used, Tactic::T2);
  EXPECT_EQ(R.P->stats().Evictions, 1u);
  // The successor mov (at offset 3) was evicted: now a jump opcode, and
  // the patch jump at offset 0 puns against it.
  EXPECT_EQ(R.textBytes()[0], 0xe9);
  EXPECT_EQ(R.textBytes()[3], 0xe9);
}

TEST(Patcher, HostileStreamEscalatesPastT2) {
  // Here even successor eviction leaves sign-hostile pun bytes, so the
  // engine escalates to T3.
  PatchRun R(hostileStream(), NonPieBase, 0);
  EXPECT_EQ(R.Used, Tactic::T3);
  EXPECT_GE(R.P->stats().Evictions, 1u);
}

TEST(Patcher, HostileStreamUsesT3WhenT2Disabled) {
  PatchOptions Opts;
  Opts.EnableT2 = false;
  PatchRun R(hostileStream(), NonPieBase, 0, Opts);
  EXPECT_EQ(R.Used, Tactic::T3);
  auto T = R.textBytes();
  // JShort at the patch location.
  EXPECT_EQ(T[0], 0xeb);
  // The victim (cmpl at offset 6) became JVictim (e9 ...).
  EXPECT_EQ(T[6], 0xe9);
}

TEST(Patcher, HostileStreamFailsWithoutEvictions) {
  PatchOptions Opts;
  Opts.EnableT2 = false;
  Opts.EnableT3 = false;
  PatchRun R(hostileStream(), NonPieBase, 0, Opts);
  EXPECT_EQ(R.Used, Tactic::Failed);
  // The instruction is untouched on failure.
  EXPECT_EQ(R.textBytes()[0], 0x48);
}

TEST(Patcher, B0FallbackPatchesAnything) {
  PatchOptions Opts;
  Opts.EnableT2 = false;
  Opts.EnableT3 = false;
  Opts.B0Fallback = true;
  PatchRun R(hostileStream(), NonPieBase, 0, Opts);
  EXPECT_EQ(R.Used, Tactic::B0);
  EXPECT_EQ(R.textBytes()[0], 0xcc);
  ASSERT_EQ(R.P->b0Table().count(NonPieBase), 1u);
  EXPECT_EQ(R.P->b0Table().at(NonPieBase)[0], 0x48);
}

TEST(Patcher, ForceB0SkipsJumpTactics) {
  PatchOptions Opts;
  Opts.ForceB0 = true;
  PatchRun R(figure1(), PieBase, 0, Opts, true);
  EXPECT_EQ(R.Used, Tactic::B0);
  EXPECT_TRUE(R.P->chunks().empty());
}

// --- Semantics of the patched spaghetti, executed in the VM -----------------

namespace {

/// Loads \p Img plus the trampoline chunks (as raw pages) and prepares
/// registers so the crafted streams can run.
vm::Vm prepareVm(const elf::Image &Img, const Patcher &P) {
  vm::Vm V;
  auto L = vm::load(V, Img);
  EXPECT_TRUE(L.isOk()) << L.reason();
  for (const TrampolineChunk &C : P.chunks()) {
    uint64_t Page = C.Addr & ~vm::PageMask;
    uint64_t End = C.Addr + C.Bytes.size();
    for (; Page < End; Page += vm::PageSize) {
      if (!V.Mem.isMapped(Page)) {
        EXPECT_TRUE(V.Mem.mapZero(Page, vm::PageSize,
                                  vm::PermR | vm::PermW | vm::PermX));
      }
    }
    EXPECT_TRUE(V.Mem.write(C.Addr, C.Bytes.data(), C.Bytes.size()));
  }
  // Registers used by the crafted streams.
  V.Core.Gpr[3] = Img.Segments[1].VAddr + 0x100; // rbx -> data
  V.Core.Gpr[0] = Img.Segments[1].VAddr + 0x200; // rax -> data
  V.Core.Gpr[1] = Img.Segments[1].VAddr + 0x200; // rcx (xchg partner)
  V.Core.Gpr[2] = 0x1122;                        // rdx
  return V;
}

struct FinalState {
  uint64_t Rax, Rcx, Rdx;
  uint64_t Mem0, Mem200;
  bool Zf, Cf, Sf;
};

FinalState snapshot(vm::Vm &V, const elf::Image &Img) {
  FinalState S{};
  S.Rax = V.Core.Gpr[0];
  S.Rcx = V.Core.Gpr[1];
  S.Rdx = V.Core.Gpr[2];
  EXPECT_TRUE(V.Mem.read64(Img.Segments[1].VAddr + 0x100, S.Mem0));
  EXPECT_TRUE(V.Mem.read64(Img.Segments[1].VAddr + 0x200, S.Mem200));
  S.Zf = V.Core.ZF;
  S.Cf = V.Core.CF;
  S.Sf = V.Core.SF;
  return S;
}

bool operator==(const FinalState &A, const FinalState &B) {
  return A.Rax == B.Rax && A.Rcx == B.Rcx && A.Rdx == B.Rdx &&
         A.Mem0 == B.Mem0 && A.Mem200 == B.Mem200 && A.Zf == B.Zf &&
         A.Cf == B.Cf && A.Sf == B.Sf;
}

} // namespace

class PatchedExecution : public ::testing::TestWithParam<int> {};

TEST_P(PatchedExecution, HostileStreamSemanticsPreserved) {
  PatchOptions Opts;
  switch (GetParam()) {
  case 0: // T2 path
    break;
  case 1: // T3 path
    Opts.EnableT2 = false;
    break;
  default: // B0 path
    Opts.ForceB0 = true;
    break;
  }

  // Reference: run the original.
  elf::Image Orig = makeImage(hostileStream(), NonPieBase);
  vm::Vm VO;
  {
    auto L = vm::load(VO, Orig);
    ASSERT_TRUE(L.isOk());
    VO.Core.Gpr[3] = Orig.Segments[1].VAddr + 0x100;
    VO.Core.Gpr[0] = Orig.Segments[1].VAddr + 0x200;
    VO.Core.Gpr[1] = Orig.Segments[1].VAddr + 0x200;
    VO.Core.Gpr[2] = 0x1122;
    auto R = VO.run(1000);
    ASSERT_EQ(R.Kind, vm::RunResult::Exit::Finished) << R.Error;
  }
  FinalState Ref = snapshot(VO, Orig);

  // Patched: same stream, patch the first instruction.
  PatchRun PR(hostileStream(), NonPieBase, 0, Opts);
  ASSERT_NE(PR.Used, Tactic::Failed);
  vm::Vm VP = prepareVm(PR.Img, *PR.P);
  if (GetParam() == 2)
    frontend::installB0Handler(VP, PR.P->b0Table());
  auto R = VP.run(1000);
  ASSERT_EQ(R.Kind, vm::RunResult::Exit::Finished) << R.Error;
  EXPECT_TRUE(snapshot(VP, PR.Img) == Ref);
}

INSTANTIATE_TEST_SUITE_P(Tactics, PatchedExecution,
                         ::testing::Values(0, 1, 2));

// Jump-target preservation: after T3, jumping straight at the *evicted
// victim's address* must behave exactly as in the original program.
TEST(Patcher, T3PreservesVictimJumpTarget) {
  PatchOptions Opts;
  Opts.EnableT2 = false;

  auto SetUp = [](vm::Vm &V, const elf::Image &Img) {
    // Jump directly to the victim (cmpl $77,-4(%rbx) at offset 6), as an
    // indirect branch in the original program could.
    V.Core.Rip = NonPieBase + 6;
    ASSERT_TRUE(V.push64(vm::ExitAddress).isOk());
    uint64_t Cell = Img.Segments[1].VAddr + 0x100;
    V.Core.Gpr[3] = Cell + 4;                 // rbx: cmpl operand base
    ASSERT_TRUE(V.Mem.writeInt(Cell, 4, 77).isOk());
    V.Core.Gpr[0] = Cell + 0x40;              // rax: add operand
    V.Core.Gpr[1] = 0;                        // rcx: identical baselines
    V.Core.Gpr[2] = 0x1122;                   // rdx (dh = 0x11)
  };

  // Reference: original program entered at the victim address.
  elf::Image Orig = makeImage(hostileStream(), NonPieBase);
  vm::Vm VO;
  {
    auto L = vm::load(VO, Orig);
    ASSERT_TRUE(L.isOk());
  }
  SetUp(VO, Orig);
  auto RO = VO.run(1000);
  ASSERT_EQ(RO.Kind, vm::RunResult::Exit::Finished) << RO.Error;
  FinalState Ref = snapshot(VO, Orig);

  // Patched program entered at the same (now JVictim) address.
  PatchRun PR(hostileStream(), NonPieBase, 0, Opts);
  ASSERT_EQ(PR.Used, Tactic::T3);
  vm::Vm VP = prepareVm(PR.Img, *PR.P);
  SetUp(VP, PR.Img);
  auto RP = VP.run(1000);
  ASSERT_EQ(RP.Kind, vm::RunResult::Exit::Finished) << RP.Error;
  EXPECT_TRUE(snapshot(VP, PR.Img) == Ref)
      << "evicted victim semantics lost";
}

// Reverse-order multi-site patching on the Figure 1 stream: patch both the
// mov and the add; the add must be patched first (higher address) and the
// mov's pun must then read the add's *new* bytes.
TEST(Patcher, ReverseOrderPatchesBoth) {
  elf::Image Img = makeImage(figure1(), PieBase, true);
  auto Dis = frontend::linearDisassemble(Img);
  PatchOptions Opts;
  Patcher P(Img, Dis.Insns, Opts);
  P.patchAll({PieBase + 0, PieBase + 3});
  EXPECT_EQ(P.stats().NLoc, 2u);
  EXPECT_EQ(P.stats().succPct(), 100.0);
  // Both locations decode as (padded) jumps to their trampolines.
  auto T = Img.textSegment()->Bytes;
  Insn J1;
  ASSERT_EQ(decode(T.data(), T.size(), PieBase, J1), DecodeStatus::Ok);
  EXPECT_TRUE(J1.isJmpRel32());
  Insn J2;
  ASSERT_EQ(decode(T.data() + 3, T.size() - 3, PieBase + 3, J2),
            DecodeStatus::Ok);
  EXPECT_TRUE(J2.isJmpRel32());
}

TEST(Patcher, StatsPercentagesSum) {
  elf::Image Img = makeImage(figure1(), PieBase, true);
  auto Dis = frontend::linearDisassemble(Img);
  Patcher P(Img, Dis.Insns, PatchOptions());
  P.patchAll({PieBase + 0, PieBase + 3, PieBase + 7});
  const PatchStats &S = P.stats();
  double Total = S.pct(Tactic::B1) + S.pct(Tactic::B2) + S.pct(Tactic::T1) +
                 S.pct(Tactic::T2) + S.pct(Tactic::T3) + S.pct(Tactic::B0) +
                 S.pct(Tactic::Failed);
  EXPECT_NEAR(Total, 100.0, 1e-9);
}

TEST(Patcher, PatchingUnknownAddressFails) {
  elf::Image Img = makeImage(figure1(), PieBase, true);
  auto Dis = frontend::linearDisassemble(Img);
  Patcher P(Img, Dis.Insns, PatchOptions());
  P.patchAll({PieBase + 1}); // mid-instruction: not a known location
  EXPECT_EQ(P.stats().count(Tactic::Failed), 1u);
}

// The rescue case (paper §3.3): the T3 victim is itself a failed patch
// location; JVictim then targets the victim's *patch* trampoline,
// recovering its coverage. With exhaustive T1 padding the rescue is
// subsumed by the victim's own attempts, so this scenario restricts the
// tactic set (T1/T2 off) — the victim's lone B2 window (top pun byte
// 0x99, negative) fails while the later site's JPatch/JVictim windows
// (top bytes 0x50/0x58, positive) succeed.
TEST(Patcher, T3RescuesFailedVictim) {
  // off 0: mov %rax,(%rbx)       <- site A (patched second, lower addr)
  // off 3: xchg x3 (pun-hostile 0x91)
  // off 6: and $0xf,%rax         <- site V (patched first, fails)
  // off 10: cdq; push %rax; pop %rax; ret
  std::vector<uint8_t> Code = {0x48, 0x89, 0x03, 0x91, 0x91, 0x91, 0x48,
                               0x83, 0xe0, 0x0f, 0x99, 0x50, 0x58, 0xc3};
  PatchOptions Opts;
  Opts.EnableT1 = false;
  Opts.EnableT2 = false;

  elf::Image Img = makeImage(Code, NonPieBase);
  auto Dis = frontend::linearDisassemble(Img);
  Patcher P(Img, Dis.Insns, Opts);
  P.patchAll({NonPieBase + 0, NonPieBase + 6});

  const PatchStats &S = P.stats();
  EXPECT_EQ(S.NLoc, 2u);
  EXPECT_EQ(S.Rescued, 1u) << "the failed victim must be rescued";
  EXPECT_EQ(S.count(Tactic::Failed), 0u);
  EXPECT_EQ(S.count(Tactic::T3), 2u) << "both sites credited to T3";

  // Both sites report a trampoline now.
  for (const PatchSiteResult &R : P.results()) {
    EXPECT_EQ(R.Used, Tactic::T3);
    EXPECT_NE(R.TrampolineAddr, 0u);
  }

  // Execute original vs patched from the entry; behaviour must match.
  elf::Image Orig = makeImage(Code, NonPieBase);
  vm::Vm VO;
  {
    auto L = vm::load(VO, Orig);
    ASSERT_TRUE(L.isOk());
  }
  VO.Core.Gpr[3] = Orig.Segments[1].VAddr + 0x100;
  VO.Core.Gpr[0] = Orig.Segments[1].VAddr + 0x200;
  VO.Core.Gpr[1] = 0;
  VO.Core.Gpr[2] = 0x1122;
  auto RO = VO.run(1000);
  ASSERT_EQ(RO.Kind, vm::RunResult::Exit::Finished) << RO.Error;
  FinalState Ref = snapshot(VO, Orig);

  vm::Vm VP = prepareVm(Img, P);
  VP.Core.Gpr[3] = Img.Segments[1].VAddr + 0x100;
  VP.Core.Gpr[0] = Img.Segments[1].VAddr + 0x200;
  VP.Core.Gpr[1] = 0;
  VP.Core.Gpr[2] = 0x1122;
  auto RP = VP.run(1000);
  ASSERT_EQ(RP.Kind, vm::RunResult::Exit::Finished) << RP.Error;
  EXPECT_TRUE(snapshot(VP, Img) == Ref);

  // Jump-target preservation for the rescued victim: entering at V runs
  // its (now trampoline-implemented) patch semantics.
  vm::Vm VV = prepareVm(Img, P);
  VV.Core.Rip = NonPieBase + 6;
  ASSERT_TRUE(VV.push64(vm::ExitAddress).isOk());
  VV.Core.Gpr[0] = 0x12345;
  auto RV = VV.run(1000);
  ASSERT_EQ(RV.Kind, vm::RunResult::Exit::Finished) << RV.Error;
  EXPECT_EQ(VV.Core.Gpr[0], 0x12345u & 0xf)
      << "rescued victim's and-$0xf semantics lost";
}

//===----------------------------------------------------------------------===//
// TrampolineKind::Template — the compiled-template kind must honor the
// same size-precompute / rel32-rollback contract as the built-in kinds.
//===----------------------------------------------------------------------===//

namespace {

/// Hand-built TemplateProgram (what the src/api compiler would emit),
/// keeping this test independent of the textual grammar.
std::shared_ptr<const TemplateProgram>
makeProgram(std::vector<TemplateProgram::Op> Ops) {
  auto P = std::make_shared<TemplateProgram>();
  P->Name = "test";
  P->Ops = std::move(Ops);
  return P;
}

TemplateProgram::Op progOp(TemplateProgram::Op::Kind K, uint64_t Imm = 0) {
  TemplateProgram::Op Op;
  Op.K = K;
  Op.Imm = Imm;
  return Op;
}

} // namespace

TEST(Patcher, TemplatePassthroughMatchesBuiltinEmpty) {
  // `$instruction $continue` and the built-in Empty kind must produce the
  // same patched text and the same tactic.
  PatchOptions TOpts;
  TOpts.Spec.Kind = TrampolineKind::Template;
  TOpts.Spec.Program =
      makeProgram({progOp(TemplateProgram::Op::Kind::Displaced),
                   progOp(TemplateProgram::Op::Kind::JumpBack)});
  PatchRun T(figure1(), NonPieBase, 0, TOpts);
  PatchRun E(figure1(), NonPieBase, 0); // default: Empty
  EXPECT_EQ(T.Used, E.Used);
  EXPECT_EQ(T.textBytes(), E.textBytes());
}

TEST(Patcher, TemplateRel32OverflowRollsBackLikeComposed) {
  // A template jumping to an address no trampoline can reach with rel32:
  // buildTrampoline fails recoverably, every tactic rolls back, and the
  // site ends Failed/BuildFailed with the text untouched — byte-for-byte
  // the same outcome as the equivalent Composed spec.
  constexpr uint64_t Far = 0x7f0000000000ULL;

  PatchOptions TOpts;
  TOpts.Spec.Kind = TrampolineKind::Template;
  TOpts.Spec.Program =
      makeProgram({progOp(TemplateProgram::Op::Kind::Displaced),
                   progOp(TemplateProgram::Op::Kind::JumpTo, Far)});
  PatchRun T(figure1(), NonPieBase, 0, TOpts);

  PatchOptions COpts;
  COpts.Spec.Kind = TrampolineKind::Composed;
  COpts.Spec.Ops = {TemplateOp::displaced(), TemplateOp::jumpTo(Far)};
  PatchRun C(figure1(), NonPieBase, 0, COpts);

  EXPECT_EQ(T.Used, Tactic::Failed);
  EXPECT_EQ(C.Used, Tactic::Failed);
  ASSERT_EQ(T.P->results().size(), 1u);
  EXPECT_EQ(T.P->results()[0].Reason, FailureReason::BuildFailed);
  EXPECT_EQ(T.P->results()[0].Reason, C.P->results()[0].Reason);
  // Rollback left the original instruction intact in both.
  EXPECT_EQ(T.textBytes(), figure1());
  EXPECT_EQ(T.textBytes(), C.textBytes());
  EXPECT_EQ(T.P->chunks().size(), C.P->chunks().size());
}
