//===- core/Pun.h - Punned jump target arithmetic --------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction punning (paper §2.1.3/§3) reduces to constrained interval
/// arithmetic: writing a jump with P pad bytes at address J leaves the low
/// k rel32 bytes free (those still inside the writable zone) and fixes the
/// high 4-k bytes to the current values of the overlapping instruction
/// bytes. Because rel32 is little-endian, the reachable target set is one
/// contiguous interval of size 256^k starting at J+P+5+sext32(Fixed).
///
//===----------------------------------------------------------------------===//

#ifndef E9_CORE_PUN_H
#define E9_CORE_PUN_H

#include "support/IntervalSet.h"

#include <cstdint>
#include <optional>

namespace e9 {
namespace core {

/// Single-byte values usable as redundant jump padding (tactic T1):
/// segment-override prefixes, architecturally ignored on a near jump.
/// Only legacy prefixes are used (no REX) so that standard disassemblers
/// render the padded jump as a single instruction; repetition of a
/// prefix is architecturally legal, so the cycle may repeat.
inline constexpr uint8_t JumpPadBytes[] = {0x26, 0x2e, 0x36, 0x3e, 0x26,
                                           0x2e, 0x36, 0x3e, 0x26, 0x2e};
inline constexpr unsigned MaxJumpPads = 10;

/// The reachable-target description of one punned jump attempt.
struct PunRange {
  unsigned FreeBytes = 0;  ///< k: number of freely choosable rel32 bytes.
  uint32_t Fixed = 0;      ///< rel32 bit pattern with the free bytes zeroed.
  uint64_t Base = 0;       ///< Address the rel32 is relative to (J+P+5).
  Interval Targets;        ///< Valid target addresses, clamped to canonical.

  /// rel32 value that reaches \p Target (must lie in Targets).
  int32_t relFor(uint64_t Target) const {
    return static_cast<int32_t>(static_cast<int64_t>(Target) -
                                static_cast<int64_t>(Base));
  }
};

/// Computes the reachable target interval for a jump written at
/// \p JumpAddr with \p Pads pad bytes, when only bytes below
/// \p WritableEnd may be modified. \p Rel32Bytes holds the *current*
/// values of the four bytes at JumpAddr+Pads+1 .. +5; entries at index
/// >= k are the fixed pun bytes. Returns nullopt when the jump's opcode
/// byte itself would fall outside the writable zone or the clamped target
/// interval is empty.
std::optional<PunRange> punTargetRange(uint64_t JumpAddr, unsigned Pads,
                                       uint64_t WritableEnd,
                                       const uint8_t Rel32Bytes[4]);

} // namespace core
} // namespace e9

#endif // E9_CORE_PUN_H
