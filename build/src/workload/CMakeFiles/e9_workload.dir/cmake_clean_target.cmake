file(REMOVE_RECURSE
  "libe9_workload.a"
)
