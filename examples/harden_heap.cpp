//===- examples/harden_heap.cpp - §6.3 heap write hardening ----*- C++ -*-===//
//
// Binary heap-write hardening with low-fat pointers (paper §6.3): rewrite
// every heap-pointer write to bounds-check its target against the 16-byte
// redzones that the LowFat allocator places between objects. The demo
// program contains a one-slot heap overflow; unhardened it corrupts a
// neighbouring allocation silently, hardened it aborts at the exact
// offending store.
//
// Run: ./harden_heap
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "support/Format.h"
#include "vm/Hooks.h"
#include "workload/Gen.h"
#include "workload/Run.h"

#include <cstdio>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

int main() {
  std::printf("harden_heap: LowFat redzone checks injected into a stripped "
              "binary\n\n");

  WorkloadConfig C;
  C.Name = "victim";
  C.Seed = 2024;
  C.NumFuncs = 8;
  C.MainIters = 2;
  C.HeapBug = true; // plants a one-slot overflow
  Workload W = generateWorkload(C);
  std::printf("generated victim binary: %zu bytes of code, planted "
              "overflow at %s\n",
              W.Image.textSegment()->Bytes.size(),
              hex(W.BugSiteAddr).c_str());

  // 1. Unhardened run: completes, silently corrupting the neighbour.
  RunOutcome Plain = runImage(W.Image);
  std::printf("\nunhardened run: %s (result %llx)\n",
              Plain.ok() ? "finished normally - corruption UNDETECTED"
                         : Plain.Result.Error.c_str(),
              (unsigned long long)Plain.Rax);

  // 2. Harden: instrument all heap-pointer writes with the redzone check.
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectHeapWrites(D.Insns);
  RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::LowFatCheck;
  Opts.Patch.Spec.HookAddr = vm::HookLowFatCheck;
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  auto Out = rewrite(W.Image, Locs, Opts);
  if (!Out.isOk()) {
    std::printf("rewrite failed: %s\n", Out.reason().c_str());
    return 1;
  }
  std::printf("\nhardened %zu heap-write sites "
              "(Base %.1f%%, T1 %.1f%%, T2 %.1f%%, T3 %.1f%%, "
              "coverage %.2f%%)\n",
              Out->Stats.NLoc, Out->Stats.basePct(),
              Out->Stats.pct(core::Tactic::T1),
              Out->Stats.pct(core::Tactic::T2),
              Out->Stats.pct(core::Tactic::T3), Out->Stats.succPct());

  // 3. Hardened run on the LowFat heap: the overflow hits the next slot's
  //    redzone and aborts the program at the offending write.
  RunConfig LF;
  LF.UseLowFat = true;
  RunOutcome Hardened = runImage(Out->Rewritten, LF);
  std::printf("\nhardened run: %s\n",
              Hardened.ok() ? "finished (overflow NOT caught?!)"
                            : Hardened.Result.Error.c_str());

  // 4. Count-only policy (monitoring instead of aborting).
  RunConfig Count = LF;
  Count.AbortOnViolation = false;
  RunOutcome Counted = runImage(Out->Rewritten, Count);
  std::printf("count-only policy: finished=%s, %llu redzone violation(s) "
              "recorded\n",
              Counted.ok() ? "yes" : "no",
              (unsigned long long)Counted.LowFatViolations);

  bool Demo = Plain.ok() && !Hardened.ok() &&
              Hardened.Result.Error.find("redzone") != std::string::npos &&
              Counted.LowFatViolations >= 1;
  std::printf("\n%s\n", Demo ? "OK: the overflow is invisible unhardened "
                               "and caught when hardened."
                             : "demo did not behave as expected");
  return Demo ? 0 : 1;
}
