//===- obs/Profile.h - Hierarchical span profiler --------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hierarchical span profiler: RAII `ScopedSpan`s nest into a
/// per-collector stack and aggregate into a call tree (`ProfileNode`) with
/// hit counts, total/self wall-clock time and per-shard attribution. The
/// tree exports three ways:
///
///   - a deterministic single-line JSON tree (`profileToJson`), embedded in
///     `RewriteOutput::Profile.Tree`,
///   - Chrome trace-event format (`profileToChromeTrace`), loadable in
///     chrome://tracing and Perfetto,
///   - Brendan-Gregg collapsed-stack format (`profileToCollapsed`) for
///     flamegraph.pl / speedscope.
///
/// **Zero cost when disabled.** Instrumented code holds a `Profiler`, a
/// one-pointer value type exactly like `Tracer`: constructing a ScopedSpan
/// against a null profiler is one branch and no clock read. Profiling never
/// feeds back into any rewriting decision, so output bytes are identical
/// with it on or off.
///
/// **Determinism contract.** Every field of the aggregated tree except the
/// `*_ms` times — node names, shard ids, hit counts, child order, tree
/// shape — is a pure function of (input binary, options): per-shard
/// collectors are merged in the same descending-address order as the
/// result/trace merge, a redone shard's first-run collector is discarded
/// with its first-run result, and children keep first-visit order within
/// each node. `profileToJson(Root, /*IncludeTimes=*/false)` is therefore
/// byte-identical for any `--jobs` value; the timed export differs only in
/// the `total_ms`/`self_ms` fields (rendered adjacently, so a single
/// substitution strips them — check.sh gate [11/11] relies on this). The
/// Chrome/collapsed exports carry wall-clock values by nature and pin only
/// their structure.
///
/// **Threading.** A collector is single-writer: the pipeline owns one, and
/// each shard's Patcher runs single-threaded over its own (no locks, same
/// ownership discipline as TraceBuffer). All collectors share one
/// steady_clock epoch so Chrome timestamps from different shards align.
///
//===----------------------------------------------------------------------===//

#ifndef E9_OBS_PROFILE_H
#define E9_OBS_PROFILE_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace e9 {
namespace obs {

/// One aggregated node of the profile call tree. A node is identified by
/// (parent, Name, Shard); children appear in first-visit order.
struct ProfileNode {
  std::string Name;
  int Shard = -1;      ///< >= 0: attributed to that shard.
  uint64_t Count = 0;  ///< Completed spans aggregated into this node.
  double TotalMs = 0;  ///< Wall time including children.
  double SelfMs = 0;   ///< TotalMs minus children (set by finalize pass).
  std::vector<ProfileNode> Children;
};

/// One raw completed span (a Chrome "X" complete event): epoch-relative
/// start and duration in microseconds.
struct SpanEvent {
  std::string Name;
  int Shard = -1;
  double StartUs = 0;
  double DurUs = 0;
};

/// Single-writer span collector: an implicit root node, a stack of open
/// spans, and a log of completed spans for the Chrome export.
class ProfileCollector {
public:
  using Clock = std::chrono::steady_clock;

  /// \p Shard tags every node/event this collector records (-1 =
  /// pipeline-level). \p Epoch is the shared timestamp origin; shard
  /// collectors must be constructed with the pipeline collector's epoch().
  explicit ProfileCollector(int Shard = -1,
                            Clock::time_point Epoch = Clock::now())
      : ShardId(Shard), Epoch(Epoch) {}

  int shard() const { return ShardId; }
  Clock::time_point epoch() const { return Epoch; }
  /// Open-span nesting depth (0 = at the root). Exposed for tests.
  size_t depth() const { return Stack.size(); }

  /// Opens a span named \p Name as a child of the innermost open span
  /// (find-or-create; children keep first-visit order).
  void enter(const char *Name);
  /// Closes the innermost open span, accumulating its wall time into the
  /// tree and appending one SpanEvent.
  void exit();

  /// Grafts another collector's finished tree as a child of the innermost
  /// open span: a new node (\p Name, \p Shard, Count = 1, TotalMs =
  /// \p TotalMs) adopting \p SubRoot's children, with \p Events appended
  /// to this collector's event log. This is the deterministic per-shard
  /// merge step — callers graft in descending shard order.
  void graft(const char *Name, int Shard, ProfileNode &&SubRoot,
             std::vector<SpanEvent> &&Events, double TotalMs);

  /// Returns the finished tree (root Name = "", Shard = collector shard)
  /// with SelfMs finalized on every node; \p RootTotalMs becomes the
  /// root's TotalMs (the caller's whole-pipeline wall time). Open spans
  /// must all be closed. The collector is spent afterwards.
  ProfileNode takeTree(double RootTotalMs = 0.0);
  std::vector<SpanEvent> takeEvents() { return std::move(Events); }

private:
  struct Frame {
    /// Points at a node owned (transitively) by Root. Safe against vector
    /// reallocation because children are only ever appended to the
    /// *innermost open* node, and no live frame points into that node's
    /// Children (its own frame points at the node itself, which only
    /// moves when a sibling is appended — impossible while it is open).
    ProfileNode *Node;
    Clock::time_point Start;
  };

  int ShardId;
  Clock::time_point Epoch;
  ProfileNode Root;
  std::vector<Frame> Stack;
  std::vector<SpanEvent> Events;
};

/// The pipeline's view of a ProfileCollector: a nullable one-pointer handle
/// (the Tracer pattern). Copy freely.
class Profiler {
public:
  Profiler() = default;
  explicit Profiler(ProfileCollector *C) : C(C) {}

  bool enabled() const { return C != nullptr; }
  ProfileCollector *collector() const { return C; }

private:
  ProfileCollector *C = nullptr;
};

/// RAII span: enters on construction, exits on destruction — so early
/// returns, error paths and fault-injection exits unwind the span stack
/// correctly by construction. One branch and nothing else when the
/// profiler is disabled.
class ScopedSpan {
public:
  ScopedSpan(Profiler P, const char *Name) : C(P.collector()) {
    if (C)
      C->enter(Name);
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;
  ~ScopedSpan() {
    if (C)
      C->exit();
  }

private:
  ProfileCollector *C;
};

/// Renders the tree as one deterministic line of JSON. Per node:
/// {"name":...,["shard":K,]"count":N,["total_ms":X,"self_ms":Y,]
///  "children":[...]} — the ms fields are adjacent and only present with
/// \p IncludeTimes, so the times-less rendering is byte-comparable across
/// runs and the timed one differs from it by one regular substitution.
std::string profileToJson(const ProfileNode &Root, bool IncludeTimes = true);

/// Renders the event log in Chrome trace-event JSON (one "X" complete
/// event per span; pid 1, tid = shard + 1 so the pipeline is tid 0 and
/// each shard gets its own track).
std::string profileToChromeTrace(const std::vector<SpanEvent> &Events);

/// Renders the tree in collapsed-stack format: one "frame;frame;... N"
/// line per node in tree order, N = self time in integer microseconds.
/// Frames of shard-attributed nodes render as "name[K]".
std::string profileToCollapsed(const ProfileNode &Root);

} // namespace obs
} // namespace e9

#endif // E9_OBS_PROFILE_H
