//===- tests/x86_assembler_test.cpp - assembler + reloc tests -*- C++ -*-===//

#include "x86/Assembler.h"
#include "x86/Decoder.h"
#include "x86/Reloc.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::x86;

namespace {

std::vector<uint8_t> asmOne(void (*F)(Assembler &), uint64_t Base = 0x1000) {
  Assembler A(Base);
  F(A);
  EXPECT_TRUE(A.resolveAll());
  return A.take();
}

/// Decodes the single instruction in \p Bytes, asserting success.
Insn decOne(const std::vector<uint8_t> &Bytes, uint64_t Addr = 0x1000) {
  Insn I;
  EXPECT_EQ(decode(Bytes.data(), Bytes.size(), Addr, I), DecodeStatus::Ok);
  EXPECT_EQ(I.Length, Bytes.size());
  return I;
}

} // namespace

TEST(Assembler, MovRegImm64) {
  auto B = asmOne([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 0x1122334455667788ULL);
  });
  EXPECT_EQ(B, (std::vector<uint8_t>{0x48, 0xb8, 0x88, 0x77, 0x66, 0x55,
                                     0x44, 0x33, 0x22, 0x11}));
}

TEST(Assembler, MovStoreViaRbx) {
  auto B = asmOne([](Assembler &A) {
    A.movMemReg(OpSize::B64, Mem::base(Reg::RBX), Reg::RAX);
  });
  EXPECT_EQ(B, (std::vector<uint8_t>{0x48, 0x89, 0x03}));
}

TEST(Assembler, AddImm8Form) {
  auto B = asmOne([](Assembler &A) {
    A.aluRegImm(OpSize::B64, Alu::Add, Reg::RAX, 0x20);
  });
  EXPECT_EQ(B, (std::vector<uint8_t>{0x48, 0x83, 0xc0, 0x20}));
}

TEST(Assembler, RspBaseForcesSib) {
  auto B = asmOne([](Assembler &A) {
    A.movRegMem(OpSize::B64, Reg::RAX, Mem::base(Reg::RSP, 8));
  });
  Insn I = decOne(B);
  EXPECT_EQ(I.memBase(), Reg::RSP);
  EXPECT_EQ(I.Disp, 8);
}

TEST(Assembler, RbpBaseUsesDisp8Zero) {
  auto B = asmOne([](Assembler &A) {
    A.movRegMem(OpSize::B64, Reg::RAX, Mem::base(Reg::RBP));
  });
  Insn I = decOne(B);
  EXPECT_EQ(I.memBase(), Reg::RBP);
  EXPECT_EQ(I.DispSize, 1);
}

TEST(Assembler, R13BaseUsesDisp8Zero) {
  auto B = asmOne([](Assembler &A) {
    A.movRegMem(OpSize::B64, Reg::RAX, Mem::base(Reg::R13));
  });
  Insn I = decOne(B);
  EXPECT_EQ(I.memBase(), Reg::R13);
  EXPECT_EQ(I.DispSize, 1);
}

TEST(Assembler, BaseIndexScale) {
  auto B = asmOne([](Assembler &A) {
    A.movRegMem(OpSize::B32, Reg::RDX, Mem::baseIndex(Reg::RBX, Reg::RCX, 4, 8));
  });
  Insn I = decOne(B);
  EXPECT_EQ(I.memBase(), Reg::RBX);
  EXPECT_EQ(I.memIndex(), Reg::RCX);
  EXPECT_EQ(I.memScale(), 4);
  EXPECT_EQ(I.Disp, 8);
}

TEST(Assembler, RipRelativeLea) {
  auto B = asmOne([](Assembler &A) {
    A.leaRegMem(Reg::RSI, Mem::ripRel(0x100));
  });
  Insn I = decOne(B, 0x4000);
  EXPECT_TRUE(I.isRipRelative());
  EXPECT_EQ(I.ripTarget(), 0x4000u + B.size() + 0x100);
}

TEST(Assembler, AbsoluteAddressing) {
  auto B = asmOne([](Assembler &A) {
    A.incMem(OpSize::B64, Mem::abs(0x200000));
  });
  Insn I = decOne(B);
  EXPECT_EQ(I.memBase(), Reg::None);
  EXPECT_EQ(I.Disp, 0x200000);
  EXPECT_TRUE(I.writesMemOperand());
}

TEST(Assembler, JmpLabelForward) {
  Assembler A(0x1000);
  auto L = A.createLabel();
  A.jmpLabel(L);
  A.nops(3);
  A.bind(L);
  A.ret();
  ASSERT_TRUE(A.resolveAll());
  auto B = A.take();
  Insn I;
  ASSERT_EQ(decode(B.data(), B.size(), 0x1000, I), DecodeStatus::Ok);
  EXPECT_TRUE(I.isJmpRel32());
  EXPECT_EQ(I.branchTarget(), 0x1000u + 8);
}

TEST(Assembler, JccShortBackward) {
  Assembler A(0x1000);
  auto L = A.createLabel();
  A.bind(L);
  A.nop();
  A.jccShortLabel(Cond::NE, L);
  ASSERT_TRUE(A.resolveAll());
  auto B = A.take();
  Insn I;
  ASSERT_EQ(decode(B.data() + 1, B.size() - 1, 0x1001, I), DecodeStatus::Ok);
  EXPECT_TRUE(I.isJccRel8());
  EXPECT_EQ(I.branchTarget(), 0x1000u);
}

TEST(Assembler, ShortJumpOutOfRangeFails) {
  Assembler A(0x1000);
  auto L = A.createLabel();
  A.jmpShortLabel(L);
  A.nops(200);
  A.bind(L);
  EXPECT_FALSE(A.resolveAll());
}

TEST(Assembler, UnboundLabelFails) {
  Assembler A(0x1000);
  auto L = A.createLabel();
  A.jmpLabel(L);
  EXPECT_FALSE(A.resolveAll());
}

TEST(Assembler, JmpAddrEncoding) {
  Assembler A(0x400000);
  A.jmpAddr(0x400000 + 5 + 0x20); // rel32 = 0x20
  auto B = A.take();
  EXPECT_EQ(B, (std::vector<uint8_t>{0xe9, 0x20, 0x00, 0x00, 0x00}));
}

TEST(Assembler, CallRegAndJmpReg) {
  auto C = asmOne([](Assembler &A) { A.callReg(Reg::R11); });
  Insn I = decOne(C);
  EXPECT_TRUE(I.isIndirectCall());
  auto J = asmOne([](Assembler &A) { A.jmpReg(Reg::RAX); });
  Insn K = decOne(J);
  EXPECT_TRUE(K.isIndirectJmp());
}

TEST(Assembler, JmpAnywhereShape) {
  Assembler A(0x1000);
  A.jmpAnywhere(0x123456789abcULL);
  auto B = A.take();
  EXPECT_EQ(B.size(), 14u);
  EXPECT_EQ(B[0], 0x68); // push imm32
  EXPECT_EQ(B.back(), 0xc3);
}

TEST(Assembler, ByteOpsForceRexForNewLowRegs) {
  // mov sil, dil must carry a REX prefix (else it would be dh, bh).
  auto B = asmOne([](Assembler &A) {
    A.movRegReg(OpSize::B8, Reg::RSI, Reg::RDI);
  });
  EXPECT_EQ(B[0], 0x40);
  Insn I = decOne(B);
  EXPECT_TRUE(I.HasRex);
}

// --- Relocation of displaced instructions ----------------------------------

TEST(Reloc, VerbatimCopy) {
  std::vector<uint8_t> Bytes = {0x48, 0x89, 0x03}; // mov [rbx], rax
  Insn I = decOne(Bytes, 0x1000);
  ByteBuffer Out;
  ASSERT_TRUE(relocateInsn(I, Bytes.data(), 0x99999000, Out));
  EXPECT_EQ(Out.bytes(), Bytes);
  EXPECT_EQ(relocatedSize(I), 3u);
}

TEST(Reloc, RipRelativeFixup) {
  // mov rax, [rip + 0x10] at 0x1000; target = 0x1017.
  std::vector<uint8_t> Bytes = {0x48, 0x8b, 0x05, 0x10, 0x00, 0x00, 0x00};
  Insn I = decOne(Bytes, 0x1000);
  ByteBuffer Out;
  ASSERT_TRUE(relocateInsn(I, Bytes.data(), 0x2000, Out));
  Insn J;
  ASSERT_EQ(decode(Out.data(), Out.size(), 0x2000, J), DecodeStatus::Ok);
  EXPECT_EQ(J.ripTarget(), 0x1017u);
}

TEST(Reloc, JccRel8Widens) {
  std::vector<uint8_t> Bytes = {0x74, 0x10}; // je +0x10 at 0x1000 -> 0x1012
  Insn I = decOne(Bytes, 0x1000);
  EXPECT_EQ(relocatedSize(I), 6u);
  ByteBuffer Out;
  ASSERT_TRUE(relocateInsn(I, Bytes.data(), 0x5000, Out));
  Insn J;
  ASSERT_EQ(decode(Out.data(), Out.size(), 0x5000, J), DecodeStatus::Ok);
  EXPECT_TRUE(J.isJccRel32());
  EXPECT_EQ(J.cond(), Cond::E);
  EXPECT_EQ(J.branchTarget(), 0x1012u);
}

TEST(Reloc, CallKeepsTarget) {
  std::vector<uint8_t> Bytes = {0xe8, 0x00, 0x01, 0x00, 0x00};
  Insn I = decOne(Bytes, 0x1000);
  ByteBuffer Out;
  ASSERT_TRUE(relocateInsn(I, Bytes.data(), 0x8000, Out));
  Insn J;
  ASSERT_EQ(decode(Out.data(), Out.size(), 0x8000, J), DecodeStatus::Ok);
  EXPECT_TRUE(J.isCallRel32());
  EXPECT_EQ(J.branchTarget(), I.branchTarget());
}

TEST(Reloc, OutOfRangeRipFails) {
  std::vector<uint8_t> Bytes = {0x48, 0x8b, 0x05, 0x10, 0x00, 0x00, 0x00};
  Insn I = decOne(Bytes, 0x1000);
  ByteBuffer Out;
  EXPECT_FALSE(relocateInsn(I, Bytes.data(), 0x7000000000ULL, Out));
}

TEST(Reloc, LoopFamilyEmulated) {
  // loop (relative to 0x1000, target 0x1000) relocated to 0x2000.
  std::vector<uint8_t> Loop = {0xe2, 0xfe};
  Insn I = decOne(Loop, 0x1000);
  EXPECT_EQ(relocatedSize(I), 11u);
  ByteBuffer Out;
  ASSERT_TRUE(relocateInsn(I, Loop.data(), 0x2000, Out));
  EXPECT_EQ(Out.size(), 11u);
  // Trailing jmp rel32 targets the original loop target.
  Insn J;
  ASSERT_EQ(decode(Out.data() + 6, Out.size() - 6, 0x2006, J),
            DecodeStatus::Ok);
  EXPECT_TRUE(J.isJmpRel32());
  EXPECT_EQ(J.branchTarget(), 0x1000u);

  // jrcxz gets the taken/over/target triple.
  std::vector<uint8_t> Jrcxz = {0xe3, 0x10};
  Insn K = decOne(Jrcxz, 0x1000);
  EXPECT_EQ(relocatedSize(K), 9u);
  ByteBuffer Out2;
  ASSERT_TRUE(relocateInsn(K, Jrcxz.data(), 0x3000, Out2));
  Insn T;
  ASSERT_EQ(decode(Out2.data() + 4, Out2.size() - 4, 0x3004, T),
            DecodeStatus::Ok);
  EXPECT_EQ(T.branchTarget(), 0x1012u);

  // loope/loopne carry the extra ZF test.
  std::vector<uint8_t> Loope = {0xe1, 0x00};
  Insn L = decOne(Loope, 0x1000);
  EXPECT_EQ(relocatedSize(L), 13u);
  ByteBuffer Out3;
  ASSERT_TRUE(relocateInsn(L, Loope.data(), 0x4000, Out3));
  EXPECT_EQ(Out3[6], 0x75); // jne skip
}

TEST(Reloc, LeaOfMemOperand) {
  // cmpl $77, -4(%rbx): lea rdi, [rbx-4]
  std::vector<uint8_t> Bytes = {0x83, 0x7b, 0xfc, 0x4d};
  Insn I = decOne(Bytes, 0x1000);
  ByteBuffer Out;
  ASSERT_TRUE(encodeLeaOfMemOperand(I, Reg::RDI, 0x2000, Out));
  Insn J;
  ASSERT_EQ(decode(Out.data(), Out.size(), 0x2000, J), DecodeStatus::Ok);
  EXPECT_EQ(J.Opcode, 0x8d);
  EXPECT_EQ(J.memBase(), Reg::RBX);
  EXPECT_EQ(J.Disp, -4);
  EXPECT_EQ(J.reg(), static_cast<uint8_t>(Reg::RDI));
  EXPECT_EQ(leaOfMemOperandSize(I), Out.size());
}

TEST(Reloc, LeaOfRipOperandRetargets) {
  std::vector<uint8_t> Bytes = {0x48, 0x89, 0x05, 0x00, 0x02, 0x00, 0x00};
  Insn I = decOne(Bytes, 0x1000); // mov [rip+0x200], rax -> 0x1207
  ByteBuffer Out;
  ASSERT_TRUE(encodeLeaOfMemOperand(I, Reg::RDI, 0x9000, Out));
  Insn J;
  ASSERT_EQ(decode(Out.data(), Out.size(), 0x9000, J), DecodeStatus::Ok);
  EXPECT_EQ(J.ripTarget(), 0x1207u);
  EXPECT_EQ(leaOfMemOperandSize(I), 7u);
}

TEST(Reloc, LeaOfRegisterOperandFails) {
  std::vector<uint8_t> Bytes = {0x48, 0x01, 0xd8}; // add rax, rbx
  Insn I = decOne(Bytes, 0x1000);
  ByteBuffer Out;
  EXPECT_FALSE(encodeLeaOfMemOperand(I, Reg::RDI, 0x2000, Out));
}

// --- Round-trip property: everything the assembler emits, the decoder
// decodes back with identical length and operand structure. -----------------

namespace {

const Reg AllRegs[] = {Reg::RAX, Reg::RCX, Reg::RDX, Reg::RBX,
                       Reg::RSP, Reg::RBP, Reg::RSI, Reg::RDI,
                       Reg::R8,  Reg::R9,  Reg::R10, Reg::R11,
                       Reg::R12, Reg::R13, Reg::R14, Reg::R15};

Mem randomMem(Rng &R) {
  Mem M;
  switch (R.below(4)) {
  case 0:
    M = Mem::base(AllRegs[R.below(16)],
                  static_cast<int32_t>(R.range(-0x2000, 0x2000)));
    break;
  case 1: {
    Reg Index;
    do
      Index = AllRegs[R.below(16)];
    while (Index == Reg::RSP);
    M = Mem::baseIndex(AllRegs[R.below(16)], Index,
                       static_cast<uint8_t>(1u << R.below(4)),
                       static_cast<int32_t>(R.range(-128, 127)));
    break;
  }
  case 2:
    M = Mem::ripRel(static_cast<int32_t>(R.range(-0x10000, 0x10000)));
    break;
  default:
    M = Mem::abs(static_cast<int32_t>(R.below(0x400000)));
    break;
  }
  return M;
}

} // namespace

class AssemblerRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssemblerRoundTrip, RandomInstructionsDecode) {
  Rng R(GetParam());
  const OpSize Sizes[] = {OpSize::B8, OpSize::B16, OpSize::B32, OpSize::B64};
  for (int Iter = 0; Iter != 400; ++Iter) {
    Assembler A(0x400000);
    OpSize S = Sizes[R.below(4)];
    Reg Ra = AllRegs[R.below(16)];
    Reg Rb = AllRegs[R.below(16)];
    Alu Op = static_cast<Alu>(R.below(8));
    bool ExpectMem = false;
    bool ExpectWrite = false;
    switch (R.below(10)) {
    case 0:
      A.movRegReg(S, Ra, Rb);
      break;
    case 1:
      A.movMemReg(S, randomMem(R), Rb);
      ExpectMem = ExpectWrite = true;
      break;
    case 2:
      A.movRegMem(S, Ra, randomMem(R));
      ExpectMem = true;
      break;
    case 3:
      A.aluRegReg(S, Op, Ra, Rb);
      break;
    case 4:
      A.aluMemReg(S, Op, randomMem(R), Rb);
      ExpectMem = true;
      ExpectWrite = Op != Alu::Cmp;
      break;
    case 5:
      A.aluRegImm(S, Op, Ra, static_cast<int32_t>(R.range(-40000, 40000)));
      break;
    case 6:
      A.leaRegMem(Ra, randomMem(R));
      ExpectMem = true;
      break;
    case 7:
      A.movMemImm(S, randomMem(R),
                  static_cast<int32_t>(R.range(-100, 100)));
      ExpectMem = ExpectWrite = true;
      break;
    case 8:
      A.testRegReg(S, Ra, Rb);
      break;
    default:
      A.shiftRegImm(S, static_cast<Shift>(R.chance(50) ? 4 : 5), Ra,
                    static_cast<uint8_t>(R.below(32)));
      break;
    }
    auto Bytes = A.take();
    Insn I;
    ASSERT_EQ(decode(Bytes.data(), Bytes.size(), 0x400000, I),
              DecodeStatus::Ok)
        << "bytes failed to decode on iter " << Iter;
    ASSERT_EQ(I.Length, Bytes.size()) << "length mismatch on iter " << Iter;
    EXPECT_EQ(I.hasMemOperand(), ExpectMem);
    if (ExpectMem) {
      EXPECT_EQ(I.writesMemOperand(), ExpectWrite);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 1337, 0xe9));
