//===- bench/bench_table1_heapwrites.cpp - Experiment E2 -------*- C++ -*-===//
//
// Reproduces Table 1, application A2 (instrument every heap-pointer write:
// memory writes excluding %rsp/%rip bases) over the SPEC2006-analog suite.
// Paper reference (non-PIE SPEC): Base ~81.6%, T1 ~15.7%, tiny T2/T3,
// Succ ~100%, Time ~+64.7%, Size ~+30.9%.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace e9::bench;
using namespace e9::workload;

int main() {
  std::printf("E2: Table 1, A2 heap-write instrumentation (SPEC analogs)\n");
  std::printf("Paper shape: Base%% higher than A1 (writes are longer "
              "instructions),\n smaller T2/T3 shares, lower Time%% and "
              "Size%% than A1.\n");

  printTableHeader("A2: heap write instructions", /*WithTime=*/true);
  std::vector<AppResult> Rows;
  for (const SuiteEntry &E : specSuite()) {
    AppResult R = evalEntry(E, App::HeapWrites);
    printTableRow(R, true);
    Rows.push_back(R);
  }
  printTableTotals(Rows, true);
  return 0;
}
