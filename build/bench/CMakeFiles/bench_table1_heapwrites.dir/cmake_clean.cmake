file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_heapwrites.dir/bench_table1_heapwrites.cpp.o"
  "CMakeFiles/bench_table1_heapwrites.dir/bench_table1_heapwrites.cpp.o.d"
  "bench_table1_heapwrites"
  "bench_table1_heapwrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_heapwrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
