//===- support/Format.h - Small string formatting helpers ----*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting and hex helpers used by diagnostics
/// and the table-printing benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_FORMAT_H
#define E9_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace e9 {

/// Returns a printf-formatted std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats an address as 0x-prefixed lowercase hex.
std::string hex(uint64_t Value);

/// Formats a byte sequence as space-separated two-digit hex pairs.
std::string hexBytes(const uint8_t *Bytes, size_t N);
std::string hexBytes(const std::vector<uint8_t> &Bytes);

} // namespace e9

#endif // E9_SUPPORT_FORMAT_H
