
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Alloc.cpp" "src/core/CMakeFiles/e9_core.dir/Alloc.cpp.o" "gcc" "src/core/CMakeFiles/e9_core.dir/Alloc.cpp.o.d"
  "/root/repo/src/core/Grouping.cpp" "src/core/CMakeFiles/e9_core.dir/Grouping.cpp.o" "gcc" "src/core/CMakeFiles/e9_core.dir/Grouping.cpp.o.d"
  "/root/repo/src/core/Patcher.cpp" "src/core/CMakeFiles/e9_core.dir/Patcher.cpp.o" "gcc" "src/core/CMakeFiles/e9_core.dir/Patcher.cpp.o.d"
  "/root/repo/src/core/Pun.cpp" "src/core/CMakeFiles/e9_core.dir/Pun.cpp.o" "gcc" "src/core/CMakeFiles/e9_core.dir/Pun.cpp.o.d"
  "/root/repo/src/core/Trampoline.cpp" "src/core/CMakeFiles/e9_core.dir/Trampoline.cpp.o" "gcc" "src/core/CMakeFiles/e9_core.dir/Trampoline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elf/CMakeFiles/e9_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/e9_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/e9_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/e9_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
