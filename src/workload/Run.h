//===- workload/Run.h - Execute (rewritten) workload images ----*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience harness: loads an image into a fresh VM with the chosen
/// heap runtime (plain or LowFat), optionally installs the B0 trap
/// handler, runs to completion, and reports the program's observable
/// state (result register, data-segment checksum) plus cost counters.
/// Equality of observables between the original and the rewritten binary
/// is the end-to-end semantic-preservation check used throughout the
/// tests and benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef E9_WORKLOAD_RUN_H
#define E9_WORKLOAD_RUN_H

#include "elf/Image.h"
#include "vm/Vm.h"

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace e9 {
namespace workload {

struct RunConfig {
  bool UseLowFat = false;
  bool AbortOnViolation = true;
  uint64_t MaxInsns = 100'000'000;
  /// B0 side table from the rewriter (empty = no trap handler).
  std::map<uint64_t, std::vector<uint8_t>> B0Table;
  std::function<void(uint64_t)> B0Callback;
};

struct RunOutcome {
  vm::RunResult Result;
  uint64_t Rax = 0;
  uint64_t DataChecksum = 0; ///< FNV-1a over the data segment memory.
  uint64_t LowFatViolations = 0;
  size_t MappedPages = 0;
  size_t UniquePhysPages = 0;

  bool ok() const { return Result.ok(); }
};

/// Runs \p Img to completion in a fresh VM.
RunOutcome runImage(const elf::Image &Img, const RunConfig &Config = {});

/// FNV-1a over \p Img's writable segments as seen by \p V (demand-zero
/// pages skipped). The memory half of the end-state divergence oracle.
uint64_t dataChecksum(vm::Vm &V, const elf::Image &Img);

} // namespace workload
} // namespace e9

#endif // E9_WORKLOAD_RUN_H
