//===- core/Patcher.h - Tactics B1/B2/T1/T2/T3 + strategy S1 ---*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The E9Patch rewriting engine (paper §3). For each patch location the
/// tactics are tried in order:
///
///   B1/B2  direct (possibly punned) jump over the instruction,
///   T1     padded punned jumps (redundant prefixes),
///   T2     successor eviction, then retry the direct jump,
///   T3     neighbour eviction: short jump -> JPatch inside an evicted
///          victim, JVictim replacing the victim,
///   B0     optional int3 fallback (signal-handler emulation).
///
/// Multiple locations are patched in reverse address order with a byte
/// lock state (strategy S1), so puns only ever depend on bytes that are
/// already final. Failed sites are remembered: when a later tactic evicts
/// such a site as its victim, the eviction jump targets the site's *patch*
/// trampoline, recovering its coverage (the paper's "victim may happen to
/// be a patch location" case). Note that with the full tactic suite this
/// rescue is mostly subsumed: our T1 pad search is exhaustive, so a
/// JPatch/JVictim placement inside a failed victim explores the same pun
/// windows the victim's own attempts already rejected. The rescue fires
/// when tactics are restricted (e.g. T1 disabled), which the unit tests
/// exercise deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef E9_CORE_PATCHER_H
#define E9_CORE_PATCHER_H

#include "core/Alloc.h"
#include "core/Lock.h"
#include "core/Trampoline.h"
#include "elf/Image.h"
#include "obs/Trace.h"
#include "support/Arena.h"
#include "x86/Insn.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

namespace e9 {
namespace core {

/// Which methodology ended up patching a location.
enum class Tactic : uint8_t { B1, B2, T1, T2, T3, B0, Failed };
const char *tacticName(Tactic T);

/// Why the tactic chain failed at a site, ranked by how deep the most
/// successful attempt got (later values = further along the pipeline).
enum class FailureReason : uint8_t {
  None,             ///< Site patched successfully.
  NoInstruction,    ///< No decoded instruction at the address.
  SpecInapplicable, ///< Trampoline spec cannot displace the instruction.
  LockedBytes,      ///< Required bytes already locked by earlier patches.
  NoPunTarget,      ///< No reachable punned-target interval exists.
  AllocFailed,      ///< No trampoline space inside any target interval.
  BuildFailed,      ///< Trampoline body failed to materialize (rel32 range).
};
const char *failureReasonName(FailureReason R);

/// Per-site cap on how aggressive the tactic chain may get: the repair
/// loop's demotion lattice. Ordered from most permissive to most
/// conservative; demotion moves strictly down this order.
enum class TacticCeiling : uint8_t {
  Full,  ///< All enabled tactics (no per-site restriction).
  NoT3,  ///< Disallow T3 (neighbour eviction).
  NoT2,  ///< Disallow T2 and T3.
  NoT1,  ///< Direct B1/B2 only (no padded puns either).
  B0Only ///< int3 fallback only — per-site ForceB0.
};
const char *tacticCeilingName(TacticCeiling C);

/// Rewriting configuration.
struct PatchOptions {
  bool EnableT1 = true;
  bool EnableT2 = true;
  bool EnableT3 = true;
  bool B0Fallback = false;
  /// Use int3 for every site, skipping the jump tactics entirely (the
  /// paper's B0 signal-handler baseline).
  bool ForceB0 = false;
  /// Allocator zone packing (virtual page sharing). Disable only for the
  /// ablation benchmark.
  bool AllocPacking = true;
  TrampolineSpec Spec; ///< Patch trampoline template for every location.
  /// Optional per-site tactic ceiling (repair-loop demotions). Must be
  /// pure and reentrant: the sharded patcher calls it concurrently from
  /// worker threads. Null means TacticCeiling::Full everywhere.
  std::function<TacticCeiling(uint64_t)> CeilingFor;
};

/// Per-binary patching statistics (Table 1 columns).
struct PatchStats {
  size_t NLoc = 0;
  size_t Count[7] = {}; ///< Indexed by Tactic.
  size_t Evictions = 0; ///< Evictee trampolines created (T2+T3).
  size_t Rescued = 0;   ///< Failed sites recovered as eviction victims.
  size_t AllocRetries = 0; ///< Trampoline allocation probes that came back
                           ///< empty (another pun interval was tried next).
  size_t ReasonCount[7] = {}; ///< Indexed by FailureReason (failed sites).

  size_t reasonCount(FailureReason R) const {
    return ReasonCount[static_cast<size_t>(R)];
  }

  size_t count(Tactic T) const { return Count[static_cast<size_t>(T)]; }
  size_t succeeded() const {
    return NLoc - count(Tactic::Failed) - count(Tactic::B0);
  }
  double pct(Tactic T) const {
    return NLoc == 0 ? 0.0 : 100.0 * static_cast<double>(count(T)) /
                                 static_cast<double>(NLoc);
  }
  /// Base% = B1+B2 (the paper's "Base" column).
  double basePct() const { return pct(Tactic::B1) + pct(Tactic::B2); }
  double succPct() const {
    return NLoc == 0 ? 100.0 : 100.0 * static_cast<double>(succeeded()) /
                                   static_cast<double>(NLoc);
  }
};

/// One emitted trampoline (or instrumentation payload) chunk.
struct TrampolineChunk {
  uint64_t Addr = 0;
  std::vector<uint8_t> Bytes;
};

/// The encoding class of one write the patcher made into the text.
enum class JumpKind : uint8_t {
  JmpRel32, ///< (Padded, possibly punned) e9 rel32.
  JmpRel8,  ///< eb rel8 (the T3 JShort).
  Int3,     ///< cc (B0 fallback).
};

/// Ground truth for one jump/int3 the patcher installed: everything the
/// post-rewrite verifier needs to independently re-check the site.
struct JumpRecord {
  uint64_t Addr = 0;      ///< First byte of the encoding.
  uint8_t EncLen = 0;     ///< Decoded length incl. pads and punned tail.
  uint8_t WrittenLen = 0; ///< Bytes actually written (pads + opcode + free
                          ///< rel bytes; the punned tail is pre-existing).
  uint64_t Target = 0;    ///< Branch target; 0 for Int3.
  JumpKind Kind = JumpKind::JmpRel32;
};

/// Result for one patch location.
struct PatchSiteResult {
  uint64_t Addr = 0;
  Tactic Used = Tactic::Failed;
  uint64_t TrampolineAddr = 0;
  FailureReason Reason = FailureReason::None; ///< Set when Used == Failed.
};

/// The rewriting engine. Operates on the image in place; trampoline bytes
/// are collected as chunks for the emission/grouping stage.
class Patcher {
public:
  /// \p Insns must be the decoded instructions of the executable region(s),
  /// sorted by address (the frontend's linear disassembly).
  Patcher(elf::Image &Img, std::vector<x86::Insn> Insns, PatchOptions Opts);

  /// Address-space control: reserved regions default to the image's
  /// segments, the NULL/guard area, the stack/hook regions and
  /// non-canonical space; reserve more via allocator().
  Allocator &allocator() { return Alloc; }

  /// Attaches a trace sink; every tactic attempt, site result and rescue
  /// is emitted to it. A default-constructed (null) tracer disables
  /// emission entirely. The tracer never influences patching decisions.
  void setTracer(obs::Tracer T) { Trace = T; }

  /// Attaches a span profiler; patchOne then records one "site" span per
  /// location with per-tactic child spans ("tactic.direct"/"tactic.t2"/
  /// "tactic.t3"/"tactic.b0"). Same contract as the tracer: a null
  /// profiler costs one branch per span site and profiling never
  /// influences patching decisions.
  void setProfiler(obs::Profiler P) { Prof = P; }

  /// Patches every location (any order accepted) using strategy S1.
  void patchAll(const std::vector<uint64_t> &PatchLocs);

  /// Patches one location with a per-site trampoline spec. Sites must
  /// still be visited in descending address order overall.
  Tactic patchOne(uint64_t Addr, const TrampolineSpec &Spec);

  const PatchStats &stats() const { return Stats; }
  const std::vector<TrampolineChunk> &chunks() const { return Chunks; }
  /// Every jump/int3 encoding written into the text, in install order
  /// (the verifier's ground truth for patched-site checks).
  const std::vector<JumpRecord> &jumps() const { return Jumps; }
  /// The byte ranges of the image the patcher modified; everything
  /// outside them must be byte-identical to the original.
  std::vector<Interval> modifiedRanges() const;
  /// B0 side table: patch address -> original instruction bytes (consumed
  /// by the VM trap handler).
  const std::map<uint64_t, std::vector<uint8_t>> &b0Table() const {
    return B0Table;
  }
  const std::vector<PatchSiteResult> &results() const { return Results; }

  /// Destructive accessors for when the Patcher is being torn down (the
  /// sharded driver): move the accumulated outputs out instead of copying
  /// them. The Patcher must not be used for patching afterwards.
  std::vector<TrampolineChunk> takeChunks() { return std::move(Chunks); }
  std::vector<JumpRecord> takeJumps() { return std::move(Jumps); }
  std::vector<PatchSiteResult> takeResults() { return std::move(Results); }
  std::map<uint64_t, std::vector<uint8_t>> takeB0Table() {
    return std::move(B0Table);
  }

private:
  /// Undo record for one text write. Every patch write is at most one
  /// instruction long, so the old content fits an inline buffer — no heap
  /// allocation on the hottest path.
  struct UndoWrite {
    uint64_t Addr = 0;
    uint8_t Len = 0;
    uint8_t Bytes[x86::MaxInsnLength] = {};
  };

  /// Transaction journals live in the per-Patcher bump arena: tactic
  /// attempts churn through thousands of them per shard, and the arena
  /// makes construction/teardown allocation-free (patchOne rewinds the
  /// arena once per site). A Txn must therefore never outlive the
  /// patchOne call that created it.
  template <typename T>
  using TxnVec = std::vector<T, support::ArenaAllocator<T>>;
  struct Txn {
    explicit Txn(support::Arena &A)
        : OldBytes(support::ArenaAllocator<UndoWrite>(A)),
          LocksAdded(support::ArenaAllocator<Interval>(A)),
          ModifiedAdded(support::ArenaAllocator<Interval>(A)),
          AllocsAdded(
              support::ArenaAllocator<std::pair<uint64_t, uint64_t>>(A)) {}
    TxnVec<UndoWrite> OldBytes;
    TxnVec<Interval> LocksAdded;
    TxnVec<Interval> ModifiedAdded;
    TxnVec<std::pair<uint64_t, uint64_t>> AllocsAdded;
    size_t ChunksMark = 0;
    size_t RecordsMark = 0;
  };

  struct JumpInstall {
    uint64_t TrampAddr = 0;
    unsigned Pads = 0;
    unsigned FreeBytes = 0;
  };

  const x86::Insn *insnAt(uint64_t Addr) const;
  const x86::Insn *nextInsn(const x86::Insn &I) const;

  /// Writes bytes into the image, recording the old content in the txn.
  bool writeBytes(Txn &T, uint64_t Addr, const uint8_t *Bytes, size_t N);
  void rollback(Txn &T);

  /// Tries pad counts [MinPads, MaxPads]: allocate a trampoline reachable
  /// by a (padded) punned jump at \p JumpAddr with writable zone ending at
  /// \p WritableEnd, instantiate \p Spec for \p Displaced there, write the
  /// jump bytes and lock the encoding. All effects recorded in \p T.
  /// \p DisplacedBytes overrides the displaced instruction's bytes (needed
  /// when the image copy has already been partially overwritten, as for a
  /// T3 victim after JPatch is installed); nullptr reads from the image.
  std::optional<JumpInstall>
  installJump(Txn &T, uint64_t JumpAddr, uint64_t WritableEnd,
              unsigned MinPads, unsigned MaxPads, const TrampolineSpec &Spec,
              const x86::Insn &Displaced,
              const uint8_t *DisplacedBytes = nullptr);

  /// Spec used when evicting \p Victim: its own pending patch spec when it
  /// is a failed patch site (rescue), else a plain evictee trampoline.
  TrampolineSpec victimSpec(const x86::Insn &Victim, bool &IsRescue) const;
  void noteRescue(uint64_t VictimAddr, Tactic Via, uint64_t TrampAddr);

  /// Records the deepest failure reason seen while patching the current
  /// site (reasons are ordered by pipeline progress).
  void noteFailure(FailureReason R) {
    if (R > SiteReason)
      SiteReason = R;
  }

  /// Emits a failed-attempt trace event carrying the deepest failure
  /// reason recorded so far for the current site.
  void traceAttemptFailed(uint64_t Addr, const char *TacticStr);

  Tactic tryDirect(uint64_t Addr, const TrampolineSpec &Spec,
                   uint64_t &TrampAddr);
  bool tryT2(uint64_t Addr, const TrampolineSpec &Spec, uint64_t &TrampAddr);
  bool tryT3(uint64_t Addr, const TrampolineSpec &Spec, uint64_t &TrampAddr);
  bool tryB0(uint64_t Addr);

  elf::Image &Img;
  support::Arena TxnArena; ///< Backs Txn journals; rewound per site.
  std::vector<x86::Insn> Insns; ///< Sorted by address; insnAt bisects it.
  PatchOptions Opts;
  Allocator Alloc;
  LockState Locks;
  std::vector<TrampolineChunk> Chunks;
  std::vector<JumpRecord> Jumps;
  FailureReason SiteReason = FailureReason::None; ///< For the current site.
  /// Whether the current site's ceiling still allows T1 pads (consulted by
  /// tryDirect/tryT2 through the shared pad-count computation).
  bool CeilT1 = true;
  std::map<uint64_t, std::vector<uint8_t>> B0Table;
  std::set<uint64_t> FailedSites;
  std::map<uint64_t, TrampolineSpec> FailedSpecs;
  std::map<uint64_t, size_t> ResultIndex;
  std::vector<PatchSiteResult> Results;
  PatchStats Stats;
  obs::Tracer Trace;
  obs::Profiler Prof;
};

/// Reserves the default unusable regions for \p Img in \p Alloc: every
/// segment (with a guard page), low memory, the VM stack and hook regions,
/// and non-canonical space.
void reserveDefaultRegions(Allocator &Alloc, const elf::Image &Img);

} // namespace core
} // namespace e9

#endif // E9_CORE_PATCHER_H
