file(REMOVE_RECURSE
  "CMakeFiles/e9_core.dir/Alloc.cpp.o"
  "CMakeFiles/e9_core.dir/Alloc.cpp.o.d"
  "CMakeFiles/e9_core.dir/Grouping.cpp.o"
  "CMakeFiles/e9_core.dir/Grouping.cpp.o.d"
  "CMakeFiles/e9_core.dir/Patcher.cpp.o"
  "CMakeFiles/e9_core.dir/Patcher.cpp.o.d"
  "CMakeFiles/e9_core.dir/Pun.cpp.o"
  "CMakeFiles/e9_core.dir/Pun.cpp.o.d"
  "CMakeFiles/e9_core.dir/Trampoline.cpp.o"
  "CMakeFiles/e9_core.dir/Trampoline.cpp.o.d"
  "libe9_core.a"
  "libe9_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
