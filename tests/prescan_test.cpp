//===- tests/prescan_test.cpp - SIMD pre-scan equivalence -----*- C++ -*-===//
//
// Pins the pre-scan fast path against the full-decode oracle:
//   - SSE2/AVX2 scanner kernels must produce bit-identical candidate maps
//     to the scalar kernel (including the 0F->8x pair rule across block
//     boundaries);
//   - prescanSelect() must return byte-identical site sets to
//     linearDisassemble()+select*() over real workloads and adversarial
//     byte soups;
//   - disassembleWindows() must materialize exactly the instructions of
//     the linear walk that start inside a window, with identical
//     boundaries.
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Prescan.h"
#include "frontend/Select.h"
#include "support/Rng.h"
#include "workload/Gen.h"
#include "x86/Decoder.h"
#include "x86/Scan.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

namespace {

/// Wraps raw bytes as an executable image so the frontend can walk them.
elf::Image soupImage(std::vector<uint8_t> Bytes) {
  elf::Image Img;
  elf::Segment S;
  S.VAddr = 0x400000;
  S.MemSize = Bytes.size();
  S.Bytes = std::move(Bytes);
  S.Flags = elf::PF_R | elf::PF_X;
  S.Name = "text";
  Img.Segments.push_back(std::move(S));
  return Img;
}

std::vector<uint8_t> randomBytes(Rng &R, size_t N) {
  std::vector<uint8_t> B(N);
  for (uint8_t &V : B)
    V = static_cast<uint8_t>(R.next() & 0xff);
  return B;
}

/// The slow-path oracle prescanSelect must match byte-for-byte.
std::vector<uint64_t> oracleSelect(const elf::Image &Img, SelectorKind K) {
  DisasmResult D = linearDisassemble(Img);
  switch (K) {
  case SelectorKind::Jumps:
    return selectJumps(D.Insns);
  case SelectorKind::HeapWrites:
    return selectHeapWrites(D.Insns);
  case SelectorKind::All:
    return selectAll(D.Insns);
  }
  return {};
}

} // namespace

// --- Scanner kernels -----------------------------------------------------

class KernelEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelEquivalence, AllBackendsMatchScalar) {
  Rng R(GetParam() * 2654435761u + 1);
  // Lengths straddling the 16/32-byte block sizes and their boundaries.
  for (size_t N : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u,
                   255u, 1024u, 4099u}) {
    std::vector<uint8_t> Bytes = randomBytes(R, N);
    for (x86::SigClass C :
         {x86::SigClass::Jumps, x86::SigClass::HeapWrites,
          x86::SigClass::All}) {
      x86::CandidateMap Ref;
      Ref.buildWith(Bytes.data(), N, C, x86::ScanBackend::Scalar);
      for (x86::ScanBackend B :
           {x86::ScanBackend::Sse2, x86::ScanBackend::Avx2}) {
        if (!x86::scanBackendAvailable(B))
          continue;
        x86::CandidateMap Got;
        Got.buildWith(Bytes.data(), N, C, B);
        ASSERT_EQ(Got.size(), Ref.size());
        for (size_t I = 0; I != N; ++I)
          ASSERT_EQ(Got.test(I), Ref.test(I))
              << "backend " << x86::scanBackendName(B) << " N=" << N
              << " class=" << static_cast<int>(C) << " byte " << I;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalence,
                         ::testing::Values(1, 2, 3, 4));

// The 0F->8x pair rule must carry across every SIMD block boundary: place
// the 0F lead at each position of a buffer and check the follow byte.
TEST(KernelEquivalence, PairRuleAcrossBlockBoundaries) {
  constexpr size_t N = 96; // Covers 16- and 32-byte boundaries twice.
  for (size_t Lead = 0; Lead + 1 < N; ++Lead) {
    std::vector<uint8_t> Bytes(N, 0x90); // NOP: never a jump candidate.
    Bytes[Lead] = 0x0f;
    Bytes[Lead + 1] = 0x84; // jcc rel32 follow byte.
    x86::CandidateMap Ref;
    Ref.buildWith(Bytes.data(), N, x86::SigClass::Jumps,
                  x86::ScanBackend::Scalar);
    ASSERT_TRUE(Ref.test(Lead + 1)) << "lead at " << Lead;
    for (x86::ScanBackend B :
         {x86::ScanBackend::Sse2, x86::ScanBackend::Avx2}) {
      if (!x86::scanBackendAvailable(B))
        continue;
      x86::CandidateMap Got;
      Got.buildWith(Bytes.data(), N, x86::SigClass::Jumps, B);
      for (size_t I = 0; I != N; ++I)
        ASSERT_EQ(Got.test(I), Ref.test(I))
            << "backend " << x86::scanBackendName(B) << " lead=" << Lead
            << " byte " << I;
    }
  }
}

// The per-byte oracle honours its documented single-byte signatures.
TEST(KernelEquivalence, CandidateByteSpotChecks) {
  using x86::SigClass;
  // Jump opcodes.
  for (unsigned B = 0x70; B != 0x80; ++B)
    EXPECT_TRUE(x86::isCandidateByte(SigClass::Jumps, 0, uint8_t(B)));
  EXPECT_TRUE(x86::isCandidateByte(SigClass::Jumps, 0, 0xe9));
  EXPECT_TRUE(x86::isCandidateByte(SigClass::Jumps, 0, 0xeb));
  // VEX/EVEX prefixes are candidates in every class (soundness).
  for (uint8_t V : {0xc4, 0xc5, 0x62}) {
    EXPECT_TRUE(x86::isCandidateByte(SigClass::Jumps, 0, V));
    EXPECT_TRUE(x86::isCandidateByte(SigClass::HeapWrites, 0, V));
  }
  // Pair rule: 0f 8x only counts for Jumps.
  EXPECT_TRUE(x86::isCandidateByte(SigClass::Jumps, 0x0f, 0x84));
  EXPECT_FALSE(x86::isCandidateByte(SigClass::Jumps, 0x90, 0x84));
  // 0f is itself a single for HeapWrites (0F-map stores).
  EXPECT_TRUE(x86::isCandidateByte(SigClass::HeapWrites, 0, 0x0f));
  // NOP is never interesting.
  EXPECT_FALSE(x86::isCandidateByte(SigClass::Jumps, 0, 0x90));
  EXPECT_FALSE(x86::isCandidateByte(SigClass::HeapWrites, 0, 0x90));
}

// --- prescanSelect vs full decode ----------------------------------------

class PrescanEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrescanEquivalence, MatchesFullDecodeOnWorkloads) {
  WorkloadConfig C;
  C.Name = "prescan";
  C.Seed = GetParam();
  C.Pie = (GetParam() & 1) != 0;
  C.NumFuncs = 24;
  C.MainIters = 1;
  Workload W = generateWorkload(C);

  for (SelectorKind K :
       {SelectorKind::Jumps, SelectorKind::HeapWrites, SelectorKind::All}) {
    PrescanStats PS;
    std::vector<uint64_t> Fast = prescanSelect(W.Image, K, &PS);
    std::vector<uint64_t> Slow = oracleSelect(W.Image, K);
    EXPECT_EQ(Fast, Slow) << "selector " << static_cast<int>(K);
    EXPECT_GT(PS.NumInsns, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrescanEquivalence,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// Adversarial inputs: pure random byte soup exercises undecodable bytes,
// VEX/EVEX prefixes, immediates full of signature values, and prefix runs
// that the opcode-position filter must not mishandle.
class PrescanSoup : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrescanSoup, MatchesFullDecodeOnByteSoup) {
  Rng R(GetParam() * 40503 + 7);
  for (size_t N : {64u, 257u, 1000u, 4096u}) {
    elf::Image Img = soupImage(randomBytes(R, N));
    for (SelectorKind K :
         {SelectorKind::Jumps, SelectorKind::HeapWrites,
          SelectorKind::All}) {
      PrescanStats PS;
      std::vector<uint64_t> Fast = prescanSelect(Img, K, &PS);
      std::vector<uint64_t> Slow = oracleSelect(Img, K);
      ASSERT_EQ(Fast, Slow)
          << "selector " << static_cast<int>(K) << " N=" << N;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrescanSoup,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

// Prefix-heavy soup: bias towards legacy/REX prefixes and signature bytes
// to stress the opcode-position rejection filter specifically.
TEST(PrescanSoup, PrefixHeavySoup) {
  static const uint8_t Pool[] = {0x66, 0x67, 0xf0, 0xf2, 0xf3, 0x2e, 0x3e,
                                 0x26, 0x36, 0x64, 0x65, 0x40, 0x48, 0x4f,
                                 0x0f, 0x84, 0x8f, 0x70, 0x7f, 0xe9, 0xeb,
                                 0xc4, 0xc5, 0x62, 0x89, 0x88, 0xc7, 0x90};
  Rng R(424242);
  for (int Round = 0; Round != 8; ++Round) {
    std::vector<uint8_t> Bytes(777);
    for (uint8_t &B : Bytes)
      B = Pool[R.next() % (sizeof(Pool))];
    elf::Image Img = soupImage(std::move(Bytes));
    for (SelectorKind K : {SelectorKind::Jumps, SelectorKind::HeapWrites}) {
      std::vector<uint64_t> Fast = prescanSelect(Img, K, nullptr);
      std::vector<uint64_t> Slow = oracleSelect(Img, K);
      ASSERT_EQ(Fast, Slow)
          << "selector " << static_cast<int>(K) << " round " << Round;
    }
  }
}

// --- disassembleWindows --------------------------------------------------

TEST(DisassembleWindows, FullCoverageEqualsLinear) {
  WorkloadConfig C;
  C.Name = "win";
  C.Seed = 77;
  C.NumFuncs = 12;
  Workload W = generateWorkload(C);

  DisasmResult Lin = linearDisassemble(W.Image);
  // A window starting at the text base and a guard spanning the whole
  // segment must reproduce the full linear walk.
  const elf::Segment *Text = W.Image.textSegment();
  DisasmResult Win = disassembleWindows(
      W.Image, {Text->VAddr}, Text->fileSize() + x86::MaxInsnLength);
  ASSERT_EQ(Win.Insns.size(), Lin.Insns.size());
  for (size_t I = 0; I != Lin.Insns.size(); ++I) {
    EXPECT_EQ(Win.Insns[I].Address, Lin.Insns[I].Address);
    EXPECT_EQ(Win.Insns[I].Length, Lin.Insns[I].Length);
  }
  EXPECT_EQ(Win.UndecodableBytes, Lin.UndecodableBytes);
}

TEST(DisassembleWindows, SparseWindowsAreLinearSubset) {
  WorkloadConfig C;
  C.Name = "win";
  C.Seed = 78;
  C.NumFuncs = 12;
  Workload W = generateWorkload(C);

  DisasmResult Lin = linearDisassemble(W.Image);
  std::vector<uint64_t> Sites = prescanSelect(W.Image, SelectorKind::Jumps);
  ASSERT_FALSE(Sites.empty());
  // Thin the sites so real gaps exist between windows.
  std::vector<uint64_t> Sparse;
  for (size_t I = 0; I < Sites.size(); I += 5)
    Sparse.push_back(Sites[I]);
  constexpr uint64_t Guard = 160;
  DisasmResult Win = disassembleWindows(W.Image, Sparse, Guard);
  ASSERT_LT(Win.Insns.size(), Lin.Insns.size());

  // Windowed output must be exactly the linear instructions whose start
  // lies inside some window — same boundaries, nothing extra or missing.
  auto inWindow = [&](uint64_t A) {
    for (uint64_t S : Sparse)
      if (A >= S && A < S + Guard)
        return true;
    return false;
  };
  size_t WI = 0;
  for (const x86::Insn &I : Lin.Insns) {
    if (!inWindow(I.Address))
      continue;
    ASSERT_LT(WI, Win.Insns.size());
    ASSERT_EQ(Win.Insns[WI].Address, I.Address);
    ASSERT_EQ(Win.Insns[WI].Length, I.Length);
    ++WI;
  }
  EXPECT_EQ(WI, Win.Insns.size());
}
