//===- vm/Memory.cpp ------------------------------------------*- C++ -*-===//

#include "vm/Memory.h"

#include "support/Format.h"

#include <cstring>

using namespace e9;
using namespace e9::vm;

PhysPageRef e9::vm::allocPhysPage() {
  auto P = std::make_shared<PhysPage>();
  P->fill(0);
  return P;
}

PhysPageRef e9::vm::zeroPage() {
  // Function-local static: created on first use, shared VM-wide.
  static PhysPageRef Zero = allocPhysPage();
  return Zero;
}

const Memory::Entry *Memory::lookup(uint64_t Addr) const {
  auto It = Pages.find(Addr / PageSize);
  return It == Pages.end() ? nullptr : &It->second;
}

void Memory::makeWritable(Entry &E) {
  // Copy-on-write: never scribble on the shared demand-zero page or on a
  // physical page frozen into a snapshot.
  if (E.Phys == zeroPage() || E.Cow) {
    PhysPageRef Fresh = allocPhysPage();
    *Fresh = *E.Phys;
    E.Phys = std::move(Fresh);
    E.Cow = false;
    ++CowClones;
  }
}

Memory::Snapshot Memory::snapshot() {
  // Mark every live page copy-on-write *first*, so the snapshot's copies
  // carry Cow=true too: restoring hands back entries that are still
  // protected against the next run's writes, making snapshots reusable.
  for (auto &[Idx, E] : Pages)
    E.Cow = true;
  Snapshot S;
  S.Pages = Pages;
  return S;
}

void Memory::restore(const Snapshot &S) { Pages = S.Pages; }

Status Memory::mapPage(uint64_t VAddr, PhysPageRef Page, uint8_t Perms) {
  assert((VAddr & PageMask) == 0 && "mapPage requires page alignment");
  auto [It, Inserted] =
      Pages.emplace(VAddr / PageSize, Entry{std::move(Page), Perms});
  (void)It;
  if (!Inserted)
    return Status::error(
        format("page at %s is already mapped", hex(VAddr).c_str()));
  return Status::ok();
}

Status Memory::mapZero(uint64_t VAddr, uint64_t Size, uint8_t Perms) {
  assert((VAddr & PageMask) == 0 && (Size & PageMask) == 0 &&
         "mapZero requires page alignment");
  for (uint64_t Off = 0; Off < Size; Off += PageSize)
    if (Status S = mapPage(VAddr + Off, zeroPage(), Perms); !S)
      return S;
  return Status::ok();
}

Status Memory::mapBytes(uint64_t VAddr, const std::vector<uint8_t> &Bytes,
                        uint64_t MemSize, uint8_t Perms) {
  if (MemSize < Bytes.size())
    return Status::error("MemSize smaller than content");
  // Reject address wrap-around and absurd sizes (malformed inputs).
  if (VAddr + MemSize < VAddr || MemSize > (1ull << 42))
    return Status::error("mapping size out of range");
  uint64_t Start = VAddr & ~PageMask;
  uint64_t End = VAddr + MemSize;
  uint64_t ContentEnd = VAddr + Bytes.size();
  for (uint64_t Page = Start; Page < End; Page += PageSize) {
    if (lookup(Page))
      continue;
    // Pages entirely past the file content are demand-zero (.bss).
    bool HasContent = Page < ContentEnd;
    if (Status S =
            mapPage(Page, HasContent ? allocPhysPage() : zeroPage(), Perms);
        !S)
      return S;
  }
  // Copy the content byte-wise through the page table. Must honour
  // copy-on-write: a pre-existing page here may be frozen in a snapshot.
  for (size_t I = 0; I < Bytes.size();) {
    uint64_t A = VAddr + I;
    auto It = Pages.find(A / PageSize);
    assert(It != Pages.end() && "page must exist after mapping");
    makeWritable(It->second);
    uint64_t Off = A & PageMask;
    size_t Chunk = std::min<size_t>(PageSize - Off, Bytes.size() - I);
    std::memcpy(It->second.Phys->data() + Off, Bytes.data() + I, Chunk);
    I += Chunk;
  }
  return Status::ok();
}

bool Memory::isMapped(uint64_t Addr) const { return lookup(Addr) != nullptr; }

bool Memory::isDemandZero(uint64_t Addr) const {
  const Entry *E = lookup(Addr);
  return E != nullptr && E->Phys == zeroPage();
}

uint8_t Memory::perms(uint64_t Addr) const {
  const Entry *E = lookup(Addr);
  return E ? E->Perms : 0;
}

Status Memory::read(uint64_t Addr, uint8_t *Out, size_t N) const {
  size_t Done = 0;
  while (Done < N) {
    uint64_t A = Addr + Done;
    const Entry *E = lookup(A);
    if (!E || !(E->Perms & PermR))
      return Status::error(
          format("invalid read of %zu bytes at %s", N, hex(Addr).c_str()));
    uint64_t Off = A & PageMask;
    size_t Chunk = std::min<size_t>(PageSize - Off, N - Done);
    std::memcpy(Out + Done, E->Phys->data() + Off, Chunk);
    Done += Chunk;
  }
  return Status::ok();
}

Status Memory::write(uint64_t Addr, const uint8_t *In, size_t N) {
  size_t Done = 0;
  while (Done < N) {
    uint64_t A = Addr + Done;
    auto It = Pages.find(A / PageSize);
    if (It == Pages.end() || !(It->second.Perms & PermW))
      return Status::error(
          format("invalid write of %zu bytes at %s", N, hex(Addr).c_str()));
    makeWritable(It->second);
    uint64_t Off = A & PageMask;
    size_t Chunk = std::min<size_t>(PageSize - Off, N - Done);
    std::memcpy(It->second.Phys->data() + Off, In, Chunk);
    In += Chunk;
    Done += Chunk;
  }
  return Status::ok();
}

Status Memory::poke(uint64_t Addr, const uint8_t *In, size_t N) {
  size_t Done = 0;
  while (Done < N) {
    uint64_t A = Addr + Done;
    auto It = Pages.find(A / PageSize);
    if (It == Pages.end())
      return Status::error(
          format("invalid poke of %zu bytes at %s", N, hex(Addr).c_str()));
    makeWritable(It->second);
    uint64_t Off = A & PageMask;
    size_t Chunk = std::min<size_t>(PageSize - Off, N - Done);
    std::memcpy(It->second.Phys->data() + Off, In, Chunk);
    In += Chunk;
    Done += Chunk;
  }
  return Status::ok();
}

size_t Memory::fetch(uint64_t Addr, uint8_t *Out, size_t Max) const {
  size_t Done = 0;
  while (Done < Max) {
    uint64_t A = Addr + Done;
    const Entry *E = lookup(A);
    if (!E || !(E->Perms & PermX))
      break;
    uint64_t Off = A & PageMask;
    size_t Chunk = std::min<size_t>(PageSize - Off, Max - Done);
    std::memcpy(Out + Done, E->Phys->data() + Off, Chunk);
    Done += Chunk;
  }
  return Done;
}

Status Memory::read64(uint64_t Addr, uint64_t &V) const {
  return readInt(Addr, 8, V);
}

Status Memory::write64(uint64_t Addr, uint64_t V) {
  return writeInt(Addr, 8, V);
}

Status Memory::readInt(uint64_t Addr, unsigned Size, uint64_t &V) const {
  uint8_t Buf[8];
  assert(Size <= 8 && "scalar reads are at most 8 bytes");
  if (Status S = read(Addr, Buf, Size); !S)
    return S;
  V = 0;
  for (unsigned I = 0; I != Size; ++I)
    V |= static_cast<uint64_t>(Buf[I]) << (8 * I);
  return Status::ok();
}

Status Memory::writeInt(uint64_t Addr, unsigned Size, uint64_t V) {
  uint8_t Buf[8];
  assert(Size <= 8 && "scalar writes are at most 8 bytes");
  for (unsigned I = 0; I != Size; ++I)
    Buf[I] = static_cast<uint8_t>(V >> (8 * I));
  return write(Addr, Buf, Size);
}

size_t Memory::uniquePhysPageCount() const {
  std::unordered_set<const PhysPage *> Unique;
  for (const auto &[Idx, E] : Pages)
    Unique.insert(E.Phys.get());
  return Unique.size();
}
