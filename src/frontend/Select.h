//===- frontend/Select.h - Patch location selectors ------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two instrumentation applications evaluated in the paper (§6.1):
/// A1 patches every relative jmp/jcc (the basic-block-counting analog) and
/// A2 patches every instruction that may write through a heap pointer
/// (memory writes excluding %rsp- and %rip-based operands).
///
//===----------------------------------------------------------------------===//

#ifndef E9_FRONTEND_SELECT_H
#define E9_FRONTEND_SELECT_H

#include "x86/Insn.h"

#include <cstdint>
#include <vector>

namespace e9 {
namespace frontend {

/// Per-instruction predicate behind selectJumps (shared with the
/// pre-scan fused walk in Prescan.cpp).
bool isJumpSite(const x86::Insn &I);

/// Per-instruction predicate behind selectHeapWrites.
bool isHeapWriteSite(const x86::Insn &I);

/// A1: all relative jmp/jcc instructions (rel8 and rel32 forms).
std::vector<uint64_t> selectJumps(const std::vector<x86::Insn> &Insns);

/// A2: all instructions that may write to heap pointers — memory-operand
/// writes excluding %rsp/%rip bases and fs/gs segments (§6.3).
std::vector<uint64_t> selectHeapWrites(const std::vector<x86::Insn> &Insns);

/// Stress selector: every instruction (paper limitation L3).
std::vector<uint64_t> selectAll(const std::vector<x86::Insn> &Insns);

} // namespace frontend
} // namespace e9

#endif // E9_FRONTEND_SELECT_H
