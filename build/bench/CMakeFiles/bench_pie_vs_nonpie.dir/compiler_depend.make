# Empty compiler generated dependencies file for bench_pie_vs_nonpie.
# This may be replaced when dependencies are built.
