//===- x86/Scan.h - SIMD candidate pre-scan --------------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vectorized byte-signature scanner over `.text` that marks *candidate*
/// bytes — positions whose value could belong to the encoding of a
/// patchable instruction — before any instruction is fully decoded. The
/// frontend then runs the table-driven decoder only where the bitmap says
/// a candidate may start, and a cheap length-only walk everywhere else.
///
/// Soundness contract (what makes pre-scan safe): for every signature
/// class, if a fully decoded instruction satisfies the corresponding
/// selector predicate, then at least one byte inside the instruction's own
/// encoding [Address, Address + Length) is marked as a candidate. This
/// holds by construction:
///
///   - one-byte-map opcodes: the opcode byte value itself is in the
///     signature set, and the opcode byte is always inside the encoding;
///   - 0F-map opcodes: the literal 0F escape byte precedes the opcode, so
///     either a (0F, opcode) pair rule or the 0F byte itself is in the set;
///   - VEX/EVEX encodings: the C4/C5/62 prefix byte is always in the set,
///     since the decoder can reach map-0F semantics through them.
///
/// Sets may *over*-approximate freely (false positives only cost a full
/// decode); they must never under-approximate. The scalar kernel is the
/// oracle: the SSE2/AVX2 kernels are pinned byte-for-byte against it by
/// tests, and a runtime dispatcher (overridable with E9_SCAN_BACKEND=
/// scalar|sse2|avx2) picks the widest kernel the CPU supports.
///
//===----------------------------------------------------------------------===//

#ifndef E9_X86_SCAN_H
#define E9_X86_SCAN_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace e9 {
namespace x86 {

/// Signature classes, one per frontend selector.
enum class SigClass : uint8_t {
  Jumps,      ///< A1: relative jmp/jcc (rel8 and rel32 forms).
  HeapWrites, ///< A2: instructions that may write via a memory operand.
  All,        ///< Every instruction: pre-scan degenerates to full decode.
};

/// Scan backends in increasing width. Sse2/Avx2 exist only on x86; the
/// scalar kernel is always available and is the semantic oracle.
enum class ScanBackend : uint8_t { Scalar, Sse2, Avx2 };

/// Widest backend supported by this process (after the E9_SCAN_BACKEND
/// environment override, resolved once).
ScanBackend defaultScanBackend();

const char *scanBackendName(ScanBackend B);

/// True when \p B can run on this machine/build.
bool scanBackendAvailable(ScanBackend B);

/// Reference predicate: is \p Cur a candidate byte for \p C given the
/// previous byte \p Prev (0 at position zero)? Exactly the per-byte
/// semantics every kernel must reproduce.
bool isCandidateByte(SigClass C, uint8_t Prev, uint8_t Cur);

/// One bit per scanned byte: bit I set iff byte I is a candidate.
class CandidateMap {
public:
  CandidateMap() = default;

  /// Scans \p N bytes with the default (runtime-dispatched) backend.
  void build(const uint8_t *Bytes, size_t N, SigClass C) {
    buildWith(Bytes, N, C, defaultScanBackend());
  }

  /// Scans with an explicit backend (tests pin kernels against each
  /// other through this).
  void buildWith(const uint8_t *Bytes, size_t N, SigClass C, ScanBackend B);

  size_t size() const { return NBytes; }

  bool test(size_t I) const {
    return (Bits[I >> 6] >> (I & 63)) & 1;
  }

  /// Any candidate in [Lo, Hi)? Range is clamped to the scanned size.
  bool any(size_t Lo, size_t Hi) const;

  /// Number of candidate bytes (for stats/observability).
  size_t count() const;

private:
  std::vector<uint64_t> Bits;
  size_t NBytes = 0;
};

} // namespace x86
} // namespace e9

#endif // E9_X86_SCAN_H
