//===- bench/bench_granularity.cpp - Experiment E8 -------------*- C++ -*-===//
//
// Reproduces the §4 granularity trade-off: sweeping the grouping block
// size M over {1, 2, 4, 16, 64, 256} pages trades mapping count against
// physical memory. Paper reference: M=1 is most aggressive on memory but
// can exceed vm.max_map_count=65536 for very large patch sets; M>=64
// always stays below the limit for a single binary.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "core/Grouping.h"
#include "frontend/Prescan.h"
#include "lowfat/LowFat.h"

#include <cstdio>

using namespace e9;
using namespace e9::bench;
using namespace e9::frontend;
using namespace e9::workload;

int main() {
  std::printf("E8: §4 grouping granularity sweep (Chrome-analog, A1)\n");
  std::printf("Paper shape: mappings shrink and physical bytes grow as M "
              "rises;\nvm.max_map_count analog = %zu.\n\n",
              core::DefaultMaxMapCount);

  // Use the largest binary in the suite so the mapping pressure is real.
  SuiteEntry Chrome = browserSuite()[0];
  Workload W = generateWorkload(Chrome.Config);
  auto Locs = prescanSelect(W.Image, SelectorKind::Jumps);
  std::printf("binary %s: %zu patch locations\n\n",
              Chrome.Config.Name.c_str(), Locs.size());

  std::printf("%6s %12s %14s %12s %10s\n", "M", "mappings", "physKiB",
              "Size%", "<=limit");
  std::printf("-----------------------------------------------------------\n");
  for (unsigned M : {1u, 2u, 4u, 16u, 64u, 256u}) {
    RewriteOptions RO;
    RO.Patch.Spec.Kind = core::TrampolineKind::Empty;
    RO.Grouping.M = M;
    RO.ExtraReserved.push_back(lowfat::heapReservation());
    auto Out = rewrite(W.Image, Locs, RO);
    if (!Out.isOk()) {
      std::printf("%6u  rewrite error: %s\n", M, Out.reason().c_str());
      continue;
    }
    std::printf("%6u %12zu %14.1f %12.2f %10s\n", M,
                Out->Grouping.MappingCount,
                static_cast<double>(Out->Grouping.PhysBytes) / 1024.0,
                Out->sizePct(),
                Out->Grouping.MappingCount <= core::DefaultMaxMapCount
                    ? "yes"
                    : "NO");
  }
  return 0;
}
