file(REMOVE_RECURSE
  "libe9_support.a"
)
