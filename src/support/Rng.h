//===- support/Rng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic splitmix64-based RNG. Used by the workload
/// generator and the property tests; determinism per seed keeps every
/// experiment reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_RNG_H
#define E9_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace e9 {

/// splitmix64 generator: tiny state, good distribution, fully deterministic.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "Rng::below bound must be nonzero");
    return next() % Bound;
  }

  /// Returns a value uniformly distributed in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "Rng::range requires Lo <= Hi");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

} // namespace e9

#endif // E9_SUPPORT_RNG_H
