//===- core/Trampoline.h - Trampoline templates ----------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trampoline templates and their instantiation. A patch trampoline
/// implements the instrumentation payload, executes (a relocated copy of)
/// the displaced instruction, and jumps back to the next instruction.
/// Evictee trampolines (tactics T2/T3) only execute the displaced victim
/// and jump back. Sizes are computed before allocation (they are address-
/// independent); instantiation can still fail when a relocated operand
/// leaves rel32/disp32 range, in which case the tactic rolls back.
///
//===----------------------------------------------------------------------===//

#ifndef E9_CORE_TRAMPOLINE_H
#define E9_CORE_TRAMPOLINE_H

#include "support/Status.h"
#include "x86/Insn.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace e9 {
namespace core {

/// What a patch trampoline does before resuming the program.
enum class TrampolineKind {
  /// Nothing: displaced instruction + jump back. The paper's "empty
  /// instrumentation" used for the Table 1 Time% baseline.
  Empty,
  /// Flag-safe counter bump: `inc qword [abs32]` bracketed by pushfq/popfq
  /// and a red-zone skip. Used by the jump-census example (A1).
  Counter,
  /// Call a host hook with rdi = patch address (generic instrumentation).
  HookCall,
  /// LowFat redzone check (§6.3): lea rdi, [written-to operand]; call the
  /// check hook; then displaced instruction + jump back.
  LowFatCheck,
  /// Evictee trampoline (T2/T3): displaced victim + jump back only.
  Evictee,
  /// Binary patching: raw replacement code; the displaced instruction is
  /// NOT executed; the raw code ends by jumping to JumpBackTarget (emitted
  /// automatically).
  PatchBytes,
  /// Compositional template: an ordered list of TemplateOps (the analog
  /// of E9Patch's trampoline templates). A trailing JumpBack is appended
  /// automatically when the last op is not already a control transfer.
  Composed,
  /// A compiled, named template (protocol frontends): a TemplateProgram
  /// compiled once from the src/api macro grammar and instantiated per
  /// site with bound operands ($site = patch address, $arg = per-patch
  /// argument). Same size-precompute / rel32-rollback contract as the
  /// built-in kinds.
  Template,
};

/// A compiled trampoline template, shared by every site that instantiates
/// it. Produced by the src/api template compiler (from the textual macro
/// grammar) but consumed here so the core stays frontend-agnostic.
/// Operands that depend on the patch site stay symbolic until
/// buildTrampoline binds them; everything else is pre-encoded, so a
/// program's instantiated size is a pure function of the displaced
/// instruction (the size-precompute contract).
struct TemplateProgram {
  struct Op {
    enum class Kind {
      Raw,        ///< Pre-encoded position-independent bytes.
      Displaced,  ///< Relocated copy of the patched instruction.
      CounterInc, ///< Flag-safe `inc qword [abs32 operand]`.
      HookCall,   ///< Register-preserving host-hook call (operand = hook).
      MovRegImm,  ///< mov r64, imm64 with a bindable operand.
      JumpBack,   ///< jmp to the instruction after the patch site.
      JumpTo,     ///< jmp to the absolute address named by the operand.
    };
    /// Where the operand value comes from at instantiation time.
    enum class Bind : uint8_t {
      Imm,  ///< The literal Imm field (compile-time constant).
      Site, ///< The patch address.
      Arg,  ///< TrampolineSpec::TemplateArg (per-patch request argument).
    };
    Kind K = Kind::Raw;
    Bind B = Bind::Imm;
    std::vector<uint8_t> Raw; ///< Kind::Raw payload.
    uint64_t Imm = 0;         ///< Bind::Imm operand value.
    x86::Reg R = x86::Reg::RAX; ///< Kind::MovRegImm destination.
  };
  std::string Name;
  std::vector<Op> Ops;
};

/// One building block of a Composed trampoline.
struct TemplateOp {
  enum class Kind {
    Raw,        ///< Verbatim bytes (position-independent code).
    Displaced,  ///< The relocated copy of the patched instruction.
    CounterInc, ///< Flag-safe `inc qword [abs32 Addr]` (red-zone aware).
    HookCall,   ///< Register-preserving host-hook call (rdi = site addr).
    JumpBack,   ///< jmp to the instruction after the patch site.
    JumpTo,     ///< jmp to an absolute address (Addr).
  };
  Kind K = Kind::Raw;
  std::vector<uint8_t> Raw;
  uint64_t Addr = 0;

  static TemplateOp raw(std::vector<uint8_t> Bytes) {
    TemplateOp Op;
    Op.K = Kind::Raw;
    Op.Raw = std::move(Bytes);
    return Op;
  }
  static TemplateOp displaced() {
    TemplateOp Op;
    Op.K = Kind::Displaced;
    return Op;
  }
  static TemplateOp counterInc(uint64_t CounterAddr) {
    TemplateOp Op;
    Op.K = Kind::CounterInc;
    Op.Addr = CounterAddr;
    return Op;
  }
  static TemplateOp hookCall(uint64_t HookAddr) {
    TemplateOp Op;
    Op.K = Kind::HookCall;
    Op.Addr = HookAddr;
    return Op;
  }
  static TemplateOp jumpBack() {
    TemplateOp Op;
    Op.K = Kind::JumpBack;
    return Op;
  }
  static TemplateOp jumpTo(uint64_t Target) {
    TemplateOp Op;
    Op.K = Kind::JumpTo;
    Op.Addr = Target;
    return Op;
  }
};

/// A trampoline template, instantiated once per patch location.
struct TrampolineSpec {
  TrampolineKind Kind = TrampolineKind::Empty;
  uint64_t CounterAddr = 0; ///< Counter: abs32 address of a u64 counter.
  uint64_t HookAddr = 0;    ///< HookCall / LowFatCheck: host hook address.
  std::vector<uint8_t> Raw; ///< PatchBytes: replacement code.
  uint64_t JumpBackTarget = 0; ///< PatchBytes: resume address (0 = next insn).
  std::vector<TemplateOp> Ops; ///< Composed: the op sequence.
  /// Template: the compiled program (shared across sites; never mutated
  /// after compilation, so concurrent instantiation is safe).
  std::shared_ptr<const TemplateProgram> Program;
  uint64_t TemplateArg = 0; ///< Template: the $arg operand for this site.
};

/// Exact byte size of the instantiated trampoline for instruction \p I.
/// Returns 0 when the instruction cannot be displaced (e.g. loop/jcxz) or
/// the spec does not apply (LowFatCheck without a memory operand).
unsigned trampolineSize(const TrampolineSpec &Spec, const x86::Insn &I);

/// Instantiates the trampoline at address \p Addr for patch-location
/// instruction \p I (original bytes \p OrigBytes). The returned bytes have
/// exactly trampolineSize() length.
Result<std::vector<uint8_t>> buildTrampoline(const TrampolineSpec &Spec,
                                             const x86::Insn &I,
                                             const uint8_t *OrigBytes,
                                             uint64_t Addr);

} // namespace core
} // namespace e9

#endif // E9_CORE_TRAMPOLINE_H
