//===- api/Driver.cpp -----------------------------------------*- C++ -*-===//

#include "api/Driver.h"

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

using namespace e9;
using namespace e9::api;

DriverResult api::runScript(std::istream &In, std::ostream &Responses,
                            const DriverOptions &Opts) {
  Session S([&Responses](std::string_view Line) {
    Responses << Line << '\n';
  }, Opts);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    // Blank lines separate jobs visually in hand-written scripts.
    std::string_view Trimmed(Line);
    while (!Trimmed.empty() &&
           (Trimmed.back() == '\r' || Trimmed.back() == ' '))
      Trimmed.remove_suffix(1);
    if (Trimmed.empty())
      continue;
    if (!S.feed(LineNo, Trimmed))
      return S.stats();
  }
  S.finish(LineNo + 1);
  return S.stats();
}
