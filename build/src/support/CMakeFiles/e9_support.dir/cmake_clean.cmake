file(REMOVE_RECURSE
  "CMakeFiles/e9_support.dir/FaultInjector.cpp.o"
  "CMakeFiles/e9_support.dir/FaultInjector.cpp.o.d"
  "CMakeFiles/e9_support.dir/Format.cpp.o"
  "CMakeFiles/e9_support.dir/Format.cpp.o.d"
  "CMakeFiles/e9_support.dir/IntervalSet.cpp.o"
  "CMakeFiles/e9_support.dir/IntervalSet.cpp.o.d"
  "CMakeFiles/e9_support.dir/Status.cpp.o"
  "CMakeFiles/e9_support.dir/Status.cpp.o.d"
  "CMakeFiles/e9_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/e9_support.dir/ThreadPool.cpp.o.d"
  "libe9_support.a"
  "libe9_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
