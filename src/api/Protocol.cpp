//===- api/Protocol.cpp ---------------------------------------*- C++ -*-===//

#include "api/Protocol.h"

#include "support/Format.h"

using namespace e9;
using namespace e9::api;

namespace {

/// Field value kinds the schema can require. U64 accepts both the
/// integral-number and "0x..." hex-string renderings (jsonToU64).
enum class FieldKind { Str, U64 };

struct FieldSpec {
  const char *Name;
  FieldKind Kind;
  bool Required;
};

struct MessageSpec {
  const char *TypeName;
  MsgType Type;
  const FieldSpec *Fields;
  size_t NumFields;
};

constexpr FieldSpec HelloFields[] = {
    {"version", FieldKind::Str, true},
    // Clients may advertise their own capability list; the server only
    // echoes its own, so the field is accepted and ignored.
    {"capabilities", FieldKind::Str, false},
};
constexpr FieldSpec BinaryFields[] = {
    {"path", FieldKind::Str, true},
};
constexpr FieldSpec TemplateFields[] = {
    {"name", FieldKind::Str, true},
    {"body", FieldKind::Str, true},
};
constexpr FieldSpec PatchFields[] = {
    {"template", FieldKind::Str, true},
    // Exactly one of addr/select is required; enforced below, the table
    // cannot express either-or.
    {"addr", FieldKind::U64, false},
    {"select", FieldKind::Str, false},
    {"arg", FieldKind::U64, false},
};
constexpr FieldSpec OptionFields[] = {
    {"name", FieldKind::Str, true},
    {"value", FieldKind::Str, true},
};
constexpr FieldSpec EmitFields[] = {
    {"path", FieldKind::Str, true},
};

constexpr MessageSpec Specs[] = {
    {"hello", MsgType::Hello, HelloFields, std::size(HelloFields)},
    {"binary", MsgType::Binary, BinaryFields, std::size(BinaryFields)},
    {"template", MsgType::Template, TemplateFields,
     std::size(TemplateFields)},
    {"patch", MsgType::Patch, PatchFields, std::size(PatchFields)},
    {"option", MsgType::Option, OptionFields, std::size(OptionFields)},
    {"emit", MsgType::Emit, EmitFields, std::size(EmitFields)},
};

} // namespace

const char *api::protocolCapabilities() {
  // One token per optional server-side feature a client may rely on:
  // the template compiler, the self-verifying repair loop, and the
  // metrics/profile observability fields in status responses.
  return "templates,repair,profile";
}

bool api::parseProtocolVersion(std::string_view V, unsigned &Major,
                               unsigned &Minor) {
  Major = Minor = 0;
  size_t I = 0;
  if (I == V.size() || V[I] < '0' || V[I] > '9')
    return false;
  for (; I != V.size() && V[I] >= '0' && V[I] <= '9'; ++I) {
    Major = Major * 10 + unsigned(V[I] - '0');
    if (Major > 1000)
      return false;
  }
  if (I == V.size())
    return true; // "1" == "1.0"
  if (V[I] != '.')
    return false;
  ++I;
  if (I == V.size() || V[I] < '0' || V[I] > '9')
    return false;
  for (; I != V.size() && V[I] >= '0' && V[I] <= '9'; ++I) {
    Minor = Minor * 10 + unsigned(V[I] - '0');
    if (Minor > 1000)
      return false;
  }
  return I == V.size();
}

const char *api::msgTypeName(MsgType T) {
  for (const MessageSpec &S : Specs)
    if (S.Type == T)
      return S.TypeName;
  return "?";
}

Result<Message> api::parseMessage(std::string_view Line) {
  using RM = Result<Message>;
  auto Obj = obs::parseFlatObject(Line);
  if (!Obj.has_value())
    return RM::error("malformed JSONL request (not a flat JSON object)");

  auto TypeIt = Obj->find("type");
  if (TypeIt == Obj->end() || !TypeIt->second.isString())
    return RM::error("request is missing the string \"type\" field");

  const MessageSpec *Spec = nullptr;
  for (const MessageSpec &S : Specs)
    if (TypeIt->second.Str == S.TypeName) {
      Spec = &S;
      break;
    }
  if (!Spec)
    return RM::error(format("unknown message type \"%s\"",
                            TypeIt->second.Str.c_str()));

  for (size_t I = 0; I != Spec->NumFields; ++I) {
    const FieldSpec &F = Spec->Fields[I];
    auto It = Obj->find(F.Name);
    if (It == Obj->end()) {
      if (F.Required)
        return RM::error(format("%s: missing required field \"%s\"",
                                Spec->TypeName, F.Name));
      continue;
    }
    bool TypeOk = false;
    switch (F.Kind) {
    case FieldKind::Str:
      TypeOk = It->second.isString();
      break;
    case FieldKind::U64:
      TypeOk = obs::jsonToU64(It->second).has_value();
      break;
    }
    if (!TypeOk)
      return RM::error(
          format("%s: field \"%s\" must be %s", Spec->TypeName, F.Name,
                 F.Kind == FieldKind::Str
                     ? "a string"
                     : "an unsigned integer or a \"0x...\" hex string"));
  }
  for (const auto &[K, V] : *Obj) {
    if (K == "type")
      continue;
    bool Known = false;
    for (size_t I = 0; I != Spec->NumFields; ++I)
      if (K == Spec->Fields[I].Name)
        Known = true;
    if (!Known)
      return RM::error(
          format("%s: unknown field \"%s\"", Spec->TypeName, K.c_str()));
  }

  if (Spec->Type == MsgType::Patch) {
    bool HasAddr = Obj->count("addr") != 0;
    bool HasSelect = Obj->count("select") != 0;
    if (HasAddr == HasSelect)
      return RM::error(
          "patch: exactly one of \"addr\" and \"select\" is required");
  }

  Message M;
  M.Type = Spec->Type;
  M.Fields = std::move(*Obj);
  M.Fields.erase("type");
  return M;
}
