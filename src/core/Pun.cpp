//===- core/Pun.cpp -------------------------------------------*- C++ -*-===//

#include "core/Pun.h"

using namespace e9;
using namespace e9::core;

std::optional<PunRange> core::punTargetRange(uint64_t JumpAddr, unsigned Pads,
                                             uint64_t WritableEnd,
                                             const uint8_t Rel32Bytes[4]) {
  // The opcode byte must be writable, and the whole (padded) encoding must
  // stay within the 15-byte architectural instruction limit.
  uint64_t OpcodeAddr = JumpAddr + Pads;
  if (OpcodeAddr + 1 > WritableEnd)
    return std::nullopt;
  if (Pads + 5 > 15)
    return std::nullopt;

  uint64_t RelField = OpcodeAddr + 1;
  unsigned Free = 0;
  if (WritableEnd > RelField) {
    uint64_t W = WritableEnd - RelField;
    Free = W > 4 ? 4 : static_cast<unsigned>(W);
  }

  uint32_t Fixed = 0;
  for (unsigned I = Free; I != 4; ++I)
    Fixed |= static_cast<uint32_t>(Rel32Bytes[I]) << (8 * I);

  PunRange R;
  R.FreeBytes = Free;
  R.Fixed = Fixed;
  R.Base = RelField + 4;

  // Target interval: Base + sext32(Fixed) .. + 256^k, clamped to the
  // canonical user address range [0, 2^47). Arithmetic in __int128 so that
  // non-PIE low bases underflowing into "negative addresses" clamp away
  // naturally (this is exactly the paper's invalid-negative-offset case).
  __int128 Lo = static_cast<__int128>(R.Base) +
                static_cast<int32_t>(Fixed);
  __int128 Span = Free >= 4 ? (static_cast<__int128>(1) << 32)
                            : (static_cast<__int128>(1) << (8 * Free));
  __int128 Hi = Lo + Span;
  if (Free == 4) {
    // Full rel32 freedom: the interval is Base ± 2GiB.
    Lo = static_cast<__int128>(R.Base) - (static_cast<__int128>(1) << 31);
    Hi = static_cast<__int128>(R.Base) + (static_cast<__int128>(1) << 31);
  }
  const __int128 Canonical = static_cast<__int128>(1) << 47;
  if (Lo < 0)
    Lo = 0;
  if (Hi > Canonical)
    Hi = Canonical;
  if (Lo >= Hi)
    return std::nullopt;
  R.Targets = Interval{static_cast<uint64_t>(Lo), static_cast<uint64_t>(Hi)};
  return R;
}
