//===- api/Template.h - Trampoline template compiler -----------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the textual trampoline-template grammar carried by protocol
/// "template" messages into core::TemplateProgram. A template body is a
/// whitespace-separated sequence of macros:
///
///   $instruction          relocated copy of the patched instruction
///   $continue             jmp back to the instruction after the patch
///   $bytes(B,B,...)       verbatim bytes (decimal or 0x literals)
///   $hex(HH HH ...)       verbatim bytes as hex nibble pairs
///   $counter(OP)          flag-safe `inc qword [abs32 OP]` (red-zone safe)
///   $hook(OP)             register-preserving host-hook call to OP
///   $jump(OP)             jmp to the absolute address OP
///   $asm(INSN; INSN; ...) tiny textual assembler (x86/Assembler subset):
///                         nop / int3 / ud2 / pushfq / popfq /
///                         push R / pop R / mov R, OP / jmp OP
///
/// where OP is an integer literal, `$site` (the patch address) or `$arg`
/// (the per-patch-request argument), bound at instantiation time. A
/// template is compiled once, cached by name, and instantiated per site
/// as TrampolineKind::Template; when the last item is not a control
/// transfer an implicit $continue is appended. Every malformed body is a
/// compile-time error (fail closed), never a silently-wrong trampoline.
///
//===----------------------------------------------------------------------===//

#ifndef E9_API_TEMPLATE_H
#define E9_API_TEMPLATE_H

#include "core/Trampoline.h"
#include "support/Status.h"

#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace e9 {
namespace api {

/// Compiles \p Body (the macro grammar above) into a template program
/// named \p Name. Returns a descriptive error for any malformed input.
Result<core::TemplateProgram> compileTemplate(const std::string &Name,
                                              std::string_view Body);

/// The compile-once template cache: protocol "template" messages define
/// entries, "patch" messages look them up by name. Redefining a *live*
/// entry is a protocol error (fail closed) — a frontend that silently
/// replaced a template mid-stream would make earlier patch requests mean
/// something else after the fact.
///
/// The cache is bounded: at most \p Capacity compiled programs are kept,
/// evicting the least-recently-*instantiated* entry first (find() touches
/// recency). An evicted name may be defined again — the body simply
/// recompiles — and programs still referenced by in-flight patch requests
/// stay alive through their shared_ptr regardless of eviction.
class TemplateCache {
public:
  explicit TemplateCache(size_t Capacity = 128) : Capacity(Capacity) {}

  /// Compiles and stores \p Body under \p Name. Fails on compile errors
  /// and on names currently in the cache.
  Status define(const std::string &Name, std::string_view Body);

  /// Returns the compiled program, or nullptr when undefined/evicted.
  std::shared_ptr<const core::TemplateProgram>
  find(const std::string &Name) const {
    auto It = Map.find(Name);
    if (It == Map.end())
      return nullptr;
    It->second.LastUsed = ++Clock;
    return It->second.Prog;
  }

  size_t size() const { return Map.size(); }
  uint64_t evictions() const { return Evictions; }

private:
  struct Entry {
    std::shared_ptr<const core::TemplateProgram> Prog;
    /// Logical timestamp of the last lookup (or definition). Mutable so
    /// that const find() can touch it — recency is not logical state.
    mutable uint64_t LastUsed = 0;
  };

  void evictOne();

  std::map<std::string, Entry> Map;
  size_t Capacity;
  mutable uint64_t Clock = 0;
  uint64_t Evictions = 0;
};

} // namespace api
} // namespace e9

#endif // E9_API_TEMPLATE_H
