# Empty dependencies file for e9_elf.
# This may be replaced when dependencies are built.
