file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tactics.dir/bench_ablation_tactics.cpp.o"
  "CMakeFiles/bench_ablation_tactics.dir/bench_ablation_tactics.cpp.o.d"
  "bench_ablation_tactics"
  "bench_ablation_tactics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tactics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
