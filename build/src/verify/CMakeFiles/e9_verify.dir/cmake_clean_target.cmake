file(REMOVE_RECURSE
  "libe9_verify.a"
)
