//===- core/Alloc.cpp -----------------------------------------*- C++ -*-===//

#include "core/Alloc.h"

#include "support/FaultInjector.h"

#include <cassert>

using namespace e9;
using namespace e9::core;

namespace {
constexpr uint64_t PageSize = 4096;

uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }
} // namespace

std::optional<uint64_t> Allocator::allocate(uint64_t Size,
                                            const Interval &Bound) {
  if (Size == 0 || Bound.empty())
    return std::nullopt;
  if (E9_FAULT_POINT("core.alloc.allocate"))
    return std::nullopt; // Simulated address-space exhaustion.

  // Pass 1: extend an open bump zone whose cursor starts inside the
  // bound. This packs trampolines with compatible constraints into the
  // same virtual pages. Only the start address is constrained by the pun
  // window; the extent may run past it. Zones are ordered by cursor, so
  // the first in-bound candidate is one lower_bound away; zones too small
  // for this request are retired as the scan passes them (their tail
  // stays free in `Used`, where pass 2 can still pack it).
  if (PackingEnabled) {
    auto It = Zones.lower_bound(Bound.Lo);
    while (It != Zones.end() && It->first < Bound.Hi) {
      ++ProbeSteps;
      uint64_t At = It->first;
      uint64_t End = It->second;
      if (End - At < Size) {
        ++ZonesRetired;
        It = Zones.erase(It); // Retire: can never serve this request.
        continue;
      }
      if (Used.overlaps(At, At + Size)) {
        ++It; // A foreign allocation landed inside the zone; keep it.
        continue;
      }
      Zones.erase(It);
      if (At + Size < End)
        Zones.emplace(At + Size, End);
      Used.insert(At, At + Size);
      Allocs.emplace(At, Size);
      AllocatedBytes += Size;
      ++ZoneExtends;
      return At;
    }
  }

  // Pass 2: lowest free start inside the bound — preferring the window
  // above SearchBase when it applies — and open a fresh zone covering the
  // rest of the page for future packing.
  std::optional<uint64_t> At;
  if (SearchBase > Bound.Lo && SearchBase < Bound.Hi)
    At = Used.findFreeStart(Interval{SearchBase, Bound.Hi}, Size);
  if (!At.has_value())
    At = Used.findFreeStart(Bound, Size);
  if (!At.has_value()) {
    ++FailedProbes;
    return std::nullopt;
  }
  Used.insert(*At, *At + Size);
  Allocs.emplace(*At, Size);
  AllocatedBytes += Size;
  ++ZoneOpens;
  uint64_t ZoneEnd = alignUp(*At + Size, PageSize);
  if (ZoneEnd > *At + Size) {
    auto [It, Inserted] = Zones.emplace(*At + Size, ZoneEnd);
    if (!Inserted && It->second < ZoneEnd)
      It->second = ZoneEnd; // Keep the larger of two coinciding tails.
    notePeak();
  }
  return At;
}

void Allocator::free(uint64_t Addr, uint64_t Size) {
  auto It = Allocs.find(Addr);
  assert(It != Allocs.end() && It->second == Size &&
         "freeing an unknown allocation");
  (void)Size;
  Used.erase(Addr, Addr + It->second);
  AllocatedBytes -= It->second;
  Allocs.erase(It);
}
