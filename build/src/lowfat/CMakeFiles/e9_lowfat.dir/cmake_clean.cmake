file(REMOVE_RECURSE
  "CMakeFiles/e9_lowfat.dir/LowFat.cpp.o"
  "CMakeFiles/e9_lowfat.dir/LowFat.cpp.o.d"
  "libe9_lowfat.a"
  "libe9_lowfat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_lowfat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
