//===- tests/elf_test.cpp - ELF image/serialization tests -----*- C++ -*-===//

#include "elf/Image.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace e9;
using namespace e9::elf;

namespace {

Image makeSampleImage() {
  Image Img;
  Img.Entry = 0x401000;
  Img.Pie = false;

  Segment Text;
  Text.VAddr = 0x401000;
  Text.Bytes = {0x90, 0x90, 0xc3};
  Text.MemSize = Text.Bytes.size();
  Text.Flags = PF_R | PF_X;
  Text.Name = "text";
  Img.Segments.push_back(Text);

  Segment Data;
  Data.VAddr = 0x600000;
  Data.Bytes = {1, 2, 3, 4};
  Data.MemSize = 0x2000; // trailing .bss
  Data.Flags = PF_R | PF_W;
  Data.Name = "data";
  Img.Segments.push_back(Data);
  return Img;
}

} // namespace

TEST(Image, FindSegment) {
  Image Img = makeSampleImage();
  ASSERT_NE(Img.findSegment(0x401001), nullptr);
  EXPECT_EQ(Img.findSegment(0x401001)->Name, "text");
  // .bss tail is part of the segment even without file bytes.
  ASSERT_NE(Img.findSegment(0x601fff), nullptr);
  EXPECT_EQ(Img.findSegment(0x602000), nullptr);
  EXPECT_EQ(Img.findSegment(0x100), nullptr);
}

TEST(Image, TextSegment) {
  Image Img = makeSampleImage();
  ASSERT_NE(Img.textSegment(), nullptr);
  EXPECT_EQ(Img.textSegment()->VAddr, 0x401000u);
}

TEST(Image, ReadWriteBytes) {
  Image Img = makeSampleImage();
  uint8_t B[2];
  ASSERT_TRUE(Img.readBytes(0x401001, B, 2));
  EXPECT_EQ(B[0], 0x90);
  EXPECT_EQ(B[1], 0xc3);
  uint8_t W = 0xcc;
  ASSERT_TRUE(Img.writeBytes(0x401000, &W, 1));
  ASSERT_TRUE(Img.readBytes(0x401000, B, 1));
  EXPECT_EQ(B[0], 0xcc);
  // Reads past file-backed content fail (that is .bss).
  EXPECT_FALSE(Img.readBytes(0x600004, B, 1));
  EXPECT_FALSE(Img.readBytes(0x700000, B, 1));
}

TEST(ElfFile, RoundTripBasic) {
  Image Img = makeSampleImage();
  std::vector<uint8_t> Bytes = write(Img);
  auto Back = read(Bytes);
  ASSERT_TRUE(Back.isOk()) << Back.reason();
  EXPECT_EQ(Back->Entry, Img.Entry);
  EXPECT_FALSE(Back->Pie);
  ASSERT_EQ(Back->Segments.size(), 2u);
  EXPECT_EQ(Back->Segments[0].VAddr, 0x401000u);
  EXPECT_EQ(Back->Segments[0].Bytes, Img.Segments[0].Bytes);
  EXPECT_EQ(Back->Segments[1].MemSize, 0x2000u);
  EXPECT_EQ(Back->Segments[1].Bytes, Img.Segments[1].Bytes);
}

TEST(ElfFile, RoundTripPie) {
  Image Img = makeSampleImage();
  Img.Pie = true;
  auto Back = read(write(Img));
  ASSERT_TRUE(Back.isOk());
  EXPECT_TRUE(Back->Pie);
}

TEST(ElfFile, RoundTripMappingNote) {
  Image Img = makeSampleImage();
  PhysBlock B1;
  B1.Bytes.assign(4096, 0xaa);
  PhysBlock B2;
  B2.Bytes.assign(8192, 0xbb);
  Img.Blocks = {B1, B2};
  Img.Mappings.push_back(Mapping{0x10000000, 0, PF_R | PF_X, 0, 4096});
  Img.Mappings.push_back(Mapping{0x20000000, 0, PF_R | PF_X, 0, 4096});
  Img.Mappings.push_back(Mapping{0x30000000, 1, PF_R | PF_X, 0, 8192});

  auto Back = read(write(Img));
  ASSERT_TRUE(Back.isOk()) << Back.reason();
  ASSERT_EQ(Back->Blocks.size(), 2u);
  EXPECT_EQ(Back->Blocks[0].Bytes, B1.Bytes);
  EXPECT_EQ(Back->Blocks[1].Bytes, B2.Bytes);
  ASSERT_EQ(Back->Mappings.size(), 3u);
  EXPECT_EQ(Back->Mappings[1].VAddr, 0x20000000u);
  EXPECT_EQ(Back->Mappings[2].BlockIndex, 1u);
  EXPECT_EQ(Back->Mappings[2].Size, 8192u);
}

TEST(ElfFile, SegmentOffsetsAreCongruent) {
  Image Img = makeSampleImage();
  Img.Segments[0].VAddr = 0x401234; // deliberately misaligned vaddr
  std::vector<uint8_t> Bytes = write(Img);
  // Parse the first program header to check p_offset ≡ p_vaddr (mod 4096).
  auto Rd = [&](size_t Off, unsigned N) {
    uint64_t V = 0;
    for (unsigned I = 0; I != N; ++I)
      V |= static_cast<uint64_t>(Bytes[Off + I]) << (8 * I);
    return V;
  };
  uint64_t PhOff = Rd(32, 8);
  uint64_t POffset = Rd(PhOff + 8, 8);
  uint64_t PVAddr = Rd(PhOff + 16, 8);
  EXPECT_EQ(POffset % 4096, PVAddr % 4096);
}

TEST(ElfFile, RejectsGarbage) {
  EXPECT_FALSE(read({}).isOk());
  EXPECT_FALSE(read({1, 2, 3, 4}).isOk());
  std::vector<uint8_t> Bytes = write(makeSampleImage());
  Bytes[0] = 0x00; // break the magic
  EXPECT_FALSE(read(Bytes).isOk());
}

TEST(ElfFile, RejectsTruncatedSegments) {
  std::vector<uint8_t> Bytes = write(makeSampleImage());
  Bytes.resize(200); // headers survive, content gone
  EXPECT_FALSE(read(Bytes).isOk());
}

TEST(ElfFile, FileRoundTrip) {
  Image Img = makeSampleImage();
  std::string Path = ::testing::TempDir() + "/e9_elf_test.bin";
  ASSERT_TRUE(writeFile(Img, Path));
  auto Back = readFile(Path);
  ASSERT_TRUE(Back.isOk()) << Back.reason();
  EXPECT_EQ(Back->Entry, Img.Entry);
  EXPECT_FALSE(readFile(Path + ".missing").isOk());
}

TEST(ElfFile, ReadableByRealElfParser) {
  // The output should start with a canonical ELF64 header.
  std::vector<uint8_t> Bytes = write(makeSampleImage());
  ASSERT_GE(Bytes.size(), 64u);
  EXPECT_EQ(Bytes[0], 0x7f);
  EXPECT_EQ(Bytes[1], 'E');
  EXPECT_EQ(Bytes[4], 2); // ELFCLASS64
  EXPECT_EQ(Bytes[5], 1); // little endian
  EXPECT_EQ(Bytes[18] | (Bytes[19] << 8), 0x3e); // EM_X86_64
}

// --- Corrupt-ELF corpus: hostile inputs must fail cleanly -------------------

namespace {

/// A rewritten-style image: segments plus mapping note plus B0 table, so
/// the corpus exercises every parsing path.
Image makeNotedImage() {
  Image Img = makeSampleImage();
  PhysBlock B1;
  B1.Bytes.assign(4096, 0xaa);
  PhysBlock B2;
  B2.Bytes.assign(8192, 0xbb);
  Img.Blocks = {B1, B2};
  Img.Mappings.push_back(Mapping{0x10000000, 0, PF_R | PF_X, 0, 4096});
  Img.Mappings.push_back(Mapping{0x30000000, 1, PF_R | PF_X, 0, 8192});
  Img.B0Sites[0x401000] = {0x90};
  Img.B0Sites[0x401001] = {0x90};
  return Img;
}

void poke(std::vector<uint8_t> &Bytes, uint64_t Off, uint64_t V, unsigned N) {
  for (unsigned I = 0; I != N; ++I)
    Bytes[Off + I] = static_cast<uint8_t>(V >> (8 * I));
}

} // namespace

// writeFile's zero-copy mmap path and the in-memory write() serializer
// must produce identical bytes, including for note-carrying images; the
// span-overload reader must accept them.
TEST(ElfFile, MmapWriteFileMatchesInMemoryWrite) {
  for (bool Noted : {false, true}) {
    Image Img = Noted ? makeNotedImage() : makeSampleImage();
    std::vector<uint8_t> InMemory = write(Img);
    EXPECT_EQ(InMemory.size(), writtenSize(Img));

    std::string Path = ::testing::TempDir() + "/e9_elf_mmap.bin";
    ASSERT_TRUE(writeFile(Img, Path));
    std::ifstream In(Path, std::ios::binary);
    std::vector<uint8_t> OnDisk((std::istreambuf_iterator<char>(In)),
                                std::istreambuf_iterator<char>());
    EXPECT_EQ(OnDisk, InMemory) << "noted=" << Noted;

    auto Back = read(OnDisk.data(), OnDisk.size());
    ASSERT_TRUE(Back.isOk()) << Back.reason();
    EXPECT_EQ(Back->Entry, Img.Entry);
    std::remove(Path.c_str());
  }
}

TEST(CorruptElf, TruncationSweepNeverCrashes) {
  // Every truncation of a full-featured file must parse cleanly or fail
  // cleanly — never crash or read out of bounds.
  std::vector<uint8_t> Full = write(makeNotedImage());
  size_t Checked = 0;
  for (size_t Len = 0; Len < Full.size();
       Len += (Len < 256 ? 1 : 97)) {
    std::vector<uint8_t> Cut(Full.begin(), Full.begin() + Len);
    auto R = read(Cut);
    if (R.isOk()) {
      // A truncation that still parses must round-trip without crashing.
      (void)write(*R);
    }
    ++Checked;
  }
  EXPECT_GT(Checked, 300u);
  // The full file still parses.
  EXPECT_TRUE(read(Full).isOk());
}

TEST(CorruptElf, HeaderFieldCorruptionsNameTheProblem) {
  std::vector<uint8_t> Full = write(makeNotedImage());

  {
    std::vector<uint8_t> B = Full;
    poke(B, 16, 7, 2); // e_type: not EXEC/DYN
    auto R = read(B);
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.reason().find("type"), std::string::npos) << R.reason();
  }
  {
    std::vector<uint8_t> B = Full;
    poke(B, 54, 32, 2); // e_phentsize
    auto R = read(B);
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.reason().find("entry size"), std::string::npos);
  }
  {
    std::vector<uint8_t> B = Full;
    poke(B, 56, 0xffff, 2); // e_phnum: far past the file
    auto R = read(B);
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.reason().find("out of bounds"), std::string::npos);
  }
  {
    std::vector<uint8_t> B = Full;
    poke(B, 32, B.size() + 1, 8); // e_phoff past the end
    EXPECT_FALSE(read(B).isOk());
  }
}

TEST(CorruptElf, SegmentFieldCorruptionsAreRejectedWithOffsets) {
  std::vector<uint8_t> Full = write(makeNotedImage());
  const uint64_t Ph0 = 64; // first program header

  {
    std::vector<uint8_t> B = Full;
    poke(B, Ph0 + 32, 1u << 30, 8); // p_filesz huge
    auto R = read(B);
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.reason().find("out of bounds"), std::string::npos);
    EXPECT_NE(R.reason().find("0x"), std::string::npos)
        << "error should carry offsets: " << R.reason();
  }
  {
    std::vector<uint8_t> B = Full;
    poke(B, Ph0 + 40, 1, 8); // p_memsz < p_filesz (3)
    auto R = read(B);
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.reason().find("smaller than"), std::string::npos);
  }
  {
    std::vector<uint8_t> B = Full;
    poke(B, Ph0 + 16, ~0ull - 1, 8); // p_vaddr wraps with memsz
    EXPECT_FALSE(read(B).isOk());
  }
  {
    // Second segment moved on top of the first: overlap is refused.
    std::vector<uint8_t> B = Full;
    poke(B, Ph0 + 56 + 16, 0x401000, 8);
    auto R = read(B);
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.reason().find("overlaps"), std::string::npos);
  }
}

TEST(CorruptElf, MappingNoteCorruptionsAreRejected) {
  {
    Image Img = makeNotedImage();
    Img.Mappings[0].BlockIndex = 9;
    auto R = read(write(Img));
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.reason().find("missing block"), std::string::npos);
  }
  {
    Image Img = makeNotedImage();
    Img.Mappings[0].Offset = ~0ull - 100; // offset + size wraps
    Img.Mappings[0].Size = 200;
    EXPECT_FALSE(read(write(Img)).isOk());
  }
  {
    Image Img = makeNotedImage();
    Img.Mappings[0].VAddr += 1; // misaligned
    auto R = read(write(Img));
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.reason().find("aligned"), std::string::npos);
  }
}

TEST(ElfFile, WrittenSizeMatchesWrite) {
  // writtenSize() must plan exactly the layout write() emits, for plain
  // images, noted (rewritten) images, and empty-ish edge cases.
  EXPECT_EQ(writtenSize(makeSampleImage()), write(makeSampleImage()).size());
  EXPECT_EQ(writtenSize(makeNotedImage()), write(makeNotedImage()).size());
  Image Empty;
  EXPECT_EQ(writtenSize(Empty), write(Empty).size());
  Image Noted = makeNotedImage();
  Noted.B0Sites.emplace(0x400100, std::vector<uint8_t>{0x90, 0x90, 0x90});
  EXPECT_EQ(writtenSize(Noted), write(Noted).size());
}

TEST(CorruptElf, SeededBitFlipsNeverCrash) {
  // 500 seeded single-bit flips anywhere in the file: read() must either
  // produce a valid image (which re-serializes) or a clean error.
  std::vector<uint8_t> Full = write(makeNotedImage());
  uint64_t X = 0x9e3779b97f4a7c15ULL;
  size_t OkCount = 0, ErrCount = 0;
  for (int I = 0; I != 500; ++I) {
    X = X * 6364136223846793005ULL + 1442695040888963407ULL;
    std::vector<uint8_t> B = Full;
    size_t Byte = static_cast<size_t>(X % B.size());
    unsigned Bit = static_cast<unsigned>((X >> 32) % 8);
    B[Byte] ^= (1u << Bit);
    auto R = read(B);
    if (R.isOk()) {
      (void)write(*R);
      ++OkCount;
    } else {
      EXPECT_FALSE(R.reason().empty());
      ++ErrCount;
    }
  }
  // Flips in segment payload bytes parse fine; flips in headers mostly
  // do not. Both classes must appear, and none may crash.
  EXPECT_GT(OkCount, 0u);
  EXPECT_GT(ErrCount, 0u);
}
