#!/usr/bin/env python3
"""Compare a fresh bench_micro run against the committed baseline JSON.

Usage: perf_smoke.py BASELINE.json CURRENT.json [max_regression]

Both files are google-benchmark JSON (--benchmark_out_format=json). For
each benchmark name we take the *minimum* real_time across repetitions on
both sides -- min-of-N is the standard noise filter for shared machines,
where the fastest run is the one least perturbed by neighbours. The gate
fails if any benchmark's current min is more than `max_regression` (default
25%) slower than its baseline min. New benchmarks absent from the baseline
are reported but never fail the gate, so adding a benchmark does not
require regenerating the baseline in the same commit.
"""

import json
import sys


def mins(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev/cv); compare raw runs.
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        t = float(b["real_time"])
        if name not in out or t < out[name]:
            out[name] = t
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base = mins(argv[1])
    cur = mins(argv[2])
    limit = float(argv[3]) if len(argv) > 3 else 0.25
    failed = []
    for name, t in sorted(cur.items()):
        if name not in base:
            print("perf-smoke: %-28s %12.0f ns  (new, no baseline)" % (name, t))
            continue
        ratio = t / base[name]
        mark = "FAIL" if ratio > 1.0 + limit else "ok"
        print("perf-smoke: %-28s %12.0f ns  vs %12.0f ns  %+6.1f%%  %s"
              % (name, t, base[name], (ratio - 1.0) * 100.0, mark))
        if ratio > 1.0 + limit:
            failed.append(name)
    if failed:
        print("perf-smoke: regression >%d%% in: %s"
              % (int(limit * 100), ", ".join(failed)), file=sys.stderr)
        return 1
    print("perf-smoke: all benchmarks within %d%% of baseline"
          % int(limit * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
