//===- bench/bench_size_grouping.cpp - Experiment E6 -----------*- C++ -*-===//
//
// Reproduces the §6.1 "File Size" experiment: output file size with
// physical page grouping enabled (M=1) versus the naive one-to-one
// physical backing, for both applications over the SPEC-analog suite.
// Paper reference: grouping on gives +57.4% (A1) / +30.9% (A2); grouping
// off balloons to +2239.8% / +569.0%.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace e9::bench;
using namespace e9::workload;

namespace {

void runApp(const char *Title, App Application) {
  std::printf("\n%s\n", Title);
  std::printf("%-12s %10s %12s %12s %14s %14s\n", "binary", "#Loc",
              "grouped%", "naive%", "groupedKiB", "naiveKiB");
  std::printf("---------------------------------------------------------"
              "--------------\n");
  double SumOn = 0, SumOff = 0;
  size_t N = 0;
  for (const SuiteEntry &E : specSuite()) {
    EvalOptions On;
    On.MeasureTime = false;
    EvalOptions Off = On;
    Off.GroupingEnabled = false;
    AppResult ROn = evalEntry(E, Application, On);
    AppResult ROff = evalEntry(E, Application, Off);
    std::printf("%-12s %10zu %12.2f %12.2f %14.1f %14.1f\n",
                E.Config.Name.c_str(), ROn.NLoc, ROn.SizePct, ROff.SizePct,
                static_cast<double>(ROn.PhysBytes) / 1024.0,
                static_cast<double>(ROff.PhysBytes) / 1024.0);
    SumOn += ROn.SizePct;
    SumOff += ROff.SizePct;
    ++N;
  }
  std::printf("---------------------------------------------------------"
              "--------------\n");
  std::printf("%-12s %10s %12.2f %12.2f\n", "Avg", "",
              SumOn / static_cast<double>(N),
              SumOff / static_cast<double>(N));
}

} // namespace

int main() {
  std::printf("E6: §6.1 file size — physical page grouping on vs off\n");
  std::printf("Paper shape: naive backing larger by an order of magnitude "
              "or more.\n");
  runApp("A1: jump instrumentation", App::Jumps);
  runApp("A2: heap write instrumentation", App::HeapWrites);
  return 0;
}
