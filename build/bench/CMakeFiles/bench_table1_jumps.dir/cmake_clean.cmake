file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_jumps.dir/bench_table1_jumps.cpp.o"
  "CMakeFiles/bench_table1_jumps.dir/bench_table1_jumps.cpp.o.d"
  "bench_table1_jumps"
  "bench_table1_jumps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_jumps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
