//===- x86/Insn.h - Decoded x86_64 instruction ----------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded-instruction record produced by the Decoder and consumed by
/// the rewriter core, the frontend selectors and the VM interpreter. It
/// carries exact field offsets so the rewriter can relocate displacements
/// and immediates of displaced instructions.
///
//===----------------------------------------------------------------------===//

#ifndef E9_X86_INSN_H
#define E9_X86_INSN_H

#include "x86/Register.h"

#include <cassert>
#include <cstdint>

namespace e9 {
namespace x86 {

/// Maximum legal x86 instruction length in bytes.
inline constexpr unsigned MaxInsnLength = 15;

/// Opcode maps (escape-byte namespaces).
enum class OpMap : uint8_t {
  OneByte = 0, ///< Primary one-byte map.
  Map0F = 1,   ///< Two-byte map (0F xx).
  Map0F38 = 2, ///< Three-byte map (0F 38 xx).
  Map0F3A = 3, ///< Three-byte map (0F 3A xx).
};

/// A fully decoded x86_64 instruction (length-exact; operand semantics are
/// classified only as far as the rewriter and VM need).
struct Insn {
  uint64_t Address = 0; ///< Virtual address of the first byte.
  uint8_t Length = 0;   ///< Total length in bytes (1..15).

  // --- Prefixes ---------------------------------------------------------
  uint8_t Rex = 0;          ///< REX byte value, 0 when absent.
  bool HasRex = false;
  bool OpSizeOverride = false; ///< 0x66 seen.
  bool AddrSizeOverride = false; ///< 0x67 seen.
  uint8_t SegPrefix = 0;    ///< Raw segment prefix byte, 0 when absent.
  uint8_t RepPrefix = 0;    ///< 0xf2/0xf3 when present, else 0.
  bool LockPrefix = false;  ///< 0xf0 seen.
  uint8_t PrefixLength = 0; ///< Total legacy+REX(+VEX) prefix bytes.
  bool HasVex = false;      ///< Instruction uses a VEX (C4/C5) prefix.

  // --- Opcode -----------------------------------------------------------
  OpMap Map = OpMap::OneByte;
  uint8_t Opcode = 0;

  // --- ModRM / SIB / displacement / immediate ---------------------------
  bool HasModRM = false;
  uint8_t ModRM = 0;
  bool HasSIB = false;
  uint8_t SIB = 0;
  uint8_t DispSize = 0;   ///< 0, 1 or 4 bytes.
  int32_t Disp = 0;       ///< Sign-extended displacement.
  uint8_t DispOffset = 0; ///< Byte offset of the displacement field.
  uint8_t ImmSize = 0;    ///< 0, 1, 2, 4 or 8 bytes.
  int64_t Imm = 0;        ///< Sign-extended immediate.
  uint8_t ImmOffset = 0;  ///< Byte offset of the immediate field.

  // --- ModRM accessors ---------------------------------------------------
  uint8_t mod() const { return ModRM >> 6; }
  /// ModRM.reg extended with REX.R.
  uint8_t reg() const { return ((Rex & 0x4) << 1) | ((ModRM >> 3) & 7); }
  /// ModRM.rm extended with REX.B (meaningless when HasSIB).
  uint8_t rm() const { return ((Rex & 0x1) << 3) | (ModRM & 7); }
  /// ModRM.reg without REX extension (opcode-extension field).
  uint8_t regOpcode() const { return (ModRM >> 3) & 7; }

  /// True when the instruction has a memory operand (ModRM with mod != 3).
  bool hasMemOperand() const { return HasModRM && mod() != 3; }

  /// True for rip-relative memory operands (mod == 0, rm == 101b).
  bool isRipRelative() const {
    return HasModRM && mod() == 0 && (ModRM & 7) == 5;
  }

  /// Base register of the memory operand (Reg::RIP for rip-relative,
  /// Reg::None when absent). Only valid when hasMemOperand().
  Reg memBase() const;

  /// Index register of the memory operand, Reg::None when absent.
  Reg memIndex() const;

  /// Scale factor (1/2/4/8) of the memory operand.
  uint8_t memScale() const {
    return HasSIB ? static_cast<uint8_t>(1u << (SIB >> 6)) : 1;
  }

  /// Absolute target address of the memory operand when it is rip-relative.
  uint64_t ripTarget() const {
    assert(isRipRelative() && "not a rip-relative operand");
    return Address + Length + static_cast<int64_t>(Disp);
  }

  // --- Branch classification ---------------------------------------------
  bool isJmpRel8() const {
    return Map == OpMap::OneByte && Opcode == 0xeb;
  }
  bool isJmpRel32() const {
    return Map == OpMap::OneByte && Opcode == 0xe9;
  }
  bool isJccRel8() const {
    return Map == OpMap::OneByte && Opcode >= 0x70 && Opcode <= 0x7f;
  }
  bool isJccRel32() const {
    return Map == OpMap::Map0F && Opcode >= 0x80 && Opcode <= 0x8f;
  }
  bool isCallRel32() const {
    return Map == OpMap::OneByte && Opcode == 0xe8;
  }
  bool isLoopOrJcxz() const {
    return Map == OpMap::OneByte && Opcode >= 0xe0 && Opcode <= 0xe3;
  }
  /// True for any rip-relative branch (jmp/jcc/call/loop).
  bool isRelativeBranch() const {
    return isJmpRel8() || isJmpRel32() || isJccRel8() || isJccRel32() ||
           isCallRel32() || isLoopOrJcxz();
  }
  bool isIndirectCall() const {
    return Map == OpMap::OneByte && Opcode == 0xff && HasModRM &&
           (regOpcode() == 2 || regOpcode() == 3);
  }
  bool isIndirectJmp() const {
    return Map == OpMap::OneByte && Opcode == 0xff && HasModRM &&
           (regOpcode() == 4 || regOpcode() == 5);
  }
  bool isRet() const {
    return Map == OpMap::OneByte && (Opcode == 0xc3 || Opcode == 0xc2);
  }
  bool isInt3() const { return Map == OpMap::OneByte && Opcode == 0xcc; }

  /// Condition code of a jcc/setcc/cmovcc instruction.
  Cond cond() const { return static_cast<Cond>(Opcode & 0xf); }

  /// Absolute target of a relative branch (jmp/jcc/call/loop).
  uint64_t branchTarget() const {
    assert(isRelativeBranch() && "not a relative branch");
    return Address + Length + Imm;
  }

  /// True when the instruction writes through its ModRM memory operand.
  /// (Implicit stack writes via push/call are not included.)
  bool writesMemOperand() const;

  /// True when the instruction reads its ModRM memory operand.
  bool readsMemOperand() const;
};

} // namespace x86
} // namespace e9

#endif // E9_X86_INSN_H
