# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/x86_decoder_test[1]_include.cmake")
include("/root/repo/build/tests/x86_assembler_test[1]_include.cmake")
include("/root/repo/build/tests/elf_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/patcher_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lowfat_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/vm_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/objdump_diff_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/tool_test[1]_include.cmake")
