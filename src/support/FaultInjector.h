//===- support/FaultInjector.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault injector for exercising the pipeline's
/// error paths. Fallible stages consult named sites via the cheap
/// E9_FAULT_POINT(name) hook; tests arm one site (or a seeded random
/// subset of hits) and assert the failure surfaces as a clean Status
/// error end-to-end — no crash, no assert, no corrupted output.
///
/// The fast path is a single global bool test, so production code pays
/// nothing while the injector is disarmed. Site names are registered
/// statically in FaultInjector.cpp; shouldFail() rejects unknown names so
/// a typo in a hook cannot silently create an untestable site.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_FAULTINJECTOR_H
#define E9_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace e9 {

/// True only while some site is armed (fast-path guard; modified solely by
/// FaultInjector::arm/armRandom/disarm).
extern bool FaultInjectionArmed;

/// Process-wide injector (the pipeline is single-threaded; tests arm,
/// run one pipeline, then disarm).
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Every site name the pipeline consults, in registration order. Tests
  /// sweep this list so a newly added hook is exercised automatically.
  static const std::vector<std::string> &sites();
  static bool isKnownSite(const std::string &Site);

  /// Arms \p Site: every hit of it with ordinal >= \p SkipHits fails
  /// (sticky — retries keep failing, as a real broken dependency would).
  void arm(const std::string &Site, uint64_t SkipHits = 0);

  /// Chaos mode: each hit of *any* site fails with probability
  /// \p Percent / 100, decided by a deterministic hash of (\p Seed, site
  /// name, per-site hit ordinal) — the same seed replays the same faults.
  void armRandom(uint64_t Seed, unsigned Percent);

  /// Disarms everything and clears the hit/fire counters.
  void disarm();

  /// True when at least one hit has been failed since the last arm.
  bool fired() const { return Fired != 0; }
  uint64_t fireCount() const { return Fired; }
  /// Total hits of the armed site (arm) or of all sites (armRandom).
  uint64_t hitCount() const { return Hits; }

  /// Slow path behind E9_FAULT_POINT; returns true when the hit must fail.
  bool shouldFail(const char *Site);

private:
  FaultInjector() = default;

  std::string ArmedSite; ///< Empty in chaos mode.
  uint64_t SkipHits = 0;
  bool Random = false;
  uint64_t Seed = 0;
  unsigned Percent = 0;
  uint64_t Hits = 0;
  uint64_t Fired = 0;
  std::vector<std::pair<std::string, uint64_t>> PerSiteHits;
};

/// The hook the pipeline calls. Returns true when the caller must fail
/// this operation (with a normal Status error naming the site).
inline bool faultPoint(const char *Site) {
  return FaultInjectionArmed && FaultInjector::instance().shouldFail(Site);
}

} // namespace e9

#define E9_FAULT_POINT(Site) (::e9::faultPoint(Site))

#endif // E9_SUPPORT_FAULTINJECTOR_H
