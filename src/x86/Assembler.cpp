//===- x86/Assembler.cpp --------------------------------------*- C++ -*-===//

#include "x86/Assembler.h"

#include "support/Status.h"

#include <cassert>

using namespace e9;
using namespace e9::x86;

// --- Labels ----------------------------------------------------------------

Assembler::Label Assembler::createLabel() {
  Labels.emplace_back(std::nullopt);
  return static_cast<Label>(Labels.size() - 1);
}

void Assembler::bind(Label L) { bindAt(L, currentAddr()); }

void Assembler::bindAt(Label L, uint64_t Addr) {
  assert(L < Labels.size() && "unknown label");
  assert(!Labels[L].has_value() && "label bound twice");
  Labels[L] = Addr;
}

bool Assembler::resolveAll() {
  for (const Fixup &F : Fixups) {
    if (!Labels[F.TargetLabel].has_value())
      return false;
    uint64_t Target = *Labels[F.TargetLabel];
    uint64_t FieldEnd = Base + F.Offset + F.Size;
    int64_t Rel = static_cast<int64_t>(Target) -
                  static_cast<int64_t>(FieldEnd);
    if (F.Size == 1) {
      if (Rel < -128 || Rel > 127)
        return false;
      Buf.data()[F.Offset] = static_cast<uint8_t>(Rel);
    } else {
      if (Rel < INT32_MIN || Rel > INT32_MAX)
        return false;
      Buf.patch32(F.Offset, static_cast<uint32_t>(Rel));
    }
  }
  Fixups.clear();
  return true;
}

// --- Encoding helpers --------------------------------------------------------

void Assembler::emitRex(bool W, bool R, bool X, bool B, bool Force) {
  if (!W && !R && !X && !B && !Force)
    return;
  Buf.push8(static_cast<uint8_t>(0x40 | (W << 3) | (R << 2) | (X << 1) |
                                 (B << 0)));
}

void Assembler::emitModRMReg(uint8_t RegField, Reg Rm) {
  Buf.push8(static_cast<uint8_t>(0xc0 | ((RegField & 7) << 3) |
                                 (regEncoding(Rm) & 7)));
}

void Assembler::emitModRMMem(uint8_t RegField, const Mem &M) {
  assert(M.Scale == 1 || M.Scale == 2 || M.Scale == 4 || M.Scale == 8);
  uint8_t RegBits = (RegField & 7) << 3;

  if (M.isRipRel()) {
    Buf.push8(static_cast<uint8_t>(0x00 | RegBits | 5));
    Buf.push32(static_cast<uint32_t>(M.Disp));
    return;
  }

  if (M.Base == Reg::None && M.Index == Reg::None) {
    // [disp32] absolute: mod=00, rm=100 (SIB), SIB base=101 index=100.
    Buf.push8(static_cast<uint8_t>(0x00 | RegBits | 4));
    Buf.push8(0x25);
    Buf.push32(static_cast<uint32_t>(M.Disp));
    return;
  }

  uint8_t ScaleBits = M.Scale == 1 ? 0 : M.Scale == 2 ? 1 : M.Scale == 4 ? 2
                                                                          : 3;
  bool NeedSIB = M.Index != Reg::None ||
                 (M.Base != Reg::None && (regEncoding(M.Base) & 7) == 4);

  if (M.Base == Reg::None) {
    // Index without base: mod=00 rm=100, SIB base=101, disp32 mandatory.
    assert(M.Index != Reg::None);
    assert(M.Index != Reg::RSP && "rsp cannot be an index register");
    Buf.push8(static_cast<uint8_t>(0x00 | RegBits | 4));
    Buf.push8(static_cast<uint8_t>((ScaleBits << 6) |
                                   ((regEncoding(M.Index) & 7) << 3) | 5));
    Buf.push32(static_cast<uint32_t>(M.Disp));
    return;
  }

  // Choose mod by displacement size; base rbp/r13 cannot use mod=00.
  uint8_t BaseLow = regEncoding(M.Base) & 7;
  uint8_t Mod;
  uint8_t DispSize;
  if (M.Disp == 0 && BaseLow != 5) {
    Mod = 0;
    DispSize = 0;
  } else if (M.Disp >= -128 && M.Disp <= 127) {
    Mod = 1;
    DispSize = 1;
  } else {
    Mod = 2;
    DispSize = 4;
  }

  if (NeedSIB) {
    uint8_t IndexLow =
        M.Index == Reg::None ? 4 : (regEncoding(M.Index) & 7);
    assert(M.Index != Reg::RSP && "rsp cannot be an index register");
    Buf.push8(static_cast<uint8_t>((Mod << 6) | RegBits | 4));
    Buf.push8(
        static_cast<uint8_t>((ScaleBits << 6) | (IndexLow << 3) | BaseLow));
  } else {
    Buf.push8(static_cast<uint8_t>((Mod << 6) | RegBits | BaseLow));
  }

  if (DispSize == 1)
    Buf.push8(static_cast<uint8_t>(M.Disp));
  else if (DispSize == 4)
    Buf.push32(static_cast<uint32_t>(M.Disp));
}

void Assembler::instrRM(OpSize S, bool TwoByte, uint8_t Opc, uint8_t RegField,
                        Reg Rm) {
  if (S == OpSize::B16)
    Buf.push8(0x66);
  bool W = S == OpSize::B64;
  bool R = (RegField & 8) != 0;
  bool B = regNeedsRexBit(Rm);
  // 8-bit operands touching encodings 4-7 need REX to select spl/bpl/sil/dil
  // rather than ah/ch/dh/bh.
  bool Force = S == OpSize::B8 &&
               ((RegField >= 4 && RegField <= 7) ||
                (regEncoding(Rm) >= 4 && regEncoding(Rm) <= 7));
  emitRex(W, R, false, B, Force);
  if (TwoByte)
    Buf.push8(0x0f);
  Buf.push8(Opc);
  emitModRMReg(RegField, Rm);
}

void Assembler::instrRMMem(OpSize S, bool TwoByte, uint8_t Opc,
                           uint8_t RegField, const Mem &M) {
  if (S == OpSize::B16)
    Buf.push8(0x66);
  bool W = S == OpSize::B64;
  bool R = (RegField & 8) != 0;
  bool X = M.Index != Reg::None && regNeedsRexBit(M.Index);
  bool B = M.Base != Reg::None && M.Base != Reg::RIP &&
           regNeedsRexBit(M.Base);
  bool Force = S == OpSize::B8 && RegField >= 4 && RegField <= 7;
  emitRex(W, R, X, B, Force);
  if (TwoByte)
    Buf.push8(0x0f);
  Buf.push8(Opc);
  emitModRMMem(RegField, M);
}

void Assembler::emitRel(uint8_t Size, Label L) {
  Fixups.push_back(Fixup{Buf.size(), Size, L});
  if (Size == 1)
    Buf.push8(0);
  else
    Buf.push32(0);
}

int32_t Assembler::relTo(uint64_t Target, unsigned InsnEndOffset) const {
  uint64_t End = currentAddr() + InsnEndOffset;
  int64_t Rel = static_cast<int64_t>(Target) - static_cast<int64_t>(End);
  assert(Rel >= INT32_MIN && Rel <= INT32_MAX &&
         "relative branch target out of range");
  return static_cast<int32_t>(Rel);
}

// --- Data moves ---------------------------------------------------------------

void Assembler::movRegImm64(Reg Dst, uint64_t Imm) {
  emitRex(true, false, false, regNeedsRexBit(Dst), false);
  Buf.push8(static_cast<uint8_t>(0xb8 | (regEncoding(Dst) & 7)));
  Buf.push64(Imm);
}

void Assembler::movRegImm32(Reg Dst, int32_t Imm) {
  emitRex(true, false, false, regNeedsRexBit(Dst), false);
  Buf.push8(0xc7);
  emitModRMReg(0, Dst);
  Buf.push32(static_cast<uint32_t>(Imm));
}

void Assembler::movRegReg(OpSize S, Reg Dst, Reg Src) {
  uint8_t Opc = S == OpSize::B8 ? 0x88 : 0x89;
  instrRM(S, false, Opc, static_cast<uint8_t>(Src), Dst);
}

void Assembler::movMemReg(OpSize S, const Mem &Dst, Reg Src) {
  uint8_t Opc = S == OpSize::B8 ? 0x88 : 0x89;
  instrRMMem(S, false, Opc, static_cast<uint8_t>(Src), Dst);
}

void Assembler::movRegMem(OpSize S, Reg Dst, const Mem &Src) {
  uint8_t Opc = S == OpSize::B8 ? 0x8a : 0x8b;
  instrRMMem(S, false, Opc, static_cast<uint8_t>(Dst), Src);
}

void Assembler::movMemImm(OpSize S, const Mem &Dst, int32_t Imm) {
  uint8_t Opc = S == OpSize::B8 ? 0xc6 : 0xc7;
  instrRMMem(S, false, Opc, 0, Dst);
  if (S == OpSize::B8)
    Buf.push8(static_cast<uint8_t>(Imm));
  else if (S == OpSize::B16)
    Buf.push16(static_cast<uint16_t>(Imm));
  else
    Buf.push32(static_cast<uint32_t>(Imm));
}

void Assembler::movzxRegMem8(Reg Dst, const Mem &Src) {
  instrRMMem(OpSize::B64, true, 0xb6, static_cast<uint8_t>(Dst), Src);
}

void Assembler::leaRegMem(Reg Dst, const Mem &Src) {
  instrRMMem(OpSize::B64, false, 0x8d, static_cast<uint8_t>(Dst), Src);
}

// --- ALU -----------------------------------------------------------------------

void Assembler::aluRegReg(OpSize S, Alu Op, Reg Dst, Reg Src) {
  uint8_t Opc = static_cast<uint8_t>((static_cast<uint8_t>(Op) << 3) |
                                     (S == OpSize::B8 ? 0x00 : 0x01));
  instrRM(S, false, Opc, static_cast<uint8_t>(Src), Dst);
}

void Assembler::aluRegMem(OpSize S, Alu Op, Reg Dst, const Mem &Src) {
  uint8_t Opc = static_cast<uint8_t>((static_cast<uint8_t>(Op) << 3) |
                                     (S == OpSize::B8 ? 0x02 : 0x03));
  instrRMMem(S, false, Opc, static_cast<uint8_t>(Dst), Src);
}

void Assembler::aluMemReg(OpSize S, Alu Op, const Mem &Dst, Reg Src) {
  uint8_t Opc = static_cast<uint8_t>((static_cast<uint8_t>(Op) << 3) |
                                     (S == OpSize::B8 ? 0x00 : 0x01));
  instrRMMem(S, false, Opc, static_cast<uint8_t>(Src), Dst);
}

void Assembler::aluRegImm(OpSize S, Alu Op, Reg Dst, int32_t Imm) {
  if (S == OpSize::B8) {
    instrRM(S, false, 0x80, static_cast<uint8_t>(Op), Dst);
    Buf.push8(static_cast<uint8_t>(Imm));
    return;
  }
  if (Imm >= -128 && Imm <= 127) {
    instrRM(S, false, 0x83, static_cast<uint8_t>(Op), Dst);
    Buf.push8(static_cast<uint8_t>(Imm));
    return;
  }
  instrRM(S, false, 0x81, static_cast<uint8_t>(Op), Dst);
  if (S == OpSize::B16)
    Buf.push16(static_cast<uint16_t>(Imm));
  else
    Buf.push32(static_cast<uint32_t>(Imm));
}

void Assembler::aluMemImm(OpSize S, Alu Op, const Mem &Dst, int32_t Imm) {
  if (S == OpSize::B8) {
    instrRMMem(S, false, 0x80, static_cast<uint8_t>(Op), Dst);
    Buf.push8(static_cast<uint8_t>(Imm));
    return;
  }
  if (Imm >= -128 && Imm <= 127) {
    instrRMMem(S, false, 0x83, static_cast<uint8_t>(Op), Dst);
    Buf.push8(static_cast<uint8_t>(Imm));
    return;
  }
  instrRMMem(S, false, 0x81, static_cast<uint8_t>(Op), Dst);
  if (S == OpSize::B16)
    Buf.push16(static_cast<uint16_t>(Imm));
  else
    Buf.push32(static_cast<uint32_t>(Imm));
}

void Assembler::testRegReg(OpSize S, Reg A, Reg B) {
  uint8_t Opc = S == OpSize::B8 ? 0x84 : 0x85;
  instrRM(S, false, Opc, static_cast<uint8_t>(B), A);
}

void Assembler::imulRegReg(Reg Dst, Reg Src) {
  instrRM(OpSize::B64, true, 0xaf, static_cast<uint8_t>(Dst), Src);
}

void Assembler::shiftRegImm(OpSize S, Shift Op, Reg R, uint8_t Amount) {
  uint8_t Opc = S == OpSize::B8 ? 0xc0 : 0xc1;
  instrRM(S, false, Opc, static_cast<uint8_t>(Op), R);
  Buf.push8(Amount);
}

void Assembler::incReg(Reg R) {
  instrRM(OpSize::B64, false, 0xff, 0, R);
}

void Assembler::decReg(Reg R) {
  instrRM(OpSize::B64, false, 0xff, 1, R);
}

void Assembler::incMem(OpSize S, const Mem &M) {
  uint8_t Opc = S == OpSize::B8 ? 0xfe : 0xff;
  instrRMMem(S, false, Opc, 0, M);
}

void Assembler::negReg(Reg R) {
  instrRM(OpSize::B64, false, 0xf7, 3, R);
}

void Assembler::xaddMemReg(OpSize S, const Mem &M, Reg R) {
  instrRMMem(S, true, S == OpSize::B8 ? 0xc0 : 0xc1,
             static_cast<uint8_t>(R), M);
}

void Assembler::cmpxchgMemReg(OpSize S, const Mem &M, Reg R) {
  instrRMMem(S, true, S == OpSize::B8 ? 0xb0 : 0xb1,
             static_cast<uint8_t>(R), M);
}

void Assembler::lockPrefix() { Buf.push8(0xf0); }

// --- Stack ----------------------------------------------------------------------

void Assembler::pushReg(Reg R) {
  emitRex(false, false, false, regNeedsRexBit(R), false);
  Buf.push8(static_cast<uint8_t>(0x50 | (regEncoding(R) & 7)));
}

void Assembler::popReg(Reg R) {
  emitRex(false, false, false, regNeedsRexBit(R), false);
  Buf.push8(static_cast<uint8_t>(0x58 | (regEncoding(R) & 7)));
}

void Assembler::pushfq() { Buf.push8(0x9c); }
void Assembler::popfq() { Buf.push8(0x9d); }

void Assembler::pushImm32(int32_t Imm) {
  Buf.push8(0x68);
  Buf.push32(static_cast<uint32_t>(Imm));
}

// --- Control flow ----------------------------------------------------------------

void Assembler::jmpLabel(Label L) {
  Buf.push8(0xe9);
  emitRel(4, L);
}

void Assembler::jmpShortLabel(Label L) {
  Buf.push8(0xeb);
  emitRel(1, L);
}

void Assembler::jccLabel(Cond C, Label L) {
  Buf.push8(0x0f);
  Buf.push8(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(C)));
  emitRel(4, L);
}

void Assembler::jccShortLabel(Cond C, Label L) {
  Buf.push8(static_cast<uint8_t>(0x70 | static_cast<uint8_t>(C)));
  emitRel(1, L);
}

void Assembler::callLabel(Label L) {
  Buf.push8(0xe8);
  emitRel(4, L);
}

void Assembler::jmpAddr(uint64_t Target) {
  int32_t Rel = relTo(Target, 5);
  Buf.push8(0xe9);
  Buf.push32(static_cast<uint32_t>(Rel));
}

void Assembler::jccAddr(Cond C, uint64_t Target) {
  int32_t Rel = relTo(Target, 6);
  Buf.push8(0x0f);
  Buf.push8(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(C)));
  Buf.push32(static_cast<uint32_t>(Rel));
}

void Assembler::callAddr(uint64_t Target) {
  int32_t Rel = relTo(Target, 5);
  Buf.push8(0xe8);
  Buf.push32(static_cast<uint32_t>(Rel));
}

void Assembler::callReg(Reg R) {
  instrRM(OpSize::B32, false, 0xff, 2, R);
}

void Assembler::jmpReg(Reg R) {
  instrRM(OpSize::B32, false, 0xff, 4, R);
}

void Assembler::loopLabel(Label L) {
  Buf.push8(0xe2);
  emitRel(1, L);
}

void Assembler::jrcxzLabel(Label L) {
  Buf.push8(0xe3);
  emitRel(1, L);
}

void Assembler::cqo() {
  Buf.push8(0x48);
  Buf.push8(0x99);
}

void Assembler::cld() { Buf.push8(0xfc); }
void Assembler::repMovsb() { Buf.pushBytes({0xf3, 0xa4}); }
void Assembler::repStosb() { Buf.pushBytes({0xf3, 0xaa}); }
void Assembler::repMovsq() { Buf.pushBytes({0xf3, 0x48, 0xa5}); }
void Assembler::repStosq() { Buf.pushBytes({0xf3, 0x48, 0xab}); }

void Assembler::divReg(Reg R) {
  instrRM(OpSize::B64, false, 0xf7, 6, R);
}

void Assembler::idivReg(Reg R) {
  instrRM(OpSize::B64, false, 0xf7, 7, R);
}

void Assembler::ret() { Buf.push8(0xc3); }
void Assembler::int3() { Buf.push8(0xcc); }
void Assembler::nop() { Buf.push8(0x90); }

void Assembler::nops(unsigned N) {
  for (unsigned I = 0; I != N; ++I)
    nop();
}

void Assembler::ud2() {
  Buf.push8(0x0f);
  Buf.push8(0x0b);
}

void Assembler::jmpAnywhere(uint64_t Target) {
  // push imm32 sign-extends; write the high half explicitly, then ret.
  uint32_t Lo = static_cast<uint32_t>(Target);
  uint32_t Hi = static_cast<uint32_t>(Target >> 32);
  // The sign-extension of Lo fills [rsp+4] with 0x00000000 or 0xffffffff;
  // overwrite it with the real high half in either case.
  pushImm32(static_cast<int32_t>(Lo));
  // mov dword [rsp+4], Hi
  movMemImm(OpSize::B32, Mem::base(Reg::RSP, 4), static_cast<int32_t>(Hi));
  ret();
}

void Assembler::callAbsViaRax(uint64_t Target) {
  movRegImm64(Reg::RAX, Target);
  callReg(Reg::RAX);
}
