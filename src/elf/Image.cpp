//===- elf/Image.cpp ------------------------------------------*- C++ -*-===//

#include "elf/Image.h"

#include "support/Format.h"

#include <cstring>

using namespace e9;
using namespace e9::elf;

Segment *Image::findSegment(uint64_t Addr) {
  for (Segment &S : Segments)
    if (S.containsAddr(Addr))
      return &S;
  return nullptr;
}

const Segment *Image::findSegment(uint64_t Addr) const {
  return const_cast<Image *>(this)->findSegment(Addr);
}

const Segment *Image::textSegment() const {
  return const_cast<Image *>(this)->textSegment();
}

Segment *Image::textSegment() {
  for (Segment &S : Segments)
    if (S.Flags & PF_X)
      return &S;
  return nullptr;
}

Status Image::readBytes(uint64_t Addr, uint8_t *Out, size_t N) const {
  const Segment *S = findSegment(Addr);
  if (!S)
    return Status::error(format("no segment at %s", hex(Addr).c_str()));
  uint64_t Off = Addr - S->VAddr;
  if (Off + N > S->fileSize())
    return Status::error(
        format("read at %s leaves file-backed content", hex(Addr).c_str()));
  std::memcpy(Out, S->Bytes.data() + Off, N);
  return Status::ok();
}

Status Image::writeBytes(uint64_t Addr, const uint8_t *In, size_t N) {
  Segment *S = findSegment(Addr);
  if (!S)
    return Status::error(format("no segment at %s", hex(Addr).c_str()));
  uint64_t Off = Addr - S->VAddr;
  if (Off + N > S->fileSize())
    return Status::error(
        format("write at %s leaves file-backed content", hex(Addr).c_str()));
  std::memcpy(S->Bytes.data() + Off, In, N);
  return Status::ok();
}

uint64_t Image::segmentFileBytes() const {
  uint64_t Total = 0;
  for (const Segment &S : Segments)
    Total += S.fileSize();
  for (const PhysBlock &B : Blocks)
    Total += B.Bytes.size();
  return Total;
}
