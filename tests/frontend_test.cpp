//===- tests/frontend_test.cpp - disasm/select/rewriter glue --*- C++ -*-===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Runtime.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "vm/Hooks.h"
#include "x86/Assembler.h"
#include "vm/Loader.h"
#include "workload/Gen.h"
#include "workload/Run.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::frontend;
using namespace e9::x86;

namespace {

elf::Image imageWithText(std::vector<uint8_t> Code,
                         uint64_t Base = 0x401000) {
  elf::Image Img;
  Img.Entry = Base;
  elf::Segment Text;
  Text.VAddr = Base;
  Text.Bytes = std::move(Code);
  Text.MemSize = Text.Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Img.Segments.push_back(std::move(Text));
  return Img;
}

} // namespace

TEST(Disasm, WalksCleanCode) {
  // push rbp; mov rbp,rsp; nop; pop rbp; ret
  elf::Image Img =
      imageWithText({0x55, 0x48, 0x89, 0xe5, 0x90, 0x5d, 0xc3});
  DisasmResult D = linearDisassemble(Img);
  EXPECT_EQ(D.Insns.size(), 5u);
  EXPECT_EQ(D.UndecodableBytes, 0u);
  EXPECT_EQ(D.Insns[0].Address, 0x401000u);
  EXPECT_EQ(D.Insns[4].Address, 0x401006u);
}

TEST(Disasm, SkipsDataIslands) {
  // Valid code, then invalid bytes (0x06 is not a 64-bit opcode), then
  // valid code again — the ChromeMain .text-with-data case.
  elf::Image Img = imageWithText({0x90, 0x06, 0x06, 0x06, 0xc3});
  DisasmResult D = linearDisassemble(Img);
  EXPECT_EQ(D.UndecodableBytes, 3u);
  ASSERT_EQ(D.Insns.size(), 2u);
  EXPECT_TRUE(D.Insns[1].isRet());
}

TEST(Disasm, RangeRestriction) {
  elf::Image Img = imageWithText({0x90, 0x90, 0x90, 0x90, 0xc3});
  DisasmResult D = linearDisassemble(Img, 0x401001, 0x401003);
  EXPECT_EQ(D.Insns.size(), 2u);
  EXPECT_EQ(D.Insns[0].Address, 0x401001u);
}

TEST(Disasm, EmptyWithoutTextSegment) {
  elf::Image Img;
  EXPECT_TRUE(linearDisassemble(Img).Insns.empty());
}

TEST(Select, JumpsPicksAllRelativeBranches) {
  // jmp rel32; jcc rel8; jcc rel32; jmp rel8; call rel32 (not selected);
  // indirect jmp (not selected); ret.
  elf::Image Img = imageWithText({
      0xe9, 0x00, 0x00, 0x00, 0x00,             // jmp rel32
      0x74, 0x00,                               // je rel8
      0x0f, 0x85, 0x00, 0x00, 0x00, 0x00,       // jne rel32
      0xeb, 0x00,                               // jmp rel8
      0xe8, 0x00, 0x00, 0x00, 0x00,             // call rel32
      0xff, 0xe0,                               // jmp *rax
      0xc3,                                     // ret
  });
  DisasmResult D = linearDisassemble(Img);
  auto Locs = selectJumps(D.Insns);
  ASSERT_EQ(Locs.size(), 4u);
  EXPECT_EQ(Locs[0], 0x401000u);
  EXPECT_EQ(Locs[1], 0x401005u);
  EXPECT_EQ(Locs[2], 0x401007u);
  EXPECT_EQ(Locs[3], 0x40100du);
}

TEST(Select, HeapWritesExcludesRspRipAndReads) {
  elf::Image Img = imageWithText({
      0x48, 0x89, 0x03,                         // mov [rbx], rax: selected
      0x48, 0x89, 0x04, 0x24,                   // mov [rsp], rax: excluded
      0x48, 0x89, 0x05, 0, 0, 0, 0,             // mov [rip+0], rax: excluded
      0x48, 0x8b, 0x03,                         // mov rax, [rbx]: read
      0x64, 0x48, 0x89, 0x03,                   // fs-based: excluded
      0xc6, 0x41, 0x07, 0x01,                   // mov byte [rcx+7],1: selected
      0x50,                                     // push rax: stack-implicit
      0xc3,
  });
  DisasmResult D = linearDisassemble(Img);
  auto Locs = selectHeapWrites(D.Insns);
  ASSERT_EQ(Locs.size(), 2u);
  EXPECT_EQ(Locs[0], 0x401000u);
  EXPECT_EQ(Locs[1], 0x401015u);
}

TEST(Select, AllSelectsEverything) {
  elf::Image Img = imageWithText({0x90, 0x90, 0xc3});
  DisasmResult D = linearDisassemble(Img);
  EXPECT_EQ(selectAll(D.Insns).size(), 3u);
}

TEST(Rewriter, RejectsImageWithoutCode) {
  elf::Image Img;
  RewriteOptions Opts;
  EXPECT_FALSE(rewrite(Img, {}, Opts).isOk());
}

TEST(Rewriter, B0SidesArePersistedInTheElf) {
  workload::WorkloadConfig C;
  C.Seed = 31;
  C.NumFuncs = 6;
  C.MainIters = 2;
  workload::Workload W = workload::generateWorkload(C);
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);

  RewriteOptions Opts;
  Opts.Patch.ForceB0 = true;
  auto Out = rewrite(W.Image, Locs, Opts);
  ASSERT_TRUE(Out.isOk());
  EXPECT_EQ(Out->Rewritten.B0Sites.size(), Locs.size());

  // Round-trip through the file format, then run with no external table:
  // the trap handler must come from the image itself.
  auto Back = elf::read(elf::write(Out->Rewritten));
  ASSERT_TRUE(Back.isOk()) << Back.reason();
  ASSERT_EQ(Back->B0Sites.size(), Locs.size());

  workload::RunOutcome Ref = workload::runImage(W.Image);
  workload::RunOutcome Got = workload::runImage(*Back);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
}

TEST(Rewriter, PerSiteSpecsViaSpecFor) {
  workload::WorkloadConfig C;
  C.Seed = 32;
  C.NumFuncs = 6;
  C.MainIters = 2;
  workload::Workload W = workload::generateWorkload(C);
  uint64_t CounterBase = addCounterSegment(W.Image);
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  ASSERT_GE(Locs.size(), 4u);

  RewriteOptions Opts;
  Opts.SpecFor = [&](uint64_t Addr) {
    core::TrampolineSpec S;
    S.Kind = core::TrampolineKind::Counter;
    // Slot index = rank of the address in the sorted list.
    size_t Idx = std::lower_bound(Locs.begin(), Locs.end(), Addr) -
                 Locs.begin();
    S.CounterAddr = CounterBase + Idx * 8;
    return S;
  };
  auto Out = rewrite(W.Image, Locs, Opts);
  ASSERT_TRUE(Out.isOk());
  EXPECT_EQ(Out->Stats.NLoc, Locs.size());

  workload::RunOutcome Ref = workload::runImage(W.Image);
  workload::RunOutcome Got = workload::runImage(Out->Rewritten);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
}

TEST(Runtime, CounterSegmentIsReservedByRewriter) {
  workload::WorkloadConfig C;
  C.Seed = 33;
  C.NumFuncs = 4;
  workload::Workload W = workload::generateWorkload(C);
  uint64_t CounterAddr = addCounterSegment(W.Image);
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::Counter;
  Opts.Patch.Spec.CounterAddr = CounterAddr;
  auto Out = rewrite(W.Image, Locs, Opts);
  ASSERT_TRUE(Out.isOk());
  // No trampoline may land inside the counter segment.
  for (const elf::Mapping &M : Out->Rewritten.Mappings) {
    bool Overlaps = M.VAddr < CounterSegmentAddr + CounterSegmentSize &&
                    CounterSegmentAddr < M.VAddr + M.Size;
    EXPECT_FALSE(Overlaps);
  }
}

// Composed trampoline templates: counter + hook + displaced in one
// trampoline, verified end to end.
TEST(Rewriter, ComposedTemplates) {
  workload::WorkloadConfig C;
  C.Seed = 34;
  C.NumFuncs = 6;
  C.MainIters = 2;
  workload::Workload W = workload::generateWorkload(C);
  uint64_t CounterAddr = addCounterSegment(W.Image);
  workload::RunOutcome Ref = workload::runImage(W.Image);
  ASSERT_TRUE(Ref.ok());

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);

  RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::Composed;
  Opts.Patch.Spec.Ops = {
      core::TemplateOp::counterInc(CounterAddr),
      core::TemplateOp::hookCall(vm::HookLowFatCheck),
      core::TemplateOp::raw({0x90}), // a stray nop, why not
      core::TemplateOp::displaced(),
      // no explicit JumpBack: appended implicitly
  };
  auto Out = rewrite(W.Image, Locs, Opts);
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  EXPECT_EQ(Out->Stats.count(core::Tactic::Failed), 0u);

  // Run with the LowFat runtime so the hook exists; rdi carries the site
  // address (not a heap pointer), so the check passes.
  workload::RunConfig RC;
  RC.UseLowFat = true;
  workload::RunOutcome Got = workload::runImage(Out->Rewritten, RC);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);

  // The counter must have counted every dynamic branch visit.
  vm::Vm V;
  lowfat::LowFatHeap Heap;
  lowfat::installLowFatHeap(V, Heap);
  auto L = vm::load(V, Out->Rewritten);
  ASSERT_TRUE(L.isOk());
  auto R = V.run(50'000'000);
  ASSERT_EQ(R.Kind, vm::RunResult::Exit::Finished) << R.Error;
  uint64_t Count = 0;
  ASSERT_TRUE(V.Mem.read64(CounterAddr, Count).isOk());
  EXPECT_GT(Count, 100u);
}

TEST(Rewriter, ComposedJumpToDivertsControl) {
  // A Composed spec ending in JumpTo implements a "skip the rest of this
  // basic block" patch: here we jump straight to a ret.
  elf::Image Img;
  Img.Entry = 0x401000;
  x86::Assembler A(0x401000);
  A.movRegImm32(x86::Reg::RAX, 1);
  uint64_t Site = A.currentAddr();
  A.movRegImm32(x86::Reg::RAX, 2); // patched: skipped via JumpTo
  A.movRegImm32(x86::Reg::RAX, 3); // also skipped
  uint64_t RetAddr = A.currentAddr();
  A.ret();
  ASSERT_TRUE(A.resolveAll());
  elf::Segment Text;
  Text.VAddr = 0x401000;
  Text.Bytes = A.take();
  Text.MemSize = Text.Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Img.Segments.push_back(std::move(Text));

  RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::Composed;
  Opts.Patch.Spec.Ops = {core::TemplateOp::jumpTo(RetAddr)};
  auto Out = rewrite(Img, {Site}, Opts);
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  ASSERT_NE(Out->Sites[0].Used, core::Tactic::Failed);

  vm::Vm V;
  auto L = vm::load(V, Out->Rewritten);
  ASSERT_TRUE(L.isOk()) << L.reason();
  auto R = V.run(1000);
  ASSERT_EQ(R.Kind, vm::RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(V.Core.Gpr[0], 1u) << "mov $2/$3 must have been skipped";
}
