//===- api/Driver.h - Batch patch-request driver ----------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stream front-end over api::Session: reads a JSONL patch-request
/// script line by line from an istream, feeds one Session, writes its
/// JSONL responses to an ostream. `e9tool apply` and `e9tool serve
/// --stdin` are this function; the socket server (api/Serve.h) runs the
/// same Session per connection, so all transports share one code path —
/// and therefore one determinism guarantee: a job's output binary is
/// byte-identical to the equivalent direct `e9tool rewrite` invocation,
/// for every jobs value.
///
/// See api/Session.h for the error taxonomy (fatal protocol/version
/// errors vs recoverable quota rejections vs per-job failures).
///
//===----------------------------------------------------------------------===//

#ifndef E9_API_DRIVER_H
#define E9_API_DRIVER_H

#include "api/Session.h"

#include <iosfwd>

namespace e9 {
namespace api {

/// Historical names from the pre-session API; the batch driver is now a
/// plain Session run over an istream/ostream pair.
using DriverOptions = SessionOptions;
using DriverResult = SessionStats;

/// Runs the request stream \p In to completion (or to the first fatal
/// protocol violation), writing JSONL responses to \p Responses.
DriverResult runScript(std::istream &In, std::ostream &Responses,
                       const DriverOptions &Opts = DriverOptions());

} // namespace api
} // namespace e9

#endif // E9_API_DRIVER_H
