//===- verify/Verifier.h - Post-rewrite verification -----------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-rewrite verifier: an independent re-check of the rewriter's
/// output against the paper's preservation argument (§3). The rewriter is
/// *not* trusted — given the original image, the patch artifacts and the
/// rewritten image, the verifier re-disassembles and re-resolves
/// everything from scratch:
///
///   1. Every patched site decodes to the intended (padded/punned) jump,
///      short jump or int3, and its branch target resolves through the
///      mapping table into executable trampoline memory.
///   2. Every byte outside the recorded patch writes is unchanged, and
///      every recorded modified range is accounted for by a jump record
///      (no stray writes in either direction).
///   3. The grouping mapping table is consistent: mappings are well
///      formed, non-overlapping, collide with no segment content, every
///      trampoline byte survives the virtual->physical resolution, and no
///      physical block carries bytes nobody claims.
///   4. Optionally, differential execution: original and rewritten run
///      under the VM and must produce identical architectural results;
///      on divergence, traces restricted to unmodified instruction
///      addresses are diffed to locate the first divergent step.
///
/// StrictMode rewriting (frontend::RewriteOptions::Strict) runs these
/// checks and fails closed: a rewrite that cannot be proven byte-exact is
/// an error, never a silently-wrong binary.
///
//===----------------------------------------------------------------------===//

#ifndef E9_VERIFY_VERIFIER_H
#define E9_VERIFY_VERIFIER_H

#include "core/Patcher.h"
#include "elf/Image.h"
#include "support/IntervalSet.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace e9 {
namespace verify {

/// What kind of invariant a failure violates.
enum class FailureKind : uint8_t {
  BadInput,               ///< Verifier input itself is unusable.
  SegmentShape,           ///< Segment layout/entry/type differs.
  UnpatchedByteChanged,   ///< A byte outside the patch writes changed.
  UnaccountedWrite,       ///< Modified range with no jump record backing.
  SiteBadDecode,          ///< Patched site does not decode as recorded.
  SiteBadTarget,          ///< Jump target wrong or unresolvable.
  SiteMissingRecord,      ///< Patched site has no jump record at all.
  MappingInvalid,         ///< Malformed mapping-table entry.
  MappingConflict,        ///< Mapping collides with memory someone owns.
  TrampolineBytesWrong,   ///< Trampoline byte lost/garbled by grouping.
  StrayBlockByte,         ///< Unclaimed nonzero byte in a physical block.
  B0TableMismatch,        ///< B0 side table disagrees with the original.
  DifferentialDivergence, ///< Original and rewritten behave differently.
};
const char *failureKindName(FailureKind K);

/// One verification failure, anchored at an address where applicable.
struct VerifyFailure {
  FailureKind Kind = FailureKind::BadInput;
  uint64_t Addr = 0;
  std::string Message;
};

struct VerifyOptions {
  bool CheckText = true;     ///< Checks 1 + 2 (site decode, byte diff).
  bool CheckMappings = true; ///< Check 3 (grouping consistency).
  bool Differential = false; ///< Check 4 (costs two VM executions).
  /// On differential divergence, re-run both images with tracing and
  /// report the first diverging step (two more executions).
  bool DiffTraces = true;
  /// Run the differential check under the LowFat heap instead of the
  /// plain bump heap (for instrumented-hardening pipelines).
  bool UseLowFatHeap = false;
  uint64_t MaxInsns = 100'000'000;
  /// Stop collecting after this many failures (the report notes
  /// truncation). One corrupt block can otherwise fail every byte.
  size_t MaxFailures = 32;
  /// Cap on per-run trace entries retained for diffing.
  size_t MaxTraceSteps = 1u << 20;
};

/// Everything the verifier gets to see. Original and Rewritten are
/// required; the patch artifacts enable the corresponding checks (without
/// Jumps/ModifiedRanges the byte-diff check cannot attribute changes and
/// reports every difference).
struct VerifyInput {
  const elf::Image *Original = nullptr;
  const elf::Image *Rewritten = nullptr;
  const std::vector<core::PatchSiteResult> *Sites = nullptr;
  const std::vector<core::JumpRecord> *Jumps = nullptr;
  const std::vector<core::TrampolineChunk> *Chunks = nullptr;
  const std::vector<Interval> *ModifiedRanges = nullptr;
  /// Optional trace sink: every recorded failure is also emitted as a
  /// "verify" event. Checks themselves are unaffected.
  obs::TraceBuffer *Trace = nullptr;
};

/// The structured fail-closed report.
struct VerifyReport {
  std::vector<VerifyFailure> Failures;
  bool Truncated = false; ///< MaxFailures reached; more exist.

  // Coverage counters (what the verifier actually looked at).
  size_t JumpsChecked = 0;
  size_t SitesChecked = 0;
  uint64_t BytesCompared = 0;
  size_t MappingsChecked = 0;
  uint64_t ChunkBytesChecked = 0;
  size_t WorkloadsRun = 0;

  bool ok() const { return Failures.empty(); }
  /// One-line outcome plus up to \p MaxListed failure lines.
  std::string summary(size_t MaxListed = 8) const;
};

/// Runs every enabled check; never mutates either image.
VerifyReport verifyRewrite(const VerifyInput &In, const VerifyOptions &Opts);

} // namespace verify
} // namespace e9

#endif // E9_VERIFY_VERIFIER_H
