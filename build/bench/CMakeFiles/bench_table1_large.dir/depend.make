# Empty dependencies file for bench_table1_large.
# This may be replaced when dependencies are built.
