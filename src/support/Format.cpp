//===- support/Format.cpp -------------------------------------*- C++ -*-===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace e9;

std::string e9::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(static_cast<size_t>(Needed));
  }
  va_end(Args);
  return Out;
}

std::string e9::hex(uint64_t Value) { return format("0x%llx", (unsigned long long)Value); }

std::string e9::hexBytes(const uint8_t *Bytes, size_t N) {
  std::string Out;
  for (size_t I = 0; I != N; ++I) {
    if (I)
      Out += ' ';
    Out += format("%02x", Bytes[I]);
  }
  return Out;
}

std::string e9::hexBytes(const std::vector<uint8_t> &Bytes) {
  return hexBytes(Bytes.data(), Bytes.size());
}
