# Empty compiler generated dependencies file for lowfat_test.
# This may be replaced when dependencies are built.
