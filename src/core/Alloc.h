//===- core/Alloc.h - Constrained trampoline allocator ---------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocates trampoline space inside punning-constrained target intervals
/// (paper §4). Reserved regions (ELF segments, NULL/guard pages, the stack,
/// the hook region, non-canonical space) are excluded up front. To keep
/// virtual pages shared, allocation first tries to extend an already-open
/// bump zone that intersects the request interval, and only then opens a
/// fresh zone at the lowest free gap.
///
/// Open zones are indexed by cursor address so the in-bound candidates are
/// found by one ordered lookup instead of a linear scan over every zone
/// ever opened (which made a full rewrite O(sites^2)). Zones too small for
/// the request they are scanned under are retired on the spot: their free
/// tail stays visible to the fresh-zone pass through the interval set, so
/// page packing is preserved while the index only ever shrinks.
///
//===----------------------------------------------------------------------===//

#ifndef E9_CORE_ALLOC_H
#define E9_CORE_ALLOC_H

#include "support/IntervalSet.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace e9 {
namespace core {

/// Constrained first-fit allocator with page-packing bump zones.
class Allocator {
public:
  /// When false, the zone pass is skipped and every allocation takes the
  /// lowest free gap in its bound — the naive placement whose virtual
  /// page utilization collapses (LiteInst reports ~2.8%); kept for the
  /// ablation benchmark.
  bool PackingEnabled = true;

  /// Preferred lowest address for opening fresh zones. When it lies inside
  /// the request bound, the fresh-zone pass searches [SearchBase, Bound.Hi)
  /// first and only falls back to the full bound when that window is
  /// exhausted. The sharded patcher points each shard at a private window
  /// so concurrent shards rarely claim the same pages. 0 = no preference.
  uint64_t SearchBase = 0;

  /// Marks [Lo, Hi) as unusable for trampolines.
  void reserve(uint64_t Lo, uint64_t Hi) { Used.insert(Lo, Hi); }

  /// Allocates \p Size bytes inside \p Bound. Returns the start address,
  /// or nullopt when no free gap of that size exists in the bound.
  std::optional<uint64_t> allocate(uint64_t Size, const Interval &Bound);

  /// Releases a prior allocation (tactic rollback).
  void free(uint64_t Addr, uint64_t Size);

  /// All live allocations, address-ordered (addr -> size). Input to
  /// physical page grouping and to the cross-shard conflict check.
  const std::map<uint64_t, uint64_t> &allocations() const { return Allocs; }

  uint64_t allocatedBytes() const { return AllocatedBytes; }

  /// Open (not yet retired) bump zones; exposed for tests.
  size_t openZoneCount() const { return Zones.size(); }

  /// Observability counters (plain — each Allocator is single-threaded):
  /// allocations served by extending an open zone (pass 1), by opening a
  /// fresh zone (pass 2), and requests that found no space at all.
  uint64_t zoneExtends() const { return ZoneExtends; }
  uint64_t zoneOpens() const { return ZoneOpens; }
  uint64_t failedProbes() const { return FailedProbes; }
  /// Zone-map introspection gauges: cumulative zone-map entries visited by
  /// the pass-1 scan (the cost the ROADMAP's patch-phase round targets),
  /// zones retired by that scan, and the peak size of the open-zone map.
  uint64_t probeSteps() const { return ProbeSteps; }
  uint64_t zonesRetired() const { return ZonesRetired; }
  uint64_t openZonePeak() const { return OpenZonePeak; }

private:
  void notePeak() {
    if (Zones.size() > OpenZonePeak)
      OpenZonePeak = Zones.size();
  }

  IntervalSet Used; ///< Reserved regions plus live allocations.
  std::map<uint64_t, uint64_t> Allocs;
  std::map<uint64_t, uint64_t> Zones; ///< Open bump zones: cursor -> end.
  uint64_t AllocatedBytes = 0;
  uint64_t ZoneExtends = 0;
  uint64_t ZoneOpens = 0;
  uint64_t FailedProbes = 0;
  uint64_t ProbeSteps = 0;
  uint64_t ZonesRetired = 0;
  uint64_t OpenZonePeak = 0;
};

} // namespace core
} // namespace e9

#endif // E9_CORE_ALLOC_H
