//===- support/ThreadPool.h - Small fixed-size worker pool -----*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal worker pool for the sharded rewriting pipeline. Tasks must not
/// throw: an escaping exception terminates the process (the pipeline
/// reports failures through Status values, never exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_THREADPOOL_H
#define E9_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace e9 {

/// Fixed-size pool: submit() enqueues a task, wait() blocks until every
/// submitted task has finished. Destruction joins all workers.
class ThreadPool {
public:
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  void submit(std::function<void()> Task);

  /// Blocks until the queue is drained and no task is running.
  void wait();

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Best-effort hardware concurrency, always >= 1.
  static unsigned hardwareThreads();

private:
  void workerLoop();

  std::mutex Mu;
  std::condition_variable HasWork; ///< Workers sleep here.
  std::condition_variable Idle;    ///< wait() sleeps here.
  std::queue<std::function<void()>> Queue;
  size_t Pending = 0; ///< Queued plus currently-running tasks.
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

/// Runs Fn(I) for every I in [0, N) on up to \p Jobs workers. With
/// Jobs <= 1 (or N <= 1) everything runs inline on the calling thread in
/// index order; otherwise completion order is unspecified, so Fn must only
/// touch per-index state.
void parallelFor(size_t N, unsigned Jobs,
                 const std::function<void(size_t)> &Fn);

} // namespace e9

#endif // E9_SUPPORT_THREADPOOL_H
