//===- tests/api_test.cpp - patch-request protocol + templates -*- C++ -*-===//
//
// The src/api subsystem end to end: the template compiler (grammar,
// fail-closed compile errors, byte-equivalence with the built-in
// trampoline kinds), the protocol schema validation, the malformed-
// request corpus (the protocol analog of the corrupt-ELF corpus), and
// the batch driver's determinism guarantee: `apply` output is
// byte-identical to the equivalent direct rewrite for every jobs value.
//
//===----------------------------------------------------------------------===//

#include "api/Driver.h"
#include "api/Protocol.h"
#include "api/Template.h"

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Runtime.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "repair/Repair.h"
#include "support/Format.h"
#include "vm/Loader.h"
#include "vm/Vm.h"
#include "workload/Gen.h"
#include "x86/Decoder.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace e9;
using Program = core::TemplateProgram;
using OpKind = core::TemplateProgram::Op::Kind;

namespace {

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

std::vector<uint8_t> fileBytes(const std::string &Path) {
  std::ifstream F(Path, std::ios::binary);
  EXPECT_TRUE(F) << "cannot read " << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(F),
                              std::istreambuf_iterator<char>());
}

/// Runs a script through the driver, returning the result + responses.
struct ScriptRun {
  api::DriverResult R;
  std::string Responses;

  explicit ScriptRun(const std::string &Script, unsigned JobsOverride = 0) {
    std::istringstream In(Script);
    std::ostringstream Out;
    api::DriverOptions Opts;
    Opts.JobsOverride = JobsOverride;
    R = api::runScript(In, Out, Opts);
    Responses = Out.str();
  }
};

/// Generates a deterministic workload and writes it to a temp file.
std::string genWorkloadFile(const char *Name, uint64_t Seed,
                            unsigned Funcs) {
  workload::WorkloadConfig C;
  C.Name = Name;
  C.Seed = Seed;
  C.NumFuncs = Funcs;
  workload::Workload W = workload::generateWorkload(C);
  std::string Path = tmpPath(Name);
  EXPECT_TRUE(elf::writeFile(W.Image, Path).isOk());
  return Path;
}

/// A decoded single instruction to instantiate trampolines against.
struct OneInsn {
  std::vector<uint8_t> Bytes;
  x86::Insn I;

  explicit OneInsn(std::vector<uint8_t> B, uint64_t Addr = 0x401000)
      : Bytes(std::move(B)) {
    EXPECT_EQ(x86::decode(Bytes.data(), Bytes.size(), Addr, I),
              x86::DecodeStatus::Ok);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Template compiler
//===----------------------------------------------------------------------===//

TEST(TemplateCompiler, CompilesCoreMacros) {
  auto P = api::compileTemplate("t", "$instruction $continue");
  ASSERT_TRUE(P.isOk()) << P.reason();
  ASSERT_EQ(P->Ops.size(), 2u);
  EXPECT_EQ(P->Ops[0].K, OpKind::Displaced);
  EXPECT_EQ(P->Ops[1].K, OpKind::JumpBack);
}

TEST(TemplateCompiler, FixedItemsMergeIntoOneRawOp) {
  auto P = api::compileTemplate(
      "t", "$bytes(0x90,144) $hex(90 cc) $asm(nop; push rax; pop r9)");
  ASSERT_TRUE(P.isOk()) << P.reason();
  ASSERT_EQ(P->Ops.size(), 1u);
  EXPECT_EQ(P->Ops[0].K, OpKind::Raw);
  EXPECT_EQ(P->Ops[0].Raw,
            (std::vector<uint8_t>{0x90, 0x90, 0x90, 0xcc, 0x90, 0x50, 0x41,
                                  0x59}));
}

TEST(TemplateCompiler, SymbolicOperandsStaySymbolic) {
  auto P = api::compileTemplate(
      "t", "$counter($arg) $hook(0x5000) $asm(mov rdi, $site) $continue");
  ASSERT_TRUE(P.isOk()) << P.reason();
  ASSERT_EQ(P->Ops.size(), 4u);
  EXPECT_EQ(P->Ops[0].K, OpKind::CounterInc);
  EXPECT_EQ(P->Ops[0].B, Program::Op::Bind::Arg);
  EXPECT_EQ(P->Ops[1].K, OpKind::HookCall);
  EXPECT_EQ(P->Ops[1].B, Program::Op::Bind::Imm);
  EXPECT_EQ(P->Ops[1].Imm, 0x5000u);
  EXPECT_EQ(P->Ops[2].K, OpKind::MovRegImm);
  EXPECT_EQ(P->Ops[2].B, Program::Op::Bind::Site);
  EXPECT_EQ(P->Ops[2].R, x86::Reg::RDI);
  EXPECT_EQ(P->Ops[3].K, OpKind::JumpBack);
}

TEST(TemplateCompiler, RejectsMalformedBodies) {
  const struct {
    const char *Body;
    const char *ErrPart;
  } Cases[] = {
      {"", "empty template body"},
      {"$hex(abc)", "odd nibble"},
      {"$hex()", "empty byte string"},
      {"$hex(zz)", "not a hex digit"},
      {"$bytes(256)", "not a byte value"},
      {"$bytes(1,,2)", "not a byte value"},
      {"$frobnicate", "unknown macro"},
      {"$instruction(5)", "does not take"},
      {"$counter", "requires"},
      {"$counter(0x80000000)", "abs32"},
      {"$counter(banana)", "malformed operand"},
      {"$jump(", "missing closing"},
      {"$asm(mov rax)", "mov wants"},
      {"$asm(mov rip, 1)", "bad register"},
      {"$asm(jmp banana)", "jmp wants"},
      {"$asm(frob rax)", "unknown mnemonic"},
      {"$asm(nop rax)", "takes no operand"},
      {"$instruction junk", "expected a $macro"},
      {"$instruction$continue", "expected whitespace"},
  };
  for (const auto &C : Cases) {
    auto P = api::compileTemplate("bad", C.Body);
    ASSERT_FALSE(P.isOk()) << "body accepted: " << C.Body;
    EXPECT_NE(P.reason().find(C.ErrPart), std::string::npos)
        << "body: " << C.Body << "\nerror: " << P.reason();
  }
}

TEST(TemplateCache, RejectsDuplicateNames) {
  api::TemplateCache Cache;
  ASSERT_TRUE(Cache.define("t", "$instruction $continue").isOk());
  Status S = Cache.define("t", "$instruction $continue");
  ASSERT_FALSE(S.isOk());
  EXPECT_NE(S.reason().find("duplicate template name"), std::string::npos);
  EXPECT_NE(Cache.find("t"), nullptr);
  EXPECT_EQ(Cache.find("undefined"), nullptr);
}

TEST(TemplateCache, LruEvictionBoundsTheCache) {
  api::TemplateCache Cache(2);
  ASSERT_TRUE(Cache.define("a", "$instruction $continue").isOk());
  ASSERT_TRUE(Cache.define("b", "$instruction $continue").isOk());
  // Touch "a": its recency is now newer than "b"'s, so defining a third
  // entry evicts "b", not "a".
  ASSERT_NE(Cache.find("a"), nullptr);
  ASSERT_TRUE(Cache.define("c", "$instruction $continue").isOk());
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_EQ(Cache.find("b"), nullptr);
  EXPECT_NE(Cache.find("a"), nullptr);
  EXPECT_NE(Cache.find("c"), nullptr);
  // A *live* duplicate is still a protocol error — eviction never makes
  // redefining a cached name legal.
  Status S = Cache.define("a", "$hex(90) $continue");
  ASSERT_FALSE(S.isOk());
  EXPECT_NE(S.reason().find("duplicate template name"), std::string::npos);
}

TEST(TemplateCache, EvictedNameRecompilesOnRedefine) {
  api::TemplateCache Cache(1);
  ASSERT_TRUE(Cache.define("t", "$instruction $continue").isOk());
  ASSERT_TRUE(Cache.define("other", "$instruction $continue").isOk());
  ASSERT_EQ(Cache.find("t"), nullptr); // evicted by "other"
  // Redefining the evicted name must recompile the new body, not revive
  // the old program: the ops prove which body was compiled.
  ASSERT_TRUE(Cache.define("t", "$hex(90) $continue").isOk());
  auto P = Cache.find("t");
  ASSERT_NE(P, nullptr);
  ASSERT_GE(P->Ops.size(), 1u);
  EXPECT_EQ(P->Ops[0].K, OpKind::Raw);
  EXPECT_EQ(P->Ops[0].Raw, std::vector<uint8_t>{0x90});
  EXPECT_EQ(Cache.evictions(), 2u);
}

TEST(TemplateCache, InFlightProgramsSurviveEviction) {
  api::TemplateCache Cache(1);
  ASSERT_TRUE(Cache.define("t", "$instruction $continue").isOk());
  std::shared_ptr<const Program> Held = Cache.find("t");
  ASSERT_NE(Held, nullptr);
  ASSERT_TRUE(Cache.define("evictor", "$hex(cc)").isOk());
  EXPECT_EQ(Cache.find("t"), nullptr);
  // The shared_ptr held by an in-flight patch request keeps the compiled
  // program alive past eviction.
  EXPECT_EQ(Held->Ops.size(), 2u);
  EXPECT_EQ(Held->Ops[0].K, OpKind::Displaced);
}

//===----------------------------------------------------------------------===//
// Template instantiation: byte-equivalence with the built-in kinds
//===----------------------------------------------------------------------===//

TEST(TemplateInstantiation, PassthroughMatchesBuiltinEmpty) {
  OneInsn In({0x48, 0xc7, 0xc1, 0x11, 0x22, 0x33, 0x00}); // mov rcx, imm32
  auto P = api::compileTemplate("passthrough", "$instruction $continue");
  ASSERT_TRUE(P.isOk());

  core::TrampolineSpec T;
  T.Kind = core::TrampolineKind::Template;
  T.Program = std::make_shared<const Program>(std::move(*P));
  core::TrampolineSpec Empty; // Kind::Empty

  constexpr uint64_t TrampAddr = 0x500000;
  ASSERT_EQ(core::trampolineSize(T, In.I),
            core::trampolineSize(Empty, In.I));
  auto A = core::buildTrampoline(T, In.I, In.Bytes.data(), TrampAddr);
  auto B = core::buildTrampoline(Empty, In.I, In.Bytes.data(), TrampAddr);
  ASSERT_TRUE(A.isOk() && B.isOk());
  EXPECT_EQ(*A, *B);
}

TEST(TemplateInstantiation, CounterTemplateMatchesBuiltinCounter) {
  OneInsn In({0x48, 0xc7, 0xc1, 0x11, 0x22, 0x33, 0x00});
  auto P =
      api::compileTemplate("census", "$counter($arg) $instruction $continue");
  ASSERT_TRUE(P.isOk());

  constexpr uint64_t Slot = 0x700000;
  core::TrampolineSpec T;
  T.Kind = core::TrampolineKind::Template;
  T.Program = std::make_shared<const Program>(std::move(*P));
  T.TemplateArg = Slot;
  core::TrampolineSpec C;
  C.Kind = core::TrampolineKind::Counter;
  C.CounterAddr = Slot;

  constexpr uint64_t TrampAddr = 0x500000;
  ASSERT_EQ(core::trampolineSize(T, In.I), core::trampolineSize(C, In.I));
  auto A = core::buildTrampoline(T, In.I, In.Bytes.data(), TrampAddr);
  auto B = core::buildTrampoline(C, In.I, In.Bytes.data(), TrampAddr);
  ASSERT_TRUE(A.isOk() && B.isOk());
  EXPECT_EQ(*A, *B);
}

TEST(TemplateInstantiation, CounterOperandOutsideAbs32FailsRecoverably) {
  OneInsn In({0x48, 0xc7, 0xc1, 0x11, 0x22, 0x33, 0x00});
  auto P =
      api::compileTemplate("census", "$counter($arg) $instruction $continue");
  ASSERT_TRUE(P.isOk());
  core::TrampolineSpec T;
  T.Kind = core::TrampolineKind::Template;
  T.Program = std::make_shared<const Program>(std::move(*P));
  T.TemplateArg = 1ull << 32; // not abs32-addressable: must error, not die
  auto A = core::buildTrampoline(T, In.I, In.Bytes.data(), 0x500000);
  ASSERT_FALSE(A.isOk());
  EXPECT_NE(A.reason().find("abs32"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Protocol schema validation
//===----------------------------------------------------------------------===//

TEST(Protocol, AcceptsWellFormedMessages) {
  auto M = api::parseMessage(
      R"({"type":"patch","template":"t","addr":"0xdeadbeef","arg":7})");
  ASSERT_TRUE(M.isOk()) << M.reason();
  EXPECT_EQ(M->Type, api::MsgType::Patch);
  EXPECT_EQ(M->u64("addr").value(), 0xdeadbeefull);
  EXPECT_EQ(M->u64("arg").value(), 7u);
  EXPECT_EQ(M->str("template"), "t");

  M = api::parseMessage(R"({"type":"binary","path":"a.elf"})");
  ASSERT_TRUE(M.isOk());
  EXPECT_EQ(M->Type, api::MsgType::Binary);
}

TEST(Protocol, RejectsSchemaViolations) {
  const struct {
    const char *Line;
    const char *ErrPart;
  } Cases[] = {
      {R"({"type":"binary","path":)", "malformed JSONL"},
      {R"([1,2])", "malformed JSONL"},
      {R"({"path":"a.elf"})", "missing the string \"type\""},
      {R"({"type":"frobnicate"})", "unknown message type"},
      {R"({"type":"binary"})", "missing required field \"path\""},
      {R"({"type":"binary","path":"a","extra":1})", "unknown field"},
      {R"({"type":"patch","template":"t"})", "exactly one of"},
      {R"({"type":"patch","template":"t","addr":"0x1","select":"jumps"})",
       "exactly one of"},
      {R"({"type":"patch","template":"t","addr":"nope"})",
       "must be an unsigned integer"},
      {R"({"type":"patch","template":"t","addr":-4})",
       "must be an unsigned integer"},
      {R"({"type":"option","name":"jobs"})",
       "missing required field \"value\""},
  };
  for (const auto &C : Cases) {
    auto M = api::parseMessage(C.Line);
    ASSERT_FALSE(M.isOk()) << "accepted: " << C.Line;
    EXPECT_NE(M.reason().find(C.ErrPart), std::string::npos)
        << "line: " << C.Line << "\nerror: " << M.reason();
  }
}

//===----------------------------------------------------------------------===//
// Malformed-request corpus (the corrupt-ELF pattern for the protocol)
//===----------------------------------------------------------------------===//

TEST(DriverCorpus, ProtocolViolationsFailClosed) {
  const std::string Bin = genWorkloadFile("api_corpus.elf", 3, 8);
  const std::string Prologue =
      "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
      "{\"type\":\"template\",\"name\":\"ok\",\"body\":\"$instruction "
      "$continue\"}\n";
  const struct {
    const char *Name;
    std::string Script;
    const char *ErrPart;
  } Cases[] = {
      {"truncated JSON", Prologue + "{\"type\":\"patch\",\"temp",
       "malformed JSONL"},
      {"unknown message type", Prologue + "{\"type\":\"rewrite\"}",
       "unknown message type"},
      {"duplicate template name",
       Prologue + "{\"type\":\"template\",\"name\":\"ok\",\"body\":\"$hex("
                  "90)\"}",
       "duplicate template name"},
      {"odd hex nibble count",
       Prologue + "{\"type\":\"template\",\"name\":\"bad\",\"body\":\"$hex("
                  "abc) $continue\"}",
       "odd nibble"},
      {"unknown template in patch",
       Prologue + "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":"
                  "\"ghost\"}",
       "unknown template"},
      {"unknown selector",
       Prologue + "{\"type\":\"patch\",\"select\":\"sideways\","
                  "\"template\":\"ok\"}",
       "unknown selector"},
      {"patch outside a job",
       "{\"type\":\"template\",\"name\":\"ok\",\"body\":\"$continue\"}\n"
       "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"ok\"}",
       "outside a job"},
      {"unknown option",
       Prologue + "{\"type\":\"option\",\"name\":\"turbo\",\"value\":\"1\"}",
       "unknown option"},
      {"malformed option value",
       Prologue + "{\"type\":\"option\",\"name\":\"jobs\",\"value\":"
                  "\"many\"}",
       "unsigned integer"},
      {"malformed bool option",
       Prologue + "{\"type\":\"option\",\"name\":\"strict\",\"value\":"
                  "\"yes\"}",
       "or \\\"false\\\""}, // the response JSON-escapes the quotes
      {"emit without patches",
       Prologue + "{\"type\":\"emit\",\"path\":\"out.elf\"}",
       "without any patch requests"},
      {"binary while job open",
       Prologue + "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}",
       "still open"},
      {"stream ends mid-job", Prologue, "missing emit"},
  };
  for (const auto &C : Cases) {
    ScriptRun Run(C.Script);
    EXPECT_TRUE(Run.R.ProtocolError) << C.Name;
    EXPECT_EQ(Run.R.exitCode(), 1) << C.Name;
    EXPECT_EQ(Run.R.JobsOk, 0u) << C.Name;
    EXPECT_NE(Run.Responses.find("\"type\":\"error\""), std::string::npos)
        << C.Name;
    EXPECT_NE(Run.Responses.find(C.ErrPart), std::string::npos)
        << C.Name << "\nresponses: " << Run.Responses;
  }
}

TEST(DriverCorpus, Rel32OverflowTemplateFailsClosed) {
  const std::string Bin = genWorkloadFile("api_rel32.elf", 4, 8);
  // A jmp to an address no trampoline can reach with rel32: every site's
  // build fails, and with a zero failed-site budget the job fails closed
  // instead of emitting a partially-patched binary.
  const std::string Script =
      "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
      "{\"type\":\"template\",\"name\":\"far\",\"body\":\"$instruction "
      "$asm(jmp 0x7f0000000000)\"}\n"
      "{\"type\":\"option\",\"name\":\"max-failed\",\"value\":\"0\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"far\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + tmpPath("api_rel32_out.elf") +
      "\"}\n";
  ScriptRun Run(Script);
  EXPECT_FALSE(Run.R.ProtocolError) << Run.Responses;
  EXPECT_EQ(Run.R.JobsFailed, 1u);
  EXPECT_EQ(Run.R.exitCode(), 1);
  EXPECT_NE(Run.Responses.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(Run.Responses.find("failed-site budget"), std::string::npos)
      << Run.Responses;
}

TEST(DriverCorpus, UnreadableBinaryFailsTheJobNotTheStream) {
  const std::string Bin = genWorkloadFile("api_mixed.elf", 5, 8);
  const std::string Good = tmpPath("api_mixed_out.elf");
  const std::string Script =
      "{\"type\":\"template\",\"name\":\"ok\",\"body\":\"$instruction "
      "$continue\"}\n"
      "{\"type\":\"binary\",\"path\":\"/nonexistent/nope.elf\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"ok\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + tmpPath("api_mixed_bad.elf") +
      "\"}\n"
      "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"ok\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + Good + "\"}\n";
  ScriptRun Run(Script);
  EXPECT_FALSE(Run.R.ProtocolError) << Run.Responses;
  EXPECT_EQ(Run.R.JobsFailed, 1u);
  EXPECT_EQ(Run.R.JobsOk, 1u);
  EXPECT_EQ(Run.R.exitCode(), 1); // a failed job still fails the batch
  EXPECT_NE(Run.Responses.find("cannot load"), std::string::npos);
  EXPECT_NE(Run.Responses.find("\"job\":2,\"ok\":true"), std::string::npos)
      << Run.Responses;
}

//===----------------------------------------------------------------------===//
// Determinism: apply == direct rewrite, for every jobs value
//===----------------------------------------------------------------------===//

namespace {

/// The RewriteOptions `e9tool rewrite <in> <out> --strict --jobs=J`
/// builds (defaults + strict), the comparison baseline for apply.
frontend::RewriteOptions directOptions(unsigned Jobs) {
  frontend::RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::Empty;
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.withStrict().withJobs(Jobs);
  return Opts;
}

} // namespace

TEST(DriverDeterminism, ApplyMatchesDirectRewriteForEveryJobsValue) {
  const std::string Bin = genWorkloadFile("api_det.elf", 2026, 48);
  auto Img = elf::readFile(Bin);
  ASSERT_TRUE(Img.isOk());

  // The direct baseline (jobs value provably does not matter, see
  // parallel_test; rewrite once at jobs=1).
  frontend::DisasmResult Dis = frontend::linearDisassemble(*Img);
  auto Direct = frontend::rewrite(*Img, frontend::selectJumps(Dis.Insns),
                                  directOptions(1));
  ASSERT_TRUE(Direct.isOk()) << Direct.reason();
  const std::string DirectPath = tmpPath("api_det_direct.elf");
  ASSERT_TRUE(elf::writeFile(Direct->Rewritten, DirectPath).isOk());
  const std::vector<uint8_t> Want = fileBytes(DirectPath);

  for (unsigned Jobs : {1u, 2u, 4u}) {
    const std::string Out =
        tmpPath("api_det_out_" + std::to_string(Jobs) + ".elf");
    const std::string Script =
        "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
        "{\"type\":\"template\",\"name\":\"passthrough\",\"body\":"
        "\"$instruction $continue\"}\n"
        "{\"type\":\"option\",\"name\":\"jobs\",\"value\":\"" +
        std::to_string(Jobs) + "\"}\n"
        "{\"type\":\"option\",\"name\":\"strict\",\"value\":\"true\"}\n"
        "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":"
        "\"passthrough\"}\n"
        "{\"type\":\"emit\",\"path\":\"" + Out + "\"}\n";
    ScriptRun Run(Script);
    ASSERT_TRUE(Run.R.ok()) << Run.Responses;
    EXPECT_EQ(fileBytes(Out), Want) << "jobs=" << Jobs;
    EXPECT_NE(Run.Responses.find("\"ok\":true"), std::string::npos);
  }
}

TEST(DriverDeterminism, MultiJobStreamSharesTheTemplateCache) {
  const std::string BinA = genWorkloadFile("api_multi_a.elf", 11, 12);
  const std::string BinB = genWorkloadFile("api_multi_b.elf", 12, 12);
  const std::string OutA = tmpPath("api_multi_a_out.elf");
  const std::string OutB = tmpPath("api_multi_b_out.elf");
  // The template is defined once, before the first job; the second job
  // reuses the cached program.
  const std::string Script =
      "{\"type\":\"template\",\"name\":\"passthrough\",\"body\":"
      "\"$instruction $continue\"}\n"
      "{\"type\":\"binary\",\"path\":\"" + BinA + "\"}\n"
      "{\"type\":\"option\",\"name\":\"strict\",\"value\":\"true\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":"
      "\"passthrough\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + OutA + "\"}\n"
      "\n"
      "{\"type\":\"binary\",\"path\":\"" + BinB + "\"}\n"
      "{\"type\":\"option\",\"name\":\"strict\",\"value\":\"true\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":"
      "\"passthrough\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + OutB + "\"}\n";
  ScriptRun Run(Script);
  ASSERT_TRUE(Run.R.ok()) << Run.Responses;
  EXPECT_EQ(Run.R.JobsOk, 2u);

  for (const auto &[Bin, Out] : {std::pair(BinA, OutA), {BinB, OutB}}) {
    auto Img = elf::readFile(Bin);
    ASSERT_TRUE(Img.isOk());
    frontend::DisasmResult Dis = frontend::linearDisassemble(*Img);
    auto Direct = frontend::rewrite(*Img, frontend::selectJumps(Dis.Insns),
                                    directOptions(1));
    ASSERT_TRUE(Direct.isOk());
    const std::string Ref = tmpPath("api_multi_ref.elf");
    ASSERT_TRUE(elf::writeFile(Direct->Rewritten, Ref).isOk());
    EXPECT_EQ(fileBytes(Out), fileBytes(Ref));
  }
}

//===----------------------------------------------------------------------===//
// The Counter payload re-expressed as a user-defined template
//===----------------------------------------------------------------------===//

TEST(DriverRoundTrip, CounterTemplateCountsBranchesAndPassesVerifier) {
  workload::WorkloadConfig C;
  C.Name = "api_census";
  C.Seed = 7;
  C.NumFuncs = 10;
  C.MainIters = 5;
  workload::Workload W = workload::generateWorkload(C);

  frontend::DisasmResult D = frontend::linearDisassemble(W.Image);
  auto Locs = frontend::selectJumps(D.Insns);
  ASSERT_FALSE(Locs.empty());
  uint64_t CounterBase = frontend::addCounterSegment(W.Image);

  const std::string Bin = tmpPath("api_census.elf");
  ASSERT_TRUE(elf::writeFile(W.Image, Bin).isOk());
  const std::string Out = tmpPath("api_census_out.elf");

  // One patch request per site, each binding $arg to its own slot —
  // exactly the jump_census example, but arriving over the protocol.
  std::string Script =
      "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
      "{\"type\":\"template\",\"name\":\"census\",\"body\":"
      "\"$counter($arg) $instruction $continue\"}\n"
      "{\"type\":\"option\",\"name\":\"strict\",\"value\":\"true\"}\n"
      "{\"type\":\"option\",\"name\":\"verify\",\"value\":\"true\"}\n";
  for (size_t I = 0; I != Locs.size(); ++I)
    Script += "{\"type\":\"patch\",\"template\":\"census\",\"addr\":\"" +
              hex(Locs[I]) + "\",\"arg\":\"" + hex(CounterBase + I * 8) +
              "\"}\n";
  Script += "{\"type\":\"emit\",\"path\":\"" + Out + "\"}\n";

  ScriptRun Run(Script);
  ASSERT_TRUE(Run.R.ok()) << Run.Responses;
  EXPECT_NE(Run.Responses.find("\"verify_findings\":0"), std::string::npos)
      << Run.Responses;

  // Byte-identical to the in-process per-site Counter rewrite.
  std::map<uint64_t, uint64_t> SlotOf;
  for (size_t I = 0; I != Locs.size(); ++I)
    SlotOf[Locs[I]] = CounterBase + I * 8;
  frontend::RewriteOptions Opts;
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.withStrict();
  Opts.SpecFor = [&](uint64_t Addr) {
    core::TrampolineSpec S;
    S.Kind = core::TrampolineKind::Counter;
    S.CounterAddr = SlotOf.at(Addr);
    return S;
  };
  auto Direct = frontend::rewrite(W.Image, Locs, Opts);
  ASSERT_TRUE(Direct.isOk()) << Direct.reason();
  const std::string Ref = tmpPath("api_census_ref.elf");
  ASSERT_TRUE(elf::writeFile(Direct->Rewritten, Ref).isOk());
  EXPECT_EQ(fileBytes(Out), fileBytes(Ref));

  // And the instrumented binary actually counts: run it under the VM and
  // harvest the slots.
  auto Patched = elf::readFile(Out);
  ASSERT_TRUE(Patched.isOk());
  vm::Vm V;
  lowfat::PlainHeap Heap;
  lowfat::installPlainHeap(V, Heap);
  auto L = vm::load(V, *Patched);
  ASSERT_TRUE(L.isOk()) << L.reason();
  auto R = V.run(50'000'000);
  ASSERT_TRUE(R.ok()) << R.Error;
  uint64_t Total = 0;
  for (size_t I = 0; I != Locs.size(); ++I) {
    uint64_t N = 0;
    (void)V.Mem.read64(CounterBase + I * 8, N);
    Total += N;
  }
  EXPECT_GT(Total, 0u) << "no branch visits recorded";
}

//===----------------------------------------------------------------------===//
// Degraded-status reporting and the repair option
//===----------------------------------------------------------------------===//

TEST(DriverStatus, DegradedFlagDistinguishesPartialRewrites) {
  const std::string Bin = genWorkloadFile("api_degraded.elf", 4, 8);
  // A jmp target no trampoline can reach with rel32: every site fails to
  // build. With the default (unbounded) failed-site budget the job still
  // succeeds — but the status response must say degraded:true so a client
  // can tell this apart from a clean rewrite.
  const std::string Script =
      "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
      "{\"type\":\"template\",\"name\":\"far\",\"body\":\"$instruction "
      "$asm(jmp 0x7f0000000000)\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"far\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + tmpPath("api_degraded_out.elf") +
      "\"}\n";
  ScriptRun Run(Script);
  ASSERT_TRUE(Run.R.ok()) << Run.Responses;
  EXPECT_NE(Run.Responses.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(Run.Responses.find("\"degraded\":true"), std::string::npos)
      << Run.Responses;

  // A clean rewrite reports degraded:false.
  const std::string Clean =
      "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
      "{\"type\":\"template\",\"name\":\"ok\",\"body\":\"$instruction "
      "$continue\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"ok\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + tmpPath("api_clean_out.elf") +
      "\"}\n";
  ScriptRun CleanRun(Clean);
  ASSERT_TRUE(CleanRun.R.ok()) << CleanRun.Responses;
  EXPECT_NE(CleanRun.Responses.find("\"degraded\":false"),
            std::string::npos);
}

TEST(DriverRepair, RepairOptionSelfVerifiesAndReportsOutcome) {
  const std::string Bin = genWorkloadFile("api_repair.elf", 9, 10);
  const std::string Out = tmpPath("api_repair_out.elf");
  const std::string Script =
      "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
      "{\"type\":\"template\",\"name\":\"ok\",\"body\":\"$instruction "
      "$continue\"}\n"
      "{\"type\":\"option\",\"name\":\"repair\",\"value\":\"true\"}\n"
      "{\"type\":\"option\",\"name\":\"repair-rounds\",\"value\":\"8\"}\n"
      "{\"type\":\"option\",\"name\":\"repair-floor\",\"value\":\"b0\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"ok\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + Out + "\"}\n";
  ScriptRun Run(Script);
  ASSERT_TRUE(Run.R.ok()) << Run.Responses;
  EXPECT_NE(Run.Responses.find("\"repair_converged\":true"),
            std::string::npos)
      << Run.Responses;
  EXPECT_NE(Run.Responses.find("\"repair_rounds\":1"), std::string::npos);
  EXPECT_NE(Run.Responses.find("\"degraded\":false"), std::string::npos);

  // The emitted binary is byte-identical to a direct self-verifying
  // rewrite: the protocol adds no nondeterminism.
  auto Img = elf::readFile(Bin);
  ASSERT_TRUE(Img.isOk());
  frontend::DisasmResult Dis = frontend::linearDisassemble(*Img);
  frontend::RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::Empty;
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.Repair.Enabled = true;
  Opts.Repair.MaxRounds = 8;
  auto Direct = repair::selfVerifyingRewrite(
      *Img, frontend::selectJumps(Dis.Insns), Opts);
  ASSERT_TRUE(Direct.isOk()) << Direct.reason();
  const std::string Ref = tmpPath("api_repair_ref.elf");
  ASSERT_TRUE(elf::writeFile(Direct->Rewrite.Rewritten, Ref).isOk());
  EXPECT_EQ(fileBytes(Out), fileBytes(Ref));
}

TEST(DriverRepair, MalformedRepairOptionsFailClosed) {
  const std::string Bin = genWorkloadFile("api_repair_bad.elf", 9, 8);
  const struct {
    const char *Line;
    const char *ErrPart;
  } Cases[] = {
      {"{\"type\":\"option\",\"name\":\"repair\",\"value\":\"maybe\"}",
       "or \\\"false\\\""},
      {"{\"type\":\"option\",\"name\":\"repair-floor\",\"value\":"
       "\"turbo\"}",
       "wants full, no-t3"},
      {"{\"type\":\"option\",\"name\":\"repair-rounds\",\"value\":"
       "\"lots\"}",
       "unsigned integer"},
  };
  for (const auto &C : Cases) {
    const std::string Script =
        "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n" + C.Line + "\n";
    ScriptRun Run(Script);
    EXPECT_TRUE(Run.R.ProtocolError) << C.Line;
    EXPECT_NE(Run.Responses.find(C.ErrPart), std::string::npos)
        << C.Line << "\nresponses: " << Run.Responses;
  }
}
