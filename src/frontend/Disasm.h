//===- frontend/Disasm.h - Linear disassembly frontend ---------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E9Patch deliberately has no built-in disassembler: instruction locations
/// and sizes are frontend input (paper §2.2). This is the paper's "basic
/// wrapper frontend": linear disassembly over the executable segment.
/// Undecodable bytes are skipped one at a time (data islands in .text),
/// mirroring the ChromeMain workaround discussed in §6.2.
///
//===----------------------------------------------------------------------===//

#ifndef E9_FRONTEND_DISASM_H
#define E9_FRONTEND_DISASM_H

#include "elf/Image.h"
#include "x86/Insn.h"

#include <cstdint>
#include <vector>

namespace e9 {
namespace frontend {

struct DisasmResult {
  std::vector<x86::Insn> Insns;
  size_t UndecodableBytes = 0;
};

/// Linearly disassembles [Start, End) of \p Img. With Start == End == 0,
/// the whole file-backed content of the first executable segment is used.
DisasmResult linearDisassemble(const elf::Image &Img, uint64_t Start = 0,
                               uint64_t End = 0);

} // namespace frontend
} // namespace e9

#endif // E9_FRONTEND_DISASM_H
