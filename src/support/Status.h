//===- support/Status.h - Lightweight error propagation -------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Status/Result types used for recoverable errors throughout the
/// library. Exceptions and RTTI are not used; programmatic errors are
/// handled with assert()/unreachable instead.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_STATUS_H
#define E9_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace e9 {

/// Result of a fallible operation with a human-readable reason on failure.
class Status {
public:
  /// Creates a success value.
  static Status ok() { return Status(); }

  /// Creates a failure value carrying \p Reason.
  static Status error(std::string Reason) {
    Status S;
    S.Failed = true;
    S.Reason = std::move(Reason);
    return S;
  }

  /// Returns true when the operation succeeded.
  bool isOk() const { return !Failed; }

  explicit operator bool() const { return isOk(); }

  /// Returns the failure reason; empty for success values.
  const std::string &reason() const { return Reason; }

private:
  bool Failed = false;
  std::string Reason;
};

/// A value-or-error wrapper in the spirit of llvm::Expected, without the
/// checked-error machinery (errors are plain strings).
template <typename T> class Result {
public:
  Result(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure result from a Status; \p S must be an error.
  Result(Status S) : Err(std::move(S)) {
    assert(!Err->isOk() && "Result error constructed from a success Status");
  }

  static Result<T> error(std::string Reason) {
    return Result<T>(Status::error(std::move(Reason)));
  }

  bool isOk() const { return Value.has_value(); }
  explicit operator bool() const { return isOk(); }

  /// Returns the contained value; only valid when isOk().
  T &operator*() {
    assert(isOk() && "dereferencing a failed Result");
    return *Value;
  }
  const T &operator*() const {
    assert(isOk() && "dereferencing a failed Result");
    return *Value;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// Returns the failure reason; only valid when !isOk().
  const std::string &reason() const {
    assert(!isOk() && "reading the error of a successful Result");
    return Err->reason();
  }

  /// Moves the value out; only valid when isOk().
  T take() {
    assert(isOk() && "taking the value of a failed Result");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  std::optional<Status> Err;
};

/// Marks unreachable program points; aborts with a message when hit.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace e9

#define e9_unreachable(Msg)                                                    \
  ::e9::unreachableInternal(Msg, __FILE__, __LINE__)

#endif // E9_SUPPORT_STATUS_H
