//===- api/Template.cpp ---------------------------------------*- C++ -*-===//

#include "api/Template.h"

#include "support/Format.h"
#include "x86/Assembler.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace e9;
using namespace e9::api;
using Program = core::TemplateProgram;
using Op = core::TemplateProgram::Op;

namespace {

bool isWs(char C) {
  return C == ' ' || C == '\t' || C == '\n' || C == '\r';
}

std::string_view trim(std::string_view S) {
  while (!S.empty() && isWs(S.front()))
    S.remove_prefix(1);
  while (!S.empty() && isWs(S.back()))
    S.remove_suffix(1);
  return S;
}

/// Splits \p S on \p Sep, trimming each piece (empty pieces preserved so
/// "1,,2" is caught as an error by the piece parser).
std::vector<std::string_view> split(std::string_view S, char Sep) {
  std::vector<std::string_view> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Out.push_back(trim(S.substr(Start, I - Start)));
      Start = I + 1;
    }
  }
  return Out;
}

bool parseInt(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  std::string Copy(S);
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Copy.c_str(), &End, 0);
  return errno == 0 && End == Copy.c_str() + Copy.size();
}

/// Parses an operand: integer literal, `$site` or `$arg`.
bool parseOperand(std::string_view S, Op::Bind &B, uint64_t &Imm) {
  S = trim(S);
  if (S == "$site") {
    B = Op::Bind::Site;
    return true;
  }
  if (S == "$arg") {
    B = Op::Bind::Arg;
    return true;
  }
  if (!parseInt(S, Imm))
    return false;
  B = Op::Bind::Imm;
  return true;
}

std::optional<x86::Reg> parseReg(std::string_view S) {
  for (unsigned E = 0; E != 16; ++E) {
    x86::Reg R = x86::regFromEncoding(static_cast<uint8_t>(E));
    if (S == x86::regName(R))
      return R;
  }
  return std::nullopt;
}

/// The compiler proper: one instance per compileTemplate call.
struct Compiler {
  const std::string &Name;
  std::string_view Body;
  size_t I = 0;
  Program Prog;
  std::string Err;

  Compiler(const std::string &Name, std::string_view Body)
      : Name(Name), Body(Body) {
    Prog.Name = Name;
  }

  bool fail(std::string Msg) {
    Err = format("template \"%s\": %s", Name.c_str(), Msg.c_str());
    return false;
  }

  void skipWs() {
    while (I < Body.size() && isWs(Body[I]))
      ++I;
  }

  /// Emits position-independent bytes, merging into a preceding Raw op so
  /// adjacent fixed items cost one op.
  void emitRaw(const std::vector<uint8_t> &Bytes) {
    if (!Prog.Ops.empty() && Prog.Ops.back().K == Op::Kind::Raw) {
      Prog.Ops.back().Raw.insert(Prog.Ops.back().Raw.end(), Bytes.begin(),
                                 Bytes.end());
      return;
    }
    Op O;
    O.K = Op::Kind::Raw;
    O.Raw = Bytes;
    Prog.Ops.push_back(std::move(O));
  }

  void emitOp(Op::Kind K, Op::Bind B, uint64_t Imm,
              x86::Reg R = x86::Reg::RAX) {
    Op O;
    O.K = K;
    O.B = B;
    O.Imm = Imm;
    O.R = R;
    Prog.Ops.push_back(std::move(O));
  }

  /// Parses one `$name` or `$name(args)` item. On entry I points at '$'.
  bool item() {
    size_t Start = ++I; // past '$'
    while (I < Body.size() &&
           std::isalpha(static_cast<unsigned char>(Body[I])))
      ++I;
    std::string_view Macro = Body.substr(Start, I - Start);
    std::string_view Args;
    bool HasArgs = I < Body.size() && Body[I] == '(';
    if (HasArgs) {
      size_t Close = Body.find(')', I);
      if (Close == std::string_view::npos)
        return fail(format("$%.*s: missing closing ')'",
                           static_cast<int>(Macro.size()), Macro.data()));
      Args = Body.substr(I + 1, Close - I - 1);
      I = Close + 1;
    }

    auto needArgs = [&](bool Want) {
      if (Want == HasArgs)
        return true;
      return fail(format("$%.*s %s an argument list",
                         static_cast<int>(Macro.size()), Macro.data(),
                         Want ? "requires" : "does not take"));
    };
    auto operandOf = [&](Op::Bind &B, uint64_t &Imm) {
      if (parseOperand(Args, B, Imm))
        return true;
      return fail(format("$%.*s: malformed operand \"%.*s\" (want an "
                         "integer, $site or $arg)",
                         static_cast<int>(Macro.size()), Macro.data(),
                         static_cast<int>(Args.size()), Args.data()));
    };

    if (Macro == "instruction") {
      if (!needArgs(false))
        return false;
      emitOp(Op::Kind::Displaced, Op::Bind::Imm, 0);
      return true;
    }
    if (Macro == "continue") {
      if (!needArgs(false))
        return false;
      emitOp(Op::Kind::JumpBack, Op::Bind::Imm, 0);
      return true;
    }
    if (Macro == "bytes") {
      if (!needArgs(true))
        return false;
      std::vector<uint8_t> Bytes;
      for (std::string_view Piece : split(Args, ',')) {
        uint64_t V = 0;
        if (!parseInt(Piece, V) || V > 0xff)
          return fail(format("$bytes: \"%.*s\" is not a byte value",
                             static_cast<int>(Piece.size()), Piece.data()));
        Bytes.push_back(static_cast<uint8_t>(V));
      }
      emitRaw(Bytes);
      return true;
    }
    if (Macro == "hex") {
      if (!needArgs(true))
        return false;
      std::vector<uint8_t> Bytes;
      unsigned Nibble = 0, Pending = 0;
      for (char C : Args) {
        if (isWs(C))
          continue;
        if (!std::isxdigit(static_cast<unsigned char>(C)))
          return fail(format("$hex: '%c' is not a hex digit", C));
        unsigned D = C <= '9'   ? static_cast<unsigned>(C - '0')
                     : C <= 'F' ? static_cast<unsigned>(C - 'A' + 10)
                                : static_cast<unsigned>(C - 'a' + 10);
        Pending = (Pending << 4) | D;
        if (++Nibble % 2 == 0)
          Bytes.push_back(static_cast<uint8_t>(Pending)), Pending = 0;
      }
      if (Nibble == 0)
        return fail("$hex: empty byte string");
      if (Nibble % 2 != 0)
        return fail("$hex: odd nibble count (bytes are two digits each)");
      emitRaw(Bytes);
      return true;
    }
    if (Macro == "counter" || Macro == "hook" || Macro == "jump") {
      if (!needArgs(true))
        return false;
      Op::Bind B = Op::Bind::Imm;
      uint64_t Imm = 0;
      if (!operandOf(B, Imm))
        return false;
      if (Macro == "counter") {
        if (B == Op::Bind::Imm && Imm >= (1ull << 31))
          return fail(format("$counter: %s is not abs32-addressable",
                             hex(Imm).c_str()));
        emitOp(Op::Kind::CounterInc, B, Imm);
      } else if (Macro == "hook") {
        emitOp(Op::Kind::HookCall, B, Imm);
      } else {
        emitOp(Op::Kind::JumpTo, B, Imm);
      }
      return true;
    }
    if (Macro == "asm") {
      if (!needArgs(true))
        return false;
      return asmBlock(Args);
    }
    return fail(format("unknown macro $%.*s",
                       static_cast<int>(Macro.size()), Macro.data()));
  }

  /// Assembles a `;`-separated instruction list. Fixed encodings become
  /// Raw bytes (via x86::Assembler, so they stay canonical); operands
  /// naming $site/$arg stay symbolic ops.
  bool asmBlock(std::string_view Text) {
    for (std::string_view Line : split(Text, ';')) {
      if (Line.empty())
        return fail("$asm: empty instruction");
      size_t Sp = Line.find_first_of(" \t");
      std::string_view Mn = Line.substr(0, Sp);
      std::string_view Rest =
          Sp == std::string_view::npos ? "" : trim(Line.substr(Sp));

      // The base address is irrelevant: only position-independent
      // encodings are emitted here.
      x86::Assembler A(0);
      if (Mn == "nop" || Mn == "int3" || Mn == "ud2" || Mn == "pushfq" ||
          Mn == "popfq") {
        if (!Rest.empty())
          return fail(format("$asm: %.*s takes no operand",
                             static_cast<int>(Mn.size()), Mn.data()));
        if (Mn == "nop")
          A.nop();
        else if (Mn == "int3")
          A.int3();
        else if (Mn == "ud2")
          A.ud2();
        else if (Mn == "pushfq")
          A.pushfq();
        else
          A.popfq();
        emitRaw(A.take());
        continue;
      }
      if (Mn == "push" || Mn == "pop") {
        auto R = parseReg(Rest);
        if (!R)
          return fail(format("$asm: bad register \"%.*s\"",
                             static_cast<int>(Rest.size()), Rest.data()));
        if (Mn == "push")
          A.pushReg(*R);
        else
          A.popReg(*R);
        emitRaw(A.take());
        continue;
      }
      if (Mn == "jmp") {
        Op::Bind B = Op::Bind::Imm;
        uint64_t Imm = 0;
        if (!parseOperand(Rest, B, Imm))
          return fail(format("$asm: jmp wants an integer, $site or $arg, "
                             "got \"%.*s\"",
                             static_cast<int>(Rest.size()), Rest.data()));
        emitOp(Op::Kind::JumpTo, B, Imm);
        continue;
      }
      if (Mn == "mov") {
        auto Pieces = split(Rest, ',');
        if (Pieces.size() != 2)
          return fail("$asm: mov wants \"mov REG, OPERAND\"");
        auto R = parseReg(Pieces[0]);
        if (!R)
          return fail(format("$asm: bad register \"%.*s\"",
                             static_cast<int>(Pieces[0].size()),
                             Pieces[0].data()));
        Op::Bind B = Op::Bind::Imm;
        uint64_t Imm = 0;
        if (!parseOperand(Pieces[1], B, Imm))
          return fail(format("$asm: bad mov operand \"%.*s\"",
                             static_cast<int>(Pieces[1].size()),
                             Pieces[1].data()));
        if (B == Op::Bind::Imm) {
          A.movRegImm64(*R, Imm); // fixed: pre-encode
          emitRaw(A.take());
        } else {
          emitOp(Op::Kind::MovRegImm, B, 0, *R);
        }
        continue;
      }
      return fail(format("$asm: unknown mnemonic \"%.*s\"",
                         static_cast<int>(Mn.size()), Mn.data()));
    }
    return true;
  }

  bool run() {
    skipWs();
    if (I == Body.size())
      return fail("empty template body");
    while (I < Body.size()) {
      if (Body[I] != '$')
        return fail(format("expected a $macro at \"%s\"",
                           std::string(Body.substr(I, 12)).c_str()));
      if (!item())
        return false;
      if (I < Body.size() && !isWs(Body[I]))
        return fail(format("expected whitespace after a macro at \"%s\"",
                           std::string(Body.substr(I, 12)).c_str()));
      skipWs();
    }
    return true;
  }
};

} // namespace

Result<Program> api::compileTemplate(const std::string &Name,
                                     std::string_view Body) {
  if (Name.empty())
    return Result<Program>::error("template name must not be empty");
  Compiler C(Name, Body);
  if (!C.run())
    return Result<Program>::error(C.Err);
  return std::move(C.Prog);
}

void TemplateCache::evictOne() {
  auto Victim = Map.end();
  for (auto It = Map.begin(); It != Map.end(); ++It)
    if (Victim == Map.end() || It->second.LastUsed < Victim->second.LastUsed)
      Victim = It;
  if (Victim != Map.end()) {
    Map.erase(Victim);
    ++Evictions;
  }
}

Status TemplateCache::define(const std::string &Name,
                             std::string_view Body) {
  if (Map.count(Name))
    return Status::error(
        format("duplicate template name \"%s\" (templates are immutable "
               "once defined)",
               Name.c_str()));
  auto Prog = compileTemplate(Name, Body);
  if (!Prog.isOk())
    return Status::error(Prog.reason());
  if (Capacity > 0 && Map.size() >= Capacity)
    evictOne();
  Entry E;
  E.Prog = std::make_shared<const core::TemplateProgram>(std::move(*Prog));
  E.LastUsed = ++Clock;
  Map.emplace(Name, std::move(E));
  return Status::ok();
}
