//===- bench/bench_pie_vs_nonpie.cpp - Experiment E10 ----------*- C++ -*-===//
//
// Reproduces the §5.1/§6.1 PIE observations: (1) PIE binaries roughly
// double the valid punned-offset space (negative rel32 targets become
// usable), so the baseline coverage jumps above 93%; (2) the gamess/
// zeusmp L1 failures disappear entirely when the same binaries are
// "recompiled" as PIE.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace e9::bench;
using namespace e9::workload;

int main() {
  std::printf("E10: PIE vs non-PIE coverage (same program, two load "
              "addresses)\n");
  std::printf("Paper shape: PIE Base%% >> non-PIE Base%%; gamess/zeusmp "
              "reach 100%% as PIE.\n\n");
  std::printf("%-12s %6s | %8s %8s | %8s %8s\n", "binary", "app",
              "Base%", "Succ%", "BasePIE%", "SuccPIE%");
  std::printf("------------------------------------------------------------"
              "--\n");

  double SumBase = 0, SumBasePie = 0;
  size_t N = 0;
  for (const SuiteEntry &E : specSuite()) {
    for (App A : {App::Jumps, App::HeapWrites}) {
      EvalOptions O;
      O.MeasureTime = false;
      AppResult NonPie = evalEntry(E, A, O);
      SuiteEntry Pie = E;
      Pie.Config.Pie = true;
      AppResult AsPie = evalEntry(Pie, A, O);
      if (A == App::Jumps || E.Config.Name == "gamess" ||
          E.Config.Name == "zeusmp")
        std::printf("%-12s %6s | %8.2f %8.2f | %8.2f %8.2f\n",
                    E.Config.Name.c_str(), A == App::Jumps ? "A1" : "A2",
                    NonPie.BasePct, NonPie.SuccPct, AsPie.BasePct,
                    AsPie.SuccPct);
      SumBase += NonPie.BasePct;
      SumBasePie += AsPie.BasePct;
      ++N;
    }
  }
  std::printf("------------------------------------------------------------"
              "--\n");
  std::printf("%-12s %6s | %8.2f %8s | %8.2f\n", "Avg Base%", "",
              SumBase / static_cast<double>(N), "",
              SumBasePie / static_cast<double>(N));
  return 0;
}
