# Empty compiler generated dependencies file for e9_bench_common.
# This may be replaced when dependencies are built.
