//===- vm/Memory.h - Paged virtual memory ---------------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Page-granular virtual memory for the VM. Physical pages are reference-
/// counted and may be mapped at multiple virtual addresses — the mechanism
/// that makes physical page grouping observable: the loader maps one merged
/// physical block at many virtual block addresses, and uniquePhysPages()
/// reports the real RAM footprint.
///
//===----------------------------------------------------------------------===//

#ifndef E9_VM_MEMORY_H
#define E9_VM_MEMORY_H

#include "support/Status.h"

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace e9 {
namespace vm {

/// Page permissions (match ELF PF_* values).
inline constexpr uint8_t PermX = 1;
inline constexpr uint8_t PermW = 2;
inline constexpr uint8_t PermR = 4;

inline constexpr uint64_t PageSize = 4096;
inline constexpr uint64_t PageMask = PageSize - 1;

/// One 4 KiB physical page.
using PhysPage = std::array<uint8_t, PageSize>;
using PhysPageRef = std::shared_ptr<PhysPage>;

/// Allocates a zero-filled physical page.
PhysPageRef allocPhysPage();

/// The global shared demand-zero page. Zero mappings reference it and are
/// copied on first write (kernel-style .bss handling), so multi-GiB .bss
/// segments cost no real memory until touched.
PhysPageRef zeroPage();

/// Sparse page-table memory with shared physical pages.
class Memory {
  struct Entry {
    PhysPageRef Phys;
    uint8_t Perms;
    /// Copy-on-write marker: the physical page is shared with a snapshot
    /// (or is the demand-zero page) and must be cloned before any write.
    bool Cow = false;
  };

public:
  /// A frozen copy of the page table. Every physical page is shared with
  /// the live Memory under copy-on-write, so a snapshot costs one map copy
  /// plus one cloned page per page *subsequently written* — never a full
  /// address-space copy. Snapshots are immutable and reusable: restoring
  /// does not consume them.
  class Snapshot {
    friend class Memory;
    std::unordered_map<uint64_t, Entry> Pages;
  };

  /// Freezes the current page table. All live pages become copy-on-write;
  /// the next guest write to any of them pays one 4 KiB clone.
  Snapshot snapshot();

  /// Replaces the page table with \p S's frozen state. Pages mapped since
  /// the snapshot vanish; pages written since revert (their clones are
  /// dropped). The snapshot stays valid for further restores.
  void restore(const Snapshot &S);

  /// Pages cloned by copy-on-write since construction (the "dirty page"
  /// count of snapshot-based runs; feeds the repair-loop cost model).
  uint64_t cowCloneCount() const { return CowClones; }
  /// Maps one physical page at page-aligned \p VAddr. Fails when the page
  /// is already mapped.
  Status mapPage(uint64_t VAddr, PhysPageRef Page, uint8_t Perms);

  /// Maps [VAddr, VAddr+Size) (page-aligned bounds) as fresh zero pages.
  Status mapZero(uint64_t VAddr, uint64_t Size, uint8_t Perms);

  /// Copies \p Bytes into memory starting at \p VAddr, creating fresh
  /// pages as needed (non-page-aligned start/size allowed). Pages created
  /// here get \p Perms; pre-existing pages keep theirs.
  Status mapBytes(uint64_t VAddr, const std::vector<uint8_t> &Bytes,
                  uint64_t MemSize, uint8_t Perms);

  bool isMapped(uint64_t Addr) const;
  /// True when the page containing \p Addr is the shared demand-zero page
  /// (mapped but never written).
  bool isDemandZero(uint64_t Addr) const;
  /// Returns the permissions of the page containing \p Addr (0 if unmapped).
  uint8_t perms(uint64_t Addr) const;

  /// Reads \p N bytes at \p Addr; requires PermR on every touched page.
  Status read(uint64_t Addr, uint8_t *Out, size_t N) const;
  /// Writes \p N bytes at \p Addr; requires PermW on every touched page.
  Status write(uint64_t Addr, const uint8_t *In, size_t N);

  /// Copies up to \p Max executable bytes starting at \p Addr into \p Out;
  /// returns the number of bytes copied (0 when the first page is not
  /// executable or unmapped). Stops early at a non-executable boundary.
  size_t fetch(uint64_t Addr, uint8_t *Out, size_t Max) const;

  /// Little-endian scalar helpers.
  Status read64(uint64_t Addr, uint64_t &V) const;
  Status write64(uint64_t Addr, uint64_t V);
  Status readInt(uint64_t Addr, unsigned Size, uint64_t &V) const;
  Status writeInt(uint64_t Addr, unsigned Size, uint64_t V);

  size_t mappedPageCount() const { return Pages.size(); }
  /// Number of distinct physical pages backing the address space.
  size_t uniquePhysPageCount() const;

  /// Host-side write that ignores PermW (the repair runner patches text
  /// pages through this). Still requires every touched page to be mapped,
  /// and still honours copy-on-write.
  Status poke(uint64_t Addr, const uint8_t *In, size_t N);

private:
  const Entry *lookup(uint64_t Addr) const;
  /// Makes the page entry privately writable, cloning the physical page
  /// when it is the demand-zero page or shared with a snapshot.
  void makeWritable(Entry &E);

  std::unordered_map<uint64_t, Entry> Pages; ///< Key: VAddr / PageSize.
  uint64_t CowClones = 0;
};

} // namespace vm
} // namespace e9

#endif // E9_VM_MEMORY_H
