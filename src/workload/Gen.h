//===- workload/Gen.h - Synthetic binary generator -------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates deterministic, runnable x86_64 ELF images that substitute for
/// the paper's SPEC2006 / system-binary / browser inputs (DESIGN.md §2.1).
/// A generated program is a DAG of functions with inner loops, loads and
/// stores into a data segment, heap traffic through the malloc/free host
/// hooks, direct and indirect calls through an in-data function table, and
/// a tunable density of short (hard-to-patch) instructions. Every dynamic
/// branch target is an instruction boundary, and execution is bounded by
/// construction.
///
/// Knobs map to the paper's phenomena: instruction-length mix drives the
/// Base%/T1/T2/T3 coverage split, Pie moves the image to a high load
/// address (doubling valid punned offsets), BssSize reproduces the
/// gamess/zeusmp address-space pressure (L1), and HeapBug plants an
/// off-by-N heap overflow for the §6.3 hardening demo.
///
//===----------------------------------------------------------------------===//

#ifndef E9_WORKLOAD_GEN_H
#define E9_WORKLOAD_GEN_H

#include "elf/Image.h"

#include <cstdint>
#include <string>
#include <vector>

namespace e9 {
namespace workload {

struct WorkloadConfig {
  std::string Name = "workload";
  uint64_t Seed = 1;
  bool Pie = false;
  /// Nonzero: load the text segment at this address instead of the
  /// default PIE/non-PIE base (e.g. to build a shared-library image that
  /// coexists with a main executable).
  uint64_t BaseOverride = 0;

  unsigned NumFuncs = 12;
  unsigned BlocksPerFunc = 5;
  unsigned InsnsPerBlock = 8; ///< Menu picks per block (<= 8 keeps short
                              ///< skip-jumps in rel8 range).
  unsigned InnerIters = 4;    ///< Per-function loop trip count.
  unsigned MainIters = 8;     ///< Outer loop trip count in main.
  unsigned LeafCalls = 2;     ///< Calls to leaf functions per function.

  unsigned HeapObjects = 6;
  uint64_t HeapObjSize = 48; ///< Logical object size (bytes).

  // Instruction-menu weights (percent, applied in order; rest = ALU).
  unsigned LoadPct = 14;
  unsigned DataWritePct = 14;
  unsigned HeapWritePct = 10;
  unsigned ShortInsnPct = 14;
  unsigned IndexedWritePct = 6;

  uint64_t DataSize = 0x4000; ///< Scratch bytes in the data segment.
  uint64_t BssSize = 0;       ///< Extra zero-fill (L1 pressure knob).

  // Adversarial knobs (the `e9tool corpus` robustness configs).
  /// Percent of menu picks that emit a 2-byte short jump over a junk 0xe9
  /// byte. The junk byte never executes, but any linear walk that reaches
  /// it decodes a phantom 5-byte jmp and desyncs on the following real
  /// instructions — the paper's overlapping-instruction hazard.
  unsigned OverlapJunkPct = 0;
  /// Number of read-only data islands embedded in the text segment between
  /// function bodies. Islands carry control-flow-lookalike bait bytes
  /// (0xe9, short jcc, 0x0f 0x84 ...) that the candidate pre-scan and the
  /// jump selector can mistake for patchable instructions, and each ends
  /// with a call opcode whose rel32 swallows the next function's entry
  /// bytes (boundary desync). The first island's qword is folded into the
  /// program's observable result, so a rewrite that patches island bytes
  /// is caught by the run oracle rather than passing silently.
  unsigned DataIslands = 0;

  /// When true, one heap write in the last function overflows its object
  /// by exactly one slot (lands in the next slot's redzone).
  bool HeapBug = false;
};

struct Workload {
  elf::Image Image;
  WorkloadConfig Config;
  uint64_t TextBase = 0;
  uint64_t DataBase = 0;
  std::vector<uint64_t> FuncAddrs;
  /// Address of the injected out-of-bounds store (HeapBug only).
  uint64_t BugSiteAddr = 0;
  /// Addresses of embedded text-segment data islands (DataIslands only).
  std::vector<uint64_t> IslandAddrs;
};

/// Generates the workload binary. Deterministic per config.
Workload generateWorkload(const WorkloadConfig &Config);

} // namespace workload
} // namespace e9

#endif // E9_WORKLOAD_GEN_H
