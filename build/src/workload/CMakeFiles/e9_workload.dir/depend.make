# Empty dependencies file for e9_workload.
# This may be replaced when dependencies are built.
