//===- tests/elf_test.cpp - ELF image/serialization tests -----*- C++ -*-===//

#include "elf/Image.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::elf;

namespace {

Image makeSampleImage() {
  Image Img;
  Img.Entry = 0x401000;
  Img.Pie = false;

  Segment Text;
  Text.VAddr = 0x401000;
  Text.Bytes = {0x90, 0x90, 0xc3};
  Text.MemSize = Text.Bytes.size();
  Text.Flags = PF_R | PF_X;
  Text.Name = "text";
  Img.Segments.push_back(Text);

  Segment Data;
  Data.VAddr = 0x600000;
  Data.Bytes = {1, 2, 3, 4};
  Data.MemSize = 0x2000; // trailing .bss
  Data.Flags = PF_R | PF_W;
  Data.Name = "data";
  Img.Segments.push_back(Data);
  return Img;
}

} // namespace

TEST(Image, FindSegment) {
  Image Img = makeSampleImage();
  ASSERT_NE(Img.findSegment(0x401001), nullptr);
  EXPECT_EQ(Img.findSegment(0x401001)->Name, "text");
  // .bss tail is part of the segment even without file bytes.
  ASSERT_NE(Img.findSegment(0x601fff), nullptr);
  EXPECT_EQ(Img.findSegment(0x602000), nullptr);
  EXPECT_EQ(Img.findSegment(0x100), nullptr);
}

TEST(Image, TextSegment) {
  Image Img = makeSampleImage();
  ASSERT_NE(Img.textSegment(), nullptr);
  EXPECT_EQ(Img.textSegment()->VAddr, 0x401000u);
}

TEST(Image, ReadWriteBytes) {
  Image Img = makeSampleImage();
  uint8_t B[2];
  ASSERT_TRUE(Img.readBytes(0x401001, B, 2));
  EXPECT_EQ(B[0], 0x90);
  EXPECT_EQ(B[1], 0xc3);
  uint8_t W = 0xcc;
  ASSERT_TRUE(Img.writeBytes(0x401000, &W, 1));
  ASSERT_TRUE(Img.readBytes(0x401000, B, 1));
  EXPECT_EQ(B[0], 0xcc);
  // Reads past file-backed content fail (that is .bss).
  EXPECT_FALSE(Img.readBytes(0x600004, B, 1));
  EXPECT_FALSE(Img.readBytes(0x700000, B, 1));
}

TEST(ElfFile, RoundTripBasic) {
  Image Img = makeSampleImage();
  std::vector<uint8_t> Bytes = write(Img);
  auto Back = read(Bytes);
  ASSERT_TRUE(Back.isOk()) << Back.reason();
  EXPECT_EQ(Back->Entry, Img.Entry);
  EXPECT_FALSE(Back->Pie);
  ASSERT_EQ(Back->Segments.size(), 2u);
  EXPECT_EQ(Back->Segments[0].VAddr, 0x401000u);
  EXPECT_EQ(Back->Segments[0].Bytes, Img.Segments[0].Bytes);
  EXPECT_EQ(Back->Segments[1].MemSize, 0x2000u);
  EXPECT_EQ(Back->Segments[1].Bytes, Img.Segments[1].Bytes);
}

TEST(ElfFile, RoundTripPie) {
  Image Img = makeSampleImage();
  Img.Pie = true;
  auto Back = read(write(Img));
  ASSERT_TRUE(Back.isOk());
  EXPECT_TRUE(Back->Pie);
}

TEST(ElfFile, RoundTripMappingNote) {
  Image Img = makeSampleImage();
  PhysBlock B1;
  B1.Bytes.assign(4096, 0xaa);
  PhysBlock B2;
  B2.Bytes.assign(8192, 0xbb);
  Img.Blocks = {B1, B2};
  Img.Mappings.push_back(Mapping{0x10000000, 0, PF_R | PF_X, 0, 4096});
  Img.Mappings.push_back(Mapping{0x20000000, 0, PF_R | PF_X, 0, 4096});
  Img.Mappings.push_back(Mapping{0x30000000, 1, PF_R | PF_X, 0, 8192});

  auto Back = read(write(Img));
  ASSERT_TRUE(Back.isOk()) << Back.reason();
  ASSERT_EQ(Back->Blocks.size(), 2u);
  EXPECT_EQ(Back->Blocks[0].Bytes, B1.Bytes);
  EXPECT_EQ(Back->Blocks[1].Bytes, B2.Bytes);
  ASSERT_EQ(Back->Mappings.size(), 3u);
  EXPECT_EQ(Back->Mappings[1].VAddr, 0x20000000u);
  EXPECT_EQ(Back->Mappings[2].BlockIndex, 1u);
  EXPECT_EQ(Back->Mappings[2].Size, 8192u);
}

TEST(ElfFile, SegmentOffsetsAreCongruent) {
  Image Img = makeSampleImage();
  Img.Segments[0].VAddr = 0x401234; // deliberately misaligned vaddr
  std::vector<uint8_t> Bytes = write(Img);
  // Parse the first program header to check p_offset ≡ p_vaddr (mod 4096).
  auto Rd = [&](size_t Off, unsigned N) {
    uint64_t V = 0;
    for (unsigned I = 0; I != N; ++I)
      V |= static_cast<uint64_t>(Bytes[Off + I]) << (8 * I);
    return V;
  };
  uint64_t PhOff = Rd(32, 8);
  uint64_t POffset = Rd(PhOff + 8, 8);
  uint64_t PVAddr = Rd(PhOff + 16, 8);
  EXPECT_EQ(POffset % 4096, PVAddr % 4096);
}

TEST(ElfFile, RejectsGarbage) {
  EXPECT_FALSE(read({}).isOk());
  EXPECT_FALSE(read({1, 2, 3, 4}).isOk());
  std::vector<uint8_t> Bytes = write(makeSampleImage());
  Bytes[0] = 0x00; // break the magic
  EXPECT_FALSE(read(Bytes).isOk());
}

TEST(ElfFile, RejectsTruncatedSegments) {
  std::vector<uint8_t> Bytes = write(makeSampleImage());
  Bytes.resize(200); // headers survive, content gone
  EXPECT_FALSE(read(Bytes).isOk());
}

TEST(ElfFile, FileRoundTrip) {
  Image Img = makeSampleImage();
  std::string Path = ::testing::TempDir() + "/e9_elf_test.bin";
  ASSERT_TRUE(writeFile(Img, Path));
  auto Back = readFile(Path);
  ASSERT_TRUE(Back.isOk()) << Back.reason();
  EXPECT_EQ(Back->Entry, Img.Entry);
  EXPECT_FALSE(readFile(Path + ".missing").isOk());
}

TEST(ElfFile, ReadableByRealElfParser) {
  // The output should start with a canonical ELF64 header.
  std::vector<uint8_t> Bytes = write(makeSampleImage());
  ASSERT_GE(Bytes.size(), 64u);
  EXPECT_EQ(Bytes[0], 0x7f);
  EXPECT_EQ(Bytes[1], 'E');
  EXPECT_EQ(Bytes[4], 2); // ELFCLASS64
  EXPECT_EQ(Bytes[5], 1); // little endian
  EXPECT_EQ(Bytes[18] | (Bytes[19] << 8), 0x3e); // EM_X86_64
}
