//===- obs/Metrics.h - Named counters and histograms -----------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics registry for the rewriting pipeline: named monotonic
/// counters and power-of-two-bucketed histograms. Increments are lock-free
/// (relaxed atomics — metrics never order anything); registration of a new
/// name takes a mutex but handles stay valid forever (node-based map), so
/// the pattern is "look the handle up once, increment from any thread".
///
/// A snapshot freezes every value into plain data with deterministic
/// (name-sorted) iteration order; `RewriteOutput::Metrics` carries one and
/// the benches embed its JSON into their BENCH_*.json records.
///
//===----------------------------------------------------------------------===//

#ifndef E9_OBS_METRICS_H
#define E9_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace e9 {
namespace obs {

/// Monotonic counter; relaxed atomic increments.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Histogram over uint64 values with power-of-two buckets: bucket i counts
/// values V with bit_width(V) == i, i.e. bucket 0 holds zeros, bucket i
/// holds [2^(i-1), 2^i). Wide enough for byte sizes and counts alike.
class Histogram {
public:
  static constexpr size_t NumBuckets = 65; // bit_width of a uint64 is 0..64.

  void observe(uint64_t V);

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Total.load(std::memory_order_relaxed); }
  uint64_t min() const { return Lo.load(std::memory_order_relaxed); }
  uint64_t max() const { return Hi.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Total{0};
  std::atomic<uint64_t> Lo{UINT64_MAX};
  std::atomic<uint64_t> Hi{0};
};

/// Frozen histogram values (trailing empty buckets trimmed).
struct HistogramStats {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< 0 when Count == 0.
  uint64_t Max = 0;
  std::vector<uint64_t> Buckets;

  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }

  /// Quantile estimate derived from the power-of-two buckets: locates the
  /// bucket containing the Q-th ranked value and interpolates linearly
  /// inside its [2^(i-1), 2^i) range, clamped to [Min, Max]. Exact for
  /// single-valued distributions, within one bucket otherwise — enough to
  /// track latency/size distribution shifts across PRs. Deterministic
  /// whenever the observations are.
  double quantile(double Q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

/// Plain-data snapshot of a registry; name-sorted, so JSON output is
/// deterministic whenever the underlying values are.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, HistogramStats> Histograms;

  /// Counter value by name; 0 when absent.
  uint64_t counter(std::string_view Name) const;
  bool empty() const { return Counters.empty() && Histograms.empty(); }
  /// Renders the snapshot as one JSON object (counters + histograms).
  std::string toJson() const;
};

/// Thread-safe name -> metric registry.
class MetricsRegistry {
public:
  Counter &counter(std::string_view Name);
  Histogram &histogram(std::string_view Name);
  MetricsSnapshot snapshot() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, Counter, std::less<>> Counters;
  std::map<std::string, Histogram, std::less<>> Histograms;
};

} // namespace obs
} // namespace e9

#endif // E9_OBS_METRICS_H
