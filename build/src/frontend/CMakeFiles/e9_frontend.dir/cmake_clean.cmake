file(REMOVE_RECURSE
  "CMakeFiles/e9_frontend.dir/Disasm.cpp.o"
  "CMakeFiles/e9_frontend.dir/Disasm.cpp.o.d"
  "CMakeFiles/e9_frontend.dir/Rewriter.cpp.o"
  "CMakeFiles/e9_frontend.dir/Rewriter.cpp.o.d"
  "CMakeFiles/e9_frontend.dir/Runtime.cpp.o"
  "CMakeFiles/e9_frontend.dir/Runtime.cpp.o.d"
  "CMakeFiles/e9_frontend.dir/Select.cpp.o"
  "CMakeFiles/e9_frontend.dir/Select.cpp.o.d"
  "CMakeFiles/e9_frontend.dir/Shard.cpp.o"
  "CMakeFiles/e9_frontend.dir/Shard.cpp.o.d"
  "libe9_frontend.a"
  "libe9_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
