file(REMOVE_RECURSE
  "CMakeFiles/e9tool.dir/e9tool.cpp.o"
  "CMakeFiles/e9tool.dir/e9tool.cpp.o.d"
  "e9tool"
  "e9tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
