//===- tools/e9tool.cpp - command-line front end ----------------*- C++ -*-===//
//
// The e9tool analog: generate, inspect, disassemble, rewrite and run
// binaries from the command line.
//
//   e9tool gen <out.elf> [--seed=N] [--funcs=N] [--pie] [--bug]
//   e9tool info <elf>
//   e9tool disasm <elf> [--limit=N]
//   e9tool rewrite <in> <out> [--select=jumps|heapwrites|all]
//          [--tramp=empty|lowfat] [--no-t1] [--no-t2] [--no-t3]
//          [--b0-fallback] [--force-b0] [--no-grouping] [--granularity=M]
//          [--strict] [--verify] [--differential] [--max-failed=N]
//          [--fault-inject=SITE] [--jobs=N] [--timings]
//   e9tool run <elf> [--lowfat] [--max-insns=N]
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "vm/Hooks.h"
#include "workload/Gen.h"
#include "workload/Run.h"
#include "x86/Printer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace e9;

namespace {

/// Tiny argv helper: --key=value and boolean --key flags.
struct Args {
  std::vector<std::string> Positional;
  std::vector<std::pair<std::string, std::string>> Flags;

  Args(int Argc, char **Argv, int Start) {
    for (int I = Start; I < Argc; ++I) {
      std::string A = Argv[I];
      if (A.rfind("--", 0) == 0) {
        size_t Eq = A.find('=');
        if (Eq == std::string::npos)
          Flags.emplace_back(A.substr(2), "");
        else
          Flags.emplace_back(A.substr(2, Eq - 2), A.substr(Eq + 1));
      } else {
        Positional.push_back(A);
      }
    }
  }

  bool has(const char *Key) const {
    for (const auto &[K, V] : Flags)
      if (K == Key)
        return true;
    return false;
  }
  std::string get(const char *Key, const char *Default = "") const {
    for (const auto &[K, V] : Flags)
      if (K == Key)
        return V;
    return Default;
  }
  uint64_t getInt(const char *Key, uint64_t Default) const {
    std::string V = get(Key);
    return V.empty() ? Default : std::strtoull(V.c_str(), nullptr, 0);
  }
};

int usage() {
  std::fprintf(
      stderr,
      "usage: e9tool <command> ...\n"
      "  gen <out.elf> [--seed=N] [--funcs=N] [--pie] [--bug]\n"
      "  info <elf>\n"
      "  disasm <elf> [--limit=N]\n"
      "  rewrite <in> <out> [--select=jumps|heapwrites|all]\n"
      "          [--tramp=empty|lowfat] [--no-t1] [--no-t2] [--no-t3]\n"
      "          [--b0-fallback] [--force-b0] [--no-grouping]\n"
      "          [--granularity=M] [--strict] [--verify]\n"
      "          [--differential] [--max-failed=N] [--fault-inject=SITE]\n"
      "          [--jobs=N (0 = all hardware threads)] [--timings]\n"
      "  run <elf> [--lowfat] [--max-insns=N]\n");
  return 2;
}

Result<elf::Image> loadInput(const std::string &Path) {
  return elf::readFile(Path);
}

int cmdGen(const Args &A) {
  if (A.Positional.empty())
    return usage();
  workload::WorkloadConfig C;
  C.Name = A.get("name", "generated");
  C.Seed = A.getInt("seed", 1);
  C.NumFuncs = static_cast<unsigned>(A.getInt("funcs", 12));
  C.Pie = A.has("pie");
  C.HeapBug = A.has("bug");
  C.MainIters = static_cast<unsigned>(A.getInt("iters", 5));
  workload::Workload W = workload::generateWorkload(C);
  if (Status S = elf::writeFile(W.Image, A.Positional[0]); !S) {
    std::fprintf(stderr, "error: %s\n", S.reason().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu code bytes, entry %s%s\n",
              A.Positional[0].c_str(), W.Image.textSegment()->Bytes.size(),
              hex(W.Image.Entry).c_str(),
              C.HeapBug ? " (heap overflow planted)" : "");
  return 0;
}

int cmdInfo(const Args &A) {
  if (A.Positional.empty())
    return usage();
  auto Img = loadInput(A.Positional[0]);
  if (!Img.isOk()) {
    std::fprintf(stderr, "error: %s\n", Img.reason().c_str());
    return 1;
  }
  std::printf("%s: %s, entry %s\n", A.Positional[0].c_str(),
              Img->Pie ? "PIE/shared" : "executable",
              hex(Img->Entry).c_str());
  for (const elf::Segment &S : Img->Segments)
    std::printf("  segment %-8s vaddr %s, file %llu, mem %llu, %c%c%c\n",
                S.Name.c_str(), hex(S.VAddr).c_str(),
                (unsigned long long)S.fileSize(),
                (unsigned long long)S.MemSize,
                (S.Flags & elf::PF_R) ? 'r' : '-',
                (S.Flags & elf::PF_W) ? 'w' : '-',
                (S.Flags & elf::PF_X) ? 'x' : '-');
  if (!Img->Blocks.empty()) {
    uint64_t Phys = 0;
    for (const elf::PhysBlock &B : Img->Blocks)
      Phys += B.Bytes.size();
    std::printf("  rewritten: %zu phys blocks (%llu bytes), %zu mappings, "
                "%zu B0 sites\n",
                Img->Blocks.size(), (unsigned long long)Phys,
                Img->Mappings.size(), Img->B0Sites.size());
  }
  return 0;
}

int cmdDisasm(const Args &A) {
  if (A.Positional.empty())
    return usage();
  auto Img = loadInput(A.Positional[0]);
  if (!Img.isOk()) {
    std::fprintf(stderr, "error: %s\n", Img.reason().c_str());
    return 1;
  }
  frontend::DisasmResult D = frontend::linearDisassemble(*Img);
  uint64_t Limit = A.getInt("limit", D.Insns.size());
  const elf::Segment *Text = Img->textSegment();
  for (size_t I = 0; I != D.Insns.size() && I < Limit; ++I) {
    const x86::Insn &In = D.Insns[I];
    const uint8_t *Bytes = Text->Bytes.data() + (In.Address - Text->VAddr);
    std::printf("%12llx:  %-30s %s\n", (unsigned long long)In.Address,
                hexBytes(Bytes, In.Length).c_str(),
                x86::formatInsn(In, Bytes).c_str());
  }
  if (D.UndecodableBytes)
    std::printf("(%zu undecodable bytes skipped)\n", D.UndecodableBytes);
  return 0;
}

int cmdRewrite(const Args &A) {
  if (A.Positional.size() < 2)
    return usage();
  auto Img = loadInput(A.Positional[0]);
  if (!Img.isOk()) {
    std::fprintf(stderr, "error: %s\n", Img.reason().c_str());
    return 1;
  }

  frontend::DisasmResult D = frontend::linearDisassemble(*Img);
  std::string Select = A.get("select", "jumps");
  std::vector<uint64_t> Locs;
  if (Select == "jumps")
    Locs = frontend::selectJumps(D.Insns);
  else if (Select == "heapwrites")
    Locs = frontend::selectHeapWrites(D.Insns);
  else if (Select == "all")
    Locs = frontend::selectAll(D.Insns);
  else {
    std::fprintf(stderr, "error: unknown --select=%s\n", Select.c_str());
    return 2;
  }

  frontend::RewriteOptions Opts;
  std::string Tramp = A.get("tramp", "empty");
  if (Tramp == "lowfat") {
    Opts.Patch.Spec.Kind = core::TrampolineKind::LowFatCheck;
    Opts.Patch.Spec.HookAddr = vm::HookLowFatCheck;
  } else if (Tramp == "empty") {
    Opts.Patch.Spec.Kind = core::TrampolineKind::Empty;
  } else {
    std::fprintf(stderr, "error: unknown --tramp=%s\n", Tramp.c_str());
    return 2;
  }
  Opts.Patch.EnableT1 = !A.has("no-t1");
  Opts.Patch.EnableT2 = !A.has("no-t2");
  Opts.Patch.EnableT3 = !A.has("no-t3");
  Opts.Patch.B0Fallback = A.has("b0-fallback");
  Opts.Patch.ForceB0 = A.has("force-b0");
  Opts.Grouping.Enabled = !A.has("no-grouping");
  Opts.Grouping.M = static_cast<unsigned>(A.getInt("granularity", 1));
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.Strict = A.has("strict");
  Opts.Verify = A.has("verify");
  Opts.VerifyOpts.Differential = A.has("differential");
  Opts.VerifyOpts.UseLowFatHeap = Tramp == "lowfat";
  Opts.MaxFailedSites = A.getInt("max-failed", SIZE_MAX);
  Opts.Jobs = static_cast<unsigned>(A.getInt("jobs", 1));

  std::string FaultSite = A.get("fault-inject");
  if (!FaultSite.empty()) {
    if (!FaultInjector::isKnownSite(FaultSite)) {
      std::fprintf(stderr, "error: unknown fault site %s; known sites:\n",
                   FaultSite.c_str());
      for (const std::string &S : FaultInjector::sites())
        std::fprintf(stderr, "  %s\n", S.c_str());
      return 2;
    }
    FaultInjector::instance().arm(FaultSite);
  }

  auto Out = frontend::rewrite(*Img, Locs, Opts);
  if (!Out.isOk()) {
    std::fprintf(stderr, "error: %s\n", Out.reason().c_str());
    return 1;
  }
  if (Status S = elf::writeFile(Out->Rewritten, A.Positional[1]); !S) {
    std::fprintf(stderr, "error: %s\n", S.reason().c_str());
    return 1;
  }
  const core::PatchStats &St = Out->Stats;
  std::printf("%s -> %s\n", A.Positional[0].c_str(),
              A.Positional[1].c_str());
  std::printf("  locations %zu: B1 %zu, B2 %zu, T1 %zu, T2 %zu, T3 %zu, "
              "B0 %zu, failed %zu (%.2f%% success)\n",
              St.NLoc, St.count(core::Tactic::B1),
              St.count(core::Tactic::B2), St.count(core::Tactic::T1),
              St.count(core::Tactic::T2), St.count(core::Tactic::T3),
              St.count(core::Tactic::B0), St.count(core::Tactic::Failed),
              St.succPct());
  std::printf("  file %llu -> %llu bytes (%.2f%%), %zu mappings, "
              "%llu phys bytes\n",
              (unsigned long long)Out->OrigFileSize,
              (unsigned long long)Out->NewFileSize, Out->sizePct(),
              Out->Grouping.MappingCount,
              (unsigned long long)Out->Grouping.PhysBytes);
  if (Opts.Strict || Opts.Verify)
    std::printf("  %s\n", Out->Verify.summary().c_str());
  if (A.has("timings") || Opts.Jobs != 1) {
    const frontend::PhaseTimings &T = Out->Timings;
    std::printf("  shards %zu (%zu redone), %u job(s)\n", Out->ShardCount,
                Out->ShardsRedone, Out->JobsUsed);
    std::printf("  phases: disasm %.2fms, patch %.2fms, merge %.2fms, "
                "group %.2fms, write %.2fms, verify %.2fms, total %.2fms\n",
                T.DisasmMs, T.PatchMs, T.MergeMs, T.GroupMs, T.WriteMs,
                T.VerifyMs, T.TotalMs);
  }
  return 0;
}

int cmdRun(const Args &A) {
  if (A.Positional.empty())
    return usage();
  auto Img = loadInput(A.Positional[0]);
  if (!Img.isOk()) {
    std::fprintf(stderr, "error: %s\n", Img.reason().c_str());
    return 1;
  }
  workload::RunConfig RC;
  RC.UseLowFat = A.has("lowfat");
  RC.MaxInsns = A.getInt("max-insns", 100'000'000);
  workload::RunOutcome R = workload::runImage(*Img, RC);
  std::printf("%s: %s\n", A.Positional[0].c_str(),
              R.ok() ? "finished" : R.Result.Error.c_str());
  std::printf("  result rax = 0x%llx, %llu instructions, cost %llu\n",
              (unsigned long long)R.Rax,
              (unsigned long long)R.Result.InsnCount,
              (unsigned long long)R.Result.Cost);
  if (RC.UseLowFat)
    std::printf("  lowfat violations: %llu\n",
                (unsigned long long)R.LowFatViolations);
  return R.ok() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  Args A(Argc, Argv, 2);
  if (Cmd == "gen")
    return cmdGen(A);
  if (Cmd == "info")
    return cmdInfo(A);
  if (Cmd == "disasm")
    return cmdDisasm(A);
  if (Cmd == "rewrite")
    return cmdRewrite(A);
  if (Cmd == "run")
    return cmdRun(A);
  return usage();
}
