//===- frontend/Runtime.cpp -----------------------------------*- C++ -*-===//

#include "frontend/Runtime.h"

#include "support/Format.h"
#include "x86/Decoder.h"

using namespace e9;
using namespace e9::frontend;

uint64_t frontend::addCounterSegment(elf::Image &Img, uint64_t Addr,
                                     uint64_t Size) {
  elf::Segment S;
  S.VAddr = Addr;
  S.MemSize = Size;
  S.Flags = elf::PF_R | elf::PF_W;
  S.Name = "counters";
  Img.Segments.push_back(std::move(S));
  return Addr;
}

void frontend::installB0Handler(
    vm::Vm &V, std::map<uint64_t, std::vector<uint8_t>> Table,
    std::function<void(uint64_t)> Callback,
    std::function<void(uint64_t)> OnUnknown) {
  V.setTrapHandler([Table = std::move(Table), Callback = std::move(Callback),
                    OnUnknown = std::move(OnUnknown)](
                       vm::Vm &Vm, uint64_t Addr) -> Status {
    auto It = Table.find(Addr);
    if (It == Table.end()) {
      if (OnUnknown)
        OnUnknown(Addr);
      return Status::error(
          format("int3 at %s has no B0 side-table entry", hex(Addr).c_str()));
    }
    if (Callback)
      Callback(Addr);
    x86::Insn I;
    if (x86::decode(It->second.data(), It->second.size(), Addr, I) !=
        x86::DecodeStatus::Ok)
      return Status::error("corrupt B0 side-table entry");
    vm::Vm::ExecKind Kind;
    if (Status S = Vm.execInsn(I, It->second.data(), Kind); !S)
      return S;
    if (Kind != vm::Vm::ExecKind::Ok)
      return Status::error("B0 site may not halt/abort");
    return Status::ok();
  });
}
