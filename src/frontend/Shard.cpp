//===- frontend/Shard.cpp -------------------------------------*- C++ -*-===//

#include "frontend/Shard.h"

#include "support/FaultInjector.h"
#include "support/ThreadPool.h"
#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace e9;
using namespace e9::frontend;

std::vector<Shard> frontend::planShards(const std::vector<uint64_t> &SitesAsc,
                                        const ShardPolicy &Policy) {
  std::vector<Shard> Plan;
  size_t N = SitesAsc.size();
  if (N == 0)
    return Plan;
  size_t MaxShards = Policy.MaxShards ? Policy.MaxShards : 1;
  size_t Target = std::max<size_t>(
      std::max<size_t>(Policy.MinSitesPerShard, 1),
      (N + MaxShards - 1) / MaxShards);

  Shard Cur;
  Cur.FirstSite = 0;
  Cur.NumSites = 1;
  Cur.LoAddr = Cur.HiAddr = SitesAsc[0];
  for (size_t I = 1; I != N; ++I) {
    assert(SitesAsc[I] > SitesAsc[I - 1] && "sites must be sorted unique");
    if (Cur.NumSites >= Target &&
        SitesAsc[I] - SitesAsc[I - 1] >= ShardGuardDistance) {
      Plan.push_back(Cur);
      Cur.FirstSite = I;
      Cur.NumSites = 0;
      Cur.LoAddr = SitesAsc[I];
    }
    ++Cur.NumSites;
    Cur.HiAddr = SitesAsc[I];
  }
  Plan.push_back(Cur);
  return Plan;
}

namespace {

/// Everything one shard's Patcher produced, copied out so the Patcher (and
/// its image reference) can be destroyed before the merge runs.
struct ShardResult {
  core::PatchStats Stats;
  std::vector<core::TrampolineChunk> Chunks;
  std::vector<core::JumpRecord> Jumps;
  std::vector<core::PatchSiteResult> Sites;
  std::vector<Interval> Modified;
  std::map<uint64_t, std::vector<uint8_t>> B0;
  std::map<uint64_t, uint64_t> Allocs;
  obs::TraceBuffer Trace; ///< This shard's events (empty when disabled).
  obs::ProfileNode ProfTree; ///< This shard's span tree (when profiling).
  std::vector<obs::SpanEvent> ProfEvents;
  uint64_t ZoneExtends = 0;
  uint64_t ZoneOpens = 0;
  uint64_t FailedProbes = 0;
  uint64_t ProbeSteps = 0;
  uint64_t ZonesRetired = 0;
  uint64_t OpenZonePeak = 0;
  double PatchMs = 0;
};

void addStats(core::PatchStats &Acc, const core::PatchStats &S) {
  Acc.NLoc += S.NLoc;
  for (size_t I = 0; I != 7; ++I) {
    Acc.Count[I] += S.Count[I];
    Acc.ReasonCount[I] += S.ReasonCount[I];
  }
  Acc.Evictions += S.Evictions;
  Acc.Rescued += S.Rescued;
  Acc.AllocRetries += S.AllocRetries;
}

} // namespace

ShardedPatchOutput frontend::patchSharded(
    const elf::Image &Original, elf::Image &Img, std::vector<x86::Insn> Insns,
    const std::vector<uint64_t> &PatchLocs, const core::PatchOptions &PatchOpts,
    const std::function<core::TrampolineSpec(uint64_t)> &SpecFor,
    const std::vector<Interval> &ExtraReserved, const ShardPolicy &Policy,
    unsigned Jobs, obs::Tracer Trace, obs::Profiler Prof) {
  ShardedPatchOutput Out;

  std::vector<uint64_t> Sites(PatchLocs);
  std::sort(Sites.begin(), Sites.end());
  Sites.erase(std::unique(Sites.begin(), Sites.end()), Sites.end());

  std::sort(Insns.begin(), Insns.end(),
            [](const x86::Insn &A, const x86::Insn &B) {
              return A.Address < B.Address;
            });

  std::vector<Shard> Plan = planShards(Sites, Policy);
  Out.ShardCount = Plan.size();
  Out.JobsUsed = Jobs == 0 ? ThreadPool::hardwareThreads() : Jobs;
  // The fault injector keeps global hit ordinals and is not thread-safe:
  // chaos-mode determinism (and TSan cleanliness) require a single thread
  // whenever it is armed. Output bytes are Jobs-independent either way.
  if (FaultInjectionArmed)
    Out.JobsUsed = 1;
  if (Plan.empty())
    return Out;

  const elf::Segment *Text = Img.textSegment();
  uint64_t TextBase = Text ? Text->VAddr : 0;
  auto windowFor = [&](size_t K) -> uint64_t {
    if (K == 0)
      return 0; // Shard 0 allocates lowest-first, like the sequential path.
    return TextBase + Policy.WindowOffset + (K - 1) * Policy.WindowStride;
  };

  // Runs shard K against the shared image. Shards touch pairwise-disjoint
  // byte ranges (see Shard.h), so concurrent calls are race-free. When
  // \p ReservedAllocs is non-null (the redo pass), those address ranges
  // are additionally withheld from the shard's allocator. The set is
  // passed coalesced: reserving the union interval-by-interval is far
  // cheaper than replaying thousands of individual allocations.
  auto runShard = [&](size_t K, const IntervalSet *ReservedAllocs,
                      std::vector<x86::Insn> ShardInsns) -> ShardResult {
    const Shard &S = Plan[K];
    ShardResult R;
    Stopwatch ShardClock;
    core::Patcher P(Img, std::move(ShardInsns), PatchOpts);
    if (Trace.enabled())
      P.setTracer(obs::Tracer(&R.Trace)); // Private buffer: no locks.
    // Private per-shard collector (the TraceBuffer ownership discipline);
    // shares the pipeline collector's epoch so Chrome timestamps align.
    std::optional<obs::ProfileCollector> PC;
    if (Prof.enabled()) {
      PC.emplace(static_cast<int>(K), Prof.collector()->epoch());
      P.setProfiler(obs::Profiler(&*PC));
    }
    P.allocator().SearchBase = windowFor(K);
    for (const Interval &Res : ExtraReserved)
      P.allocator().reserve(Res.Lo, Res.Hi);
    if (ReservedAllocs)
      for (const auto &[Lo, Hi] : *ReservedAllocs)
        P.allocator().reserve(Lo, Hi);
    // Strategy S1 within the shard: descending address order.
    for (size_t I = S.NumSites; I-- > 0;) {
      uint64_t Addr = Sites[S.FirstSite + I];
      P.patchOne(Addr, SpecFor ? SpecFor(Addr) : PatchOpts.Spec);
    }
    R.Stats = P.stats();
    // Move the bulk outputs out of the patcher — chunk byte vectors alone
    // dominate shard teardown cost when copied.
    R.Chunks = P.takeChunks();
    R.Jumps = P.takeJumps();
    R.Sites = P.takeResults();
    R.Modified = P.modifiedRanges();
    R.B0 = P.takeB0Table();
    R.Allocs = P.allocator().allocations();
    R.ZoneExtends = P.allocator().zoneExtends();
    R.ZoneOpens = P.allocator().zoneOpens();
    R.FailedProbes = P.allocator().failedProbes();
    R.ProbeSteps = P.allocator().probeSteps();
    R.ZonesRetired = P.allocator().zonesRetired();
    R.OpenZonePeak = P.allocator().openZonePeak();
    R.PatchMs = ShardClock.elapsedMs();
    if (PC) {
      R.ProfTree = PC->takeTree(R.PatchMs);
      R.ProfEvents = PC->takeEvents();
    }
    return R;
  };

  auto sliceFor = [&](const Shard &S) {
    auto Lo = std::lower_bound(Insns.begin(), Insns.end(), S.LoAddr,
                               [](const x86::Insn &I, uint64_t A) {
                                 return I.Address < A;
                               });
    auto Hi = std::lower_bound(Insns.begin(), Insns.end(),
                               S.HiAddr + ShardGuardDistance,
                               [](const x86::Insn &I, uint64_t A) {
                                 return I.Address < A;
                               });
    return std::vector<x86::Insn>(Lo, Hi);
  };

  // --- Parallel shard execution -------------------------------------------
  Stopwatch PatchClock;
  std::vector<ShardResult> Results(Plan.size());
  if (Plan.size() == 1) {
    Results[0] = runShard(0, nullptr, std::move(Insns));
  } else {
    parallelFor(Plan.size(), Out.JobsUsed, [&](size_t K) {
      Results[K] = runShard(K, nullptr, sliceFor(Plan[K]));
    });
  }
  Out.PatchMs = PatchClock.elapsedMs();

  // --- Deterministic merge + conflict redo --------------------------------
  // Descending address order, mirroring S1's global install order. A shard
  // whose trampoline allocations overlap anything already merged is rolled
  // back and re-run with the merged space reserved; everything here is a
  // pure function of the shard results, never of the thread count.
  Stopwatch MergeClock;
  IntervalSet MergedUsed;
  for (size_t K = Plan.size(); K-- > 0;) {
    ShardResult &R = Results[K];
    bool Clash = false;
    for (const auto &[A, Sz] : R.Allocs)
      if (MergedUsed.overlaps(A, A + Sz)) {
        Clash = true;
        break;
      }
    if (Clash) {
      ++Out.ShardsRedone;
      // Restore the shard's text bytes from the pristine input, then
      // re-run it sequentially with every merged allocation withheld.
      // The first run's result — trace events included — is discarded
      // wholesale, so the spliced trace stays deterministic.
      std::vector<uint8_t> Buf;
      for (const Interval &M : R.Modified) {
        Buf.resize(M.size());
        [[maybe_unused]] Status RS =
            Original.readBytes(M.Lo, Buf.data(), Buf.size());
        assert(RS.isOk() && "modified range must exist in the original");
        [[maybe_unused]] Status WS =
            Img.writeBytes(M.Lo, Buf.data(), Buf.size());
        assert(WS.isOk() && "restore write must succeed");
      }
      obs::ScopedSpan RedoSpan(Prof, "redo");
      R = runShard(K, &MergedUsed, sliceFor(Plan[K]));
    }
    Trace.shard(K, Plan[K].NumSites, Plan[K].LoAddr, Plan[K].HiAddr,
                windowFor(K), Clash);
    if (Trace.enabled())
      Trace.buffer()->splice(std::move(R.Trace));
    // Graft the shard's span tree under the caller's open "patch" span —
    // merge order, so the aggregated tree is Jobs-independent; a redone
    // shard grafts its redo-run tree (the first-run collector died with
    // the first-run result above).
    if (Prof.enabled())
      Prof.collector()->graft("shard", static_cast<int>(K),
                              std::move(R.ProfTree), std::move(R.ProfEvents),
                              R.PatchMs);
    Out.ShardSpans.push_back(
        obs::SpanRecord{"patch", static_cast<int>(K), R.PatchMs});
    Out.ZoneExtends += R.ZoneExtends;
    Out.ZoneOpens += R.ZoneOpens;
    Out.AllocFailedProbes += R.FailedProbes;
    Out.AllocProbeSteps += R.ProbeSteps;
    Out.AllocZonesRetired += R.ZonesRetired;
    Out.AllocOpenZonePeak = std::max(Out.AllocOpenZonePeak, R.OpenZonePeak);
    addStats(Out.Stats, R.Stats);
    Out.Chunks.insert(Out.Chunks.end(),
                      std::make_move_iterator(R.Chunks.begin()),
                      std::make_move_iterator(R.Chunks.end()));
    Out.Jumps.insert(Out.Jumps.end(), R.Jumps.begin(), R.Jumps.end());
    Out.Sites.insert(Out.Sites.end(), R.Sites.begin(), R.Sites.end());
    Out.ModifiedRanges.insert(Out.ModifiedRanges.end(), R.Modified.begin(),
                              R.Modified.end());
    for (auto &[Addr, Bytes] : R.B0)
      Out.B0Table.emplace(Addr, std::move(Bytes));
    for (const auto &[A, Sz] : R.Allocs)
      MergedUsed.insert(A, A + Sz);
  }
  std::sort(Out.ModifiedRanges.begin(), Out.ModifiedRanges.end(),
            [](const Interval &A, const Interval &B) { return A.Lo < B.Lo; });
  Out.MergeMs = MergeClock.elapsedMs();
  return Out;
}
