file(REMOVE_RECURSE
  "CMakeFiles/e9_x86.dir/Assembler.cpp.o"
  "CMakeFiles/e9_x86.dir/Assembler.cpp.o.d"
  "CMakeFiles/e9_x86.dir/Decoder.cpp.o"
  "CMakeFiles/e9_x86.dir/Decoder.cpp.o.d"
  "CMakeFiles/e9_x86.dir/Insn.cpp.o"
  "CMakeFiles/e9_x86.dir/Insn.cpp.o.d"
  "CMakeFiles/e9_x86.dir/Printer.cpp.o"
  "CMakeFiles/e9_x86.dir/Printer.cpp.o.d"
  "CMakeFiles/e9_x86.dir/Register.cpp.o"
  "CMakeFiles/e9_x86.dir/Register.cpp.o.d"
  "CMakeFiles/e9_x86.dir/Reloc.cpp.o"
  "CMakeFiles/e9_x86.dir/Reloc.cpp.o.d"
  "libe9_x86.a"
  "libe9_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
