file(REMOVE_RECURSE
  "CMakeFiles/e9_workload.dir/Gen.cpp.o"
  "CMakeFiles/e9_workload.dir/Gen.cpp.o.d"
  "CMakeFiles/e9_workload.dir/Run.cpp.o"
  "CMakeFiles/e9_workload.dir/Run.cpp.o.d"
  "CMakeFiles/e9_workload.dir/Suite.cpp.o"
  "CMakeFiles/e9_workload.dir/Suite.cpp.o.d"
  "libe9_workload.a"
  "libe9_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
