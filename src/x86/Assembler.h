//===- x86/Assembler.h - Small x86_64 encoder ------------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct-emission x86_64 assembler with label/fixup support. Used by the
/// synthetic workload generator (to build input binaries), the trampoline
/// builder (to materialize patch/evictee trampolines) and the tests.
///
/// Only instructions that the VM interpreter executes are provided; the
/// encodings are the canonical ones the decoder round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef E9_X86_ASSEMBLER_H
#define E9_X86_ASSEMBLER_H

#include "support/ByteBuffer.h"
#include "x86/Register.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace e9 {
namespace x86 {

/// A memory operand: [Base + Index*Scale + Disp], rip-relative, or abs32.
struct Mem {
  Reg Base = Reg::None;
  Reg Index = Reg::None;
  uint8_t Scale = 1; ///< 1, 2, 4 or 8.
  int32_t Disp = 0;

  /// [rip + Disp].
  static Mem ripRel(int32_t Disp) {
    Mem M;
    M.Base = Reg::RIP;
    M.Disp = Disp;
    return M;
  }
  /// [Base + Disp].
  static Mem base(Reg Base, int32_t Disp = 0) {
    Mem M;
    M.Base = Base;
    M.Disp = Disp;
    return M;
  }
  /// [Base + Index*Scale + Disp].
  static Mem baseIndex(Reg Base, Reg Index, uint8_t Scale, int32_t Disp = 0) {
    Mem M;
    M.Base = Base;
    M.Index = Index;
    M.Scale = Scale;
    M.Disp = Disp;
    return M;
  }
  /// [Disp32] absolute (no base/index).
  static Mem abs(int32_t Disp) {
    Mem M;
    M.Disp = Disp;
    return M;
  }

  bool isRipRel() const { return Base == Reg::RIP; }
};

/// Operand sizes in bytes.
enum class OpSize : uint8_t { B8 = 1, B16 = 2, B32 = 4, B64 = 8 };

/// ALU operations encoded in the standard 00-3F opcode rows / group 1.
enum class Alu : uint8_t {
  Add = 0,
  Or = 1,
  Adc = 2,
  Sbb = 3,
  And = 4,
  Sub = 5,
  Xor = 6,
  Cmp = 7,
};

/// Shift operations encoded in group 2 (C0/C1/D0-D3).
enum class Shift : uint8_t { Shl = 4, Shr = 5, Sar = 7 };

/// Direct-emission assembler with deferred label fixups.
class Assembler {
public:
  using Label = unsigned;

  explicit Assembler(uint64_t BaseAddr) : Base(BaseAddr) {}

  /// Pre-grows the output buffer when the caller knows the emitted size
  /// (e.g. trampolineSize()), avoiding reallocation during emission.
  void reserve(size_t N) { Buf.reserve(N); }

  uint64_t baseAddr() const { return Base; }
  uint64_t currentAddr() const { return Base + Buf.size(); }
  size_t size() const { return Buf.size(); }
  const ByteBuffer &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return Buf.takeBytes(); }

  // --- Labels -------------------------------------------------------------
  Label createLabel();
  void bind(Label L);
  /// Binds \p L to an arbitrary absolute address (e.g. outside the buffer).
  void bindAt(Label L, uint64_t Addr);
  /// Returns the bound address of \p L (asserts when unbound).
  uint64_t labelAddr(Label L) const {
    assert(L < Labels.size() && Labels[L].has_value() && "label unbound");
    return *Labels[L];
  }
  /// Resolves all fixups; returns false if a label is unbound or a short
  /// jump's displacement does not fit.
  bool resolveAll();

  // --- Raw emission --------------------------------------------------------
  void byte(uint8_t B) { Buf.push8(B); }
  void raw(std::initializer_list<uint8_t> Bytes) { Buf.pushBytes(Bytes); }
  void raw(const std::vector<uint8_t> &Bytes) { Buf.pushBytes(Bytes); }

  // --- Data moves -----------------------------------------------------------
  void movRegImm64(Reg Dst, uint64_t Imm);        ///< mov r64, imm64
  void movRegImm32(Reg Dst, int32_t Imm);         ///< mov r64, imm32 (sext)
  void movRegReg(OpSize S, Reg Dst, Reg Src);
  void movMemReg(OpSize S, const Mem &Dst, Reg Src);
  void movRegMem(OpSize S, Reg Dst, const Mem &Src);
  void movMemImm(OpSize S, const Mem &Dst, int32_t Imm);
  void movzxRegMem8(Reg Dst, const Mem &Src);     ///< movzx r64, byte [m]
  void leaRegMem(Reg Dst, const Mem &Src);

  // --- ALU -------------------------------------------------------------------
  void aluRegReg(OpSize S, Alu Op, Reg Dst, Reg Src);
  void aluRegMem(OpSize S, Alu Op, Reg Dst, const Mem &Src);
  void aluMemReg(OpSize S, Alu Op, const Mem &Dst, Reg Src);
  void aluRegImm(OpSize S, Alu Op, Reg Dst, int32_t Imm);
  void aluMemImm(OpSize S, Alu Op, const Mem &Dst, int32_t Imm);
  void testRegReg(OpSize S, Reg A, Reg B);
  void imulRegReg(Reg Dst, Reg Src);              ///< imul r64, r64
  void shiftRegImm(OpSize S, Shift Op, Reg R, uint8_t Amount);
  void incReg(Reg R);
  void decReg(Reg R);
  void incMem(OpSize S, const Mem &M);
  void negReg(Reg R);
  void xaddMemReg(OpSize S, const Mem &M, Reg R);    ///< 0f c0/c1
  void cmpxchgMemReg(OpSize S, const Mem &M, Reg R); ///< 0f b0/b1
  void lockPrefix();                                 ///< f0

  // --- Stack -------------------------------------------------------------------
  void pushReg(Reg R);
  void popReg(Reg R);
  void pushfq();
  void popfq();
  void pushImm32(int32_t Imm);

  // --- Control flow ---------------------------------------------------------
  void jmpLabel(Label L);          ///< e9 rel32
  void jmpShortLabel(Label L);     ///< eb rel8
  void jccLabel(Cond C, Label L);  ///< 0f 8x rel32
  void jccShortLabel(Cond C, Label L); ///< 7x rel8
  void callLabel(Label L);         ///< e8 rel32
  void jmpAddr(uint64_t Target);   ///< e9 rel32 to absolute target
  void jccAddr(Cond C, uint64_t Target);
  void callAddr(uint64_t Target);
  void callReg(Reg R);             ///< ff /2
  void jmpReg(Reg R);              ///< ff /4
  void loopLabel(Label L);   ///< e2 rel8
  void jrcxzLabel(Label L);  ///< e3 rel8
  void ret();
  void int3();
  void nop();
  void nops(unsigned N);
  void ud2();
  void cqo();                ///< sign-extend rax into rdx
  void cld();                ///< clear direction flag
  void repMovsb();           ///< f3 a4
  void repStosb();           ///< f3 aa
  void repMovsq();           ///< f3 48 a5
  void repStosq();           ///< f3 48 ab
  void divReg(Reg R);        ///< div r64 (rdx:rax / r)
  void idivReg(Reg R);       ///< idiv r64

  /// Emits a 14-byte register- and flag-preserving absolute jump:
  /// push imm32(lo); mov dword [rsp+4], hi; ret. Works for any canonical
  /// 64-bit target, at the price of one stack slot.
  void jmpAnywhere(uint64_t Target);

  /// mov rax, imm64(Target); call rax — an 12-byte absolute call used for
  /// host-hook invocations (clobbers rax).
  void callAbsViaRax(uint64_t Target);

private:
  struct Fixup {
    size_t Offset;    ///< Buffer offset of the displacement field.
    uint8_t Size;     ///< 1 or 4 bytes.
    Label TargetLabel;
  };

  void emitRex(bool W, bool R, bool X, bool B, bool Force);
  void emitModRMReg(uint8_t RegField, Reg Rm);
  void emitModRMMem(uint8_t RegField, const Mem &M);
  /// Emits [prefix] [REX] [escape] opcode modrm for reg-field + rm operand.
  void instrRM(OpSize S, bool TwoByte, uint8_t Opc, uint8_t RegField,
               Reg Rm);
  void instrRMMem(OpSize S, bool TwoByte, uint8_t Opc, uint8_t RegField,
                  const Mem &M);
  void emitRel(uint8_t Size, Label L);
  int32_t relTo(uint64_t Target, unsigned InsnEndOffset) const;

  uint64_t Base;
  ByteBuffer Buf;
  std::vector<std::optional<uint64_t>> Labels;
  std::vector<Fixup> Fixups;
};

} // namespace x86
} // namespace e9

#endif // E9_X86_ASSEMBLER_H
