//===- support/Timing.h - Wall-clock phase timers --------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stopwatch for per-phase time attribution in the rewriting pipeline
/// and the benchmarks (disassemble / patch / group / write / verify).
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_TIMING_H
#define E9_SUPPORT_TIMING_H

#include <chrono>

namespace e9 {

class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Milliseconds since construction or the previous lap; restarts.
  double lapMs() {
    Clock::time_point Now = Clock::now();
    double Ms = std::chrono::duration<double, std::milli>(Now - Start).count();
    Start = Now;
    return Ms;
  }

  /// Milliseconds since construction or the previous lap; keeps running.
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace e9

#endif // E9_SUPPORT_TIMING_H
