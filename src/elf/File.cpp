//===- elf/File.cpp - ELF64 serialization -----------------------*- C++ -*-===//
//
// Writes and reads stripped ELF64 executables/shared objects. Rewritten
// binaries additionally carry an "E9REPRO" PT_NOTE whose descriptor holds
// the physical trampoline blocks (by file offset) and the virtual mapping
// table the loader applies at startup.
//
//===----------------------------------------------------------------------===//

#include "elf/Image.h"

#include "support/FaultInjector.h"
#include "support/Mmap.h"
#include "support/Format.h"

#include <cassert>
#include <cstring>
#include <fstream>

using namespace e9;
using namespace e9::elf;

namespace {

constexpr uint16_t ET_EXEC = 2;
constexpr uint16_t ET_DYN = 3;
constexpr uint16_t EM_X86_64 = 0x3e;
constexpr uint32_t PT_LOAD = 1;
constexpr uint32_t PT_NOTE = 4;
constexpr uint32_t NoteType = 0x4539; ///< 'E9' — the mapping-table note.
constexpr uint64_t PageSize = 4096;
const char NoteName[8] = {'E', '9', 'R', 'E', 'P', 'R', 'O', '\0'};

constexpr uint64_t EhdrSize = 64;
constexpr uint64_t PhdrSize = 56;

uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }

/// Advances \p Cur to the next file offset congruent to \p VAddr mod page.
uint64_t congruentOffset(uint64_t Cur, uint64_t VAddr) {
  uint64_t Base = alignUp(Cur, PageSize);
  uint64_t Want = Base + (VAddr % PageSize);
  if (Want < Cur)
    Want += PageSize;
  // Avoid needlessly skipping a whole page when Cur already fits.
  if (Want >= PageSize && Want - PageSize >= Cur)
    Want -= PageSize;
  return Want;
}

struct Phdr {
  uint32_t Type;
  uint32_t Flags;
  uint64_t Offset;
  uint64_t VAddr;
  uint64_t FileSz;
  uint64_t MemSz;
};

/// Sequential little-endian writer over a caller-owned span. The span is
/// the final destination (a heap vector or an mmap()ed output file), so
/// emission is single-pass and copy-free; planLayout() supplies the exact
/// size up front.
class SpanWriter {
public:
  SpanWriter(uint8_t *Data, size_t Size) : P(Data), N(Size) {}

  size_t size() const { return Pos; }

  void push8(uint8_t V) {
    assert(Pos < N && "SpanWriter overflow");
    P[Pos++] = V;
  }
  void push16(uint16_t V) {
    push8(static_cast<uint8_t>(V));
    push8(static_cast<uint8_t>(V >> 8));
  }
  void push32(uint32_t V) {
    push16(static_cast<uint16_t>(V));
    push16(static_cast<uint16_t>(V >> 16));
  }
  void push64(uint64_t V) {
    push32(static_cast<uint32_t>(V));
    push32(static_cast<uint32_t>(V >> 32));
  }
  void pushBytes(std::initializer_list<uint8_t> Bytes) {
    pushBytes(Bytes.begin(), Bytes.size());
  }
  void pushBytes(const uint8_t *Bytes, size_t K) {
    assert(Pos + K <= N && "SpanWriter overflow");
    if (K != 0) // empty vectors hand us a null data() pointer
      std::memcpy(P + Pos, Bytes, K);
    Pos += K;
  }
  void pushBytes(const std::vector<uint8_t> &Bytes) {
    pushBytes(Bytes.data(), Bytes.size());
  }
  void pushFill(size_t K, uint8_t Fill) {
    assert(Pos + K <= N && "SpanWriter overflow");
    std::memset(P + Pos, Fill, K);
    Pos += K;
  }
  void alignTo(size_t Align, uint8_t Fill = 0) {
    while (Pos % Align != 0)
      push8(Fill);
  }

private:
  uint8_t *P;
  size_t N;
  size_t Pos = 0;
};

void pushPhdr(SpanWriter &B, const Phdr &P) {
  B.push32(P.Type);
  B.push32(P.Flags);
  B.push64(P.Offset);
  B.push64(P.VAddr);
  B.push64(P.VAddr); // p_paddr
  B.push64(P.FileSz);
  B.push64(P.MemSz);
  B.push64(PageSize); // p_align
}

/// Serialized size of the note descriptor (blocks + mappings + B0 table).
uint64_t noteDescSize(const Image &Img) {
  uint64_t B0Bytes = 4;
  for (const auto &[Addr, Bytes] : Img.B0Sites)
    B0Bytes += 12 + Bytes.size();
  return 8 + Img.Blocks.size() * 16 + Img.Mappings.size() * 32 + B0Bytes;
}

/// Total size of the note payload: Nhdr (12) + padded name + padded desc.
uint64_t noteSize(const Image &Img) {
  return 12 + sizeof(NoteName) + alignUp(noteDescSize(Img), 4);
}

/// Every file offset write() will emit at, planned without serializing.
struct Layout {
  bool HasNote = false;
  uint64_t PhNum = 0;
  std::vector<uint64_t> SegOffsets;
  uint64_t NoteOff = 0;
  std::vector<uint64_t> BlockOffsets;
  uint64_t FileSize = 0;
};

Layout planLayout(const Image &Img) {
  Layout L;
  L.HasNote =
      !Img.Blocks.empty() || !Img.Mappings.empty() || !Img.B0Sites.empty();
  L.PhNum = Img.Segments.size() + (L.HasNote ? 1 : 0);

  uint64_t Cur = EhdrSize + L.PhNum * PhdrSize;
  for (const Segment &S : Img.Segments) {
    uint64_t Off = congruentOffset(Cur, S.VAddr);
    L.SegOffsets.push_back(Off);
    Cur = Off + S.fileSize();
  }
  L.NoteOff = alignUp(Cur, 4);
  if (L.HasNote)
    Cur = L.NoteOff + noteSize(Img);
  for (const PhysBlock &B : Img.Blocks) {
    uint64_t Off = alignUp(Cur, 16);
    L.BlockOffsets.push_back(Off);
    Cur = Off + B.Bytes.size();
  }
  L.FileSize = Cur;
  return L;
}

} // namespace

uint64_t elf::writtenSize(const Image &Img, obs::Profiler Prof) {
  obs::ScopedSpan Span(Prof, "elf.layout");
  return planLayout(Img).FileSize;
}

namespace {

/// Serializes \p Img into \p Dst (exactly \p L.FileSize bytes, already
/// zero-initialized by the caller: a fresh vector or an ftruncate()d
/// mapping). The one emission routine behind both write() and the
/// zero-copy writeFile() path.
void emitImage(uint8_t *Dst, const Image &Img, const Layout &L) {
  SpanWriter Out(Dst, L.FileSize);
  // e_ident
  Out.pushBytes({0x7f, 'E', 'L', 'F', 2 /*64-bit*/, 1 /*LE*/, 1 /*ver*/, 0});
  Out.pushFill(8, 0);
  Out.push16(Img.Pie ? ET_DYN : ET_EXEC);
  Out.push16(EM_X86_64);
  Out.push32(1); // e_version
  Out.push64(Img.Entry);
  Out.push64(EhdrSize); // e_phoff
  Out.push64(0);        // e_shoff (stripped: no sections)
  Out.push32(0);        // e_flags
  Out.push16(EhdrSize);
  Out.push16(PhdrSize);
  Out.push16(static_cast<uint16_t>(L.PhNum));
  Out.push16(64); // e_shentsize
  Out.push16(0);  // e_shnum
  Out.push16(0);  // e_shstrndx
  assert(Out.size() == EhdrSize && "bad Ehdr layout");

  for (size_t I = 0; I != Img.Segments.size(); ++I) {
    const Segment &S = Img.Segments[I];
    pushPhdr(Out, Phdr{PT_LOAD, S.Flags, L.SegOffsets[I], S.VAddr,
                       S.fileSize(), S.MemSize});
  }
  if (L.HasNote)
    pushPhdr(Out, Phdr{PT_NOTE, PF_R, L.NoteOff, 0, noteSize(Img), 0});

  for (size_t I = 0; I != Img.Segments.size(); ++I) {
    Out.pushFill(L.SegOffsets[I] - Out.size(), 0);
    Out.pushBytes(Img.Segments[I].Bytes);
  }

  if (L.HasNote) {
    Out.pushFill(L.NoteOff - Out.size(), 0);
    Out.push32(sizeof(NoteName));                         // namesz
    Out.push32(static_cast<uint32_t>(noteDescSize(Img))); // descsz
    Out.push32(NoteType);
    Out.pushBytes(reinterpret_cast<const uint8_t *>(NoteName),
                  sizeof(NoteName));
    Out.push32(static_cast<uint32_t>(Img.Blocks.size()));
    Out.push32(static_cast<uint32_t>(Img.Mappings.size()));
    for (size_t I = 0; I != Img.Blocks.size(); ++I) {
      Out.push64(L.BlockOffsets[I]);
      Out.push64(Img.Blocks[I].Bytes.size());
    }
    for (const Mapping &M : Img.Mappings) {
      Out.push64(M.VAddr);
      Out.push32(M.BlockIndex);
      Out.push32(M.Flags);
      Out.push64(M.Offset);
      Out.push64(M.Size);
    }
    Out.push32(static_cast<uint32_t>(Img.B0Sites.size()));
    for (const auto &[Addr, Bytes] : Img.B0Sites) {
      Out.push64(Addr);
      Out.push32(static_cast<uint32_t>(Bytes.size()));
      Out.pushBytes(Bytes);
    }
    Out.alignTo(4);
  }

  for (size_t I = 0; I != Img.Blocks.size(); ++I) {
    Out.pushFill(L.BlockOffsets[I] - Out.size(), 0);
    Out.pushBytes(Img.Blocks[I].Bytes);
  }
  assert(Out.size() == L.FileSize && "planLayout disagrees with emission");
}

} // namespace

std::vector<uint8_t> elf::write(const Image &Img) {
  Layout L = planLayout(Img);
  std::vector<uint8_t> Out(L.FileSize);
  emitImage(Out.data(), Img, L);
  return Out;
}

namespace {

/// Bounds-checked little-endian readernamespace {

/// Bounds-checked little-endian reader over the raw file bytes. Holds a
/// borrowed (pointer, size) span so the same parser runs over a heap
/// vector or a read-only mmap of the input file.
class FileReader {
public:
  FileReader(const uint8_t *Data, size_t N) : Data(Data), N(N) {}

  bool inBounds(uint64_t Off, uint64_t K) const {
    return Off + K >= Off && Off + K <= N;
  }
  uint64_t read(uint64_t Off, unsigned K) const {
    uint64_t V = 0;
    for (unsigned I = 0; I != K; ++I)
      V |= static_cast<uint64_t>(Data[Off + I]) << (8 * I);
    return V;
  }
  size_t size() const { return N; }
  const uint8_t *data() const { return Data; }

private:
  const uint8_t *Data;
  size_t N;
};

} // namespace

Result<Image> elf::read(const std::vector<uint8_t> &Bytes) {
  return read(Bytes.data(), Bytes.size());
}

Result<Image> elf::read(const uint8_t *Data, size_t Size) {
  FileReader F(Data, Size);
  if (E9_FAULT_POINT("elf.read.ehdr"))
    return Result<Image>::error(
        "injected fault: elf.read.ehdr (header read failed)");
  if (!F.inBounds(0, EhdrSize))
    return Result<Image>::error(
        format("file too small for an ELF header (%zu bytes, need %llu)",
               Size, static_cast<unsigned long long>(EhdrSize)));
  static const uint8_t Magic[4] = {0x7f, 'E', 'L', 'F'};
  if (std::memcmp(Data, Magic, 4) != 0)
    return Result<Image>::error("bad ELF magic");
  if (Data[4] != 2 || Data[5] != 1)
    return Result<Image>::error("not a little-endian ELF64 file");
  uint16_t Type = static_cast<uint16_t>(F.read(16, 2));
  if (Type != ET_EXEC && Type != ET_DYN)
    return Result<Image>::error(
        format("unsupported ELF type %u (want ET_EXEC or ET_DYN)", Type));
  if (F.read(18, 2) != EM_X86_64)
    return Result<Image>::error("not an x86_64 binary");

  Image Img;
  Img.Pie = Type == ET_DYN;
  Img.Entry = F.read(24, 8);
  uint64_t PhOff = F.read(32, 8);
  uint16_t PhEntSize = static_cast<uint16_t>(F.read(54, 2));
  uint16_t PhNum = static_cast<uint16_t>(F.read(56, 2));
  if (PhEntSize != PhdrSize)
    return Result<Image>::error(
        format("unexpected program header entry size %u (want %llu)",
               PhEntSize, static_cast<unsigned long long>(PhdrSize)));
  if (!F.inBounds(PhOff, static_cast<uint64_t>(PhNum) * PhdrSize))
    return Result<Image>::error(
        format("program headers out of bounds (phoff %s, %u entries, file "
               "%zu bytes)",
               hex(PhOff).c_str(), PhNum, Size));

  for (uint16_t I = 0; I != PhNum; ++I) {
    uint64_t P = PhOff + static_cast<uint64_t>(I) * PhdrSize;
    if (E9_FAULT_POINT("elf.read.phdr"))
      return Result<Image>::error(format(
          "injected fault: elf.read.phdr (program header %u read failed)",
          I));
    uint32_t PType = static_cast<uint32_t>(F.read(P, 4));
    uint32_t PFlags = static_cast<uint32_t>(F.read(P + 4, 4));
    uint64_t POffset = F.read(P + 8, 8);
    uint64_t PVAddr = F.read(P + 16, 8);
    uint64_t PFileSz = F.read(P + 32, 8);
    uint64_t PMemSz = F.read(P + 40, 8);

    if (PType == PT_LOAD) {
      if (!F.inBounds(POffset, PFileSz))
        return Result<Image>::error(
            format("segment %u content out of bounds (offset %s + %s bytes, "
                   "file %zu bytes)",
                   I, hex(POffset).c_str(), hex(PFileSz).c_str(), Size));
      if (PMemSz < PFileSz)
        return Result<Image>::error(
            format("segment %u memory size %s smaller than its file size %s",
                   I, hex(PMemSz).c_str(), hex(PFileSz).c_str()));
      if (PVAddr + PMemSz < PVAddr)
        return Result<Image>::error(
            format("segment %u wraps the address space (vaddr %s, memsz %s)",
                   I, hex(PVAddr).c_str(), hex(PMemSz).c_str()));
      for (const Segment &Prev : Img.Segments)
        if (PVAddr < Prev.endAddr() && Prev.VAddr < PVAddr + PMemSz)
          return Result<Image>::error(
              format("segment %u [%s, %s) overlaps the segment at %s", I,
                     hex(PVAddr).c_str(), hex(PVAddr + PMemSz).c_str(),
                     hex(Prev.VAddr).c_str()));
      Segment S;
      S.VAddr = PVAddr;
      S.Flags = PFlags;
      S.MemSize = PMemSz;
      S.Bytes.assign(Data + POffset, Data + POffset + PFileSz);
      S.Name = (PFlags & PF_X) ? "text" : (PFlags & PF_W) ? "data" : "rodata";
      Img.Segments.push_back(std::move(S));
      continue;
    }
    if (PType != PT_NOTE)
      continue;
    if (!F.inBounds(POffset, PFileSz) || PFileSz < 12 + sizeof(NoteName))
      continue;
    if (std::memcmp(Data + POffset + 12, NoteName,
                    sizeof(NoteName)) != 0)
      continue;
    if (E9_FAULT_POINT("elf.read.note"))
      return Result<Image>::error(
          "injected fault: elf.read.note (mapping note read failed)");
    uint64_t D = POffset + 12 + sizeof(NoteName);
    uint32_t NBlocks = static_cast<uint32_t>(F.read(D, 4));
    uint32_t NMappings = static_cast<uint32_t>(F.read(D + 4, 4));
    uint64_t Need = 8 + static_cast<uint64_t>(NBlocks) * 16 +
                    static_cast<uint64_t>(NMappings) * 32;
    if (!F.inBounds(D, Need))
      return Result<Image>::error(
          format("mapping note truncated at offset %s (%u blocks + %u "
                 "mappings need %s bytes)",
                 hex(D).c_str(), NBlocks, NMappings, hex(Need).c_str()));
    uint64_t Cur = D + 8;
    for (uint32_t B = 0; B != NBlocks; ++B) {
      uint64_t BOff = F.read(Cur, 8);
      uint64_t BSize = F.read(Cur + 8, 8);
      Cur += 16;
      if (!F.inBounds(BOff, BSize))
        return Result<Image>::error(
            format("trampoline block %u out of bounds (offset %s + %s "
                   "bytes, file %zu bytes)",
                   B, hex(BOff).c_str(), hex(BSize).c_str(), Size));
      PhysBlock PB;
      PB.Bytes.assign(Data + BOff, Data + BOff + BSize);
      Img.Blocks.push_back(std::move(PB));
    }
    for (uint32_t M = 0; M != NMappings; ++M) {
      Mapping Map;
      Map.VAddr = F.read(Cur, 8);
      Map.BlockIndex = static_cast<uint32_t>(F.read(Cur + 8, 4));
      Map.Flags = static_cast<uint32_t>(F.read(Cur + 12, 4));
      Map.Offset = F.read(Cur + 16, 8);
      Map.Size = F.read(Cur + 24, 8);
      Cur += 32;
      if (Map.BlockIndex >= Img.Blocks.size())
        return Result<Image>::error(
            format("mapping %u references missing block %u (%zu blocks)", M,
                   Map.BlockIndex, Img.Blocks.size()));
      if (Map.Offset + Map.Size < Map.Offset ||
          Map.Offset + Map.Size > Img.Blocks[Map.BlockIndex].Bytes.size())
        return Result<Image>::error(
            format("mapping %u references bytes out of range (offset %s + "
                   "%s in a %zu-byte block)",
                   M, hex(Map.Offset).c_str(), hex(Map.Size).c_str(),
                   Img.Blocks[Map.BlockIndex].Bytes.size()));
      if ((Map.VAddr % PageSize) != 0 || (Map.Offset % PageSize) != 0)
        return Result<Image>::error(
            format("mapping %u not page aligned (vaddr %s, offset %s)", M,
                   hex(Map.VAddr).c_str(), hex(Map.Offset).c_str()));
      Img.Mappings.push_back(Map);
    }
    // B0 side table (older writers may omit it).
    if (F.inBounds(Cur, 4)) {
      uint32_t NB0 = static_cast<uint32_t>(F.read(Cur, 4));
      Cur += 4;
      for (uint32_t B = 0; B != NB0; ++B) {
        if (!F.inBounds(Cur, 12))
          return Result<Image>::error(
              format("B0 table truncated at offset %s (entry %u of %u)",
                     hex(Cur).c_str(), B, NB0));
        uint64_t Addr = F.read(Cur, 8);
        uint32_t Len = static_cast<uint32_t>(F.read(Cur + 8, 4));
        Cur += 12;
        if (Len > 15 || !F.inBounds(Cur, Len))
          return Result<Image>::error(
              format("B0 entry for %s malformed (length %u at offset %s)",
                     hex(Addr).c_str(), Len, hex(Cur).c_str()));
        Img.B0Sites.emplace(Addr,
                            std::vector<uint8_t>(Data + Cur, Data + Cur + Len));
        Cur += Len;
      }
    }
  }
  return Img;
}

Status elf::writeFile(const Image &Img, const std::string &Path,
                      obs::Profiler Prof) {
  if (E9_FAULT_POINT("elf.write.file"))
    return Status::error(format(
        "injected fault: elf.write.file (writing %s failed)", Path.c_str()));
  Layout L;
  {
    obs::ScopedSpan Span(Prof, "elf.layout");
    L = planLayout(Img);
  }
  // Zero-copy path: size the file up front and serialize straight into
  // the mapping (ftruncate zero-fills, satisfying emitImage's contract).
  if (support::MappedOutputFile M =
          support::MappedOutputFile::create(Path, L.FileSize);
      M.valid()) {
    {
      obs::ScopedSpan Span(Prof, "elf.emit");
      emitImage(M.data(), Img, L);
    }
    if (!M.commit())
      return Status::error(format("write to %s failed", Path.c_str()));
    return Status::ok();
  }
  // Fallback (no mmap, zero-size image, unwritable mapping): buffered.
  std::vector<uint8_t> Bytes = write(Img);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return Status::error(format("cannot open %s for writing", Path.c_str()));
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  if (!Out)
    return Status::error(format("write to %s failed", Path.c_str()));
  return Status::ok();
}

Result<Image> elf::readFile(const std::string &Path) {
  // Parse straight out of a read-only mapping when possible; the Image
  // copies out only the segment/block payloads it keeps.
  if (support::MappedFile M = support::MappedFile::openRead(Path); M.valid())
    return read(M.data(), M.size());
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Result<Image>::error(
        format("cannot open %s for reading", Path.c_str()));
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  return read(Bytes);
}
