//===- tests/printer_test.cpp - AT&T formatting tests ---------*- C++ -*-===//

#include "x86/Printer.h"

#include "x86/Decoder.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::x86;

namespace {

std::string fmt(std::vector<uint8_t> Bytes, uint64_t Addr = 0x401000) {
  Insn I;
  EXPECT_EQ(decode(Bytes.data(), Bytes.size(), Addr, I), DecodeStatus::Ok);
  return formatInsn(I, Bytes.data());
}

} // namespace

TEST(Printer, RegisterNames) {
  EXPECT_EQ(regNameSized(0, 8, true), "rax");
  EXPECT_EQ(regNameSized(0, 4, true), "eax");
  EXPECT_EQ(regNameSized(0, 2, true), "ax");
  EXPECT_EQ(regNameSized(0, 1, true), "al");
  EXPECT_EQ(regNameSized(4, 1, true), "spl");
  EXPECT_EQ(regNameSized(4, 1, false), "ah");
  EXPECT_EQ(regNameSized(12, 8, true), "r12");
  EXPECT_EQ(regNameSized(15, 1, true), "r15b");
  EXPECT_EQ(regNameSized(9, 4, true), "r9d");
}

TEST(Printer, BasicMoves) {
  EXPECT_EQ(fmt({0x48, 0x89, 0x03}), "mov %rax,(%rbx)");
  EXPECT_EQ(fmt({0x48, 0x8b, 0x43, 0x08}), "mov 0x8(%rbx),%rax");
  EXPECT_EQ(fmt({0x89, 0xd8}), "mov %ebx,%eax");
  EXPECT_EQ(fmt({0x48, 0xb8, 1, 0, 0, 0, 0, 0, 0, 0}),
            "movabs $0x1,%rax");
  EXPECT_EQ(fmt({0xb8, 0x2a, 0, 0, 0}), "mov $0x2a,%eax");
  EXPECT_EQ(fmt({0xc6, 0x41, 0x07, 0x01}), "movb $0x1,0x7(%rcx)");
}

TEST(Printer, Arithmetic) {
  EXPECT_EQ(fmt({0x48, 0x01, 0xd8}), "add %rbx,%rax");
  EXPECT_EQ(fmt({0x48, 0x83, 0xc0, 0x20}), "addq $0x20,%rax");
  EXPECT_EQ(fmt({0x48, 0x29, 0xc8}), "sub %rcx,%rax");
  EXPECT_EQ(fmt({0x83, 0x7b, 0xfc, 0x4d}), "cmpl $0x4d,-0x4(%rbx)");
  EXPECT_EQ(fmt({0x48, 0x31, 0xc1}), "xor %rax,%rcx");
  EXPECT_EQ(fmt({0x48, 0xf7, 0xd8}), "negq %rax");
  EXPECT_EQ(fmt({0x48, 0x0f, 0xaf, 0xc3}), "imul %rbx,%rax");
  EXPECT_EQ(fmt({0x48, 0xc1, 0xe0, 0x04}), "shlq $0x4,%rax");
}

TEST(Printer, StackAndFlags) {
  EXPECT_EQ(fmt({0x55}), "push %rbp");
  EXPECT_EQ(fmt({0x41, 0x54}), "push %r12");
  EXPECT_EQ(fmt({0x5d}), "pop %rbp");
  EXPECT_EQ(fmt({0x9c}), "pushfq");
  EXPECT_EQ(fmt({0x9d}), "popfq");
  EXPECT_EQ(fmt({0xc9}), "leave");
}

TEST(Printer, ControlFlow) {
  EXPECT_EQ(fmt({0xe9, 0x0b, 0, 0, 0}), "jmpq 0x401010");
  EXPECT_EQ(fmt({0xeb, 0x0e}), "jmp 0x401010");
  EXPECT_EQ(fmt({0x74, 0x0e}), "je 0x401010");
  EXPECT_EQ(fmt({0x0f, 0x85, 0x0a, 0, 0, 0}), "jne 0x401010");
  EXPECT_EQ(fmt({0xe8, 0x0b, 0, 0, 0}), "callq 0x401010");
  EXPECT_EQ(fmt({0xff, 0xd0}), "callq *%rax");
  EXPECT_EQ(fmt({0xff, 0x25, 0, 0, 0, 0}), "jmpq *0x401006(%rip)");
  EXPECT_EQ(fmt({0xc3}), "ret");
  EXPECT_EQ(fmt({0xcc}), "int3");
}

TEST(Printer, PaddedPunnedJumpIsMarked) {
  // The T1 encoding: redundant prefixes ahead of e9.
  std::string S = fmt({0x48, 0x26, 0xe9, 0x00, 0x00, 0x00, 0x00});
  EXPECT_NE(S.find("jmpq"), std::string::npos);
  EXPECT_NE(S.find("(padded)"), std::string::npos);
}

TEST(Printer, MemoryOperandForms) {
  EXPECT_EQ(fmt({0x48, 0x8d, 0x04, 0x8b}), "lea (%rbx,%rcx,4),%rax");
  EXPECT_EQ(fmt({0x48, 0x8b, 0x04, 0x25, 0, 0x10, 0x60, 0}),
            "mov 0x601000,%rax");
  EXPECT_EQ(fmt({0x48, 0x8b, 0x05, 0x10, 0, 0, 0}),
            "mov 0x401017(%rip),%rax");
  EXPECT_EQ(fmt({0x43, 0x89, 0x0c, 0x06}), "mov %ecx,(%r14,%r8,1)");
}

TEST(Printer, ExtendedAndByteOps) {
  EXPECT_EQ(fmt({0x0f, 0xb6, 0x06}), "movzbl (%rsi),%eax");
  EXPECT_EQ(fmt({0x0f, 0x94, 0xc1}), "sete %cl");
  EXPECT_EQ(fmt({0x48, 0x0f, 0x44, 0xc3}), "cmove %rbx,%rax");
  EXPECT_EQ(fmt({0x40, 0x88, 0xf7}), "mov %sil,%dil");
  EXPECT_EQ(fmt({0x88, 0xf7}), "mov %dh,%bh");
  EXPECT_EQ(fmt({0xf0, 0x48, 0xff, 0x03}), "lock incq (%rbx)");
}

TEST(Printer, Group5AndMisc) {
  EXPECT_EQ(fmt({0x48, 0xff, 0xc0}), "incq %rax");
  EXPECT_EQ(fmt({0xff, 0xc9}), "decl %ecx");
  EXPECT_EQ(fmt({0xff, 0x30}), "push (%rax)");
  EXPECT_EQ(fmt({0x90}), "nop");
  EXPECT_EQ(fmt({0x91}), "xchg %ecx,%eax");
  EXPECT_EQ(fmt({0x0f, 0x0b}), "ud2");
  EXPECT_EQ(fmt({0xf4}), "hlt");
}

TEST(Printer, UnknownFallsBackToBytes) {
  std::string S = fmt({0x0f, 0xae, 0xe8}); // lfence
  EXPECT_NE(S.find(".byte"), std::string::npos);
  EXPECT_NE(S.find("0f ae e8"), std::string::npos);
}

TEST(Printer, NegativeImmediates) {
  EXPECT_EQ(fmt({0x48, 0x83, 0xc0, 0xff}), "addq $-0x1,%rax");
  EXPECT_EQ(fmt({0x48, 0x8b, 0x43, 0xf8}), "mov -0x8(%rbx),%rax");
}
