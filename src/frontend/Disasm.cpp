//===- frontend/Disasm.cpp ------------------------------------*- C++ -*-===//

#include "frontend/Disasm.h"

#include "x86/Decoder.h"

using namespace e9;
using namespace e9::frontend;
using namespace e9::x86;

DisasmResult frontend::linearDisassemble(const elf::Image &Img,
                                         uint64_t Start, uint64_t End) {
  DisasmResult R;
  const elf::Segment *Text = Img.textSegment();
  if (!Text)
    return R;
  if (Start == 0 && End == 0) {
    Start = Text->VAddr;
    End = Text->VAddr + Text->fileSize();
  }
  if (Start < Text->VAddr)
    Start = Text->VAddr;
  if (End > Text->VAddr + Text->fileSize())
    End = Text->VAddr + Text->fileSize();

  const uint8_t *Bytes = Text->Bytes.data() + (Start - Text->VAddr);
  uint64_t Cursor = Start;
  while (Cursor < End) {
    Insn I;
    DecodeStatus S =
        decode(Bytes + (Cursor - Start), End - Cursor, Cursor, I);
    if (S != DecodeStatus::Ok) {
      ++R.UndecodableBytes;
      ++Cursor;
      continue;
    }
    R.Insns.push_back(I);
    Cursor += I.Length;
  }
  return R;
}
