file(REMOVE_RECURSE
  "CMakeFiles/vm_semantics_test.dir/vm_semantics_test.cpp.o"
  "CMakeFiles/vm_semantics_test.dir/vm_semantics_test.cpp.o.d"
  "vm_semantics_test"
  "vm_semantics_test.pdb"
  "vm_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
