//===- tests/obs_test.cpp - observability layer ----------------*- C++ -*-===//
//
// Covers the obs subsystem end to end: JSON writer/parser round trips,
// MetricsRegistry under concurrent increments, histogram bucketing, the
// JSONL trace schema on a real rewrite (golden structure: event order,
// required fields, meta/summary cross-checks), trace byte-determinism
// across thread counts, and the zero-perturbation guarantee (tracing on
// vs. off produces byte-identical binaries).
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "obs/JsonWriter.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/FaultInjector.h"
#include "workload/Gen.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

//===----------------------------------------------------------------------===//
// JsonWriter + parseFlatObject round trip
//===----------------------------------------------------------------------===//

TEST(JsonWriterTest, RendersAllFieldTypes) {
  obs::JsonWriter W;
  std::string Line = W.field("s", "hi")
                         .field("n", uint64_t(42))
                         .field("i", -7)
                         .field("b", true)
                         .hex("a", 0x401000)
                         .fixed("f", 1.5, 2)
                         .take();
  EXPECT_EQ(Line, "{\"s\":\"hi\",\"n\":42,\"i\":-7,\"b\":true,"
                  "\"a\":\"0x401000\",\"f\":1.50}");
}

TEST(JsonWriterTest, EscapesStrings) {
  obs::JsonWriter W;
  std::string Line = W.field("s", "a\"b\\c\nd").take();
  EXPECT_EQ(Line, "{\"s\":\"a\\\"b\\\\c\\nd\"}");
  auto Obj = obs::parseFlatObject(Line);
  ASSERT_TRUE(Obj.has_value());
  EXPECT_EQ((*Obj)["s"].Str, "a\"b\\c\nd");
}

TEST(JsonWriterTest, EscapesControlAndNonAsciiBytesRoundTrip) {
  // Strings are byte strings: control bytes AND bytes >= 0x80 must escape
  // to \u00XX (raw high bytes would be invalid UTF-8 JSON), and the parser
  // must map \u00XX back to the raw byte — a lossless round trip.
  std::string Raw;
  Raw.push_back('\x01');
  Raw.push_back('\x1f');
  Raw.push_back('\x7f'); // printable-range boundary: passes through
  Raw.push_back('\x80');
  Raw.push_back('\xc3');
  Raw.push_back('\xff');
  obs::JsonWriter W;
  std::string Line = W.field("s", Raw).take();
  EXPECT_EQ(Line, "{\"s\":\"\\u0001\\u001f\x7f\\u0080\\u00c3\\u00ff\"}");
  auto Obj = obs::parseFlatObject(Line);
  ASSERT_TRUE(Obj.has_value());
  EXPECT_EQ((*Obj)["s"].Str, Raw);
}

TEST(JsonWriterTest, ParseRoundTrip) {
  obs::JsonWriter W;
  std::string Line =
      W.field("ev", "site").hex("addr", 0xdeadbeef).field("ok", false).take();
  auto Obj = obs::parseFlatObject(Line);
  ASSERT_TRUE(Obj.has_value());
  EXPECT_EQ((*Obj)["ev"].Str, "site");
  EXPECT_EQ((*Obj)["addr"].Str, "0xdeadbeef");
  ASSERT_TRUE((*Obj)["ok"].isBool());
  EXPECT_FALSE((*Obj)["ok"].B);
}

TEST(JsonWriterTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::parseFlatObject("").has_value());
  EXPECT_FALSE(obs::parseFlatObject("not json").has_value());
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":1").has_value());
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":1} trailing").has_value());
  // Nested structures are schema violations, not supported input.
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":{\"b\":1}}").has_value());
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":[1,2]}").has_value());
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  obs::MetricsRegistry Reg;
  constexpr int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T != Threads; ++T)
    Ts.emplace_back([&Reg] {
      // Handle lookup and increments from every thread concurrently:
      // registration takes the mutex, increments are relaxed atomics.
      obs::Counter &C = Reg.counter("shared");
      obs::Histogram &H = Reg.histogram("sizes");
      for (int I = 0; I != PerThread; ++I) {
        C.add();
        H.observe(static_cast<uint64_t>(I % 17));
      }
    });
  for (std::thread &T : Ts)
    T.join();
  obs::MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.counter("shared"), uint64_t(Threads) * PerThread);
  EXPECT_EQ(S.Histograms.at("sizes").Count, uint64_t(Threads) * PerThread);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  obs::Histogram H;
  H.observe(0);  // bucket 0
  H.observe(1);  // bucket 1: [1,2)
  H.observe(2);  // bucket 2: [2,4)
  H.observe(3);  // bucket 2
  H.observe(4);  // bucket 3: [4,8)
  H.observe(255);  // bucket 8
  H.observe(256);  // bucket 9
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 2u);
  EXPECT_EQ(H.bucket(3), 1u);
  EXPECT_EQ(H.bucket(8), 1u);
  EXPECT_EQ(H.bucket(9), 1u);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 0u + 1 + 2 + 3 + 4 + 255 + 256);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 256u);
}

TEST(MetricsTest, HistogramQuantiles) {
  auto StatsFor = [](auto Fill) {
    obs::MetricsRegistry Reg;
    Fill(Reg.histogram("h"));
    return Reg.snapshot().Histograms.at("h");
  };
  {
    obs::HistogramStats Empty;
    EXPECT_EQ(Empty.p50(), 0.0);
  }
  {
    // One value: every quantile collapses to it (interpolation inside the
    // power-of-two bucket is clamped to [Min, Max]).
    obs::HistogramStats S =
        StatsFor([](obs::Histogram &H) { H.observe(100); });
    EXPECT_EQ(S.p50(), 100.0);
    EXPECT_EQ(S.p99(), 100.0);
  }
  {
    // 99 zeros and one outlier: p50 and p95 sit on the zeros, p99's
    // 0-based rank 98.01 still lands in the zero bucket.
    obs::HistogramStats S = StatsFor([](obs::Histogram &H) {
      for (int I = 0; I != 99; ++I)
        H.observe(0);
      H.observe(1024);
    });
    EXPECT_EQ(S.p50(), 0.0);
    EXPECT_EQ(S.p95(), 0.0);
    EXPECT_EQ(S.p99(), 0.0);
    EXPECT_EQ(S.quantile(1.0), 1024.0);
  }
  {
    // Quantiles are monotone and bounded by [Min, Max] on a spread set.
    obs::HistogramStats S = StatsFor([](obs::Histogram &H) {
      for (uint64_t V = 1; V <= 1000; ++V)
        H.observe(V);
    });
    EXPECT_LE(S.p50(), S.p95());
    EXPECT_LE(S.p95(), S.p99());
    EXPECT_GE(S.p50(), 1.0);
    EXPECT_LE(S.p99(), 1000.0);
    // p50's rank 499.5 lands in bucket [256,512): 256 values, seen 255.
    double Frac = (499.5 - 255.0) / 255.0;
    EXPECT_DOUBLE_EQ(S.p50(), 256.0 + Frac * 256.0);
  }
  {
    // The snapshot JSON carries the quantiles (the embedded BENCH path).
    obs::MetricsRegistry Reg;
    Reg.histogram("lat").observe(7);
    std::string J = Reg.snapshot().toJson();
    EXPECT_NE(J.find("\"p50\":7.00"), std::string::npos);
    EXPECT_NE(J.find("\"p95\":7.00"), std::string::npos);
    EXPECT_NE(J.find("\"p99\":7.00"), std::string::npos);
  }
}

TEST(MetricsTest, SnapshotIsNameSortedAndAbsentCountersReadZero) {
  obs::MetricsRegistry Reg;
  Reg.counter("zulu").add(1);
  Reg.counter("alpha").add(2);
  obs::MetricsSnapshot S = Reg.snapshot();
  ASSERT_EQ(S.Counters.size(), 2u);
  EXPECT_EQ(S.Counters.begin()->first, "alpha");
  EXPECT_EQ(S.counter("missing"), 0u);
  // toJson parses back as flat JSON per sub-object (smoke: it is non-empty
  // and mentions both names in sorted order).
  std::string J = S.toJson();
  EXPECT_LT(J.find("alpha"), J.find("zulu"));
}

//===----------------------------------------------------------------------===//
// Trace schema on a real rewrite (golden structure)
//===----------------------------------------------------------------------===//

namespace {

Workload smallWorkload(uint64_t Seed) {
  WorkloadConfig C;
  C.Name = "obs";
  C.Seed = Seed;
  C.NumFuncs = 16;
  C.MainIters = 2;
  return generateWorkload(C);
}

RewriteOptions tracedOptions() {
  RewriteOptions O;
  O.Patch.Spec.Kind = core::TrampolineKind::Empty;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  return O.withStrict().withTrace();
}

struct ParsedTrace {
  std::vector<std::map<std::string, obs::JsonValue>> Events;
};

ParsedTrace parseTrace(const std::vector<std::string> &Lines) {
  ParsedTrace T;
  for (const std::string &L : Lines) {
    auto Obj = obs::parseFlatObject(L);
    EXPECT_TRUE(Obj.has_value()) << "unparseable trace line: " << L;
    if (Obj.has_value())
      T.Events.push_back(std::move(*Obj));
  }
  return T;
}

} // namespace

TEST(TraceSchemaTest, EveryLineIsFlatJsonWithKnownEvent) {
  Workload W = smallWorkload(99);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);
  auto Out = rewrite(W.Image, Locs, tracedOptions());
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  ASSERT_FALSE(Out->Trace.empty());

  const std::set<std::string> KnownEvents = {
      "meta", "attempt", "site", "rescue", "shard",
      "group", "verify", "span", "summary"};
  ParsedTrace T = parseTrace(Out->Trace);
  for (auto &E : T.Events) {
    ASSERT_TRUE(E.count("ev"));
    EXPECT_TRUE(KnownEvents.count(E["ev"].Str)) << E["ev"].Str;
  }

  // Golden structure: meta first, summary last, site count consistent.
  ASSERT_GE(T.Events.size(), 3u);
  EXPECT_EQ(T.Events.front()["ev"].Str, "meta");
  EXPECT_EQ(T.Events.front()["version"].asU64(), 1u);
  EXPECT_EQ(T.Events.back()["ev"].Str, "summary");
  size_t SiteEvents = 0, AttemptEvents = 0;
  for (auto &E : T.Events) {
    if (E["ev"].Str == "site") {
      ++SiteEvents;
      EXPECT_TRUE(E["addr"].isString());
      EXPECT_EQ(E["addr"].Str.rfind("0x", 0), 0u);
      EXPECT_TRUE(E["tactic"].isString());
    } else if (E["ev"].Str == "attempt") {
      ++AttemptEvents;
      EXPECT_TRUE(E["ok"].isBool());
      // Failed attempts never carry a trampoline address.
      if (!E["ok"].B)
        EXPECT_EQ(E.count("tramp"), 0u);
    }
  }
  EXPECT_EQ(SiteEvents, T.Events.front()["sites"].asU64());
  EXPECT_EQ(SiteEvents, Locs.size());
  EXPECT_GE(AttemptEvents, SiteEvents); // At least one attempt per site.
  EXPECT_EQ(T.Events.back()["sites"].asU64(), SiteEvents);

  // Without TracePolicy::Timings, no wall-clock event may appear — that is
  // what keeps the trace deterministic.
  for (auto &E : T.Events)
    EXPECT_NE(E["ev"].Str, "span");
}

TEST(TraceSchemaTest, TimingsOptInAddsSpanEvents) {
  Workload W = smallWorkload(99);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);
  auto Out = rewrite(W.Image, Locs, tracedOptions().withTraceTimings());
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  ParsedTrace T = parseTrace(Out->Trace);
  size_t Spans = 0;
  for (auto &E : T.Events)
    if (E["ev"].Str == "span")
      ++Spans;
  EXPECT_GE(Spans, 5u); // disasm/patch/merge/group/write at minimum.
}

TEST(TraceSchemaTest, SummaryAgreesWithPatchStats) {
  Workload W = smallWorkload(321);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);
  auto Out = rewrite(W.Image, Locs, tracedOptions());
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  ParsedTrace T = parseTrace(Out->Trace);
  auto &Summary = T.Events.back();
  ASSERT_EQ(Summary["ev"].Str, "summary");
  const core::PatchStats &St = Out->Stats;
  EXPECT_EQ(Summary["sites"].asU64(), St.NLoc);
  EXPECT_EQ(Summary["b1"].asU64(), St.count(core::Tactic::B1));
  EXPECT_EQ(Summary["b2"].asU64(), St.count(core::Tactic::B2));
  EXPECT_EQ(Summary["t1"].asU64(), St.count(core::Tactic::T1));
  EXPECT_EQ(Summary["t2"].asU64(), St.count(core::Tactic::T2));
  EXPECT_EQ(Summary["t3"].asU64(), St.count(core::Tactic::T3));
  EXPECT_EQ(Summary["b0"].asU64(), St.count(core::Tactic::B0));
  EXPECT_EQ(Summary["failed"].asU64(), St.count(core::Tactic::Failed));
  EXPECT_EQ(Summary["rescued"].asU64(), St.Rescued);

  // And the metrics snapshot tells the same story through its own path.
  EXPECT_EQ(Out->Metrics.counter("sites.total"), St.NLoc);
  EXPECT_EQ(Out->Metrics.counter("tactic.b1"), St.count(core::Tactic::B1));
  EXPECT_EQ(Out->Metrics.counter("patch.rescued"), St.Rescued);
  EXPECT_GT(Out->Metrics.counter("tramp.bytes"), 0u);
  EXPECT_GT(Out->Metrics.Histograms.at("tramp.chunk_bytes").Count, 0u);
}

//===----------------------------------------------------------------------===//
// Determinism and zero perturbation
//===----------------------------------------------------------------------===//

TEST(TraceDeterminismTest, TraceAndBinaryIdenticalAcrossJobs) {
  Workload W = smallWorkload(7);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);

  RewriteOptions Opts = tracedOptions();
  Opts.Parallel.Sharding.MinSitesPerShard = 4; // Force several shards.

  auto Ref = rewrite(W.Image, Locs, Opts.withJobs(1));
  ASSERT_TRUE(Ref.isOk()) << Ref.reason();
  auto Par = rewrite(W.Image, Locs, Opts.withJobs(4));
  ASSERT_TRUE(Par.isOk()) << Par.reason();
  EXPECT_EQ(Ref->Trace, Par->Trace);
  EXPECT_EQ(elf::write(Ref->Rewritten), elf::write(Par->Rewritten));
}

TEST(TraceDeterminismTest, TracingDoesNotPerturbOutputBytes) {
  Workload W = smallWorkload(55);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);

  RewriteOptions Plain = tracedOptions().withTrace(false);
  RewriteOptions Traced = tracedOptions().withTraceTimings();
  auto A = rewrite(W.Image, Locs, Plain);
  auto B = rewrite(W.Image, Locs, Traced);
  ASSERT_TRUE(A.isOk()) << A.reason();
  ASSERT_TRUE(B.isOk()) << B.reason();
  EXPECT_TRUE(A->Trace.empty());
  EXPECT_FALSE(B->Trace.empty());
  EXPECT_EQ(elf::write(A->Rewritten), elf::write(B->Rewritten));
}

//===----------------------------------------------------------------------===//
// Degraded rewrites announce themselves in the trace
//===----------------------------------------------------------------------===//

TEST(TraceSchemaTest, DegradedEventReportsFailedSitesWithinBudget) {
  // Arm the allocator fault site: every trampoline allocation fails, so
  // every patch site ends up Failed. Within an unbounded failed-site
  // budget the rewrite still succeeds — but the trace must carry a
  // distinct "degraded" event, not just a summary count.
  FaultInjector::instance().arm("core.alloc.allocate");
  Workload W = smallWorkload(13);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);
  RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::Empty;
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.withTrace().withMaxFailedSites(SIZE_MAX);
  auto Out = rewrite(W.Image, Locs, Opts);
  FaultInjector::instance().disarm();
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  ASSERT_GT(Out->Stats.count(core::Tactic::Failed), 0u);

  ParsedTrace T = parseTrace(Out->Trace);
  size_t Degraded = 0;
  for (auto &E : T.Events)
    if (E["ev"].Str == "degraded") {
      ++Degraded;
      EXPECT_EQ(E["failed"].asU64(), Out->Stats.count(core::Tactic::Failed));
      // An unbounded budget is omitted, not serialized as SIZE_MAX.
      EXPECT_EQ(E.count("budget"), 0u);
    }
  EXPECT_EQ(Degraded, 1u);

  // With a finite (but big enough) budget, the event names the budget so
  // a trace reader can see how close the rewrite came to failing closed.
  FaultInjector::instance().arm("core.alloc.allocate");
  auto Capped = rewrite(W.Image, Locs, Opts.withMaxFailedSites(100000));
  FaultInjector::instance().disarm();
  ASSERT_TRUE(Capped.isOk()) << Capped.reason();
  bool SawBudget = false;
  for (auto &E : parseTrace(Capped->Trace).Events)
    if (E["ev"].Str == "degraded") {
      ASSERT_EQ(E.count("budget"), 1u);
      EXPECT_EQ(E["budget"].asU64(), 100000u);
      SawBudget = true;
    }
  EXPECT_TRUE(SawBudget);

  // A clean rewrite emits no degraded event at all.
  auto Clean = rewrite(W.Image, Locs, Opts);
  ASSERT_TRUE(Clean.isOk()) << Clean.reason();
  for (auto &E : parseTrace(Clean->Trace).Events)
    EXPECT_NE(E["ev"].Str, "degraded");
}
