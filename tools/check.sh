#!/bin/sh
# tools/check.sh - the full robustness gate.
#
# Runs the regular test suite, then rebuilds everything under
# ASan + UBSan (-DE9_SANITIZE=address) and re-runs the verifier mutation
# sweep, the fault-injection sweep, and the corrupt-ELF corpus in the
# sanitized build, then rebuilds under TSan (-DE9_SANITIZE=thread) and
# runs the sharded-patcher tests across thread counts. Any sanitizer
# report aborts the run (-fno-sanitize-recover=all), so a clean exit
# means: no silent memory errors on the error paths, and no data races
# in the parallel pipeline.
#
# Usage: tools/check.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "== [1/6] configure + build (default flags) =="
cmake -S "$ROOT" -B "$ROOT/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

echo "== [2/6] full test suite =="
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" \
  || ctest --test-dir "$ROOT/build" --output-on-failure --rerun-failed

echo "== [3/6] configure + build (ASan + UBSan) =="
cmake -S "$ROOT" -B "$ROOT/build-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DE9_SANITIZE=address >/dev/null
cmake --build "$ROOT/build-asan" -j "$JOBS" --target \
  verifier_test fault_injection_test elf_test core_test support_test

echo "== [4/6] robustness sweeps under ASan + UBSan =="
"$ROOT/build-asan/tests/support_test"
"$ROOT/build-asan/tests/core_test"
"$ROOT/build-asan/tests/elf_test" --gtest_filter='CorruptElf.*'
"$ROOT/build-asan/tests/verifier_test"
"$ROOT/build-asan/tests/fault_injection_test"

echo "== [5/6] configure + build (TSan) =="
cmake -S "$ROOT" -B "$ROOT/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DE9_SANITIZE=thread >/dev/null
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target parallel_test

echo "== [6/6] sharded patcher under TSan =="
"$ROOT/build-tsan/tests/parallel_test"

echo "check.sh: all gates passed"
