//===- tests/verifier_test.cpp - post-rewrite verifier ---------*- C++ -*-===//
//
// The verifier's own acceptance test: a clean rewrite verifies OK (with
// and without differential execution), and a sweep of seeded single-byte
// and single-field mutations over patched sites, trampoline blocks and
// mapping entries is caught with zero escapes — the fail-closed property.
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "support/Format.h"
#include "verify/Verifier.h"
#include "workload/Gen.h"
#include "workload/Run.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::frontend;
using namespace e9::verify;
using namespace e9::workload;

namespace {

WorkloadConfig smallConfig(uint64_t Seed) {
  WorkloadConfig C;
  C.Name = "vtest";
  C.Seed = Seed;
  C.NumFuncs = 8;
  C.MainIters = 3;
  return C;
}

RewriteOptions baseOptions() {
  RewriteOptions O;
  O.Patch.Spec.Kind = core::TrampolineKind::Empty;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  return O;
}

/// One workload rewritten once, shared by the whole mutation sweep.
struct Artifacts {
  elf::Image Original;
  RewriteOutput Out;
};

const Artifacts &artifacts() {
  static const Artifacts A = [] {
    Artifacts R;
    Workload W = generateWorkload(smallConfig(3));
    R.Original = W.Image;
    DisasmResult D = linearDisassemble(W.Image);
    auto Locs = selectJumps(D.Insns);
    auto Out = rewrite(W.Image, Locs, baseOptions());
    EXPECT_TRUE(Out.isOk()) << Out.reason();
    R.Out = Out.take();
    EXPECT_FALSE(R.Out.Jumps.empty());
    EXPECT_FALSE(R.Out.Chunks.empty());
    EXPECT_FALSE(R.Out.Rewritten.Mappings.empty());
    return R;
  }();
  return A;
}

VerifyReport verifyImage(const elf::Image &Rewritten,
                         const VerifyOptions &Opts = VerifyOptions()) {
  const Artifacts &A = artifacts();
  VerifyInput In;
  In.Original = &A.Original;
  In.Rewritten = &Rewritten;
  In.Sites = &A.Out.Sites;
  In.Jumps = &A.Out.Jumps;
  In.Chunks = &A.Out.Chunks;
  In.ModifiedRanges = &A.Out.ModifiedRanges;
  return verifyRewrite(In, Opts);
}

/// Resolves a virtual trampoline address to (block, offset) through the
/// image's mapping table — the test's own tiny resolver, so mutations can
/// target the physical byte backing a given chunk byte.
bool resolve(const elf::Image &Img, uint64_t Addr, size_t &Block,
             uint64_t &Off) {
  for (const elf::Mapping &M : Img.Mappings)
    if (Addr >= M.VAddr && Addr - M.VAddr < M.Size) {
      Block = M.BlockIndex;
      Off = M.Offset + (Addr - M.VAddr);
      return true;
    }
  return false;
}

} // namespace

TEST(Verifier, CleanRewriteVerifiesOk) {
  const Artifacts &A = artifacts();
  VerifyReport R = verifyImage(A.Out.Rewritten);
  EXPECT_TRUE(R.ok()) << R.summary();
  EXPECT_GT(R.JumpsChecked, 10u);
  EXPECT_GT(R.SitesChecked, 10u);
  EXPECT_GT(R.BytesCompared, 1000u);
  EXPECT_GT(R.MappingsChecked, 0u);
  EXPECT_GT(R.ChunkBytesChecked, 100u);
}

TEST(Verifier, CleanRewriteSurvivesDifferentialExecution) {
  const Artifacts &A = artifacts();
  VerifyOptions O;
  O.Differential = true;
  VerifyReport R = verifyImage(A.Out.Rewritten, O);
  EXPECT_TRUE(R.ok()) << R.summary();
  EXPECT_EQ(R.WorkloadsRun, 2u);
}

TEST(Verifier, MissingInputFailsClosed) {
  VerifyInput In; // no images at all
  VerifyReport R = verifyRewrite(In, VerifyOptions());
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Failures[0].Kind, FailureKind::BadInput);
}

TEST(Verifier, DifferentialCatchesBehaviouralCorruption) {
  // Clobber the first trampoline's entry bytes with int3 (no B0 table, so
  // executing them faults), but disable the static checks: only the
  // differential execution can notice — and it must.
  const Artifacts &A = artifacts();
  elf::Image Bad = A.Out.Rewritten;
  ASSERT_FALSE(Bad.Blocks.empty());
  size_t Block = 0;
  uint64_t Off = 0;
  ASSERT_TRUE(resolve(Bad, A.Out.Chunks.front().Addr, Block, Off));
  for (uint64_t I = Off; I < Off + 16 && I < Bad.Blocks[Block].Bytes.size();
       ++I)
    Bad.Blocks[Block].Bytes[I] = 0xcc;

  VerifyOptions O;
  O.CheckText = false;
  O.CheckMappings = false;
  O.Differential = true;
  VerifyReport R = verifyImage(Bad, O);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Failures[0].Kind, FailureKind::DifferentialDivergence);
  // The trace diff ran (two extra executions) and localized something.
  EXPECT_EQ(R.WorkloadsRun, 4u);
  EXPECT_NE(R.Failures[0].Message.find("diverge"), std::string::npos);
}

// --- The mutation sweep: >= 120 seeded mutations, zero escapes -------------
//
// Each index deterministically picks one mutation of the rewritten
// artifact: a patched-site byte flip, a trampoline-block byte flip, a
// mapping-table field mutation, or an unpatched-text byte flip. Every
// single one must be caught.

class MutationSweep : public ::testing::TestWithParam<int> {};

TEST_P(MutationSweep, EveryMutationIsCaught) {
  const Artifacts &A = artifacts();
  const int Idx = GetParam();
  elf::Image Bad = A.Out.Rewritten;
  std::string What;

  switch (Idx % 4) {
  case 0: {
    // Flip one byte of a patched site's encoding (pads, opcode, rel bytes
    // or punned tail). XOR 0x01 never maps a pad prefix onto another
    // valid prefix, so the mutation is always semantically visible.
    const auto &Jumps = A.Out.Jumps;
    const core::JumpRecord &J = Jumps[(Idx / 4) % Jumps.size()];
    uint64_t Addr = J.Addr + (Idx / 4 / Jumps.size()) % J.EncLen;
    uint8_t B = 0;
    ASSERT_TRUE(Bad.readBytes(Addr, &B, 1).isOk());
    B ^= 0x01;
    ASSERT_TRUE(Bad.writeBytes(Addr, &B, 1).isOk());
    What = format("site byte flip at %s", hex(Addr).c_str());
    break;
  }
  case 1: {
    // Flip the physical block byte backing one trampoline byte.
    const auto &Chunks = A.Out.Chunks;
    const core::TrampolineChunk &C = Chunks[(Idx / 4) % Chunks.size()];
    uint64_t Addr = C.Addr + (Idx / 4 / Chunks.size()) % C.Bytes.size();
    size_t Block = 0;
    uint64_t Off = 0;
    ASSERT_TRUE(resolve(Bad, Addr, Block, Off));
    ASSERT_LT(Off, Bad.Blocks[Block].Bytes.size());
    Bad.Blocks[Block].Bytes[Off] ^= 0x01;
    What = format("block byte flip backing %s", hex(Addr).c_str());
    break;
  }
  case 2: {
    // Mutate one field of one mapping-table entry.
    auto &Mappings = Bad.Mappings;
    ASSERT_FALSE(Mappings.empty());
    elf::Mapping &M = Mappings[(Idx / 4) % Mappings.size()];
    switch ((Idx / 4 / Mappings.size()) % 5) {
    case 0:
      M.VAddr += 0x1000;
      What = "mapping vaddr shifted one page";
      break;
    case 1:
      M.BlockIndex = static_cast<uint32_t>(Bad.Blocks.size());
      What = "mapping block index out of range";
      break;
    case 2:
      M.Flags &= ~elf::PF_X;
      What = "mapping made non-executable";
      break;
    case 3:
      M.Flags |= elf::PF_W;
      What = "mapping made writable";
      break;
    default:
      M.Offset += 0x1000;
      What = "mapping offset shifted one page";
      break;
    }
    break;
  }
  default: {
    // Flip a text byte the patcher never touched.
    IntervalSet Modified;
    for (const Interval &I : A.Out.ModifiedRanges)
      Modified.insert(I);
    elf::Segment *Text = Bad.textSegment();
    ASSERT_NE(Text, nullptr);
    uint64_t Addr = 0;
    uint64_t Step = 7 + (Idx / 4);
    for (uint64_t I = 0; I != Text->Bytes.size(); ++I) {
      uint64_t Cand = Text->VAddr + (I * Step) % Text->Bytes.size();
      if (!Modified.contains(Cand)) {
        Addr = Cand;
        break;
      }
    }
    ASSERT_NE(Addr, 0u);
    Text->Bytes[Addr - Text->VAddr] ^= 0x01;
    What = format("unpatched text byte flip at %s", hex(Addr).c_str());
    break;
  }
  }

  VerifyReport R = verifyImage(Bad);
  EXPECT_FALSE(R.ok()) << "mutation escaped the verifier: " << What;
}

INSTANTIATE_TEST_SUITE_P(Seeded, MutationSweep, ::testing::Range(0, 120));

TEST(Verifier, B0TableMutationsAreCaught) {
  // A force-B0 rewrite: every side-table entry mutated in turn (byte flip,
  // truncation, spurious entry) must be caught.
  Workload W = generateWorkload(smallConfig(5));
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  RewriteOptions O = baseOptions();
  O.Patch.ForceB0 = true;
  auto Out = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  ASSERT_FALSE(Out->Rewritten.B0Sites.empty());

  VerifyInput In;
  In.Original = &W.Image;
  In.Rewritten = &Out->Rewritten;
  In.Sites = &Out->Sites;
  In.Jumps = &Out->Jumps;
  In.Chunks = &Out->Chunks;
  In.ModifiedRanges = &Out->ModifiedRanges;
  ASSERT_TRUE(verifyRewrite(In, VerifyOptions()).ok());

  size_t Mutations = 0;
  for (const auto &[Addr, Bytes] : Out->Rewritten.B0Sites) {
    elf::Image Bad = Out->Rewritten;
    Bad.B0Sites[Addr][0] ^= 0x01; // no longer the original bytes
    In.Rewritten = &Bad;
    EXPECT_FALSE(verifyRewrite(In, VerifyOptions()).ok())
        << "flipped B0 entry at " << hex(Addr) << " escaped";
    ++Mutations;
    if (Mutations == 10)
      break;
  }
  EXPECT_GE(Mutations, 1u);

  elf::Image Bad = Out->Rewritten;
  Bad.B0Sites[0x1234] = {0x90}; // entry with no int3 site
  In.Rewritten = &Bad;
  EXPECT_FALSE(verifyRewrite(In, VerifyOptions()).ok());

  elf::Image Bad2 = Out->Rewritten;
  Bad2.B0Sites.erase(Bad2.B0Sites.begin()->first); // int3 with no entry
  In.Rewritten = &Bad2;
  EXPECT_FALSE(verifyRewrite(In, VerifyOptions()).ok());
}

TEST(Verifier, ReportTruncatesAtMaxFailures) {
  const Artifacts &A = artifacts();
  elf::Image Bad = A.Out.Rewritten;
  // Zero out a whole block: many chunk bytes go wrong at once.
  ASSERT_FALSE(Bad.Blocks.empty());
  std::fill(Bad.Blocks[0].Bytes.begin(), Bad.Blocks[0].Bytes.end(), 0);
  VerifyOptions O;
  O.MaxFailures = 5;
  VerifyReport R = verifyImage(Bad, O);
  ASSERT_FALSE(R.ok());
  EXPECT_LE(R.Failures.size(), 5u);
  EXPECT_TRUE(R.Truncated);
  EXPECT_NE(R.summary().find("truncated"), std::string::npos);
}

// --- StrictMode end-to-end --------------------------------------------------

class StrictSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrictSeeds, StrictRewriteVerifiesAndRunsIdentically) {
  Workload W = generateWorkload(smallConfig(GetParam()));
  RunOutcome Ref = runImage(W.Image);
  ASSERT_TRUE(Ref.ok()) << Ref.Result.Error;

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  RewriteOptions O = baseOptions();
  O.Verify.Strict = true;
  O.Verify.Opts.Differential = true;
  auto Out = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  EXPECT_TRUE(Out->Verify.ok()) << Out->Verify.summary();
  EXPECT_GE(Out->Verify.WorkloadsRun, 2u);

  RunOutcome Got = runImage(Out->Rewritten);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrictSeeds,
                         ::testing::Values(1, 2, 3, 5, 11, 17));

TEST(StrictMode, FailedSiteBudgetFailsClosed) {
  // With every tactic disabled and no B0 fallback some sites must fail;
  // a zero budget then refuses to emit the partially-patched binary, and
  // the error names addresses and reasons.
  Workload W = generateWorkload(smallConfig(3));
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  RewriteOptions O = baseOptions();
  O.Patch.EnableT1 = O.Patch.EnableT2 = O.Patch.EnableT3 = false;

  auto Unbudgeted = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Unbudgeted.isOk());
  size_t NFailed = Unbudgeted->Stats.count(core::Tactic::Failed);
  ASSERT_GT(NFailed, 0u) << "expected some failures with tactics disabled";
  // Every failed site carries a structured reason, and the stats bucket
  // counts agree.
  size_t Reasons = 0;
  for (const core::PatchSiteResult &S : Unbudgeted->Sites)
    if (S.Used == core::Tactic::Failed) {
      EXPECT_NE(S.Reason, core::FailureReason::None)
          << "failed site without a reason at " << hex(S.Addr);
      ++Reasons;
    }
  EXPECT_EQ(Reasons, NFailed);
  size_t Sum = 0;
  for (size_t I = 1; I != 7; ++I)
    Sum += Unbudgeted->Stats.ReasonCount[I];
  EXPECT_EQ(Sum, NFailed);

  O.Verify.MaxFailedSites = 0;
  auto Budgeted = rewrite(W.Image, Locs, O);
  ASSERT_FALSE(Budgeted.isOk());
  EXPECT_NE(Budgeted.reason().find("failed-site budget"), std::string::npos);
  EXPECT_NE(Budgeted.reason().find("0x"), std::string::npos);

  // A budget at exactly the failure count passes.
  O.Verify.MaxFailedSites = NFailed;
  EXPECT_TRUE(rewrite(W.Image, Locs, O).isOk());
}

TEST(StrictMode, B0FallbackGuaranteesFullCoverage) {
  // Graceful degradation: with the B0 fallback enabled no site can fail,
  // so even a zero failed-site budget passes — and the result still runs
  // identically.
  Workload W = generateWorkload(smallConfig(3));
  RunOutcome Ref = runImage(W.Image);
  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  RewriteOptions O = baseOptions();
  O.Patch.EnableT1 = O.Patch.EnableT2 = O.Patch.EnableT3 = false;
  O.Patch.B0Fallback = true;
  O.Verify.MaxFailedSites = 0;
  O.Verify.Strict = true;
  auto Out = rewrite(W.Image, Locs, O);
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  EXPECT_EQ(Out->Stats.count(core::Tactic::Failed), 0u);
  EXPECT_GT(Out->Stats.count(core::Tactic::B0), 0u);

  RunConfig RC;
  RC.B0Table = Out->B0Table;
  RunOutcome Got = runImage(Out->Rewritten, RC);
  ASSERT_TRUE(Got.ok()) << Got.Result.Error;
  EXPECT_EQ(Got.Rax, Ref.Rax);
  EXPECT_EQ(Got.DataChecksum, Ref.DataChecksum);
}
