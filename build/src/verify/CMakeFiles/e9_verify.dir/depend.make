# Empty dependencies file for e9_verify.
# This may be replaced when dependencies are built.
