# Empty dependencies file for e9_lowfat.
# This may be replaced when dependencies are built.
