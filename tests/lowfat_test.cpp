//===- tests/lowfat_test.cpp - low-fat heap runtime tests -----*- C++ -*-===//

#include "lowfat/LowFat.h"

#include "vm/Hooks.h"
#include "x86/Assembler.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::lowfat;
using namespace e9::vm;

namespace {

Vm makeVm() { return Vm(); }

} // namespace

TEST(LowFatHeap, AllocationReturnsAfterRedzone) {
  Vm V = makeVm();
  LowFatHeap H;
  auto P = H.alloc(V, 24);
  ASSERT_TRUE(P.isOk());
  // Smallest class is 32; object data starts at slot + 16.
  EXPECT_EQ((*P - HeapRegionStart) % 32, RedzoneSize);
  EXPECT_TRUE(H.isHeapPtr(*P));
}

TEST(LowFatHeap, SizeClassSelection) {
  Vm V = makeVm();
  LowFatHeap H;
  // Size + redzone must fit the slot: 16 bytes -> 32-class; 17 -> 64-class
  // (17+16=33 > 32); 48 -> 64-class.
  auto P16 = H.alloc(V, 16);
  auto P17 = H.alloc(V, 17);
  auto P48 = H.alloc(V, 48);
  ASSERT_TRUE(P16.isOk());
  ASSERT_TRUE(P17.isOk());
  ASSERT_TRUE(P48.isOk());
  auto ClassOf = [](uint64_t P) {
    return (P - HeapRegionStart) / RegionSize;
  };
  EXPECT_EQ(ClassOf(*P16), 0u); // 32-byte class
  EXPECT_EQ(ClassOf(*P17), 1u); // 64-byte class
  EXPECT_EQ(ClassOf(*P48), 1u);
}

TEST(LowFatHeap, BaseComputableFromPointerAlone) {
  Vm V = makeVm();
  LowFatHeap H;
  auto P = H.alloc(V, 100); // 100+16=116 -> 128-byte slots (class 2)
  ASSERT_TRUE(P.isOk());
  uint64_t SlotBase = *P - RedzoneSize;
  // base() recovers the slot base from any interior pointer.
  for (uint64_t Off : {0ull, 1ull, 50ull, 99ull})
    EXPECT_EQ(H.base(*P + Off), SlotBase) << "offset " << Off;
}

TEST(LowFatHeap, RedzoneBoundaryProbes) {
  Vm V = makeVm();
  LowFatHeap H;
  H.AbortOnViolation = true;
  auto P = H.alloc(V, 48); // 64-byte slots
  ASSERT_TRUE(P.isOk());
  uint64_t SlotBase = *P - RedzoneSize;

  // Writes at the object itself pass.
  EXPECT_TRUE(H.check(*P).isOk());
  EXPECT_TRUE(H.check(*P + 47).isOk());
  // The slot's own redzone (underflow) is rejected.
  EXPECT_FALSE(H.check(SlotBase).isOk());
  EXPECT_FALSE(H.check(SlotBase + RedzoneSize - 1).isOk());
  EXPECT_TRUE(H.check(SlotBase + RedzoneSize).isOk());
  // One past the slot end is the *next* slot's redzone (overflow case).
  EXPECT_FALSE(H.check(SlotBase + 64).isOk());
  EXPECT_FALSE(H.check(SlotBase + 64 + 15).isOk());
  EXPECT_TRUE(H.check(SlotBase + 64 + 16).isOk());
  EXPECT_EQ(H.violations(), 4u);
}

TEST(LowFatHeap, NonHeapPointersPass) {
  LowFatHeap H;
  EXPECT_TRUE(H.check(0x401000).isOk());       // text
  EXPECT_TRUE(H.check(0x7ffffffff000).isOk()); // stack
  EXPECT_TRUE(H.check(0).isOk());              // null (not a heap write)
  EXPECT_EQ(H.base(0x401000), 0x401000u);      // identity outside regions
  EXPECT_EQ(H.violations(), 0u);
}

TEST(LowFatHeap, CountOnlyPolicy) {
  Vm V = makeVm();
  LowFatHeap H;
  H.AbortOnViolation = false;
  auto P = H.alloc(V, 16);
  ASSERT_TRUE(P.isOk());
  EXPECT_TRUE(H.check(*P - 1).isOk()) << "count-only must not fail";
  EXPECT_EQ(H.violations(), 1u);
}

TEST(LowFatHeap, SlotsAreNotRecycled) {
  Vm V = makeVm();
  LowFatHeap H;
  auto P1 = H.alloc(V, 16);
  ASSERT_TRUE(P1.isOk());
  ASSERT_TRUE(H.free(V, *P1).isOk());
  auto P2 = H.alloc(V, 16);
  ASSERT_TRUE(P2.isOk());
  EXPECT_NE(*P1, *P2) << "quarantine-forever policy";
}

TEST(LowFatHeap, OversizeAllocationFails) {
  Vm V = makeVm();
  LowFatHeap H;
  EXPECT_FALSE(H.alloc(V, (1ull << MaxClassLog)).isOk());
}

TEST(LowFatHeap, MemoryIsMappedAndZeroed) {
  Vm V = makeVm();
  LowFatHeap H;
  auto P = H.alloc(V, 4096 * 2);
  ASSERT_TRUE(P.isOk());
  uint64_t Val = 1;
  ASSERT_TRUE(V.Mem.read64(*P, Val).isOk());
  EXPECT_EQ(Val, 0u);
  ASSERT_TRUE(V.Mem.write64(*P + 4096, 42).isOk());
}

TEST(PlainHeap, BumpBehaviour) {
  Vm V = makeVm();
  PlainHeap H;
  auto P1 = H.alloc(V, 10);
  auto P2 = H.alloc(V, 10);
  ASSERT_TRUE(P1.isOk());
  ASSERT_TRUE(P2.isOk());
  EXPECT_EQ(*P2 - *P1, 16u); // 16-aligned bump
  EXPECT_TRUE(H.free(V, *P1).isOk());
  EXPECT_EQ(H.allocatedBytes(), 32u);
}

// --- Hooks through the VM -------------------------------------------------

namespace {

/// Guest program: rax = malloc(rdi); write/read through it; free; return
/// the read-back value.
std::vector<uint8_t> heapProgram(uint64_t MallocHook, uint64_t FreeHook) {
  using namespace e9::x86;
  Assembler A(0x401000);
  A.movRegImm32(Reg::RDI, 64);
  A.callAbsViaRax(MallocHook);
  A.movRegReg(OpSize::B64, Reg::RBX, Reg::RAX);
  A.movMemImm(OpSize::B32, Mem::base(Reg::RBX, 8), 77);
  A.movRegReg(OpSize::B64, Reg::RDI, Reg::RBX);
  A.callAbsViaRax(FreeHook);
  A.movRegMem(OpSize::B32, Reg::RAX, Mem::base(Reg::RBX, 8));
  A.ret();
  EXPECT_TRUE(A.resolveAll());
  return A.take();
}

} // namespace

class HeapHooks : public ::testing::TestWithParam<bool> {};

TEST_P(HeapHooks, MallocWriteReadFree) {
  bool UseLowFat = GetParam();
  Vm V;
  PlainHeap Plain;
  LowFatHeap Fat;
  if (UseLowFat)
    installLowFatHeap(V, Fat);
  else
    installPlainHeap(V, Plain);

  auto Code = heapProgram(HookMalloc, HookFree);
  ASSERT_TRUE(V.Mem.mapZero(0x401000, 0x1000, PermR | PermW | PermX).isOk());
  ASSERT_TRUE(V.Mem.write(0x401000, Code.data(), Code.size()).isOk());
  ASSERT_TRUE(V.Mem.mapZero(0x7ffe0000, 0x10000, PermR | PermW).isOk());
  V.Core.rsp() = 0x7ffe0000u + 0x10000 - 64;
  ASSERT_TRUE(V.push64(ExitAddress).isOk());
  V.Core.Rip = 0x401000;

  auto R = V.run(10000);
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(V.Core.Gpr[0] & 0xffffffff, 77u);
}

INSTANTIATE_TEST_SUITE_P(Heaps, HeapHooks, ::testing::Bool());

TEST(HeapHooks, CallocZeroesAndMultiplies) {
  Vm V;
  LowFatHeap Fat;
  installLowFatHeap(V, Fat);
  using namespace e9::x86;
  Assembler A(0x401000);
  A.movRegImm32(Reg::RDI, 8);
  A.movRegImm32(Reg::RSI, 4);
  A.callAbsViaRax(HookCalloc);
  A.movRegMem(OpSize::B64, Reg::RAX, Mem::base(Reg::RAX, 24));
  A.ret();
  ASSERT_TRUE(A.resolveAll());
  auto Code = A.take();
  ASSERT_TRUE(V.Mem.mapZero(0x401000, 0x1000, PermR | PermW | PermX).isOk());
  ASSERT_TRUE(V.Mem.write(0x401000, Code.data(), Code.size()).isOk());
  ASSERT_TRUE(V.Mem.mapZero(0x7ffe0000, 0x10000, PermR | PermW).isOk());
  V.Core.rsp() = 0x7ffe0000u + 0x10000 - 64;
  ASSERT_TRUE(V.push64(ExitAddress).isOk());
  V.Core.Rip = 0x401000;
  auto R = V.run(10000);
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(V.Core.Gpr[0], 0u);
  EXPECT_EQ(Fat.allocations(), 1u);
}
