file(REMOVE_RECURSE
  "CMakeFiles/e9_obs.dir/JsonWriter.cpp.o"
  "CMakeFiles/e9_obs.dir/JsonWriter.cpp.o.d"
  "CMakeFiles/e9_obs.dir/Metrics.cpp.o"
  "CMakeFiles/e9_obs.dir/Metrics.cpp.o.d"
  "CMakeFiles/e9_obs.dir/Trace.cpp.o"
  "CMakeFiles/e9_obs.dir/Trace.cpp.o.d"
  "libe9_obs.a"
  "libe9_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
