//===- core/Grouping.h - Physical page grouping ----------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physical page grouping (paper §4): trampolines are scattered across
/// sparsely-used virtual pages; grouping merges blocks of M consecutive
/// pages whose trampoline occupancy is disjoint (relative to the block
/// base) into one shared physical block that is mapped at every member's
/// virtual address. This cuts physical memory and file size by up to
/// orders of magnitude, at the price of more (non-coalescable) mappings;
/// M trades mapping count against physical bytes.
///
//===----------------------------------------------------------------------===//

#ifndef E9_CORE_GROUPING_H
#define E9_CORE_GROUPING_H

#include "core/Patcher.h"
#include "elf/Image.h"

#include <cstdint>
#include <vector>

namespace e9 {
namespace core {

/// Linux default vm.max_map_count; grouping output is compared against it.
inline constexpr size_t DefaultMaxMapCount = 65536;

struct GroupingOptions {
  bool Enabled = true; ///< false = naive one-to-one physical backing.
  unsigned M = 1;      ///< Block granularity in pages (1 = most aggressive).
};

struct GroupingResult {
  std::vector<elf::PhysBlock> Blocks;
  std::vector<elf::Mapping> Mappings;
  uint64_t PhysBytes = 0;     ///< Physical bytes emitted (RAM/file cost).
  size_t VirtualBlocks = 0;   ///< Occupied virtual blocks before merging.
  size_t MappingCount = 0;    ///< Mappings after coalescing.
  size_t RawMappings = 0;     ///< Mappings before coalescing (merge-ratio
                              ///< metric: RawMappings / MappingCount).
};

/// Partitions the trampoline chunks into shared physical blocks. Fails
/// (instead of asserting) when two trampoline chunks claim the same byte
/// — emitting a binary from conflicting occupancy would silently corrupt
/// it, so the error must surface to the caller.
Result<GroupingResult> groupPages(const std::vector<TrampolineChunk> &Chunks,
                                  const GroupingOptions &Opts);

} // namespace core
} // namespace e9

#endif // E9_CORE_GROUPING_H
