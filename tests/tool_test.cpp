//===- tests/tool_test.cpp - e9tool CLI end-to-end ------------*- C++ -*-===//
//
// Drives the e9tool binary through its full gen -> info -> disasm ->
// rewrite -> run pipeline on real files, exactly as a user would.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef E9TOOL_PATH
#define E9TOOL_PATH "e9tool"
#endif

std::string tmpPath(const char *Name) {
  return ::testing::TempDir() + "/" + Name;
}

/// Runs e9tool with \p Args, capturing stdout; returns the exit code.
int runTool(const std::string &Args, std::string &Output) {
  std::string OutFile = tmpPath("e9tool_out.txt");
  std::string Cmd =
      std::string(E9TOOL_PATH) + " " + Args + " > " + OutFile + " 2>&1";
  int Rc = std::system(Cmd.c_str());
  std::ifstream In(OutFile);
  Output.assign(std::istreambuf_iterator<char>(In),
                std::istreambuf_iterator<char>());
  return Rc;
}

} // namespace

TEST(Tool, FullPipeline) {
  std::string Bin = tmpPath("tool_demo.elf");
  std::string Patched = tmpPath("tool_demo.patched");
  std::string Out;

  ASSERT_EQ(runTool("gen " + Bin + " --seed=9 --funcs=8", Out), 0) << Out;
  EXPECT_NE(Out.find("wrote"), std::string::npos);

  ASSERT_EQ(runTool("info " + Bin, Out), 0) << Out;
  EXPECT_NE(Out.find("segment text"), std::string::npos);

  ASSERT_EQ(runTool("disasm " + Bin + " --limit=5", Out), 0) << Out;
  EXPECT_NE(Out.find("push %rbp"), std::string::npos);

  ASSERT_EQ(runTool("rewrite " + Bin + " " + Patched + " --select=jumps",
                    Out),
            0)
      << Out;
  EXPECT_NE(Out.find("100.00% success"), std::string::npos) << Out;

  ASSERT_EQ(runTool("info " + Patched, Out), 0) << Out;
  EXPECT_NE(Out.find("rewritten:"), std::string::npos);

  std::string RunOrig, RunPatched;
  ASSERT_EQ(runTool("run " + Bin, RunOrig), 0) << RunOrig;
  ASSERT_EQ(runTool("run " + Patched, RunPatched), 0) << RunPatched;
  // Same observable result line ("result rax = ...").
  auto ResultLine = [](const std::string &S) {
    size_t P = S.find("result rax = ");
    size_t E = S.find(',', P);
    return S.substr(P, E - P);
  };
  EXPECT_EQ(ResultLine(RunOrig), ResultLine(RunPatched));
}

TEST(Tool, ForceB0RoundTrip) {
  std::string Bin = tmpPath("tool_b0.elf");
  std::string Patched = tmpPath("tool_b0.patched");
  std::string Out;
  ASSERT_EQ(runTool("gen " + Bin + " --seed=10 --funcs=6", Out), 0);
  ASSERT_EQ(runTool("rewrite " + Bin + " " + Patched +
                        " --select=heapwrites --force-b0",
                    Out),
            0)
      << Out;
  EXPECT_NE(Out.find("B0"), std::string::npos);
  // The B0 side table travels inside the file; run must succeed.
  ASSERT_EQ(runTool("run " + Patched, Out), 0) << Out;
  EXPECT_NE(Out.find("finished"), std::string::npos);
}

TEST(Tool, LowFatHardeningCatchesBug) {
  std::string Bin = tmpPath("tool_bug.elf");
  std::string Patched = tmpPath("tool_bug.patched");
  std::string Out;
  ASSERT_EQ(runTool("gen " + Bin + " --seed=11 --funcs=6 --bug", Out), 0);
  // Unhardened: finishes despite the overflow.
  ASSERT_EQ(runTool("run " + Bin, Out), 0) << Out;
  // Hardened + lowfat heap: the overflow faults.
  ASSERT_EQ(runTool("rewrite " + Bin + " " + Patched +
                        " --select=heapwrites --tramp=lowfat",
                    Out),
            0)
      << Out;
  EXPECT_NE(runTool("run " + Patched + " --lowfat", Out), 0);
  EXPECT_NE(Out.find("redzone"), std::string::npos) << Out;
}

TEST(Tool, BadInputsFailGracefully) {
  std::string Out;
  EXPECT_NE(runTool("info /nonexistent.elf", Out), 0);
  EXPECT_NE(runTool("frobnicate", Out), 0);
  EXPECT_NE(runTool("rewrite", Out), 0);
  std::string NotElf = tmpPath("notelf.bin");
  {
    std::ofstream F(NotElf);
    F << "hello";
  }
  EXPECT_NE(runTool("disasm " + NotElf, Out), 0);
}
