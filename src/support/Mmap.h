//===- support/Mmap.h - RAII memory-mapped file I/O ------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wrappers for memory-mapped file I/O, used by the ELF reader and
/// writer to avoid staging whole binaries through intermediate buffers:
/// the reader parses straight out of a read-only mapping, and the writer
/// serializes straight into a freshly ftruncate()d read-write mapping.
///
/// On platforms without mmap (or when mapping fails — e.g. a pipe or an
/// empty file) the open functions return an invalid object and callers
/// fall back to stream I/O; no code path *requires* mmap to work.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_MMAP_H
#define E9_SUPPORT_MMAP_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace e9 {
namespace support {

/// A read-only memory-mapped view of an existing file.
class MappedFile {
public:
  MappedFile() = default;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  MappedFile(MappedFile &&O) noexcept { *this = std::move(O); }
  MappedFile &operator=(MappedFile &&O) noexcept;
  ~MappedFile();

  /// Maps \p Path read-only. Returns an invalid object on any failure
  /// (missing file, zero length, mmap unsupported).
  static MappedFile openRead(const std::string &Path);

  bool valid() const { return Addr != nullptr; }
  const uint8_t *data() const { return static_cast<const uint8_t *>(Addr); }
  size_t size() const { return Len; }

private:
  void *Addr = nullptr;
  size_t Len = 0;
};

/// A read-write mapping of a newly created file of a known size: the
/// zero-copy emission target. commit() must be called for the contents to
/// be considered written; destruction without commit() best-effort unlinks
/// the partial file so failures never leave a truncated binary behind.
class MappedOutputFile {
public:
  MappedOutputFile() = default;
  MappedOutputFile(const MappedOutputFile &) = delete;
  MappedOutputFile &operator=(const MappedOutputFile &) = delete;
  MappedOutputFile(MappedOutputFile &&O) noexcept { *this = std::move(O); }
  MappedOutputFile &operator=(MappedOutputFile &&O) noexcept;
  ~MappedOutputFile();

  /// Creates/truncates \p Path at exactly \p Size bytes and maps it
  /// read-write. Returns an invalid object on failure (caller falls back
  /// to buffered writing).
  static MappedOutputFile create(const std::string &Path, size_t Size);

  bool valid() const { return Addr != nullptr; }
  uint8_t *data() { return static_cast<uint8_t *>(Addr); }
  size_t size() const { return Len; }

  /// Unmaps and closes, keeping the file. Returns false if the final
  /// sync/close reported an I/O error.
  bool commit();

private:
  void *Addr = nullptr;
  size_t Len = 0;
  int Fd = -1;
  std::string Path;
  bool Committed = false;
};

} // namespace support
} // namespace e9

#endif // E9_SUPPORT_MMAP_H
