# Empty dependencies file for objdump_diff_test.
# This may be replaced when dependencies are built.
