//===- api/Net.h - Socket transport for the patch-request API --*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-contained socket plumbing for `e9tool serve` — no external
/// dependencies, just POSIX sockets behind RAII (support/Fd.h):
///
///   Listener    a bound+listening Unix-domain or TCP-loopback socket;
///               owns the fd and (for Unix) unlinks the path on close.
///   Connection  one accepted client: a line-splitting reader with poll
///               timeouts, and a bounded write queue for backpressure —
///               responses buffer up to a byte limit, then the writer
///               blocks (with a deadline) until the client drains. A
///               slow reader therefore stalls only its own session
///               thread; past the deadline the session fails closed.
///
/// TCP intentionally binds 127.0.0.1 only: the protocol carries file
/// paths and has no authentication, so the network story is "local
/// services and port-forwarding", not the open internet.
///
//===----------------------------------------------------------------------===//

#ifndef E9_API_NET_H
#define E9_API_NET_H

#include "support/Fd.h"
#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace e9 {
namespace api {

/// A listening socket (move-only). For Unix-domain listeners the bound
/// path is unlinked on destruction, so a served socket never leaves a
/// stale node behind.
class Listener {
public:
  /// Binds and listens on a Unix-domain socket at \p Path. An existing
  /// socket node at the path is an error (fail closed — never steal a
  /// live server's socket); remove stale nodes explicitly.
  static Result<Listener> unixSocket(const std::string &Path);

  /// Binds and listens on 127.0.0.1:\p Port (0 = ephemeral; query the
  /// actual port with port()).
  static Result<Listener> tcpLoopback(uint16_t Port);

  Listener(Listener &&) = default;
  Listener &operator=(Listener &&) = default;
  ~Listener();

  int fd() const { return Sock.get(); }
  bool valid() const { return Sock.valid(); }
  /// The bound TCP port (0 for Unix listeners).
  uint16_t port() const { return Port; }
  /// The bound Unix path ("" for TCP listeners).
  const std::string &path() const { return Path; }

  /// Accepts one ready connection (call after the listener fd polled
  /// readable). Returns an invalid Fd for transient conditions (client
  /// vanished between poll and accept).
  support::Fd acceptOne();

  /// Closes the listener now: new connects are refused from this point
  /// on (the graceful-shutdown "reject new sessions" edge).
  void close();

private:
  Listener() = default;

  support::Fd Sock;
  std::string Path; // Unix only; unlinked on close
  uint16_t Port = 0;
};

/// One accepted client connection: framed line reads + bounded writes.
class Connection {
public:
  /// \p WriteQueueLimit bounds the bytes buffered before a flush is
  /// forced; \p WriteTimeoutMs bounds how long one flush may block on
  /// an undraining client before the connection fails closed.
  Connection(support::Fd Sock, size_t WriteQueueLimit,
             int WriteTimeoutMs);

  enum class ReadResult { Line, Timeout, Eof, Error };

  /// Reads the next '\n'-terminated line (CR stripped) into \p Out,
  /// waiting at most \p TimeoutMs for more bytes. Timeout means "no
  /// complete line yet" — the caller re-checks its stop conditions and
  /// calls again. Lines longer than maxLineBytes() fail the connection
  /// (Error) — unframed garbage must not grow the buffer unboundedly.
  ReadResult readLine(std::string &Out, int TimeoutMs);

  /// Queues one response line (adds the '\n'). Flushes synchronously
  /// once the queue exceeds its byte limit; a client that does not
  /// drain within the write timeout fails the connection.
  Status writeLine(std::string_view Line);

  /// Writes out everything still queued.
  Status flush();

  /// Half-closes the read side: a drain deadline pulls the plug on
  /// clients that keep a job open past shutdown.
  void shutdownRead();

  bool eofSeen() const { return Eof && Buffer.empty(); }
  uint64_t bytesIn() const { return BytesIn; }
  uint64_t bytesOut() const { return BytesOut; }

  static constexpr size_t maxLineBytes() { return 1 << 20; }

private:
  /// Drains the queue into the socket. Non-blocking pumps stop when the
  /// socket stops accepting; blocking pumps wait up to the write
  /// timeout and fail the connection past it.
  Status pump(bool Block);

  support::Fd Sock;
  std::string Buffer;   // unconsumed input
  size_t Scanned = 0;   // prefix of Buffer already searched for '\n'
  std::string Queue;    // unflushed output
  size_t QueueLimit;
  int WriteTimeoutMs;
  bool Eof = false;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
};

} // namespace api
} // namespace e9

#endif // E9_API_NET_H
