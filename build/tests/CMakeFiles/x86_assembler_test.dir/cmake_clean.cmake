file(REMOVE_RECURSE
  "CMakeFiles/x86_assembler_test.dir/x86_assembler_test.cpp.o"
  "CMakeFiles/x86_assembler_test.dir/x86_assembler_test.cpp.o.d"
  "x86_assembler_test"
  "x86_assembler_test.pdb"
  "x86_assembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
