//===- verify/Verifier.cpp ------------------------------------*- C++ -*-===//

#include "verify/Verifier.h"

#include "lowfat/LowFat.h"
#include "support/Format.h"
#include "vm/Loader.h"
#include "vm/Vm.h"
#include "x86/Decoder.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

using namespace e9;
using namespace e9::verify;

const char *verify::failureKindName(FailureKind K) {
  static const char *const Names[] = {
      "bad-input",          "segment-shape",     "unpatched-byte-changed",
      "unaccounted-write",  "site-bad-decode",   "site-bad-target",
      "site-missing-record", "mapping-invalid",  "mapping-conflict",
      "trampoline-bytes-wrong", "stray-block-byte", "b0-table-mismatch",
      "differential-divergence"};
  return Names[static_cast<size_t>(K)];
}

std::string VerifyReport::summary(size_t MaxListed) const {
  if (ok())
    return format("verification OK: %zu jumps, %zu sites, %llu bytes, "
                  "%zu mappings, %llu trampoline bytes, %zu runs checked",
                  JumpsChecked, SitesChecked,
                  static_cast<unsigned long long>(BytesCompared),
                  MappingsChecked,
                  static_cast<unsigned long long>(ChunkBytesChecked),
                  WorkloadsRun);
  std::string S = format("verification FAILED with %zu failure(s)%s:",
                         Failures.size(), Truncated ? " (truncated)" : "");
  for (size_t I = 0; I != Failures.size() && I != MaxListed; ++I) {
    const VerifyFailure &F = Failures[I];
    S += format("\n  [%s] %s: %s", failureKindName(F.Kind),
                hex(F.Addr).c_str(), F.Message.c_str());
  }
  if (Failures.size() > MaxListed)
    S += format("\n  ... and %zu more", Failures.size() - MaxListed);
  return S;
}

namespace {

constexpr uint64_t PageSize = 4096;

uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }

/// Architectural outcome of one VM execution.
struct ExecState {
  vm::RunResult R;
  std::array<uint64_t, 16> Gpr{};
  uint64_t Checksum = 0;
  uint64_t Violations = 0;
};

/// Local B0 trap handler (mirrors frontend::installB0Handler; duplicated
/// so the verifier stays below the frontend in the layering).
void installB0(vm::Vm &V,
               const std::map<uint64_t, std::vector<uint8_t>> &Table) {
  V.setTrapHandler([&Table](vm::Vm &Vm, uint64_t Addr) -> Status {
    auto It = Table.find(Addr);
    if (It == Table.end())
      return Status::error(
          format("int3 at %s has no B0 side-table entry", hex(Addr).c_str()));
    x86::Insn I;
    if (x86::decode(It->second.data(), It->second.size(), Addr, I) !=
        x86::DecodeStatus::Ok)
      return Status::error("corrupt B0 side-table entry");
    vm::Vm::ExecKind Kind;
    if (Status S = Vm.execInsn(I, It->second.data(), Kind); !S)
      return S;
    if (Kind != vm::Vm::ExecKind::Ok)
      return Status::error("B0 site may not halt/abort");
    return Status::ok();
  });
}

/// FNV-1a over the writable data segments as seen by the VM, skipping
/// untouched demand-zero pages and instrumentation-owned segments (the
/// counter segment is written only by the rewritten run by design).
uint64_t dataChecksum(vm::Vm &V, const elf::Image &Img) {
  uint64_t H = 1469598103934665603ULL;
  for (const elf::Segment &S : Img.Segments) {
    if (!(S.Flags & elf::PF_W) || S.Name == "counters")
      continue;
    std::vector<uint8_t> Buf(PageSize);
    for (uint64_t Off = 0; Off < S.MemSize; Off += Buf.size()) {
      size_t N = static_cast<size_t>(
          std::min<uint64_t>(Buf.size(), S.MemSize - Off));
      if (V.Mem.isDemandZero(S.VAddr + Off))
        continue;
      if (!V.Mem.read(S.VAddr + Off, Buf.data(), N))
        break;
      for (size_t I = 0; I != N; ++I) {
        H ^= Buf[I];
        H *= 1099511628211ULL;
      }
    }
  }
  return H;
}

ExecState execImage(const elf::Image &Img, const VerifyOptions &Opts,
                    const std::unordered_set<uint64_t> *Filter,
                    std::vector<uint64_t> *Trace) {
  ExecState Out;
  vm::Vm V;
  lowfat::PlainHeap Plain;
  lowfat::LowFatHeap LowFat;
  if (Opts.UseLowFatHeap) {
    // Count violations instead of aborting so both runs complete and the
    // counters themselves can be compared.
    LowFat.AbortOnViolation = false;
    lowfat::installLowFatHeap(V, LowFat);
  } else {
    lowfat::installPlainHeap(V, Plain);
  }
  if (!Img.B0Sites.empty())
    installB0(V, Img.B0Sites);
  if (Trace)
    V.OnStep = [&](uint64_t Rip) {
      if (Trace->size() < Opts.MaxTraceSteps &&
          (!Filter || Filter->count(Rip)))
        Trace->push_back(Rip);
    };

  auto Loaded = vm::load(V, Img);
  if (!Loaded.isOk()) {
    Out.R.Kind = vm::RunResult::Exit::Fault;
    Out.R.Error = Loaded.reason();
    return Out;
  }
  Out.R = V.run(Opts.MaxInsns);
  Out.Gpr = V.Core.Gpr;
  Out.Violations = LowFat.violations();
  Out.Checksum = dataChecksum(V, Img);
  return Out;
}

class Checker {
public:
  Checker(const VerifyInput &In, const VerifyOptions &Opts)
      : In(In), Opts(Opts) {}

  VerifyReport run() {
    if (!In.Original || !In.Rewritten) {
      fail(FailureKind::BadInput, 0,
           "verifier needs both the original and the rewritten image");
      return std::move(Report);
    }
    checkShape();
    if (Opts.CheckText && !Report.Truncated) {
      checkBytes();
      checkSites();
      checkB0();
    }
    if (Opts.CheckMappings && !Report.Truncated)
      checkMappings();
    if (Opts.Differential && !Report.Truncated)
      checkDifferential();
    return std::move(Report);
  }

private:
  const VerifyInput &In;
  const VerifyOptions &Opts;
  VerifyReport Report;

  bool fail(FailureKind K, uint64_t Addr, std::string Msg) {
    if (Report.Failures.size() >= Opts.MaxFailures) {
      Report.Truncated = true;
      return false;
    }
    obs::Tracer(In.Trace).verifyFinding(failureKindName(K), Addr, Msg);
    Report.Failures.push_back(VerifyFailure{K, Addr, std::move(Msg)});
    return true;
  }

  // --- 0. Image shape ---------------------------------------------------

  void checkShape() {
    const elf::Image &O = *In.Original, &R = *In.Rewritten;
    if (O.Entry != R.Entry)
      fail(FailureKind::SegmentShape, R.Entry,
           format("entry point changed from %s", hex(O.Entry).c_str()));
    if (O.Pie != R.Pie)
      fail(FailureKind::SegmentShape, 0, "PIE-ness changed");
    if (O.Segments.size() != R.Segments.size()) {
      fail(FailureKind::SegmentShape, 0,
           format("segment count changed: %zu -> %zu", O.Segments.size(),
                  R.Segments.size()));
      return;
    }
    for (size_t I = 0; I != O.Segments.size(); ++I) {
      const elf::Segment &A = O.Segments[I], &B = R.Segments[I];
      if (A.VAddr != B.VAddr || A.MemSize != B.MemSize ||
          A.Flags != B.Flags || A.Bytes.size() != B.Bytes.size())
        fail(FailureKind::SegmentShape, B.VAddr,
             format("segment %zu layout changed (vaddr/size/flags)", I));
    }
  }

  // --- 1+2. Byte-exactness outside the recorded writes ------------------

  void checkBytes() {
    const elf::Image &O = *In.Original, &R = *In.Rewritten;

    IntervalSet Modified;
    if (In.ModifiedRanges)
      for (const Interval &I : *In.ModifiedRanges)
        Modified.insert(I);

    IntervalSet Written;
    if (In.Jumps)
      for (const core::JumpRecord &J : *In.Jumps)
        Written.insert(J.Addr, J.Addr + J.WrittenLen);

    // Every differing byte must be inside the recorded modified ranges.
    size_t N = std::min(O.Segments.size(), R.Segments.size());
    for (size_t S = 0; S != N; ++S) {
      const std::vector<uint8_t> &A = O.Segments[S].Bytes;
      const std::vector<uint8_t> &B = R.Segments[S].Bytes;
      uint64_t Base = O.Segments[S].VAddr;
      size_t Len = std::min(A.size(), B.size());
      Report.BytesCompared += Len;
      for (size_t I = 0; I != Len; ++I) {
        if (A[I] == B[I])
          continue;
        uint64_t Addr = Base + I;
        if (In.ModifiedRanges && Modified.contains(Addr))
          continue;
        if (!fail(FailureKind::UnpatchedByteChanged, Addr,
                  format("byte changed %02x -> %02x outside any recorded "
                         "patch write",
                         A[I], B[I])))
          return;
      }
    }

    // Every recorded modified range must be backed by a jump record (a
    // modification nobody wrote a jump for is a stray write).
    if (In.ModifiedRanges && In.Jumps) {
      for (const Interval &M : *In.ModifiedRanges) {
        std::vector<Interval> Missing;
        Written.missingRanges(M.Lo, M.Hi, Missing);
        for (const Interval &G : Missing)
          if (!fail(FailureKind::UnaccountedWrite, G.Lo,
                    format("modified range [%s, %s) has no jump record",
                           hex(G.Lo).c_str(), hex(G.Hi).c_str())))
            return;
      }
    }
  }

  // --- Site/jump re-decode ----------------------------------------------

  /// True when \p Addr resolves into executable memory of the rewritten
  /// image: an executable segment or an executable trampoline mapping.
  bool resolvesExecutable(uint64_t Addr) const {
    for (const elf::Segment &S : In.Rewritten->Segments)
      if ((S.Flags & elf::PF_X) && S.containsAddr(Addr))
        return true;
    for (const elf::Mapping &M : In.Rewritten->Mappings)
      if ((M.Flags & elf::PF_X) && Addr >= M.VAddr &&
          Addr - M.VAddr < M.Size)
        return true;
    return false;
  }

  void checkSites() {
    if (!In.Jumps)
      return;
    const elf::Image &R = *In.Rewritten;

    std::unordered_set<uint64_t> ChunkStarts;
    if (In.Chunks)
      for (const core::TrampolineChunk &C : *In.Chunks)
        ChunkStarts.insert(C.Addr);

    std::unordered_map<uint64_t, const core::JumpRecord *> At;
    for (const core::JumpRecord &J : *In.Jumps)
      At[J.Addr] = &J;

    for (const core::JumpRecord &J : *In.Jumps) {
      ++Report.JumpsChecked;
      const elf::Segment *S = R.findSegment(J.Addr);
      uint8_t Buf[x86::MaxInsnLength] = {};
      uint64_t Avail = 0;
      if (S && J.Addr >= S->VAddr && J.Addr - S->VAddr < S->Bytes.size())
        Avail = std::min<uint64_t>(x86::MaxInsnLength,
                                   S->VAddr + S->Bytes.size() - J.Addr);
      if (Avail == 0 || !R.readBytes(J.Addr, Buf, Avail)) {
        if (!fail(FailureKind::SiteBadDecode, J.Addr,
                  "patched site is not inside file-backed segment content"))
          return;
        continue;
      }

      x86::Insn I;
      if (x86::decode(Buf, Avail, J.Addr, I) != x86::DecodeStatus::Ok) {
        if (!fail(FailureKind::SiteBadDecode, J.Addr,
                  format("patched site does not decode (bytes: %s)",
                         hexBytes(Buf, std::min<uint64_t>(Avail, 8)).c_str())))
          return;
        continue;
      }
      bool KindOk = (J.Kind == core::JumpKind::JmpRel32 && I.isJmpRel32()) ||
                    (J.Kind == core::JumpKind::JmpRel8 && I.isJmpRel8()) ||
                    (J.Kind == core::JumpKind::Int3 && I.isInt3());
      if (!KindOk || I.Length != J.EncLen) {
        if (!fail(FailureKind::SiteBadDecode, J.Addr,
                  format("patched site decodes to the wrong encoding "
                         "(got opcode %02x len %u, want kind %u len %u)",
                         I.Opcode, I.Length, static_cast<unsigned>(J.Kind),
                         J.EncLen)))
          return;
        continue;
      }
      if (J.Kind == core::JumpKind::Int3)
        continue;
      uint64_t Target = I.branchTarget();
      if (Target != J.Target) {
        if (!fail(FailureKind::SiteBadTarget, J.Addr,
                  format("jump goes to %s instead of %s",
                         hex(Target).c_str(), hex(J.Target).c_str())))
          return;
        continue;
      }
      if (J.Kind == core::JumpKind::JmpRel32) {
        if (In.Chunks && !ChunkStarts.count(Target)) {
          if (!fail(FailureKind::SiteBadTarget, J.Addr,
                    format("jump target %s is not a trampoline entry",
                           hex(Target).c_str())))
            return;
          continue;
        }
        if (!resolvesExecutable(Target) &&
            !fail(FailureKind::SiteBadTarget, J.Addr,
                  format("jump target %s resolves to no executable memory",
                         hex(Target).c_str())))
          return;
      }
    }

    // Cross-check each successfully patched site against the records.
    if (!In.Sites)
      return;
    for (const core::PatchSiteResult &Site : *In.Sites) {
      if (Site.Used == core::Tactic::Failed)
        continue;
      ++Report.SitesChecked;
      auto It = At.find(Site.Addr);
      if (It == At.end()) {
        if (!fail(FailureKind::SiteMissingRecord, Site.Addr,
                  format("site patched via %s has no jump record",
                         core::tacticName(Site.Used))))
          return;
        continue;
      }
      const core::JumpRecord &J = *It->second;
      bool Ok = false;
      switch (Site.Used) {
      case core::Tactic::B0:
        Ok = J.Kind == core::JumpKind::Int3 &&
             In.Rewritten->B0Sites.count(Site.Addr) != 0;
        break;
      case core::Tactic::T3: {
        // Normal T3: JShort -> JPatch -> trampoline. A site rescued as a
        // T3 victim instead carries the JVictim rel32 directly.
        if (J.Kind == core::JumpKind::JmpRel8) {
          auto JP = At.find(J.Target);
          Ok = JP != At.end() &&
               JP->second->Kind == core::JumpKind::JmpRel32 &&
               JP->second->Target == Site.TrampolineAddr;
        } else {
          Ok = J.Kind == core::JumpKind::JmpRel32 &&
               J.Target == Site.TrampolineAddr;
        }
        break;
      }
      default:
        Ok = J.Kind == core::JumpKind::JmpRel32 &&
             J.Target == Site.TrampolineAddr;
        break;
      }
      if (!Ok &&
          !fail(FailureKind::SiteBadTarget, Site.Addr,
                format("site patched via %s does not reach its trampoline "
                       "%s through the recorded encoding",
                       core::tacticName(Site.Used),
                       hex(Site.TrampolineAddr).c_str())))
        return;
    }
  }

  // --- B0 side table ----------------------------------------------------

  void checkB0() {
    const elf::Image &O = *In.Original, &R = *In.Rewritten;
    std::unordered_set<uint64_t> Int3Addrs;
    if (In.Jumps)
      for (const core::JumpRecord &J : *In.Jumps)
        if (J.Kind == core::JumpKind::Int3)
          Int3Addrs.insert(J.Addr);

    for (const auto &[Addr, Bytes] : R.B0Sites) {
      if (In.Jumps && !Int3Addrs.count(Addr)) {
        if (!fail(FailureKind::B0TableMismatch, Addr,
                  "B0 table entry for a site that carries no int3"))
          return;
        continue;
      }
      if (Bytes.empty() || Bytes.size() > x86::MaxInsnLength) {
        if (!fail(FailureKind::B0TableMismatch, Addr,
                  "B0 table entry has an impossible length"))
          return;
        continue;
      }
      std::vector<uint8_t> Orig(Bytes.size());
      if (!O.readBytes(Addr, Orig.data(), Orig.size()) || Orig != Bytes) {
        if (!fail(FailureKind::B0TableMismatch, Addr,
                  "B0 table entry differs from the original instruction "
                  "bytes"))
          return;
        continue;
      }
      x86::Insn I;
      if (x86::decode(Bytes.data(), Bytes.size(), Addr, I) !=
              x86::DecodeStatus::Ok ||
          I.Length != Bytes.size()) {
        if (!fail(FailureKind::B0TableMismatch, Addr,
                  "B0 table entry does not decode to one instruction"))
          return;
      }
    }
    if (In.Jumps)
      for (uint64_t Addr : Int3Addrs)
        if (!R.B0Sites.count(Addr) &&
            !fail(FailureKind::B0TableMismatch, Addr,
                  "int3 site missing from the B0 side table"))
          return;
  }

  // --- 3. Mapping-table / grouping consistency --------------------------

  void checkMappings() {
    const elf::Image &R = *In.Rewritten;

    // Page-granular segment occupancy, for collision checks.
    IntervalSet SegPages;
    for (const elf::Segment &S : R.Segments)
      SegPages.insert(S.VAddr / PageSize * PageSize,
                      alignUp(S.endAddr(), PageSize));

    std::vector<const elf::Mapping *> Sorted;
    for (const elf::Mapping &M : R.Mappings)
      Sorted.push_back(&M);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const elf::Mapping *A, const elf::Mapping *B) {
                return A->VAddr < B->VAddr;
              });

    const elf::Mapping *Prev = nullptr;
    for (const elf::Mapping *MP : Sorted) {
      const elf::Mapping &M = *MP;
      ++Report.MappingsChecked;
      if ((M.VAddr % PageSize) != 0 || (M.Offset % PageSize) != 0) {
        if (!fail(FailureKind::MappingInvalid, M.VAddr,
                  "mapping is not page aligned"))
          return;
        continue;
      }
      if (M.Size == 0 || M.VAddr + M.Size < M.VAddr) {
        if (!fail(FailureKind::MappingInvalid, M.VAddr,
                  "mapping size is empty or wraps the address space"))
          return;
        continue;
      }
      if (M.BlockIndex >= R.Blocks.size()) {
        if (!fail(FailureKind::MappingInvalid, M.VAddr,
                  format("mapping references missing block %u",
                         M.BlockIndex)))
          return;
        continue;
      }
      const elf::PhysBlock &B = R.Blocks[M.BlockIndex];
      if (M.Offset + M.Size < M.Offset ||
          M.Offset + M.Size > B.Bytes.size()) {
        if (!fail(FailureKind::MappingInvalid, M.VAddr,
                  format("mapping [off %s + size %s] exceeds block %u "
                         "(%zu bytes)",
                         hex(M.Offset).c_str(), hex(M.Size).c_str(),
                         M.BlockIndex, B.Bytes.size())))
          return;
        continue;
      }
      if (!(M.Flags & elf::PF_X) || (M.Flags & elf::PF_W)) {
        if (!fail(FailureKind::MappingInvalid, M.VAddr,
                  "trampoline mapping must be executable and non-writable"))
          return;
        continue;
      }
      if (Prev && Prev->VAddr + Prev->Size > M.VAddr) {
        if (!fail(FailureKind::MappingConflict, M.VAddr,
                  format("mapping overlaps the one at %s",
                         hex(Prev->VAddr).c_str())))
          return;
        continue;
      }
      Prev = MP;

      // A mapped page colliding with a segment page may carry only zero
      // block bytes (the loader skips it; nonzero bytes would be lost).
      for (uint64_t P = M.VAddr; P < M.VAddr + M.Size; P += PageSize) {
        if (!SegPages.overlaps(P, P + PageSize))
          continue;
        uint64_t Off = M.Offset + (P - M.VAddr);
        bool AllZero = true;
        for (uint64_t I = Off; I < Off + PageSize && I < B.Bytes.size(); ++I)
          if (B.Bytes[I] != 0) {
            AllZero = false;
            break;
          }
        if (!AllZero &&
            !fail(FailureKind::MappingConflict, P,
                  format("mapping page at %s carries trampoline bytes but "
                         "collides with a segment",
                         hex(P).c_str())))
          return;
      }
    }

    checkChunkBytes();
  }

  /// Every trampoline chunk byte must survive the virtual->physical
  /// resolution, and every nonzero block byte must be claimed by a chunk.
  void checkChunkBytes() {
    if (!In.Chunks)
      return;
    const elf::Image &R = *In.Rewritten;

    std::vector<std::vector<bool>> Claimed(R.Blocks.size());
    for (size_t I = 0; I != R.Blocks.size(); ++I)
      Claimed[I].assign(R.Blocks[I].Bytes.size(), false);

    for (const core::TrampolineChunk &C : *In.Chunks) {
      for (size_t I = 0; I != C.Bytes.size(); ++I) {
        uint64_t A = C.Addr + I;
        ++Report.ChunkBytesChecked;
        const elf::Mapping *Found = nullptr;
        for (const elf::Mapping &M : R.Mappings)
          if (A >= M.VAddr && A - M.VAddr < M.Size &&
              M.BlockIndex < R.Blocks.size()) {
            Found = &M;
            break;
          }
        if (!Found) {
          if (!fail(FailureKind::TrampolineBytesWrong, A,
                    "trampoline byte is covered by no mapping"))
            return;
          continue;
        }
        uint64_t Off = Found->Offset + (A - Found->VAddr);
        const std::vector<uint8_t> &BB = R.Blocks[Found->BlockIndex].Bytes;
        if (Off >= BB.size() || BB[Off] != C.Bytes[I]) {
          if (!fail(FailureKind::TrampolineBytesWrong, A,
                    format("trampoline byte resolves to %02x, want %02x",
                           Off < BB.size() ? BB[Off] : 0u, C.Bytes[I])))
            return;
          continue;
        }
        Claimed[Found->BlockIndex][Off] = true;
      }
    }

    for (size_t B = 0; B != R.Blocks.size(); ++B)
      for (size_t I = 0; I != R.Blocks[B].Bytes.size(); ++I)
        if (R.Blocks[B].Bytes[I] != 0 && !Claimed[B][I] &&
            !fail(FailureKind::StrayBlockByte, I,
                  format("block %zu byte %zu is %02x but no trampoline "
                         "claims it",
                         B, I, R.Blocks[B].Bytes[I])))
          return;
  }

  // --- 4. Differential execution ----------------------------------------

  /// Instruction starts of the original text whose bytes the patcher
  /// never touched: they execute at the same rip in both images, so the
  /// filtered traces must be identical.
  std::unordered_set<uint64_t> stableRips() const {
    std::unordered_set<uint64_t> Out;
    IntervalSet Modified;
    if (In.ModifiedRanges)
      for (const Interval &I : *In.ModifiedRanges)
        Modified.insert(I);
    const elf::Segment *Text = In.Original->textSegment();
    if (!Text)
      return Out;
    uint64_t A = Text->VAddr, End = Text->VAddr + Text->Bytes.size();
    while (A < End) {
      x86::Insn I;
      if (x86::decode(Text->Bytes.data() + (A - Text->VAddr),
                      static_cast<size_t>(End - A), A,
                      I) != x86::DecodeStatus::Ok) {
        ++A;
        continue;
      }
      if (!Modified.overlaps(A, A + I.Length))
        Out.insert(A);
      A += I.Length;
    }
    return Out;
  }

  void checkDifferential() {
    ExecState O = execImage(*In.Original, Opts, nullptr, nullptr);
    ExecState R = execImage(*In.Rewritten, Opts, nullptr, nullptr);
    Report.WorkloadsRun += 2;

    std::vector<std::string> Diffs;
    if (O.R.Kind != R.R.Kind)
      Diffs.push_back(format("exit kind %d vs %d (original: \"%s\", "
                             "rewritten: \"%s\")",
                             static_cast<int>(O.R.Kind),
                             static_cast<int>(R.R.Kind), O.R.Error.c_str(),
                             R.R.Error.c_str()));
    if (O.R.Kind == vm::RunResult::Exit::Finished &&
        R.R.Kind == vm::RunResult::Exit::Finished) {
      for (unsigned G = 0; G != 16; ++G)
        if (O.Gpr[G] != R.Gpr[G])
          Diffs.push_back(format("gpr%u %s vs %s", G, hex(O.Gpr[G]).c_str(),
                                 hex(R.Gpr[G]).c_str()));
      if (O.Checksum != R.Checksum)
        Diffs.push_back(format("data checksum %s vs %s",
                               hex(O.Checksum).c_str(),
                               hex(R.Checksum).c_str()));
      if (O.Violations != R.Violations)
        Diffs.push_back(format("lowfat violations %llu vs %llu",
                               static_cast<unsigned long long>(O.Violations),
                               static_cast<unsigned long long>(R.Violations)));
    }
    if (Diffs.empty())
      return;

    std::string Msg = "original and rewritten diverge:";
    for (const std::string &D : Diffs)
      Msg += " " + D + ";";

    if (Opts.DiffTraces)
      Msg += "\n    " + diffTraces();
    fail(FailureKind::DifferentialDivergence, In.Original->Entry,
         std::move(Msg));
  }

  /// Re-runs both images collecting rips restricted to unmodified
  /// instruction starts and describes the first divergent step.
  std::string diffTraces() {
    std::unordered_set<uint64_t> Stable = stableRips();
    std::vector<uint64_t> TO, TR;
    execImage(*In.Original, Opts, &Stable, &TO);
    execImage(*In.Rewritten, Opts, &Stable, &TR);
    Report.WorkloadsRun += 2;

    size_t N = std::min(TO.size(), TR.size());
    size_t D = 0;
    while (D != N && TO[D] == TR[D])
      ++D;
    if (D == N && TO.size() == TR.size())
      return format("stable-rip traces agree for all %zu steps (divergence "
                    "is outside the unmodified text)",
                    N);
    std::string S =
        format("stable-rip traces diverge at step %zu of %zu/%zu:", D,
               TO.size(), TR.size());
    for (size_t I = D >= 3 ? D - 3 : 0; I != std::min(N, D + 1); ++I)
      S += format(" [%zu] %s|%s", I, hex(I < TO.size() ? TO[I] : 0).c_str(),
                  hex(I < TR.size() ? TR[I] : 0).c_str());
    return S;
  }
};

} // namespace

VerifyReport verify::verifyRewrite(const VerifyInput &In,
                                   const VerifyOptions &Opts) {
  return Checker(In, Opts).run();
}
