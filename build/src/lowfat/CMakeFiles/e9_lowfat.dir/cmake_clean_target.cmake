file(REMOVE_RECURSE
  "libe9_lowfat.a"
)
