
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/FaultInjector.cpp" "src/support/CMakeFiles/e9_support.dir/FaultInjector.cpp.o" "gcc" "src/support/CMakeFiles/e9_support.dir/FaultInjector.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "src/support/CMakeFiles/e9_support.dir/Format.cpp.o" "gcc" "src/support/CMakeFiles/e9_support.dir/Format.cpp.o.d"
  "/root/repo/src/support/IntervalSet.cpp" "src/support/CMakeFiles/e9_support.dir/IntervalSet.cpp.o" "gcc" "src/support/CMakeFiles/e9_support.dir/IntervalSet.cpp.o.d"
  "/root/repo/src/support/Status.cpp" "src/support/CMakeFiles/e9_support.dir/Status.cpp.o" "gcc" "src/support/CMakeFiles/e9_support.dir/Status.cpp.o.d"
  "/root/repo/src/support/ThreadPool.cpp" "src/support/CMakeFiles/e9_support.dir/ThreadPool.cpp.o" "gcc" "src/support/CMakeFiles/e9_support.dir/ThreadPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
