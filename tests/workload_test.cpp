//===- tests/workload_test.cpp - generator and suite tests ----*- C++ -*-===//

#include "workload/Gen.h"
#include "workload/Run.h"
#include "workload/Suite.h"

#include "frontend/Disasm.h"
#include "frontend/Select.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace e9;
using namespace e9::workload;

TEST(Generator, FunctionAddressesAreInstructionStarts) {
  WorkloadConfig C;
  C.Seed = 5;
  C.NumFuncs = 10;
  Workload W = generateWorkload(C);
  auto D = frontend::linearDisassemble(W.Image);
  ASSERT_EQ(W.FuncAddrs.size(), C.NumFuncs);
  for (uint64_t F : W.FuncAddrs) {
    bool Found = std::any_of(D.Insns.begin(), D.Insns.end(),
                             [&](const x86::Insn &I) {
                               return I.Address == F;
                             });
    EXPECT_TRUE(Found) << "function entry not on an instruction boundary";
  }
}

TEST(Generator, FunctionTableMatchesFuncAddrs) {
  WorkloadConfig C;
  C.Seed = 6;
  C.NumFuncs = 9;
  Workload W = generateWorkload(C);
  // Function table lives at DataBase + 0x400, 8 bytes per entry.
  const elf::Segment *Data = W.Image.findSegment(W.DataBase);
  ASSERT_NE(Data, nullptr);
  for (size_t F = 0; F != W.FuncAddrs.size(); ++F) {
    uint64_t V = 0;
    for (unsigned B = 0; B != 8; ++B)
      V |= static_cast<uint64_t>(Data->Bytes[0x400 + F * 8 + B]) << (8 * B);
    EXPECT_EQ(V, W.FuncAddrs[F]);
  }
}

TEST(Generator, LargeFunctionCountsDoNotCollideWithScratch) {
  // Regression: 400 functions used to overflow the table into the
  // scratch region, corrupting indirect-call targets at run time.
  WorkloadConfig C;
  C.Seed = 7;
  C.NumFuncs = 400;
  C.MainIters = 1;
  Workload W = generateWorkload(C);
  RunOutcome R = runImage(W.Image);
  EXPECT_TRUE(R.ok()) << R.Result.Error;
}

TEST(Generator, BaseOverridePlacesImage) {
  WorkloadConfig C;
  C.Seed = 8;
  C.BaseOverride = 0x7f0000001000ULL;
  Workload W = generateWorkload(C);
  EXPECT_EQ(W.TextBase, C.BaseOverride);
  EXPECT_EQ(W.Image.Entry, C.BaseOverride);
  RunOutcome R = runImage(W.Image);
  EXPECT_TRUE(R.ok()) << R.Result.Error;
}

TEST(Generator, HeapBugSiteIsAHeapWrite) {
  WorkloadConfig C;
  C.Seed = 9;
  C.HeapBug = true;
  Workload W = generateWorkload(C);
  ASSERT_NE(W.BugSiteAddr, 0u);
  auto D = frontend::linearDisassemble(W.Image);
  auto Locs = frontend::selectHeapWrites(D.Insns);
  EXPECT_NE(std::find(Locs.begin(), Locs.end(), W.BugSiteAddr), Locs.end());
}

TEST(Generator, PieMovesLoadAddress) {
  WorkloadConfig C;
  C.Seed = 10;
  C.Pie = true;
  Workload W = generateWorkload(C);
  EXPECT_GT(W.TextBase, 0x500000000000ULL);
  EXPECT_TRUE(W.Image.Pie);
  RunOutcome R = runImage(W.Image);
  EXPECT_TRUE(R.ok()) << R.Result.Error;
}

TEST(Generator, BssPressureOnlyAffectsMemSize) {
  WorkloadConfig C;
  C.Seed = 11;
  C.BssSize = 0x40000000; // 1 GiB of .bss
  Workload W = generateWorkload(C);
  const elf::Segment *Data = W.Image.findSegment(W.DataBase);
  ASSERT_NE(Data, nullptr);
  EXPECT_GE(Data->MemSize, C.BssSize);
  EXPECT_LT(Data->fileSize(), 0x100000u); // file stays small
  RunOutcome R = runImage(W.Image);
  EXPECT_TRUE(R.ok()) << R.Result.Error;
}

TEST(Suite, SpecRowsAreWellFormedAndDistinct) {
  auto S = specSuite();
  ASSERT_EQ(S.size(), 28u); // the paper's SPEC2006 table rows
  std::set<std::string> Names;
  std::set<uint64_t> Seeds;
  for (const SuiteEntry &E : S) {
    Names.insert(E.Config.Name);
    Seeds.insert(E.Config.Seed);
    EXPECT_FALSE(E.Config.Pie) << "SPEC rows are non-PIE in the paper";
  }
  EXPECT_EQ(Names.size(), S.size());
  EXPECT_EQ(Seeds.size(), S.size());
}

TEST(Suite, BssPressureRowsExist) {
  auto S = specSuite();
  bool FoundGamess = false, FoundZeusmp = false;
  for (const SuiteEntry &E : S) {
    if (E.Config.Name == "gamess") {
      FoundGamess = true;
      EXPECT_GT(E.Config.BssSize, 0x40000000u);
    }
    if (E.Config.Name == "zeusmp") {
      FoundZeusmp = true;
      EXPECT_GT(E.Config.BssSize, 0x40000000u);
    }
  }
  EXPECT_TRUE(FoundGamess);
  EXPECT_TRUE(FoundZeusmp);
}

TEST(Suite, BrowserRowsAreLargeAndPie) {
  auto B = browserSuite();
  ASSERT_EQ(B.size(), 3u);
  EXPECT_TRUE(B[0].Config.Pie);  // Chrome
  EXPECT_GT(B[0].Config.NumFuncs, 100u);
  EXPECT_TRUE(B[2].SharedObject); // libxul.so
}

TEST(Suite, DomKernelsMatchFigure4) {
  auto K = domKernels();
  ASSERT_EQ(K.size(), 14u);
  EXPECT_EQ(K[0].Name, "Attrib");
  EXPECT_EQ(K[13].Name, "Traverse.jQuery");
  for (const DomKernel &D : K) {
    // FireFox flavour shifts weight from heap writes to compute.
    EXPECT_LE(D.Firefox.HeapWritePct, D.Chrome.HeapWritePct);
    RunOutcome R = runImage(generateWorkload(D.Chrome).Image);
    EXPECT_TRUE(R.ok()) << D.Name << ": " << R.Result.Error;
  }
}

TEST(Run, InsnLimitSurfaceAsFailure) {
  WorkloadConfig C;
  C.Seed = 12;
  Workload W = generateWorkload(C);
  RunConfig RC;
  RC.MaxInsns = 10;
  RunOutcome R = runImage(W.Image, RC);
  EXPECT_FALSE(R.ok());
}

TEST(Run, ChecksumSeesDataWrites) {
  WorkloadConfig A;
  A.Seed = 13;
  WorkloadConfig B;
  B.Seed = 14;
  RunOutcome RA = runImage(generateWorkload(A).Image);
  RunOutcome RB = runImage(generateWorkload(B).Image);
  ASSERT_TRUE(RA.ok());
  ASSERT_TRUE(RB.ok());
  EXPECT_NE(RA.DataChecksum, RB.DataChecksum)
      << "different programs should leave different memory";
}
