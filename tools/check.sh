#!/bin/sh
# tools/check.sh - the full robustness gate.
#
# Runs the regular test suite, then rebuilds everything under
# ASan + UBSan (-DE9_SANITIZE=address) and re-runs the verifier mutation
# sweep, the fault-injection sweep, and the corrupt-ELF corpus in the
# sanitized build, then rebuilds under TSan (-DE9_SANITIZE=thread) and
# runs the sharded-patcher tests across thread counts, and finally runs
# the trace-determinism gate: a real gen -> rewrite sweep checking that
# --trace output is byte-identical across --jobs values, that tracing
# never changes the rewritten binary, and that `e9tool stats` accepts
# the emitted schema. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all), so a clean exit means: no silent memory
# errors on the error paths, no data races in the parallel pipeline,
# and no nondeterminism in the observability layer.
#
# Usage: tools/check.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "== [1/7] configure + build (default flags) =="
cmake -S "$ROOT" -B "$ROOT/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

echo "== [2/7] full test suite =="
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" \
  || ctest --test-dir "$ROOT/build" --output-on-failure --rerun-failed

echo "== [3/7] configure + build (ASan + UBSan) =="
cmake -S "$ROOT" -B "$ROOT/build-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DE9_SANITIZE=address >/dev/null
cmake --build "$ROOT/build-asan" -j "$JOBS" --target \
  verifier_test fault_injection_test elf_test core_test support_test \
  obs_test

echo "== [4/7] robustness sweeps under ASan + UBSan =="
"$ROOT/build-asan/tests/support_test"
"$ROOT/build-asan/tests/core_test"
"$ROOT/build-asan/tests/obs_test"
"$ROOT/build-asan/tests/elf_test" --gtest_filter='CorruptElf.*'
"$ROOT/build-asan/tests/verifier_test"
"$ROOT/build-asan/tests/fault_injection_test"

echo "== [5/7] configure + build (TSan) =="
cmake -S "$ROOT" -B "$ROOT/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DE9_SANITIZE=thread >/dev/null
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target parallel_test

echo "== [6/7] sharded patcher under TSan =="
"$ROOT/build-tsan/tests/parallel_test"

echo "== [7/7] trace determinism + schema gate (e9tool end-to-end) =="
E9="$ROOT/build/tools/e9tool"
TDIR="$(mktemp -d)"
trap 'rm -rf "$TDIR"' EXIT
"$E9" gen "$TDIR/w.elf" --seed=2026 --funcs=96 >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/out4.elf" --strict --jobs=4 \
  --trace="$TDIR/t4.jsonl" --metrics="$TDIR/m.json" >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/out1.elf" --strict --jobs=1 \
  --trace="$TDIR/t1.jsonl" >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/plain.elf" --strict >/dev/null
cmp "$TDIR/t1.jsonl" "$TDIR/t4.jsonl"   # trace identical across --jobs
cmp "$TDIR/out1.elf" "$TDIR/out4.elf"   # binary identical across --jobs
cmp "$TDIR/out1.elf" "$TDIR/plain.elf"  # tracing never perturbs output
"$E9" stats "$TDIR/t4.jsonl" >/dev/null # schema-valid, summary coherent

echo "check.sh: all gates passed"
