//===- tests/x86_decoder_test.cpp - decoder unit tests --------*- C++ -*-===//

#include "x86/Decoder.h"

#include <gtest/gtest.h>

#include <vector>

using namespace e9;
using namespace e9::x86;

namespace {

/// Decodes \p Bytes at \p Addr, asserting success.
Insn dec(std::vector<uint8_t> Bytes, uint64_t Addr = 0x1000) {
  Insn I;
  DecodeStatus S = decode(Bytes.data(), Bytes.size(), Addr, I);
  EXPECT_EQ(S, DecodeStatus::Ok);
  return I;
}

DecodeStatus status(std::vector<uint8_t> Bytes) {
  Insn I;
  return decode(Bytes.data(), Bytes.size(), 0x1000, I);
}

} // namespace

TEST(Decoder, Nop) {
  Insn I = dec({0x90});
  EXPECT_EQ(I.Length, 1);
  EXPECT_FALSE(I.HasModRM);
}

TEST(Decoder, MovStore) {
  // mov [rbx], rax
  Insn I = dec({0x48, 0x89, 0x03});
  EXPECT_EQ(I.Length, 3);
  EXPECT_TRUE(I.HasRex);
  EXPECT_TRUE(I.hasMemOperand());
  EXPECT_EQ(I.memBase(), Reg::RBX);
  EXPECT_EQ(I.memIndex(), Reg::None);
  EXPECT_TRUE(I.writesMemOperand());
  EXPECT_FALSE(I.readsMemOperand());
}

TEST(Decoder, AddImm8) {
  // add rax, 0x20
  Insn I = dec({0x48, 0x83, 0xc0, 0x20});
  EXPECT_EQ(I.Length, 4);
  EXPECT_EQ(I.ImmSize, 1);
  EXPECT_EQ(I.Imm, 0x20);
  EXPECT_EQ(I.mod(), 3u);
  EXPECT_FALSE(I.hasMemOperand());
}

TEST(Decoder, JmpRel32) {
  Insn I = dec({0xe9, 0x44, 0x33, 0x22, 0x11}, 0x400000);
  EXPECT_EQ(I.Length, 5);
  EXPECT_TRUE(I.isJmpRel32());
  EXPECT_TRUE(I.isRelativeBranch());
  EXPECT_EQ(I.Imm, 0x11223344);
  EXPECT_EQ(I.branchTarget(), 0x400000u + 5 + 0x11223344);
}

TEST(Decoder, JmpRel8Negative) {
  Insn I = dec({0xeb, 0xfe}, 0x2000);
  EXPECT_EQ(I.Length, 2);
  EXPECT_TRUE(I.isJmpRel8());
  EXPECT_EQ(I.Imm, -2);
  EXPECT_EQ(I.branchTarget(), 0x2000u); // self-loop
}

TEST(Decoder, JccRel8AndRel32) {
  Insn Short = dec({0x74, 0x05}, 0x3000);
  EXPECT_TRUE(Short.isJccRel8());
  EXPECT_EQ(Short.cond(), Cond::E);
  EXPECT_EQ(Short.branchTarget(), 0x3007u);

  Insn Long = dec({0x0f, 0x85, 0x00, 0x01, 0x00, 0x00}, 0x3000);
  EXPECT_EQ(Long.Length, 6);
  EXPECT_TRUE(Long.isJccRel32());
  EXPECT_EQ(Long.cond(), Cond::NE);
  EXPECT_EQ(Long.branchTarget(), 0x3000u + 6 + 0x100);
}

TEST(Decoder, CallRel32) {
  Insn I = dec({0xe8, 0xfb, 0xff, 0xff, 0xff}, 0x5000);
  EXPECT_TRUE(I.isCallRel32());
  EXPECT_EQ(I.branchTarget(), 0x5000u); // call to self start
}

TEST(Decoder, RipRelativeLoad) {
  // mov rax, [rip + 0x10]
  Insn I = dec({0x48, 0x8b, 0x05, 0x10, 0x00, 0x00, 0x00}, 0x7000);
  EXPECT_EQ(I.Length, 7);
  EXPECT_TRUE(I.isRipRelative());
  EXPECT_EQ(I.memBase(), Reg::RIP);
  EXPECT_EQ(I.ripTarget(), 0x7000u + 7 + 0x10);
  EXPECT_EQ(I.DispOffset, 3);
  EXPECT_EQ(I.DispSize, 4);
}

TEST(Decoder, SibWithDisp32) {
  // mov rax, [rsp + 0xa0]
  Insn I = dec({0x48, 0x8b, 0x84, 0x24, 0xa0, 0x00, 0x00, 0x00});
  EXPECT_EQ(I.Length, 8);
  EXPECT_TRUE(I.HasSIB);
  EXPECT_EQ(I.memBase(), Reg::RSP);
  EXPECT_EQ(I.memIndex(), Reg::None);
  EXPECT_EQ(I.Disp, 0xa0);
}

TEST(Decoder, SibBaseIndexScale) {
  // mov eax, [rbx + rcx*4 + 8]
  Insn I = dec({0x8b, 0x44, 0x8b, 0x08});
  EXPECT_EQ(I.Length, 4);
  EXPECT_EQ(I.memBase(), Reg::RBX);
  EXPECT_EQ(I.memIndex(), Reg::RCX);
  EXPECT_EQ(I.memScale(), 4);
  EXPECT_EQ(I.Disp, 8);
}

TEST(Decoder, ExtendedRegisters) {
  // mov [r15], eax
  Insn I = dec({0x41, 0x89, 0x07});
  EXPECT_EQ(I.memBase(), Reg::R15);
  EXPECT_TRUE(I.writesMemOperand());
  // mov [r12], r13 (r12 base forces SIB)
  Insn J = dec({0x4d, 0x89, 0x2c, 0x24});
  EXPECT_EQ(J.Length, 4);
  EXPECT_EQ(J.memBase(), Reg::R12);
  EXPECT_EQ(J.reg(), 13u);
}

TEST(Decoder, MovImmToMemWord) {
  // mov word [rax], 0x1234 (66 prefix shrinks the immediate)
  Insn I = dec({0x66, 0xc7, 0x00, 0x34, 0x12});
  EXPECT_EQ(I.Length, 5);
  EXPECT_TRUE(I.OpSizeOverride);
  EXPECT_EQ(I.ImmSize, 2);
  EXPECT_EQ(I.Imm, 0x1234);
  EXPECT_TRUE(I.writesMemOperand());
}

TEST(Decoder, MovAbs64) {
  Insn I = dec({0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(I.Length, 10);
  EXPECT_EQ(I.ImmSize, 8);
  EXPECT_EQ(static_cast<uint64_t>(I.Imm), 0x0807060504030201ULL);
}

TEST(Decoder, MovImm32) {
  Insn I = dec({0xb8, 0x44, 0x33, 0x22, 0x11});
  EXPECT_EQ(I.Length, 5);
  EXPECT_EQ(I.ImmSize, 4);
}

TEST(Decoder, Group3TestHasImm) {
  // test eax, 0x11223344 (reg field 0 carries an immediate)
  Insn I = dec({0xf7, 0xc0, 0x44, 0x33, 0x22, 0x11});
  EXPECT_EQ(I.Length, 6);
  EXPECT_EQ(I.ImmSize, 4);
}

TEST(Decoder, Group3NegHasNoImm) {
  // neg eax (reg field 3 carries no immediate)
  Insn I = dec({0xf7, 0xd8});
  EXPECT_EQ(I.Length, 2);
  EXPECT_EQ(I.ImmSize, 0);
}

TEST(Decoder, Group3TestByteMem) {
  // test byte [rbx], 1
  Insn I = dec({0xf6, 0x03, 0x01});
  EXPECT_EQ(I.Length, 3);
  EXPECT_EQ(I.ImmSize, 1);
  EXPECT_FALSE(I.writesMemOperand());
  EXPECT_TRUE(I.readsMemOperand());
}

TEST(Decoder, IndirectCallThroughRip) {
  Insn I = dec({0xff, 0x15, 0x6f, 0x2a, 0x2a, 0x00});
  EXPECT_EQ(I.Length, 6);
  EXPECT_TRUE(I.isIndirectCall());
  EXPECT_FALSE(I.writesMemOperand());
}

TEST(Decoder, IndirectCallReg) {
  Insn I = dec({0x41, 0xff, 0xd3}); // call r11
  EXPECT_EQ(I.Length, 3);
  EXPECT_TRUE(I.isIndirectCall());
}

TEST(Decoder, IndirectJmpMem) {
  Insn I = dec({0xff, 0x24, 0xc5, 0x00, 0x10, 0x40, 0x00});
  EXPECT_EQ(I.Length, 7);
  EXPECT_TRUE(I.isIndirectJmp());
}

TEST(Decoder, PushPop) {
  EXPECT_EQ(dec({0x55}).Length, 1);      // push rbp
  EXPECT_EQ(dec({0x41, 0x54}).Length, 2); // push r12
  Insn I = dec({0x8f, 0x00});             // pop [rax]
  EXPECT_TRUE(I.writesMemOperand());
}

TEST(Decoder, MovzxByte) {
  Insn I = dec({0x0f, 0xb6, 0x06});
  EXPECT_EQ(I.Length, 3);
  EXPECT_EQ(I.Map, OpMap::Map0F);
}

TEST(Decoder, RetAndInt3) {
  EXPECT_TRUE(dec({0xc3}).isRet());
  EXPECT_TRUE(dec({0xcc}).isInt3());
  Insn RetImm = dec({0xc2, 0x10, 0x00});
  EXPECT_TRUE(RetImm.isRet());
  EXPECT_EQ(RetImm.Length, 3);
}

TEST(Decoder, Enter) {
  Insn I = dec({0xc8, 0x10, 0x00, 0x01});
  EXPECT_EQ(I.Length, 4);
}

TEST(Decoder, Moffs) {
  // mov rax, [moffs64]
  Insn I = dec({0x48, 0xa1, 1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(I.Length, 10);
}

// A REX prefix not immediately preceding the opcode is ignored but still
// consumes a byte — this is exactly the padded-jump (T1) encoding trick.
TEST(Decoder, RexThenSegmentThenJmp) {
  Insn I = dec({0x48, 0x26, 0xe9, 0x48, 0x83, 0xc0, 0x20});
  EXPECT_EQ(I.Length, 7);
  EXPECT_TRUE(I.isJmpRel32());
  EXPECT_FALSE(I.HasRex) << "REX must be cancelled by the later prefix";
  EXPECT_EQ(I.SegPrefix, 0x26);
  EXPECT_EQ(I.Imm, 0x20c08348);
}

TEST(Decoder, RexImmediatelyBeforeJmp) {
  Insn I = dec({0x48, 0xe9, 0x00, 0x00, 0x00, 0x00});
  EXPECT_EQ(I.Length, 6);
  EXPECT_TRUE(I.isJmpRel32());
  EXPECT_TRUE(I.HasRex);
  EXPECT_EQ(I.PrefixLength, 1);
}

TEST(Decoder, MultiPrefixPaddedJmp) {
  Insn I = dec({0x2e, 0x3e, 0x48, 0xe9, 0x11, 0x22, 0x33, 0x44});
  EXPECT_EQ(I.Length, 8);
  EXPECT_TRUE(I.isJmpRel32());
  EXPECT_EQ(I.SegPrefix, 0x3e);
  EXPECT_EQ(I.PrefixLength, 3);
}

TEST(Decoder, LockCmpxchg) {
  Insn I = dec({0xf0, 0x48, 0x0f, 0xb1, 0x0e});
  EXPECT_EQ(I.Length, 5);
  EXPECT_TRUE(I.LockPrefix);
  EXPECT_TRUE(I.writesMemOperand());
}

TEST(Decoder, SseStoreAndLoad) {
  Insn Load = dec({0x0f, 0x10, 0x07}); // movups xmm0, [rdi]
  EXPECT_EQ(Load.Length, 3);
  EXPECT_FALSE(Load.writesMemOperand());
  Insn Store = dec({0x66, 0x0f, 0x7f, 0x07}); // movdqa [rdi], xmm0
  EXPECT_EQ(Store.Length, 4);
  EXPECT_TRUE(Store.writesMemOperand());
}

TEST(Decoder, SseWithRepPrefix) {
  // movss xmm0, [rbx + rcx*4]
  Insn I = dec({0xf3, 0x0f, 0x10, 0x04, 0x8b});
  EXPECT_EQ(I.Length, 5);
  EXPECT_EQ(I.RepPrefix, 0xf3);
}

TEST(Decoder, PshufdHasImm8) {
  Insn I = dec({0x66, 0x0f, 0x70, 0xc1, 0x1b});
  EXPECT_EQ(I.Length, 5);
  EXPECT_EQ(I.ImmSize, 1);
}

TEST(Decoder, ThreeByteMaps) {
  // pshufb xmm0, xmm1 (0F38)
  Insn A = dec({0x66, 0x0f, 0x38, 0x00, 0xc1});
  EXPECT_EQ(A.Length, 5);
  EXPECT_EQ(A.Map, OpMap::Map0F38);
  // palignr xmm0, xmm1, 8 (0F3A carries imm8)
  Insn B = dec({0x66, 0x0f, 0x3a, 0x0f, 0xc1, 0x08});
  EXPECT_EQ(B.Length, 6);
  EXPECT_EQ(B.Map, OpMap::Map0F3A);
  EXPECT_EQ(B.ImmSize, 1);
}

TEST(Decoder, Vex2Byte) {
  // vmovups xmm0, [rcx]
  Insn I = dec({0xc5, 0xf8, 0x10, 0x01});
  EXPECT_EQ(I.Length, 4);
  EXPECT_TRUE(I.HasVex);
  EXPECT_EQ(I.Map, OpMap::Map0F);
}

TEST(Decoder, Vex3Byte) {
  // vpshufb xmm0, xmm0, xmm1
  Insn A = dec({0xc4, 0xe2, 0x79, 0x00, 0xc1});
  EXPECT_EQ(A.Length, 5);
  EXPECT_EQ(A.Map, OpMap::Map0F38);
  // vpalignr xmm0, xmm0, xmm1, 8 (map3 imm8)
  Insn B = dec({0xc4, 0xe3, 0x79, 0x0f, 0xc1, 0x08});
  EXPECT_EQ(B.Length, 6);
  EXPECT_EQ(B.ImmSize, 1);
}

TEST(Decoder, Evex) {
  // vmovups zmm0, [rcx]
  Insn I = dec({0x62, 0xf1, 0x7c, 0x48, 0x10, 0x01});
  EXPECT_EQ(I.Length, 6);
  EXPECT_TRUE(I.HasVex);
}

TEST(Decoder, MultiByteNop) {
  // nopw cs:[rax+rax*1+0x0] — the classic 10-byte alignment nop.
  Insn I = dec({0x66, 0x2e, 0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00});
  EXPECT_EQ(I.Length, 10);
}

TEST(Decoder, InvalidOpcodes) {
  EXPECT_EQ(status({0x06}), DecodeStatus::Invalid);
  EXPECT_EQ(status({0x0e}), DecodeStatus::Invalid);
  EXPECT_EQ(status({0x9a}), DecodeStatus::Invalid);
  EXPECT_EQ(status({0xea}), DecodeStatus::Invalid);
  EXPECT_EQ(status({0x0f, 0x04}), DecodeStatus::Invalid);
}

TEST(Decoder, Truncated) {
  EXPECT_EQ(status({}), DecodeStatus::Truncated);
  EXPECT_EQ(status({0x48}), DecodeStatus::Truncated);
  EXPECT_EQ(status({0xe9, 0x00, 0x00}), DecodeStatus::Truncated);
  EXPECT_EQ(status({0x48, 0x8b}), DecodeStatus::Truncated);
  EXPECT_EQ(status({0x0f}), DecodeStatus::Truncated);
}

TEST(Decoder, TooLongIsInvalid) {
  // Twelve segment prefixes + jmp rel32 = 17 bytes > 15.
  std::vector<uint8_t> Bytes(12, 0x26);
  Bytes.insert(Bytes.end(), {0xe9, 0, 0, 0, 0});
  Insn I;
  EXPECT_EQ(decode(Bytes.data(), Bytes.size(), 0, I), DecodeStatus::Invalid);
}

TEST(Decoder, ExactlyFifteenBytesIsOk) {
  // Ten segment prefixes + jmp rel32 = 15 bytes.
  std::vector<uint8_t> Bytes(10, 0x26);
  Bytes.insert(Bytes.end(), {0xe9, 0x78, 0x56, 0x34, 0x12});
  Insn I;
  ASSERT_EQ(decode(Bytes.data(), Bytes.size(), 0, I), DecodeStatus::Ok);
  EXPECT_EQ(I.Length, 15);
  EXPECT_TRUE(I.isJmpRel32());
  EXPECT_EQ(I.Imm, 0x12345678);
}

TEST(Decoder, DecodeLengthHelper) {
  uint8_t Nop = 0x90;
  EXPECT_EQ(decodeLength(&Nop, 1), 1u);
  uint8_t Bad = 0x06;
  EXPECT_EQ(decodeLength(&Bad, 1), 0u);
}

TEST(Decoder, AbsoluteSibNoBase) {
  // mov eax, [0x601000] via SIB base=101 mod=00
  Insn I = dec({0x8b, 0x04, 0x25, 0x00, 0x10, 0x60, 0x00});
  EXPECT_EQ(I.Length, 7);
  EXPECT_EQ(I.memBase(), Reg::None);
  EXPECT_EQ(I.memIndex(), Reg::None);
  EXPECT_EQ(I.Disp, 0x601000);
}

TEST(Decoder, BasePointerNeedsDisp) {
  // mov rax, [rbp+0] must encode as mod=01 disp8=0
  Insn I = dec({0x48, 0x8b, 0x45, 0x00});
  EXPECT_EQ(I.Length, 4);
  EXPECT_EQ(I.memBase(), Reg::RBP);
  EXPECT_EQ(I.Disp, 0);
  EXPECT_EQ(I.DispSize, 1);
}
