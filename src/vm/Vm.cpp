//===- vm/Vm.cpp - x86_64 interpreter --------------------------*- C++ -*-===//

#include "vm/Vm.h"

#include "support/Format.h"
#include "x86/Decoder.h"

#include <cstring>

using namespace e9;
using namespace e9::vm;
using namespace e9::x86;

namespace {

/// True when the opcode is an 8-bit-operand form.
bool isByteOp(const Insn &I) {
  if (I.Map == OpMap::OneByte) {
    uint8_t Op = I.Opcode;
    if (Op <= 0x3d)
      return (Op & 7) == 0 || (Op & 7) == 2 || (Op & 7) == 4;
    switch (Op) {
    case 0x80: case 0x84: case 0x86: case 0x88: case 0x8a: case 0xa8:
    case 0xc0: case 0xc6: case 0xd0: case 0xd2: case 0xf6: case 0xfe:
      return true;
    default:
      return Op >= 0xb0 && Op <= 0xb7;
    }
  }
  if (I.Map == OpMap::Map0F) {
    uint8_t Op = I.Opcode;
    return (Op >= 0x90 && Op <= 0x9f) || Op == 0xb6 || Op == 0xbe ||
           Op == 0xc0;
  }
  return false;
}

/// Effective operand size in bytes.
unsigned opSize(const Insn &I) {
  if (isByteOp(I))
    return 1;
  if (I.Rex & 0x8)
    return 8;
  return I.OpSizeOverride ? 2 : 4;
}

uint64_t truncTo(uint64_t V, unsigned Size) {
  if (Size >= 8)
    return V;
  return V & ((1ull << (8 * Size)) - 1);
}

int64_t sextFrom(uint64_t V, unsigned Size) {
  if (Size >= 8)
    return static_cast<int64_t>(V);
  unsigned Shift = 64 - 8 * Size;
  return static_cast<int64_t>(V << Shift) >> Shift;
}

bool msb(uint64_t V, unsigned Size) {
  return (V >> (8 * Size - 1)) & 1;
}

bool parity8(uint64_t V) {
  uint8_t B = static_cast<uint8_t>(V);
  B ^= B >> 4;
  B ^= B >> 2;
  B ^= B >> 1;
  return (B & 1) == 0; // PF set when the low byte has even parity.
}

/// Reads a register of \p Size bytes. \p HasRex selects the x86_64 8-bit
/// register file (spl/bpl/sil/dil vs ah/ch/dh/bh for encodings 4-7).
uint64_t readReg(const Cpu &C, unsigned Enc, unsigned Size, bool HasRex) {
  if (Size == 1 && !HasRex && Enc >= 4 && Enc < 8)
    return (C.Gpr[Enc - 4] >> 8) & 0xff; // ah/ch/dh/bh
  return truncTo(C.Gpr[Enc & 15], Size);
}

void writeReg(Cpu &C, unsigned Enc, unsigned Size, bool HasRex, uint64_t V) {
  if (Size == 1 && !HasRex && Enc >= 4 && Enc < 8) {
    uint64_t &R = C.Gpr[Enc - 4];
    R = (R & ~0xff00ull) | ((V & 0xff) << 8);
    return;
  }
  uint64_t &R = C.Gpr[Enc & 15];
  switch (Size) {
  case 1:
    R = (R & ~0xffull) | (V & 0xff);
    break;
  case 2:
    R = (R & ~0xffffull) | (V & 0xffff);
    break;
  case 4:
    R = V & 0xffffffffull; // 32-bit writes zero-extend.
    break;
  default:
    R = V;
    break;
  }
}

} // namespace

// --- Vm public helpers -------------------------------------------------------

void Vm::registerHook(uint64_t Addr, HostHook Fn, uint64_t Cost) {
  Hooks[Addr] = HookEntry{std::move(Fn), Cost};
}

VmSnapshot Vm::snapshot() {
  VmSnapshot S;
  S.Core = Core;
  S.Mem = Mem.snapshot();
  return S;
}

void Vm::restore(const VmSnapshot &S) {
  Core = S.Core;
  Mem.restore(S.Mem);
  // The cache maps rip -> decoded insn; after a restore the text at a
  // given rip may be re-patched (different rewrite candidate), so stale
  // entries would execute the *previous* candidate's bytes.
  DecodeCache.clear();
}

Status Vm::push64(uint64_t V) {
  Core.rsp() -= 8;
  return Mem.write64(Core.rsp(), V);
}

Status Vm::pop64(uint64_t &V) {
  if (Status S = Mem.read64(Core.rsp(), V); !S)
    return S;
  Core.rsp() += 8;
  return Status::ok();
}

// --- Flag helpers (member-free, operate on Cpu) ------------------------------

namespace {

void setFlagsLogic(Cpu &C, uint64_t Res, unsigned Size) {
  C.CF = false;
  C.OF = false;
  C.AF = false;
  C.ZF = truncTo(Res, Size) == 0;
  C.SF = msb(Res, Size);
  C.PF = parity8(Res);
}

void setFlagsResult(Cpu &C, uint64_t Res, unsigned Size) {
  C.ZF = truncTo(Res, Size) == 0;
  C.SF = msb(Res, Size);
  C.PF = parity8(Res);
}

uint64_t doAdd(Cpu &C, uint64_t A, uint64_t B, bool CarryIn, unsigned Size) {
  uint64_t Res = truncTo(A + B + (CarryIn ? 1 : 0), Size);
  uint64_t TA = truncTo(A, Size), TB = truncTo(B, Size);
  C.CF = Res < TA || (CarryIn && Res == TA);
  C.OF = msb((TA ^ Res) & (TB ^ Res), Size);
  C.AF = ((TA ^ TB ^ Res) & 0x10) != 0;
  setFlagsResult(C, Res, Size);
  return Res;
}

uint64_t doSub(Cpu &C, uint64_t A, uint64_t B, bool BorrowIn, unsigned Size) {
  uint64_t TA = truncTo(A, Size), TB = truncTo(B, Size);
  uint64_t Res = truncTo(TA - TB - (BorrowIn ? 1 : 0), Size);
  C.CF = TA < TB || (BorrowIn && TA == TB);
  C.OF = msb((TA ^ TB) & (TA ^ Res), Size);
  C.AF = ((TA ^ TB ^ Res) & 0x10) != 0;
  setFlagsResult(C, Res, Size);
  return Res;
}

/// Executes one of the 8 classic ALU ops; returns the (truncated) result.
/// For Cmp the caller must not write the result back.
uint64_t aluExec(Cpu &C, unsigned Op, uint64_t A, uint64_t B, unsigned Size) {
  switch (Op) {
  case 0: // add
    return doAdd(C, A, B, false, Size);
  case 1: { // or
    uint64_t R = truncTo(A | B, Size);
    setFlagsLogic(C, R, Size);
    return R;
  }
  case 2: // adc
    return doAdd(C, A, B, C.CF, Size);
  case 3: // sbb
    return doSub(C, A, B, C.CF, Size);
  case 4: { // and
    uint64_t R = truncTo(A & B, Size);
    setFlagsLogic(C, R, Size);
    return R;
  }
  case 5: // sub
    return doSub(C, A, B, false, Size);
  case 6: { // xor
    uint64_t R = truncTo(A ^ B, Size);
    setFlagsLogic(C, R, Size);
    return R;
  }
  default: // cmp
    return doSub(C, A, B, false, Size);
  }
}

uint64_t doShift(Cpu &C, unsigned Op, uint64_t A, unsigned Count,
                 unsigned Size, Status &Err) {
  Count &= Size == 8 ? 63 : 31;
  uint64_t TA = truncTo(A, Size);
  if (Count == 0)
    return TA; // flags unchanged
  uint64_t Res;
  switch (Op) {
  case 4: // shl
    Res = truncTo(TA << Count, Size);
    C.CF = Count <= 8u * Size && ((TA >> (8 * Size - Count)) & 1);
    C.OF = msb(Res, Size) != C.CF;
    break;
  case 5: // shr
    Res = TA >> Count;
    C.CF = (TA >> (Count - 1)) & 1;
    C.OF = msb(TA, Size);
    break;
  case 7: // sar
    Res = truncTo(static_cast<uint64_t>(sextFrom(TA, Size) >>
                                        static_cast<int64_t>(Count)),
                  Size);
    C.CF = (static_cast<uint64_t>(sextFrom(TA, Size)) >> (Count - 1)) & 1;
    C.OF = false;
    break;
  default:
    Err = Status::error(format("unimplemented shift group op /%u", Op));
    return 0;
  }
  setFlagsResult(C, Res, Size);
  return Res;
}

} // namespace

// --- Operand access ------------------------------------------------------------

namespace {

/// Effective address of the instruction's memory operand.
uint64_t memAddr(const Insn &I, const Cpu &C) {
  if (I.isRipRelative())
    return I.ripTarget();
  uint64_t A = static_cast<uint64_t>(static_cast<int64_t>(I.Disp));
  Reg Base = I.memBase();
  if (Base != Reg::None)
    A += C.Gpr[regEncoding(Base)];
  Reg Index = I.memIndex();
  if (Index != Reg::None)
    A += C.Gpr[regEncoding(Index)] * I.memScale();
  return A;
}

} // namespace

// --- The interpreter ---------------------------------------------------------------

Status Vm::execInsn(const Insn &I, const uint8_t *Bytes, ExecKind &Kind) {
  Kind = ExecKind::Ok;
  Cpu &C = Core;
  const unsigned Size = opSize(I);
  const bool HasRex = I.HasRex;
  uint64_t Next = I.Address + I.Length;

  if (I.AddrSizeOverride)
    return Status::error("address-size override is not supported");
  if (I.SegPrefix == 0x64 || I.SegPrefix == 0x65)
    return Status::error("fs/gs segment addressing is not supported");

  // r/m operand accessors (valid only when I.HasModRM).
  auto readRM = [&](unsigned Sz, uint64_t &V) -> Status {
    if (I.mod() == 3) {
      V = readReg(C, I.rm(), Sz, HasRex);
      return Status::ok();
    }
    return Mem.readInt(memAddr(I, C), Sz, V);
  };
  auto writeRM = [&](unsigned Sz, uint64_t V) -> Status {
    if (I.mod() == 3) {
      writeReg(C, I.rm(), Sz, HasRex, V);
      return Status::ok();
    }
    return Mem.writeInt(memAddr(I, C), Sz, V);
  };
  auto readRegOp = [&](unsigned Sz) {
    return readReg(C, I.reg(), Sz, HasRex);
  };
  auto writeRegOp = [&](unsigned Sz, uint64_t V) {
    writeReg(C, I.reg(), Sz, HasRex, V);
  };

  if (I.Map == OpMap::OneByte) {
    uint8_t Op = I.Opcode;

    // --- ALU rows 00-3D ----------------------------------------------------
    if (Op <= 0x3d) {
      unsigned AluOp = (Op >> 3) & 7;
      unsigned Form = Op & 7;
      switch (Form) {
      case 0:
      case 1: { // <op> r/m, r
        uint64_t A, B = readRegOp(Size);
        if (Status S = readRM(Size, A); !S)
          return S;
        uint64_t R = aluExec(C, AluOp, A, B, Size);
        if (AluOp != 7)
          if (Status S = writeRM(Size, R); !S)
            return S;
        break;
      }
      case 2:
      case 3: { // <op> r, r/m
        uint64_t B, A = readRegOp(Size);
        if (Status S = readRM(Size, B); !S)
          return S;
        uint64_t R = aluExec(C, AluOp, A, B, Size);
        if (AluOp != 7)
          writeRegOp(Size, R);
        break;
      }
      default: { // <op> al/eax, imm
        uint64_t A = readReg(C, 0, Size, HasRex);
        uint64_t B = static_cast<uint64_t>(I.Imm);
        uint64_t R = aluExec(C, AluOp, A, B, Size);
        if (AluOp != 7)
          writeReg(C, 0, Size, HasRex, R);
        break;
      }
      }
      C.Rip = Next;
      return Status::ok();
    }

    switch (Op) {
    case 0x63: { // movsxd r64, r/m32
      uint64_t V;
      if (Status S = readRM(4, V); !S)
        return S;
      writeRegOp(8, static_cast<uint64_t>(sextFrom(V, 4)));
      break;
    }
    case 0x50: case 0x51: case 0x52: case 0x53:
    case 0x54: case 0x55: case 0x56: case 0x57: { // push r
      unsigned Enc = (Op & 7) | ((I.Rex & 1) << 3);
      if (Status S = push64(C.Gpr[Enc]); !S)
        return S;
      break;
    }
    case 0x58: case 0x59: case 0x5a: case 0x5b:
    case 0x5c: case 0x5d: case 0x5e: case 0x5f: { // pop r
      unsigned Enc = (Op & 7) | ((I.Rex & 1) << 3);
      uint64_t V;
      if (Status S = pop64(V); !S)
        return S;
      C.Gpr[Enc] = V;
      break;
    }
    case 0x68: // push imm32
    case 0x6a: // push imm8
      if (Status S = push64(static_cast<uint64_t>(I.Imm)); !S)
        return S;
      break;
    case 0x69:
    case 0x6b: { // imul r, r/m, imm
      uint64_t A;
      if (Status S = readRM(Size, A); !S)
        return S;
      __int128 Full = static_cast<__int128>(sextFrom(A, Size)) *
                      static_cast<__int128>(I.Imm);
      uint64_t R = truncTo(static_cast<uint64_t>(Full), Size);
      C.CF = C.OF = Full != static_cast<__int128>(sextFrom(R, Size));
      setFlagsResult(C, R, Size);
      writeRegOp(Size, R);
      break;
    }
    case 0x70: case 0x71: case 0x72: case 0x73: case 0x74: case 0x75:
    case 0x76: case 0x77: case 0x78: case 0x79: case 0x7a: case 0x7b:
    case 0x7c: case 0x7d: case 0x7e: case 0x7f: // jcc rel8
      C.Rip = C.cond(I.cond()) ? I.branchTarget() : Next;
      return Status::ok();
    case 0x80:
    case 0x81:
    case 0x83: { // grp1 r/m, imm
      unsigned AluOp = I.regOpcode();
      uint64_t A;
      if (Status S = readRM(Size, A); !S)
        return S;
      uint64_t R = aluExec(C, AluOp, A, static_cast<uint64_t>(I.Imm), Size);
      if (AluOp != 7)
        if (Status S = writeRM(Size, R); !S)
          return S;
      break;
    }
    case 0x84:
    case 0x85: { // test r/m, r
      uint64_t A;
      if (Status S = readRM(Size, A); !S)
        return S;
      setFlagsLogic(C, truncTo(A & readRegOp(Size), Size), Size);
      break;
    }
    case 0x86:
    case 0x87: { // xchg r/m, r
      uint64_t A;
      if (Status S = readRM(Size, A); !S)
        return S;
      uint64_t B = readRegOp(Size);
      if (Status S = writeRM(Size, B); !S)
        return S;
      writeRegOp(Size, A);
      break;
    }
    case 0x88:
    case 0x89: // mov r/m, r
      if (Status S = writeRM(Size, readRegOp(Size)); !S)
        return S;
      break;
    case 0x8a:
    case 0x8b: { // mov r, r/m
      uint64_t V;
      if (Status S = readRM(Size, V); !S)
        return S;
      writeRegOp(Size, V);
      break;
    }
    case 0x8d: // lea
      if (I.mod() == 3)
        return Status::error("lea with register operand");
      writeRegOp(Size, truncTo(memAddr(I, C), Size));
      break;
    case 0x8f: { // pop r/m
      if (I.regOpcode() != 0)
        return Status::error("unsupported 8F group member");
      uint64_t V;
      if (Status S = pop64(V); !S)
        return S;
      if (Status S = writeRM(8, V); !S)
        return S;
      break;
    }
    case 0x90: case 0x91: case 0x92: case 0x93:
    case 0x94: case 0x95: case 0x96: case 0x97: { // xchg rax, r / nop
      unsigned Enc = (Op & 7) | ((I.Rex & 1) << 3);
      if (Enc != 0) {
        uint64_t T = readReg(C, 0, Size, HasRex);
        writeReg(C, 0, Size, HasRex, readReg(C, Enc, Size, HasRex));
        writeReg(C, Enc, Size, HasRex, T);
      }
      break;
    }
    case 0x98: // cdqe/cwde/cbw
      if (Size == 8)
        C.Gpr[0] = static_cast<uint64_t>(sextFrom(C.Gpr[0], 4));
      else if (Size == 4)
        writeReg(C, 0, 4, HasRex,
                 static_cast<uint64_t>(sextFrom(C.Gpr[0], 2)));
      else
        writeReg(C, 0, 2, HasRex,
                 static_cast<uint64_t>(sextFrom(C.Gpr[0], 1)));
      break;
    case 0x99: { // cqo/cdq
      bool Neg = msb(C.Gpr[0], Size);
      writeReg(C, 2, Size, HasRex, Neg ? ~0ull : 0);
      break;
    }
    case 0x9c: // pushfq
      if (Status S = push64(C.rflags()); !S)
        return S;
      break;
    case 0x9d: { // popfq
      uint64_t F;
      if (Status S = pop64(F); !S)
        return S;
      C.setRflags(F);
      break;
    }
    case 0xa8:
    case 0xa9: // test al/eax, imm
      setFlagsLogic(C,
                    truncTo(readReg(C, 0, Size, HasRex) &
                                static_cast<uint64_t>(I.Imm),
                            Size),
                    Size);
      break;
    case 0xb0: case 0xb1: case 0xb2: case 0xb3:
    case 0xb4: case 0xb5: case 0xb6: case 0xb7: { // mov r8, imm8
      unsigned Enc = (Op & 7) | ((I.Rex & 1) << 3);
      writeReg(C, Enc, 1, HasRex, static_cast<uint64_t>(I.Imm));
      break;
    }
    case 0xb8: case 0xb9: case 0xba: case 0xbb:
    case 0xbc: case 0xbd: case 0xbe: case 0xbf: { // mov r, imm
      unsigned Enc = (Op & 7) | ((I.Rex & 1) << 3);
      writeReg(C, Enc, Size, HasRex, static_cast<uint64_t>(I.Imm));
      break;
    }
    case 0xc0:
    case 0xc1:
    case 0xd0:
    case 0xd1:
    case 0xd2:
    case 0xd3: { // shift groups
      unsigned Count;
      if (Op == 0xc0 || Op == 0xc1)
        Count = static_cast<unsigned>(I.Imm) & 0xff;
      else if (Op == 0xd0 || Op == 0xd1)
        Count = 1;
      else
        Count = static_cast<unsigned>(C.Gpr[1] & 0xff); // cl
      uint64_t A;
      if (Status S = readRM(Size, A); !S)
        return S;
      Status Err = Status::ok();
      uint64_t R = doShift(C, I.regOpcode(), A, Count, Size, Err);
      if (!Err)
        return Err;
      if (Status S = writeRM(Size, R); !S)
        return S;
      break;
    }
    case 0xc2: { // ret imm16
      uint64_t Ret;
      if (Status S = pop64(Ret); !S)
        return S;
      C.rsp() += static_cast<uint64_t>(I.Imm) & 0xffff;
      C.Rip = Ret;
      return Status::ok();
    }
    case 0xc3: { // ret
      uint64_t Ret;
      if (Status S = pop64(Ret); !S)
        return S;
      C.Rip = Ret;
      return Status::ok();
    }
    case 0xc6:
    case 0xc7: // mov r/m, imm
      if (I.regOpcode() != 0)
        return Status::error("unsupported C6/C7 group member");
      if (Status S = writeRM(Size, static_cast<uint64_t>(I.Imm)); !S)
        return S;
      break;
    case 0xc9: { // leave
      C.rsp() = C.Gpr[5]; // rbp
      uint64_t V;
      if (Status S = pop64(V); !S)
        return S;
      C.Gpr[5] = V;
      break;
    }
    case 0xe0:   // loopne
    case 0xe1:   // loope
    case 0xe2:   // loop
    case 0xe3: { // jrcxz
      bool Taken;
      if (Op == 0xe3) {
        Taken = C.Gpr[1] == 0;
      } else {
        --C.Gpr[1]; // rcx, flags untouched
        Taken = C.Gpr[1] != 0;
        if (Op == 0xe1)
          Taken = Taken && C.ZF;
        else if (Op == 0xe0)
          Taken = Taken && !C.ZF;
      }
      C.Rip = Taken ? I.branchTarget() : Next;
      return Status::ok();
    }
    case 0xe8: // call rel32
      if (Status S = push64(Next); !S)
        return S;
      C.Rip = I.branchTarget();
      return Status::ok();
    case 0xe9:
    case 0xeb: // jmp
      C.Rip = I.branchTarget();
      return Status::ok();
    case 0xf4: // hlt: clean program exit
      Kind = ExecKind::Halt;
      C.Rip = Next;
      return Status::ok();
    case 0xf5:
      C.CF = !C.CF;
      break;
    case 0xf8:
      C.CF = false;
      break;
    case 0xf9:
      C.CF = true;
      break;
    case 0xfc:
      C.DF = false;
      break;
    case 0xfd:
      C.DF = true;
      break;
    // --- String operations (movs/stos/lods/scas/cmps + rep/repe/repne) --
    case 0xa4: case 0xa5: case 0xa6: case 0xa7:
    case 0xaa: case 0xab: case 0xac: case 0xad:
    case 0xae: case 0xaf: {
      unsigned Width = (Op & 1) == 0 ? 1u : Size;
      int64_t Step = C.DF ? -static_cast<int64_t>(Width)
                          : static_cast<int64_t>(Width);
      bool IsCmps = Op == 0xa6 || Op == 0xa7;
      bool IsScas = Op == 0xae || Op == 0xaf;
      bool CondRep = IsCmps || IsScas;
      // Hard cap so a garbage rcx cannot hang the interpreter.
      constexpr uint64_t MaxRepIters = 1ull << 24;
      uint64_t Iters = 0;
      while (true) {
        if (I.RepPrefix != 0 && C.Gpr[1] == 0)
          break;
        uint64_t V;
        switch (Op & ~1u) {
        case 0xa4: // movs
          if (Status S = Mem.readInt(C.Gpr[6], Width, V); !S)
            return S;
          if (Status S = Mem.writeInt(C.Gpr[7], Width, V); !S)
            return S;
          C.Gpr[6] += Step;
          C.Gpr[7] += Step;
          break;
        case 0xa6: { // cmps
          uint64_t A, B;
          if (Status S = Mem.readInt(C.Gpr[6], Width, A); !S)
            return S;
          if (Status S = Mem.readInt(C.Gpr[7], Width, B); !S)
            return S;
          doSub(C, A, B, false, Width);
          C.Gpr[6] += Step;
          C.Gpr[7] += Step;
          break;
        }
        case 0xaa: // stos
          if (Status S =
                  Mem.writeInt(C.Gpr[7], Width, truncTo(C.Gpr[0], Width));
              !S)
            return S;
          C.Gpr[7] += Step;
          break;
        case 0xac: // lods
          if (Status S = Mem.readInt(C.Gpr[6], Width, V); !S)
            return S;
          writeReg(C, 0, Width, HasRex, V);
          C.Gpr[6] += Step;
          break;
        default: { // scas
          if (Status S = Mem.readInt(C.Gpr[7], Width, V); !S)
            return S;
          doSub(C, C.Gpr[0], V, false, Width);
          C.Gpr[7] += Step;
          break;
        }
        }
        if (I.RepPrefix == 0)
          break;
        --C.Gpr[1]; // rcx
        if (CondRep) {
          // repe (f3) continues while ZF; repne (f2) while !ZF.
          if (I.RepPrefix == 0xf3 && !C.ZF)
            break;
          if (I.RepPrefix == 0xf2 && C.ZF)
            break;
        }
        if (++Iters > MaxRepIters)
          return Status::error("rep iteration limit exceeded");
      }
      break;
    }
    case 0xf6:
    case 0xf7: { // grp3
      unsigned Sub = I.regOpcode();
      uint64_t A;
      if (Status S = readRM(Size, A); !S)
        return S;
      switch (Sub) {
      case 0:
      case 1: // test r/m, imm
        setFlagsLogic(C, truncTo(A & static_cast<uint64_t>(I.Imm), Size),
                      Size);
        break;
      case 2: // not
        if (Status S = writeRM(Size, truncTo(~A, Size)); !S)
          return S;
        break;
      case 3: { // neg
        uint64_t R = doSub(C, 0, A, false, Size);
        C.CF = truncTo(A, Size) != 0;
        if (Status S = writeRM(Size, R); !S)
          return S;
        break;
      }
      case 4: { // mul: rdx:rax = rax * r/m
        unsigned __int128 Full =
            static_cast<unsigned __int128>(truncTo(C.Gpr[0], Size)) *
            static_cast<unsigned __int128>(truncTo(A, Size));
        uint64_t Lo = truncTo(static_cast<uint64_t>(Full), Size);
        uint64_t Hi =
            truncTo(static_cast<uint64_t>(Full >> (8 * Size)), Size);
        writeReg(C, 0, Size, HasRex, Lo);
        if (Size > 1)
          writeReg(C, 2, Size, HasRex, Hi);
        else
          writeReg(C, 0, 2, HasRex, static_cast<uint64_t>(Full) & 0xffff);
        C.CF = C.OF = Hi != 0;
        break;
      }
      case 5: { // imul (one operand)
        __int128 Full = static_cast<__int128>(sextFrom(C.Gpr[0], Size)) *
                        static_cast<__int128>(sextFrom(A, Size));
        uint64_t Lo = truncTo(static_cast<uint64_t>(Full), Size);
        uint64_t Hi =
            truncTo(static_cast<uint64_t>(static_cast<unsigned __int128>(
                        Full) >> (8 * Size)),
                    Size);
        if (Size > 1) {
          writeReg(C, 0, Size, HasRex, Lo);
          writeReg(C, 2, Size, HasRex, Hi);
        } else {
          // 8-bit form: AX = AL * r/m8.
          writeReg(C, 0, 2, HasRex, static_cast<uint64_t>(Full) & 0xffff);
        }
        C.CF = C.OF = Full != static_cast<__int128>(sextFrom(Lo, Size));
        break;
      }
      case 6: { // div: rax = rdx:rax / r/m; rdx = remainder
        if (Size == 1)
          return Status::error("8-bit divide is not implemented");
        uint64_t Divisor = truncTo(A, Size);
        if (Divisor == 0)
          return Status::error("divide by zero");
        unsigned __int128 Dividend =
            (static_cast<unsigned __int128>(truncTo(C.Gpr[2], Size))
             << (8 * Size)) |
            truncTo(C.Gpr[0], Size);
        unsigned __int128 Q = Dividend / Divisor;
        uint64_t Rem = static_cast<uint64_t>(Dividend % Divisor);
        if (Q >> (8 * Size))
          return Status::error("divide overflow (#DE)");
        writeReg(C, 0, Size, HasRex, static_cast<uint64_t>(Q));
        writeReg(C, 2, Size, HasRex, Rem);
        break;
      }
      case 7: { // idiv (signed)
        if (Size == 1)
          return Status::error("8-bit divide is not implemented");
        int64_t Divisor = sextFrom(A, Size);
        if (Divisor == 0)
          return Status::error("divide by zero");
        __int128 Dividend =
            (static_cast<__int128>(sextFrom(C.Gpr[2], Size))
             << (8 * Size)) |
            static_cast<unsigned __int128>(truncTo(C.Gpr[0], Size));
        __int128 Q = Dividend / Divisor;
        int64_t Rem = static_cast<int64_t>(Dividend % Divisor);
        __int128 Lim = static_cast<__int128>(1) << (8 * Size - 1);
        if (Q >= Lim || Q < -Lim)
          return Status::error("divide overflow (#DE)");
        writeReg(C, 0, Size, HasRex, static_cast<uint64_t>(Q));
        writeReg(C, 2, Size, HasRex, static_cast<uint64_t>(Rem));
        break;
      }
      default:
        return Status::error("unsupported F6/F7 group member");
      }
      break;
    }
    case 0xfe:
    case 0xff: {
      unsigned Sub = I.regOpcode();
      if (Op == 0xfe && Sub > 1)
        return Status::error("unsupported FE group member");
      switch (Sub) {
      case 0:
      case 1: { // inc/dec r/m
        uint64_t A;
        if (Status S = readRM(Size, A); !S)
          return S;
        bool SavedCF = C.CF; // inc/dec leave CF untouched
        uint64_t R = Sub == 0 ? doAdd(C, A, 1, false, Size)
                              : doSub(C, A, 1, false, Size);
        C.CF = SavedCF;
        if (Status S = writeRM(Size, R); !S)
          return S;
        break;
      }
      case 2: { // call r/m64
        uint64_t T;
        if (Status S = readRM(8, T); !S)
          return S;
        if (Status S = push64(Next); !S)
          return S;
        C.Rip = T;
        return Status::ok();
      }
      case 4: { // jmp r/m64
        uint64_t T;
        if (Status S = readRM(8, T); !S)
          return S;
        C.Rip = T;
        return Status::ok();
      }
      case 6: { // push r/m64
        uint64_t V;
        if (Status S = readRM(8, V); !S)
          return S;
        if (Status S = push64(V); !S)
          return S;
        break;
      }
      default:
        return Status::error("unsupported FF group member");
      }
      break;
    }
    default:
      return Status::error(format("unimplemented opcode 0x%02x at %s", Op,
                                  hex(I.Address).c_str()));
    }
    C.Rip = Next;
    return Status::ok();
  }

  if (I.Map == OpMap::Map0F) {
    uint8_t Op = I.Opcode;
    // jcc rel32
    if (Op >= 0x80 && Op <= 0x8f) {
      C.Rip = C.cond(I.cond()) ? I.branchTarget() : Next;
      return Status::ok();
    }
    // cmovcc
    if (Op >= 0x40 && Op <= 0x4f) {
      uint64_t V;
      if (Status S = readRM(Size, V); !S)
        return S;
      if (C.cond(I.cond()))
        writeRegOp(Size, V);
      else if (Size == 4)
        writeRegOp(4, readRegOp(4)); // 32-bit cmov still zero-extends
      C.Rip = Next;
      return Status::ok();
    }
    // setcc
    if (Op >= 0x90 && Op <= 0x9f) {
      if (Status S = writeRM(1, C.cond(I.cond()) ? 1 : 0); !S)
        return S;
      C.Rip = Next;
      return Status::ok();
    }
    switch (Op) {
    case 0x0b: // ud2: deliberate abort
      Kind = ExecKind::Ud2;
      return Status::ok();
    case 0x18: case 0x19: case 0x1a: case 0x1b:
    case 0x1c: case 0x1d: case 0x1e: case 0x1f: // hint nops
      break;
    case 0xb0:
    case 0xb1: { // cmpxchg r/m, r
      unsigned Sz = Op == 0xb0 ? 1 : Size;
      uint64_t Dst;
      if (Status S = readRM(Sz, Dst); !S)
        return S;
      uint64_t Acc = readReg(C, 0, Sz, HasRex);
      doSub(C, Acc, Dst, false, Sz); // sets ZF per the comparison
      if (C.ZF) {
        if (Status S = writeRM(Sz, readRegOp(Sz)); !S)
          return S;
      } else {
        writeReg(C, 0, Sz, HasRex, Dst);
      }
      break;
    }
    case 0xc0:
    case 0xc1: { // xadd r/m, r
      unsigned Sz = Op == 0xc0 ? 1 : Size;
      uint64_t Dst;
      if (Status S = readRM(Sz, Dst); !S)
        return S;
      uint64_t Src = readRegOp(Sz);
      uint64_t Sum = doAdd(C, Dst, Src, false, Sz);
      writeRegOp(Sz, Dst);
      if (Status S = writeRM(Sz, Sum); !S)
        return S;
      break;
    }
    case 0xaf: { // imul r, r/m
      uint64_t A;
      if (Status S = readRM(Size, A); !S)
        return S;
      __int128 Full = static_cast<__int128>(sextFrom(readRegOp(Size), Size)) *
                      static_cast<__int128>(sextFrom(A, Size));
      uint64_t R = truncTo(static_cast<uint64_t>(Full), Size);
      C.CF = C.OF = Full != static_cast<__int128>(sextFrom(R, Size));
      setFlagsResult(C, R, Size);
      writeRegOp(Size, R);
      break;
    }
    case 0xb6:
    case 0xb7:
    case 0xbe:
    case 0xbf: { // movzx/movsx: byte/word source, full-size destination
      unsigned SrcSize = (Op == 0xb6 || Op == 0xbe) ? 1 : 2;
      unsigned DstSize =
          (I.Rex & 0x8) ? 8 : I.OpSizeOverride ? 2 : 4;
      uint64_t V;
      if (Status S = readRM(SrcSize, V); !S)
        return S;
      if (Op >= 0xbe)
        V = static_cast<uint64_t>(sextFrom(V, SrcSize));
      else
        V = truncTo(V, SrcSize);
      writeRegOp(DstSize, truncTo(V, DstSize));
      break;
    }
    case 0xc8: case 0xc9: case 0xca: case 0xcb:
    case 0xcc: case 0xcd: case 0xce: case 0xcf: { // bswap
      unsigned Enc = (Op & 7) | ((I.Rex & 1) << 3);
      uint64_t V = readReg(C, Enc, Size, HasRex);
      uint64_t R = 0;
      for (unsigned B = 0; B != Size; ++B)
        R |= ((V >> (8 * B)) & 0xff) << (8 * (Size - 1 - B));
      writeReg(C, Enc, Size, HasRex, R);
      break;
    }
    default:
      return Status::error(format("unimplemented opcode 0x0f 0x%02x at %s",
                                  Op, hex(I.Address).c_str()));
    }
    C.Rip = Next;
    return Status::ok();
  }

  return Status::error("VEX/EVEX instructions are not implemented");
}

RunResult Vm::run(uint64_t MaxInsns) {
  RunResult R;
  uint8_t Buf[MaxInsnLength];

  while (R.InsnCount < MaxInsns) {
    uint64_t Rip = Core.Rip;
    if (Rip == ExitAddress) {
      R.Kind = RunResult::Exit::Finished;
      return R;
    }

    // Host hooks behave as called functions: run the host code, then ret.
    if (!Hooks.empty()) {
      auto HookIt = Hooks.find(Rip);
      if (HookIt != Hooks.end()) {
        R.Cost += HookIt->second.Cost;
        if (Status S = HookIt->second.Fn(*this); !S) {
          R.Kind = RunResult::Exit::Fault;
          R.Error = format("hook at %s failed: %s", hex(Rip).c_str(),
                           S.reason().c_str());
          return R;
        }
        uint64_t Ret;
        if (Status S = pop64(Ret); !S) {
          R.Kind = RunResult::Exit::Fault;
          R.Error = S.reason();
          return R;
        }
        Core.Rip = Ret;
        continue;
      }
    }

    auto Cached = DecodeCache.find(Rip);
    if (Cached == DecodeCache.end()) {
      size_t N = Mem.fetch(Rip, Buf, sizeof(Buf));
      if (N == 0) {
        R.Kind = RunResult::Exit::Fault;
        R.Error = format("cannot execute at %s (unmapped or NX)",
                         hex(Rip).c_str());
        return R;
      }
      Insn Decoded;
      DecodeStatus DS = decode(Buf, N, Rip, Decoded);
      if (DS != DecodeStatus::Ok) {
        R.Kind = RunResult::Exit::Fault;
        R.Error =
            format("cannot decode instruction at %s (%s)", hex(Rip).c_str(),
                   hexBytes(Buf, N < 8 ? N : 8).c_str());
        return R;
      }
      Cached = DecodeCache.emplace(Rip, Decoded).first;
    }
    const Insn &I = Cached->second;

    if (I.isInt3()) {
      if (!OnTrap) {
        R.Kind = RunResult::Exit::Fault;
        R.Error = format("unhandled int3 at %s", hex(Rip).c_str());
        return R;
      }
      ++R.InsnCount;
      R.Cost += Costs.TrapCost;
      if (Status S = OnTrap(*this, Rip); !S) {
        R.Kind = RunResult::Exit::Fault;
        R.Error = format("trap handler failed at %s: %s", hex(Rip).c_str(),
                         S.reason().c_str());
        return R;
      }
      continue;
    }

    if (OnStep)
      OnStep(Rip);
    ExecKind Kind;
    Status S = execInsn(I, Buf, Kind);
    ++R.InsnCount;
    R.Cost += Costs.InsnCost;
    if (!S) {
      size_t N = Mem.fetch(Rip, Buf, I.Length);
      R.Kind = RunResult::Exit::Fault;
      R.Error = format("at rip=%s (%s): %s", hex(Rip).c_str(),
                       hexBytes(Buf, N).c_str(), S.reason().c_str());
      return R;
    }
    if (Kind == ExecKind::Halt) {
      R.Kind = RunResult::Exit::Finished;
      return R;
    }
    if (Kind == ExecKind::Ud2) {
      R.Kind = RunResult::Exit::Ud2;
      R.Error = format("ud2 executed at %s", hex(Rip).c_str());
      return R;
    }
  }
  R.Kind = RunResult::Exit::InsnLimit;
  R.Error = "instruction budget exhausted";
  return R;
}
