//===- bench/bench_parallel.cpp - sharded patcher thread scaling -*- C++ -*-===//
//
// Sweeps the sharded rewriting pipeline over thread counts on the largest
// scalability workload and reports per-phase times and throughput. The
// pipeline guarantees byte-identical output for every Jobs value; this
// harness re-checks that guarantee on every run (a mismatch is a hard
// failure), so the speedup numbers are never bought with divergence.
//
// Appends machine-readable records to BENCH_parallel.json. Note: on a
// single-core container the thread sweep exercises correctness, not
// speedup — interpret sites/sec against the recorded "hw_threads".
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "frontend/Prescan.h"
#include "frontend/Rewriter.h"
#include "lowfat/LowFat.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace e9;
using namespace e9::bench;
using namespace e9::frontend;
using namespace e9::workload;

int main() {
  unsigned HwThreads = ThreadPool::hardwareThreads();
  std::printf("Thread scaling: sharded patcher, %u hardware thread(s)\n\n",
              HwThreads);

  WorkloadConfig C;
  C.Name = "parallel";
  C.Seed = 4100;
  C.Pie = true;
  C.NumFuncs = 3200;
  C.MainIters = 1;
  Workload W = generateWorkload(C);

  PrescanStats PS;
  std::vector<uint64_t> Locs = prescanSelect(W.Image, SelectorKind::Jumps, &PS);
  size_t NumInsns = PS.NumInsns;
  std::printf("workload: %zu code KiB, %zu sites\n\n",
              W.Image.textSegment()->Bytes.size() / 1024, Locs.size());
  std::printf("%6s %8s %10s %10s %10s %12s %8s\n", "jobs", "shards", "ms",
              "patchMs", "mergeMs", "sites/s", "speedup");
  std::printf("--------------------------------------------------------------"
              "-------\n");

  FILE *Json = std::fopen("BENCH_parallel.json", "w");
  if (Json)
    std::fprintf(Json, "[\n");

  std::vector<uint8_t> Reference;
  double BaseMs = 0;
  bool First = true;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    RewriteOptions RO;
    RO.Patch.Spec.Kind = core::TrampolineKind::Empty;
    RO.ExtraReserved.push_back(lowfat::heapReservation());
    RO.withJobs(Jobs);

    auto T0 = std::chrono::steady_clock::now();
    auto Out = rewrite(W.Image, Locs, RO);
    auto T1 = std::chrono::steady_clock::now();
    if (!Out.isOk()) {
      std::printf("jobs=%u rewrite error: %s\n", Jobs, Out.reason().c_str());
      return 1;
    }
    std::vector<uint8_t> Bytes = elf::write(Out->Rewritten);
    if (Jobs == 1) {
      Reference = std::move(Bytes);
    } else if (Bytes != Reference) {
      std::printf("FATAL: jobs=%u output differs from jobs=1\n", Jobs);
      return 1;
    }

    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
    if (Jobs == 1)
      BaseMs = Ms;
    double SitesPerSec = Locs.empty() ? 0 : 1000.0 * Locs.size() / Ms;
    std::printf("%6u %8zu %10.1f %10.1f %10.1f %12.0f %7.2fx\n", Jobs,
                Out->ShardCount, Ms, Out->Profile.ms("patch"),
                Out->Profile.ms("merge"), SitesPerSec, BaseMs / Ms);
    if (Json) {
      std::fprintf(
          Json,
          "%s  {\"bench\": \"parallel\", \"jobs\": %u, \"hw_threads\": %u,\n"
          "   \"sites\": %zu, \"shards\": %zu, \"shards_redone\": %zu,\n"
          "   \"total_ms\": %.2f, \"patch_ms\": %.2f, \"merge_ms\": %.2f,\n"
          "   \"sites_per_sec\": %.0f, \"insns\": %zu, "
          "\"insns_per_sec\": %.0f,\n"
          "   \"peak_rss_kb\": %llu, \"speedup_vs_1\": %.3f,\n"
          "   \"byte_identical\": true, \"metrics\": %s}",
          First ? "" : ",\n", Jobs, HwThreads, Locs.size(), Out->ShardCount,
          Out->ShardsRedone, Ms, Out->Profile.ms("patch"),
          Out->Profile.ms("merge"), SitesPerSec, NumInsns,
          NumInsns == 0 ? 0.0 : 1000.0 * NumInsns / Ms,
          static_cast<unsigned long long>(peakRssKb()), BaseMs / Ms,
          Out->Metrics.toJson().c_str());
      First = false;
    }
  }
  if (Json) {
    std::fprintf(Json, "\n]\n");
    std::fclose(Json);
    std::printf("\nwrote BENCH_parallel.json\n");
  }
  return 0;
}
