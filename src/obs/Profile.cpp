//===- obs/Profile.cpp ----------------------------------------*- C++ -*-===//

#include "obs/Profile.h"

#include "obs/JsonWriter.h"
#include "support/Format.h"

#include <cassert>
#include <cmath>

using namespace e9;
using namespace e9::obs;

void ProfileCollector::enter(const char *Name) {
  ProfileNode *Parent = Stack.empty() ? &Root : Stack.back().Node;
  ProfileNode *Node = nullptr;
  for (ProfileNode &C : Parent->Children)
    if (C.Name == Name) {
      Node = &C;
      break;
    }
  if (!Node) {
    ProfileNode Fresh;
    Fresh.Name = Name;
    Fresh.Shard = ShardId;
    Parent->Children.push_back(std::move(Fresh));
    Node = &Parent->Children.back();
  }
  Stack.push_back(Frame{Node, Clock::now()});
}

void ProfileCollector::exit() {
  assert(!Stack.empty() && "span exit without a matching enter");
  Frame F = Stack.back();
  Stack.pop_back();
  Clock::time_point Now = Clock::now();
  double Ms = std::chrono::duration<double, std::milli>(Now - F.Start).count();
  F.Node->Count += 1;
  F.Node->TotalMs += Ms;
  SpanEvent E;
  E.Name = F.Node->Name;
  E.Shard = ShardId;
  E.StartUs =
      std::chrono::duration<double, std::micro>(F.Start - Epoch).count();
  E.DurUs = Ms * 1000.0;
  Events.push_back(std::move(E));
}

void ProfileCollector::graft(const char *Name, int Shard,
                             ProfileNode &&SubRoot,
                             std::vector<SpanEvent> &&SubEvents,
                             double TotalMs) {
  ProfileNode *Parent = Stack.empty() ? &Root : Stack.back().Node;
  ProfileNode Node;
  Node.Name = Name;
  Node.Shard = Shard;
  Node.Count = 1;
  Node.TotalMs = TotalMs;
  Node.Children = std::move(SubRoot.Children);
  Parent->Children.push_back(std::move(Node));
  Events.insert(Events.end(), std::make_move_iterator(SubEvents.begin()),
                std::make_move_iterator(SubEvents.end()));
}

namespace {

void finalizeSelf(ProfileNode &N) {
  double ChildMs = 0;
  for (ProfileNode &C : N.Children) {
    finalizeSelf(C);
    ChildMs += C.TotalMs;
  }
  N.SelfMs = N.TotalMs > ChildMs ? N.TotalMs - ChildMs : 0.0;
}

} // namespace

ProfileNode ProfileCollector::takeTree(double RootTotalMs) {
  assert(Stack.empty() && "takeTree with open spans");
  Root.Shard = ShardId;
  Root.Count = 1;
  Root.TotalMs = RootTotalMs;
  finalizeSelf(Root);
  return std::move(Root);
}

namespace {

void renderNode(std::string &Out, const ProfileNode &N, bool IncludeTimes) {
  Out += "{\"name\":\"";
  Out += jsonEscape(N.Name);
  Out += "\",";
  if (N.Shard >= 0)
    Out += format("\"shard\":%d,", N.Shard);
  Out += format("\"count\":%llu,", static_cast<unsigned long long>(N.Count));
  if (IncludeTimes)
    Out += format("\"total_ms\":%.3f,\"self_ms\":%.3f,", N.TotalMs, N.SelfMs);
  Out += "\"children\":[";
  for (size_t I = 0; I != N.Children.size(); ++I) {
    if (I)
      Out.push_back(',');
    renderNode(Out, N.Children[I], IncludeTimes);
  }
  Out += "]}";
}

} // namespace

std::string obs::profileToJson(const ProfileNode &Root, bool IncludeTimes) {
  std::string Out;
  renderNode(Out, Root, IncludeTimes);
  return Out;
}

std::string obs::profileToChromeTrace(const std::vector<SpanEvent> &Events) {
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t I = 0; I != Events.size(); ++I) {
    const SpanEvent &E = Events[I];
    if (I)
      Out.push_back(',');
    Out += "{\"ph\":\"X\",\"name\":\"";
    Out += jsonEscape(E.Name);
    Out += format("\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\"dur\":%.1f",
                  E.Shard + 1, E.StartUs, E.DurUs);
    if (E.Shard >= 0)
      Out += format(",\"args\":{\"shard\":%d}", E.Shard);
    Out += "}";
  }
  Out += "]}";
  return Out;
}

namespace {

void renderCollapsed(std::string &Out, const ProfileNode &N,
                     const std::string &Prefix) {
  std::string Frame = N.Name.empty() ? std::string("rewrite") : N.Name;
  if (N.Shard >= 0)
    Frame += format("[%d]", N.Shard);
  std::string Path = Prefix.empty() ? Frame : Prefix + ";" + Frame;
  long long SelfUs = std::llround(N.SelfMs * 1000.0);
  Out += Path;
  Out += format(" %lld\n", SelfUs < 0 ? 0 : SelfUs);
  for (const ProfileNode &C : N.Children)
    renderCollapsed(Out, C, Path);
}

} // namespace

std::string obs::profileToCollapsed(const ProfileNode &Root) {
  std::string Out;
  renderCollapsed(Out, Root, std::string());
  return Out;
}
