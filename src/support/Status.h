//===- support/Status.h - Lightweight error propagation -------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Status/Result types used for recoverable errors throughout the
/// library. Exceptions and RTTI are not used; programmatic errors are
/// handled with assert()/unreachable instead.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_STATUS_H
#define E9_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace e9 {

/// Result of a fallible operation with a human-readable reason on failure.
class Status {
public:
  /// Creates a success value.
  static Status ok() { return Status(); }

  /// Creates a failure value carrying \p Reason.
  static Status error(std::string Reason) {
    Status S;
    S.Failed = true;
    S.Reason = std::move(Reason);
    return S;
  }

  /// Returns true when the operation succeeded.
  bool isOk() const { return !Failed; }

  explicit operator bool() const { return isOk(); }

  /// Returns the failure reason; empty for success values.
  const std::string &reason() const { return Reason; }

private:
  bool Failed = false;
  std::string Reason;
};

/// A value-or-error wrapper in the spirit of llvm::Expected, without the
/// checked-error machinery (errors are plain strings).
template <typename T> class Result {
public:
  Result(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure result from a Status; \p S must be an error.
  Result(Status S) : Err(std::move(S)) {
    assert(!Err->isOk() && "Result error constructed from a success Status");
  }

  static Result<T> error(std::string Reason) {
    return Result<T>(Status::error(std::move(Reason)));
  }

  bool isOk() const { return Value.has_value(); }
  explicit operator bool() const { return isOk(); }

  /// Returns the contained value; only valid when isOk().
  T &operator*() {
    assert(isOk() && "dereferencing a failed Result");
    return *Value;
  }
  const T &operator*() const {
    assert(isOk() && "dereferencing a failed Result");
    return *Value;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// Returns the failure reason; empty for success values (mirrors
  /// Status::reason(), so error paths can forward it unconditionally).
  const std::string &reason() const {
    if (isOk()) {
      static const std::string Empty;
      return Empty;
    }
    return Err->reason();
  }

  /// Returns the whole state as a Status (ok or the stored error).
  Status status() const { return isOk() ? Status::ok() : *Err; }

  /// Moves the error out; only valid when !isOk().
  Status takeError() {
    assert(!isOk() && "taking the error of a successful Result");
    return std::move(*Err);
  }

  /// Moves the value out. The Result becomes an observable consumed
  /// state: isOk() is false afterwards and reason() says so, instead of
  /// the silent moved-from limbo that hid double-take bugs.
  T take() {
    assert(isOk() && "taking the value of a failed Result");
    T V = std::move(*Value);
    Value.reset();
    Err = Status::error("value already taken from Result");
    return V;
  }

private:
  std::optional<T> Value;
  std::optional<Status> Err;
};

/// Marks unreachable program points; aborts with a message when hit.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace e9

#define e9_unreachable(Msg)                                                    \
  ::e9::unreachableInternal(Msg, __FILE__, __LINE__)

/// Evaluates \p Expr (a Result<T> expression), propagates a failure as a
/// Status error (which converts implicitly to any Result<U>), and binds
/// the taken value to \p Var otherwise:
///
/// \code
///   E9_TRY(Img, elf::readFile(Path));   // Img is the parsed elf::Image
/// \endcode
#define E9_TRY(Var, Expr)                                                      \
  auto Var##_e9try = (Expr);                                                   \
  if (!Var##_e9try)                                                            \
    return ::e9::Status::error(Var##_e9try.reason());                          \
  auto Var = Var##_e9try.take()

/// Same for a Status expression: propagates failure, no value to bind.
#define E9_TRY_STATUS(Expr)                                                    \
  do {                                                                         \
    if (::e9::Status E9TryStatus_ = (Expr); !E9TryStatus_)                     \
      return E9TryStatus_;                                                     \
  } while (false)

#endif // E9_SUPPORT_STATUS_H
