# Empty compiler generated dependencies file for e9tool.
# This may be replaced when dependencies are built.
