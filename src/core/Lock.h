//===- core/Lock.h - Byte lock state (strategy S1) -------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reverse-order patching strategy (paper §3.4) maintains a Boolean
/// lock state over instruction bytes: a byte is locked once it has been
/// (1) modified by a patch, or (2) used as part of a punned jump encoding.
/// Tactics may only modify unlocked bytes. A separate "modified" set
/// distinguishes bytes whose *values* changed (eviction candidates must
/// still be original instructions).
///
//===----------------------------------------------------------------------===//

#ifndef E9_CORE_LOCK_H
#define E9_CORE_LOCK_H

#include "support/IntervalSet.h"

namespace e9 {
namespace core {

/// Byte-granular lock + modification tracking.
class LockState {
public:
  bool isLocked(uint64_t Addr) const { return Locked.contains(Addr); }
  bool anyLocked(uint64_t Lo, uint64_t Hi) const {
    return Locked.overlaps(Lo, Hi);
  }
  void lock(uint64_t Lo, uint64_t Hi) { Locked.insert(Lo, Hi); }
  void unlock(uint64_t Lo, uint64_t Hi) { Locked.erase(Lo, Hi); }

  /// Locks [Lo, Hi), appending only the *newly* locked subranges to
  /// \p Added so a transaction rollback never unlocks older locks.
  /// Templated so the patcher's arena-backed journals work unchanged.
  template <typename Vec>
  void lockRecordNew(uint64_t Lo, uint64_t Hi, Vec &Added) {
    size_t Mark = Added.size();
    Locked.missingRanges(Lo, Hi, Added);
    for (size_t I = Mark; I != Added.size(); ++I)
      Locked.insert(Added[I]);
  }

  /// Same for the modified set.
  template <typename Vec>
  void markModifiedRecordNew(uint64_t Lo, uint64_t Hi, Vec &Added) {
    size_t Mark = Added.size();
    Modified.missingRanges(Lo, Hi, Added);
    for (size_t I = Mark; I != Added.size(); ++I)
      Modified.insert(Added[I]);
  }

  bool anyModified(uint64_t Lo, uint64_t Hi) const {
    return Modified.overlaps(Lo, Hi);
  }
  void markModified(uint64_t Lo, uint64_t Hi) { Modified.insert(Lo, Hi); }
  void unmarkModified(uint64_t Lo, uint64_t Hi) { Modified.erase(Lo, Hi); }

  uint64_t lockedBytes() const { return Locked.totalSize(); }

  /// The full modified set (exported so the verifier can distinguish
  /// intentionally rewritten bytes from stray writes).
  const IntervalSet &modified() const { return Modified; }

private:
  IntervalSet Locked;
  IntervalSet Modified;
};

} // namespace core
} // namespace e9

#endif // E9_CORE_LOCK_H
