//===- support/IntervalSet.h - Disjoint interval bookkeeping --*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ordered set of disjoint, half-open [Lo, Hi) address intervals with
/// coalescing insert and free-gap queries. This is the workhorse of the
/// trampoline address allocator: reserved space is an IntervalSet, and
/// punning constraints become "find a free gap of size N inside [A, B)".
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_INTERVALSET_H
#define E9_SUPPORT_INTERVALSET_H

#include <cstdint>
#include <iterator>
#include <map>
#include <optional>
#include <vector>

namespace e9 {

/// A half-open interval of 64-bit addresses.
struct Interval {
  uint64_t Lo = 0;
  uint64_t Hi = 0; ///< One past the last address; Lo == Hi means empty.

  bool empty() const { return Lo >= Hi; }
  uint64_t size() const { return empty() ? 0 : Hi - Lo; }
  bool contains(uint64_t Addr) const { return Addr >= Lo && Addr < Hi; }

  /// Returns the intersection with \p Other (possibly empty).
  Interval intersect(const Interval &Other) const {
    Interval R;
    R.Lo = Lo > Other.Lo ? Lo : Other.Lo;
    R.Hi = Hi < Other.Hi ? Hi : Other.Hi;
    if (R.Lo > R.Hi)
      R.Hi = R.Lo;
    return R;
  }

  bool operator==(const Interval &Other) const {
    return Lo == Other.Lo && Hi == Other.Hi;
  }
};

/// Maintains a set of disjoint [Lo, Hi) intervals, coalescing on insert.
class IntervalSet {
public:
  /// Inserts [Lo, Hi), merging with any overlapping or adjacent intervals.
  void insert(uint64_t Lo, uint64_t Hi);
  void insert(const Interval &I) { insert(I.Lo, I.Hi); }

  /// Returns true if \p Addr lies inside some interval.
  bool contains(uint64_t Addr) const;

  /// Returns true if [Lo, Hi) overlaps any interval in the set.
  bool overlaps(uint64_t Lo, uint64_t Hi) const;

  /// Removes [Lo, Hi) from the set, splitting intervals as needed.
  void erase(uint64_t Lo, uint64_t Hi);

  /// Appends to \p Out the subranges of [Lo, Hi) NOT covered by the set
  /// (the complement restricted to the query range). Templated on the
  /// container so arena-backed vectors (support/Arena.h) work too.
  template <typename Vec>
  void missingRanges(uint64_t Lo, uint64_t Hi, Vec &Out) const {
    if (Lo >= Hi)
      return;
    uint64_t Cursor = Lo;
    auto It = Map.upper_bound(Lo);
    if (It != Map.begin()) {
      auto Prev = std::prev(It);
      if (Prev->second > Cursor)
        Cursor = Prev->second;
    }
    while (Cursor < Hi) {
      if (It == Map.end() || It->first >= Hi) {
        Out.push_back(Interval{Cursor, Hi});
        return;
      }
      if (It->first > Cursor)
        Out.push_back(Interval{Cursor, It->first});
      Cursor = It->second;
      ++It;
    }
  }

  /// Finds the lowest gap of at least \p Size bytes that lies entirely
  /// within [Bound.Lo, Bound.Hi) and does not overlap any interval.
  /// Returns the gap start address, or nullopt when no such gap exists.
  std::optional<uint64_t> findFreeGap(const Interval &Bound,
                                      uint64_t Size) const;

  /// Finds the lowest address A with A in [StartBound.Lo, StartBound.Hi)
  /// such that [A, A+Size) does not overlap any interval. Unlike
  /// findFreeGap, only the *start* is bounded — the extent may run past
  /// StartBound.Hi.
  std::optional<uint64_t> findFreeStart(const Interval &StartBound,
                                        uint64_t Size) const;

  /// Number of disjoint intervals currently stored.
  size_t intervalCount() const { return Map.size(); }

  /// Sum of sizes of all stored intervals.
  uint64_t totalSize() const;

  /// Iteration over (Lo -> Hi) pairs in address order.
  auto begin() const { return Map.begin(); }
  auto end() const { return Map.end(); }

  void clear() { Map.clear(); }

private:
  std::map<uint64_t, uint64_t> Map; ///< Lo -> Hi, disjoint and sorted.
};

} // namespace e9

#endif // E9_SUPPORT_INTERVALSET_H
