//===- tests/vm_semantics_test.cpp - interpreter correctness --*- C++ -*-===//
//
// Deep checks of the interpreter's integer/flag semantics, including a
// differential oracle: random register-only instruction sequences are
// executed both by the VM and natively on the host CPU (we are on x86_64)
// and the results must agree bit-for-bit. setcc folds the flags into the
// data flow so flag bugs surface in register values.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "vm/Vm.h"
#include "x86/Assembler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sys/mman.h>

using namespace e9;
using namespace e9::vm;
using namespace e9::x86;

namespace {

constexpr uint64_t CodeBase = 0x401000;

/// Runs \p Code in the VM with rdi/rsi preloaded; returns rax.
uint64_t runInVm(const std::vector<uint8_t> &Code, uint64_t Rdi,
                 uint64_t Rsi, bool &Ok) {
  Vm V;
  Ok = V.Mem.mapZero(CodeBase & ~PageMask, 0x3000,
                     PermR | PermW | PermX)
           .isOk() &&
       V.Mem.write(CodeBase, Code.data(), Code.size()).isOk() &&
       V.Mem.mapZero(0x7ffe0000, 0x10000, PermR | PermW).isOk();
  if (!Ok)
    return 0;
  V.Core.rsp() = 0x7ffe0000u + 0x10000 - 64;
  Ok = V.push64(ExitAddress).isOk();
  V.Core.Rip = CodeBase;
  V.Core.Gpr[7] = Rdi;
  V.Core.Gpr[6] = Rsi;
  auto R = V.run(100000);
  Ok = Ok && R.Kind == RunResult::Exit::Finished;
  return V.Core.Gpr[0];
}

/// Native oracle: copies \p Code into an executable page and calls it as
/// uint64_t(*)(uint64_t, uint64_t). Returns false when W^X policy forbids
/// the mapping (test skips).
class NativeRunner {
public:
  NativeRunner() {
    Page = mmap(nullptr, 4096, PROT_READ | PROT_WRITE | PROT_EXEC,
                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (Page == MAP_FAILED)
      Page = nullptr;
  }
  ~NativeRunner() {
    if (Page)
      munmap(Page, 4096);
  }
  bool available() const { return Page != nullptr; }

  uint64_t run(const std::vector<uint8_t> &Code, uint64_t A, uint64_t B) {
    std::memcpy(Page, Code.data(), Code.size());
    __builtin___clear_cache(static_cast<char *>(Page),
                            static_cast<char *>(Page) + Code.size());
    auto Fn = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(Page);
    return Fn(A, B);
  }

private:
  void *Page = nullptr;
};

/// Emits one random register-only instruction over {rax, rdi, rsi, rcx,
/// rdx, r8}. Flag-consuming setcc/cmov instructions fold the flags into
/// the register data flow.
void emitRandomOp(Assembler &A, Rng &R) {
  static const Reg Regs[] = {Reg::RAX, Reg::RDI, Reg::RSI,
                             Reg::RCX, Reg::RDX, Reg::R8};
  auto Pick = [&] { return Regs[R.below(std::size(Regs))]; };
  const OpSize Sizes[] = {OpSize::B8, OpSize::B16, OpSize::B32, OpSize::B64};
  OpSize S = Sizes[R.below(4)];
  switch (R.below(8)) {
  case 0:
    A.aluRegReg(S, static_cast<Alu>(R.below(8)), Pick(), Pick());
    break;
  case 1:
    A.aluRegImm(S, static_cast<Alu>(R.below(8)), Pick(),
                static_cast<int32_t>(R.next()));
    break;
  case 2:
    A.movRegReg(S, Pick(), Pick());
    break;
  case 3:
    A.imulRegReg(Pick(), Pick());
    break;
  case 4:
    A.shiftRegImm(S, R.chance(33)   ? Shift::Shl
                     : R.chance(50) ? Shift::Shr
                                    : Shift::Sar,
                  Pick(), static_cast<uint8_t>(R.below(66)));
    break;
  case 5: { // setcc r8 (folds flags into data)
    // Define the flags first: shifts/imul leave some flags
    // architecturally undefined, so a consumer may not follow them.
    A.aluRegReg(OpSize::B64, static_cast<Alu>(R.below(8)), Pick(), Pick());
    Reg Rg = Pick();
    uint8_t Cc = static_cast<uint8_t>(R.below(16));
    uint8_t Rex = 0x40 | (regNeedsRexBit(Rg) ? 1 : 0);
    A.raw({Rex, 0x0f, static_cast<uint8_t>(0x90 | Cc),
           static_cast<uint8_t>(0xc0 | (regEncoding(Rg) & 7))});
    break;
  }
  case 6: { // cmovcc r64 (flags defined first, as above)
    A.aluRegReg(OpSize::B64, static_cast<Alu>(R.below(8)), Pick(), Pick());
    Reg Dst = Pick(), Src = Pick();
    uint8_t Cc = static_cast<uint8_t>(R.below(16));
    uint8_t Rex = 0x48 | (regNeedsRexBit(Dst) ? 4 : 0) |
                  (regNeedsRexBit(Src) ? 1 : 0);
    A.raw({Rex, 0x0f, static_cast<uint8_t>(0x40 | Cc),
           static_cast<uint8_t>(0xc0 | ((regEncoding(Dst) & 7) << 3) |
                                (regEncoding(Src) & 7))});
    break;
  }
  default:
    A.testRegReg(S, Pick(), Pick());
    break;
  }
}

std::vector<uint8_t> randomSequence(uint64_t Seed, unsigned Len) {
  Rng R(Seed);
  Assembler A(CodeBase);
  // Deterministic starting state for the scratch registers the ABI does
  // not define (rax/rcx/rdx/r8 are caller-save; rdi/rsi carry inputs).
  A.movRegImm64(Reg::RAX, 0x0123456789abcdefULL);
  A.movRegImm64(Reg::RCX, 0x0f0f0f0f12345678ULL);
  A.movRegImm64(Reg::RDX, 0xfedcba9876543210ULL);
  A.movRegImm64(Reg::R8, 0x00ff00ff00ff00ffULL);
  // Normalize the flags: the native entry state is arbitrary.
  A.testRegReg(OpSize::B64, Reg::RAX, Reg::RAX);
  for (unsigned I = 0; I != Len; ++I)
    emitRandomOp(A, R);
  // Mix everything into rax so any divergence is observable.
  A.aluRegReg(OpSize::B64, Alu::Xor, Reg::RAX, Reg::RCX);
  A.aluRegReg(OpSize::B64, Alu::Add, Reg::RAX, Reg::RDX);
  A.aluRegReg(OpSize::B64, Alu::Xor, Reg::RAX, Reg::RSI);
  A.aluRegReg(OpSize::B64, Alu::Add, Reg::RAX, Reg::RDI);
  A.aluRegReg(OpSize::B64, Alu::Xor, Reg::RAX, Reg::R8);
  A.ret();
  EXPECT_TRUE(A.resolveAll());
  return A.take();
}

} // namespace

class DifferentialVsNative : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialVsNative, RandomRegisterSequences) {
  NativeRunner Native;
  if (!Native.available())
    GTEST_SKIP() << "no executable mapping available";

  Rng Seeds(GetParam());
  for (int Case = 0; Case != 60; ++Case) {
    uint64_t Seed = Seeds.next();
    std::vector<uint8_t> Code = randomSequence(Seed, 24);
    uint64_t Rdi = Seeds.next();
    uint64_t Rsi = Seeds.next();
    bool Ok = false;
    uint64_t VmVal = runInVm(Code, Rdi, Rsi, Ok);
    ASSERT_TRUE(Ok) << "VM failed on seed " << Seed;
    uint64_t NativeVal = Native.run(Code, Rdi, Rsi);
    ASSERT_EQ(VmVal, NativeVal) << "divergence on seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialVsNative,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- Targeted semantics ------------------------------------------------------

namespace {

/// Assembles F into a program, runs it, returns final Cpu.
Cpu runSnippet(void (*F)(Assembler &), uint64_t Rdi = 0, uint64_t Rsi = 0) {
  Assembler A(CodeBase);
  F(A);
  EXPECT_TRUE(A.resolveAll());
  bool Ok = false;
  Vm V;
  auto Code = A.take();
  EXPECT_TRUE(
      V.Mem.mapZero(CodeBase & ~PageMask, 0x3000, PermR | PermW | PermX)
          .isOk());
  EXPECT_TRUE(V.Mem.write(CodeBase, Code.data(), Code.size()).isOk());
  EXPECT_TRUE(V.Mem.mapZero(0x7ffe0000, 0x10000, PermR | PermW).isOk());
  V.Core.rsp() = 0x7ffe0000u + 0x10000 - 64;
  EXPECT_TRUE(V.push64(ExitAddress).isOk());
  V.Core.Rip = CodeBase;
  V.Core.Gpr[7] = Rdi;
  V.Core.Gpr[6] = Rsi;
  auto R = V.run(100000);
  Ok = R.Kind == RunResult::Exit::Finished;
  EXPECT_TRUE(Ok) << R.Error;
  return V.Core;
}

} // namespace

TEST(VmSemantics, AdcChainImplements128BitAdd) {
  // 0xffffffffffffffff + 1 with carry into the high half.
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 0xffffffffffffffffULL); // lo a
    A.movRegImm64(Reg::RDX, 0x1);                   // hi a
    A.movRegImm64(Reg::RCX, 1);                     // lo b
    A.movRegImm64(Reg::R8, 0x2);                    // hi b
    A.aluRegReg(OpSize::B64, Alu::Add, Reg::RAX, Reg::RCX);
    A.aluRegReg(OpSize::B64, Alu::Adc, Reg::RDX, Reg::R8);
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 0u);
  EXPECT_EQ(C.Gpr[2], 4u); // 1 + 2 + carry
}

TEST(VmSemantics, SbbBorrowChain) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 0);
    A.movRegImm64(Reg::RDX, 5);
    A.aluRegImm(OpSize::B64, Alu::Sub, Reg::RAX, 1); // borrow out
    A.aluRegImm(OpSize::B64, Alu::Sbb, Reg::RDX, 0); // consumes borrow
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 0xffffffffffffffffULL);
  EXPECT_EQ(C.Gpr[2], 4u);
}

TEST(VmSemantics, ShiftByZeroPreservesFlags) {
  Cpu C = runSnippet([](Assembler &A) {
    A.aluRegReg(OpSize::B64, Alu::Xor, Reg::RAX, Reg::RAX); // ZF=1
    A.movRegImm32(Reg::RCX, 7);
    A.shiftRegImm(OpSize::B64, Shift::Shl, Reg::RCX, 0); // no flag change
    A.ret();
  });
  EXPECT_TRUE(C.ZF);
}

TEST(VmSemantics, MovsxdSignExtends) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm32(Reg::RCX, -5);
    A.raw({0x48, 0x63, 0xc1}); // movsxd rax, ecx
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], static_cast<uint64_t>(-5));
}

TEST(VmSemantics, MulWidensIntoRdx) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 1ull << 63);
    A.movRegImm32(Reg::RCX, 4);
    A.raw({0x48, 0xf7, 0xe1}); // mul rcx
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 0u);
  EXPECT_EQ(C.Gpr[2], 2u); // (2^63 * 4) >> 64
}

TEST(VmSemantics, OneOperandImulSigned) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RAX, static_cast<uint64_t>(-3));
    A.movRegImm64(Reg::RCX, 5);
    A.raw({0x48, 0xf7, 0xe9}); // imul rcx
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], static_cast<uint64_t>(-15));
  EXPECT_EQ(C.Gpr[2], 0xffffffffffffffffULL); // sign extension of -15
}

TEST(VmSemantics, XchgWithMemory) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RBX, 0x7ffe0000);
    A.movMemImm(OpSize::B64, Mem::base(Reg::RBX), 111);
    A.movRegImm32(Reg::RAX, 222);
    A.raw({0x48, 0x87, 0x03}); // xchg [rbx], rax
    A.movRegMem(OpSize::B64, Reg::RCX, Mem::base(Reg::RBX));
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 111u);
  EXPECT_EQ(C.Gpr[1], 222u);
}

TEST(VmSemantics, HighByteRegistersWithoutRex) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 0);
    A.raw({0xb4, 0x5a});       // mov ah, 0x5a
    A.raw({0x88, 0xe3});       // mov bl, ah
    A.ret();
  });
  EXPECT_EQ((C.Gpr[0] >> 8) & 0xff, 0x5au);
  EXPECT_EQ(C.Gpr[3] & 0xff, 0x5au);
}

TEST(VmSemantics, BswapReversesBytes) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 0x0102030405060708ULL);
    A.raw({0x48, 0x0f, 0xc8}); // bswap rax
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 0x0807060504030201ULL);
}

TEST(VmSemantics, RetImmPopsArguments) {
  Cpu C = runSnippet([](Assembler &A) {
    auto Fn = A.createLabel();
    A.pushImm32(0x11);
    A.pushImm32(0x22);
    A.callLabel(Fn);
    A.movRegReg(OpSize::B64, Reg::RCX, Reg::RSP); // record rsp after return
    A.ret();
    A.bind(Fn);
    A.movRegImm32(Reg::RAX, 1);
    A.raw({0xc2, 0x10, 0x00}); // ret 0x10: pops both pushes
  });
  // rsp after ret 0x10 should equal rsp before the two pushes.
  EXPECT_EQ(C.Gpr[1] & 0xfff, (0x7ffe0000u + 0x10000 - 64 - 8) & 0xfff);
}

TEST(VmSemantics, AllConditionCodesAgainstCmp) {
  // cmp 5, 3 (a > b, unsigned and signed).
  struct Case {
    Cond C;
    bool Taken;
  };
  const Case Cases[] = {
      {Cond::O, false}, {Cond::NO, true}, {Cond::B, false},
      {Cond::AE, true}, {Cond::E, false}, {Cond::NE, true},
      {Cond::BE, false}, {Cond::A, true}, {Cond::S, false},
      {Cond::NS, true}, {Cond::L, false}, {Cond::GE, true},
      {Cond::LE, false}, {Cond::G, true},
  };
  for (const Case &K : Cases) {
    Cpu C = runSnippet(
        [](Assembler &A) {
          A.movRegImm32(Reg::RAX, 5);
          A.aluRegImm(OpSize::B64, Alu::Cmp, Reg::RAX, 3);
          A.ret();
        });
    EXPECT_EQ(C.cond(K.C), K.Taken) << "cond " << condName(K.C);
  }
}

TEST(VmSemantics, LoopDecrementsWithoutFlags) {
  Cpu C = runSnippet([](Assembler &A) {
    A.aluRegReg(OpSize::B64, Alu::Xor, Reg::RAX, Reg::RAX); // ZF=1
    A.movRegImm32(Reg::RCX, 5);
    auto L = A.createLabel();
    A.bind(L);
    A.incReg(Reg::RAX); // note: inc preserves CF but sets ZF
    A.loopLabel(L);
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 5u);
  EXPECT_EQ(C.Gpr[1], 0u);
}

TEST(VmSemantics, JrcxzBranchesOnZeroRcx) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm32(Reg::RCX, 0);
    auto Taken = A.createLabel();
    A.jrcxzLabel(Taken);
    A.movRegImm32(Reg::RAX, 111); // skipped
    A.bind(Taken);
    A.movRegImm32(Reg::RBX, 222);
    A.ret();
  });
  EXPECT_NE(C.Gpr[0], 111u);
  EXPECT_EQ(C.Gpr[3], 222u);
}

TEST(VmSemantics, UnsignedDivide) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 1000003);
    A.movRegImm32(Reg::RDX, 0);
    A.movRegImm32(Reg::RCX, 7);
    A.divReg(Reg::RCX);
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 1000003u / 7);
  EXPECT_EQ(C.Gpr[2], 1000003u % 7);
}

TEST(VmSemantics, SignedDivide) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RAX, static_cast<uint64_t>(-1000003));
    A.cqo();
    A.movRegImm32(Reg::RCX, 7);
    A.idivReg(Reg::RCX);
    A.ret();
  });
  EXPECT_EQ(static_cast<int64_t>(C.Gpr[0]), -1000003 / 7);
  EXPECT_EQ(static_cast<int64_t>(C.Gpr[2]), -1000003 % 7);
}

TEST(VmSemantics, DivideByZeroFaults) {
  Assembler A(CodeBase);
  A.movRegImm32(Reg::RDX, 0);
  A.movRegImm32(Reg::RCX, 0);
  A.divReg(Reg::RCX);
  A.ret();
  ASSERT_TRUE(A.resolveAll());
  Vm V;
  auto Code = A.take();
  ASSERT_TRUE(
      V.Mem.mapZero(CodeBase & ~PageMask, 0x3000, PermR | PermW | PermX)
          .isOk());
  ASSERT_TRUE(V.Mem.write(CodeBase, Code.data(), Code.size()).isOk());
  ASSERT_TRUE(V.Mem.mapZero(0x7ffe0000, 0x10000, PermR | PermW).isOk());
  V.Core.rsp() = 0x7ffe0000u + 0x10000 - 64;
  ASSERT_TRUE(V.push64(ExitAddress).isOk());
  V.Core.Rip = CodeBase;
  auto R = V.run(1000);
  EXPECT_EQ(R.Kind, RunResult::Exit::Fault);
  EXPECT_NE(R.Error.find("divide"), std::string::npos);
}

// End-to-end: a displaced loop instruction is emulated by the trampoline
// and the patched program still iterates the right number of times.
TEST(VmSemantics, DisplacedLoopKeepsIterationCount) {
  // Covered at the patcher level too; here we drive the relocation
  // machinery directly: emulate `loop` at a new address and run it.
  Assembler Prog(CodeBase);
  Prog.movRegImm32(Reg::RAX, 0);
  Prog.movRegImm32(Reg::RCX, 4);
  auto L = Prog.createLabel();
  Prog.bind(L);
  Prog.incReg(Reg::RAX);
  Prog.loopLabel(L);
  Prog.ret();
  ASSERT_TRUE(Prog.resolveAll());
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm32(Reg::RAX, 0);
    A.movRegImm32(Reg::RCX, 4);
    auto L2 = A.createLabel();
    A.bind(L2);
    A.incReg(Reg::RAX);
    A.loopLabel(L2);
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 4u);
}

TEST(VmSemantics, RepMovsbCopies) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RSI, 0x7ffe0000);
    A.movMemImm(OpSize::B32, Mem::base(Reg::RSI), 0x04030201);
    A.movRegImm64(Reg::RDI, 0x7ffe0100);
    A.movRegImm32(Reg::RCX, 4);
    A.cld();
    A.repMovsb();
    A.movRegMem(OpSize::B32, Reg::RAX, Mem::base(Reg::RDI, -4));
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0] & 0xffffffff, 0x04030201u);
  EXPECT_EQ(C.Gpr[1], 0u);                  // rcx exhausted
  EXPECT_EQ(C.Gpr[6], 0x7ffe0004u);         // rsi advanced
  EXPECT_EQ(C.Gpr[7], 0x7ffe0104u);         // rdi advanced
}

TEST(VmSemantics, RepStosqFills) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RDI, 0x7ffe0000);
    A.movRegImm64(Reg::RAX, 0x1111111111111111ULL);
    A.movRegImm32(Reg::RCX, 3);
    A.cld();
    A.repStosq();
    A.movRegMem(OpSize::B64, Reg::RBX, Mem::base(Reg::RDI, -8));
    A.ret();
  });
  EXPECT_EQ(C.Gpr[3], 0x1111111111111111ULL);
  EXPECT_EQ(C.Gpr[7], 0x7ffe0000u + 24);
}

TEST(VmSemantics, RepneScasbFindsByte) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RDI, 0x7ffe0000);
    A.movMemImm(OpSize::B8, Mem::base(Reg::RDI, 5), 0x7f); // the needle
    A.movRegImm32(Reg::RAX, 0x7f);
    A.movRegImm32(Reg::RCX, 100);
    A.cld();
    A.raw({0xf2, 0xae}); // repne scasb
    A.ret();
  });
  // rdi stops one past the match at offset 5.
  EXPECT_EQ(C.Gpr[7], 0x7ffe0006u);
  EXPECT_TRUE(C.ZF);
}

TEST(VmSemantics, DirectionFlagReversesStrings) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RDI, 0x7ffe0010);
    A.movRegImm32(Reg::RAX, 0xab);
    A.movRegImm32(Reg::RCX, 4);
    A.raw({0xfd});       // std
    A.raw({0xf3, 0xaa}); // rep stosb, descending
    A.raw({0xfc});       // cld
    A.ret();
  });
  EXPECT_EQ(C.Gpr[7], 0x7ffe0010u - 4);
  EXPECT_FALSE(C.DF);
}

TEST(VmSemantics, PushfqCarriesDF) {
  Cpu C = runSnippet([](Assembler &A) {
    A.raw({0xfd}); // std
    A.pushfq();
    A.raw({0xfc}); // cld
    A.popfq();     // restores DF=1
    A.ret();
  });
  EXPECT_TRUE(C.DF);
}

TEST(VmSemantics, XaddExchangesAndAdds) {
  Cpu C = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RBX, 0x7ffe0000);
    A.movMemImm(OpSize::B64, Mem::base(Reg::RBX), 100);
    A.movRegImm32(Reg::RCX, 7);
    A.lockPrefix();
    A.xaddMemReg(OpSize::B64, Mem::base(Reg::RBX), Reg::RCX);
    A.movRegMem(OpSize::B64, Reg::RAX, Mem::base(Reg::RBX));
    A.ret();
  });
  EXPECT_EQ(C.Gpr[0], 107u); // memory got the sum
  EXPECT_EQ(C.Gpr[1], 100u); // register got the old value
}

TEST(VmSemantics, CmpxchgBothOutcomes) {
  // Success: rax == [mem] -> [mem] = src, ZF=1.
  Cpu C1 = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RBX, 0x7ffe0000);
    A.movMemImm(OpSize::B64, Mem::base(Reg::RBX), 42);
    A.movRegImm32(Reg::RAX, 42);
    A.movRegImm32(Reg::RCX, 99);
    A.cmpxchgMemReg(OpSize::B64, Mem::base(Reg::RBX), Reg::RCX);
    A.movRegMem(OpSize::B64, Reg::RDX, Mem::base(Reg::RBX));
    A.ret();
  });
  EXPECT_TRUE(C1.ZF);
  EXPECT_EQ(C1.Gpr[2], 99u);

  // Failure: rax != [mem] -> rax = [mem], ZF=0.
  Cpu C2 = runSnippet([](Assembler &A) {
    A.movRegImm64(Reg::RBX, 0x7ffe0000);
    A.movMemImm(OpSize::B64, Mem::base(Reg::RBX), 42);
    A.movRegImm32(Reg::RAX, 7);
    A.movRegImm32(Reg::RCX, 99);
    A.cmpxchgMemReg(OpSize::B64, Mem::base(Reg::RBX), Reg::RCX);
    A.movRegMem(OpSize::B64, Reg::RDX, Mem::base(Reg::RBX));
    A.ret();
  });
  EXPECT_FALSE(C2.ZF);
  EXPECT_EQ(C2.Gpr[0], 42u);
  EXPECT_EQ(C2.Gpr[2], 42u);
}
