//===- tests/parallel_test.cpp - sharded parallel rewriting ----*- C++ -*-===//
//
// The hard requirement of the sharded pipeline: the emitted binary is
// byte-identical for every thread count. These tests pin that property
// (including through forced cross-shard allocation clashes), check the
// shard plan invariants, and stress sites packed around the guard
// distance with the strict verifier and VM semantics on.
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "frontend/Shard.h"
#include "lowfat/LowFat.h"
#include "support/ThreadPool.h"
#include "workload/Gen.h"
#include "workload/Run.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

namespace {

Workload mediumWorkload(uint64_t Seed, bool Pie = false) {
  WorkloadConfig C;
  C.Name = "ptest";
  C.Seed = Seed;
  C.Pie = Pie;
  C.NumFuncs = 48;
  C.MainIters = 3;
  return generateWorkload(C);
}

RewriteOptions baseOptions() {
  RewriteOptions O;
  O.Patch.Spec.Kind = core::TrampolineKind::Empty;
  O.ExtraReserved.push_back(lowfat::heapReservation());
  return O;
}

void expectSameStats(const core::PatchStats &A, const core::PatchStats &B) {
  EXPECT_EQ(A.NLoc, B.NLoc);
  for (size_t I = 0; I != 7; ++I) {
    EXPECT_EQ(A.Count[I], B.Count[I]) << "tactic " << I;
    EXPECT_EQ(A.ReasonCount[I], B.ReasonCount[I]) << "reason " << I;
  }
  EXPECT_EQ(A.Evictions, B.Evictions);
  EXPECT_EQ(A.Rescued, B.Rescued);
  EXPECT_EQ(A.AllocRetries, B.AllocRetries);
}

} // namespace

//===----------------------------------------------------------------------===//
// Shard plan invariants
//===----------------------------------------------------------------------===//

TEST(ShardPlan, CoversAllSitesContiguously) {
  std::vector<uint64_t> Sites;
  for (uint64_t I = 0; I != 100; ++I)
    Sites.push_back(0x401000 + I * 200); // Every gap is cut-eligible.
  ShardPolicy P;
  P.MinSitesPerShard = 10;
  P.MaxShards = 32;
  std::vector<Shard> Plan = planShards(Sites, P);
  ASSERT_FALSE(Plan.empty());
  size_t Next = 0;
  for (const Shard &S : Plan) {
    EXPECT_EQ(S.FirstSite, Next);
    EXPECT_GE(S.NumSites, 1u);
    EXPECT_EQ(S.LoAddr, Sites[S.FirstSite]);
    EXPECT_EQ(S.HiAddr, Sites[S.FirstSite + S.NumSites - 1]);
    Next = S.FirstSite + S.NumSites;
  }
  EXPECT_EQ(Next, Sites.size());
  EXPECT_EQ(Plan.size(), 10u); // 100 sites / target 10.
}

TEST(ShardPlan, CutsOnlyAtGuardDistance) {
  // Sites 0..9 packed tighter than the guard, then a wide gap, then more.
  std::vector<uint64_t> Sites;
  for (uint64_t I = 0; I != 10; ++I)
    Sites.push_back(0x401000 + I * (ShardGuardDistance - 1));
  for (uint64_t I = 0; I != 10; ++I)
    Sites.push_back(0x500000 + I * (ShardGuardDistance - 1));
  ShardPolicy P;
  P.MinSitesPerShard = 1;
  std::vector<Shard> Plan = planShards(Sites, P);
  ASSERT_EQ(Plan.size(), 2u); // Only the one wide gap is cut-eligible.
  EXPECT_EQ(Plan[0].NumSites, 10u);
  EXPECT_EQ(Plan[1].NumSites, 10u);
  for (size_t K = 1; K != Plan.size(); ++K)
    EXPECT_GE(Plan[K].LoAddr - Plan[K - 1].HiAddr, ShardGuardDistance);
}

TEST(ShardPlan, MaxShardsBoundsTheDecomposition) {
  std::vector<uint64_t> Sites;
  for (uint64_t I = 0; I != 1000; ++I)
    Sites.push_back(0x401000 + I * 4096);
  ShardPolicy P;
  P.MinSitesPerShard = 1;
  P.MaxShards = 4;
  std::vector<Shard> Plan = planShards(Sites, P);
  EXPECT_LE(Plan.size(), 4u);
  EXPECT_GE(Plan.size(), 2u);
}

TEST(ShardPlan, EmptyAndSingleton) {
  ShardPolicy P;
  EXPECT_TRUE(planShards({}, P).empty());
  std::vector<Shard> One = planShards({0x401000}, P);
  ASSERT_EQ(One.size(), 1u);
  EXPECT_EQ(One[0].NumSites, 1u);
}

//===----------------------------------------------------------------------===//
// Byte-identical output across thread counts
//===----------------------------------------------------------------------===//

TEST(Parallel, ByteIdenticalAcrossJobs) {
  for (bool Pie : {false, true}) {
    Workload W = mediumWorkload(1234, Pie);
    DisasmResult D = linearDisassemble(W.Image);
    std::vector<uint64_t> Locs = selectJumps(D.Insns);
    ASSERT_GT(Locs.size(), 50u);

    // Tracing rides along on every run: the trace must be byte-identical
    // across thread counts too (and the per-shard buffers give TSan a
    // workout under -DE9_SANITIZE=thread).
    RewriteOptions Opts = baseOptions().withStrict().withTrace();
    Opts.Parallel.Sharding.MinSitesPerShard = 8; // Force a multi-shard plan.

    std::vector<uint8_t> Reference;
    std::vector<std::string> RefTrace;
    core::PatchStats RefStats;
    size_t RefShards = 0, RefRedone = 0;
    for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
      Opts.Parallel.Jobs = Jobs;
      auto Out = rewrite(W.Image, Locs, Opts);
      ASSERT_TRUE(Out.isOk()) << "jobs=" << Jobs << ": " << Out.reason();
      EXPECT_EQ(Out->JobsUsed, Jobs);
      EXPECT_FALSE(Out->Trace.empty());
      std::vector<uint8_t> Bytes = elf::write(Out->Rewritten);
      if (Jobs == 1) {
        EXPECT_GT(Out->ShardCount, 1u);
        Reference = std::move(Bytes);
        RefTrace = std::move(Out->Trace);
        RefStats = Out->Stats;
        RefShards = Out->ShardCount;
        RefRedone = Out->ShardsRedone;
        continue;
      }
      EXPECT_EQ(Bytes, Reference) << "jobs=" << Jobs << " pie=" << Pie;
      EXPECT_EQ(Out->Trace, RefTrace) << "jobs=" << Jobs << " pie=" << Pie;
      expectSameStats(Out->Stats, RefStats);
      EXPECT_EQ(Out->ShardCount, RefShards);
      EXPECT_EQ(Out->ShardsRedone, RefRedone);
    }
  }
}

// The zero-copy mmap writeFile() path must emit exactly the bytes of the
// in-memory write() serialization, at every thread count.
TEST(Parallel, MmapWriteFileByteIdenticalAcrossJobs) {
  Workload W = mediumWorkload(4321, /*Pie=*/true);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);
  RewriteOptions Opts = baseOptions();
  Opts.Parallel.Sharding.MinSitesPerShard = 8;

  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    Opts.Parallel.Jobs = Jobs;
    auto Out = rewrite(W.Image, Locs, Opts);
    ASSERT_TRUE(Out.isOk()) << "jobs=" << Jobs << ": " << Out.reason();

    std::vector<uint8_t> InMemory = elf::write(Out->Rewritten);
    std::string Path = ::testing::TempDir() + "/e9_mmap_jobs.bin";
    ASSERT_TRUE(elf::writeFile(Out->Rewritten, Path).isOk());

    std::ifstream In(Path, std::ios::binary);
    ASSERT_TRUE(In.good());
    std::vector<uint8_t> OnDisk((std::istreambuf_iterator<char>(In)),
                                std::istreambuf_iterator<char>());
    EXPECT_EQ(OnDisk.size(), elf::writtenSize(Out->Rewritten));
    EXPECT_EQ(OnDisk, InMemory) << "jobs=" << Jobs;
    std::remove(Path.c_str());
  }
}

TEST(Parallel, ForcedWindowCollisionsStayDeterministic) {
  // WindowStride = 0 points every shard k > 0 at the *same* allocation
  // window, manufacturing cross-shard clashes so the redo pass runs. The
  // output must still be byte-identical for every thread count and pass
  // the strict verifier.
  Workload W = mediumWorkload(77);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);

  RewriteOptions Opts = baseOptions();
  Opts.Parallel.Sharding.MinSitesPerShard = 4;
  Opts.Parallel.Sharding.WindowStride = 0;
  Opts.Verify.Strict = true;

  std::vector<uint8_t> Reference;
  size_t RefRedone = 0;
  for (unsigned Jobs : {1u, 4u}) {
    Opts.Parallel.Jobs = Jobs;
    auto Out = rewrite(W.Image, Locs, Opts);
    ASSERT_TRUE(Out.isOk()) << Out.reason();
    std::vector<uint8_t> Bytes = elf::write(Out->Rewritten);
    if (Jobs == 1) {
      EXPECT_GT(Out->ShardCount, 2u);
      EXPECT_GE(Out->ShardsRedone, 1u) << "stride 0 should force a clash";
      Reference = std::move(Bytes);
      RefRedone = Out->ShardsRedone;
      continue;
    }
    EXPECT_EQ(Bytes, Reference);
    EXPECT_EQ(Out->ShardsRedone, RefRedone);
  }
}

//===----------------------------------------------------------------------===//
// Shard-boundary stress: semantics preserved at maximum shard count
//===----------------------------------------------------------------------===//

TEST(Parallel, ShardBoundaryStressPreservesSemantics) {
  // MinSitesPerShard = 1 cuts at every guard-eligible gap, packing shard
  // boundaries as close to the guard distance as the workload allows.
  Workload W = mediumWorkload(4321);
  DisasmResult D = linearDisassemble(W.Image);
  std::vector<uint64_t> Locs = selectJumps(D.Insns);

  RewriteOptions Opts = baseOptions();
  Opts.Parallel.Sharding.MinSitesPerShard = 1;
  Opts.Parallel.Jobs = 4;
  Opts.Verify.Strict = true;
  auto Out = rewrite(W.Image, Locs, Opts);
  ASSERT_TRUE(Out.isOk()) << Out.reason();
  EXPECT_GT(Out->ShardCount, 4u);

  RunOutcome Orig = runImage(W.Image);
  RunOutcome Re = runImage(Out->Rewritten);
  ASSERT_TRUE(Orig.ok()) << Orig.Result.Error;
  ASSERT_TRUE(Re.ok()) << Re.Result.Error;
  EXPECT_EQ(Orig.Rax, Re.Rax);
  EXPECT_EQ(Orig.DataChecksum, Re.DataChecksum);
}

//===----------------------------------------------------------------------===//
// Thread pool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> Hits(1000);
  parallelFor(Hits.size(), 8,
              [&](size_t I) { Hits[I].fetch_add(1, std::memory_order_relaxed); });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << I;
}

TEST(ThreadPoolTest, InlineWhenSingleJob) {
  // Jobs <= 1 must run inline in index order (no pool spun up).
  std::vector<size_t> Order;
  parallelFor(10, 1, [&](size_t I) { Order.push_back(I); });
  ASSERT_EQ(Order.size(), 10u);
  for (size_t I = 0; I != 10; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPoolTest, WaitDrainsAllSubmissions) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}
