//===- frontend/Runtime.h - Run-support for rewritten binaries -*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between rewritten binaries and the VM: the B0 signal-handler
/// emulation (int3 -> execute the displaced original from the side table)
/// and the counter-segment convenience used by counting instrumentation.
///
//===----------------------------------------------------------------------===//

#ifndef E9_FRONTEND_RUNTIME_H
#define E9_FRONTEND_RUNTIME_H

#include "elf/Image.h"
#include "vm/Vm.h"

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace e9 {
namespace frontend {

/// Default placement of the instrumentation counter segment: low memory,
/// abs32-addressable from anywhere (required by the Counter trampoline).
inline constexpr uint64_t CounterSegmentAddr = 0x200000;
inline constexpr uint64_t CounterSegmentSize = 0x10000;

/// Adds a zero-filled RW data segment for instrumentation counters.
/// Returns the address of the first counter slot.
uint64_t addCounterSegment(elf::Image &Img,
                           uint64_t Addr = CounterSegmentAddr,
                           uint64_t Size = CounterSegmentSize);

/// Installs the B0 trap handler: on int3 at a patched site, invokes
/// \p Callback (may be null) and then emulates the displaced original
/// instruction from \p Table. Sites not in the table fault, invoking
/// \p OnUnknown first — the repair loop's "trap at a non-B0 site"
/// divergence classifier.
void installB0Handler(vm::Vm &V,
                      std::map<uint64_t, std::vector<uint8_t>> Table,
                      std::function<void(uint64_t)> Callback = nullptr,
                      std::function<void(uint64_t)> OnUnknown = nullptr);

} // namespace frontend
} // namespace e9

#endif // E9_FRONTEND_RUNTIME_H
