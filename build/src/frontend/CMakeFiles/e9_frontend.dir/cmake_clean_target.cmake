file(REMOVE_RECURSE
  "libe9_frontend.a"
)
