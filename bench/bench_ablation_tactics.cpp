//===- bench/bench_ablation_tactics.cpp - Experiment E7 --------*- C++ -*-===//
//
// Reproduces the §2.2/§6.1 coverage ablation: overall patching coverage
// with the baseline only (B1+B2), +T1, +T1+T2, and the full suite, for
// both applications over the SPEC-analog set. Paper reference (A1):
// baseline alone covers 42-94% per binary (72.8% overall), Base+T1+T2
// reaches ~90.5%, and T3 closes the gap to ~100%.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace e9::bench;
using namespace e9::workload;

namespace {

double avgCoverage(App Application, bool T1, bool T2, bool T3) {
  double Sum = 0;
  size_t N = 0;
  for (const SuiteEntry &E : specSuite()) {
    EvalOptions O;
    O.MeasureTime = false;
    O.EnableT1 = T1;
    O.EnableT2 = T2;
    O.EnableT3 = T3;
    AppResult R = evalEntry(E, Application, O);
    Sum += R.SuccPct;
    ++N;
  }
  return Sum / static_cast<double>(N);
}

void runApp(const char *Title, App Application) {
  std::printf("\n%s\n", Title);
  std::printf("%-24s %10s\n", "tactics", "Succ%");
  std::printf("-----------------------------------\n");
  std::printf("%-24s %10.2f\n", "B1+B2 (baseline)",
              avgCoverage(Application, false, false, false));
  std::printf("%-24s %10.2f\n", "B1+B2+T1",
              avgCoverage(Application, true, false, false));
  std::printf("%-24s %10.2f\n", "B1+B2+T1+T2",
              avgCoverage(Application, true, true, false));
  std::printf("%-24s %10.2f\n", "B1+B2+T1+T2+T3 (full)",
              avgCoverage(Application, true, true, true));
}

} // namespace

int main() {
  std::printf("E7: coverage ablation over the tactic suite\n");
  std::printf("Paper shape: strictly increasing; T3 contributes the final "
              "jump to ~100%%.\n");
  runApp("A1: jump instrumentation", App::Jumps);
  runApp("A2: heap write instrumentation", App::HeapWrites);
  return 0;
}
