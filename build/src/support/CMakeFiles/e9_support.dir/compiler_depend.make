# Empty compiler generated dependencies file for e9_support.
# This may be replaced when dependencies are built.
