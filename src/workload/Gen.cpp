//===- workload/Gen.cpp ---------------------------------------*- C++ -*-===//

#include "workload/Gen.h"

#include "support/Rng.h"
#include "vm/Hooks.h"
#include "x86/Assembler.h"

#include <cassert>

using namespace e9;
using namespace e9::workload;
using namespace e9::x86;

namespace {

constexpr uint64_t NonPieTextBase = 0x401000;
constexpr uint64_t PieTextBase = 0x555555555000ULL;
constexpr uint64_t DataGap = 0x1000000; ///< Data segment 16 MiB after text.

/// Data-segment layout offsets. The scratch region starts after the
/// function table (page-aligned), so large function counts never collide
/// with program data.
constexpr uint64_t HeapTableOff = 0;
constexpr uint64_t FuncTableOff = 0x400;

uint64_t scratchOff(const WorkloadConfig &Config) {
  uint64_t TableEnd = FuncTableOff + Config.NumFuncs * 8;
  return (TableEnd + 0xfff) / 0x1000 * 0x1000;
}

/// Registers the menu may freely clobber.
const Reg WorkRegs[] = {Reg::RAX, Reg::RCX, Reg::RDX, Reg::RSI, Reg::RDI,
                        Reg::R8,  Reg::R9,  Reg::R10, Reg::R11};

Reg pickReg(Rng &R) { return WorkRegs[R.below(std::size(WorkRegs))]; }

/// Smallest low-fat slot covering Size+redzone (mirrors lowfat layout:
/// 16-byte redzone, 32-byte minimum class).
uint64_t slotSizeFor(uint64_t Size) {
  uint64_t Need = Size + 16;
  uint64_t Slot = 32;
  while (Slot < Need)
    Slot *= 2;
  return Slot;
}

class Generator {
public:
  explicit Generator(const WorkloadConfig &Config)
      : Config(Config), R(Config.Seed),
        TextBase(Config.BaseOverride ? Config.BaseOverride
                 : Config.Pie       ? PieTextBase
                                    : NonPieTextBase),
        A(TextBase) {
    DataBase = TextBase + DataGap;
    ScratchOff = scratchOff(Config);
    assert(Config.NumFuncs >= 2 && "need at least one non-leaf + one leaf");
    assert(Config.HeapObjects >= 1 && Config.HeapObjects <= 120);
  }

  Workload generate();

private:
  unsigned firstLeaf() const {
    unsigned Leaves = std::max(1u, Config.NumFuncs / 4);
    return Config.NumFuncs - Leaves;
  }
  bool isLeaf(unsigned F) const { return F >= firstLeaf(); }

  Mem scratch(int32_t Off) const { return Mem::base(Reg::RBX, Off); }
  int32_t randScratchOff() {
    return static_cast<int32_t>(R.below(Config.DataSize / 8) * 8);
  }

  void emitMenuInsn();
  void emitHeapWrite(bool Overflow);
  void emitShortInsns();
  void emitBlockBody();
  void emitFunction(unsigned F);
  void emitIsland(unsigned I);
  void emitMain();

  WorkloadConfig Config;
  Rng R;
  uint64_t TextBase;
  uint64_t DataBase = 0;
  uint64_t ScratchOff = 0;
  Assembler A;
  std::vector<Assembler::Label> FuncLabels;
  uint64_t BugSiteAddr = 0;
  std::vector<uint64_t> IslandAddrs;
  /// Text offset of the imm64 in main's island-fold load; the first
  /// island's address is patched in after layout is final.
  uint64_t IslandImmOff = 0;
};

void Generator::emitHeapWrite(bool Overflow) {
  // r13 = heap object pointer from the in-data table; then store into it.
  unsigned K = static_cast<unsigned>(R.below(Config.HeapObjects));
  A.movRegMem(OpSize::B64, Reg::R13,
              Mem::base(Reg::R14,
                        static_cast<int32_t>(HeapTableOff + K * 8)));
  int32_t Disp;
  if (Overflow) {
    // One slot past the object: lands exactly on the next slot's redzone.
    Disp = static_cast<int32_t>(slotSizeFor(Config.HeapObjSize) - 16);
    BugSiteAddr = A.currentAddr();
  } else {
    Disp = static_cast<int32_t>(R.below(Config.HeapObjSize / 8) * 8);
  }
  if (!Overflow && R.chance(30))
    A.movMemReg(OpSize::B8, Mem::base(Reg::R13, Disp), pickReg(R));
  else
    A.movMemReg(OpSize::B64, Mem::base(Reg::R13, Disp), pickReg(R));
}

void Generator::emitShortInsns() {
  switch (R.below(4)) {
  case 0: { // balanced 1-byte push/pop pair
    Reg Rg = WorkRegs[R.below(5)]; // classic regs encode in one byte
    A.pushReg(Rg);
    A.popReg(Rg);
    break;
  }
  case 1:
    A.nop();
    break;
  case 2: { // 1-byte xchg rax, r (rcx/rdx/rsi; reserved regs excluded)
    static const uint8_t Xchg[] = {0x91, 0x92, 0x96};
    A.byte(Xchg[R.below(3)]);
    break;
  }
  default: { // 2-byte 32-bit inc
    Reg Rg = WorkRegs[R.below(5)];
    A.raw({0xff, static_cast<uint8_t>(0xc0 | regEncoding(Rg))});
    break;
  }
  }
}

void Generator::emitMenuInsn() {
  uint64_t P = R.below(100);
  uint64_t Acc = Config.LoadPct;
  if (P < Acc) { // load
    if (R.chance(25))
      A.movzxRegMem8(pickReg(R), scratch(randScratchOff()));
    else
      A.movRegMem(OpSize::B64, pickReg(R), scratch(randScratchOff()));
    return;
  }
  Acc += Config.DataWritePct;
  if (P < Acc) { // data-segment write (an A2 patch site)
    switch (R.below(3)) {
    case 0:
      A.movMemReg(OpSize::B64, scratch(randScratchOff()), pickReg(R));
      break;
    case 1:
      A.movMemReg(OpSize::B32, scratch(randScratchOff()), pickReg(R));
      break;
    default:
      A.movMemImm(OpSize::B32, scratch(randScratchOff()),
                  static_cast<int32_t>(R.below(1000)));
      break;
    }
    return;
  }
  Acc += Config.HeapWritePct;
  if (P < Acc) {
    if (R.chance(12)) {
      // Atomic read-modify-write into the scratch region (also an A2
      // patch site; lock-prefixed 0F-map encodings).
      if (R.chance(50))
        A.lockPrefix();
      A.xaddMemReg(OpSize::B64, scratch(randScratchOff()), pickReg(R));
      return;
    }
    emitHeapWrite(/*Overflow=*/false);
    return;
  }
  Acc += Config.ShortInsnPct;
  if (P < Acc) {
    emitShortInsns();
    return;
  }
  Acc += Config.OverlapJunkPct;
  if (P < Acc) { // jmp short +1 over a junk 0xe9: overlap-hazard fodder
    A.raw({0xeb, 0x01});
    A.byte(0xe9);
    return;
  }
  Acc += Config.IndexedWritePct;
  if (P < Acc) { // masked-index SIB store
    Reg Idx = pickReg(R);
    A.aluRegImm(OpSize::B64, Alu::And, Idx,
                static_cast<int32_t>((Config.DataSize - 8) & ~7ull));
    A.movMemReg(OpSize::B64, Mem::baseIndex(Reg::RBX, Idx, 1, 0),
                pickReg(R));
    return;
  }
  // ALU / misc compute.
  switch (R.below(6)) {
  case 0:
    A.movRegImm32(pickReg(R), static_cast<int32_t>(R.below(100000)));
    break;
  case 1:
    A.aluRegReg(OpSize::B64, static_cast<Alu>(R.below(7)), pickReg(R),
                pickReg(R));
    break;
  case 2:
    A.aluRegImm(OpSize::B64, static_cast<Alu>(R.below(7)), pickReg(R),
                static_cast<int32_t>(R.range(-512, 512)));
    break;
  case 3:
    A.imulRegReg(pickReg(R), pickReg(R));
    break;
  case 4:
    A.shiftRegImm(OpSize::B64,
                  R.chance(50) ? Shift::Shr : Shift::Shl, pickReg(R),
                  static_cast<uint8_t>(1 + R.below(7)));
    break;
  default:
    A.leaRegMem(pickReg(R),
                Mem::baseIndex(Reg::RBX, pickReg(R), 1 << R.below(3),
                               static_cast<int32_t>(R.below(64))));
    break;
  }
}

void Generator::emitBlockBody() {
  for (unsigned I = 0; I != Config.InsnsPerBlock; ++I)
    emitMenuInsn();
  // Occasional tight rel8 backward loop (short-jcc/loop pun fodder).
  if (R.chance(20)) {
    A.movRegImm32(Reg::RCX, static_cast<int32_t>(2 + R.below(3)));
    auto L = A.createLabel();
    A.bind(L);
    if (R.chance(40)) {
      A.nop();
      A.loopLabel(L); // 2-byte loop: displaced copies need emulation
    } else {
      A.decReg(Reg::RCX);
      A.jccShortLabel(Cond::NE, L);
    }
  }
  // Occasional unsigned divide (rdx zeroed, divisor nonzero).
  if (R.chance(8)) {
    A.movRegImm32(Reg::RDX, 0);
    A.movRegImm32(Reg::RCX, static_cast<int32_t>(1 + R.below(7)));
    A.divReg(Reg::RCX);
  }
  // Occasional memcpy/memset kernel over the scratch region (2-byte
  // rep-prefixed string instructions: more pun variety).
  if (R.chance(6)) {
    A.leaRegMem(Reg::RSI, scratch(randScratchOff() & 0x7f8));
    A.leaRegMem(Reg::RDI,
                scratch(0x800 + (randScratchOff() & 0x7f8)));
    A.movRegImm32(Reg::RCX, static_cast<int32_t>(8 + R.below(56)));
    if (R.chance(50))
      A.repMovsb();
    else
      A.repStosb();
  }
}

void Generator::emitFunction(unsigned F) {
  A.bind(FuncLabels[F]);
  A.pushReg(Reg::RBP);
  A.movRegReg(OpSize::B64, Reg::RBP, Reg::RSP);
  A.pushReg(Reg::R12);
  A.pushReg(Reg::R13);

  // Call section (executed once per invocation, keeps execution bounded):
  // one chain call to the next non-leaf, plus a few leaf calls.
  if (!isLeaf(F)) {
    if (F + 1 < Config.NumFuncs)
      A.callLabel(FuncLabels[F + 1]);
    for (unsigned C = 0; C != Config.LeafCalls; ++C) {
      unsigned Leaf =
          firstLeaf() +
          static_cast<unsigned>(R.below(Config.NumFuncs - firstLeaf()));
      if (R.chance(40)) {
        // Indirect call through the in-data function table.
        A.movRegMem(OpSize::B64, Reg::RAX,
                    Mem::base(Reg::R14, static_cast<int32_t>(FuncTableOff +
                                                             Leaf * 8)));
        A.callReg(Reg::RAX);
      } else {
        A.callLabel(FuncLabels[Leaf]);
      }
    }
  }

  // Inner loop over the blocks.
  A.movRegImm32(Reg::R12, static_cast<int32_t>(Config.InnerIters));
  auto Head = A.createLabel();
  A.bind(Head);

  std::vector<Assembler::Label> BlockLabels;
  for (unsigned B = 0; B <= Config.BlocksPerFunc; ++B)
    BlockLabels.push_back(A.createLabel());

  for (unsigned B = 0; B != Config.BlocksPerFunc; ++B) {
    A.bind(BlockLabels[B]);
    // Conditional skip over this block's tail half, to a forward label.
    bool Skip = R.chance(55);
    if (Skip) {
      A.aluRegImm(OpSize::B64, Alu::Cmp, pickReg(R),
                  static_cast<int32_t>(R.below(256)));
      Cond C = static_cast<Cond>(R.below(16));
      if (Config.InsnsPerBlock <= 8 && R.chance(50))
        A.jccShortLabel(C, BlockLabels[B + 1]);
      else
        A.jccLabel(C, BlockLabels[B + 1]);
    }
    emitBlockBody();
    if (R.chance(15)) // unconditional hop to the next block
      A.jmpLabel(BlockLabels[B + 1]);
  }
  A.bind(BlockLabels[Config.BlocksPerFunc]);

  A.aluRegImm(OpSize::B64, Alu::Sub, Reg::R12, 1);
  A.jccLabel(Cond::NE, Head);

  A.popReg(Reg::R13);
  A.popReg(Reg::R12);
  A.popReg(Reg::RBP);
  A.ret();
}

void Generator::emitIsland(unsigned I) {
  IslandAddrs.push_back(A.currentAddr());
  // 16 bytes of never-executed data shaped like control flow: a jmp rel32,
  // short jcc pairs, a jcc-long prefix, plus one index-dependent byte so
  // every island holds a distinct qword. The trailing 0xe8 (call rel32)
  // swallows the next function's first 4 bytes when a linear walk decodes
  // straight through the island.
  A.raw({0xe9, 0x74, 0x03, 0x0f, 0x84, 0xeb, 0xfe, 0xcc,
         static_cast<uint8_t>(0x5a + I * 0x11), 0x75, 0x90, 0x72, 0x01,
         0xc3, 0x90, 0xe8});
}

void Generator::emitMain() {
  // entry: establish the reserved registers.
  A.pushReg(Reg::RBP);
  A.movRegReg(OpSize::B64, Reg::RBP, Reg::RSP);
  A.movRegImm64(Reg::RBX, DataBase + ScratchOff);
  A.movRegImm64(Reg::R14, DataBase);

  // Allocate the heap objects.
  for (unsigned K = 0; K != Config.HeapObjects; ++K) {
    A.movRegImm32(Reg::RDI, static_cast<int32_t>(Config.HeapObjSize));
    A.movRegImm64(Reg::RAX, vm::HookMalloc);
    A.callReg(Reg::RAX);
    A.movMemReg(OpSize::B64,
                Mem::base(Reg::R14,
                          static_cast<int32_t>(HeapTableOff + K * 8)),
                Reg::RAX);
  }

  // Main loop.
  A.movRegImm32(Reg::R15, static_cast<int32_t>(Config.MainIters));
  auto Head = A.createLabel();
  A.bind(Head);
  A.callLabel(FuncLabels[0]);
  A.callLabel(FuncLabels[firstLeaf()]);
  A.aluRegImm(OpSize::B64, Alu::Sub, Reg::R15, 1);
  A.jccLabel(Cond::NE, Head);

  // Optional planted heap overflow (detected by LowFat hardening).
  if (Config.HeapBug)
    emitHeapWrite(/*Overflow=*/true);

  // Free everything.
  for (unsigned K = 0; K != Config.HeapObjects; ++K) {
    A.movRegMem(OpSize::B64, Reg::RDI,
                Mem::base(Reg::R14,
                          static_cast<int32_t>(HeapTableOff + K * 8)));
    A.movRegImm64(Reg::RAX, vm::HookFree);
    A.callReg(Reg::RAX);
  }

  // Fold the first text-embedded island's qword into the observable
  // result, so patching island bytes changes the program's output. The
  // imm64 is a placeholder: islands are emitted after main, so the real
  // address is patched into the text bytes once layout is final.
  if (Config.DataIslands) {
    IslandImmOff = A.currentAddr() - TextBase + 2; // rex+opcode, then imm
    A.movRegImm64(Reg::RAX, 0);
    A.movRegMem(OpSize::B64, Reg::RCX, Mem::base(Reg::RAX, 0));
    A.movRegMem(OpSize::B64, Reg::RDX, scratch(0));
    A.aluRegReg(OpSize::B64, Alu::Add, Reg::RDX, Reg::RCX);
    A.movMemReg(OpSize::B64, scratch(0), Reg::RDX);
  }

  // Return a data-dependent value as the program's observable result.
  A.movRegMem(OpSize::B64, Reg::RAX, scratch(0));
  A.popReg(Reg::RBP);
  A.ret();
}

Workload Generator::generate() {
  for (unsigned F = 0; F != Config.NumFuncs; ++F)
    FuncLabels.push_back(A.createLabel());

  emitMain();
  for (unsigned F = 0; F != Config.NumFuncs; ++F) {
    emitFunction(F);
    if (F + 1 < Config.NumFuncs && IslandAddrs.size() != Config.DataIslands)
      emitIsland(static_cast<unsigned>(IslandAddrs.size()));
  }

  bool Resolved = A.resolveAll();
  assert(Resolved && "workload generator produced unresolved fixups");
  (void)Resolved;

  Workload W;
  W.Config = Config;
  W.TextBase = TextBase;
  W.DataBase = DataBase;
  W.BugSiteAddr = BugSiteAddr;
  W.IslandAddrs = IslandAddrs;
  for (unsigned F = 0; F != Config.NumFuncs; ++F)
    W.FuncAddrs.push_back(A.labelAddr(FuncLabels[F]));

  elf::Image &Img = W.Image;
  Img.Pie = Config.Pie;
  Img.Entry = TextBase;

  elf::Segment Text;
  Text.VAddr = TextBase;
  Text.Bytes = A.take();
  if (!IslandAddrs.empty())
    for (unsigned B = 0; B != 8; ++B)
      Text.Bytes[IslandImmOff + B] =
          static_cast<uint8_t>(IslandAddrs[0] >> (8 * B));
  Text.MemSize = Text.Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Text.Name = "text";
  Img.Segments.push_back(std::move(Text));

  elf::Segment Data;
  Data.VAddr = DataBase;
  Data.Bytes.assign(ScratchOff + Config.DataSize, 0);
  Data.MemSize = Data.Bytes.size() + Config.BssSize;
  Data.Flags = elf::PF_R | elf::PF_W;
  Data.Name = "data";
  // Function table content (indirect-call targets).
  for (size_t F = 0; F != W.FuncAddrs.size(); ++F)
    for (unsigned B = 0; B != 8; ++B)
      Data.Bytes[FuncTableOff + F * 8 + B] =
          static_cast<uint8_t>(W.FuncAddrs[F] >> (8 * B));
  Img.Segments.push_back(std::move(Data));

  return W;
}

} // namespace

Workload workload::generateWorkload(const WorkloadConfig &Config) {
  Generator G(Config);
  return G.generate();
}
