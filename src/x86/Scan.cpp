//===- x86/Scan.cpp -------------------------------------------*- C++ -*-===//

#include "x86/Scan.h"

#include <cstdlib>
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define E9_SCAN_X86 1
#include <immintrin.h>
#else
#define E9_SCAN_X86 0
#endif

using namespace e9;
using namespace e9::x86;

// The signature sets below are deliberately *over*-approximations of the
// selector predicates (see Scan.h): every opcode value the predicate can
// accept is present, plus whatever extra values make the set expressible
// as a handful of mask/compare terms that vectorize in two instructions
// each. The scalar expressions here are the single source of truth; the
// SSE2/AVX2 kernels implement term-for-term the same decomposition.
namespace {

/// Jumps (A1). Singles: e9 (jmp rel32), eb (jmp rel8), 70..7f (jcc rel8),
/// c4/c5/62 (VEX/EVEX prefixes, which can reach the 0F map where jcc
/// rel32 lives). Pair: literal 0F escape followed by 80..8f (jcc rel32).
constexpr bool jumpsSingle(uint8_t B) {
  return B == 0xe9 || B == 0xeb || (B & 0xf0) == 0x70 ||
         (B & 0xfe) == 0xc4 || B == 0x62;
}

/// Heap writes (A2), mirroring Insn::writesMemOperand. One-byte map:
///   (b & c6) == 0   covers the ALU x0/x1 store rows 00..39 (cmp 38/39 are
///                   harmless extras),
///   (b & fc) == d0  shift groups d0..d3,
///   80/81, 83       grp1,   86..89  xchg/mov,   8c, 8f  mov sreg / pop,
///   (b & fa) == c0  c0/c1 shifts plus the c4/c5 VEX prefixes,
///   c6/c7           mov imm,   f6/f7  grp3,   fe/ff  grp4/5.
/// 0F-map stores are covered by the literal 0f escape byte itself (and 62
/// for EVEX) — cheaper than a pair rule and only costs full decodes on
/// two-byte-map instructions.
constexpr bool heapWritesSingle(uint8_t B) {
  return (B & 0xc6) == 0 || (B & 0xfc) == 0xd0 || (B & 0xfe) == 0x80 ||
         B == 0x83 || (B & 0xfe) == 0x86 || (B & 0xfe) == 0x88 ||
         B == 0x8c || B == 0x8f || (B & 0xfa) == 0xc0 ||
         (B & 0xfe) == 0xc6 || (B & 0xfe) == 0xf6 || (B & 0xfe) == 0xfe ||
         B == 0x0f || B == 0x62;
}

constexpr bool hasPairRule(SigClass C) { return C == SigClass::Jumps; }

constexpr bool singleMatch(SigClass C, uint8_t B) {
  switch (C) {
  case SigClass::Jumps:
    return jumpsSingle(B);
  case SigClass::HeapWrites:
    return heapWritesSingle(B);
  case SigClass::All:
    return true;
  }
  return true;
}

void scalarScan(const uint8_t *Bytes, size_t N, SigClass C,
                std::vector<uint64_t> &Bits) {
  uint8_t Prev = 0;
  for (size_t I = 0; I != N; ++I) {
    uint8_t B = Bytes[I];
    if (isCandidateByte(C, Prev, B))
      Bits[I >> 6] |= 1ull << (I & 63);
    Prev = B;
  }
}

#if E9_SCAN_X86

/// One 16-byte block -> 16 candidate bits. \p LeadCarry holds whether the
/// preceding byte (last of the previous block) was a 0F escape.
inline uint32_t sse2Block(__m128i V, SigClass C, uint32_t &LeadCarry) {
  __m128i M;
  if (C == SigClass::Jumps) {
    M = _mm_cmpeq_epi8(V, _mm_set1_epi8(static_cast<char>(0xe9)));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(V, _mm_set1_epi8(static_cast<char>(0xeb))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(V, _mm_set1_epi8(0x62)));
    M = _mm_or_si128(
        M, _mm_cmpeq_epi8(_mm_and_si128(V, _mm_set1_epi8(static_cast<char>(0xf0))),
                          _mm_set1_epi8(0x70)));
    M = _mm_or_si128(
        M, _mm_cmpeq_epi8(_mm_and_si128(V, _mm_set1_epi8(static_cast<char>(0xfe))),
                          _mm_set1_epi8(static_cast<char>(0xc4))));
  } else {
    const __m128i Fe = _mm_set1_epi8(static_cast<char>(0xfe));
    __m128i Vfe = _mm_and_si128(V, Fe);
    M = _mm_cmpeq_epi8(_mm_and_si128(V, _mm_set1_epi8(static_cast<char>(0xc6))),
                       _mm_setzero_si128());
    M = _mm_or_si128(
        M, _mm_cmpeq_epi8(_mm_and_si128(V, _mm_set1_epi8(static_cast<char>(0xfc))),
                          _mm_set1_epi8(static_cast<char>(0xd0))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(Vfe, _mm_set1_epi8(static_cast<char>(0x80))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(V, _mm_set1_epi8(static_cast<char>(0x83))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(Vfe, _mm_set1_epi8(static_cast<char>(0x86))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(Vfe, _mm_set1_epi8(static_cast<char>(0x88))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(V, _mm_set1_epi8(static_cast<char>(0x8c))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(V, _mm_set1_epi8(static_cast<char>(0x8f))));
    M = _mm_or_si128(
        M, _mm_cmpeq_epi8(_mm_and_si128(V, _mm_set1_epi8(static_cast<char>(0xfa))),
                          _mm_set1_epi8(static_cast<char>(0xc0))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(Vfe, _mm_set1_epi8(static_cast<char>(0xc6))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(Vfe, _mm_set1_epi8(static_cast<char>(0xf6))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(Vfe, _mm_set1_epi8(static_cast<char>(0xfe))));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(V, _mm_set1_epi8(0x0f)));
    M = _mm_or_si128(M, _mm_cmpeq_epi8(V, _mm_set1_epi8(0x62)));
  }
  uint32_t W = static_cast<uint32_t>(_mm_movemask_epi8(M));
  if (hasPairRule(C)) {
    uint32_t Lead = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(V, _mm_set1_epi8(0x0f))));
    uint32_t Follow = static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(
        _mm_and_si128(V, _mm_set1_epi8(static_cast<char>(0xf0))),
        _mm_set1_epi8(static_cast<char>(0x80)))));
    W |= Follow & (((Lead << 1) | LeadCarry) & 0xffff);
    LeadCarry = (Lead >> 15) & 1;
  }
  return W & 0xffff;
}

void sse2Scan(const uint8_t *Bytes, size_t N, SigClass C,
              std::vector<uint64_t> &Bits) {
  size_t I = 0;
  uint32_t LeadCarry = 0;
  for (; I + 16 <= N; I += 16) {
    __m128i V = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Bytes + I));
    uint64_t W = sse2Block(V, C, LeadCarry);
    Bits[I >> 6] |= W << (I & 63);
  }
  uint8_t Prev = I ? Bytes[I - 1] : 0;
  for (; I != N; ++I) {
    uint8_t B = Bytes[I];
    if (isCandidateByte(C, Prev, B))
      Bits[I >> 6] |= 1ull << (I & 63);
    Prev = B;
  }
}

__attribute__((target("avx2"))) void
avx2Scan(const uint8_t *Bytes, size_t N, SigClass C,
         std::vector<uint64_t> &Bits) {
  size_t I = 0;
  uint32_t LeadCarry = 0;
  for (; I + 32 <= N; I += 32) {
    __m256i V =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + I));
    __m256i M;
    if (C == SigClass::Jumps) {
      M = _mm256_cmpeq_epi8(V, _mm256_set1_epi8(static_cast<char>(0xe9)));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(V, _mm256_set1_epi8(static_cast<char>(0xeb))));
      M = _mm256_or_si256(M, _mm256_cmpeq_epi8(V, _mm256_set1_epi8(0x62)));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(
                 _mm256_and_si256(V, _mm256_set1_epi8(static_cast<char>(0xf0))),
                 _mm256_set1_epi8(0x70)));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(
                 _mm256_and_si256(V, _mm256_set1_epi8(static_cast<char>(0xfe))),
                 _mm256_set1_epi8(static_cast<char>(0xc4))));
    } else {
      const __m256i Fe = _mm256_set1_epi8(static_cast<char>(0xfe));
      __m256i Vfe = _mm256_and_si256(V, Fe);
      M = _mm256_cmpeq_epi8(
          _mm256_and_si256(V, _mm256_set1_epi8(static_cast<char>(0xc6))),
          _mm256_setzero_si256());
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(
                 _mm256_and_si256(V, _mm256_set1_epi8(static_cast<char>(0xfc))),
                 _mm256_set1_epi8(static_cast<char>(0xd0))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(Vfe, _mm256_set1_epi8(static_cast<char>(0x80))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(V, _mm256_set1_epi8(static_cast<char>(0x83))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(Vfe, _mm256_set1_epi8(static_cast<char>(0x86))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(Vfe, _mm256_set1_epi8(static_cast<char>(0x88))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(V, _mm256_set1_epi8(static_cast<char>(0x8c))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(V, _mm256_set1_epi8(static_cast<char>(0x8f))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(
                 _mm256_and_si256(V, _mm256_set1_epi8(static_cast<char>(0xfa))),
                 _mm256_set1_epi8(static_cast<char>(0xc0))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(Vfe, _mm256_set1_epi8(static_cast<char>(0xc6))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(Vfe, _mm256_set1_epi8(static_cast<char>(0xf6))));
      M = _mm256_or_si256(
          M, _mm256_cmpeq_epi8(Vfe, _mm256_set1_epi8(static_cast<char>(0xfe))));
      M = _mm256_or_si256(M, _mm256_cmpeq_epi8(V, _mm256_set1_epi8(0x0f)));
      M = _mm256_or_si256(M, _mm256_cmpeq_epi8(V, _mm256_set1_epi8(0x62)));
    }
    uint64_t W = static_cast<uint32_t>(_mm256_movemask_epi8(M));
    if (hasPairRule(C)) {
      uint64_t Lead = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(V, _mm256_set1_epi8(0x0f))));
      uint64_t Follow =
          static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(
              _mm256_and_si256(V, _mm256_set1_epi8(static_cast<char>(0xf0))),
              _mm256_set1_epi8(static_cast<char>(0x80)))));
      W |= Follow & ((Lead << 1) | LeadCarry);
      LeadCarry = (Lead >> 31) & 1;
    }
    Bits[I >> 6] |= (W & 0xffffffffull) << (I & 63);
  }
  uint8_t Prev = I ? Bytes[I - 1] : 0;
  for (; I != N; ++I) {
    uint8_t B = Bytes[I];
    if (isCandidateByte(C, Prev, B))
      Bits[I >> 6] |= 1ull << (I & 63);
    Prev = B;
  }
}

#endif // E9_SCAN_X86

} // namespace

bool x86::isCandidateByte(SigClass C, uint8_t Prev, uint8_t Cur) {
  if (singleMatch(C, Cur))
    return true;
  return hasPairRule(C) && Prev == 0x0f && (Cur & 0xf0) == 0x80;
}

bool x86::scanBackendAvailable(ScanBackend B) {
  switch (B) {
  case ScanBackend::Scalar:
    return true;
  case ScanBackend::Sse2:
#if E9_SCAN_X86
    return true;
#else
    return false;
#endif
  case ScanBackend::Avx2:
#if E9_SCAN_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
  }
  return false;
}

const char *x86::scanBackendName(ScanBackend B) {
  switch (B) {
  case ScanBackend::Scalar:
    return "scalar";
  case ScanBackend::Sse2:
    return "sse2";
  case ScanBackend::Avx2:
    return "avx2";
  }
  return "?";
}

ScanBackend x86::defaultScanBackend() {
  static const ScanBackend Picked = [] {
    if (const char *E = std::getenv("E9_SCAN_BACKEND")) {
      if (!std::strcmp(E, "scalar"))
        return ScanBackend::Scalar;
      if (!std::strcmp(E, "sse2") && scanBackendAvailable(ScanBackend::Sse2))
        return ScanBackend::Sse2;
      if (!std::strcmp(E, "avx2") && scanBackendAvailable(ScanBackend::Avx2))
        return ScanBackend::Avx2;
    }
    if (scanBackendAvailable(ScanBackend::Avx2))
      return ScanBackend::Avx2;
    if (scanBackendAvailable(ScanBackend::Sse2))
      return ScanBackend::Sse2;
    return ScanBackend::Scalar;
  }();
  return Picked;
}

void CandidateMap::buildWith(const uint8_t *Bytes, size_t N, SigClass C,
                             ScanBackend B) {
  NBytes = N;
  Bits.assign((N + 63) / 64, 0);
  if (N == 0)
    return;
  if (C == SigClass::All) {
    // Everything is a candidate; skip the byte scan entirely.
    for (uint64_t &W : Bits)
      W = ~0ull;
    if (N & 63)
      Bits.back() = ~0ull >> (64 - (N & 63));
    return;
  }
  if (!scanBackendAvailable(B))
    B = ScanBackend::Scalar;
  switch (B) {
  case ScanBackend::Scalar:
    scalarScan(Bytes, N, C, Bits);
    return;
#if E9_SCAN_X86
  case ScanBackend::Sse2:
    sse2Scan(Bytes, N, C, Bits);
    return;
  case ScanBackend::Avx2:
    avx2Scan(Bytes, N, C, Bits);
    return;
#else
  default:
    scalarScan(Bytes, N, C, Bits);
    return;
#endif
  }
}

bool CandidateMap::any(size_t Lo, size_t Hi) const {
  if (Hi > NBytes)
    Hi = NBytes;
  if (Lo >= Hi)
    return false;
  size_t WLo = Lo >> 6, WHi = (Hi - 1) >> 6;
  for (size_t W = WLo; W <= WHi; ++W) {
    uint64_t M = ~0ull;
    if (W == WLo)
      M &= ~0ull << (Lo & 63);
    if (W == WHi && (Hi & 63))
      M &= ~0ull >> (64 - (Hi & 63));
    if (Bits[W] & M)
      return true;
  }
  return false;
}

size_t CandidateMap::count() const {
  size_t N = 0;
  for (uint64_t W : Bits)
    N += static_cast<size_t>(__builtin_popcountll(W));
  return N;
}
