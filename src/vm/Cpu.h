//===- vm/Cpu.h - x86_64 CPU state ------------------------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural state interpreted by the VM: 16 GPRs, rip and the status
/// flags. Flags are stored unpacked and marshalled to/from an RFLAGS image
/// for pushfq/popfq.
///
//===----------------------------------------------------------------------===//

#ifndef E9_VM_CPU_H
#define E9_VM_CPU_H

#include "x86/Register.h"

#include <array>
#include <cassert>
#include <cstdint>

namespace e9 {
namespace vm {

/// x86_64 register file + status flags.
struct Cpu {
  std::array<uint64_t, 16> Gpr{};
  uint64_t Rip = 0;

  bool CF = false;
  bool PF = false;
  bool AF = false;
  bool ZF = false;
  bool SF = false;
  bool OF = false;
  bool DF = false; ///< Direction flag (string ops).

  uint64_t &reg(x86::Reg R) {
    assert(R < x86::Reg::RIP && "only GPRs live in the register file");
    return Gpr[x86::regEncoding(R)];
  }
  uint64_t reg(x86::Reg R) const {
    assert(R < x86::Reg::RIP && "only GPRs live in the register file");
    return Gpr[x86::regEncoding(R)];
  }
  uint64_t &rsp() { return Gpr[4]; }

  /// Packs the flags into an RFLAGS image (reserved bit 1 set, IF set).
  uint64_t rflags() const {
    uint64_t F = 0x202; // bit1 reserved, IF
    F |= CF ? 1ull << 0 : 0;
    F |= PF ? 1ull << 2 : 0;
    F |= AF ? 1ull << 4 : 0;
    F |= ZF ? 1ull << 6 : 0;
    F |= SF ? 1ull << 7 : 0;
    F |= DF ? 1ull << 10 : 0;
    F |= OF ? 1ull << 11 : 0;
    return F;
  }

  void setRflags(uint64_t F) {
    CF = F & (1ull << 0);
    PF = F & (1ull << 2);
    AF = F & (1ull << 4);
    ZF = F & (1ull << 6);
    SF = F & (1ull << 7);
    DF = F & (1ull << 10);
    OF = F & (1ull << 11);
  }

  /// Evaluates an x86 condition code against the current flags.
  bool cond(x86::Cond C) const {
    using x86::Cond;
    switch (C) {
    case Cond::O:  return OF;
    case Cond::NO: return !OF;
    case Cond::B:  return CF;
    case Cond::AE: return !CF;
    case Cond::E:  return ZF;
    case Cond::NE: return !ZF;
    case Cond::BE: return CF || ZF;
    case Cond::A:  return !CF && !ZF;
    case Cond::S:  return SF;
    case Cond::NS: return !SF;
    case Cond::P:  return PF;
    case Cond::NP: return !PF;
    case Cond::L:  return SF != OF;
    case Cond::GE: return SF == OF;
    case Cond::LE: return ZF || SF != OF;
    case Cond::G:  return !ZF && SF == OF;
    }
    return false;
  }
};

} // namespace vm
} // namespace e9

#endif // E9_VM_CPU_H
