//===- workload/Run.cpp ---------------------------------------*- C++ -*-===//

#include "workload/Run.h"

#include "frontend/Runtime.h"
#include "lowfat/LowFat.h"
#include "vm/Loader.h"

using namespace e9;
using namespace e9::workload;

uint64_t workload::dataChecksum(vm::Vm &V, const elf::Image &Img) {
  // FNV-1a over the writable data segments as seen by the VM. Untouched
  // demand-zero pages (multi-GiB .bss) are skipped: two behaviourally
  // identical runs touch the same pages, so the hashes still agree.
  uint64_t H = 1469598103934665603ULL;
  for (const elf::Segment &S : Img.Segments) {
    if (!(S.Flags & elf::PF_W))
      continue;
    std::vector<uint8_t> Buf(4096);
    for (uint64_t Off = 0; Off < S.MemSize; Off += Buf.size()) {
      size_t N = static_cast<size_t>(
          std::min<uint64_t>(Buf.size(), S.MemSize - Off));
      if (V.Mem.isDemandZero(S.VAddr + Off))
        continue;
      if (!V.Mem.read(S.VAddr + Off, Buf.data(), N))
        break;
      for (size_t I = 0; I != N; ++I) {
        H ^= Buf[I];
        H *= 1099511628211ULL;
      }
    }
  }
  return H;
}

RunOutcome workload::runImage(const elf::Image &Img, const RunConfig &Config) {
  RunOutcome Out;
  vm::Vm V;

  lowfat::PlainHeap Plain;
  lowfat::LowFatHeap LowFat;
  if (Config.UseLowFat) {
    LowFat.AbortOnViolation = Config.AbortOnViolation;
    lowfat::installLowFatHeap(V, LowFat);
  } else {
    lowfat::installPlainHeap(V, Plain);
  }
  if (!Config.B0Table.empty())
    frontend::installB0Handler(V, Config.B0Table, Config.B0Callback);
  else if (!Img.B0Sites.empty())
    frontend::installB0Handler(V, Img.B0Sites, Config.B0Callback);

  auto Loaded = vm::load(V, Img);
  if (!Loaded.isOk()) {
    Out.Result.Kind = vm::RunResult::Exit::Fault;
    Out.Result.Error = Loaded.reason();
    return Out;
  }

  Out.Result = V.run(Config.MaxInsns);
  Out.Rax = V.Core.Gpr[0];
  Out.LowFatViolations = LowFat.violations();
  Out.MappedPages = V.Mem.mappedPageCount();
  Out.UniquePhysPages = V.Mem.uniquePhysPageCount();

  Out.DataChecksum = dataChecksum(V, Img);
  return Out;
}
