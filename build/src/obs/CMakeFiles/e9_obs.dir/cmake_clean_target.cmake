file(REMOVE_RECURSE
  "libe9_obs.a"
)
