//===- frontend/Shard.h - Sharded parallel patching ------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitions a rewrite's patch sites into independent shards and runs one
/// core::Patcher per shard, optionally on a thread pool. Correctness rests
/// on two facts:
///
/// **Shard independence (text bytes).** Measured from a patch site at
/// address A whose instruction has length L <= 15, every tactic only ever
/// touches bytes at or after A, and no further than:
///
///   - B1/B2/T1: the (padded, punned) jump encoding ends inside the
///     displaced instruction's own bytes, i.e. before A + 15.
///   - T2: additionally rewrites the *successor* instruction, which starts
///     before A + 15 and therefore ends before A + 30.
///   - T3: installs a short jump `eb rel8` at A reaching at most
///     A + 2 + 127 forward, and rewrites a victim instruction starting
///     there, ending before A + 2 + 127 + 15 = A + 144.
///   - Pun feasibility checks *read* up to 4 bytes past a candidate jump
///     encoding, i.e. below A + 148.
///
/// So a site at A touches (reads or writes) only [A, A + 148). Splitting
/// the sorted site list only at gaps >= ShardGuardDistance (160, with
/// margin) makes shard text ranges pairwise disjoint: concurrent shards
/// never race on image bytes, and the result cannot depend on scheduling.
///
/// **Deterministic merge (trampoline space).** Each shard allocates
/// trampolines from a private optimistic allocator biased to a per-shard
/// address window, so concurrent shards rarely claim the same space, but
/// nothing *prevents* two shards from picking overlapping addresses (pun
/// constraints can force narrow windows). The merge pass walks shards in
/// descending address order — mirroring strategy S1's global install order
/// — and checks each shard's allocations against everything merged so far;
/// a shard that clashes is rolled back (its text bytes restored from the
/// original image) and re-run with the merged allocations reserved. The
/// clash test and the redo are pure functions of the shard plan, never of
/// the thread count, so the output is byte-identical for any Jobs value;
/// the plan itself depends only on the sites and the policy.
///
//===----------------------------------------------------------------------===//

#ifndef E9_FRONTEND_SHARD_H
#define E9_FRONTEND_SHARD_H

#include "core/Patcher.h"
#include "elf/Image.h"
#include "obs/Trace.h"
#include "support/IntervalSet.h"
#include "x86/Insn.h"

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace e9 {
namespace frontend {

/// Minimum address gap between consecutive sites at which the site list
/// may be cut into shards. Any tactic touches at most [A, A + 148) (see
/// file comment); 160 adds margin and keeps the constant round.
inline constexpr uint64_t ShardGuardDistance = 160;

/// Shard decomposition policy. The decomposition is a pure function of
/// (sites, policy) — Jobs never affects it — so any thread count produces
/// the same shards and, by construction, the same output bytes.
struct ShardPolicy {
  /// Sites per shard to aim for; cuts only happen once a shard holds at
  /// least max(this, N/MaxShards) sites. The default keeps typical unit
  /// test workloads in a single shard.
  size_t MinSitesPerShard = 512;
  /// Upper bound on the number of shards (bounds merge bookkeeping).
  size_t MaxShards = 32;
  /// Shard k > 0 biases fresh trampoline zones to the window starting at
  /// text base + WindowOffset + (k - 1) * WindowStride; shard 0 is
  /// unbiased (allocates lowest-first like the sequential patcher). Set
  /// WindowStride to 0 in tests to force cross-shard clashes and exercise
  /// the redo path.
  uint64_t WindowOffset = 1ull << 27;
  uint64_t WindowStride = 1ull << 24;
};

/// One shard: a contiguous run of the ascending-sorted site list.
struct Shard {
  size_t FirstSite = 0; ///< Index into the sorted site list.
  size_t NumSites = 0;
  uint64_t LoAddr = 0; ///< First site address.
  uint64_t HiAddr = 0; ///< Last site address.
};

/// Cuts \p SitesAsc (sorted ascending, unique) into shards: a new shard
/// starts when the previous holds >= max(MinSitesPerShard, N/MaxShards)
/// sites and the gap to the next site is >= ShardGuardDistance.
std::vector<Shard> planShards(const std::vector<uint64_t> &SitesAsc,
                              const ShardPolicy &Policy);

/// Everything the sharded patch run produced, merged in deterministic
/// (descending-address) shard order. Field meanings match the Patcher
/// getters; stats are summed, chunk/jump/site lists are concatenated in
/// global descending site order (the order a single sequential patcher
/// would have produced).
struct ShardedPatchOutput {
  core::PatchStats Stats;
  std::vector<core::TrampolineChunk> Chunks;
  std::vector<core::JumpRecord> Jumps;
  std::vector<core::PatchSiteResult> Sites;
  std::vector<Interval> ModifiedRanges; ///< Sorted ascending.
  std::map<uint64_t, std::vector<uint8_t>> B0Table;

  size_t ShardCount = 0;
  size_t ShardsRedone = 0; ///< Shards re-run by the conflict-redo pass.
  unsigned JobsUsed = 1;
  double PatchMs = 0;      ///< Parallel shard execution wall time.
  double MergeMs = 0;      ///< Conflict check + redo + merge wall time.

  /// Per-shard "patch" spans (merge order); redone shards report the redo
  /// run's duration. Feeds RewriteOutput's phase profile.
  std::vector<obs::SpanRecord> ShardSpans;
  /// Allocator counters summed across shards (post-redo values).
  uint64_t ZoneExtends = 0;
  uint64_t ZoneOpens = 0;
  uint64_t AllocFailedProbes = 0;
  /// Zone-map gauges summed across shards (post-redo values).
  uint64_t AllocProbeSteps = 0;
  uint64_t AllocZonesRetired = 0;
  uint64_t AllocOpenZonePeak = 0; ///< Max over shards, not a sum.
};

/// Patches \p PatchLocs into \p Img (the working copy) with one Patcher
/// per shard on up to \p Jobs threads (0 = all hardware threads; forced to
/// 1 while fault injection is armed, since the injector is neither
/// thread-safe nor ordinal-stable under concurrency). \p Original must be
/// the pristine input image — the redo pass restores clashing shards from
/// it. \p SpecFor (optional) overrides PatchOpts.Spec per site.
///
/// When \p Trace is live, every shard patches into a private TraceBuffer
/// (no locks — shards never share a buffer) and the merge pass emits one
/// "shard" event per shard and splices the shard's events in, in the same
/// descending-address order as the result merge; a redone shard's
/// first-run events are discarded with its first-run result. The trace is
/// therefore byte-identical for any Jobs value.
///
/// When \p Prof is live, every shard's Patcher records its site/tactic
/// spans into a private ProfileCollector under the same ownership
/// discipline, and the merge pass grafts each shard's finished tree as a
/// "shard" node (with shard-id attribution) under the caller's open
/// "patch" span, in merge order; redo runs appear as an aggregated "redo"
/// span and a redone shard's first-run collector is discarded wholesale.
/// The tree structure is therefore identical for any Jobs value.
ShardedPatchOutput
patchSharded(const elf::Image &Original, elf::Image &Img,
             std::vector<x86::Insn> Insns,
             const std::vector<uint64_t> &PatchLocs,
             const core::PatchOptions &PatchOpts,
             const std::function<core::TrampolineSpec(uint64_t)> &SpecFor,
             const std::vector<Interval> &ExtraReserved,
             const ShardPolicy &Policy, unsigned Jobs,
             obs::Tracer Trace = {}, obs::Profiler Prof = {});

} // namespace frontend
} // namespace e9

#endif // E9_FRONTEND_SHARD_H
