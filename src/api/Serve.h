//===- api/Serve.h - Multi-client rewriting service ------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `e9tool serve --unix/--tcp` server: a thread-per-connection
/// scheduler over api::Session. Each accepted client gets its own
/// thread, its own Session (templates, options, quotas, negotiated
/// protocol version) and its own bounded-write-queue Connection; the
/// rewrite pipeline's internal parallelism (the per-job "jobs" option)
/// nests inside the connection thread, so concurrency exists at both
/// levels without either knowing about the other.
///
/// Isolation is fail-closed per session: a malformed stream, an
/// over-quota client, a mid-message disconnect or an undraining reader
/// tears down *that* connection — never a neighbour, never the process
/// (SIGPIPE is off; every error path is a Status).
///
/// Graceful shutdown (shutdown(), or SIGTERM/SIGINT via
/// installShutdownSignals): the listener closes first, so new connects
/// are refused; idle sessions close; sessions with an open job get a
/// drain grace period to reach their emit, after which the read side is
/// pulled and the unfinished job reports as a protocol error. run()
/// returns only after every connection thread has been joined.
///
//===----------------------------------------------------------------------===//

#ifndef E9_API_SERVE_H
#define E9_API_SERVE_H

#include "api/Net.h"
#include "api/Session.h"
#include "obs/Metrics.h"
#include "support/Fd.h"
#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <thread>

namespace e9 {
namespace api {

struct ServeOptions {
  /// Per-session knobs (jobs override + quotas), applied identically to
  /// every connection.
  SessionOptions Session;
  /// Response bytes buffered per connection before the writer blocks on
  /// the client (backpressure bound).
  size_t WriteQueueLimit = 4u << 20;
  /// How long one blocked write may wait for the client to drain before
  /// the session fails closed.
  int WriteTimeoutMs = 30000;
  /// Grace period for sessions with an open job at shutdown.
  int DrainTimeoutMs = 10000;
  /// Concurrent sessions; further connects are answered with a typed
  /// capacity error and closed.
  size_t MaxConnections = 64;
};

/// A running service instance. Construct from a bound Listener, call
/// run() (blocking) on the serving thread; shutdown() from any other
/// thread (or a signal via installShutdownSignals) ends it gracefully.
class Server {
public:
  Server(Listener L, ServeOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Accept loop; returns after a graceful shutdown has fully drained
  /// (all connection threads joined).
  void run();

  /// Requests shutdown and blocks until run() has returned.
  void shutdown();

  /// Async-signal-safe shutdown request (atomic flag + self-pipe);
  /// returns immediately.
  void requestShutdown();

  /// True from the start of run() until its drain completes.
  bool running() const { return Running.load(std::memory_order_acquire); }

  /// Bound TCP port / Unix path (valid until shutdown closes them).
  uint16_t port() const { return L.port(); }
  const std::string &path() const { return L.path(); }

  /// Server-wide counters: serve.sessions_opened/.sessions_ok/
  /// .sessions_failed, serve.jobs_ok/.jobs_failed, serve.quota_rejected,
  /// serve.capacity_rejected, serve.bytes_in/.bytes_out, plus the
  /// serve.session_lines histogram.
  obs::MetricsSnapshot metrics() const { return Registry.snapshot(); }

private:
  struct Conn {
    std::thread T;
    std::atomic<bool> Done{false};
  };

  void serveConnection(support::Fd Client, Conn *C);
  void reapFinished(bool JoinAll);

  Listener L;
  ServeOptions Opts;
  obs::MetricsRegistry Registry;
  support::Fd WakeR, WakeW; // self-pipe: signal handler -> accept loop
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Running{false};
  std::atomic<bool> Finished{false};
  std::list<std::unique_ptr<Conn>> Conns; // accept-loop thread only
};

/// Points SIGTERM and SIGINT at \p S (one global slot — a process runs
/// one server), and ignores SIGPIPE process-wide. Passing nullptr
/// restores the default dispositions.
Status installShutdownSignals(Server *S);

} // namespace api
} // namespace e9

#endif // E9_API_SERVE_H
