//===- examples/binary_patch.cpp - Example 3.1 analog ----------*- C++ -*-===//
//
// Binary patching without source (paper §3, Example 3.1 / Figure 2).
// The program below has a CVE-2019-18408-style bug: after a "free", a
// cleanup flag is never set, so a later code path consumes stale state and
// produces a wrong result. The developer's source fix would add one store
// (`start_new_table = 1`) after the free. We apply that fix purely at the
// binary level: the instruction after the free call is redirected to a
// patch trampoline that performs the missing store, re-executes the
// displaced instruction, and resumes — all without moving any other
// instruction or recovering control flow.
//
// Run: ./binary_patch
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "lowfat/LowFat.h"
#include "support/Format.h"
#include "vm/Hooks.h"
#include "vm/Loader.h"
#include "x86/Assembler.h"

#include <cstdio>

using namespace e9;
using namespace e9::x86;

namespace {

constexpr uint64_t TextBase = 0x401000;
constexpr uint64_t DataBase = 0x601000;
constexpr int32_t FlagOff = 0x100;  ///< "start_new_table" flag.
constexpr int32_t TableOff = 0x108; ///< consumer reads this slot.

/// Builds the buggy program. Returns the patch location (the first
/// instruction after the call to free, as in the paper's example).
elf::Image buildBuggyProgram(uint64_t &PatchLoc) {
  Assembler A(TextBase);

  // rbx = data; allocate a "context", write into it, then free it.
  A.movRegImm64(Reg::RBX, DataBase);
  A.movRegImm32(Reg::RDI, 64);
  A.movRegImm64(Reg::RAX, vm::HookMalloc);
  A.callReg(Reg::RAX);
  A.movMemReg(OpSize::B64, Mem::base(Reg::RBX, TableOff), Reg::RAX);
  A.movMemImm(OpSize::B32, Mem::base(Reg::RAX), 7); // context content

  // ppmd7.free(&rar->context):
  A.movRegMem(OpSize::B64, Reg::RDI, Mem::base(Reg::RBX, TableOff));
  A.movRegImm64(Reg::RAX, vm::HookFree);
  A.callReg(Reg::RAX);

  // BUG: the developer's fix adds `rar->start_new_table = 1` here.
  PatchLoc = A.currentAddr();
  A.movRegReg(OpSize::B32, Reg::RBP, Reg::RBX); // the paper's mov %ebx,%ebp

  // Consumer: if start_new_table was set, rebuild state and return 1
  // (correct); otherwise use the stale table and return 0 (wrong).
  A.movRegMem(OpSize::B64, Reg::RAX, Mem::base(Reg::RBX, FlagOff));
  A.testRegReg(OpSize::B64, Reg::RAX, Reg::RAX);
  auto Stale = A.createLabel();
  A.jccLabel(Cond::E, Stale);
  A.movRegImm32(Reg::RAX, 1); // fixed behaviour
  A.ret();
  A.bind(Stale);
  A.movRegImm32(Reg::RAX, 0); // buggy behaviour
  A.ret();
  bool Ok = A.resolveAll();
  (void)Ok;

  elf::Image Img;
  Img.Entry = TextBase;
  elf::Segment Text;
  Text.VAddr = TextBase;
  Text.Bytes = A.take();
  Text.MemSize = Text.Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Text.Name = "text";
  Img.Segments.push_back(std::move(Text));
  elf::Segment Data;
  Data.VAddr = DataBase;
  Data.MemSize = 0x1000;
  Data.Flags = elf::PF_R | elf::PF_W;
  Data.Name = "data";
  Img.Segments.push_back(std::move(Data));
  return Img;
}

uint64_t runProgram(const elf::Image &Img, const char *Label) {
  vm::Vm V;
  lowfat::PlainHeap Heap;
  lowfat::installPlainHeap(V, Heap);
  auto L = vm::load(V, Img);
  if (!L.isOk()) {
    std::printf("  %s: load failed: %s\n", Label, L.reason().c_str());
    return ~0ull;
  }
  auto R = V.run(100000);
  std::printf("  %-9s returns %llu  [%s]\n", Label,
              (unsigned long long)V.Core.Gpr[0],
              R.ok() ? "finished" : R.Error.c_str());
  return V.Core.Gpr[0];
}

} // namespace

int main() {
  std::printf("binary_patch: fix a missing-store bug at the binary level "
              "(Example 3.1 analog)\n\n");

  uint64_t PatchLoc = 0;
  elf::Image Buggy = buildBuggyProgram(PatchLoc);
  std::printf("bug site: first instruction after the free call, at %s\n\n",
              hex(PatchLoc).c_str());

  uint64_t Before = runProgram(Buggy, "buggy:");

  // The binary patch: replacement code = the developer's missing store
  // (`mov dword [rbx+FlagOff], 1`), followed by the displaced original
  // instruction, then resume at the next instruction.
  Assembler PatchCode(0);
  PatchCode.movMemImm(OpSize::B32, Mem::base(Reg::RBX, FlagOff), 1);
  PatchCode.movRegReg(OpSize::B32, Reg::RBP, Reg::RBX); // displaced insn

  frontend::RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::PatchBytes;
  Opts.Patch.Spec.Raw = PatchCode.take();
  auto Out = frontend::rewrite(Buggy, {PatchLoc}, Opts);
  if (!Out.isOk()) {
    std::printf("rewrite failed: %s\n", Out.reason().c_str());
    return 1;
  }
  std::printf("\napplied with tactic %s (trampoline at %s); the 2-byte "
              "patch site was rewritten\nwithout any knowledge of jump "
              "targets, exactly as in the paper's Figure 2.\n\n",
              core::tacticName(Out->Sites[0].Used),
              hex(Out->Sites[0].TrampolineAddr).c_str());

  uint64_t After = runProgram(Out->Rewritten, "patched:");

  bool Fixed = Before == 0 && After == 1;
  std::printf("\n%s\n", Fixed ? "OK: the binary-level patch repaired the "
                                "behaviour."
                              : "FAILED to repair the behaviour!");
  return Fixed ? 0 : 1;
}
