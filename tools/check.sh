#!/bin/sh
# tools/check.sh - the full robustness gate.
#
# Runs the regular test suite, then rebuilds everything under
# ASan + UBSan (-DE9_SANITIZE=address) and re-runs the verifier mutation
# sweep, the fault-injection sweep, the corrupt-ELF corpus and the
# malformed-protocol corpus in the sanitized build, then rebuilds under
# TSan (-DE9_SANITIZE=thread) and runs the sharded-patcher tests across
# thread counts, then runs the trace-determinism gate: a real
# gen -> rewrite sweep checking that --trace output is byte-identical
# across --jobs values, that tracing never changes the rewritten binary,
# and that `e9tool stats` accepts the emitted schema. Then the batch
# protocol gate: `e9tool apply` on a JSONL script must produce output
# byte-identical to the equivalent direct `rewrite` invocation, under
# ASan with --jobs 4. Finally, the repair-loop gate: a chaos-injected
# workload (faulty trampolines at 11 executed sites) must converge under
# `rewrite --self-verify` running ASan, with output byte-identical
# across --jobs values. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all), so a clean exit means: no silent memory
# errors on the error paths, no data races in the parallel pipeline,
# and no nondeterminism in the observability, protocol or repair layers.
# A perf-smoke gate runs bench_micro (median-of-5) against the committed
# BENCH_micro.baseline.json and fails on any >25% normalized regression.
# Last, the observatory gate: `--profile` span trees must be byte-identical
# across --jobs once the wall-clock fields are stripped, profiling must
# never perturb the output binary, the Chrome trace export must be
# well-formed, and the adversarial robustness corpus must not regress
# against the committed BENCH_robustness.json scoreboard.
# Finally, the serve gate: the socket test suite under ASan, then a real
# ASan `e9tool serve` on a temp Unix socket driven by 4 concurrent
# clients — served outputs byte-identical to the direct rewrite, SIGTERM
# drains to exit 0 (unclean teardown would trip the leak checker), and
# the server metrics record 4 clean sessions.
#
# Usage: tools/check.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "== [1/12] configure + build (default flags) =="
cmake -S "$ROOT" -B "$ROOT/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

echo "== [2/12] full test suite =="
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" \
  || ctest --test-dir "$ROOT/build" --output-on-failure --rerun-failed

echo "== [3/12] configure + build (ASan + UBSan) =="
cmake -S "$ROOT" -B "$ROOT/build-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DE9_SANITIZE=address >/dev/null
cmake --build "$ROOT/build-asan" -j "$JOBS" --target \
  verifier_test fault_injection_test elf_test core_test support_test \
  obs_test api_test repair_test e9tool

echo "== [4/12] robustness sweeps under ASan + UBSan =="
"$ROOT/build-asan/tests/support_test"
"$ROOT/build-asan/tests/core_test"
"$ROOT/build-asan/tests/obs_test"
"$ROOT/build-asan/tests/api_test"
"$ROOT/build-asan/tests/elf_test" --gtest_filter='CorruptElf.*'
"$ROOT/build-asan/tests/verifier_test"
"$ROOT/build-asan/tests/fault_injection_test"

echo "== [5/12] configure + build (TSan) =="
cmake -S "$ROOT" -B "$ROOT/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DE9_SANITIZE=thread >/dev/null
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target parallel_test \
  repair_test

echo "== [6/12] sharded patcher + repair loop under TSan =="
"$ROOT/build-tsan/tests/parallel_test"
"$ROOT/build-tsan/tests/repair_test" \
  --gtest_filter='Repair.RepairedOutputByteIdenticalAcrossJobs'

echo "== [7/12] trace determinism + schema gate (e9tool end-to-end) =="
E9="$ROOT/build/tools/e9tool"
TDIR="$(mktemp -d)"
trap 'rm -rf "$TDIR"' EXIT
"$E9" gen "$TDIR/w.elf" --seed=2026 --funcs=96 >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/out4.elf" --strict --jobs=4 \
  --trace="$TDIR/t4.jsonl" --metrics="$TDIR/m.json" >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/out1.elf" --strict --jobs=1 \
  --trace="$TDIR/t1.jsonl" >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/plain.elf" --strict >/dev/null
cmp "$TDIR/t1.jsonl" "$TDIR/t4.jsonl"   # trace identical across --jobs
cmp "$TDIR/out1.elf" "$TDIR/out4.elf"   # binary identical across --jobs
cmp "$TDIR/out1.elf" "$TDIR/plain.elf"  # tracing never perturbs output
"$E9" stats "$TDIR/t4.jsonl" >/dev/null # schema-valid, summary coherent

echo "== [8/12] batch protocol gate: apply == rewrite, under ASan =="
E9A="$ROOT/build-asan/tools/e9tool"
cat > "$TDIR/apply.jsonl" <<EOF
{"type":"binary","path":"$TDIR/w.elf"}
{"type":"template","name":"passthrough","body":"\$instruction \$continue"}
{"type":"option","name":"jobs","value":"4"}
{"type":"option","name":"strict","value":"true"}
{"type":"patch","select":"jumps","template":"passthrough"}
{"type":"emit","path":"$TDIR/applied.elf"}
EOF
"$E9A" apply "$TDIR/apply.jsonl" --responses="$TDIR/resp.jsonl"
grep -q '"ok":true' "$TDIR/resp.jsonl"
cmp "$TDIR/applied.elf" "$TDIR/out4.elf" # apply == direct rewrite
# The protocol fails closed: a malformed request must stop the stream.
if printf '{"type":"frobnicate"}\n' | "$E9A" serve --stdin \
    >"$TDIR/serve.jsonl" 2>/dev/null; then
  echo "check.sh: serve accepted a malformed request" >&2
  exit 1
fi
grep -q '"type":"error"' "$TDIR/serve.jsonl"

echo "== [9/12] repair-loop gate: chaos convergence under ASan =="
"$E9A" gen "$TDIR/chaos.elf" --seed=7 --funcs=24 >/dev/null
"$E9A" rewrite "$TDIR/chaos.elf" "$TDIR/chaos1.elf" --self-verify \
  --chaos=11 --jobs=1 --trace="$TDIR/chaos.jsonl" >/dev/null
"$E9A" rewrite "$TDIR/chaos.elf" "$TDIR/chaos4.elf" --self-verify \
  --chaos=11 --jobs=4 >/dev/null
cmp "$TDIR/chaos1.elf" "$TDIR/chaos4.elf" # repaired output deterministic
"$E9" stats "$TDIR/chaos.jsonl" >/dev/null # repair events schema-valid
grep -q '"ev":"repair_summary".*"converged":true' "$TDIR/chaos.jsonl"
# Fail closed: an impossible budget must refuse to emit a binary.
if "$E9A" rewrite "$TDIR/chaos.elf" "$TDIR/chaos0.elf" --self-verify \
    --chaos=11 --repair-runs=2 >/dev/null 2>&1; then
  echo "check.sh: self-verify emitted an unverified binary" >&2
  exit 1
fi
test ! -f "$TDIR/chaos0.elf"

echo "== [10/12] perf smoke: bench_micro vs committed baseline =="
# Median-of-5 per benchmark against BENCH_micro.baseline.json; >25% slower
# on any benchmark fails the gate, after a suite-wide machine-noise
# normalization (see tools/perf_smoke.py). The arena, mmap and prescan hot
# paths all have micro benchmarks, so a pathological regression in the
# raw-speed memory path is caught here even when the functional suites
# stay green. Skipped gracefully when python3 is absent.
if command -v python3 >/dev/null 2>&1; then
  cmake --build "$ROOT/build" -j "$JOBS" --target bench_micro
  "$ROOT/build/bench/bench_micro" --benchmark_repetitions=5 \
    --benchmark_out="$TDIR/micro.json" --benchmark_out_format=json \
    >/dev/null
  python3 "$ROOT/tools/perf_smoke.py" \
    "$ROOT/BENCH_micro.baseline.json" "$TDIR/micro.json" \
    --emit-json "$TDIR/perf_smoke.json"
  "$E9" stats "$TDIR/perf_smoke.json" --compare \
    "$TDIR/perf_smoke.json" >/dev/null # record is scoreboard-consumable
else
  echo "check.sh: python3 not found; skipping perf smoke"
fi

echo "== [11/12] observatory gate: profile determinism + corpus scoreboard =="
# The span tree's structure (names, shards, counts, child order) is a pure
# function of (input, options); only the adjacent total_ms/self_ms pair is
# wall-clock. Strip that pair and the profile must be byte-identical for
# any --jobs value, and profiling must never perturb the output binary.
"$E9" rewrite "$TDIR/w.elf" "$TDIR/p1.elf" --strict --jobs=1 \
  --profile="$TDIR/prof1.json" >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/p4.elf" --strict --jobs=4 \
  --profile="$TDIR/prof4.json" --profile-chrome="$TDIR/chrome.json" \
  --profile-folded="$TDIR/folded.txt" >/dev/null
SCRUB='s/"total_ms":[0-9.]*,"self_ms":[0-9.]*,//g'
sed -E "$SCRUB" "$TDIR/prof1.json" > "$TDIR/prof1.scrub"
sed -E "$SCRUB" "$TDIR/prof4.json" > "$TDIR/prof4.scrub"
cmp "$TDIR/prof1.scrub" "$TDIR/prof4.scrub" # tree identical across --jobs
cmp "$TDIR/p1.elf" "$TDIR/out1.elf"         # profiling never perturbs output
grep -q '"traceEvents":\[' "$TDIR/chrome.json"  # Perfetto-loadable shape
grep -q 'tactic\.' "$TDIR/folded.txt"           # per-tactic attribution
# Robustness corpus: rerun the adversarial configs and compare the fresh
# scoreboard against the committed BENCH_robustness.json. Exit 3 from
# `stats --compare` means a tracked metric regressed (threshold 0: any
# adversarial config converging worse than the committed record fails).
"$E9" corpus "$TDIR/robust.json" >/dev/null
"$E9" stats --compare "$ROOT/BENCH_robustness.json" "$TDIR/robust.json" \
  --threshold=0

echo "== [12/12] serve gate: concurrent socket sessions under ASan =="
# The rewriting service end to end: an ASan `e9tool serve` on a temp Unix
# socket, 4 concurrent loopback clients each negotiating the hello
# handshake and running one strict rewrite job. Every served output must
# be byte-identical to the direct `rewrite` from gate [7/12], SIGTERM
# must drain to exit 0 (which is also the ASan leak gate: an unclean
# teardown leaks the live sessions), and per-session quotas must reject
# with a typed error without dropping the session.
cmake --build "$ROOT/build-asan" -j "$JOBS" --target serve_test
"$ROOT/build-asan/tests/serve_test"
if command -v python3 >/dev/null 2>&1; then
  SSOCK="$TDIR/serve.sock"
  "$E9A" serve --unix="$SSOCK" --max-requests=64 --drain-ms=3000 \
    --metrics="$TDIR/serve_metrics.json" 2>"$TDIR/serve.log" &
  SRVPID=$!
  for _ in $(seq 100); do [ -S "$SSOCK" ] && break; sleep 0.1; done
  python3 - "$SSOCK" "$TDIR/w.elf" "$TDIR" <<'EOF'
import json, socket, sys, threading
sock_path, binary, tdir = sys.argv[1:4]
errors = []
def client(i):
    try:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(sock_path)
        msgs = [
            {"type": "hello", "version": "1.0"},
            {"type": "binary", "path": binary},
            {"type": "template", "name": "pass",
             "body": "$instruction $continue"},
            {"type": "option", "name": "jobs", "value": str(1 + i % 4)},
            {"type": "option", "name": "strict", "value": "true"},
            {"type": "patch", "select": "jumps", "template": "pass"},
            {"type": "emit", "path": f"{tdir}/served_{i}.elf"},
        ]
        s.sendall("".join(json.dumps(m) + "\n" for m in msgs).encode())
        f = s.makefile()
        hello = json.loads(f.readline())
        assert hello["type"] == "hello" and hello["v"] == 1, hello
        status = json.loads(f.readline())
        assert status["ok"] is True, status
        s.close()
    except Exception as e:  # noqa: BLE001 - report, don't hang the gate
        errors.append(f"client {i}: {e!r}")
threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
for t in threads: t.start()
for t in threads: t.join()
if errors:
    sys.exit("\n".join(errors))
EOF
  for I in 0 1 2 3; do
    cmp "$TDIR/served_$I.elf" "$TDIR/out4.elf" # served == direct rewrite
  done
  kill -TERM "$SRVPID"
  wait "$SRVPID"                 # graceful shutdown: exit 0, zero leaks
  grep -q "shut down" "$TDIR/serve.log"
  grep -q '"serve.sessions_ok":4' "$TDIR/serve_metrics.json"
else
  echo "check.sh: python3 not found; skipping serve socket smoke"
fi

echo "check.sh: all gates passed"
