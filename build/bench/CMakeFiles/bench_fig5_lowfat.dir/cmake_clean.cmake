file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lowfat.dir/bench_fig5_lowfat.cpp.o"
  "CMakeFiles/bench_fig5_lowfat.dir/bench_fig5_lowfat.cpp.o.d"
  "bench_fig5_lowfat"
  "bench_fig5_lowfat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lowfat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
