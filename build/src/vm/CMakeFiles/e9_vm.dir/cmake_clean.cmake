file(REMOVE_RECURSE
  "CMakeFiles/e9_vm.dir/Loader.cpp.o"
  "CMakeFiles/e9_vm.dir/Loader.cpp.o.d"
  "CMakeFiles/e9_vm.dir/Memory.cpp.o"
  "CMakeFiles/e9_vm.dir/Memory.cpp.o.d"
  "CMakeFiles/e9_vm.dir/Vm.cpp.o"
  "CMakeFiles/e9_vm.dir/Vm.cpp.o.d"
  "libe9_vm.a"
  "libe9_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
