# Empty dependencies file for harden_heap.
# This may be replaced when dependencies are built.
