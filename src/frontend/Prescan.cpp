//===- frontend/Prescan.cpp -----------------------------------*- C++ -*-===//

#include "frontend/Prescan.h"

#include "frontend/Select.h"
#include "x86/Decoder.h"

#include <algorithm>

using namespace e9;
using namespace e9::frontend;
using namespace e9::x86;

namespace {

SigClass sigClassFor(SelectorKind K) {
  switch (K) {
  case SelectorKind::Jumps:
    return SigClass::Jumps;
  case SelectorKind::HeapWrites:
    return SigClass::HeapWrites;
  case SelectorKind::All:
    return SigClass::All;
  }
  return SigClass::All;
}

bool matches(SelectorKind K, const Insn &I) {
  switch (K) {
  case SelectorKind::Jumps:
    return isJumpSite(I);
  case SelectorKind::HeapWrites:
    return isHeapWriteSite(I);
  case SelectorKind::All:
    return true;
  }
  return false;
}

/// True for every byte the decoder's prefix loop can skip over: the legacy
/// prefixes plus REX (40-4f). The opcode of an instruction starting at P
/// is at the first position not in this set.
bool isPrefixByte(uint8_t B) {
  switch (B) {
  case 0x26: case 0x2e: case 0x36: case 0x3e: case 0x64: case 0x65:
  case 0x66: case 0x67: case 0xf0: case 0xf2: case 0xf3:
    return true;
  default:
    return (B & 0xf0) == 0x40; // REX.
  }
}

/// Second-stage filter behind the bitmap window test: the signature byte
/// can only make the *predicate* true when it sits at the instruction's
/// opcode position (first non-prefix byte; the escape/VEX/EVEX byte in
/// multi-byte encodings). Neither signature set intersects the prefix set,
/// so an instruction whose opcode-position byte fails this test cannot
/// match the selector — window hits from immediates, displacements, or a
/// neighbouring instruction's bytes are rejected without a full decode.
bool opcodeCandidate(SigClass C, const uint8_t *P, size_t Avail) {
  size_t Lim = std::min<size_t>(Avail, MaxInsnLength);
  size_t K = 0;
  while (K < Lim && isPrefixByte(P[K]))
    ++K;
  if (K == Lim)
    return false; // All prefixes: the full path rejects it as undecodable.
  if (isCandidateByte(C, 0, P[K]))
    return true;
  // Pair rule (jcc rel32): 0f escape followed by 80-8f.
  return P[K] == 0x0f && K + 1 < Avail && (P[K + 1] & 0xf0) == 0x80 &&
         isCandidateByte(C, P[K], P[K + 1]);
}

} // namespace

std::vector<uint64_t> frontend::prescanSelect(const elf::Image &Img,
                                              SelectorKind K,
                                              PrescanStats *Stats) {
  std::vector<uint64_t> Sites;
  const elf::Segment *Text = Img.textSegment();
  if (!Text)
    return Sites;
  const uint8_t *Bytes = Text->Bytes.data();
  size_t N = Text->fileSize();

  CandidateMap CM;
  CM.build(Bytes, N, sigClassFor(K));
  if (Stats) {
    Stats->Backend = defaultScanBackend();
    Stats->CandidateBytes = CM.count();
  }

  // Every byte is still length-walked (x86 boundaries depend on all
  // previous bytes); the bitmap only decides full decode vs length-only.
  // An instruction starting at Off occupies [Off, Off + Len) with
  // Len <= MaxInsnLength, so a candidate-free [Off, Off + MaxInsnLength)
  // proves the instruction cannot contain a signature byte and therefore
  // cannot satisfy the selector predicate.
  SigClass SC = sigClassFor(K);
  size_t Off = 0;
  while (Off < N) {
    if (!CM.any(Off, Off + MaxInsnLength) ||
        (K != SelectorKind::All && !opcodeCandidate(SC, Bytes + Off, N - Off))) {
      unsigned Len = decodeLength(Bytes + Off, N - Off);
      if (Len == 0) {
        if (Stats)
          ++Stats->UndecodableBytes;
        ++Off;
        continue;
      }
      if (Stats)
        ++Stats->NumInsns;
      Off += Len;
      continue;
    }
    Insn I;
    DecodeStatus S =
        decode(Bytes + Off, N - Off, Text->VAddr + Off, I);
    if (S != DecodeStatus::Ok) {
      if (Stats)
        ++Stats->UndecodableBytes;
      ++Off;
      continue;
    }
    if (Stats) {
      ++Stats->NumInsns;
      ++Stats->FullDecodes;
    }
    if (matches(K, I))
      Sites.push_back(I.Address);
    Off += I.Length;
  }
  return Sites;
}

DisasmResult frontend::disassembleWindows(const elf::Image &Img,
                                          const std::vector<uint64_t> &Sites,
                                          uint64_t Guard) {
  DisasmResult R;
  const elf::Segment *Text = Img.textSegment();
  if (!Text)
    return R;
  const uint8_t *Bytes = Text->Bytes.data();
  uint64_t Start = Text->VAddr;
  uint64_t End = Start + Text->fileSize();

  // Merge the per-site windows [S, S + Guard) into disjoint segments.
  std::vector<uint64_t> Sorted(Sites);
  std::sort(Sorted.begin(), Sorted.end());
  std::vector<std::pair<uint64_t, uint64_t>> Segs;
  for (uint64_t S : Sorted) {
    uint64_t Lo = S, Hi = S + Guard;
    if (!Segs.empty() && Lo <= Segs.back().second)
      Segs.back().second = std::max(Segs.back().second, Hi);
    else
      Segs.emplace_back(Lo, Hi);
  }

  uint64_t WindowBytes = 0;
  for (const auto &[Lo, Hi] : Segs)
    WindowBytes += std::min(Hi, End) - std::min(Lo, End);
  R.Insns.reserve(WindowBytes / 4); // Mean x86-64 insn is ~4 bytes.

  size_t SegIdx = 0;
  uint64_t Cursor = Start;
  while (Cursor < End) {
    while (SegIdx != Segs.size() && Cursor >= Segs[SegIdx].second)
      ++SegIdx;
    bool InWindow = SegIdx != Segs.size() && Cursor >= Segs[SegIdx].first;
    if (!InWindow) {
      unsigned Len = decodeLength(Bytes + (Cursor - Start), End - Cursor);
      if (Len == 0) {
        ++R.UndecodableBytes;
        ++Cursor;
        continue;
      }
      Cursor += Len;
      continue;
    }
    Insn I;
    DecodeStatus S =
        decode(Bytes + (Cursor - Start), End - Cursor, Cursor, I);
    if (S != DecodeStatus::Ok) {
      ++R.UndecodableBytes;
      ++Cursor;
      continue;
    }
    R.Insns.push_back(I);
    Cursor += I.Length;
  }
  return R;
}
