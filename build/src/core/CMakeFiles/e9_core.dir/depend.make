# Empty dependencies file for e9_core.
# This may be replaced when dependencies are built.
