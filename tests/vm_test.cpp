//===- tests/vm_test.cpp - VM memory/interpreter/loader tests -*- C++ -*-===//

#include "vm/Loader.h"
#include "vm/Memory.h"
#include "vm/Vm.h"

#include "x86/Assembler.h"
#include "x86/Decoder.h"

#include <gtest/gtest.h>

using namespace e9;
using namespace e9::vm;
using namespace e9::x86;

namespace {

constexpr uint64_t CodeBase = 0x401000;
constexpr uint64_t DataBase = 0x601000;

/// Builds a Vm with RWX-mapped code at CodeBase, RW data at DataBase and a
/// small stack; points rip at the code and pushes the exit sentinel.
struct TestVm {
  Vm V;

  explicit TestVm(const std::vector<uint8_t> &Code) {
    // RWX so tests can poke extra code bytes after construction.
    EXPECT_TRUE(
        V.Mem.mapZero(CodeBase & ~PageMask, 0x4000, PermR | PermW | PermX));
    EXPECT_TRUE(V.Mem.write(CodeBase, Code.data(), Code.size()));
    EXPECT_TRUE(V.Mem.mapZero(DataBase, 0x2000, PermR | PermW));
    EXPECT_TRUE(V.Mem.mapZero(0x7fff0000, 0x10000, PermR | PermW));
    V.Core.rsp() = 0x7fff0000u + 0x10000 - 64;
    EXPECT_TRUE(V.push64(ExitAddress));
    V.Core.Rip = CodeBase;
  }

  RunResult run(uint64_t MaxInsns = 100000) { return V.run(MaxInsns); }
};

std::vector<uint8_t> assemble(void (*F)(Assembler &)) {
  Assembler A(CodeBase);
  F(A);
  EXPECT_TRUE(A.resolveAll());
  return A.take();
}

} // namespace

// --- Memory ---------------------------------------------------------------

TEST(Memory, MapAndRw) {
  Memory M;
  ASSERT_TRUE(M.mapZero(0x1000, 0x2000, PermR | PermW));
  ASSERT_TRUE(M.write64(0x1ff8, 0xdeadbeef));
  uint64_t V = 0;
  ASSERT_TRUE(M.read64(0x1ff8, V));
  EXPECT_EQ(V, 0xdeadbeefu);
}

TEST(Memory, CrossPageAccess) {
  Memory M;
  ASSERT_TRUE(M.mapZero(0x1000, 0x2000, PermR | PermW));
  ASSERT_TRUE(M.write64(0x1ffc, 0x1122334455667788ULL)); // spans two pages
  uint64_t V = 0;
  ASSERT_TRUE(M.read64(0x1ffc, V));
  EXPECT_EQ(V, 0x1122334455667788ULL);
}

TEST(Memory, PermissionEnforcement) {
  Memory M;
  ASSERT_TRUE(M.mapZero(0x1000, 0x1000, PermR));
  uint64_t V;
  EXPECT_TRUE(M.read64(0x1000, V));
  EXPECT_FALSE(M.write64(0x1000, 1));
  uint8_t Buf[4];
  EXPECT_EQ(M.fetch(0x1000, Buf, 4), 0u); // no PermX
}

TEST(Memory, UnmappedFails) {
  Memory M;
  uint64_t V;
  EXPECT_FALSE(M.read64(0x5000, V));
  EXPECT_FALSE(M.write64(0x5000, 1));
  EXPECT_FALSE(M.isMapped(0x5000));
}

TEST(Memory, DoubleMapFails) {
  Memory M;
  ASSERT_TRUE(M.mapZero(0x1000, 0x1000, PermR));
  EXPECT_FALSE(M.mapZero(0x1000, 0x1000, PermR));
}

TEST(Memory, SharedPhysPages) {
  Memory M;
  PhysPageRef P = allocPhysPage();
  (*P)[0] = 0x42;
  ASSERT_TRUE(M.mapPage(0x10000, P, PermR));
  ASSERT_TRUE(M.mapPage(0x20000, P, PermR));
  ASSERT_TRUE(M.mapPage(0x30000, allocPhysPage(), PermR));
  EXPECT_EQ(M.mappedPageCount(), 3u);
  EXPECT_EQ(M.uniquePhysPageCount(), 2u);
  uint8_t B = 0;
  ASSERT_TRUE(M.read(0x20000, &B, 1));
  EXPECT_EQ(B, 0x42);
}

TEST(Memory, FetchStopsAtBoundary) {
  Memory M;
  ASSERT_TRUE(M.mapZero(0x1000, 0x1000, PermR | PermX));
  uint8_t Buf[15];
  EXPECT_EQ(M.fetch(0x1ffa, Buf, 15), 6u); // next page unmapped
}

// --- Interpreter: arithmetic, flags, control flow -----------------------------

TEST(Vm, MovAndAdd) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 40);
    A.movRegImm64(Reg::RBX, 2);
    A.aluRegReg(OpSize::B64, Alu::Add, Reg::RAX, Reg::RBX);
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 42u);
  EXPECT_EQ(R.InsnCount, 4u);
}

TEST(Vm, LoopSumsOneToTen) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm32(Reg::RAX, 0);
    A.movRegImm32(Reg::RCX, 10);
    auto Loop = A.createLabel();
    A.bind(Loop);
    A.aluRegReg(OpSize::B64, Alu::Add, Reg::RAX, Reg::RCX);
    A.aluRegImm(OpSize::B64, Alu::Sub, Reg::RCX, 1);
    A.jccLabel(Cond::NE, Loop);
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 55u);
}

TEST(Vm, MemoryLoadStore) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm64(Reg::RBX, DataBase);
    A.movRegImm32(Reg::RAX, 0x1234);
    A.movMemReg(OpSize::B64, Mem::base(Reg::RBX, 16), Reg::RAX);
    A.movRegMem(OpSize::B64, Reg::RCX, Mem::base(Reg::RBX, 16));
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[1], 0x1234u);
}

TEST(Vm, ByteAndWordOps) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm64(Reg::RBX, DataBase);
    A.movMemImm(OpSize::B8, Mem::base(Reg::RBX), -1);
    A.movzxRegMem8(Reg::RAX, Mem::base(Reg::RBX));
    A.movMemImm(OpSize::B16, Mem::base(Reg::RBX, 2), 0x1234);
    A.movRegMem(OpSize::B16, Reg::RCX, Mem::base(Reg::RBX, 2));
    A.ret();
  }));
  T.V.Core.Gpr[1] = 0xffffffffffffffffULL;
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 0xffu);
  // 16-bit loads merge into the low word only.
  EXPECT_EQ(T.V.Core.Gpr[1], 0xffffffffffff1234ULL);
}

TEST(Vm, ThirtyTwoBitWritesZeroExtend) {
  TestVm T(assemble([](Assembler &A) {
    A.aluRegReg(OpSize::B32, Alu::Xor, Reg::RAX, Reg::RAX);
    A.ret();
  }));
  T.V.Core.Gpr[0] = 0xffffffffffffffffULL;
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 0u);
}

TEST(Vm, CallAndRet) {
  TestVm T(assemble([](Assembler &A) {
    auto Fn = A.createLabel();
    A.callLabel(Fn);
    A.aluRegImm(OpSize::B64, Alu::Add, Reg::RAX, 1);
    A.ret();
    A.bind(Fn);
    A.movRegImm32(Reg::RAX, 10);
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 11u);
}

TEST(Vm, PushPopAndStack) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 7);
    A.pushReg(Reg::RAX);
    A.movRegImm64(Reg::RAX, 0);
    A.popReg(Reg::RBX);
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[3], 7u);
}

TEST(Vm, PushfqPopfqRoundTrip) {
  TestVm T(assemble([](Assembler &A) {
    // Set ZF via xor, save flags, clobber them, restore, then branch on ZF.
    A.aluRegReg(OpSize::B64, Alu::Xor, Reg::RAX, Reg::RAX); // ZF=1
    A.pushfq();
    A.aluRegImm(OpSize::B64, Alu::Add, Reg::RAX, 1); // ZF=0
    A.popfq();
    auto L = A.createLabel();
    A.movRegImm32(Reg::RBX, 0);
    A.jccLabel(Cond::E, L); // must be taken: ZF restored to 1
    A.movRegImm32(Reg::RBX, 99);
    A.bind(L);
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[3], 0u);
}

TEST(Vm, FlagConditions) {
  // cmp 3, 5 -> B (unsigned below) and L (signed less) both taken.
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm32(Reg::RAX, 3);
    A.aluRegImm(OpSize::B64, Alu::Cmp, Reg::RAX, 5);
    A.movRegImm32(Reg::RBX, 0);
    auto L1 = A.createLabel();
    A.jccLabel(Cond::B, L1);
    A.movRegImm32(Reg::RBX, 1);
    A.bind(L1);
    auto L2 = A.createLabel();
    A.movRegImm32(Reg::RCX, 0);
    A.jccLabel(Cond::L, L2);
    A.movRegImm32(Reg::RCX, 1);
    A.bind(L2);
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[3], 0u);
  EXPECT_EQ(T.V.Core.Gpr[1], 0u);
}

TEST(Vm, SignedOverflowCondition) {
  // INT64_MAX + 1 sets OF.
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 0x7fffffffffffffffULL);
    A.aluRegImm(OpSize::B64, Alu::Add, Reg::RAX, 1);
    A.movRegImm32(Reg::RBX, 0);
    auto L = A.createLabel();
    A.jccLabel(Cond::O, L);
    A.movRegImm32(Reg::RBX, 1);
    A.bind(L);
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[3], 0u);
}

TEST(Vm, ShiftAndImul) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm32(Reg::RAX, 3);
    A.shiftRegImm(OpSize::B64, Shift::Shl, Reg::RAX, 4); // 48
    A.movRegImm32(Reg::RBX, 5);
    A.imulRegReg(Reg::RAX, Reg::RBX); // 240
    A.shiftRegImm(OpSize::B64, Shift::Shr, Reg::RAX, 2); // 60
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 60u);
}

TEST(Vm, IncDecPreserveCF) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm32(Reg::RAX, 0);
    A.aluRegImm(OpSize::B64, Alu::Sub, Reg::RAX, 1); // CF=1
    A.incReg(Reg::RBX);                              // must keep CF
    auto L = A.createLabel();
    A.movRegImm32(Reg::RCX, 0);
    A.jccLabel(Cond::B, L);
    A.movRegImm32(Reg::RCX, 1);
    A.bind(L);
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[1], 0u) << "CF lost across inc";
}

TEST(Vm, IndirectCallAndJmp) {
  TestVm T(assemble([](Assembler &A) {
    auto Fn = A.createLabel();
    auto End = A.createLabel();
    A.movRegImm64(Reg::R11, CodeBase + 64);
    A.callReg(Reg::R11);
    A.jmpLabel(End);
    A.bind(Fn);
    A.ret();
    A.bind(End);
    A.ret();
  }));
  // Place the callee at CodeBase + 64: mov rax, 5; ret.
  Assembler Callee(CodeBase + 64);
  Callee.movRegImm32(Reg::RAX, 5);
  Callee.ret();
  auto CB = Callee.take();
  ASSERT_TRUE(T.V.Mem.write(CodeBase + 64, CB.data(), CB.size()));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 5u);
}

// Punned jumps: redundant prefixes ahead of e9 are executed correctly.
TEST(Vm, PaddedJumpExecutes) {
  // 48 26 e9 <rel32=2>: padded jmp skipping the next 2 bytes (ud2).
  TestVm T({0x48, 0x26, 0xe9, 0x02, 0x00, 0x00, 0x00, 0x0f, 0x0b, 0xb8,
            0x2a, 0x00, 0x00, 0x00, 0xc3});
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 42u);
}

// Overlapping instructions: jump lands inside another instruction's bytes
// and the interpreter decodes from the new offset (the punning substrate).
TEST(Vm, OverlappingDecodeFromMidInstruction) {
  // 0x401000: eb 03          jmp 0x401005
  // 0x401002: b8 05 b8 2a... the pun: jumping to 0x401005 decodes "b8 2a.."
  TestVm T({0xeb, 0x03, 0xb8, 0x05, 0x00, 0xb8, 0x2a, 0x00, 0x00, 0x00,
            0xc3});
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 42u);
}

TEST(Vm, Ud2Aborts) {
  TestVm T(assemble([](Assembler &A) { A.ud2(); }));
  auto R = T.run();
  EXPECT_EQ(R.Kind, RunResult::Exit::Ud2);
}

TEST(Vm, FaultOnUnmappedExec) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm64(Reg::RAX, 0x12345000);
    A.jmpReg(Reg::RAX);
  }));
  auto R = T.run();
  EXPECT_EQ(R.Kind, RunResult::Exit::Fault);
}

TEST(Vm, FaultOnUnmappedWrite) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm64(Reg::RBX, 0x66660000);
    A.movMemReg(OpSize::B64, Mem::base(Reg::RBX), Reg::RAX);
    A.ret();
  }));
  auto R = T.run();
  EXPECT_EQ(R.Kind, RunResult::Exit::Fault);
}

TEST(Vm, InsnLimit) {
  // Infinite loop: jmp self.
  TestVm T({0xeb, 0xfe});
  auto R = T.run(1000);
  EXPECT_EQ(R.Kind, RunResult::Exit::InsnLimit);
  EXPECT_EQ(R.InsnCount, 1000u);
}

// --- Host hooks ------------------------------------------------------------------

TEST(Vm, HostHookActsAsFunction) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm64(Reg::RDI, 21);
    A.callAbsViaRax(0x7e9f00000000ULL);
    A.ret();
  }));
  T.V.registerHook(0x7e9f00000000ULL, [](Vm &V) {
    V.Core.Gpr[0] = V.Core.Gpr[7] * 2; // rax = rdi * 2
    return Status::ok();
  });
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 42u);
}

TEST(Vm, FailingHookFaults) {
  TestVm T(assemble([](Assembler &A) {
    A.callAbsViaRax(0x7e9f00000000ULL);
    A.ret();
  }));
  T.V.registerHook(0x7e9f00000000ULL,
                   [](Vm &) { return Status::error("redzone violated"); });
  auto R = T.run();
  EXPECT_EQ(R.Kind, RunResult::Exit::Fault);
  EXPECT_NE(R.Error.find("redzone violated"), std::string::npos);
}

TEST(Vm, HookCostAccounted) {
  TestVm T(assemble([](Assembler &A) {
    A.callAbsViaRax(0x7e9f00000000ULL);
    A.ret();
  }));
  T.V.registerHook(
      0x7e9f00000000ULL, [](Vm &) { return Status::ok(); }, 500);
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  // mov/call/ret + exit-ret = 4 instructions, +500 hook cost.
  EXPECT_EQ(R.Cost, R.InsnCount + 500);
}

// --- int3 trap handling (B0 baseline) ------------------------------------------

TEST(Vm, TrapHandlerEmulatesDisplacedInsn) {
  // Program: int3 (patched "mov rax, 42"), ret.
  TestVm T({0xcc, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0xc3});
  // Side table: original bytes at 0x401000 were mov eax, 42 (5 bytes),
  // padded with nops to 7.
  std::vector<uint8_t> Orig = {0xb8, 0x2a, 0x00, 0x00, 0x00};
  int Hits = 0;
  T.V.setTrapHandler([&](Vm &V, uint64_t Addr) -> Status {
    EXPECT_EQ(Addr, CodeBase);
    ++Hits;
    Insn I;
    if (decode(Orig.data(), Orig.size(), Addr, I) != DecodeStatus::Ok)
      return Status::error("bad side-table bytes");
    Vm::ExecKind K;
    if (Status S = V.execInsn(I, Orig.data(), K); !S)
      return S;
    // Skip the remaining nop padding to the next real instruction.
    V.Core.Rip = Addr + 7;
    return Status::ok();
  });
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(Hits, 1);
  EXPECT_EQ(T.V.Core.Gpr[0], 42u);
  EXPECT_GE(R.Cost, T.V.Costs.TrapCost);
}

TEST(Vm, UnhandledInt3Faults) {
  TestVm T({0xcc});
  auto R = T.run();
  EXPECT_EQ(R.Kind, RunResult::Exit::Fault);
}

// --- Loader ----------------------------------------------------------------------

TEST(Loader, LoadsSegmentsAndRuns) {
  elf::Image Img;
  Img.Entry = 0x401000;
  Assembler A(0x401000);
  A.movRegImm64(Reg::RBX, 0x601000);
  A.movMemImm(OpSize::B32, Mem::base(Reg::RBX), 7);
  A.movRegMem(OpSize::B32, Reg::RAX, Mem::base(Reg::RBX));
  A.ret();
  elf::Segment Text;
  Text.VAddr = 0x401000;
  Text.Bytes = A.take();
  Text.MemSize = Text.Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Img.Segments.push_back(Text);
  elf::Segment Bss;
  Bss.VAddr = 0x601000;
  Bss.MemSize = 0x1000; // no file bytes: pure .bss
  Bss.Flags = elf::PF_R | elf::PF_W;
  Img.Segments.push_back(Bss);

  Vm V;
  auto Stats = vm::load(V, Img);
  ASSERT_TRUE(Stats.isOk()) << Stats.reason();
  auto R = V.run(1000);
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(V.Core.Gpr[0], 7u);
}

TEST(Loader, SharedMappingsShareRam) {
  elf::Image Img;
  Img.Entry = 0x401000;
  elf::Segment Text;
  Text.VAddr = 0x401000;
  Text.Bytes = {0xc3};
  Text.MemSize = 1;
  Text.Flags = elf::PF_R | elf::PF_X;
  Img.Segments.push_back(Text);

  elf::PhysBlock B;
  B.Bytes.assign(4096, 0x90);
  B.Bytes[100] = 0xc3;
  Img.Blocks.push_back(B);
  // The same physical block mapped at three virtual pages.
  for (uint64_t VA : {0x10000000ull, 0x20000000ull, 0x30000000ull})
    Img.Mappings.push_back(
        elf::Mapping{VA, 0, elf::PF_R | elf::PF_X, 0, 4096});

  Vm V;
  auto Stats = vm::load(V, Img);
  ASSERT_TRUE(Stats.isOk()) << Stats.reason();
  EXPECT_EQ(Stats->MappingCount, 3u);
  EXPECT_EQ(Stats->SharedPhysPages, 1u);
  uint8_t Byte = 0;
  ASSERT_TRUE(V.Mem.read(0x20000064, &Byte, 1));
  EXPECT_EQ(Byte, 0xc3);
  // Executing inside a shared mapping works.
  V.Core.Rip = 0x10000060;
  auto R = V.run(100);
  EXPECT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
}

TEST(Loader, NonZeroMappingOverSegmentFails) {
  elf::Image Img;
  Img.Entry = 0x401000;
  elf::Segment Text;
  Text.VAddr = 0x401000;
  Text.Bytes = {0xc3};
  Text.MemSize = 1;
  Text.Flags = elf::PF_R | elf::PF_X;
  Img.Segments.push_back(Text);
  elf::PhysBlock B;
  B.Bytes.assign(4096, 0x90); // real content colliding with the segment
  Img.Blocks.push_back(B);
  Img.Mappings.push_back(
      elf::Mapping{0x401000, 0, elf::PF_R | elf::PF_X, 0, 4096});
  Vm V;
  EXPECT_FALSE(vm::load(V, Img).isOk());
}

TEST(Loader, ZeroMappingOverSegmentIsSkipped) {
  // Coarse (M > 1) blocks may cover already-mapped pages with zero bytes;
  // those pages are skipped rather than faulting the load.
  elf::Image Img;
  Img.Entry = 0x401000;
  elf::Segment Text;
  Text.VAddr = 0x401000;
  Text.Bytes = {0xc3};
  Text.MemSize = 1;
  Text.Flags = elf::PF_R | elf::PF_X;
  Img.Segments.push_back(Text);
  elf::PhysBlock B;
  B.Bytes.assign(2 * 4096, 0);
  B.Bytes[4096] = 0xc3; // content only in the second page
  Img.Blocks.push_back(B);
  Img.Mappings.push_back(
      elf::Mapping{0x401000, 0, elf::PF_R | elf::PF_X, 0, 2 * 4096});
  Vm V;
  auto Stats = vm::load(V, Img);
  ASSERT_TRUE(Stats.isOk()) << Stats.reason();
  uint8_t Byte = 0;
  ASSERT_TRUE(V.Mem.read(0x402000, &Byte, 1));
  EXPECT_EQ(Byte, 0xc3);
}

TEST(Vm, CmovAndSetcc) {
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm32(Reg::RAX, 1);
    A.movRegImm32(Reg::RBX, 7);
    A.aluRegImm(OpSize::B64, Alu::Cmp, Reg::RAX, 1); // ZF=1
    // cmove rax, rbx  (0f 44 c3 with REX.W)
    A.raw({0x48, 0x0f, 0x44, 0xc3});
    // sete cl (0f 94 c1)
    A.raw({0x0f, 0x94, 0xc1});
    A.ret();
  }));
  auto R = T.run();
  ASSERT_EQ(R.Kind, RunResult::Exit::Finished) << R.Error;
  EXPECT_EQ(T.V.Core.Gpr[0], 7u);
  EXPECT_EQ(T.V.Core.Gpr[1] & 0xff, 1u);
}

// --- Snapshot / restore (copy-on-write) -----------------------------------

namespace {

/// A non-idempotent program: reads the accumulator from memory, bumps it
/// in a loop, and stores it back — so a run that starts from a stale end
/// state (a failed rewind) produces a visibly different digest.
std::vector<uint8_t> accumProgram() {
  return assemble([](Assembler &A) {
    A.movRegImm64(Reg::RBX, DataBase);
    A.movRegMem(OpSize::B64, Reg::RAX, Mem::base(Reg::RBX));
    A.movRegImm32(Reg::RCX, 10);
    auto Loop = A.createLabel();
    A.bind(Loop);
    A.aluRegImm(OpSize::B64, Alu::Add, Reg::RAX, 3);
    A.movMemReg(OpSize::B64, Mem::base(Reg::RBX, 8), Reg::RAX);
    A.aluRegImm(OpSize::B64, Alu::Sub, Reg::RCX, 1);
    A.jccLabel(Cond::NE, Loop);
    A.movMemReg(OpSize::B64, Mem::base(Reg::RBX), Reg::RAX);
    A.ret();
  });
}

/// Guest-visible end state: all GPRs, flags, and every data word.
std::vector<uint64_t> digest(Vm &V) {
  std::vector<uint64_t> D(V.Core.Gpr.begin(), V.Core.Gpr.end());
  D.push_back((V.Core.CF ? 1 : 0) | (V.Core.ZF ? 2 : 0) |
              (V.Core.SF ? 4 : 0) | (V.Core.OF ? 8 : 0));
  for (uint64_t A = DataBase; A != DataBase + 0x2000; A += 8) {
    uint64_t W = 0;
    EXPECT_TRUE(V.Mem.read64(A, W));
    D.push_back(W);
  }
  return D;
}

} // namespace

TEST(Snapshot, RestoredRunMatchesColdReload) {
  auto Code = accumProgram();
  TestVm Cold(Code);
  ASSERT_EQ(Cold.run().Kind, RunResult::Exit::Finished);
  const std::vector<uint64_t> Want = digest(Cold.V);

  TestVm T(Code);
  VmSnapshot S = T.V.snapshot();
  ASSERT_EQ(T.run().Kind, RunResult::Exit::Finished);
  EXPECT_EQ(digest(T.V), Want);
  // The first run dirtied registers, stack and data; restore rewinds all
  // of it, so the second run is byte-identical to the cold reload...
  T.V.restore(S);
  ASSERT_EQ(T.run().Kind, RunResult::Exit::Finished);
  EXPECT_EQ(digest(T.V), Want);
  // ...and the snapshot itself survives a restore, so it can be reused.
  T.V.restore(S);
  ASSERT_EQ(T.run().Kind, RunResult::Exit::Finished);
  EXPECT_EQ(digest(T.V), Want);
}

TEST(Snapshot, PartialRunThenRestoreIsByteIdentical) {
  auto Code = accumProgram();
  TestVm Cold(Code);
  ASSERT_EQ(Cold.run().Kind, RunResult::Exit::Finished);
  const std::vector<uint64_t> Want = digest(Cold.V);

  // Property: however far a run got before the rewind — one instruction,
  // mid-loop, or to completion — the restored run ends in the same state.
  for (uint64_t N : {1ull, 2ull, 3ull, 7ull, 15ull, 100000ull}) {
    TestVm T(Code);
    VmSnapshot S = T.V.snapshot();
    (void)T.run(N);
    T.V.restore(S);
    ASSERT_EQ(T.run().Kind, RunResult::Exit::Finished) << "N=" << N;
    EXPECT_EQ(digest(T.V), Want) << "N=" << N;
  }
}

TEST(Snapshot, RestoreDropsStaleDecodeState) {
  // mov eax, 1; ret — then, after a restore, the same addresses hold
  // mov eax, 2; ret. A stale rip-keyed decode cache would replay the old
  // instruction.
  TestVm T(assemble([](Assembler &A) {
    A.movRegImm32(Reg::RAX, 1);
    A.ret();
  }));
  VmSnapshot S = T.V.snapshot();
  ASSERT_EQ(T.run().Kind, RunResult::Exit::Finished);
  EXPECT_EQ(T.V.Core.Gpr[0], 1u);
  T.V.restore(S);
  auto Code2 = assemble([](Assembler &A) {
    A.movRegImm32(Reg::RAX, 2);
    A.ret();
  });
  ASSERT_TRUE(T.V.Mem.write(CodeBase, Code2.data(), Code2.size()));
  ASSERT_EQ(T.run().Kind, RunResult::Exit::Finished);
  EXPECT_EQ(T.V.Core.Gpr[0], 2u);
}

TEST(Snapshot, CowProtectsSnapshotPages) {
  Memory M;
  ASSERT_TRUE(M.mapZero(0x1000, 0x2000, PermR | PermW));
  ASSERT_TRUE(M.write64(0x1000, 0x11));
  Memory::Snapshot S = M.snapshot();
  const uint64_t Clones = M.cowCloneCount();
  // The first post-snapshot write must clone the page, not mutate the
  // frame the snapshot references; the second hits the private copy.
  ASSERT_TRUE(M.write64(0x1000, 0x22));
  EXPECT_EQ(M.cowCloneCount(), Clones + 1);
  ASSERT_TRUE(M.write64(0x1008, 0x33));
  EXPECT_EQ(M.cowCloneCount(), Clones + 1);
  M.restore(S);
  uint64_t V = 0;
  ASSERT_TRUE(M.read64(0x1000, V));
  EXPECT_EQ(V, 0x11u);
  ASSERT_TRUE(M.read64(0x1008, V));
  EXPECT_EQ(V, 0u);
}

TEST(Memory, PokeIgnoresWriteProtection) {
  Memory M;
  ASSERT_TRUE(M.mapZero(0x1000, 0x1000, PermR));
  EXPECT_FALSE(M.write64(0x1000, 1));
  const uint8_t B[4] = {1, 2, 3, 4};
  ASSERT_TRUE(M.poke(0x1000, B, 4));
  uint8_t Out[4] = {};
  ASSERT_TRUE(M.read(0x1000, Out, 4));
  EXPECT_EQ(Out[2], 3u);
  EXPECT_FALSE(M.poke(0x5000, B, 4)); // unmapped is still an error
}
