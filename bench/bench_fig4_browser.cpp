//===- bench/bench_fig4_browser.cpp - Experiment E4 ------------*- C++ -*-===//
//
// Reproduces Figure 4: relative runtime overhead of the A2 (heap write)
// instrumentation on the Dromaeo-analog DOM kernels, for a Chrome-analog
// and a FireFox-analog binary. Paper shape: every kernel above 100%,
// Chrome geomean ~213%, FireFox geomean ~146% (FireFox lower because more
// time is spent in JIT-analog compute that A2 does not instrument).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "frontend/Prescan.h"
#include "lowfat/LowFat.h"

#include <cmath>
#include <cstdio>

using namespace e9;
using namespace e9::bench;
using namespace e9::frontend;
using namespace e9::workload;

namespace {

/// Runs one kernel config and returns the A2 empty-instrumentation
/// overhead as patched/original cost * 100.
double kernelOverheadPct(const WorkloadConfig &Config) {
  Workload W = generateWorkload(Config);
  auto Locs = prescanSelect(W.Image, SelectorKind::HeapWrites);

  RewriteOptions RO;
  RO.Patch.Spec.Kind = core::TrampolineKind::Empty;
  RO.ExtraReserved.push_back(lowfat::heapReservation());
  auto Out = rewrite(W.Image, Locs, RO);
  if (!Out.isOk()) {
    std::printf("  rewrite error: %s\n", Out.reason().c_str());
    return 0;
  }
  RunOutcome Ref = runImage(W.Image);
  RunOutcome Got = runImage(Out->Rewritten);
  if (!Ref.ok() || !Got.ok() || Ref.Rax != Got.Rax) {
    std::printf("  run error/divergence on %s\n", Config.Name.c_str());
    return 0;
  }
  return 100.0 * static_cast<double>(Got.Result.Cost) /
         static_cast<double>(Ref.Result.Cost);
}

} // namespace

int main() {
  std::printf("E4: Figure 4 — Dromaeo DOM analog overheads (A2, empty "
              "instrumentation)\n");
  std::printf("Paper shape: all kernels > 100%%; Chrome geomean ~213%%, "
              "FireFox geomean ~146%%.\n\n");
  std::printf("%-18s %14s %14s\n", "kernel", "Chrome%", "FireFox%");
  std::printf("------------------------------------------------\n");

  double LogSumC = 0, LogSumF = 0;
  size_t N = 0;
  for (const DomKernel &K : domKernels()) {
    double C = kernelOverheadPct(K.Chrome);
    double F = kernelOverheadPct(K.Firefox);
    std::printf("%-18s %14.1f %14.1f\n", K.Name.c_str(), C, F);
    if (C > 0 && F > 0) {
      LogSumC += std::log(C);
      LogSumF += std::log(F);
      ++N;
    }
  }
  if (N != 0) {
    std::printf("------------------------------------------------\n");
    std::printf("%-18s %14.1f %14.1f\n", "Geom. Mean",
                std::exp(LogSumC / static_cast<double>(N)),
                std::exp(LogSumF / static_cast<double>(N)));
  }
  return 0;
}
