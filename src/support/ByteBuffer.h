//===- support/ByteBuffer.h - Little-endian byte sink ---------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Growable byte buffer with little-endian integer accessors, used by the
/// assembler, ELF writer and trampoline builder.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_BYTEBUFFER_H
#define E9_SUPPORT_BYTEBUFFER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace e9 {

/// Growable little-endian byte buffer.
class ByteBuffer {
public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<uint8_t> Data) : Data(std::move(Data)) {}

  size_t size() const { return Data.size(); }
  bool empty() const { return Data.empty(); }
  const std::vector<uint8_t> &bytes() const { return Data; }
  std::vector<uint8_t> takeBytes() { return std::move(Data); }
  const uint8_t *data() const { return Data.data(); }
  uint8_t *data() { return Data.data(); }

  uint8_t operator[](size_t I) const {
    assert(I < Data.size() && "ByteBuffer index out of range");
    return Data[I];
  }

  /// Pre-grows capacity ahead of bulk appends (trampoline assembly, note
  /// emission) so the append loops never reallocate mid-stream.
  void reserve(size_t N) { Data.reserve(N); }

  void push8(uint8_t V) { Data.push_back(V); }

  void push16(uint16_t V) {
    push8(static_cast<uint8_t>(V));
    push8(static_cast<uint8_t>(V >> 8));
  }

  void push32(uint32_t V) {
    push16(static_cast<uint16_t>(V));
    push16(static_cast<uint16_t>(V >> 16));
  }

  void push64(uint64_t V) {
    push32(static_cast<uint32_t>(V));
    push32(static_cast<uint32_t>(V >> 32));
  }

  void pushBytes(std::initializer_list<uint8_t> Bytes) {
    Data.insert(Data.end(), Bytes.begin(), Bytes.end());
  }

  void pushBytes(const uint8_t *Bytes, size_t N) {
    Data.insert(Data.end(), Bytes, Bytes + N);
  }

  void pushBytes(const std::vector<uint8_t> &Bytes) {
    Data.insert(Data.end(), Bytes.begin(), Bytes.end());
  }

  /// Appends \p N copies of \p Fill.
  void pushFill(size_t N, uint8_t Fill) { Data.insert(Data.end(), N, Fill); }

  /// Pads the buffer with \p Fill until its size is a multiple of \p Align.
  void alignTo(size_t Align, uint8_t Fill = 0) {
    assert(Align != 0 && "alignment must be nonzero");
    while (Data.size() % Align != 0)
      Data.push_back(Fill);
  }

  /// Overwrites 4 bytes at \p Offset with \p V (little-endian).
  void patch32(size_t Offset, uint32_t V) {
    assert(Offset + 4 <= Data.size() && "patch32 out of range");
    for (unsigned I = 0; I != 4; ++I)
      Data[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  /// Overwrites 8 bytes at \p Offset with \p V (little-endian).
  void patch64(size_t Offset, uint64_t V) {
    assert(Offset + 8 <= Data.size() && "patch64 out of range");
    for (unsigned I = 0; I != 8; ++I)
      Data[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  /// Reads a little-endian integer of \p N bytes (N <= 8) at \p Offset.
  uint64_t read(size_t Offset, unsigned N) const {
    assert(N <= 8 && Offset + N <= Data.size() && "read out of range");
    uint64_t V = 0;
    for (unsigned I = 0; I != N; ++I)
      V |= static_cast<uint64_t>(Data[Offset + I]) << (8 * I);
    return V;
  }

private:
  std::vector<uint8_t> Data;
};

} // namespace e9

#endif // E9_SUPPORT_BYTEBUFFER_H
