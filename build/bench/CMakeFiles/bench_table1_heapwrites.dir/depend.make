# Empty dependencies file for bench_table1_heapwrites.
# This may be replaced when dependencies are built.
