//===- vm/Loader.h - Image loader ------------------------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads an elf::Image into a Vm: segments become private pages, and the
/// rewritten binary's mapping table is applied with *shared* physical
/// pages — one merged physical block mapped at many virtual addresses,
/// the loader-side half of physical page grouping. Also sets up the stack
/// and the exit sentinel return address.
///
//===----------------------------------------------------------------------===//

#ifndef E9_VM_LOADER_H
#define E9_VM_LOADER_H

#include "elf/Image.h"
#include "support/Status.h"
#include "vm/Vm.h"

namespace e9 {
namespace vm {

/// Load-time placement knobs.
struct LoadOptions {
  uint64_t StackTop = 0x7ffffff00000ULL;
  uint64_t StackSize = 1ull << 20;
  /// When false, only map the image (no stack/rip setup). Used to load
  /// additional images — e.g. a rewritten shared object next to an
  /// untouched main executable (§5.1 mixing patched/non-patched code).
  bool SetupStack = true;
};

/// Loader statistics (the RAM-footprint side of page grouping).
struct LoadStats {
  size_t MappingCount = 0;       ///< Mappings applied from the table.
  size_t SharedPhysPages = 0;    ///< Distinct physical pages from blocks.
  size_t TotalPages = 0;         ///< All mapped pages (segments + stack + blocks).
};

/// Maps \p Img into \p V, sets rsp (with ExitAddress as the return address
/// of the entry function) and rip = Img.Entry.
Result<LoadStats> load(Vm &V, const elf::Image &Img,
                       const LoadOptions &Opts = LoadOptions());

/// Statistics from applying just the trampoline mapping table.
struct MappingStats {
  size_t MappingCount = 0;
  size_t SharedPhysPages = 0;
};

/// Applies only \p Img's trampoline mapping table (shared physical pages),
/// assuming the segments are already mapped. load() uses this internally;
/// the repair loop uses it to delta-load a rewrite candidate over a
/// restored snapshot of the original image (segments patched via poke,
/// trampoline pages mapped fresh here).
Result<MappingStats> applyMappings(Vm &V, const elf::Image &Img);

} // namespace vm
} // namespace e9

#endif // E9_VM_LOADER_H
