# Empty dependencies file for bench_fig5_lowfat.
# This may be replaced when dependencies are built.
