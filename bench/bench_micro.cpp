//===- bench/bench_micro.cpp - google-benchmark micro suite ----*- C++ -*-===//
//
// Throughput microbenchmarks for the individual components: decoder,
// assembler, pun arithmetic, trampoline allocator, the full rewriting
// pipeline and the VM interpreter. These are not paper artifacts; they
// exist so regressions in the building blocks are visible.
//
//===----------------------------------------------------------------------===//

#include "core/Alloc.h"
#include "core/Pun.h"
#include "frontend/Prescan.h"
#include "frontend/Rewriter.h"
#include "lowfat/LowFat.h"
#include "workload/Gen.h"
#include "workload/Run.h"
#include "x86/Assembler.h"
#include "x86/Decoder.h"

#include <benchmark/benchmark.h>

using namespace e9;

namespace {

workload::WorkloadConfig microConfig() {
  workload::WorkloadConfig C;
  C.Name = "micro";
  C.Seed = 99;
  C.NumFuncs = 16;
  C.MainIters = 4;
  return C;
}

const workload::Workload &microWorkload() {
  static workload::Workload W = workload::generateWorkload(microConfig());
  return W;
}

void BM_DecoderLinear(benchmark::State &State) {
  const auto &Text = microWorkload().Image.textSegment()->Bytes;
  for (auto _ : State) {
    size_t Off = 0;
    size_t Count = 0;
    while (Off < Text.size()) {
      x86::Insn I;
      if (x86::decode(Text.data() + Off, Text.size() - Off, Off, I) !=
          x86::DecodeStatus::Ok)
        break;
      Off += I.Length;
      ++Count;
    }
    benchmark::DoNotOptimize(Count);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Text.size()));
}
BENCHMARK(BM_DecoderLinear);

void BM_AssemblerEmit(benchmark::State &State) {
  for (auto _ : State) {
    x86::Assembler A(0x401000);
    for (int I = 0; I != 100; ++I) {
      A.movRegImm32(x86::Reg::RAX, I);
      A.aluRegReg(x86::OpSize::B64, x86::Alu::Add, x86::Reg::RAX,
                  x86::Reg::RBX);
      A.movMemReg(x86::OpSize::B64, x86::Mem::base(x86::Reg::RBX, 8),
                  x86::Reg::RAX);
    }
    benchmark::DoNotOptimize(A.size());
  }
}
BENCHMARK(BM_AssemblerEmit);

void BM_PunTargetRange(benchmark::State &State) {
  uint8_t Rel32[4] = {0, 0, 0x48, 0x23};
  uint64_t Addr = 0x401000;
  for (auto _ : State) {
    auto R = core::punTargetRange(Addr, 0, Addr + 3, Rel32);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_PunTargetRange);

void BM_AllocatorConstrained(benchmark::State &State) {
  for (auto _ : State) {
    core::Allocator A;
    A.reserve(0, 0x500000);
    for (uint64_t I = 0; I != 1000; ++I) {
      auto P = A.allocate(32, Interval{0x1000000 + (I % 16) * 0x10000,
                                       0x1000000 + (I % 16 + 1) * 0x10000});
      benchmark::DoNotOptimize(P);
    }
  }
}
BENCHMARK(BM_AllocatorConstrained);

void BM_PrescanSelectA1(benchmark::State &State) {
  const workload::Workload &W = microWorkload();
  const auto &Text = W.Image.textSegment()->Bytes;
  for (auto _ : State) {
    auto Locs =
        frontend::prescanSelect(W.Image, frontend::SelectorKind::Jumps);
    benchmark::DoNotOptimize(Locs);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Text.size()));
}
BENCHMARK(BM_PrescanSelectA1);

void BM_RewriteA1(benchmark::State &State) {
  const workload::Workload &W = microWorkload();
  auto Locs = frontend::prescanSelect(W.Image, frontend::SelectorKind::Jumps);
  for (auto _ : State) {
    frontend::RewriteOptions RO;
    RO.Patch.Spec.Kind = core::TrampolineKind::Empty;
    RO.ExtraReserved.push_back(lowfat::heapReservation());
    auto Out = frontend::rewrite(W.Image, Locs, RO);
    benchmark::DoNotOptimize(Out);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Locs.size()));
}
BENCHMARK(BM_RewriteA1);

void BM_VmInterpreter(benchmark::State &State) {
  const workload::Workload &W = microWorkload();
  uint64_t Insns = 0;
  for (auto _ : State) {
    auto R = workload::runImage(W.Image);
    Insns += R.Result.InsnCount;
    benchmark::DoNotOptimize(R.Rax);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insns));
}
BENCHMARK(BM_VmInterpreter);

} // namespace

BENCHMARK_MAIN();
