//===- vm/Vm.h - x86_64 interpreter ----------------------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The x86_64 interpreter used to execute original and rewritten binaries.
/// It decodes and runs the *actual bytes* — including punned/overlapping
/// jump encodings produced by the rewriter — so semantic preservation is
/// checked end-to-end, and its instruction/cost counters substitute for the
/// paper's wall-clock overhead measurements (see DESIGN.md §2.2).
///
/// Host hooks model the runtime environment (malloc/free, instrumentation
/// callbacks, the LowFat redzone check): when rip reaches a registered hook
/// address the host function runs and the VM emulates the `ret`.
/// The int3 trap handler models the B0 signal-handler baseline with a
/// configurable kernel-roundtrip cost.
///
//===----------------------------------------------------------------------===//

#ifndef E9_VM_VM_H
#define E9_VM_VM_H

#include "vm/Cpu.h"
#include "vm/Memory.h"
#include "x86/Insn.h"

#include <functional>
#include <string>
#include <unordered_map>

namespace e9 {
namespace vm {

/// Returning to this (never-mapped) address terminates the run cleanly.
inline constexpr uint64_t ExitAddress = 0x7e9e00000000ULL;

/// Abstract execution costs. All instructions cost InsnCost; an int3 trap
/// additionally pays TrapCost (the kernel/signal round trip that makes the
/// B0 baseline orders of magnitude slower); hooks pay their own cost.
struct CostModel {
  uint64_t InsnCost = 1;
  uint64_t TrapCost = 3000;
};

/// Outcome of a Vm::run() call.
struct RunResult {
  enum class Exit {
    Finished, ///< Returned to ExitAddress or executed hlt.
    Fault,    ///< Decode error, memory fault, or a failing hook.
    Ud2,      ///< Executed ud2 (deliberate abort marker).
    InsnLimit ///< Instruction budget exhausted.
  };
  Exit Kind = Exit::Finished;
  std::string Error;
  uint64_t InsnCount = 0;
  uint64_t Cost = 0;

  bool ok() const { return Kind == Exit::Finished; }
};

/// A frozen machine state: register file + copy-on-write memory image.
/// Host hooks and the trap handler are deliberately *not* captured — they
/// are std::functions owned by the harness, which re-registers them per
/// run (registerHook/setTrapHandler overwrite in place).
struct VmSnapshot {
  Cpu Core;
  Memory::Snapshot Mem;
};

/// The interpreter.
class Vm {
public:
  /// A host hook behaves like a called function: it reads arguments from
  /// the register file, may touch memory, and its "ret" is emulated by the
  /// VM. A failing Status faults the program.
  using HostHook = std::function<Status(Vm &)>;

  /// int3 handler (B0 baseline). Receives the trap address and must leave
  /// Core.Rip at the next instruction to execute.
  using TrapHandler = std::function<Status(Vm &, uint64_t TrapAddr)>;

  Memory Mem;
  Cpu Core;
  CostModel Costs;

  /// Optional per-instruction observer (tracing/debugging); called with
  /// rip before each instruction executes. Slows the run when set.
  std::function<void(uint64_t)> OnStep;

  /// Registers \p Fn at \p Addr with an abstract execution cost.
  void registerHook(uint64_t Addr, HostHook Fn, uint64_t Cost = 0);
  void setTrapHandler(TrapHandler Fn) { OnTrap = std::move(Fn); }

  /// Runs from Core.Rip for at most \p MaxInsns instructions.
  RunResult run(uint64_t MaxInsns);

  /// Freezes registers + memory (copy-on-write, see Memory::snapshot).
  /// The StochFuzz fork-server trick, in-process: the repair loop loads
  /// the original image once and rewinds to this point per candidate.
  VmSnapshot snapshot();

  /// Rewinds to \p S. The decode cache is dropped because the restored
  /// text may be re-patched before the next run (candidate images differ
  /// byte-wise at the same rip). \p S remains valid for further restores.
  void restore(const VmSnapshot &S);

  /// Executes one decoded instruction (public so the B0 trap handler can
  /// emulate the displaced original). \p Bytes are the instruction bytes
  /// (used for verbatim semantics); rip side effects are applied.
  enum class ExecKind { Ok, Halt, Ud2 };
  Status execInsn(const x86::Insn &I, const uint8_t *Bytes, ExecKind &Kind);

  /// Stack helpers.
  Status push64(uint64_t V);
  Status pop64(uint64_t &V);

private:
  struct HookEntry {
    HostHook Fn;
    uint64_t Cost;
  };
  std::unordered_map<uint64_t, HookEntry> Hooks;
  TrapHandler OnTrap;
  /// Decoded-instruction cache keyed by rip. Valid because guest code is
  /// immutable while running (self-modifying code is excluded by the same
  /// assumption the paper makes for rewriting, §2.2).
  std::unordered_map<uint64_t, x86::Insn> DecodeCache;
};

} // namespace vm
} // namespace e9

#endif // E9_VM_VM_H
