//===- tests/serve_test.cpp - socket server + session API ------*- C++ -*-===//
//
// The rewriting service end to end over loopback clients: the versioned
// hello handshake, concurrent sessions over a Unix socket, byte-identity
// of served output with a direct rewrite for several jobs values,
// mid-message client disconnects, garbage streams, per-session quota
// rejection, capacity rejection, TCP transport, and the graceful
// shutdown drain. Everything runs in-process (Server on its own thread,
// raw client sockets on the test thread), so teardown ordering and stop
// conditions are deterministic.
//
//===----------------------------------------------------------------------===//

#include "api/Driver.h"
#include "api/Net.h"
#include "api/Protocol.h"
#include "api/Serve.h"
#include "api/Session.h"

#include "elf/Image.h"
#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "support/Fd.h"
#include "workload/Gen.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <netinet/in.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace e9;
using support::Fd;

namespace {

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "/serve_" + std::to_string(::getpid()) +
         "_" + Name;
}

std::vector<uint8_t> fileBytes(const std::string &Path) {
  std::ifstream F(Path, std::ios::binary);
  EXPECT_TRUE(F) << "cannot read " << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(F),
                              std::istreambuf_iterator<char>());
}

/// Generates a deterministic workload and writes it to a temp file.
std::string genWorkloadFile(const char *Name, uint64_t Seed,
                            unsigned Funcs) {
  workload::WorkloadConfig C;
  C.Name = Name;
  C.Seed = Seed;
  C.NumFuncs = Funcs;
  workload::Workload W = workload::generateWorkload(C);
  std::string Path = tmpPath(Name);
  EXPECT_TRUE(elf::writeFile(W.Image, Path).isOk());
  return Path;
}

/// The RewriteOptions `e9tool rewrite <in> <out> --strict` builds — the
/// byte-identity baseline for served output.
frontend::RewriteOptions directOptions() {
  frontend::RewriteOptions Opts;
  Opts.Patch.Spec.Kind = core::TrampolineKind::Empty;
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.withStrict().withJobs(1);
  return Opts;
}

/// Rewrites \p Bin directly (jumps selector, strict) and returns the
/// output bytes.
std::vector<uint8_t> directRewriteBytes(const std::string &Bin) {
  auto Img = elf::readFile(Bin);
  EXPECT_TRUE(Img.isOk());
  frontend::DisasmResult Dis = frontend::linearDisassemble(*Img);
  auto Out = frontend::rewrite(*Img, frontend::selectJumps(Dis.Insns),
                               directOptions());
  EXPECT_TRUE(Out.isOk()) << Out.reason();
  const std::string Path = tmpPath("direct_ref.elf");
  EXPECT_TRUE(elf::writeFile(Out->Rewritten, Path).isOk());
  return fileBytes(Path);
}

/// A blocking loopback client speaking the JSONL protocol.
class Client {
public:
  static Client connectUnix(const std::string &Path) {
    Client C;
    C.Sock = Fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    EXPECT_TRUE(C.Sock.valid());
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    EXPECT_LT(Path.size(), sizeof(Addr.sun_path));
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    C.Connected = ::connect(C.Sock.get(),
                            reinterpret_cast<sockaddr *>(&Addr),
                            sizeof(Addr)) == 0;
    return C;
  }

  static Client connectTcp(uint16_t Port) {
    Client C;
    C.Sock = Fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    EXPECT_TRUE(C.Sock.valid());
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Port);
    C.Connected = ::connect(C.Sock.get(),
                            reinterpret_cast<sockaddr *>(&Addr),
                            sizeof(Addr)) == 0;
    return C;
  }

  bool connected() const { return Connected; }

  void send(const std::string &Data) {
    size_t Off = 0;
    while (Off != Data.size()) {
      ssize_t N = ::send(Sock.get(), Data.data() + Off, Data.size() - Off,
                         MSG_NOSIGNAL);
      if (N < 0 && errno == EINTR)
        continue;
      ASSERT_GT(N, 0) << "client send failed: " << std::strerror(errno);
      Off += (size_t)N;
    }
  }

  void sendLine(const std::string &Line) { send(Line + "\n"); }

  /// Reads one '\n'-terminated line; "" on EOF/timeout.
  std::string readLine(int TimeoutMs = 10000) {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      if (support::pollReadable(Sock.get(), TimeoutMs) !=
          support::PollResult::Ready)
        return "";
      char Chunk[4096];
      ssize_t N = ::read(Sock.get(), Chunk, sizeof(Chunk));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return "";
      Buf.append(Chunk, (size_t)N);
    }
  }

  /// Reads until EOF; returns everything (including buffered).
  std::string readAll(int TimeoutMs = 10000) {
    for (;;) {
      if (support::pollReadable(Sock.get(), TimeoutMs) !=
          support::PollResult::Ready)
        break;
      char Chunk[4096];
      ssize_t N = ::read(Sock.get(), Chunk, sizeof(Chunk));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        break;
      Buf.append(Chunk, (size_t)N);
    }
    return std::move(Buf);
  }

  void close() { Sock.reset(); }

private:
  Fd Sock;
  std::string Buf;
  bool Connected = false;
};

/// Starts a Server on a fresh Unix socket + its own thread; stops and
/// joins on destruction.
class TestServer {
public:
  explicit TestServer(api::ServeOptions Opts = api::ServeOptions(),
                      const char *Tag = "sock") {
    SockPath = tmpPath(std::string(Tag) + ".sock");
    ::unlink(SockPath.c_str());
    auto L = api::Listener::unixSocket(SockPath);
    EXPECT_TRUE(L.isOk()) << L.reason();
    S = std::make_unique<api::Server>(L.take(), Opts);
    T = std::thread([this] { S->run(); });
    // Wait until the accept loop is live (run() sets Running first).
    while (!S->running())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ~TestServer() { stop(); }

  void stop() {
    if (S)
      S->shutdown();
    if (T.joinable())
      T.join();
  }

  api::Server &server() { return *S; }
  const std::string &path() const { return SockPath; }

private:
  std::string SockPath;
  std::unique_ptr<api::Server> S;
  std::thread T;
};

/// The canonical "rewrite Bin to Out, strict, jobs=J" script.
std::string jobScript(const std::string &Bin, const std::string &Out,
                      unsigned Jobs) {
  return "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
         "{\"type\":\"template\",\"name\":\"pass\",\"body\":"
         "\"$instruction $continue\"}\n"
         "{\"type\":\"option\",\"name\":\"jobs\",\"value\":\"" +
         std::to_string(Jobs) + "\"}\n"
         "{\"type\":\"option\",\"name\":\"strict\",\"value\":\"true\"}\n"
         "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":"
         "\"pass\"}\n"
         "{\"type\":\"emit\",\"path\":\"" + Out + "\"}\n";
}

} // namespace

//===----------------------------------------------------------------------===//
// Handshake
//===----------------------------------------------------------------------===//

TEST(Handshake, HelloNegotiatesVersionAndCapabilities) {
  std::ostringstream Out;
  api::Session S([&Out](std::string_view L) { Out << L << '\n'; });
  EXPECT_FALSE(S.helloNegotiated());
  EXPECT_TRUE(S.feed(1, "{\"type\":\"hello\",\"version\":\"1.0\"}"));
  EXPECT_TRUE(S.helloNegotiated());
  const std::string R = Out.str();
  EXPECT_NE(R.find("\"type\":\"hello\""), std::string::npos) << R;
  EXPECT_NE(R.find("\"version\":\"1.0\""), std::string::npos) << R;
  EXPECT_NE(R.find("\"capabilities\":\"templates,repair,profile\""),
            std::string::npos)
      << R;
  EXPECT_TRUE(S.finish(2));
}

TEST(Handshake, ResponsesEchoNegotiatedVersion) {
  std::ostringstream Out;
  api::Session S([&Out](std::string_view L) { Out << L << '\n'; });
  ASSERT_TRUE(S.feed(1, "{\"type\":\"hello\",\"version\":\"1.7\"}"));
  // Minor negotiation picks the lower side: server is 1.0.
  EXPECT_NE(Out.str().find("\"version\":\"1.0\""), std::string::npos);
  // A later error response carries the negotiated major in "v".
  EXPECT_FALSE(S.feed(2, "{\"type\":\"emit\",\"path\":\"x\"}"));
  EXPECT_NE(Out.str().find("\"type\":\"error\",\"v\":1"),
            std::string::npos)
      << Out.str();
}

TEST(Handshake, UnknownMajorFailsClosed) {
  std::ostringstream Out;
  api::Session S([&Out](std::string_view L) { Out << L << '\n'; });
  EXPECT_FALSE(S.feed(1, "{\"type\":\"hello\",\"version\":\"2.0\"}"));
  EXPECT_TRUE(S.stats().ProtocolError);
  const std::string R = Out.str();
  EXPECT_NE(R.find("\"kind\":\"version\""), std::string::npos) << R;
  EXPECT_NE(R.find("unsupported protocol major version 2"),
            std::string::npos)
      << R;
}

TEST(Handshake, MalformedVersionAndMisplacedHelloFailClosed) {
  {
    std::ostringstream Out;
    api::Session S([&Out](std::string_view L) { Out << L << '\n'; });
    EXPECT_FALSE(S.feed(1, "{\"type\":\"hello\",\"version\":\"one\"}"));
    EXPECT_NE(Out.str().find("\"kind\":\"version\""), std::string::npos);
  }
  {
    std::ostringstream Out;
    api::Session S([&Out](std::string_view L) { Out << L << '\n'; });
    ASSERT_TRUE(S.feed(
        1, "{\"type\":\"template\",\"name\":\"t\",\"body\":\"$continue\"}"));
    EXPECT_FALSE(S.feed(2, "{\"type\":\"hello\",\"version\":\"1.0\"}"));
    EXPECT_NE(Out.str().find("hello must be the first message"),
              std::string::npos);
  }
  {
    std::ostringstream Out;
    api::Session S([&Out](std::string_view L) { Out << L << '\n'; });
    ASSERT_TRUE(S.feed(1, "{\"type\":\"hello\",\"version\":\"1.0\"}"));
    EXPECT_FALSE(S.feed(2, "{\"type\":\"hello\",\"version\":\"1.0\"}"));
    EXPECT_NE(Out.str().find("duplicate hello"), std::string::npos);
  }
}

TEST(Handshake, VersionParser) {
  unsigned Maj = 0, Min = 0;
  EXPECT_TRUE(api::parseProtocolVersion("1.0", Maj, Min));
  EXPECT_EQ(Maj, 1u);
  EXPECT_EQ(Min, 0u);
  EXPECT_TRUE(api::parseProtocolVersion("1", Maj, Min));
  EXPECT_EQ(Min, 0u);
  EXPECT_TRUE(api::parseProtocolVersion("12.34", Maj, Min));
  EXPECT_EQ(Maj, 12u);
  EXPECT_EQ(Min, 34u);
  EXPECT_FALSE(api::parseProtocolVersion("", Maj, Min));
  EXPECT_FALSE(api::parseProtocolVersion("1.", Maj, Min));
  EXPECT_FALSE(api::parseProtocolVersion(".1", Maj, Min));
  EXPECT_FALSE(api::parseProtocolVersion("1.0.0", Maj, Min));
  EXPECT_FALSE(api::parseProtocolVersion("v1", Maj, Min));
  EXPECT_FALSE(api::parseProtocolVersion("1.x", Maj, Min));
}

//===----------------------------------------------------------------------===//
// Quotas (session API level)
//===----------------------------------------------------------------------===//

TEST(Quota, PatchRequestQuotaRejectsMessageNotSession) {
  const std::string Bin = genWorkloadFile("quota_patch.elf", 21, 8);
  const std::string Out = tmpPath("quota_patch_out.elf");
  api::SessionOptions Opts;
  Opts.Limits.MaxPatchRequests = 1;
  std::ostringstream Resp;
  api::Session S([&Resp](std::string_view L) { Resp << L << '\n'; },
                 Opts);
  ASSERT_TRUE(S.feed(
      1, "{\"type\":\"template\",\"name\":\"pass\",\"body\":"
         "\"$instruction $continue\"}"));
  ASSERT_TRUE(S.feed(2, "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}"));
  ASSERT_TRUE(S.feed(
      3, "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"pass\"}"));
  // Second patch request trips the quota: typed error, stream alive.
  ASSERT_TRUE(S.feed(
      4, "{\"type\":\"patch\",\"select\":\"all\",\"template\":\"pass\"}"));
  EXPECT_NE(Resp.str().find("\"kind\":\"quota\""), std::string::npos)
      << Resp.str();
  EXPECT_NE(Resp.str().find("patch-request quota"), std::string::npos);
  ASSERT_TRUE(S.feed(5, "{\"type\":\"emit\",\"path\":\"" + Out + "\"}"));
  EXPECT_TRUE(S.finish(6));
  EXPECT_EQ(S.stats().JobsOk, 1u);
  EXPECT_EQ(S.stats().QuotaRejected, 1u);
  EXPECT_FALSE(S.stats().ProtocolError);
  // The accepted first request ran: output equals the direct rewrite
  // (the rejected "all" request did not widen the patch set).
  EXPECT_EQ(fileBytes(Out), directRewriteBytes(Bin));
}

TEST(Quota, TemplateQuotaRejectsDefinition) {
  api::SessionOptions Opts;
  Opts.Limits.MaxTemplates = 1;
  std::ostringstream Resp;
  api::Session S([&Resp](std::string_view L) { Resp << L << '\n'; },
                 Opts);
  ASSERT_TRUE(S.feed(
      1, "{\"type\":\"template\",\"name\":\"a\",\"body\":\"$continue\"}"));
  ASSERT_TRUE(S.feed(
      2, "{\"type\":\"template\",\"name\":\"b\",\"body\":\"$continue\"}"));
  EXPECT_NE(Resp.str().find("template quota"), std::string::npos);
  EXPECT_EQ(S.stats().QuotaRejected, 1u);
  EXPECT_FALSE(S.stats().ProtocolError);
}

TEST(Quota, JobQuotaCarriesRejectedJobToItsEmit) {
  const std::string Bin = genWorkloadFile("quota_job.elf", 22, 8);
  const std::string OutA = tmpPath("quota_job_a.elf");
  const std::string OutB = tmpPath("quota_job_b.elf");
  api::SessionOptions Opts;
  Opts.Limits.MaxJobs = 1;
  std::ostringstream Resp;
  api::Session S([&Resp](std::string_view L) { Resp << L << '\n'; },
                 Opts);
  const std::string Script =
      "{\"type\":\"template\",\"name\":\"pass\",\"body\":"
      "\"$instruction $continue\"}\n" +
      std::string("{\"type\":\"binary\",\"path\":\"") + Bin + "\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"pass\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + OutA + "\"}\n"
      "{\"type\":\"binary\",\"path\":\"" + Bin + "\"}\n"
      "{\"type\":\"patch\",\"select\":\"jumps\",\"template\":\"pass\"}\n"
      "{\"type\":\"emit\",\"path\":\"" + OutB + "\"}\n";
  std::istringstream In(Script);
  std::string Line;
  size_t LineNo = 0;
  bool Alive = true;
  while (Alive && std::getline(In, Line))
    Alive = S.feed(++LineNo, Line);
  EXPECT_TRUE(Alive);
  EXPECT_TRUE(S.finish(LineNo + 1));
  // Job 1 ran; job 2 was quota-rejected but the stream stayed coherent
  // to its emit, which reports a failed job.
  EXPECT_EQ(S.stats().JobsOk, 1u);
  EXPECT_EQ(S.stats().JobsFailed, 1u);
  EXPECT_EQ(S.stats().QuotaRejected, 1u);
  EXPECT_NE(Resp.str().find("job quota"), std::string::npos);
  EXPECT_NE(Resp.str().find("\"job\":2,\"ok\":false"), std::string::npos)
      << Resp.str();
  EXPECT_EQ(fileBytes(OutA), directRewriteBytes(Bin));
  EXPECT_NE(::access(OutB.c_str(), F_OK), 0); // never written
}

//===----------------------------------------------------------------------===//
// Socket service
//===----------------------------------------------------------------------===//

TEST(Serve, ServedOutputByteIdenticalToDirectRewriteAcrossJobs) {
  const std::string Bin = genWorkloadFile("serve_det.elf", 2026, 48);
  const std::vector<uint8_t> Want = directRewriteBytes(Bin);
  TestServer Srv;
  for (unsigned Jobs : {1u, 2u, 4u}) {
    Client C = Client::connectUnix(Srv.path());
    ASSERT_TRUE(C.connected());
    C.sendLine("{\"type\":\"hello\",\"version\":\"1.0\"}");
    EXPECT_NE(C.readLine().find("\"type\":\"hello\""), std::string::npos);
    const std::string Out =
        tmpPath("serve_det_out_" + std::to_string(Jobs) + ".elf");
    C.send(jobScript(Bin, Out, Jobs));
    const std::string Status = C.readLine();
    EXPECT_NE(Status.find("\"ok\":true"), std::string::npos) << Status;
    EXPECT_NE(Status.find("\"v\":1"), std::string::npos) << Status;
    C.close();
    EXPECT_EQ(fileBytes(Out), Want) << "jobs=" << Jobs;
  }
  Srv.stop();
  obs::MetricsSnapshot M = Srv.server().metrics();
  EXPECT_EQ(M.counter("serve.sessions_opened"), 3u);
  EXPECT_EQ(M.counter("serve.sessions_ok"), 3u);
  EXPECT_EQ(M.counter("serve.jobs_ok"), 3u);
}

TEST(Serve, ConcurrentSessionsAllComplete) {
  const std::string Bin = genWorkloadFile("serve_conc.elf", 31, 24);
  const std::vector<uint8_t> Want = directRewriteBytes(Bin);
  TestServer Srv;
  constexpr unsigned N = 4;
  std::vector<std::thread> Threads;
  std::vector<std::string> Statuses(N);
  for (unsigned I = 0; I != N; ++I) {
    Threads.emplace_back([&, I] {
      Client C = Client::connectUnix(Srv.path());
      ASSERT_TRUE(C.connected());
      const std::string Out =
          tmpPath("serve_conc_out_" + std::to_string(I) + ".elf");
      C.send(jobScript(Bin, Out, 1 + I % 2));
      Statuses[I] = C.readLine(30000);
      C.close();
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (unsigned I = 0; I != N; ++I) {
    // Each session saw only its own job (job numbering restarts at 1
    // per session) and produced the exact direct-rewrite bytes.
    EXPECT_NE(Statuses[I].find("\"job\":1,\"ok\":true"), std::string::npos)
        << Statuses[I];
    EXPECT_EQ(
        fileBytes(tmpPath("serve_conc_out_" + std::to_string(I) + ".elf")),
        Want)
        << I;
  }
  Srv.stop();
  EXPECT_EQ(Srv.server().metrics().counter("serve.sessions_ok"), (uint64_t)N);
}

TEST(Serve, MidMessageDisconnectIsolatedFromNeighbour) {
  const std::string Bin = genWorkloadFile("serve_disc.elf", 32, 16);
  TestServer Srv;
  {
    // Disconnect mid-job (no emit) — and mid-message: a half JSONL line.
    Client C = Client::connectUnix(Srv.path());
    ASSERT_TRUE(C.connected());
    C.sendLine("{\"type\":\"binary\",\"path\":\"" + Bin + "\"}");
    C.send("{\"type\":\"patch\",\"sel"); // torn message, then gone
    C.close();
  }
  // A neighbour connected after the failure is served normally.
  const std::string Out = tmpPath("serve_disc_out.elf");
  Client C2 = Client::connectUnix(Srv.path());
  ASSERT_TRUE(C2.connected());
  C2.send(jobScript(Bin, Out, 2));
  EXPECT_NE(C2.readLine(30000).find("\"ok\":true"), std::string::npos);
  C2.close();
  Srv.stop();
  obs::MetricsSnapshot M = Srv.server().metrics();
  EXPECT_EQ(M.counter("serve.sessions_failed"), 1u);
  EXPECT_EQ(M.counter("serve.sessions_ok"), 1u);
  EXPECT_EQ(fileBytes(Out), directRewriteBytes(Bin));
}

TEST(Serve, GarbageStreamGetsStructuredErrorAndTeardown) {
  TestServer Srv;
  Client C = Client::connectUnix(Srv.path());
  ASSERT_TRUE(C.connected());
  C.sendLine("this is not json at all");
  const std::string All = C.readAll();
  EXPECT_NE(All.find("\"type\":\"error\""), std::string::npos) << All;
  EXPECT_NE(All.find("\"kind\":\"protocol\""), std::string::npos) << All;
  C.close();
  Srv.stop();
  EXPECT_EQ(Srv.server().metrics().counter("serve.sessions_failed"), 1u);
}

TEST(Serve, OverQuotaRejectionOverSocket) {
  const std::string Bin = genWorkloadFile("serve_quota.elf", 33, 8);
  api::ServeOptions Opts;
  Opts.Session.Limits.MaxPatchRequests = 1;
  TestServer Srv(Opts);
  Client C = Client::connectUnix(Srv.path());
  ASSERT_TRUE(C.connected());
  const std::string Out = tmpPath("serve_quota_out.elf");
  C.sendLine("{\"type\":\"template\",\"name\":\"pass\",\"body\":"
             "\"$instruction $continue\"}");
  C.sendLine("{\"type\":\"binary\",\"path\":\"" + Bin + "\"}");
  C.sendLine("{\"type\":\"patch\",\"select\":\"jumps\",\"template\":"
             "\"pass\"}");
  C.sendLine("{\"type\":\"patch\",\"select\":\"all\",\"template\":"
             "\"pass\"}");
  const std::string Err = C.readLine();
  EXPECT_NE(Err.find("\"kind\":\"quota\""), std::string::npos) << Err;
  // The session survived the rejection: the job still completes.
  C.sendLine("{\"type\":\"emit\",\"path\":\"" + Out + "\"}");
  EXPECT_NE(C.readLine(30000).find("\"ok\":true"), std::string::npos);
  C.close();
  Srv.stop();
  obs::MetricsSnapshot M = Srv.server().metrics();
  EXPECT_EQ(M.counter("serve.quota_rejected"), 1u);
  EXPECT_EQ(M.counter("serve.sessions_ok"), 1u);
  EXPECT_EQ(fileBytes(Out), directRewriteBytes(Bin));
}

TEST(Serve, CapacityRejectionIsTyped) {
  api::ServeOptions Opts;
  Opts.MaxConnections = 0; // everything is over capacity
  TestServer Srv(Opts);
  Client C = Client::connectUnix(Srv.path());
  ASSERT_TRUE(C.connected());
  const std::string All = C.readAll();
  EXPECT_NE(All.find("\"kind\":\"capacity\""), std::string::npos) << All;
  C.close();
  Srv.stop();
  EXPECT_EQ(Srv.server().metrics().counter("serve.capacity_rejected"), 1u);
}

TEST(Serve, TcpLoopbackTransport) {
  const std::string Bin = genWorkloadFile("serve_tcp.elf", 34, 12);
  auto L = api::Listener::tcpLoopback(0);
  ASSERT_TRUE(L.isOk()) << L.reason();
  api::Server Srv(L.take(), api::ServeOptions());
  std::thread T([&Srv] { Srv.run(); });
  while (!Srv.running())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_NE(Srv.port(), 0u);

  Client C = Client::connectTcp(Srv.port());
  ASSERT_TRUE(C.connected());
  C.sendLine("{\"type\":\"hello\",\"version\":\"1.0\"}");
  EXPECT_NE(C.readLine().find("\"capabilities\""), std::string::npos);
  const std::string Out = tmpPath("serve_tcp_out.elf");
  C.send(jobScript(Bin, Out, 2));
  EXPECT_NE(C.readLine(30000).find("\"ok\":true"), std::string::npos);
  C.close();
  Srv.shutdown();
  T.join();
  EXPECT_EQ(fileBytes(Out), directRewriteBytes(Bin));
}

TEST(Serve, SplitWritesReassembleIntoMessages) {
  // A client trickling bytes (worst-case framing) must parse exactly
  // like a one-shot writer: the reader reassembles lines across reads.
  const std::string Bin = genWorkloadFile("serve_split.elf", 35, 8);
  TestServer Srv;
  Client C = Client::connectUnix(Srv.path());
  ASSERT_TRUE(C.connected());
  const std::string Out = tmpPath("serve_split_out.elf");
  const std::string Script = jobScript(Bin, Out, 1);
  for (size_t I = 0; I < Script.size(); I += 7)
    C.send(Script.substr(I, 7));
  EXPECT_NE(C.readLine(30000).find("\"ok\":true"), std::string::npos);
  C.close();
  Srv.stop();
  EXPECT_EQ(fileBytes(Out), directRewriteBytes(Bin));
}

//===----------------------------------------------------------------------===//
// Graceful shutdown
//===----------------------------------------------------------------------===//

TEST(Shutdown, DrainsInFlightSessionThenRefusesNew) {
  const std::string Bin = genWorkloadFile("serve_drain.elf", 36, 16);
  TestServer Srv;
  const std::string SockPath = Srv.path();

  // Open a job, then request shutdown while it is unfinished.
  Client C = Client::connectUnix(SockPath);
  ASSERT_TRUE(C.connected());
  C.sendLine("{\"type\":\"binary\",\"path\":\"" + Bin + "\"}");
  C.sendLine("{\"type\":\"template\",\"name\":\"pass\",\"body\":"
             "\"$instruction $continue\"}");
  C.sendLine("{\"type\":\"patch\",\"select\":\"jumps\",\"template\":"
             "\"pass\"}");

  std::thread Stopper([&Srv] { Srv.server().shutdown(); });
  // Give the shutdown a moment to close the listener, then finish the
  // in-flight job: the drain must still serve it to completion.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::string Out = tmpPath("serve_drain_out.elf");
  C.sendLine("{\"type\":\"emit\",\"path\":\"" + Out + "\"}");
  const std::string Status = C.readLine(30000);
  EXPECT_NE(Status.find("\"ok\":true"), std::string::npos) << Status;
  C.close();
  Stopper.join();

  // Drained and stopped: the socket node is gone, new connects fail.
  Client C2 = Client::connectUnix(SockPath);
  EXPECT_FALSE(C2.connected());
  EXPECT_EQ(fileBytes(Out), directRewriteBytes(Bin));
  obs::MetricsSnapshot M = Srv.server().metrics();
  EXPECT_EQ(M.counter("serve.sessions_ok"), 1u);
  EXPECT_EQ(M.counter("serve.jobs_ok"), 1u);
}

TEST(Shutdown, DrainDeadlineFailsUnfinishedJobClosed) {
  const std::string Bin = genWorkloadFile("serve_stall.elf", 37, 8);
  api::ServeOptions Opts;
  Opts.DrainTimeoutMs = 300; // stalling client gets 300ms of grace
  TestServer Srv(Opts);
  Client C = Client::connectUnix(Srv.path());
  ASSERT_TRUE(C.connected());
  C.sendLine("{\"type\":\"binary\",\"path\":\"" + Bin + "\"}");
  // Never send the emit: the drain deadline must cut the session loose
  // (shutdown() returning at all is the real assertion here).
  Srv.server().shutdown();
  const std::string All = C.readAll(2000);
  EXPECT_NE(All.find("stream ended inside job"), std::string::npos) << All;
  C.close();
  EXPECT_EQ(Srv.server().metrics().counter("serve.sessions_failed"), 1u);
}

//===----------------------------------------------------------------------===//
// Net layer
//===----------------------------------------------------------------------===//

TEST(Net, UnixListenerRefusesToStealALivePath) {
  const std::string Path = tmpPath("steal.sock");
  ::unlink(Path.c_str());
  auto A = api::Listener::unixSocket(Path);
  ASSERT_TRUE(A.isOk()) << A.reason();
  auto B = api::Listener::unixSocket(Path);
  EXPECT_FALSE(B.isOk()); // fail closed: never unlink a live server
}

TEST(Net, UnixListenerUnlinksOnClose) {
  const std::string Path = tmpPath("unlink.sock");
  ::unlink(Path.c_str());
  {
    auto L = api::Listener::unixSocket(Path);
    ASSERT_TRUE(L.isOk());
    EXPECT_EQ(::access(Path.c_str(), F_OK), 0);
  }
  EXPECT_NE(::access(Path.c_str(), F_OK), 0);
}

TEST(Net, OverlongUnixPathFails) {
  auto L = api::Listener::unixSocket(std::string(200, 'x'));
  EXPECT_FALSE(L.isOk());
  EXPECT_NE(L.reason().find("too long"), std::string::npos);
}

TEST(Net, WriteTimeoutFailsClosedOnUndrainingPeer) {
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  Fd Reader(Pair[0]);
  // Tiny queue bound + tiny timeout: a peer that never reads must fail
  // the connection instead of blocking its thread forever.
  api::Connection C(Fd(Pair[1]), /*WriteQueueLimit=*/1024,
                    /*WriteTimeoutMs=*/100);
  const std::string Big(1 << 22, 'x'); // far beyond any socket buffer
  Status S = C.writeLine(Big);
  EXPECT_FALSE(S.isOk());
  EXPECT_NE(S.reason().find("not draining"), std::string::npos)
      << S.reason();
}

TEST(Net, EofDeliversFinalUnterminatedLine) {
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  {
    Fd Writer(Pair[0]);
    ASSERT_EQ(::send(Writer.get(), "tail-no-newline", 15, MSG_NOSIGNAL),
              15);
  } // close: EOF
  api::Connection C(Fd(Pair[1]), 1024, 100);
  std::string Line;
  EXPECT_EQ(C.readLine(Line, 1000), api::Connection::ReadResult::Line);
  EXPECT_EQ(Line, "tail-no-newline");
  EXPECT_EQ(C.readLine(Line, 10), api::Connection::ReadResult::Eof);
}
