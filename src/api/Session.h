//===- api/Session.h - One patch-request protocol session ------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session-oriented core of the patch-request API: one Session is one
/// client conversation (open -> feed messages -> finish), independent of
/// the transport carrying it. `e9tool apply`, `serve --stdin` and every
/// socket connection of `serve --unix/--tcp` all run the same Session —
/// which is what makes the served output byte-identical to a direct
/// `e9tool rewrite` of the same input: there is exactly one code path
/// from request lines to RewriteOptions.
///
/// Per-session state: the compiled-template LRU cache, the currently
/// open job (binary..emit span), the negotiated protocol version, and
/// the quota accounting. Responses leave through a caller-provided sink
/// (one line per call, no trailing newline), so a socket transport can
/// apply its own backpressure policy without the session knowing.
///
/// Error taxonomy (all structured, all on the response stream):
///
///   kind="protocol"  fatal — the stream cannot be trusted past this
///                    point; feed() returns false and the transport
///                    must tear the session down.
///   kind="version"   fatal — handshake failure (unknown major).
///   kind="quota"     recoverable — the offending *message* is rejected
///                    and the stream continues; an over-quota job is
///                    carried to its emit and reported as a failed job.
///
/// Job failures (unreadable input, rewrite errors) are not errors at the
/// session level at all: they are `status ok:false` responses, and the
/// stream continues — one bad job never kills its neighbours.
///
//===----------------------------------------------------------------------===//

#ifndef E9_API_SESSION_H
#define E9_API_SESSION_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

namespace e9 {
namespace api {

/// Receives one rendered JSONL response line (no trailing newline).
using ResponseSink = std::function<void(std::string_view Line)>;

/// Per-session resource ceilings; 0 means unlimited. Over-quota messages
/// are rejected with a typed `kind:"quota"` error, not a disconnect.
struct SessionLimits {
  /// Jobs (binary..emit spans) a session may run.
  uint64_t MaxJobs = 0;
  /// Patch-request messages a session may send (across all jobs).
  uint64_t MaxPatchRequests = 0;
  /// Template definitions a session may install.
  uint64_t MaxTemplates = 0;
};

struct SessionOptions {
  /// When nonzero, overrides the script's "jobs" option for every job
  /// (the `e9tool apply --jobs=N` knob). Output bytes do not depend on
  /// this value (see frontend/Shard.h).
  unsigned JobsOverride = 0;
  SessionLimits Limits;
};

struct SessionStats {
  size_t JobsOk = 0;
  size_t JobsFailed = 0;
  /// Messages rejected by a quota ceiling (stream kept alive).
  uint64_t QuotaRejected = 0;
  /// True when the stream stopped on a protocol violation (an error
  /// response was emitted and the remaining input was not processed).
  bool ProtocolError = false;

  bool ok() const { return !ProtocolError && JobsFailed == 0; }
  int exitCode() const { return ok() ? 0 : 1; }
};

/// One client conversation. Construction opens the session; feed() it
/// one request line at a time; finish() at end-of-stream. Not
/// thread-safe — a session belongs to exactly one transport thread
/// (concurrency happens across sessions, and inside a job's rewrite).
class Session {
public:
  explicit Session(ResponseSink Sink,
                   SessionOptions Opts = SessionOptions());
  ~Session();
  Session(Session &&) = delete;
  Session &operator=(Session &&) = delete;

  /// Handles one request line. Returns false on a fatal (protocol or
  /// version) error — the error response has already been emitted and
  /// the transport must stop feeding this session.
  bool feed(size_t LineNo, std::string_view Line);

  /// End-of-stream: an unfinished job is a protocol violation (returns
  /// false, error emitted). Idempotent.
  bool finish(size_t LineNo);

  /// True while a binary..emit span is open — the drain logic of a
  /// graceful shutdown waits for open jobs, not idle keep-alives.
  bool jobOpen() const;

  /// True once a hello handshake succeeded.
  bool helloNegotiated() const;

  const SessionStats &stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

} // namespace api
} // namespace e9

#endif // E9_API_SESSION_H
