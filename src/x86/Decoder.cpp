//===- x86/Decoder.cpp ----------------------------------------*- C++ -*-===//

#include "x86/Decoder.h"

#include <array>

using namespace e9;
using namespace e9::x86;

namespace {

/// Immediate-operand kinds per opcode.
enum ImmKind : uint8_t {
  IMM_NONE,      ///< No immediate.
  IMM_8,         ///< 1-byte immediate.
  IMM_16,        ///< 2-byte immediate (ret imm16 etc.).
  IMM_1632,      ///< 2 bytes with 0x66 prefix, else 4.
  IMM_1632_64,   ///< mov r, imm: 8 bytes with REX.W, else IMM_1632.
  IMM_MOFFS,     ///< moffs: 8 bytes (4 with 0x67).
  IMM_16_8,      ///< enter: imm16 + imm8.
  IMM_GRP3_8,    ///< F6 group: imm8 iff ModRM.reg in {0,1}.
  IMM_GRP3_1632, ///< F7 group: imm16/32 iff ModRM.reg in {0,1}.
};

struct OpInfo {
  bool Valid = false;
  bool ModRM = false;
  ImmKind Imm = IMM_NONE;
};

constexpr OpInfo invalidOp() { return OpInfo{false, false, IMM_NONE}; }
constexpr OpInfo op(bool ModRM, ImmKind Imm = IMM_NONE) {
  return OpInfo{true, ModRM, Imm};
}

/// Builds the primary one-byte opcode map (64-bit mode). Prefix bytes
/// (26/2E/36/3E/64/65/66/67/F0/F2/F3, REX 40-4F, VEX C4/C5, EVEX 62) and
/// the 0F escape are handled by the decode loop and marked invalid here.
consteval std::array<OpInfo, 256> buildOneByteMap() {
  std::array<OpInfo, 256> M{};
  for (auto &E : M)
    E = invalidOp();

  // ALU rows: add/or/adc/sbb/and/sub/xor/cmp.
  for (unsigned Row = 0x00; Row <= 0x38; Row += 0x08) {
    M[Row + 0] = op(true);            // <op> r/m8, r8
    M[Row + 1] = op(true);            // <op> r/m, r
    M[Row + 2] = op(true);            // <op> r8, r/m8
    M[Row + 3] = op(true);            // <op> r, r/m
    M[Row + 4] = op(false, IMM_8);    // <op> al, imm8
    M[Row + 5] = op(false, IMM_1632); // <op> eax, imm
  }
  M[0x63] = op(true); // movsxd
  for (unsigned I = 0x50; I <= 0x5f; ++I)
    M[I] = op(false); // push/pop r64
  M[0x68] = op(false, IMM_1632);
  M[0x69] = op(true, IMM_1632); // imul r, r/m, imm
  M[0x6a] = op(false, IMM_8);
  M[0x6b] = op(true, IMM_8);
  for (unsigned I = 0x6c; I <= 0x6f; ++I)
    M[I] = op(false); // ins/outs
  for (unsigned I = 0x70; I <= 0x7f; ++I)
    M[I] = op(false, IMM_8); // jcc rel8
  M[0x80] = op(true, IMM_8);
  M[0x81] = op(true, IMM_1632);
  M[0x83] = op(true, IMM_8);
  for (unsigned I = 0x84; I <= 0x8e; ++I)
    M[I] = op(true); // test/xchg/mov/lea/mov sreg
  M[0x8f] = op(true); // pop r/m
  for (unsigned I = 0x90; I <= 0x99; ++I)
    M[I] = op(false); // xchg/nop, cbw/cwd family
  for (unsigned I = 0x9b; I <= 0x9f; ++I)
    M[I] = op(false); // wait/pushfq/popfq/sahf/lahf
  for (unsigned I = 0xa0; I <= 0xa3; ++I)
    M[I] = op(false, IMM_MOFFS);
  for (unsigned I = 0xa4; I <= 0xa7; ++I)
    M[I] = op(false); // movs/cmps
  M[0xa8] = op(false, IMM_8);
  M[0xa9] = op(false, IMM_1632);
  for (unsigned I = 0xaa; I <= 0xaf; ++I)
    M[I] = op(false); // stos/lods/scas
  for (unsigned I = 0xb0; I <= 0xb7; ++I)
    M[I] = op(false, IMM_8); // mov r8, imm8
  for (unsigned I = 0xb8; I <= 0xbf; ++I)
    M[I] = op(false, IMM_1632_64); // mov r, imm
  M[0xc0] = op(true, IMM_8);
  M[0xc1] = op(true, IMM_8);
  M[0xc2] = op(false, IMM_16); // ret imm16
  M[0xc3] = op(false);         // ret
  M[0xc6] = op(true, IMM_8);   // mov r/m8, imm8
  M[0xc7] = op(true, IMM_1632);
  M[0xc8] = op(false, IMM_16_8); // enter
  M[0xc9] = op(false);           // leave
  M[0xca] = op(false, IMM_16);   // retf imm16
  M[0xcb] = op(false);           // retf
  M[0xcc] = op(false);           // int3
  M[0xcd] = op(false, IMM_8);    // int imm8
  M[0xcf] = op(false);           // iretq
  for (unsigned I = 0xd0; I <= 0xd3; ++I)
    M[I] = op(true); // shift groups
  M[0xd7] = op(false); // xlat
  for (unsigned I = 0xd8; I <= 0xdf; ++I)
    M[I] = op(true); // x87
  for (unsigned I = 0xe0; I <= 0xe7; ++I)
    M[I] = op(false, IMM_8); // loop/jcxz, in/out imm8
  M[0xe8] = op(false, IMM_1632); // call rel32
  M[0xe9] = op(false, IMM_1632); // jmp rel32
  M[0xeb] = op(false, IMM_8);    // jmp rel8
  for (unsigned I = 0xec; I <= 0xef; ++I)
    M[I] = op(false); // in/out dx
  M[0xf1] = op(false); // int1
  M[0xf4] = op(false); // hlt
  M[0xf5] = op(false); // cmc
  M[0xf6] = op(true, IMM_GRP3_8);
  M[0xf7] = op(true, IMM_GRP3_1632);
  for (unsigned I = 0xf8; I <= 0xfd; ++I)
    M[I] = op(false); // clc..std
  M[0xfe] = op(true); // grp4
  M[0xff] = op(true); // grp5
  return M;
}

/// Builds the two-byte (0F xx) opcode map.
consteval std::array<OpInfo, 256> buildTwoByteMap() {
  std::array<OpInfo, 256> M{};
  for (auto &E : M)
    E = invalidOp();

  M[0x00] = op(true); // grp6
  M[0x01] = op(true); // grp7
  M[0x02] = op(true); // lar
  M[0x03] = op(true); // lsl
  M[0x05] = op(false); // syscall
  M[0x06] = op(false); // clts
  M[0x07] = op(false); // sysret
  M[0x08] = op(false); // invd
  M[0x09] = op(false); // wbinvd
  M[0x0b] = op(false); // ud2
  M[0x0d] = op(true);  // prefetch
  M[0x0e] = op(false); // femms
  for (unsigned I = 0x10; I <= 0x17; ++I)
    M[I] = op(true); // SSE moves
  for (unsigned I = 0x18; I <= 0x1f; ++I)
    M[I] = op(true); // hints / multi-byte nop
  for (unsigned I = 0x20; I <= 0x23; ++I)
    M[I] = op(true); // mov cr/dr
  for (unsigned I = 0x28; I <= 0x2f; ++I)
    M[I] = op(true); // SSE convert/compare
  for (unsigned I = 0x30; I <= 0x35; ++I)
    M[I] = op(false); // wrmsr/rdtsc/rdmsr/rdpmc/sysenter/sysexit
  M[0x37] = op(false); // getsec
  for (unsigned I = 0x40; I <= 0x4f; ++I)
    M[I] = op(true); // cmovcc
  for (unsigned I = 0x50; I <= 0x6f; ++I)
    M[I] = op(true); // packed SSE
  M[0x70] = op(true, IMM_8); // pshufd
  M[0x71] = op(true, IMM_8); // grp12
  M[0x72] = op(true, IMM_8); // grp13
  M[0x73] = op(true, IMM_8); // grp14
  for (unsigned I = 0x74; I <= 0x76; ++I)
    M[I] = op(true); // pcmpeq
  M[0x77] = op(false); // emms
  M[0x78] = op(true);  // vmread
  M[0x79] = op(true);  // vmwrite
  for (unsigned I = 0x7c; I <= 0x7f; ++I)
    M[I] = op(true);
  for (unsigned I = 0x80; I <= 0x8f; ++I)
    M[I] = op(false, IMM_1632); // jcc rel32
  for (unsigned I = 0x90; I <= 0x9f; ++I)
    M[I] = op(true); // setcc
  M[0xa0] = op(false); // push fs
  M[0xa1] = op(false); // pop fs
  M[0xa2] = op(false); // cpuid
  M[0xa3] = op(true);  // bt
  M[0xa4] = op(true, IMM_8); // shld imm8
  M[0xa5] = op(true);        // shld cl
  M[0xa8] = op(false); // push gs
  M[0xa9] = op(false); // pop gs
  M[0xaa] = op(false); // rsm
  M[0xab] = op(true);  // bts
  M[0xac] = op(true, IMM_8); // shrd imm8
  M[0xad] = op(true);        // shrd cl
  M[0xae] = op(true);  // grp15 (fences decode with mod=3)
  M[0xaf] = op(true);  // imul r, r/m
  for (unsigned I = 0xb0; I <= 0xb7; ++I)
    M[I] = op(true); // cmpxchg/lss/btr/lfs/lgs/movzx
  M[0xb8] = op(true); // popcnt (F3) / jmpe
  M[0xb9] = op(true); // ud1
  M[0xba] = op(true, IMM_8); // grp8 bt imm8
  for (unsigned I = 0xbb; I <= 0xbf; ++I)
    M[I] = op(true); // btc/bsf/bsr/movsx
  M[0xc0] = op(true); // xadd r/m8
  M[0xc1] = op(true); // xadd
  M[0xc2] = op(true, IMM_8); // cmpps imm8
  M[0xc3] = op(true);        // movnti
  M[0xc4] = op(true, IMM_8); // pinsrw
  M[0xc5] = op(true, IMM_8); // pextrw
  M[0xc6] = op(true, IMM_8); // shufps
  M[0xc7] = op(true);        // grp9
  for (unsigned I = 0xc8; I <= 0xcf; ++I)
    M[I] = op(false); // bswap
  for (unsigned I = 0xd0; I <= 0xfe; ++I)
    M[I] = op(true); // packed SSE
  M[0xff] = op(true); // ud0
  return M;
}

constexpr std::array<OpInfo, 256> OneByteMap = buildOneByteMap();
constexpr std::array<OpInfo, 256> TwoByteMap = buildTwoByteMap();

/// Returns the OpInfo for the 0F38 map (all ModRM, no immediate).
constexpr OpInfo map0F38Info() { return op(true); }
/// Returns the OpInfo for the 0F3A map (all ModRM + imm8).
constexpr OpInfo map0F3AInfo() { return op(true, IMM_8); }

/// Sign-extends the low \p Bytes bytes of \p V.
int64_t signExtend(uint64_t V, unsigned Bytes) {
  if (Bytes >= 8)
    return static_cast<int64_t>(V);
  unsigned Shift = 64 - 8 * Bytes;
  return static_cast<int64_t>(V << Shift) >> Shift;
}

/// Cursor over the instruction bytes with bounds checking.
class Cursor {
public:
  Cursor(const uint8_t *Bytes, size_t MaxLen)
      : Bytes(Bytes), MaxLen(MaxLen > MaxInsnLength ? MaxInsnLength : MaxLen) {
  }

  bool atEnd() const { return Pos >= MaxLen; }
  size_t pos() const { return Pos; }
  bool truncatedByCap() const { return MaxLen == MaxInsnLength; }

  /// Peeks the next byte; only valid when !atEnd().
  uint8_t peek() const { return Bytes[Pos]; }

  /// Consumes and returns the next byte; only valid when !atEnd().
  uint8_t take() { return Bytes[Pos++]; }

  /// Reads a little-endian integer of \p N bytes, or fails.
  bool read(unsigned N, uint64_t &Out) {
    if (Pos + N > MaxLen)
      return false;
    Out = 0;
    for (unsigned I = 0; I != N; ++I)
      Out |= static_cast<uint64_t>(Bytes[Pos + I]) << (8 * I);
    Pos += N;
    return true;
  }

  /// Advances over \p N bytes without assembling a value (length-only
  /// decode path); same bounds behaviour as read().
  bool skip(unsigned N) {
    if (Pos + N > MaxLen)
      return false;
    Pos += N;
    return true;
  }

private:
  const uint8_t *Bytes;
  size_t MaxLen;
  size_t Pos = 0;
};

/// Decodes ModRM/SIB/displacement into \p I. Returns false when truncated.
/// With Record == false the displacement bytes are skipped, not read: the
/// cursor moves exactly as in the recording mode, only the value/offset
/// stores are compiled out.
template <bool Record = true> bool decodeModRM(Cursor &C, Insn &I) {
  if (C.atEnd())
    return false;
  I.HasModRM = true;
  I.ModRM = C.take();
  uint8_t Mod = I.ModRM >> 6;
  uint8_t Rm = I.ModRM & 7;

  unsigned DispSize = 0;
  if (Mod == 1)
    DispSize = 1;
  else if (Mod == 2)
    DispSize = 4;

  if (Mod != 3 && Rm == 4) {
    if (C.atEnd())
      return false;
    I.HasSIB = true;
    I.SIB = C.take();
    // SIB base 101b with mod 0: disp32, no base register.
    if (Mod == 0 && (I.SIB & 7) == 5)
      DispSize = 4;
  } else if (Mod == 0 && Rm == 5) {
    DispSize = 4; // rip-relative.
  }

  if (DispSize != 0) {
    if constexpr (Record) {
      I.DispOffset = static_cast<uint8_t>(C.pos());
      uint64_t Raw;
      if (!C.read(DispSize, Raw))
        return false;
      I.DispSize = static_cast<uint8_t>(DispSize);
      I.Disp = static_cast<int32_t>(signExtend(Raw, DispSize));
    } else {
      if (!C.skip(DispSize))
        return false;
    }
  }
  return true;
}

/// Reads an immediate of \p Size bytes into \p I. Returns false when
/// truncated.
template <bool Record = true> bool readImm(Cursor &C, Insn &I, unsigned Size) {
  if (Size == 0)
    return true;
  if constexpr (!Record)
    return C.skip(Size);
  I.ImmOffset = static_cast<uint8_t>(C.pos());
  uint64_t Raw;
  if (!C.read(Size, Raw))
    return false;
  I.ImmSize = static_cast<uint8_t>(Size);
  I.Imm = signExtend(Raw, Size);
  return true;
}

/// Resolves an ImmKind to a concrete byte size given the decoded prefixes
/// and (for group-3 opcodes) the ModRM.reg field.
unsigned immSize(ImmKind Kind, const Insn &I) {
  switch (Kind) {
  case IMM_NONE:
    return 0;
  case IMM_8:
    return 1;
  case IMM_16:
    return 2;
  case IMM_1632:
    return I.OpSizeOverride ? 2 : 4;
  case IMM_1632_64:
    if (I.Rex & 0x8)
      return 8;
    return I.OpSizeOverride ? 2 : 4;
  case IMM_MOFFS:
    return I.AddrSizeOverride ? 4 : 8;
  case IMM_16_8:
    return 3;
  case IMM_GRP3_8:
    return I.regOpcode() <= 1 ? 1 : 0;
  case IMM_GRP3_1632:
    if (I.regOpcode() > 1)
      return 0;
    return I.OpSizeOverride ? 2 : 4;
  }
  return 0;
}

} // namespace

namespace {
/// Classifies running out of bytes: if the full 15-byte architectural cap
/// was available and still exhausted, the encoding is invalid (too long);
/// otherwise the caller's buffer simply ended mid-instruction.
DecodeStatus truncated(const Cursor &C) {
  return C.truncatedByCap() ? DecodeStatus::Invalid : DecodeStatus::Truncated;
}
} // namespace

namespace {

/// Shared decode body. Record == false is the length-only instantiation
/// used by decodeLength(): it runs the identical prefix/opcode/ModRM walk
/// (so lengths and statuses cannot drift from the full decoder) but skips
/// assembling displacement/immediate values.
template <bool Record>
DecodeStatus decodeImpl(const uint8_t *Bytes, size_t MaxLen,
                        uint64_t Address, Insn &Out) {
  Out = Insn();
  Out.Address = Address;
  if (MaxLen == 0)
    return DecodeStatus::Truncated;

  Cursor C(Bytes, MaxLen);

  // --- Prefix loop -------------------------------------------------------
  bool SawOpcode = false;
  while (!C.atEnd()) {
    uint8_t B = C.peek();
    bool IsPrefix = true;
    switch (B) {
    case 0x26: case 0x2e: case 0x36: case 0x3e: case 0x64: case 0x65:
      Out.SegPrefix = B;
      break;
    case 0x66:
      Out.OpSizeOverride = true;
      break;
    case 0x67:
      Out.AddrSizeOverride = true;
      break;
    case 0xf0:
      Out.LockPrefix = true;
      break;
    case 0xf2: case 0xf3:
      Out.RepPrefix = B;
      break;
    default:
      if (B >= 0x40 && B <= 0x4f) {
        Out.Rex = B;
        Out.HasRex = true;
        C.take();
        // A REX prefix only takes effect when it immediately precedes the
        // opcode; any further prefix byte cancels it.
        if (!C.atEnd()) {
          uint8_t Next = C.peek();
          bool NextIsLegacy =
              Next == 0x26 || Next == 0x2e || Next == 0x36 || Next == 0x3e ||
              Next == 0x64 || Next == 0x65 || Next == 0x66 || Next == 0x67 ||
              Next == 0xf0 || Next == 0xf2 || Next == 0xf3 ||
              (Next >= 0x40 && Next <= 0x4f);
          if (NextIsLegacy) {
            Out.Rex = 0;
            Out.HasRex = false;
            continue; // Re-enter the loop on the next prefix.
          }
        }
        IsPrefix = false; // REX consumed; opcode must follow.
        SawOpcode = true;
      } else {
        IsPrefix = false;
        SawOpcode = true;
      }
      break;
    }
    if (!IsPrefix)
      break;
    C.take();
  }
  if (!SawOpcode || C.atEnd()) {
    // Ran off the end while still reading prefixes.
    return truncated(C);
  }
  Out.PrefixLength = static_cast<uint8_t>(C.pos());

  uint8_t Opc = C.take();

  // --- VEX / EVEX prefixes ----------------------------------------------
  // In 64-bit mode C4/C5 are always VEX and 62 is always EVEX.
  unsigned VexMap = 0;
  if (Opc == 0xc4 || Opc == 0xc5 || Opc == 0x62) {
    Out.HasVex = true;
    if (Opc == 0xc5) {
      if (C.atEnd())
        return truncated(C);
      C.take(); // R.vvvv.L.pp
      VexMap = 1;
    } else {
      unsigned PayloadBytes = (Opc == 0xc4) ? 2 : 3;
      uint64_t Payload0;
      if (!C.read(1, Payload0))
        return truncated(C);
      VexMap = Payload0 & (Opc == 0xc4 ? 0x1f : 0x3);
      if (Opc == 0x62 && VexMap == 0)
        return DecodeStatus::Invalid;
      uint64_t Ignored;
      if (!C.read(PayloadBytes - 1, Ignored))
        return truncated(C);
    }
    if (VexMap < 1 || VexMap > 3)
      return DecodeStatus::Invalid;
    if (C.atEnd())
      return truncated(C);
    Opc = C.take();
    Out.Map = static_cast<OpMap>(VexMap);
    Out.Opcode = Opc;
    Out.PrefixLength = static_cast<uint8_t>(C.pos() - 1);

    OpInfo Info;
    switch (Out.Map) {
    case OpMap::Map0F:
      Info = TwoByteMap[Opc];
      break;
    case OpMap::Map0F38:
      Info = map0F38Info();
      break;
    case OpMap::Map0F3A:
      Info = map0F3AInfo();
      break;
    default:
      return DecodeStatus::Invalid;
    }
    // Under VEX, treat unlisted map-0F slots as generic ModRM encodings
    // (the AVX extensions fill many of them); immediates follow the table.
    if (!Info.Valid)
      Info = op(true);
    if (Info.ModRM && !decodeModRM<Record>(C, Out))
      return truncated(C);
    if (!readImm<Record>(C, Out, immSize(Info.Imm, Out)))
      return truncated(C);
    Out.Length = static_cast<uint8_t>(C.pos());
    return DecodeStatus::Ok;
  }

  // --- Escape bytes ------------------------------------------------------
  OpInfo Info;
  if (Opc == 0x0f) {
    if (C.atEnd())
      return truncated(C);
    uint8_t Opc2 = C.take();
    if (Opc2 == 0x38 || Opc2 == 0x3a) {
      if (C.atEnd())
        return truncated(C);
      uint8_t Opc3 = C.take();
      Out.Map = (Opc2 == 0x38) ? OpMap::Map0F38 : OpMap::Map0F3A;
      Out.Opcode = Opc3;
      Info = (Opc2 == 0x38) ? map0F38Info() : map0F3AInfo();
    } else {
      Out.Map = OpMap::Map0F;
      Out.Opcode = Opc2;
      Info = TwoByteMap[Opc2];
    }
  } else {
    Out.Map = OpMap::OneByte;
    Out.Opcode = Opc;
    Info = OneByteMap[Opc];
  }

  if (!Info.Valid)
    return DecodeStatus::Invalid;
  if (Info.ModRM && !decodeModRM<Record>(C, Out))
    return truncated(C);
  if (!readImm<Record>(C, Out, immSize(Info.Imm, Out)))
    return truncated(C);

  Out.Length = static_cast<uint8_t>(C.pos());
  return DecodeStatus::Ok;
}

} // namespace

DecodeStatus x86::decode(const uint8_t *Bytes, size_t MaxLen,
                         uint64_t Address, Insn &Out) {
  return decodeImpl<true>(Bytes, MaxLen, Address, Out);
}

unsigned x86::decodeLength(const uint8_t *Bytes, size_t MaxLen) {
  Insn I;
  if (decodeImpl<false>(Bytes, MaxLen, 0, I) != DecodeStatus::Ok)
    return 0;
  return I.Length;
}
