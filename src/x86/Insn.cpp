//===- x86/Insn.cpp -------------------------------------------*- C++ -*-===//

#include "x86/Insn.h"

using namespace e9;
using namespace e9::x86;

Reg Insn::memBase() const {
  assert(hasMemOperand() && "no memory operand");
  if (isRipRelative())
    return Reg::RIP;
  if (!HasSIB)
    return regFromEncoding(rm());
  uint8_t Base = ((Rex & 0x1) << 3) | (SIB & 7);
  // SIB base == 101b with mod == 0 means "no base, disp32 only".
  if ((SIB & 7) == 5 && mod() == 0)
    return Reg::None;
  return regFromEncoding(Base);
}

Reg Insn::memIndex() const {
  assert(hasMemOperand() && "no memory operand");
  if (!HasSIB)
    return Reg::None;
  uint8_t Index = ((Rex & 0x2) << 2) | ((SIB >> 3) & 7);
  // Index == 100b (RSP slot, without REX.X) means "no index".
  if (Index == 4)
    return Reg::None;
  return regFromEncoding(Index);
}

bool Insn::writesMemOperand() const {
  if (!hasMemOperand())
    return false;
  uint8_t Op = Opcode;
  if (Map == OpMap::OneByte) {
    // ALU <op> r/m, r and <op> r/m, imm forms store to r/m. The pattern for
    // 00..3B is: x0/x1 (r/m, r) write, x2/x3 (r, r/m) read-only, except the
    // cmp row (38..3D) which never writes.
    if (Op <= 0x3b && (Op & 7) <= 1)
      return (Op & 0x38) != 0x38; // cmp writes nothing.
    switch (Op) {
    case 0x86: case 0x87:             // xchg
    case 0x88: case 0x89:             // mov r/m, r
    case 0x8c:                        // mov r/m, sreg
    case 0xc6: case 0xc7:             // mov r/m, imm
    case 0x8f:                        // pop r/m
    case 0xc0: case 0xc1:             // shift r/m, imm8
    case 0xd0: case 0xd1: case 0xd2: case 0xd3: // shift r/m, 1/cl
      return true;
    case 0x80: case 0x81: case 0x83:  // grp1: write unless /7 (cmp)
      return regOpcode() != 7;
    case 0xf6: case 0xf7:             // grp3: not/neg write; test reads
      return regOpcode() == 2 || regOpcode() == 3;
    case 0xfe:                        // grp4: inc/dec r/m8
      return regOpcode() <= 1;
    case 0xff:                        // grp5: inc/dec write; call/jmp/push read
      return regOpcode() <= 1;
    default:
      return false;
    }
  }
  if (Map == OpMap::Map0F) {
    switch (Op) {
    case 0x11: case 0x29:             // movups/movaps store forms
    case 0x7f:                        // movdqa/movdqu store
    case 0x2b:                        // movntps
    case 0xe7:                        // movntdq
    case 0xd6:                        // movq store
    case 0xb0: case 0xb1:             // cmpxchg
    case 0xc0: case 0xc1:             // xadd
    case 0xc3:                        // movnti
    case 0xab: case 0xb3: case 0xbb:  // bts/btr/btc
      return true;
    case 0xc7:                        // grp9: cmpxchg8b/16b
      return regOpcode() == 1;
    default:
      // setcc r/m8.
      return Op >= 0x90 && Op <= 0x9f;
    }
  }
  return false;
}

bool Insn::readsMemOperand() const {
  if (!hasMemOperand())
    return false;
  // lea does not access memory at all.
  if (Map == OpMap::OneByte && Opcode == 0x8d)
    return false;
  // mov r/m, r and mov r/m, imm are write-only; everything else that has a
  // memory operand reads it (conservative).
  if (Map == OpMap::OneByte &&
      (Opcode == 0x88 || Opcode == 0x89 || Opcode == 0xc6 || Opcode == 0xc7))
    return false;
  if (Map == OpMap::Map0F && Opcode >= 0x90 && Opcode <= 0x9f)
    return false; // setcc is write-only.
  return true;
}
