//===- lowfat/LowFat.cpp --------------------------------------*- C++ -*-===//

#include "lowfat/LowFat.h"

#include "support/Format.h"
#include "vm/Hooks.h"

using namespace e9;
using namespace e9::lowfat;
using namespace e9::vm;

namespace {

/// Maps (if needed) the pages covering [Ptr, Ptr+Size) as RW guest memory.
Status ensureMapped(Vm &V, uint64_t Ptr, uint64_t Size) {
  uint64_t Page = Ptr & ~vm::PageMask;
  uint64_t End = Ptr + Size;
  for (; Page < End; Page += vm::PageSize) {
    if (V.Mem.isMapped(Page))
      continue;
    if (Status S = V.Mem.mapZero(Page, vm::PageSize, PermR | PermW); !S)
      return S;
  }
  return Status::ok();
}

} // namespace

// --- PlainHeap ------------------------------------------------------------------

Result<uint64_t> PlainHeap::alloc(Vm &V, uint64_t Size) {
  if (Size == 0)
    Size = 1;
  uint64_t Ptr = Bump;
  Bump += (Size + 15) & ~15ull;
  if (Bump > HeapRegionEnd)
    return Result<uint64_t>::error("plain heap exhausted");
  E9_TRY_STATUS(ensureMapped(V, Ptr, Size));
  return Ptr;
}

Status PlainHeap::free(Vm &V, uint64_t Ptr) {
  // Bump allocator: free is a no-op (memory stays mapped).
  (void)V;
  (void)Ptr;
  return Status::ok();
}

// --- LowFatHeap -----------------------------------------------------------------

namespace {

/// Smallest class index whose slot fits Size + redzone.
int classFor(uint64_t Size) {
  uint64_t Need = Size + RedzoneSize;
  for (unsigned C = 0; C != NumClasses; ++C)
    if ((1ull << (MinClassLog + C)) >= Need)
      return static_cast<int>(C);
  return -1;
}

uint64_t classRegionBase(unsigned C) {
  return HeapRegionStart + C * RegionSize;
}

} // namespace

Result<uint64_t> LowFatHeap::alloc(Vm &V, uint64_t Size) {
  int C = classFor(Size);
  if (C < 0)
    return Result<uint64_t>::error(
        format("lowfat: allocation of %llu bytes exceeds largest class",
               (unsigned long long)Size));
  uint64_t SlotSize = 1ull << (MinClassLog + C);
  uint64_t Slot = classRegionBase(static_cast<unsigned>(C)) +
                  BumpIndex[C] * SlotSize;
  if (Slot + SlotSize > classRegionBase(C) + RegionSize)
    return Result<uint64_t>::error("lowfat: size class region exhausted");
  ++BumpIndex[C];
  ++Allocations;
  E9_TRY_STATUS(ensureMapped(V, Slot, SlotSize));
  // Object data starts after the redzone.
  return Slot + RedzoneSize;
}

Status LowFatHeap::free(Vm &V, uint64_t Ptr) {
  // Slots are not recycled (quarantine-forever policy keeps stale pointers
  // detectable by the redzone check and sidesteps reuse hazards).
  (void)V;
  (void)Ptr;
  return Status::ok();
}

uint64_t LowFatHeap::base(uint64_t Ptr) const {
  if (!isHeapPtr(Ptr))
    return Ptr;
  unsigned C = static_cast<unsigned>((Ptr - HeapRegionStart) / RegionSize);
  uint64_t SlotSize = 1ull << (MinClassLog + C);
  uint64_t Off = Ptr - classRegionBase(C);
  return classRegionBase(C) + Off / SlotSize * SlotSize;
}

Status LowFatHeap::check(uint64_t Ptr) {
  if (!isHeapPtr(Ptr))
    return Status::ok(); // Non-fat pointers are not checked.
  if (Ptr - base(Ptr) >= RedzoneSize)
    return Status::ok();
  ++Violations;
  if (AbortOnViolation)
    return Status::error(
        format("lowfat: redzone violation writing %s (base %s)",
               hex(Ptr).c_str(), hex(base(Ptr)).c_str()));
  return Status::ok();
}

// --- Hook installation -----------------------------------------------------------

void lowfat::installPlainHeap(Vm &V, PlainHeap &Heap) {
  V.registerHook(HookMalloc, [&Heap](Vm &Vm) -> Status {
    E9_TRY(P, Heap.alloc(Vm, Vm.Core.Gpr[7])); // rdi = size
    Vm.Core.Gpr[0] = P;
    return Status::ok();
  });
  V.registerHook(HookCalloc, [&Heap](Vm &Vm) -> Status {
    uint64_t Total = Vm.Core.Gpr[7] * Vm.Core.Gpr[6]; // rdi * rsi
    E9_TRY(P, Heap.alloc(Vm, Total));
    Vm.Core.Gpr[0] = P; // pages start zeroed
    return Status::ok();
  });
  V.registerHook(HookFree, [&Heap](Vm &Vm) -> Status {
    return Heap.free(Vm, Vm.Core.Gpr[7]);
  });
}

void lowfat::installLowFatHeap(Vm &V, LowFatHeap &Heap) {
  V.registerHook(HookMalloc, [&Heap](Vm &Vm) -> Status {
    E9_TRY(P, Heap.alloc(Vm, Vm.Core.Gpr[7]));
    Vm.Core.Gpr[0] = P;
    return Status::ok();
  });
  V.registerHook(HookCalloc, [&Heap](Vm &Vm) -> Status {
    E9_TRY(P, Heap.alloc(Vm, Vm.Core.Gpr[7] * Vm.Core.Gpr[6]));
    Vm.Core.Gpr[0] = P;
    return Status::ok();
  });
  V.registerHook(HookFree, [&Heap](Vm &Vm) -> Status {
    return Heap.free(Vm, Vm.Core.Gpr[7]);
  });
  // The per-write redzone check (rdi = written-to pointer). Cost models
  // the handful of mask/compare instructions the real inlined check runs.
  V.registerHook(
      HookLowFatCheck,
      [&Heap](Vm &Vm) -> Status { return Heap.check(Vm.Core.Gpr[7]); },
      /*Cost=*/5);
}
