//===- support/Fd.h - RAII file descriptors + poll helpers ----*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A move-only RAII owner for POSIX file descriptors and the small poll
/// helpers the socket server's accept and read/write loops are built on.
/// Everything here is transport-agnostic plumbing: sockets, pipes and
/// regular files all flow through the same Fd type, and the poll helpers
/// translate the EINTR/timeout dance into a three-valued answer the
/// calling loop can switch on.
///
//===----------------------------------------------------------------------===//

#ifndef E9_SUPPORT_FD_H
#define E9_SUPPORT_FD_H

#include "support/Status.h"

#include <utility>

namespace e9 {
namespace support {

/// Owns one POSIX file descriptor; closes it on destruction. Move-only,
/// -1 means "empty". close() errors are ignored by the destructor (there
/// is no useful recovery at that point) but reset() is explicit for call
/// sites that care about ordering.
class Fd {
public:
  Fd() = default;
  explicit Fd(int Raw) : Raw(Raw) {}
  ~Fd() { reset(); }

  Fd(Fd &&O) noexcept : Raw(O.Raw) { O.Raw = -1; }
  Fd &operator=(Fd &&O) noexcept {
    if (this != &O) {
      reset();
      Raw = O.Raw;
      O.Raw = -1;
    }
    return *this;
  }
  Fd(const Fd &) = delete;
  Fd &operator=(const Fd &) = delete;

  int get() const { return Raw; }
  bool valid() const { return Raw >= 0; }
  explicit operator bool() const { return valid(); }

  /// Releases ownership without closing; returns the raw descriptor.
  int release() { return std::exchange(Raw, -1); }

  /// Closes the descriptor now (idempotent).
  void reset();

private:
  int Raw = -1;
};

/// Three-valued poll outcome: the caller's loop either acts (Ready),
/// re-checks its stop conditions (Timeout) or tears down (Error).
enum class PollResult { Ready, Timeout, Error };

/// Waits until \p RawFd is readable, for at most \p TimeoutMs
/// milliseconds (-1 = forever). EINTR retries transparently; POLLHUP and
/// POLLERR report as Ready so the subsequent read() observes EOF or the
/// error itself (the reader owns the diagnosis).
PollResult pollReadable(int RawFd, int TimeoutMs);

/// Same for writability. POLLERR/POLLHUP report as Ready so the write()
/// surfaces the real errno (typically EPIPE).
PollResult pollWritable(int RawFd, int TimeoutMs);

/// Sets O_NONBLOCK on \p RawFd.
Status setNonBlocking(int RawFd, bool NonBlocking = true);

/// Sets FD_CLOEXEC on \p RawFd (rewrite jobs may fork in the future;
/// client sockets must not leak into children).
Status setCloseOnExec(int RawFd);

} // namespace support
} // namespace e9

#endif // E9_SUPPORT_FD_H
