//===- core/Alloc.cpp -----------------------------------------*- C++ -*-===//

#include "core/Alloc.h"

#include "support/FaultInjector.h"

#include <cassert>

using namespace e9;
using namespace e9::core;

namespace {
constexpr uint64_t PageSize = 4096;

uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }
} // namespace

std::optional<uint64_t> Allocator::allocate(uint64_t Size,
                                            const Interval &Bound) {
  if (Size == 0 || Bound.empty())
    return std::nullopt;
  if (E9_FAULT_POINT("core.alloc.allocate"))
    return std::nullopt; // Simulated address-space exhaustion.

  // Pass 1: extend an open bump zone whose cursor starts inside the
  // bound. This packs trampolines with compatible constraints into the
  // same virtual pages. Only the start address is constrained by the pun
  // window; the extent may run past it.
  if (PackingEnabled) {
    for (Zone &Z : Zones) {
      uint64_t At = Z.Cur;
      if (At < Bound.Lo || At >= Bound.Hi || At + Size > Z.End)
        continue;
      if (Used.overlaps(At, At + Size))
        continue;
      Z.Cur = At + Size;
      Used.insert(At, At + Size);
      Allocs.emplace(At, Size);
      AllocatedBytes += Size;
      return At;
    }
  }

  // Pass 2: lowest free start inside the bound; open a fresh zone
  // covering the rest of the page for future packing.
  std::optional<uint64_t> At = Used.findFreeStart(Bound, Size);
  if (!At.has_value())
    return std::nullopt;
  Used.insert(*At, *At + Size);
  Allocs.emplace(*At, Size);
  AllocatedBytes += Size;
  uint64_t ZoneEnd = alignUp(*At + Size, PageSize);
  if (ZoneEnd > *At + Size)
    Zones.push_back(Zone{*At + Size, ZoneEnd});
  return At;
}

void Allocator::free(uint64_t Addr, uint64_t Size) {
  auto It = Allocs.find(Addr);
  assert(It != Allocs.end() && It->second == Size &&
         "freeing an unknown allocation");
  (void)Size;
  Used.erase(Addr, Addr + It->second);
  AllocatedBytes -= It->second;
  Allocs.erase(It);
}
