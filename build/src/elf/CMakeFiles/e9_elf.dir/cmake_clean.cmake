file(REMOVE_RECURSE
  "CMakeFiles/e9_elf.dir/File.cpp.o"
  "CMakeFiles/e9_elf.dir/File.cpp.o.d"
  "CMakeFiles/e9_elf.dir/Image.cpp.o"
  "CMakeFiles/e9_elf.dir/Image.cpp.o.d"
  "libe9_elf.a"
  "libe9_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
