#!/bin/sh
# tools/check.sh - the full robustness gate.
#
# Runs the regular test suite, then rebuilds everything under
# ASan + UBSan (-DE9_SANITIZE=address) and re-runs the verifier mutation
# sweep, the fault-injection sweep, the corrupt-ELF corpus and the
# malformed-protocol corpus in the sanitized build, then rebuilds under
# TSan (-DE9_SANITIZE=thread) and runs the sharded-patcher tests across
# thread counts, then runs the trace-determinism gate: a real
# gen -> rewrite sweep checking that --trace output is byte-identical
# across --jobs values, that tracing never changes the rewritten binary,
# and that `e9tool stats` accepts the emitted schema. Then the batch
# protocol gate: `e9tool apply` on a JSONL script must produce output
# byte-identical to the equivalent direct `rewrite` invocation, under
# ASan with --jobs 4. Finally, the repair-loop gate: a chaos-injected
# workload (faulty trampolines at 11 executed sites) must converge under
# `rewrite --self-verify` running ASan, with output byte-identical
# across --jobs values. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all), so a clean exit means: no silent memory
# errors on the error paths, no data races in the parallel pipeline,
# and no nondeterminism in the observability, protocol or repair layers.
# A final perf-smoke gate runs bench_micro (min-of-3) against the
# committed BENCH_micro.baseline.json and fails on any >25% regression.
#
# Usage: tools/check.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "== [1/10] configure + build (default flags) =="
cmake -S "$ROOT" -B "$ROOT/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

echo "== [2/10] full test suite =="
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" \
  || ctest --test-dir "$ROOT/build" --output-on-failure --rerun-failed

echo "== [3/10] configure + build (ASan + UBSan) =="
cmake -S "$ROOT" -B "$ROOT/build-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DE9_SANITIZE=address >/dev/null
cmake --build "$ROOT/build-asan" -j "$JOBS" --target \
  verifier_test fault_injection_test elf_test core_test support_test \
  obs_test api_test repair_test e9tool

echo "== [4/10] robustness sweeps under ASan + UBSan =="
"$ROOT/build-asan/tests/support_test"
"$ROOT/build-asan/tests/core_test"
"$ROOT/build-asan/tests/obs_test"
"$ROOT/build-asan/tests/api_test"
"$ROOT/build-asan/tests/elf_test" --gtest_filter='CorruptElf.*'
"$ROOT/build-asan/tests/verifier_test"
"$ROOT/build-asan/tests/fault_injection_test"

echo "== [5/10] configure + build (TSan) =="
cmake -S "$ROOT" -B "$ROOT/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DE9_SANITIZE=thread >/dev/null
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target parallel_test \
  repair_test

echo "== [6/10] sharded patcher + repair loop under TSan =="
"$ROOT/build-tsan/tests/parallel_test"
"$ROOT/build-tsan/tests/repair_test" \
  --gtest_filter='Repair.RepairedOutputByteIdenticalAcrossJobs'

echo "== [7/10] trace determinism + schema gate (e9tool end-to-end) =="
E9="$ROOT/build/tools/e9tool"
TDIR="$(mktemp -d)"
trap 'rm -rf "$TDIR"' EXIT
"$E9" gen "$TDIR/w.elf" --seed=2026 --funcs=96 >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/out4.elf" --strict --jobs=4 \
  --trace="$TDIR/t4.jsonl" --metrics="$TDIR/m.json" >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/out1.elf" --strict --jobs=1 \
  --trace="$TDIR/t1.jsonl" >/dev/null
"$E9" rewrite "$TDIR/w.elf" "$TDIR/plain.elf" --strict >/dev/null
cmp "$TDIR/t1.jsonl" "$TDIR/t4.jsonl"   # trace identical across --jobs
cmp "$TDIR/out1.elf" "$TDIR/out4.elf"   # binary identical across --jobs
cmp "$TDIR/out1.elf" "$TDIR/plain.elf"  # tracing never perturbs output
"$E9" stats "$TDIR/t4.jsonl" >/dev/null # schema-valid, summary coherent

echo "== [8/10] batch protocol gate: apply == rewrite, under ASan =="
E9A="$ROOT/build-asan/tools/e9tool"
cat > "$TDIR/apply.jsonl" <<EOF
{"type":"binary","path":"$TDIR/w.elf"}
{"type":"template","name":"passthrough","body":"\$instruction \$continue"}
{"type":"option","name":"jobs","value":"4"}
{"type":"option","name":"strict","value":"true"}
{"type":"patch","select":"jumps","template":"passthrough"}
{"type":"emit","path":"$TDIR/applied.elf"}
EOF
"$E9A" apply "$TDIR/apply.jsonl" --responses="$TDIR/resp.jsonl"
grep -q '"ok":true' "$TDIR/resp.jsonl"
cmp "$TDIR/applied.elf" "$TDIR/out4.elf" # apply == direct rewrite
# The protocol fails closed: a malformed request must stop the stream.
if printf '{"type":"frobnicate"}\n' | "$E9A" serve --stdin \
    >"$TDIR/serve.jsonl" 2>/dev/null; then
  echo "check.sh: serve accepted a malformed request" >&2
  exit 1
fi
grep -q '"type":"error"' "$TDIR/serve.jsonl"

echo "== [9/10] repair-loop gate: chaos convergence under ASan =="
"$E9A" gen "$TDIR/chaos.elf" --seed=7 --funcs=24 >/dev/null
"$E9A" rewrite "$TDIR/chaos.elf" "$TDIR/chaos1.elf" --self-verify \
  --chaos=11 --jobs=1 --trace="$TDIR/chaos.jsonl" >/dev/null
"$E9A" rewrite "$TDIR/chaos.elf" "$TDIR/chaos4.elf" --self-verify \
  --chaos=11 --jobs=4 >/dev/null
cmp "$TDIR/chaos1.elf" "$TDIR/chaos4.elf" # repaired output deterministic
"$E9" stats "$TDIR/chaos.jsonl" >/dev/null # repair events schema-valid
grep -q '"ev":"repair_summary".*"converged":true' "$TDIR/chaos.jsonl"
# Fail closed: an impossible budget must refuse to emit a binary.
if "$E9A" rewrite "$TDIR/chaos.elf" "$TDIR/chaos0.elf" --self-verify \
    --chaos=11 --repair-runs=2 >/dev/null 2>&1; then
  echo "check.sh: self-verify emitted an unverified binary" >&2
  exit 1
fi
test ! -f "$TDIR/chaos0.elf"

echo "== [10/10] perf smoke: bench_micro vs committed baseline =="
# Min-of-3 per benchmark against BENCH_micro.baseline.json; >25% slower on
# any benchmark fails the gate (see tools/perf_smoke.py). The arena, mmap
# and prescan hot paths all have micro benchmarks, so a pathological
# regression in the raw-speed memory path is caught here even when the
# functional suites stay green. Skipped gracefully when python3 is absent.
if command -v python3 >/dev/null 2>&1; then
  cmake --build "$ROOT/build" -j "$JOBS" --target bench_micro
  "$ROOT/build/bench/bench_micro" --benchmark_repetitions=3 \
    --benchmark_out="$TDIR/micro.json" --benchmark_out_format=json \
    >/dev/null
  python3 "$ROOT/tools/perf_smoke.py" \
    "$ROOT/BENCH_micro.baseline.json" "$TDIR/micro.json"
else
  echo "check.sh: python3 not found; skipping perf smoke"
fi

echo "check.sh: all gates passed"
