file(REMOVE_RECURSE
  "libe9_x86.a"
)
