//===- support/IntervalSet.cpp --------------------------------*- C++ -*-===//

#include "support/IntervalSet.h"

#include <cassert>

using namespace e9;

void IntervalSet::insert(uint64_t Lo, uint64_t Hi) {
  if (Lo >= Hi)
    return;

  // Find the first interval whose Lo is > our Lo, then step back to see if
  // the previous interval touches or overlaps us.
  auto It = Map.upper_bound(Lo);
  if (It != Map.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second >= Lo) {
      // Extend the previous interval instead of inserting a new one.
      Lo = Prev->first;
      if (Prev->second > Hi)
        Hi = Prev->second;
      It = Map.erase(Prev);
    }
  }

  // Absorb all following intervals that overlap or touch [Lo, Hi).
  while (It != Map.end() && It->first <= Hi) {
    if (It->second > Hi)
      Hi = It->second;
    It = Map.erase(It);
  }

  Map.emplace(Lo, Hi);
}

bool IntervalSet::contains(uint64_t Addr) const {
  auto It = Map.upper_bound(Addr);
  if (It == Map.begin())
    return false;
  --It;
  return Addr < It->second;
}

bool IntervalSet::overlaps(uint64_t Lo, uint64_t Hi) const {
  if (Lo >= Hi)
    return false;
  auto It = Map.upper_bound(Lo);
  if (It != Map.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second > Lo)
      return true;
  }
  return It != Map.end() && It->first < Hi;
}

void IntervalSet::erase(uint64_t Lo, uint64_t Hi) {
  if (Lo >= Hi)
    return;

  // Split the interval containing Lo, if any.
  auto It = Map.upper_bound(Lo);
  if (It != Map.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second > Lo) {
      uint64_t PrevHi = Prev->second;
      Prev->second = Lo; // Keep [Prev->first, Lo).
      if (Prev->second == Prev->first)
        Map.erase(Prev);
      if (PrevHi > Hi)
        Map.emplace(Hi, PrevHi); // Keep the tail [Hi, PrevHi).
    }
  }

  // Remove or trim all intervals starting inside [Lo, Hi).
  It = Map.lower_bound(Lo);
  while (It != Map.end() && It->first < Hi) {
    if (It->second <= Hi) {
      It = Map.erase(It);
      continue;
    }
    // Interval extends past Hi: keep the tail.
    uint64_t TailHi = It->second;
    Map.erase(It);
    Map.emplace(Hi, TailHi);
    break;
  }
}

std::optional<uint64_t> IntervalSet::findFreeGap(const Interval &Bound,
                                                 uint64_t Size) const {
  if (Size == 0 || Bound.size() < Size)
    return std::nullopt;

  uint64_t Cursor = Bound.Lo;

  // If an interval covers Cursor, skip to its end first.
  auto It = Map.upper_bound(Cursor);
  if (It != Map.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second > Cursor)
      Cursor = Prev->second;
  }

  while (true) {
    if (Cursor > Bound.Hi || Bound.Hi - Cursor < Size)
      return std::nullopt;
    if (It == Map.end() || It->first >= Cursor + Size)
      return Cursor; // The gap [Cursor, Cursor + Size) is free.
    // Not enough room before the next interval; jump past it.
    Cursor = It->second;
    ++It;
  }
}

std::optional<uint64_t> IntervalSet::findFreeStart(const Interval &StartBound,
                                                   uint64_t Size) const {
  if (Size == 0 || StartBound.empty())
    return std::nullopt;

  uint64_t Cursor = StartBound.Lo;
  auto It = Map.upper_bound(Cursor);
  if (It != Map.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second > Cursor)
      Cursor = Prev->second;
  }

  while (Cursor < StartBound.Hi) {
    uint64_t GapEnd = It == Map.end() ? UINT64_MAX : It->first;
    if (GapEnd - Cursor >= Size)
      return Cursor;
    if (It == Map.end())
      return std::nullopt;
    Cursor = It->second;
    ++It;
  }
  return std::nullopt;
}

uint64_t IntervalSet::totalSize() const {
  uint64_t Total = 0;
  for (const auto &[Lo, Hi] : Map)
    Total += Hi - Lo;
  return Total;
}
