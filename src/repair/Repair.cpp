//===- repair/Repair.cpp --------------------------------------*- C++ -*-===//

#include "repair/Repair.h"

#include "frontend/Runtime.h"
#include "lowfat/LowFat.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Timing.h"
#include "vm/Loader.h"
#include "workload/Run.h"

#include <algorithm>
#include <map>

using namespace e9;
using namespace e9::repair;

const char *repair::divergenceKindName(DivergenceKind K) {
  static const char *const Names[] = {
      "none",         "end-state", "guest-fault", "trap",
      "hang",         "load-failure", "rewrite-error"};
  return Names[static_cast<size_t>(K)];
}

namespace {

/// Observable end state of one VM run.
struct EndState {
  vm::RunResult Result;
  vm::Cpu Core;
  uint64_t DataChecksum = 0;
};

/// Runs the original and candidate images against one shared snapshot of
/// the loaded original (copy-on-write; see vm::Vm::snapshot). Host hooks
/// and the trap handler are re-installed before every run, so the lambdas
/// left behind by a previous run are never invoked.
class Runner {
public:
  explicit Runner(const elf::Image &Orig) : Orig(Orig) {}

  uint64_t Restores = 0;
  uint64_t ColdLoads = 0;

  Status init() {
    auto L = vm::load(V, Orig);
    if (!L.isOk())
      return Status::error(L.reason());
    ++ColdLoads;
    Snap = V.snapshot();
    return Status::ok();
  }

  uint64_t cowClonedPages() const { return V.Mem.cowCloneCount(); }

  EndState runReference(uint64_t MaxInsns) {
    rewind();
    if (!Orig.B0Sites.empty())
      frontend::installB0Handler(V, Orig.B0Sites);
    else
      V.setTrapHandler(nullptr);
    return execute(Orig, MaxInsns);
  }

  /// Delta-loads \p Cand over the snapshot (poke the patcher's modified
  /// byte ranges, map the trampoline blocks fresh) and runs it.
  /// \p TrapUnknown reports an int3 with no B0 side-table entry.
  EndState runCandidate(const frontend::RewriteOutput &Cand,
                        uint64_t MaxInsns, bool &TrapUnknown) {
    rewind();
    EndState E;
    for (const Interval &R : Cand.ModifiedRanges)
      if (Status S = pokeRange(Cand.Rewritten, R); !S) {
        E.Result.Kind = vm::RunResult::Exit::Fault;
        E.Result.Error = format("delta-load: %s", S.reason().c_str());
        return E;
      }
    if (auto M = vm::applyMappings(V, Cand.Rewritten); !M.isOk()) {
      E.Result.Kind = vm::RunResult::Exit::Fault;
      E.Result.Error = format("delta-load: %s", M.reason().c_str());
      return E;
    }
    UnknownTrap = false;
    frontend::installB0Handler(V, Cand.B0Table, nullptr,
                               [this](uint64_t) { UnknownTrap = true; });
    E = execute(Cand.Rewritten, MaxInsns);
    TrapUnknown = UnknownTrap;
    return E;
  }

private:
  void rewind() {
    V.restore(Snap);
    ++Restores;
  }

  /// Installs a fresh heap (allocator state must not leak between runs),
  /// runs to completion and captures the observable end state.
  EndState execute(const elf::Image &Img, uint64_t MaxInsns) {
    lowfat::PlainHeap Heap;
    lowfat::installPlainHeap(V, Heap);
    EndState E;
    E.Result = V.run(MaxInsns);
    E.Core = V.Core;
    E.DataChecksum = workload::dataChecksum(V, Img);
    return E;
  }

  /// Writes the bytes of \p Img covering \p R into guest memory. Modified
  /// ranges live inside segments by construction; bytes past a segment's
  /// file content cannot have been modified by the patcher.
  Status pokeRange(const elf::Image &Img, const Interval &R) {
    for (const elf::Segment &S : Img.Segments) {
      if (R.Lo < S.VAddr || R.Lo >= S.VAddr + S.MemSize)
        continue;
      uint64_t Off = R.Lo - S.VAddr;
      if (Off >= S.Bytes.size())
        return Status::ok();
      uint64_t N = std::min<uint64_t>(R.size(), S.Bytes.size() - Off);
      return V.Mem.poke(R.Lo, S.Bytes.data() + Off, N);
    }
    return Status::error(
        format("modified range at %s is outside every segment",
               hex(R.Lo).c_str()));
  }

  const elf::Image &Orig;
  vm::Vm V;
  vm::VmSnapshot Snap;
  bool UnknownTrap = false;
};

/// The divergence oracle: exit kinds, all 16 GPRs + rip, the 7 tracked
/// status flags, and the writable-memory checksum.
Divergence compare(const EndState &Ref, const EndState &Cand,
                   bool TrapUnknown) {
  using Exit = vm::RunResult::Exit;
  Divergence D;
  if (Cand.Result.Kind != Exit::Finished) {
    if (TrapUnknown)
      D.Kind = DivergenceKind::Trap;
    else if (Cand.Result.Kind == Exit::InsnLimit)
      D.Kind = DivergenceKind::Hang;
    else
      D.Kind = DivergenceKind::GuestFault;
    D.Detail = Cand.Result.Error;
    return D;
  }
  for (size_t I = 0; I != 16; ++I)
    if (Ref.Core.Gpr[I] != Cand.Core.Gpr[I]) {
      D.Kind = DivergenceKind::EndState;
      D.Detail = format("gpr%zu %s != %s", I, hex(Cand.Core.Gpr[I]).c_str(),
                        hex(Ref.Core.Gpr[I]).c_str());
      return D;
    }
  if (Ref.Core.Rip != Cand.Core.Rip ||
      Ref.Core.rflags() != Cand.Core.rflags()) {
    D.Kind = DivergenceKind::EndState;
    D.Detail = "rip/rflags mismatch";
    return D;
  }
  if (Ref.DataChecksum != Cand.DataChecksum) {
    D.Kind = DivergenceKind::EndState;
    D.Detail = format("data checksum %s != %s",
                      hex(Cand.DataChecksum).c_str(),
                      hex(Ref.DataChecksum).c_str());
    return D;
  }
  return D;
}

/// Classic ddmin with complements over \p Set. \p Test returns true when
/// the subset still diverges; \p Budget caps the number of Test calls.
/// Returns a (1-)minimal diverging subset — or, on budget exhaustion, the
/// smallest diverging set found so far.
std::vector<uint64_t> ddmin(std::vector<uint64_t> Set,
                            const std::function<bool(
                                const std::vector<uint64_t> &)> &Test,
                            const std::function<bool()> &Exhausted) {
  size_t N = 2;
  while (Set.size() >= 2 && !Exhausted()) {
    size_t Chunks = std::min(N, Set.size());
    size_t Lo = 0;
    bool Reduced = false;
    // Subsets first.
    for (size_t C = 0; C != Chunks && !Exhausted(); ++C) {
      size_t Hi = Lo + Set.size() / Chunks + (C < Set.size() % Chunks);
      std::vector<uint64_t> Sub(Set.begin() + Lo, Set.begin() + Hi);
      if (Test(Sub)) {
        Set = std::move(Sub);
        N = 2;
        Reduced = true;
        break;
      }
      Lo = Hi;
    }
    // Then complements (skip for N == 2: complements equal the subsets).
    if (!Reduced && Chunks > 2) {
      Lo = 0;
      for (size_t C = 0; C != Chunks && !Exhausted(); ++C) {
        size_t Hi = Lo + Set.size() / Chunks + (C < Set.size() % Chunks);
        std::vector<uint64_t> Comp;
        Comp.insert(Comp.end(), Set.begin(), Set.begin() + Lo);
        Comp.insert(Comp.end(), Set.begin() + Hi, Set.end());
        if (Test(Comp)) {
          Set = std::move(Comp);
          N = Chunks > 2 ? Chunks - 1 : 2;
          Reduced = true;
          break;
        }
        Lo = Hi;
      }
    }
    if (!Reduced) {
      if (N >= Set.size())
        break; // Already at finest granularity: Set is 1-minimal.
      N = std::min(Set.size(), 2 * N);
    }
  }
  return Set;
}

/// First ceiling a demotion may try, given the tactic the site used.
/// Returns false when there is nothing more conservative (already at the
/// bottom), in which case the site is revoked outright.
bool demotionStart(core::Tactic From, core::TacticCeiling &Start) {
  switch (From) {
  case core::Tactic::T3:
    Start = core::TacticCeiling::NoT3;
    return true;
  case core::Tactic::T2:
    Start = core::TacticCeiling::NoT2;
    return true;
  case core::Tactic::T1:
    Start = core::TacticCeiling::NoT1;
    return true;
  case core::Tactic::B1:
  case core::Tactic::B2:
    Start = core::TacticCeiling::B0Only;
    return true;
  case core::Tactic::B0:
  case core::Tactic::Failed:
    return false;
  }
  return false;
}

} // namespace

frontend::RewriteOptions repair::sabotage(frontend::RewriteOptions Opts,
                                          std::set<uint64_t> Sites) {
  auto Base = Opts.SpecFor;
  core::TrampolineSpec Default = Opts.Patch.Spec;
  Opts.SpecFor = [Base = std::move(Base), Default = std::move(Default),
                  Sites = std::move(Sites)](uint64_t Addr) {
    core::TrampolineSpec S = Base ? Base(Addr) : Default;
    if (Sites.count(Addr) == 0)
      return S;
    // inc qword [0x2000]: low memory is never mapped in the VM, so the
    // first execution of this trampoline faults — unless the site is
    // demoted to B0 (no trampoline) or revoked.
    core::TrampolineSpec Bad;
    Bad.Kind = core::TrampolineKind::Composed;
    Bad.Ops.push_back(core::TemplateOp::raw(
        {0x48, 0xff, 0x04, 0x25, 0x00, 0x20, 0x00, 0x00}));
    Bad.Ops.push_back(core::TemplateOp::displaced());
    return Bad;
  };
  return Opts;
}

Result<std::vector<uint64_t>>
repair::executedSites(const elf::Image &Img,
                      const std::vector<uint64_t> &PatchLocs, size_t N) {
  std::set<uint64_t> Cands(PatchLocs.begin(), PatchLocs.end());
  std::set<uint64_t> Hit;

  vm::Vm V;
  lowfat::PlainHeap Heap;
  lowfat::installPlainHeap(V, Heap);
  if (!Img.B0Sites.empty())
    frontend::installB0Handler(V, Img.B0Sites);
  auto L = vm::load(V, Img);
  if (!L.isOk())
    return Result<std::vector<uint64_t>>::error(L.reason());
  V.OnStep = [&](uint64_t Rip) {
    if (Cands.count(Rip))
      Hit.insert(Rip);
  };
  vm::RunResult R = V.run(100'000'000);
  if (!R.ok())
    return Result<std::vector<uint64_t>>::error(
        format("coverage run failed: %s", R.Error.c_str()));

  std::vector<uint64_t> Exec(Hit.begin(), Hit.end()); // sorted (std::set)
  if (N >= Exec.size())
    return Exec;
  // Evenly spaced over the executed subset, so the picks spread across
  // the address space (and therefore across shards).
  std::vector<uint64_t> Out;
  for (size_t I = 0; I != N; ++I)
    Out.push_back(Exec[I * Exec.size() / N]);
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

Result<RepairOutput>
repair::selfVerifyingRewrite(const elf::Image &In,
                             const std::vector<uint64_t> &PatchLocs,
                             const frontend::RewriteOptions &Opts) {
  using frontend::RewriteOptions;
  using frontend::RewriteOutput;
  const frontend::RepairPolicy &Pol = Opts.Repair;

  RepairOutput RO;
  RepairReport &Rep = RO.Report;

  // Repair-loop trace events are buffered separately and appended after
  // the final rewrite's own lines.
  obs::TraceBuffer RBuf;
  obs::Tracer RTrace(Opts.Trace.Enabled ? &RBuf : nullptr);
  // Likewise, repair-loop profiler spans collect into their own tree and
  // are grafted as a "repair" child of the final rewrite's span tree.
  // Span *counts* (rounds, candidate runs, rewrites, ddmin probes) are a
  // pure function of (input, sites, options) because the whole loop is
  // deterministic; only the *_ms fields are wall-clock.
  obs::ProfileCollector RProfC;
  obs::Profiler RProf(Opts.Trace.Profile ? &RProfC : nullptr);
  Stopwatch RepairClock;

  std::vector<uint64_t> Sites(PatchLocs);
  std::sort(Sites.begin(), Sites.end());
  Sites.erase(std::unique(Sites.begin(), Sites.end()), Sites.end());

  Runner R(In);
  if (Status S = R.init(); !S)
    return Result<RepairOutput>::error(
        format("repair: loading the original failed: %s",
               S.reason().c_str()));

  uint64_t RefMax = Pol.StepLimit ? Pol.StepLimit : 100'000'000;
  EndState Ref;
  {
    obs::ScopedSpan Span(RProf, "reference_run");
    Ref = R.runReference(RefMax);
  }
  if (Ref.Result.Kind != vm::RunResult::Exit::Finished)
    return Result<RepairOutput>::error(
        format("repair: the original binary does not run cleanly: %s",
               Ref.Result.Error.c_str()));
  // The hang oracle: a candidate gets a generous multiple of the
  // reference instruction count before it counts as hung.
  uint64_t StepLimit =
      Pol.StepLimit ? Pol.StepLimit : Ref.Result.InsnCount * 4 + 10'000;

  std::map<uint64_t, core::TacticCeiling> Ceilings;
  std::set<uint64_t> Revoked;

  auto activeSites = [&] {
    std::vector<uint64_t> Out;
    for (uint64_t A : Sites)
      if (Revoked.count(A) == 0)
        Out.push_back(A);
    return Out;
  };

  // Candidate rewrites run without tracing or strict verification: a
  // probe subset may legitimately leave sites Failed or diverge — that is
  // the signal, not an error.
  auto rewriteCandidate =
      [&](const std::vector<uint64_t> &Subset) -> Result<RewriteOutput> {
    RewriteOptions O = Opts;
    O.Trace.Enabled = false;
    O.Trace.Timings = false;
    O.Trace.Profile = false; // the repair-level "rewrite" span covers it
    O.Verify.Strict = false;
    O.Verify.Enabled = false;
    O.Verify.MaxFailedSites = SIZE_MAX;
    auto UserCeil = Opts.Patch.CeilingFor;
    if (!Ceilings.empty() || UserCeil) {
      O.Patch.CeilingFor = [UserCeil, Ceilings](uint64_t A) {
        core::TacticCeiling C =
            UserCeil ? UserCeil(A) : core::TacticCeiling::Full;
        auto It = Ceilings.find(A);
        if (It != Ceilings.end() && It->second > C)
          C = It->second;
        return C;
      };
    }
    ++Rep.Rewrites;
    obs::ScopedSpan Span(RProf, "rewrite");
    return frontend::rewrite(In, Subset, O);
  };

  auto budgetLeft = [&] { return Rep.CandidateRuns < Pol.MaxCandidateRuns; };

  // Rewrites + runs one subset; true when it diverges from the reference.
  auto subsetDiverges = [&](const std::vector<uint64_t> &Subset,
                            Divergence *Out = nullptr) -> bool {
    auto Cand = rewriteCandidate(Subset);
    if (!Cand.isOk()) {
      // A subset that cannot even rewrite gives no divergence evidence;
      // report it upward but treat the probe as non-diverging.
      if (Out) {
        Out->Kind = DivergenceKind::RewriteError;
        Out->Detail = Cand.reason();
      }
      return false;
    }
    ++Rep.CandidateRuns;
    bool TrapUnknown = false;
    EndState E;
    {
      obs::ScopedSpan Span(RProf, "candidate_run");
      E = R.runCandidate(*Cand, StepLimit, TrapUnknown);
    }
    Divergence D = compare(Ref, E, TrapUnknown);
    if (Out)
      *Out = D;
    return D.diverged();
  };

  // Local refinement for one culprit: walk the demotion lattice on a
  // single-site candidate until it stops diverging; adopt that ceiling,
  // or revoke when the floor is reached (or the budget runs out).
  auto refine = [&](uint64_t Addr, core::Tactic From, uint64_t Round) {
    obs::ScopedSpan Span(RProf, "refine");
    SiteRepair SR;
    SR.Addr = Addr;
    SR.From = From;
    SR.Round = Round;
    core::TacticCeiling Start;
    bool CanDemote = demotionStart(From, Start);
    auto Cur = Ceilings.find(Addr);
    if (CanDemote && Cur != Ceilings.end() && Cur->second >= Start) {
      // The site already carries a ceiling at least this strict (from an
      // earlier round): step strictly further down, or give up at B0.
      if (Cur->second == core::TacticCeiling::B0Only)
        CanDemote = false;
      else
        Start = static_cast<core::TacticCeiling>(
            static_cast<int>(Cur->second) + 1);
    }
    if (CanDemote) {
      for (int C = static_cast<int>(Start);
           C <= static_cast<int>(Pol.DemotionFloor) && budgetLeft(); ++C) {
        auto Ceil = static_cast<core::TacticCeiling>(C);
        Ceilings[Addr] = Ceil;
        Divergence D;
        if (!subsetDiverges({Addr}, &D) &&
            D.Kind != DivergenceKind::RewriteError) {
          SR.Ceiling = Ceil;
          Rep.Sites.push_back(SR);
          RTrace.repairSite(Addr, "demote", core::tacticName(From),
                            core::tacticCeilingName(Ceil), Round);
          return;
        }
      }
      Ceilings.erase(Addr);
    }
    SR.Revoked = true;
    Revoked.insert(Addr);
    Rep.Sites.push_back(SR);
    RTrace.repairSite(Addr, "revoke", core::tacticName(From), nullptr,
                      Round);
  };

  bool Converged = false;
  for (uint64_t Round = 1; Round <= Pol.MaxRounds && budgetLeft(); ++Round) {
    obs::ScopedSpan RoundSpan(RProf, "round");
    Rep.Rounds = Round;
    std::vector<uint64_t> Active = activeSites();
    auto Full = rewriteCandidate(Active);
    if (!Full.isOk())
      return Result<RepairOutput>::error(
          format("repair: rewrite failed in round %llu: %s",
                 static_cast<unsigned long long>(Round),
                 Full.reason().c_str()));
    ++Rep.CandidateRuns;
    bool TrapUnknown = false;
    EndState E;
    {
      obs::ScopedSpan Span(RProf, "candidate_run");
      E = R.runCandidate(*Full, StepLimit, TrapUnknown);
    }
    Divergence D = compare(Ref, E, TrapUnknown);
    if (!D.diverged()) {
      Converged = true;
      break;
    }
    Rep.Final = D;
    RTrace.repairDivergence(Round, divergenceKindName(D.Kind), D.Detail);

    // Tactic each site used in this round's candidate (for demotion).
    std::map<uint64_t, core::Tactic> Used;
    for (const core::PatchSiteResult &S : Full->Sites)
      Used[S.Addr] = S.Used;

    std::vector<uint64_t> Culprits;
    {
      obs::ScopedSpan Span(RProf, "ddmin");
      Culprits = ddmin(
          Active, [&](const std::vector<uint64_t> &S) {
            return subsetDiverges(S);
          },
          [&] { return !budgetLeft(); });
    }
    if (Culprits.size() == Active.size() && Active.size() > 1 &&
        !budgetLeft())
      break; // Budget died before isolation could make progress.
    for (uint64_t C : Culprits) {
      auto It = Used.find(C);
      refine(C, It == Used.end() ? core::Tactic::Failed : It->second,
             Round);
    }
  }

  if (Converged) {
    // One clean full-set run already matched; re-check is unnecessary
    // because the pipeline is deterministic: the final rewrite below uses
    // the same sites and ceilings and so produces the same bytes.
    Rep.Final = Divergence();
  }
  Rep.Converged = Converged;
  Rep.SnapshotRestores = R.Restores;
  Rep.ColdLoads = R.ColdLoads;
  Rep.CowClonedPages = R.cowClonedPages();

  size_t Demoted = 0, RevokedN = 0;
  for (const SiteRepair &S : Rep.Sites)
    (S.Revoked ? RevokedN : Demoted) += 1;
  RTrace.repairSummary(Rep.Converged, Rep.Rounds, Rep.CandidateRuns,
                       Rep.Rewrites + 1, Demoted, RevokedN,
                       Rep.SnapshotRestores, Rep.ColdLoads);

  // The final rewrite runs with the caller's real options (tracing,
  // verification, strictness) over the repaired site set.
  RewriteOptions FinalOpts = Opts;
  auto UserCeil = Opts.Patch.CeilingFor;
  if (!Ceilings.empty() || UserCeil) {
    FinalOpts.Patch.CeilingFor = [UserCeil, Ceilings](uint64_t A) {
      core::TacticCeiling C =
          UserCeil ? UserCeil(A) : core::TacticCeiling::Full;
      auto It = Ceilings.find(A);
      if (It != Ceilings.end() && It->second > C)
        C = It->second;
      return C;
    };
  }
  auto Final = frontend::rewrite(In, activeSites(), FinalOpts);
  if (!Final.isOk())
    return Result<RepairOutput>::error(
        format("repair: final rewrite failed: %s", Final.reason().c_str()));
  ++Rep.Rewrites;
  RO.Rewrite = Final.take();
  for (std::string &Line : RBuf.take())
    RO.Rewrite.Trace.push_back(std::move(Line));
  if (RProf.enabled()) {
    // Graft the repair-loop tree as a child of the final rewrite's root.
    // Its TotalMs covers the whole repair (including that final rewrite),
    // so it can exceed the parent's; finalizeSelf clamps SelfMs at zero.
    obs::ProfileNode RNode = RProfC.takeTree(RepairClock.elapsedMs());
    RNode.Name = "repair";
    std::vector<obs::SpanEvent> REvents = RProfC.takeEvents();
    RO.Rewrite.Profile.Tree.Children.push_back(std::move(RNode));
    RO.Rewrite.Profile.Events.insert(RO.Rewrite.Profile.Events.end(),
                                     REvents.begin(), REvents.end());
  }

  obs::MetricsRegistry Reg;
  Reg.counter("repair.converged").add(Rep.Converged ? 1 : 0);
  Reg.counter("repair.rounds").add(Rep.Rounds);
  Reg.counter("repair.candidate_runs").add(Rep.CandidateRuns);
  Reg.counter("repair.rewrites").add(Rep.Rewrites);
  Reg.counter("repair.sites_demoted").add(Demoted);
  Reg.counter("repair.sites_revoked").add(RevokedN);
  Reg.counter("repair.snapshot_restores").add(Rep.SnapshotRestores);
  Reg.counter("repair.cold_loads").add(Rep.ColdLoads);
  Reg.counter("repair.cow_cloned_pages").add(Rep.CowClonedPages);
  RO.Metrics = Reg.snapshot();
  return RO;
}
