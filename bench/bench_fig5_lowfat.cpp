//===- bench/bench_fig5_lowfat.cpp - Experiment E5 -------------*- C++ -*-===//
//
// Reproduces Figure 5: per-benchmark runtime of the empty A2 heap-write
// instrumentation versus the LowFat redzone-check instrumentation (§6.3),
// over the SPEC-analog suite plus the browser analogs. Paper shape: the
// LowFat bars sit strictly above the empty-instrumentation bars for every
// benchmark (SPEC mean +64.7% -> +127.3%; Chrome 213% -> 270%;
// FireFox 146% -> 160%).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace e9::bench;
using namespace e9::workload;

int main() {
  std::printf("E5: Figure 5 — empty A2 vs LowFat redzone instrumentation\n");
  std::printf("Paper shape: LowFat strictly above empty for every row.\n\n");
  std::printf("%-12s %12s %12s\n", "binary", "emptyA2%", "LowFat%");
  std::printf("--------------------------------------\n");

  double SumE = 0, SumL = 0;
  size_t N = 0;
  size_t Above = 0;
  auto Entries = specSuite();
  auto Browsers = browserSuite();
  Entries.insert(Entries.end(), Browsers.begin(), Browsers.end());

  for (const SuiteEntry &E : Entries) {
    EvalOptions Empty;
    AppResult RE = evalEntry(E, App::HeapWrites, Empty);
    EvalOptions Low;
    Low.UseLowFat = true;
    AppResult RL = evalEntry(E, App::HeapWrites, Low);
    std::printf("%-12s %12.2f %12.2f %s\n", E.Config.Name.c_str(),
                RE.TimePct, RL.TimePct,
                RE.SemanticsOk && RL.SemanticsOk ? "" : "(!)");
    if (RE.TimePct > 0 && RL.TimePct > 0) {
      SumE += RE.TimePct;
      SumL += RL.TimePct;
      ++N;
      if (RL.TimePct > RE.TimePct)
        ++Above;
    }
  }
  if (N != 0) {
    std::printf("--------------------------------------\n");
    std::printf("%-12s %12.2f %12.2f\n", "Mean",
                SumE / static_cast<double>(N), SumL / static_cast<double>(N));
    std::printf("LowFat above empty on %zu / %zu rows\n", Above, N);
  }
  return 0;
}
