//===- bench/bench_table1_large.cpp - Experiment E3 ------------*- C++ -*-===//
//
// Reproduces the system-binary and browser rows of Table 1 for both
// applications (no Time% — the paper reports none for these rows either).
// Paper shape: PIE binaries (inkscape/vim/evince, Chrome/FireFox) have
// Base% > 93 with near-zero T3 because the negative rel32 range is usable;
// shared objects (libc.so, libxul.so) behave like non-PIE because the
// dynamic linker occupies the range below their base.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace e9::bench;
using namespace e9::workload;

namespace {

void runSuite(const char *Title, const std::vector<SuiteEntry> &Suite,
              App Application) {
  printTableHeader(Title, /*WithTime=*/false);
  std::vector<AppResult> Rows;
  EvalOptions Opts;
  Opts.MeasureTime = false; // patching statistics only, as in the paper
  for (const SuiteEntry &E : Suite) {
    AppResult R = evalEntry(E, Application, Opts);
    printTableRow(R, false);
    Rows.push_back(R);
  }
  printTableTotals(Rows, false);
}

} // namespace

int main() {
  std::printf("E3: Table 1, system binaries and browsers (PIE effects)\n");
  std::printf("Paper shape: PIE rows Base%% > 93, T3 ~ 0; shared objects "
              "act like non-PIE.\n");

  auto System = systemSuite();
  auto Browsers = browserSuite();
  runSuite("System binaries, A1 (jumps)", System, App::Jumps);
  runSuite("System binaries, A2 (heap writes)", System, App::HeapWrites);
  runSuite("Browsers, A1 (jumps)", Browsers, App::Jumps);
  runSuite("Browsers, A2 (heap writes)", Browsers, App::HeapWrites);
  return 0;
}
