//===- x86/Printer.h - AT&T-style instruction formatting -------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats decoded instructions in AT&T syntax (objdump-like), for the
/// disassembler tool and diagnostics. Coverage follows the decoder's
/// classification tables; instructions without a known mnemonic fall back
/// to a ".byte" rendering, never failing.
///
//===----------------------------------------------------------------------===//

#ifndef E9_X86_PRINTER_H
#define E9_X86_PRINTER_H

#include "x86/Insn.h"

#include <string>

namespace e9 {
namespace x86 {

/// Formats \p I (whose raw bytes are \p Bytes) as AT&T assembly, e.g.
/// "mov %rax,(%rbx)" or "jmpq 0x401234".
std::string formatInsn(const Insn &I, const uint8_t *Bytes);

/// Returns the sized register name for hardware encoding \p Enc
/// (size 1/2/4/8; \p HasRex selects spl/bpl/sil/dil over ah/ch/dh/bh).
std::string regNameSized(unsigned Enc, unsigned Size, bool HasRex);

} // namespace x86
} // namespace e9

#endif // E9_X86_PRINTER_H
