//===- api/Net.cpp --------------------------------------------*- C++ -*-===//

#include "api/Net.h"

#include "support/Format.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace e9;
using namespace e9::api;
using support::Fd;
using support::PollResult;

//===----------------------------------------------------------------------===//
// Listener
//===----------------------------------------------------------------------===//

Result<Listener> Listener::unixSocket(const std::string &Path) {
  using RL = Result<Listener>;
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return RL::error(format("unix socket path too long (max %zu bytes): %s",
                            sizeof(Addr.sun_path) - 1, Path.c_str()));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  Fd Sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock)
    return RL::error(format("socket(AF_UNIX): %s", std::strerror(errno)));
  if (::bind(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0)
    return RL::error(format("bind(%s): %s", Path.c_str(),
                            std::strerror(errno)));
  if (::listen(Sock.get(), SOMAXCONN) < 0) {
    ::unlink(Path.c_str());
    return RL::error(format("listen(%s): %s", Path.c_str(),
                            std::strerror(errno)));
  }
  Listener L;
  L.Sock = std::move(Sock);
  L.Path = Path;
  return L;
}

Result<Listener> Listener::tcpLoopback(uint16_t Port) {
  using RL = Result<Listener>;
  Fd Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock)
    return RL::error(format("socket(AF_INET): %s", std::strerror(errno)));
  int One = 1;
  ::setsockopt(Sock.get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0)
    return RL::error(format("bind(127.0.0.1:%u): %s", (unsigned)Port,
                            std::strerror(errno)));
  if (::listen(Sock.get(), SOMAXCONN) < 0)
    return RL::error(format("listen(127.0.0.1:%u): %s", (unsigned)Port,
                            std::strerror(errno)));
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
                    &Len) < 0)
    return RL::error(format("getsockname: %s", std::strerror(errno)));
  Listener L;
  L.Sock = std::move(Sock);
  L.Port = ntohs(Addr.sin_port);
  return L;
}

Listener::~Listener() { close(); }

Fd Listener::acceptOne() {
  for (;;) {
    int Raw = ::accept(Sock.get(), nullptr, nullptr);
    if (Raw >= 0) {
      Fd Client(Raw);
      (void)support::setCloseOnExec(Raw);
      return Client;
    }
    if (errno == EINTR)
      continue;
    // EAGAIN/ECONNABORTED: the ready client vanished; not an error.
    return Fd();
  }
}

void Listener::close() {
  Sock.reset();
  if (!Path.empty()) {
    ::unlink(Path.c_str());
    Path.clear();
  }
}

//===----------------------------------------------------------------------===//
// Connection
//===----------------------------------------------------------------------===//

Connection::Connection(Fd Sock, size_t WriteQueueLimit, int WriteTimeoutMs)
    : Sock(std::move(Sock)), QueueLimit(WriteQueueLimit),
      WriteTimeoutMs(WriteTimeoutMs) {
  // Non-blocking + poll keeps every deadline in this layer: a blocking
  // send() could otherwise pin the thread past the write timeout.
  (void)support::setNonBlocking(this->Sock.get());
}

Connection::ReadResult Connection::readLine(std::string &Out,
                                            int TimeoutMs) {
  for (;;) {
    // Serve a complete line already buffered before touching the socket.
    size_t Nl = Buffer.find('\n', Scanned);
    if (Nl != std::string::npos) {
      Out.assign(Buffer, 0, Nl);
      if (!Out.empty() && Out.back() == '\r')
        Out.pop_back();
      Buffer.erase(0, Nl + 1);
      Scanned = 0;
      return ReadResult::Line;
    }
    Scanned = Buffer.size();
    if (Buffer.size() > maxLineBytes())
      return ReadResult::Error; // unframed flood; fail closed
    if (Eof)
      return ReadResult::Eof;

    PollResult P = support::pollReadable(Sock.get(), TimeoutMs);
    if (P == PollResult::Timeout)
      return ReadResult::Timeout;
    if (P == PollResult::Error)
      return ReadResult::Error;
    char Chunk[4096];
    ssize_t N = ::read(Sock.get(), Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue; // spurious wakeup; poll again
      return ReadResult::Error;
    }
    if (N == 0) {
      Eof = true;
      // A final unterminated line still counts: EOF is its frame end.
      if (!Buffer.empty()) {
        Out = std::move(Buffer);
        Buffer.clear();
        Scanned = 0;
        if (!Out.empty() && Out.back() == '\r')
          Out.pop_back();
        return ReadResult::Line;
      }
      return ReadResult::Eof;
    }
    BytesIn += (uint64_t)N;
    Buffer.append(Chunk, (size_t)N);
  }
}

Status Connection::writeLine(std::string_view Line) {
  Queue.append(Line);
  Queue.push_back('\n');
  // Deliver eagerly (a client blocked on its status response must not
  // wait for the queue bound), but without ever blocking this thread on
  // a reader that keeps up. Only past the byte bound does the writer
  // block — and then with a deadline, so an undraining client fails its
  // own session instead of pinning a server thread forever.
  E9_TRY_STATUS(pump(/*Block=*/false));
  if (Queue.size() > QueueLimit)
    return pump(/*Block=*/true);
  return Status::ok();
}

Status Connection::flush() { return pump(/*Block=*/true); }

Status Connection::pump(bool Block) {
  size_t Off = 0;
  while (Off != Queue.size()) {
    PollResult P =
        support::pollWritable(Sock.get(), Block ? WriteTimeoutMs : 0);
    if (P == PollResult::Timeout) {
      if (Block)
        return Status::error(
            format("client not draining responses (stalled > %d ms with "
                   "%zu bytes queued)",
                   WriteTimeoutMs, Queue.size() - Off));
      break; // socket full; keep the remainder queued
    }
    if (P == PollResult::Error)
      return Status::error("poll on client socket failed");
    // MSG_NOSIGNAL: a disappeared client must surface as EPIPE, not
    // kill the whole server with SIGPIPE.
    ssize_t N = ::send(Sock.get(), Queue.data() + Off, Queue.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (!Block && (errno == EAGAIN || errno == EWOULDBLOCK))
        break;
      return Status::error(format("write to client failed: %s",
                                  std::strerror(errno)));
    }
    Off += (size_t)N;
    BytesOut += (uint64_t)N;
  }
  Queue.erase(0, Off);
  return Status::ok();
}

void Connection::shutdownRead() { ::shutdown(Sock.get(), SHUT_RD); }
