//===- workload/Suite.cpp -------------------------------------*- C++ -*-===//

#include "workload/Suite.h"

using namespace e9;
using namespace e9::workload;

namespace {

/// Builds a config from the row characteristics.
/// \p SizeClass 0..4: tiny/small/medium/large/huge (function count).
/// \p ShortBias raises the density of 1-2 byte instructions (harder
/// punning, more T2/T3). \p LoopHeavy models Fortran-style numeric code
/// (bigger blocks, fewer call sites).
WorkloadConfig row(const char *Name, uint64_t Seed, unsigned SizeClass,
                   unsigned ShortBias, bool LoopHeavy, bool Pie = false,
                   uint64_t BssSize = 0) {
  WorkloadConfig C;
  C.Name = Name;
  C.Seed = Seed;
  C.Pie = Pie;
  static const unsigned Funcs[] = {4, 10, 24, 56, 120};
  C.NumFuncs = Funcs[SizeClass];
  C.BlocksPerFunc = LoopHeavy ? 7 : 5;
  C.InsnsPerBlock = LoopHeavy ? 8 : 6;
  C.InnerIters = LoopHeavy ? 6 : 3;
  C.MainIters = SizeClass >= 3 ? 2 : 6;
  C.ShortInsnPct = 8 + ShortBias;
  C.HeapWritePct = LoopHeavy ? 6 : 10;
  C.DataWritePct = LoopHeavy ? 18 : 14;
  C.LoadPct = 16;
  C.BssSize = BssSize;
  C.DataSize = 0x4000;
  C.HeapObjects = 6;
  return C;
}

SuiteEntry entry(WorkloadConfig C, double PaperMB, bool Shared = false) {
  SuiteEntry E;
  E.Config = std::move(C);
  E.SharedObject = Shared;
  E.PaperSizeMB = PaperMB;
  return E;
}

} // namespace

std::vector<SuiteEntry> workload::specSuite() {
  // Huge .bss for the gamess/zeusmp analogs reproduces limitation L1:
  // the static allocation eats most of the rel32-reachable space.
  std::vector<SuiteEntry> S;
  S.push_back(entry(row("perlbench", 101, 2, 4, false), 1.25));
  S.push_back(entry(row("bzip2", 102, 1, 6, false), 0.07));
  S.push_back(entry(row("gcc", 103, 4, 4, false), 3.77));
  S.push_back(entry(row("bwaves", 104, 0, 2, true), 0.08));
  S.push_back(
      entry(row("gamess", 105, 4, 3, true, false, 0x70000000), 12.22));
  S.push_back(entry(row("mcf", 106, 0, 6, false), 0.02));
  S.push_back(entry(row("milc", 107, 1, 4, true), 0.14));
  S.push_back(
      entry(row("zeusmp", 108, 2, 3, true, false, 0x60000000), 0.52));
  S.push_back(entry(row("gromacs", 109, 2, 3, true), 1.20));
  S.push_back(entry(row("cactusADM", 110, 2, 3, true), 0.91));
  S.push_back(entry(row("leslie3d", 111, 1, 2, true), 0.18));
  S.push_back(entry(row("namd", 112, 1, 4, false), 0.33));
  S.push_back(entry(row("gobmk", 113, 3, 5, false), 4.03));
  S.push_back(entry(row("dealII", 114, 3, 5, false), 4.20));
  S.push_back(entry(row("soplex", 115, 1, 4, false), 0.49));
  S.push_back(entry(row("povray", 116, 2, 4, false), 1.19));
  S.push_back(entry(row("calculix", 117, 2, 3, true), 2.17));
  S.push_back(entry(row("hmmer", 118, 1, 4, false), 0.33));
  S.push_back(entry(row("sjeng", 119, 1, 5, false), 0.16));
  S.push_back(entry(row("GemsFDTD", 120, 1, 2, true), 0.58));
  S.push_back(entry(row("libquantum", 121, 0, 4, false), 0.05));
  S.push_back(entry(row("h264ref", 122, 1, 4, false), 0.58));
  S.push_back(entry(row("tonto", 123, 3, 2, true), 6.21));
  S.push_back(entry(row("lbm", 124, 0, 2, true), 0.02));
  S.push_back(entry(row("omnetpp", 125, 1, 5, false), 0.79));
  S.push_back(entry(row("astar", 126, 0, 5, false), 0.05));
  S.push_back(entry(row("sphinx3", 127, 1, 4, false), 0.21));
  S.push_back(entry(row("xalancbmk", 128, 4, 5, false), 5.99));
  return S;
}

std::vector<SuiteEntry> workload::systemSuite() {
  std::vector<SuiteEntry> S;
  S.push_back(entry(row("inkscape", 201, 3, 4, false, /*Pie=*/true), 15.44));
  S.push_back(entry(row("gimp", 202, 3, 4, false), 5.75));
  S.push_back(entry(row("vim", 203, 2, 5, false, /*Pie=*/true), 2.44));
  S.push_back(entry(row("git", 204, 2, 5, false), 1.87));
  S.push_back(entry(row("pdflatex", 205, 2, 4, false), 0.91));
  S.push_back(entry(row("xterm", 206, 1, 4, false), 0.54));
  S.push_back(entry(row("evince", 207, 1, 4, false, /*Pie=*/true), 0.42));
  S.push_back(entry(row("make", 208, 1, 5, false), 0.21));
  S.push_back(
      entry(row("libc.so", 209, 2, 5, false, /*Pie=*/true), 1.87, true));
  S.push_back(
      entry(row("libc++.so", 210, 2, 5, false, /*Pie=*/true), 1.57, true));
  return S;
}

std::vector<SuiteEntry> workload::browserSuite() {
  std::vector<SuiteEntry> S;
  WorkloadConfig Chrome = row("Chrome", 301, 4, 3, false, /*Pie=*/true);
  Chrome.NumFuncs = 400; // an order of magnitude beyond the SPEC analogs
  Chrome.MainIters = 1;
  S.push_back(entry(Chrome, 152.51));
  S.push_back(entry(row("FireFox", 302, 1, 4, false, /*Pie=*/true), 0.52));
  WorkloadConfig Libxul = row("libxul.so", 303, 4, 4, false, /*Pie=*/true);
  Libxul.NumFuncs = 300;
  Libxul.MainIters = 1;
  S.push_back(entry(Libxul, 115.03, /*Shared=*/true));
  return S;
}

namespace {

/// DOM kernel flavours: heap-write heavy (Attr/Modify/Style), read/
/// traverse heavy (Query/Traverse), call heavy (Events). The FireFox
/// flavour spends relatively more time in compute (its JIT-analog code),
/// which is what makes its measured A2 overhead lower (§6.2).
WorkloadConfig domKernel(const char *Name, uint64_t Seed,
                         unsigned HeapW, unsigned Load, unsigned Calls,
                         bool FirefoxFlavour) {
  WorkloadConfig C;
  C.Name = Name;
  C.Seed = Seed;
  C.Pie = true;
  C.NumFuncs = 14;
  C.BlocksPerFunc = 5;
  C.InsnsPerBlock = 7;
  C.InnerIters = 4;
  C.MainIters = 5;
  C.LeafCalls = Calls;
  C.HeapWritePct = FirefoxFlavour ? HeapW / 2 : HeapW;
  C.DataWritePct = FirefoxFlavour ? 8 : 12;
  C.LoadPct = Load;
  C.ShortInsnPct = 10;
  C.HeapObjects = 24;
  C.HeapObjSize = 96;
  return C;
}

} // namespace

std::vector<DomKernel> workload::domKernels() {
  struct Row {
    const char *Name;
    unsigned HeapW, Load, Calls;
  };
  static const Row Rows[] = {
      {"Attrib", 22, 12, 1},         {"Attrib.Proto", 20, 12, 2},
      {"Attrib.jQuery", 24, 10, 2},  {"Modify", 26, 10, 1},
      {"Modify.Proto", 22, 12, 2},   {"Modify.jQuery", 26, 8, 2},
      {"Query", 8, 30, 1},           {"Style.Proto", 20, 14, 2},
      {"Style.jQuery", 22, 12, 2},   {"Events.Proto", 14, 12, 4},
      {"Events.jQuery", 16, 10, 4},  {"Traverse", 6, 34, 1},
      {"Traverse.Proto", 8, 30, 2},  {"Traverse.jQuery", 10, 28, 2},
  };
  std::vector<DomKernel> Out;
  uint64_t Seed = 400;
  for (const Row &R : Rows) {
    DomKernel K;
    K.Name = R.Name;
    K.Chrome = domKernel(R.Name, Seed, R.HeapW, R.Load, R.Calls, false);
    K.Firefox =
        domKernel(R.Name, Seed + 50, R.HeapW, R.Load, R.Calls, true);
    ++Seed;
    Out.push_back(std::move(K));
  }
  return Out;
}
