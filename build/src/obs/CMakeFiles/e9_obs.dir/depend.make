# Empty dependencies file for e9_obs.
# This may be replaced when dependencies are built.
