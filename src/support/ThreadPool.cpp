//===- support/ThreadPool.cpp ---------------------------------*- C++ -*-===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace e9;

ThreadPool::ThreadPool(unsigned Threads) {
  Threads = std::max(1u, Threads);
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> L(Mu);
    Queue.push(std::move(Task));
    ++Pending;
  }
  HasWork.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(Mu);
  Idle.wait(L, [this] { return Pending == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> L(Mu);
      HasWork.wait(L, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> L(Mu);
      if (--Pending == 0)
        Idle.notify_all();
    }
  }
}

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

void e9::parallelFor(size_t N, unsigned Jobs,
                     const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  unsigned Threads =
      static_cast<unsigned>(std::min<size_t>(N, std::max(1u, Jobs)));
  if (Threads <= 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  ThreadPool Pool(Threads);
  for (size_t I = 0; I != N; ++I)
    Pool.submit([&Fn, I] { Fn(I); });
  Pool.wait();
}
