//===- frontend/Rewriter.cpp ----------------------------------*- C++ -*-===//

#include "frontend/Rewriter.h"

#include "frontend/Disasm.h"
#include "frontend/Prescan.h"
#include "frontend/Shard.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Timing.h"

#include <algorithm>

using namespace e9;
using namespace e9::frontend;

namespace {

/// Simulated silent-corruption faults, enabled only under fault injection.
/// Each one damages the output the way a patcher/grouping bug would; the
/// verifier (and only the verifier) must catch them — this is how the
/// fault-injection tests prove StrictMode fails closed rather than
/// emitting a wrong binary.
void injectOutputCorruption(RewriteOutput &Out) {
  if (!FaultInjectionArmed)
    return;
  if (E9_FAULT_POINT("core.patch.corrupt-site") && !Out.Jumps.empty()) {
    const core::JumpRecord &J = Out.Jumps.front();
    uint8_t B = 0;
    if (Out.Rewritten.readBytes(J.Addr, &B, 1)) {
      B ^= 0x20;
      (void)Out.Rewritten.writeBytes(J.Addr, &B, 1);
    }
  }
  if (E9_FAULT_POINT("core.group.corrupt-block")) {
    for (elf::PhysBlock &B : Out.Rewritten.Blocks) {
      auto It = std::find_if(B.Bytes.begin(), B.Bytes.end(),
                             [](uint8_t V) { return V != 0; });
      if (It != B.Bytes.end()) {
        *It ^= 0xff;
        break;
      }
    }
  }
  if (E9_FAULT_POINT("core.group.corrupt-mapping") &&
      !Out.Rewritten.Mappings.empty())
    Out.Rewritten.Mappings.front().VAddr += 0x1000;
}

} // namespace

namespace {

/// Freezes the pipeline's deterministic counters/histograms into \p Reg.
/// Runs post-merge on the merged results, so every value is a pure
/// function of (input, options) — never of Jobs or scheduling.
void populateMetrics(obs::MetricsRegistry &Reg, const RewriteOutput &Out,
                     const ShardedPatchOutput &P, uint64_t TrampBytes) {
  const core::PatchStats &S = Out.Stats;
  Reg.counter("sites.total").add(S.NLoc);
  Reg.counter("sites.failed").add(S.count(core::Tactic::Failed));
  static constexpr const char *TacticKeys[6] = {
      "tactic.b1", "tactic.b2", "tactic.t1",
      "tactic.t2", "tactic.t3", "tactic.b0"};
  for (size_t I = 0; I != 6; ++I)
    Reg.counter(TacticKeys[I]).add(S.Count[I]);
  Reg.counter("patch.evictions").add(S.Evictions);
  Reg.counter("patch.rescued").add(S.Rescued);
  Reg.counter("patch.alloc_retries").add(S.AllocRetries);
  Reg.counter("alloc.zone_extends").add(P.ZoneExtends);
  Reg.counter("alloc.zone_opens").add(P.ZoneOpens);
  Reg.counter("alloc.failed_probes").add(P.AllocFailedProbes);
  Reg.counter("alloc.probe_steps").add(P.AllocProbeSteps);
  Reg.counter("alloc.zones_retired").add(P.AllocZonesRetired);
  Reg.counter("alloc.open_zone_peak").add(P.AllocOpenZonePeak);
  Reg.counter("shard.count").add(Out.ShardCount);
  Reg.counter("shard.redone").add(Out.ShardsRedone);
  Reg.counter("tramp.chunks").add(Out.Chunks.size());
  Reg.counter("tramp.bytes").add(TrampBytes);
  obs::Histogram &H = Reg.histogram("tramp.chunk_bytes");
  for (const core::TrampolineChunk &C : Out.Chunks)
    H.observe(C.Bytes.size());
  Reg.counter("group.virtual_blocks").add(Out.Grouping.VirtualBlocks);
  Reg.counter("group.phys_bytes").add(Out.Grouping.PhysBytes);
  Reg.counter("group.mappings_raw").add(Out.Grouping.RawMappings);
  Reg.counter("group.mappings_coalesced").add(Out.Grouping.MappingCount);
}

} // namespace

Result<RewriteOutput> frontend::rewrite(const elf::Image &In,
                                        const std::vector<uint64_t> &PatchLocs,
                                        const RewriteOptions &Opts) {
  if (!In.textSegment())
    return Result<RewriteOutput>::error("input image has no code segment");

  Stopwatch Total;
  Stopwatch Phase;
  RewriteOutput Out;
  obs::TraceBuffer TraceBuf;
  obs::Tracer Trace(Opts.Trace.Enabled ? &TraceBuf : nullptr);
  obs::ProfileCollector ProfC;
  obs::Profiler Prof(Opts.Trace.Profile ? &ProfC : nullptr);
  obs::MetricsRegistry Metrics;
  Out.OrigFileSize = elf::writtenSize(In);
  Out.Rewritten = In;
  Out.Rewritten.Blocks.clear();
  Out.Rewritten.Mappings.clear();

  if (Trace.enabled()) {
    std::vector<uint64_t> Unique(PatchLocs);
    std::sort(Unique.begin(), Unique.end());
    Unique.erase(std::unique(Unique.begin(), Unique.end()), Unique.end());
    Trace.meta(Unique.size());
  }

  // The patcher only ever consults instructions within the shard guard
  // distance of a patch site (Shard.h): length-walk everything for exact
  // boundaries, but materialize Insn records only inside those windows.
  DisasmResult Dis;
  {
    obs::ScopedSpan Span(Prof, "disasm");
    Dis = disassembleWindows(Out.Rewritten, PatchLocs, ShardGuardDistance);
  }
  if (E9_FAULT_POINT("frontend.disasm.decode"))
    return Result<RewriteOutput>::error(
        "injected fault: frontend.disasm.decode (disassembly failed)");
  Out.Profile.add("disasm", Phase.lapMs());

  ShardedPatchOutput P;
  {
    obs::ScopedSpan Span(Prof, "patch");
    P = patchSharded(In, Out.Rewritten, std::move(Dis.Insns), PatchLocs,
                     Opts.Patch, Opts.SpecFor, Opts.ExtraReserved,
                     Opts.Parallel.Sharding, Opts.Parallel.Jobs, Trace, Prof);
  }
  Phase.lapMs();
  Out.Profile.add("patch", P.PatchMs);
  Out.Profile.add("merge", P.MergeMs);
  Out.Profile.Spans.insert(Out.Profile.Spans.end(), P.ShardSpans.begin(),
                           P.ShardSpans.end());
  Out.ShardCount = P.ShardCount;
  Out.ShardsRedone = P.ShardsRedone;
  Out.JobsUsed = P.JobsUsed;

  Out.Stats = P.Stats;
  Out.B0Table = P.B0Table;
  Out.Rewritten.B0Sites = P.B0Table; // self-contained rewritten binary
  Out.Sites = std::move(P.Sites);
  Out.Chunks = std::move(P.Chunks);
  Out.Jumps = std::move(P.Jumps);
  Out.ModifiedRanges = std::move(P.ModifiedRanges);

  // Error budget: refuse to hand back a binary with more unpatched sites
  // than the caller tolerates. The message names the first few failures
  // with their reasons so the caller can see *why*, not just "failed".
  size_t NFailed = Out.Stats.count(core::Tactic::Failed);
  if (NFailed > Opts.Verify.MaxFailedSites) {
    std::string Msg =
        format("rewrite exceeded the failed-site budget: %zu sites failed "
               "(budget %zu)",
               NFailed, Opts.Verify.MaxFailedSites);
    size_t Listed = 0;
    for (const core::PatchSiteResult &S : Out.Sites) {
      if (S.Used != core::Tactic::Failed)
        continue;
      if (Listed == 8) {
        Msg += format("; ... and %zu more", NFailed - Listed);
        break;
      }
      Msg += format("%s %s (%s)", Listed ? "," : ":", hex(S.Addr).c_str(),
                    core::failureReasonName(S.Reason));
      ++Listed;
    }
    return Result<RewriteOutput>::error(Msg);
  }
  // Within budget but not clean: mark the trace so clients can tell a
  // degraded rewrite (silent coverage loss) from a fully-patched one.
  if (NFailed > 0)
    Trace.degraded(NFailed, Opts.Verify.MaxFailedSites);

  Phase.lapMs();
  {
    obs::ScopedSpan Span(Prof, "group");
    auto Grouped = core::groupPages(Out.Chunks, Opts.Grouping);
    if (!Grouped)
      return Result<RewriteOutput>::error(
          format("grouping failed: %s", Grouped.reason().c_str()));
    Out.Grouping = Grouped.take();
    Out.Rewritten.Blocks = std::move(Out.Grouping.Blocks);
    Out.Rewritten.Mappings = Out.Grouping.Mappings;
  }
  Out.Profile.add("group", Phase.lapMs());
  Trace.group(Out.Grouping.VirtualBlocks, Out.Rewritten.Blocks.size(),
              Out.Grouping.PhysBytes, Out.Grouping.MappingCount);

  injectOutputCorruption(Out);

  {
    obs::ScopedSpan Span(Prof, "write");
    Out.NewFileSize = elf::writtenSize(Out.Rewritten, Prof);
  }
  Out.Profile.add("write", Phase.lapMs());

  if (Opts.Verify.Strict || Opts.Verify.Enabled) {
    obs::ScopedSpan Span(Prof, "verify");
    verify::VerifyInput VIn;
    VIn.Original = &In;
    VIn.Rewritten = &Out.Rewritten;
    VIn.Sites = &Out.Sites;
    VIn.Jumps = &Out.Jumps;
    VIn.Chunks = &Out.Chunks;
    VIn.ModifiedRanges = &Out.ModifiedRanges;
    VIn.Trace = Trace.buffer();
    Out.Verify = verify::verifyRewrite(VIn, Opts.Verify.Opts);
    Out.Profile.add("verify", Phase.lapMs());
    Metrics.counter("verify.failures").add(Out.Verify.Failures.size());
    if (Opts.Verify.Strict && !Out.Verify.ok())
      return Result<RewriteOutput>::error(Out.Verify.summary());
  }
  Out.Profile.TotalMs = Total.elapsedMs();
  if (Prof.enabled()) {
    Out.Profile.Tree = ProfC.takeTree(Out.Profile.TotalMs);
    Out.Profile.Tree.Name = "rewrite";
    Out.Profile.Events = ProfC.takeEvents();
  }

  uint64_t TrampBytes = 0;
  for (const core::TrampolineChunk &C : Out.Chunks)
    TrampBytes += C.Bytes.size();
  populateMetrics(Metrics, Out, P, TrampBytes);
  Out.Metrics = Metrics.snapshot();

  // Span events are the one wall-clock (hence nondeterministic) part of
  // the schema; emitted only on explicit opt-in, after all deterministic
  // events so the trace prefix stays comparable across runs.
  if (Opts.Trace.Timings)
    for (const obs::SpanRecord &S : Out.Profile.Spans)
      Trace.span(S.Name.c_str(), S.Shard, S.Ms);
  Trace.summary(Out.Stats.NLoc, Out.Stats.Count, Out.Stats.Evictions,
                Out.Stats.Rescued, TrampBytes, Out.Stats.succPct());
  Out.Trace = TraceBuf.take();
  return Out;
}
